// Custom NBF: plug your own recovery mechanism into NPTSN.
//
// NPTSN abstracts the TSSDN controller's recovery behaviour as a stateless
// Network Behaviour Function Φ (§II-B). Any deterministic implementation
// of nbf.NBF can drive the planner; this example implements a conservative
// "spare-capacity" recovery that refuses to load any directed link beyond
// half the time slots, then plans a network whose guarantee holds under
// exactly that mechanism.
//
//	go run ./examples/custom-nbf
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/scenarios"
	"repro/internal/tsn"
)

// halfLoadRecovery is a custom stateless NBF: it re-routes and re-schedules
// all flows on the residual network, but rejects recoveries whose schedule
// fills a directed link beyond 50% — modelling a controller that insists on
// headroom for event traffic after recovery.
type halfLoadRecovery struct {
	inner nbf.StatelessRecovery
}

var _ nbf.NBF = (*halfLoadRecovery)(nil)

func (h *halfLoadRecovery) Name() string { return "half-load-greedy" }

func (h *halfLoadRecovery) Recover(topo *graph.Graph, failure nbf.Failure, net tsn.Network, fs tsn.FlowSet) (*tsn.State, []tsn.Pair, error) {
	st, er, err := h.inner.Recover(topo, failure, net, fs)
	if err != nil {
		return nil, nil, err
	}
	if len(er) > 0 {
		return st, er, nil
	}
	// Count slot usage per directed link over the hyperperiod.
	use := make(map[tsn.DirLink]int)
	for _, p := range st.Plans {
		for i := range p.Slots {
			use[tsn.DirLink{From: p.Path[i], To: p.Path[i+1]}]++
		}
	}
	limit := net.SlotsPerBase / 2
	for link, n := range use {
		if n > limit {
			// Report the flows over the hot link as unrecovered: the
			// planner will add redundancy until the load spreads out.
			var over []tsn.Pair
			for _, p := range st.Plans {
				for i := range p.Slots {
					if (tsn.DirLink{From: p.Path[i], To: p.Path[i+1]}) == link {
						over = append(over, tsn.Pair{Src: p.Path.Source(), Dst: p.Dst})
						break
					}
				}
			}
			return st, over, nil
		}
	}
	return st, nil, nil
}

func main() {
	// Register the mechanism so tools can select it by name, then use it
	// directly for planning.
	registry := nbf.NewRegistry()
	if err := registry.Register("half-load-greedy", func() nbf.NBF {
		return &halfLoadRecovery{inner: nbf.StatelessRecovery{MaxAlternatives: 3}}
	}); err != nil {
		log.Fatal(err)
	}
	mech, err := registry.New("half-load-greedy")
	if err != nil {
		log.Fatal(err)
	}

	scen, err := scenarios.ADS()
	if err != nil {
		log.Fatal(err)
	}
	flows := scenarios.ADSFlows(11)
	prob := scen.Problem(flows, mech, 1e-6)

	cfg := core.DefaultConfig()
	cfg.MaxEpoch = 10
	cfg.MaxStep = 160
	cfg.K = 8
	cfg.MLPHidden = []int{64, 64}
	cfg.Seed = 11

	planner, err := core.NewPlanner(prob, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}
	if !report.GuaranteeMet() {
		log.Fatal("no topology satisfies the half-load recovery policy; raise the budget")
	}
	if err := core.VerifySolution(prob, report.Best); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned under %q: cost %.1f, %d links\n",
		mech.Name(), report.Best.Cost, report.Best.Topology.NumEdges())
	fmt.Println("every non-safe fault is recoverable with <= 50% load on all links")
}
