// ORION: compare all four planners of the paper's performance evaluation
// on one ORION test case (31 end stations, 15 candidate switches, random
// TT flows) — the manually designed Original network with ASIL-D
// components, the TRH FRER heuristic, the NeuroPlan RL baseline, and
// NPTSN.
//
//	go run ./examples/orion
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/nbf"
	"repro/internal/scenarios"
)

func main() {
	scen, err := scenarios.ORION()
	if err != nil {
		log.Fatal(err)
	}
	flows := scen.RandomFlows(10, 3)
	prob := scen.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)

	// A scaled-down training budget keeps this example interactive; the
	// paper's Table II budget is core.DefaultConfig().
	cfg := core.DefaultConfig()
	cfg.MaxEpoch = 6
	cfg.MaxStep = 128
	cfg.K = 8
	cfg.MLPHidden = []int{64, 64}
	cfg.GCNHidden = 16
	cfg.Seed = 3

	results, err := eval.RunCase(prob, scen.Original, cfg, cfg, eval.AllApproaches())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ORION, %d flows, R = 1e-6\n", len(flows))
	fmt.Printf("%-10s %-10s %10s  %s\n", "approach", "guarantee", "cost", "notes")
	for _, ap := range eval.SortedApproaches(results) {
		r := results[ap]
		guarantee := "met"
		if !r.GuaranteeMet {
			guarantee = "NOT met"
		}
		cost := "-"
		if r.Cost > 0 {
			cost = fmt.Sprintf("%.0f", r.Cost)
		}
		fmt.Printf("%-10s %-10s %10s  %s\n", r.Approach, guarantee, cost, r.Reason)
	}

	if nptsn, ok := results[eval.ApproachNPTSN]; ok && nptsn.GuaranteeMet {
		orig := results[eval.ApproachOriginal]
		if orig.Cost > 0 && nptsn.Cost > 0 {
			fmt.Printf("\nNPTSN cost reduction vs Original: %.1fx\n", orig.Cost/nptsn.Cost)
		}
	}
}
