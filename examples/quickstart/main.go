// Quickstart: plan a minimal in-vehicle TSSDN with NPTSN.
//
// Four end stations, two candidate switches, three time-triggered flows.
// NPTSN must find a topology + ASIL allocation whose run-time recovery
// survives every failure with probability >= 1e-6, at minimum cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

func main() {
	// 1. Describe the connection graph Gc: which links COULD be built.
	gc := graph.New()
	sensors := []string{"camera", "radar", "planner", "brake"}
	for _, n := range sensors {
		gc.AddVertex(n, graph.KindEndStation)
	}
	swA := gc.AddVertex("swA", graph.KindSwitch)
	swB := gc.AddVertex("swB", graph.KindSwitch)
	for es := 0; es < 4; es++ {
		must(gc.AddEdge(es, swA, 1.0)) // cable lengths in unit length
		must(gc.AddEdge(es, swB, 1.5))
	}
	must(gc.AddEdge(swA, swB, 1.0))

	// 2. Declare the TT flows (period = deadline = base period).
	net := tsn.DefaultNetwork() // 500 µs base period, 20 slots
	flows := tsn.FlowSet{
		{ID: 0, Name: "camera->planner", Src: 0, Dsts: []int{2}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 256},
		{ID: 1, Name: "radar->planner", Src: 1, Dsts: []int{2}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 128},
		{ID: 2, Name: "planner->brake", Src: 2, Dsts: []int{3}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64},
	}

	// 3. Build the planning problem: the recovery mechanism (NBF), the
	// reliability goal R and the component library (Table I).
	prob := &core.Problem{
		Connections:     gc,
		Net:             net,
		Flows:           flows,
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}

	// 4. Train the planner (scaled-down budget; Table II defaults are
	// core.DefaultConfig()).
	cfg := core.DefaultConfig()
	cfg.MaxEpoch = 8
	cfg.MaxStep = 128
	cfg.K = 8
	cfg.MLPHidden = []int{64, 64}
	cfg.Seed = 42

	planner, err := core.NewPlanner(prob, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}
	if !report.GuaranteeMet() {
		log.Fatal("no reliable topology found; increase the training budget")
	}

	// 5. Independently verify and inspect the result.
	if err := core.VerifySolution(prob, report.Best); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network cost: %.1f (found at epoch %d)\n", report.Best.Cost, report.Best.FoundAtEpoch)
	for sw, lvl := range report.Best.Assignment.Switches {
		fmt.Printf("switch %s: ASIL-%s, %d ports\n",
			gc.MustVertex(sw).Name, lvl, report.Best.Topology.Degree(sw))
	}
	for _, e := range report.Best.Topology.Edges() {
		fmt.Printf("link %s--%s: ASIL-%s\n",
			gc.MustVertex(e.U).Name, gc.MustVertex(e.V).Name,
			report.Best.Assignment.LinkLevel(e.U, e.V))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
