// Simulate: plan an ADS network with NPTSN, then replay its TAS schedule
// on the slot-accurate simulator while switches die one after another —
// the dynamic view of the reliability guarantee the planner establishes
// statically.
//
//	go run ./examples/simulate
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/nbf"
	"repro/internal/scenarios"
	"repro/internal/sim"
)

func main() {
	scen, err := scenarios.ADS()
	if err != nil {
		log.Fatal(err)
	}
	flows := scenarios.ADSFlows(5)
	recovery := &nbf.StatelessRecovery{MaxAlternatives: 3}
	prob := scen.Problem(flows, recovery, 1e-6)

	cfg := core.DefaultConfig()
	cfg.MaxEpoch = 10
	cfg.MaxStep = 160
	cfg.K = 8
	cfg.MLPHidden = []int{64, 64}
	cfg.Seed = 5

	planner, err := core.NewPlanner(prob, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}
	if !report.GuaranteeMet() {
		log.Fatal("no reliable topology found; increase the training budget")
	}
	sol := report.Best
	fmt.Printf("planned network: cost %.1f\n", sol.Cost)

	// Kill two switches in sequence (a dual failure is a safe fault at
	// R = 1e-6 for low-ASIL switches, so the second hit may or may not be
	// survivable — the simulator shows which).
	var sws []int
	for sw := range sol.Assignment.Switches {
		sws = append(sws, sw)
	}
	sort.Ints(sws)
	events := []sim.Event{
		{Slot: 10 * scen.Net.SlotsPerBase, Failure: nbf.Failure{Nodes: []int{sws[0]}}},
		{Slot: 40 * scen.Net.SlotsPerBase, Failure: nbf.Failure{Nodes: []int{sws[1]}}},
	}

	s := &sim.Simulator{
		Topo:  sol.Topology,
		Net:   scen.Net,
		Flows: flows,
		NBF:   recovery,
		Cfg:   sim.DefaultConfig(scen.Net),
	}
	res, err := s.Run(events)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d base periods: %d frames released, %d delivered, %d lost (%.1f%% delivery)\n",
		s.Cfg.HorizonBasePeriods, res.TotalReleased, res.TotalDelivered, res.TotalLost,
		res.DeliveryRate()*100)
	for i, rec := range res.Recoveries {
		name := scen.Connections.MustVertex(events[i].Failure.Nodes[0]).Name
		status := "recovered"
		if !rec.Recovered {
			status = fmt.Sprintf("NOT recovered (pairs %v)", rec.UnrecoveredPairs)
		}
		fmt.Printf("failure %d (%s at slot %d): new configuration at slot %d, %d frames lost in the gap, %s\n",
			i+1, name, rec.InjectedAt, rec.EffectiveAt, rec.LostDuringGap, status)
	}
}
