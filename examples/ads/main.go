// ADS: plan the in-vehicle network of the autonomous driving system of
// §VI-B (12 end stations, 4 candidate switches, 12 TT flows from 7 safety
// applications), then show what the planned network's run-time recovery
// does for a concrete switch failure.
//
//	go run ./examples/ads
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/nbf"
	"repro/internal/scenarios"
)

func main() {
	scen, err := scenarios.ADS()
	if err != nil {
		log.Fatal(err)
	}
	flows := scenarios.ADSFlows(7)
	recovery := &nbf.StatelessRecovery{MaxAlternatives: 3}
	prob := scen.Problem(flows, recovery, 1e-6)

	cfg := core.DefaultConfig()
	cfg.MaxEpoch = 12
	cfg.MaxStep = 192
	cfg.K = 8
	cfg.MLPHidden = []int{64, 64}
	cfg.Seed = 7

	planner, err := core.NewPlanner(prob, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report, err := planner.Plan()
	if err != nil {
		log.Fatal(err)
	}
	if !report.GuaranteeMet() {
		log.Fatal("no reliable topology found; increase the training budget")
	}
	sol := report.Best
	if err := core.VerifySolution(prob, sol); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned ADS network: cost %.1f, %d links, %d switches\n",
		sol.Cost, sol.Topology.NumEdges(), len(sol.Assignment.Switches))
	for sw, lvl := range sol.Assignment.Switches {
		fmt.Printf("  %s: ASIL-%s (%d ports)\n", scen.Connections.MustVertex(sw).Name, lvl, sol.Topology.Degree(sw))
	}

	// Demonstrate the recovery behaviour the guarantee is built on: fail
	// each selected switch in turn and re-run the NBF.
	fmt.Println("\nsingle-switch failure drill:")
	for sw := range sol.Assignment.Switches {
		st, er, err := recovery.Recover(sol.Topology, nbf.Failure{Nodes: []int{sw}}, scen.Net, flows)
		if err != nil {
			log.Fatal(err)
		}
		name := scen.Connections.MustVertex(sw).Name
		if len(er) > 0 {
			// Only reachable when the failure is a safe fault (e.g. an
			// ASIL-D switch at R = 1e-6); the planner never relies on
			// recovering it.
			fmt.Printf("  %s down: %d pairs unrecoverable (safe fault)\n", name, len(er))
			continue
		}
		fmt.Printf("  %s down: all %d flows re-scheduled (%d plans)\n", name, len(flows), len(st.Plans))
	}
}
