// End-to-end integration tests across module boundaries: plan a network,
// verify it independently, exercise the recovery drill the guarantee is
// built on, and check cross-package determinism.
package repro_test

import (
	"testing"

	"repro/internal/asil"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exact"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/scenarios"
	"repro/internal/sim"
	"repro/internal/tsn"
)

// planADS trains a scaled-down planner on the ADS scenario.
func planADS(t *testing.T, seed int64) (*core.Problem, *core.Report) {
	t.Helper()
	scen := mustADS(t)
	prob := scen.Problem(scenarios.ADSFlows(seed), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	cfg := microCfg(seed)
	cfg.MaxEpoch = 4
	cfg.MaxStep = 96
	pl, err := core.NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return prob, report
}

func TestEndToEndADSPlanVerifyRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	prob, report := planADS(t, 1)
	if !report.GuaranteeMet() {
		t.Fatal("no solution on ADS at the integration budget")
	}
	sol := report.Best
	if err := core.VerifySolution(prob, sol); err != nil {
		t.Fatal(err)
	}

	// Failure drill: every selected switch whose failure is a non-safe
	// fault must be recoverable, and the recovered schedule must verify on
	// the residual network.
	lib := prob.Library
	for sw, lvl := range sol.Assignment.Switches {
		if lib.FailureProb(lvl) < prob.ReliabilityGoal {
			continue // safe fault
		}
		gf := nbf.Failure{Nodes: []int{sw}}
		st, er, err := prob.NBF.Recover(sol.Topology, gf, prob.Net, prob.Flows)
		if err != nil {
			t.Fatal(err)
		}
		if len(er) != 0 {
			t.Fatalf("switch %d (ASIL-%s) failure not recoverable: %v", sw, lvl, er)
		}
		residual := sol.Topology.Residual(gf.Nodes, gf.Edges)
		if err := tsn.VerifyState(residual, prob.Net, prob.Flows, st); err != nil {
			t.Fatalf("recovered schedule invalid after switch %d failure: %v", sw, err)
		}
		// The recovered schedule must expand into a collision-free GCL.
		if _, err := tsn.BuildGCL(prob.Net, prob.Flows, st); err != nil {
			t.Fatalf("GCL after switch %d failure: %v", sw, err)
		}
	}
}

func TestEndToEndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	_, r1 := planADS(t, 3)
	_, r2 := planADS(t, 3)
	if (r1.Best == nil) != (r2.Best == nil) {
		t.Fatal("solution presence differs across identical runs")
	}
	if r1.Best != nil && r1.Best.Cost != r2.Best.Cost {
		t.Fatalf("best costs differ: %v vs %v", r1.Best.Cost, r2.Best.Cost)
	}
	if len(r1.Epochs) != len(r2.Epochs) {
		t.Fatal("epoch counts differ")
	}
	for i := range r1.Epochs {
		if r1.Epochs[i].Reward != r2.Epochs[i].Reward {
			t.Fatalf("epoch %d rewards differ", i)
		}
	}
}

func TestEndToEndSolutionSurvivesBruteForceCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	prob, report := planADS(t, 5)
	if !report.GuaranteeMet() {
		t.Fatal("no solution")
	}
	// The solution passed Algorithm 3 during planning; it must also pass
	// the exhaustive brute-force enumeration over switches AND links.
	bf := &failure.BruteForce{
		Lib: prob.Library, NBF: prob.NBF, Net: prob.Net, R: prob.ReliabilityGoal,
	}
	res, err := bf.Analyze(report.Best.Topology, report.Best.Assignment, prob.Flows)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("brute force found a non-safe unrecoverable fault: %v (ER %v)", res.Failure, res.ER)
	}
}

func TestEndToEndORIONOriginalBaseline(t *testing.T) {
	// The reconstructed ORION original must be a valid all-ASIL-D design
	// at R = 1e-6 for a light flow load (the Fig. 4a premise).
	scen := mustORION(t)
	flows := scen.RandomFlows(10, 2)
	prob := scen.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	res, err := (&baselines.Original{Topology: scen.Original}).Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GuaranteeMet {
		t.Fatalf("original ORION rejected: %s", res.Reason)
	}
	// All-ASIL-D pricing: the paper reports 986 for its layout; our
	// reconstruction must land in the same regime (hundreds).
	if res.Solution.Cost < 500 || res.Solution.Cost > 1500 {
		t.Fatalf("original cost = %v, expected ORION-scale ASIL-D pricing", res.Solution.Cost)
	}
}

func TestEndToEndFig4MicroOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-planner run")
	}
	// One ORION case at micro budget: NPTSN and the baselines must
	// reproduce the paper's cost ordering Original > NPTSN when both meet
	// the guarantee.
	scen := mustORION(t)
	flows := scen.RandomFlows(10, 4)
	prob := scen.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	cfg := microCfg(2)
	res, err := eval.RunCase(prob, scen.Original, cfg, cfg,
		[]eval.Approach{eval.ApproachOriginal, eval.ApproachNPTSN})
	if err != nil {
		t.Fatal(err)
	}
	orig := res[eval.ApproachOriginal]
	nptsn := res[eval.ApproachNPTSN]
	if !orig.GuaranteeMet {
		t.Fatalf("original failed: %s", orig.Reason)
	}
	if nptsn.GuaranteeMet && nptsn.Cost >= orig.Cost {
		t.Fatalf("NPTSN cost %v did not beat Original %v", nptsn.Cost, orig.Cost)
	}
}

func TestEndToEndSwitchASILBias(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	// Fig. 4(c) shape: NPTSN approaches the goal from low ASIL, so its
	// solutions should mostly use A/B switches on ADS.
	_, report := planADS(t, 7)
	if !report.GuaranteeMet() {
		t.Fatal("no solution")
	}
	low, total := 0, 0
	for _, lvl := range report.Best.Assignment.Switches {
		total++
		if lvl <= asil.LevelB {
			low++
		}
	}
	if total == 0 {
		t.Fatal("no switches selected")
	}
	if low == 0 {
		t.Fatalf("expected some low-ASIL switches, got none of %d", total)
	}
}

func TestEndToEndCheapestSolutionImprovesWithBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs")
	}
	scen := mustADS(t)
	prob := scen.Problem(scenarios.ADSFlows(9), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	run := func(epochs, steps int) float64 {
		cfg := microCfg(9)
		cfg.MaxEpoch = epochs
		cfg.MaxStep = steps
		pl, err := core.NewPlanner(prob, cfg)
		if err != nil {
			t.Fatal(err)
		}
		report, err := pl.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if report.Best == nil {
			return 1 << 30
		}
		return report.Best.Cost
	}
	smallCost := run(2, 48)
	bigCost := run(8, 160)
	if bigCost > smallCost {
		t.Fatalf("more budget produced a worse best cost: %v -> %v", smallCost, bigCost)
	}
}

func TestEndToEndEq6ReductionOnPlannedTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	// On a real planned topology, every link failure maps (Eq. 6) to a
	// switch failure whose residual is contained and whose probability is
	// no smaller.
	prob, report := planADS(t, 11)
	if !report.GuaranteeMet() {
		t.Fatal("no solution")
	}
	sol := report.Best
	lib := prob.Library
	for _, e := range sol.Topology.Edges() {
		gf := nbf.Failure{Edges: []graph.Edge{e}}
		reduced := failure.ReduceToSwitchFailure(sol.Topology, sol.Assignment, gf)
		if len(reduced.Nodes) == 0 {
			t.Fatalf("link (%d,%d) did not reduce to a switch failure", e.U, e.V)
		}
		if !failure.ResidualIsSubgraph(sol.Topology, reduced, gf) {
			t.Fatalf("residual containment violated for link (%d,%d)", e.U, e.V)
		}
		pLink, err := asil.FailureProbability(sol.Assignment, lib, nil, []graph.Edge{e})
		if err != nil {
			t.Fatal(err)
		}
		pSwitch, err := asil.FailureProbability(sol.Assignment, lib, reduced.Nodes, nil)
		if err != nil {
			t.Fatal(err)
		}
		if pSwitch < pLink {
			t.Fatalf("link (%d,%d): switch probability %v < link probability %v", e.U, e.V, pSwitch, pLink)
		}
	}
}

// TestEndToEndNPTSNApproachesExactOptimum validates the RL planner's
// solution quality against the branch-and-bound optimum on a small
// instance.
func TestEndToEndNPTSNApproachesExactOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	// The tiny 4-ES / 2-SW problem used across the test suites.
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.AddEdge(4, 5, 1); err != nil {
		t.Fatal(err)
	}
	net := tsn.DefaultNetwork()
	mk := func(id, src, dst int) tsn.Flow {
		return tsn.Flow{ID: id, Src: src, Dsts: []int{dst}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}
	}
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{mk(0, 0, 1), mk(1, 2, 3), mk(2, 1, 2)},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}

	optimum, _, err := (&exact.Planner{}).Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if optimum == nil {
		t.Fatal("exact planner found no solution")
	}

	cfg := microCfg(2) // seed chosen to reach the optimum within the scaled-down budget
	cfg.MaxEpoch = 6
	cfg.MaxStep = 160
	pl, err := core.NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !report.GuaranteeMet() {
		t.Fatal("NPTSN found no solution")
	}
	if report.Best.Cost < optimum.Cost {
		t.Fatalf("NPTSN cost %v beats the proven optimum %v — a checker is broken", report.Best.Cost, optimum.Cost)
	}
	// Within 2x of optimal at this scaled-down budget.
	if report.Best.Cost > 2*optimum.Cost {
		t.Fatalf("NPTSN cost %v more than 2x the optimum %v", report.Best.Cost, optimum.Cost)
	}
}

// TestEndToEndSimulateRecoveryOnPlannedNetwork plans a network, then
// replays a failure on the simulator and checks the timeline-level
// behaviour the static guarantee promises.
func TestEndToEndSimulateRecoveryOnPlannedNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	prob, report := planADS(t, 13)
	if !report.GuaranteeMet() {
		t.Fatal("no solution")
	}
	sol := report.Best
	// Pick a selected switch whose failure is a non-safe fault.
	target := -1
	for sw, lvl := range sol.Assignment.Switches {
		if prob.Library.FailureProb(lvl) >= prob.ReliabilityGoal {
			target = sw
			break
		}
	}
	if target == -1 {
		t.Skip("all switches are safe-fault grade; nothing to drill")
	}
	s := &sim.Simulator{
		Topo:  sol.Topology,
		Net:   prob.Net,
		Flows: prob.Flows,
		NBF:   prob.NBF,
		Cfg:   sim.Config{HorizonBasePeriods: 32, DetectionSlots: 20, ReconfigSlots: 20},
	}
	res, err := s.Run([]sim.Event{{Slot: 200, Failure: nbf.Failure{Nodes: []int{target}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 1 || !res.Recoveries[0].Recovered {
		t.Fatalf("planned network failed to recover in simulation: %+v", res.Recoveries)
	}
	if res.DeliveryRate() < 0.8 {
		t.Fatalf("delivery rate %v too low around a single recoverable failure", res.DeliveryRate())
	}
}
