// Package asil models ISO 26262 Automotive Safety Integrity Levels, the
// TSSDN component library of the paper (Table I), the network cost function
// (Eq. 1) and the failure-scenario probability (Eq. 2).
package asil

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// failureProbOverHorizon converts a per-hour failure rate into a failure
// probability over the given horizon assuming exponentially distributed
// failures: 1 − e^{−rate·hours}.
func failureProbOverHorizon(ratePerHour, hours float64) float64 {
	return 1 - math.Exp(-ratePerHour*hours)
}

// Level is an ISO 26262 Automotive Safety Integrity Level. Levels are
// ordered: A is the least and D the most critical.
type Level int

// ASIL levels per ISO 26262. The zero value means "unassigned" so that
// component maps distinguish missing components from ASIL-A ones.
const (
	LevelA Level = iota + 1
	LevelB
	LevelC
	LevelD
)

// Levels lists all ASIL levels from least to most critical.
func Levels() []Level { return []Level{LevelA, LevelB, LevelC, LevelD} }

// String returns the standard ASIL letter.
func (l Level) String() string {
	switch l {
	case LevelA:
		return "A"
	case LevelB:
		return "B"
	case LevelC:
		return "C"
	case LevelD:
		return "D"
	default:
		return fmt.Sprintf("ASIL(%d)", int(l))
	}
}

// Valid reports whether l is one of ASIL A-D.
func (l Level) Valid() bool { return l >= LevelA && l <= LevelD }

// Next returns the next more critical level and whether an upgrade was
// possible (ASIL-D cannot be upgraded, per the switch-upgrade action rules
// of §IV-B).
func (l Level) Next() (Level, bool) {
	if !l.Valid() || l == LevelD {
		return l, false
	}
	return l + 1, true
}

// Min returns the less critical of two levels, treating unassigned (0) as
// less critical than everything. It implements the link-ASIL invariant of
// §IV-B: the ASIL of every link equals the lowest ASIL of its endpoints.
func Min(a, b Level) Level {
	if a < b {
		return a
	}
	return b
}

// Library is a TSSDN component library: switch costs per (port count,
// ASIL), link cost per unit length per ASIL, and failure probabilities per
// ASIL. Construct one with NewLibrary or use DefaultLibrary (Table I).
type Library struct {
	portOptions []int
	switchCost  map[Level]map[int]float64
	linkPerUnit map[Level]float64
	failProb    map[Level]float64
}

// LibraryConfig describes a component library for NewLibrary.
type LibraryConfig struct {
	// PortOptions are the available switch sizes in ascending order,
	// e.g. 4, 6, 8 external ports.
	PortOptions []int
	// SwitchCost maps ASIL level and port count to switch cost.
	SwitchCost map[Level]map[int]float64
	// LinkCostPerUnit maps ASIL level to link cost per unit cable length.
	LinkCostPerUnit map[Level]float64
	// FailureProb maps ASIL level to per-component failure probability over
	// the analysis horizon.
	FailureProb map[Level]float64
}

// NewLibrary validates cfg and builds a Library.
func NewLibrary(cfg LibraryConfig) (*Library, error) {
	if len(cfg.PortOptions) == 0 {
		return nil, fmt.Errorf("library: no port options")
	}
	for i := 1; i < len(cfg.PortOptions); i++ {
		if cfg.PortOptions[i] <= cfg.PortOptions[i-1] {
			return nil, fmt.Errorf("library: port options must be strictly ascending, got %v", cfg.PortOptions)
		}
	}
	lib := &Library{
		portOptions: append([]int(nil), cfg.PortOptions...),
		switchCost:  make(map[Level]map[int]float64, len(Levels())),
		linkPerUnit: make(map[Level]float64, len(Levels())),
		failProb:    make(map[Level]float64, len(Levels())),
	}
	for _, lvl := range Levels() {
		costs, ok := cfg.SwitchCost[lvl]
		if !ok {
			return nil, fmt.Errorf("library: missing switch costs for ASIL-%s", lvl)
		}
		row := make(map[int]float64, len(lib.portOptions))
		for _, p := range lib.portOptions {
			c, ok := costs[p]
			if !ok {
				return nil, fmt.Errorf("library: missing %d-port switch cost for ASIL-%s", p, lvl)
			}
			if c <= 0 {
				return nil, fmt.Errorf("library: non-positive switch cost for ASIL-%s %d-port", lvl, p)
			}
			row[p] = c
		}
		lib.switchCost[lvl] = row

		lc, ok := cfg.LinkCostPerUnit[lvl]
		if !ok || lc <= 0 {
			return nil, fmt.Errorf("library: missing or non-positive link cost for ASIL-%s", lvl)
		}
		lib.linkPerUnit[lvl] = lc

		fp, ok := cfg.FailureProb[lvl]
		if !ok || fp <= 0 || fp >= 1 {
			return nil, fmt.Errorf("library: failure probability for ASIL-%s must be in (0,1)", lvl)
		}
		lib.failProb[lvl] = fp
	}
	// Higher ASIL must not fail more often.
	for i := 1; i < len(Levels()); i++ {
		lo, hi := Levels()[i-1], Levels()[i]
		if lib.failProb[hi] > lib.failProb[lo] {
			return nil, fmt.Errorf("library: ASIL-%s fails more often than ASIL-%s", hi, lo)
		}
	}
	return lib, nil
}

// DefaultLibrary returns the component library of Table I: ASIL-A switches
// cost 8/10/16 for 4/6/8 ports, each ASIL step multiplies switch cost by
// 1.5x and link cost by 2x, and the failure probability for ASIL A-D is
// ≈1e-3 .. ≈1e-6: exponentially distributed failures over 1000 working
// hours at the ISO 26262 failure rates, i.e. 1 − e^{−λ·1000} (§VI-A).
// The exact value matters: 1 − e^{−1e-9·1000} is slightly BELOW 1e-6, which
// is what lets a single ASIL-D device function without a backup at
// R = 1e-6 (the paper's choice of R for exactly this reason).
func DefaultLibrary() *Library {
	lib, err := NewLibrary(LibraryConfig{
		PortOptions: []int{4, 6, 8},
		SwitchCost: map[Level]map[int]float64{
			LevelA: {4: 8, 6: 10, 8: 16},
			LevelB: {4: 12, 6: 15, 8: 24},
			LevelC: {4: 18, 6: 22, 8: 36},
			LevelD: {4: 27, 6: 33, 8: 54},
		},
		LinkCostPerUnit: map[Level]float64{
			LevelA: 1, LevelB: 2, LevelC: 4, LevelD: 8,
		},
		FailureProb: map[Level]float64{
			LevelA: failureProbOverHorizon(1e-6, 1000),
			LevelB: failureProbOverHorizon(1e-7, 1000),
			LevelC: failureProbOverHorizon(1e-8, 1000),
			LevelD: failureProbOverHorizon(1e-9, 1000),
		},
	})
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return lib
}

// MaxSwitchDegree returns the largest available switch port count, which is
// the degree constraint enforced by the SOAG masks.
func (l *Library) MaxSwitchDegree() int {
	return l.portOptions[len(l.portOptions)-1]
}

// PortOptions returns the available switch sizes in ascending order.
func (l *Library) PortOptions() []int {
	return append([]int(nil), l.portOptions...)
}

// SwitchCost returns csw(deg, ASIL): the cost of the cheapest library
// switch with at least deg ports at the given ASIL. A degree of zero still
// prices the smallest switch (a selected switch occupies a physical unit).
func (l *Library) SwitchCost(level Level, degree int) (float64, error) {
	if !level.Valid() {
		return 0, fmt.Errorf("switch cost: invalid ASIL %d", int(level))
	}
	if degree > l.MaxSwitchDegree() {
		return 0, fmt.Errorf("switch cost: degree %d exceeds max %d ports", degree, l.MaxSwitchDegree())
	}
	for _, p := range l.portOptions {
		if p >= degree {
			return l.switchCost[level][p], nil
		}
	}
	return 0, fmt.Errorf("switch cost: no switch with %d ports", degree)
}

// LinkCost returns clk(ASIL, length).
func (l *Library) LinkCost(level Level, length float64) (float64, error) {
	if !level.Valid() {
		return 0, fmt.Errorf("link cost: invalid ASIL %d", int(level))
	}
	if length < 0 {
		return 0, fmt.Errorf("link cost: negative length %v", length)
	}
	return l.linkPerUnit[level] * length, nil
}

// FailureProb returns cfp(ASIL), the component failure probability.
func (l *Library) FailureProb(level Level) float64 {
	return l.failProb[level]
}

// CheapestLevelWithin returns the least critical ASIL whose failure
// probability is at most maxProb, or false when even ASIL-D exceeds it.
func (l *Library) CheapestLevelWithin(maxProb float64) (Level, bool) {
	for _, lvl := range Levels() {
		if l.failProb[lvl] <= maxProb {
			return lvl, true
		}
	}
	return 0, false
}

// Assignment records the ASIL allocated to the switches and links of a
// topology. Switch keys are vertex IDs; link keys are canonical edges.
type Assignment struct {
	Switches map[int]Level
	Links    map[graph.Edge]Level
}

// NewAssignment returns an empty assignment.
func NewAssignment() *Assignment {
	return &Assignment{
		Switches: make(map[int]Level),
		Links:    make(map[graph.Edge]Level),
	}
}

// Clone deep-copies the assignment.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{
		Switches: make(map[int]Level, len(a.Switches)),
		Links:    make(map[graph.Edge]Level, len(a.Links)),
	}
	for k, v := range a.Switches {
		c.Switches[k] = v
	}
	for k, v := range a.Links {
		c.Links[k] = v
	}
	return c
}

// SwitchLevel returns the ASIL of switch id (0 if unassigned).
func (a *Assignment) SwitchLevel(id int) Level { return a.Switches[id] }

// LinkLevel returns the ASIL of the link (u, v) (0 if unassigned).
func (a *Assignment) LinkLevel(u, v int) Level {
	return a.Links[graph.Edge{U: u, V: v}.Canonical()]
}

// SetLink assigns a level to link (u, v) in canonical form. The length of
// the edge key is normalized to zero so lookups are length-independent.
func (a *Assignment) SetLink(u, v int, l Level) {
	e := graph.Edge{U: u, V: v}.Canonical()
	e.Length = 0
	a.Links[e] = l
}

// NetworkCost computes Eq. 1: the sum of switch costs
// csw(deg(v), ASIL_v) over selected switches plus link costs
// clk(ASIL_uv, len(u,v)) over selected links. End stations cost nothing.
// Every switch with an assignment or a nonzero degree must have a valid
// ASIL, and so must every edge of gt.
func NetworkCost(gt *graph.Graph, assign *Assignment, lib *Library) (float64, error) {
	var total float64
	for _, sw := range gt.VerticesOfKind(graph.KindSwitch) {
		lvl, selected := assign.Switches[sw]
		if !selected {
			if gt.Degree(sw) > 0 {
				return 0, fmt.Errorf("network cost: switch %d has edges but no ASIL", sw)
			}
			continue
		}
		c, err := lib.SwitchCost(lvl, gt.Degree(sw))
		if err != nil {
			return 0, fmt.Errorf("network cost: switch %d: %w", sw, err)
		}
		total += c
	}
	for _, e := range gt.Edges() {
		lvl := assign.LinkLevel(e.U, e.V)
		if !lvl.Valid() {
			return 0, fmt.Errorf("network cost: link (%d,%d) has no ASIL", e.U, e.V)
		}
		c, err := lib.LinkCost(lvl, e.Length)
		if err != nil {
			return 0, fmt.Errorf("network cost: link (%d,%d): %w", e.U, e.V, err)
		}
		total += c
	}
	return total, nil
}

// FailureProbability computes Eq. 2: the probability of the failure
// scenario consisting of failedNodes and failedEdges, as the product of the
// individual component failure probabilities.
func FailureProbability(assign *Assignment, lib *Library, failedNodes []int, failedEdges []graph.Edge) (float64, error) {
	p := 1.0
	for _, v := range failedNodes {
		lvl, ok := assign.Switches[v]
		if !ok {
			return 0, fmt.Errorf("failure probability: node %d has no ASIL", v)
		}
		p *= lib.FailureProb(lvl)
	}
	for _, e := range failedEdges {
		lvl := assign.LinkLevel(e.U, e.V)
		if !lvl.Valid() {
			return 0, fmt.Errorf("failure probability: link (%d,%d) has no ASIL", e.U, e.V)
		}
		p *= lib.FailureProb(lvl)
	}
	return p, nil
}

// DecompositionPairs returns the ASIL decomposition options of ISO 26262
// for a goal level: the pairs of (redundant) levels that jointly satisfy
// it. It is used by the TRH baseline to justify two ASIL-B FRER paths
// standing in for an ASIL-D requirement.
func DecompositionPairs(goal Level) [][2]Level {
	switch goal {
	case LevelD:
		return [][2]Level{{LevelD, 0}, {LevelC, LevelA}, {LevelB, LevelB}}
	case LevelC:
		return [][2]Level{{LevelC, 0}, {LevelB, LevelA}, {LevelA, LevelB}}
	case LevelB:
		return [][2]Level{{LevelB, 0}, {LevelA, LevelA}}
	case LevelA:
		return [][2]Level{{LevelA, 0}}
	default:
		return nil
	}
}

// DecompositionSatisfies reports whether two independent channels at levels
// a and b satisfy the goal level under ASIL decomposition. A single channel
// (b == 0) must meet the goal directly.
func DecompositionSatisfies(goal, a, b Level) bool {
	if b == 0 {
		return a >= goal
	}
	if a < b {
		a, b = b, a
	}
	for _, pair := range DecompositionPairs(goal) {
		pa, pb := pair[0], pair[1]
		if pa < pb {
			pa, pb = pb, pa
		}
		if pb == 0 {
			continue
		}
		if a >= pa && b >= pb {
			return true
		}
	}
	return false
}
