package asil

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestDefaultLibraryMatchesPaper(t *testing.T) {
	lib := DefaultLibrary()
	// Table I switch costs.
	wantSwitch := map[Level]map[int]float64{
		LevelA: {4: 8, 6: 10, 8: 16},
		LevelB: {4: 12, 6: 15, 8: 24},
		LevelC: {4: 18, 6: 22, 8: 36},
		LevelD: {4: 27, 6: 33, 8: 54},
	}
	for lvl, row := range wantSwitch {
		for ports, want := range row {
			got, err := lib.SwitchCost(lvl, ports)
			if err != nil {
				t.Fatalf("SwitchCost(%s,%d): %v", lvl, ports, err)
			}
			if got != want {
				t.Errorf("SwitchCost(%s,%d) = %v, want %v", lvl, ports, got, want)
			}
		}
	}
	// Table I link costs per unit length.
	wantLink := map[Level]float64{LevelA: 1, LevelB: 2, LevelC: 4, LevelD: 8}
	for lvl, want := range wantLink {
		got, err := lib.LinkCost(lvl, 1)
		if err != nil {
			t.Fatalf("LinkCost(%s,1): %v", lvl, err)
		}
		if got != want {
			t.Errorf("LinkCost(%s,1) = %v, want %v", lvl, got, want)
		}
	}
	// Table I failure probabilities: 1 − e^{−λ·1000h} ≈ the rounded 10^-n
	// values, but strictly below them (the ASIL-D probability must stay
	// below R = 1e-6 so a single ASIL-D device is a safe fault, §VI-A).
	wantProb := map[Level]float64{LevelA: 1e-3, LevelB: 1e-4, LevelC: 1e-5, LevelD: 1e-6}
	for lvl, want := range wantProb {
		got := lib.FailureProb(lvl)
		if got >= want || got < want*0.999 {
			t.Errorf("FailureProb(%s) = %v, want just below %v", lvl, got, want)
		}
	}
	if lib.MaxSwitchDegree() != 8 {
		t.Errorf("MaxSwitchDegree = %d, want 8", lib.MaxSwitchDegree())
	}
}

func TestSwitchCostPicksSmallestFeasible(t *testing.T) {
	lib := DefaultLibrary()
	cases := []struct {
		deg  int
		want float64
	}{
		{0, 8}, {1, 8}, {4, 8}, {5, 10}, {6, 10}, {7, 16}, {8, 16},
	}
	for _, c := range cases {
		got, err := lib.SwitchCost(LevelA, c.deg)
		if err != nil {
			t.Fatalf("SwitchCost(A,%d): %v", c.deg, err)
		}
		if got != c.want {
			t.Errorf("SwitchCost(A,%d) = %v, want %v", c.deg, got, c.want)
		}
	}
	if _, err := lib.SwitchCost(LevelA, 9); err == nil {
		t.Error("degree 9 should exceed the library")
	}
	if _, err := lib.SwitchCost(Level(0), 4); err == nil {
		t.Error("invalid ASIL should error")
	}
}

func TestLinkCostScalesWithLength(t *testing.T) {
	lib := DefaultLibrary()
	got, err := lib.LinkCost(LevelC, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("LinkCost(C,2.5) = %v, want 10", got)
	}
	if _, err := lib.LinkCost(LevelC, -1); err == nil {
		t.Error("negative length should error")
	}
}

func TestLevelHelpers(t *testing.T) {
	if LevelA.String() != "A" || LevelD.String() != "D" {
		t.Error("Level.String wrong")
	}
	if Level(0).Valid() || Level(5).Valid() {
		t.Error("invalid levels reported valid")
	}
	if n, ok := LevelA.Next(); !ok || n != LevelB {
		t.Error("A.Next should be B")
	}
	if _, ok := LevelD.Next(); ok {
		t.Error("D must not be upgradable")
	}
	if Min(LevelB, LevelD) != LevelB || Min(LevelD, LevelA) != LevelA {
		t.Error("Min wrong")
	}
	if Min(0, LevelA) != 0 {
		t.Error("Min should treat unassigned as lowest")
	}
}

func TestCheapestLevelWithin(t *testing.T) {
	lib := DefaultLibrary()
	if lvl, ok := lib.CheapestLevelWithin(1e-3); !ok || lvl != LevelA {
		t.Errorf("CheapestLevelWithin(1e-3) = %v,%v", lvl, ok)
	}
	if lvl, ok := lib.CheapestLevelWithin(5e-5); !ok || lvl != LevelC {
		t.Errorf("CheapestLevelWithin(5e-5) = %v,%v", lvl, ok)
	}
	if _, ok := lib.CheapestLevelWithin(1e-9); ok {
		t.Error("nothing should satisfy 1e-9")
	}
}

func TestNewLibraryValidation(t *testing.T) {
	base := LibraryConfig{
		PortOptions: []int{4},
		SwitchCost: map[Level]map[int]float64{
			LevelA: {4: 1}, LevelB: {4: 2}, LevelC: {4: 3}, LevelD: {4: 4},
		},
		LinkCostPerUnit: map[Level]float64{LevelA: 1, LevelB: 2, LevelC: 3, LevelD: 4},
		FailureProb:     map[Level]float64{LevelA: 1e-3, LevelB: 1e-4, LevelC: 1e-5, LevelD: 1e-6},
	}
	if _, err := NewLibrary(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	bad := base
	bad.PortOptions = nil
	if _, err := NewLibrary(bad); err == nil {
		t.Error("empty port options accepted")
	}

	bad = base
	bad.PortOptions = []int{4, 4}
	if _, err := NewLibrary(bad); err == nil {
		t.Error("non-ascending port options accepted")
	}

	bad = base
	bad.SwitchCost = map[Level]map[int]float64{LevelA: {4: 1}}
	if _, err := NewLibrary(bad); err == nil {
		t.Error("missing switch costs accepted")
	}

	bad = base
	bad.FailureProb = map[Level]float64{LevelA: 1e-6, LevelB: 1e-4, LevelC: 1e-5, LevelD: 1e-3}
	if _, err := NewLibrary(bad); err == nil {
		t.Error("inverted failure probabilities accepted")
	}

	bad = base
	bad.FailureProb = map[Level]float64{LevelA: 1e-3, LevelB: 1e-4, LevelC: 1e-5, LevelD: 2}
	if _, err := NewLibrary(bad); err == nil {
		t.Error("failure probability >= 1 accepted")
	}
}

// costFixture builds ES0 - SW2 - ES1 with switch ASIL-B and both links
// inheriting ASIL-B; link lengths 1 each.
func costFixture(t testing.TB) (*graph.Graph, *Assignment) {
	t.Helper()
	g := graph.New()
	g.AddVertex("es0", graph.KindEndStation)
	g.AddVertex("es1", graph.KindEndStation)
	g.AddVertex("sw0", graph.KindSwitch)
	if err := g.AddEdge(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	a := NewAssignment()
	a.Switches[2] = LevelB
	a.SetLink(0, 2, LevelB)
	a.SetLink(2, 1, LevelB)
	return g, a
}

func TestNetworkCostEq1(t *testing.T) {
	g, a := costFixture(t)
	lib := DefaultLibrary()
	got, err := NetworkCost(g, a, lib)
	if err != nil {
		t.Fatal(err)
	}
	// 4-port ASIL-B switch = 12, two ASIL-B unit links = 2*2.
	if got != 16 {
		t.Errorf("NetworkCost = %v, want 16", got)
	}
}

func TestNetworkCostErrors(t *testing.T) {
	lib := DefaultLibrary()
	g, a := costFixture(t)
	delete(a.Switches, 2)
	if _, err := NetworkCost(g, a, lib); err == nil {
		t.Error("switch without ASIL accepted")
	}

	g, a = costFixture(t)
	delete(a.Links, graph.Edge{U: 0, V: 2})
	if _, err := NetworkCost(g, a, lib); err == nil {
		t.Error("link without ASIL accepted")
	}
}

func TestNetworkCostIgnoresUnselectedSwitch(t *testing.T) {
	g, a := costFixture(t)
	g.AddVertex("sw-unused", graph.KindSwitch) // degree 0, unassigned
	lib := DefaultLibrary()
	got, err := NetworkCost(g, a, lib)
	if err != nil {
		t.Fatal(err)
	}
	if got != 16 {
		t.Errorf("NetworkCost = %v, want 16 (unused switch must be free)", got)
	}
}

func TestFailureProbabilityEq2(t *testing.T) {
	_, a := costFixture(t)
	lib := DefaultLibrary()
	p, err := FailureProbability(a, lib, []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1e-4) > 1e-7 {
		t.Errorf("P(switch B fails) = %v, want ~1e-4", p)
	}
	p, err = FailureProbability(a, lib, []int{2}, []graph.Edge{{U: 0, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1e-8) > 1e-11 {
		t.Errorf("P(joint) = %v, want ~1e-8", p)
	}
	if _, err := FailureProbability(a, lib, []int{99}, nil); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := FailureProbability(a, lib, nil, []graph.Edge{{U: 5, V: 6}}); err == nil {
		t.Error("unknown link accepted")
	}
	p, err = FailureProbability(a, lib, nil, nil)
	if err != nil || p != 1 {
		t.Errorf("empty failure = %v,%v, want 1,nil", p, err)
	}
}

func TestFailureProbabilityMonotoneProperty(t *testing.T) {
	lib := DefaultLibrary()
	a := NewAssignment()
	for i := 0; i < 8; i++ {
		a.Switches[i] = Levels()[i%4]
	}
	prop := func(maskRaw uint8) bool {
		var set []int
		for i := 0; i < 8; i++ {
			if maskRaw&(1<<i) != 0 {
				set = append(set, i)
			}
		}
		p1, err := FailureProbability(a, lib, set, nil)
		if err != nil {
			return false
		}
		// Growing the failure set can only decrease (or keep) probability.
		grown := append(append([]int(nil), set...), int(maskRaw)%8)
		p2, err := FailureProbability(a, lib, grown, nil)
		if err != nil {
			return false
		}
		return p2 <= p1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentCloneAndLinkLookup(t *testing.T) {
	a := NewAssignment()
	a.Switches[1] = LevelC
	a.SetLink(5, 3, LevelB)
	if a.LinkLevel(3, 5) != LevelB || a.LinkLevel(5, 3) != LevelB {
		t.Error("link lookup must be order independent")
	}
	c := a.Clone()
	c.Switches[1] = LevelD
	c.SetLink(5, 3, LevelD)
	if a.Switches[1] != LevelC || a.LinkLevel(5, 3) != LevelB {
		t.Error("Clone shares storage")
	}
	if a.SwitchLevel(42) != 0 {
		t.Error("missing switch should be level 0")
	}
}

func TestDecomposition(t *testing.T) {
	// ISO 26262: D = B+B or C+A; single channel must be >= goal.
	cases := []struct {
		goal, a, b Level
		want       bool
	}{
		{LevelD, LevelB, LevelB, true},
		{LevelD, LevelC, LevelA, true},
		{LevelD, LevelA, LevelC, true},
		{LevelD, LevelB, LevelA, false},
		{LevelD, LevelA, LevelA, false},
		{LevelD, LevelD, 0, true},
		{LevelD, LevelC, 0, false},
		{LevelC, LevelB, LevelA, true},
		{LevelC, LevelA, LevelA, false},
		{LevelB, LevelA, LevelA, true},
		{LevelA, LevelA, 0, true},
	}
	for _, c := range cases {
		if got := DecompositionSatisfies(c.goal, c.a, c.b); got != c.want {
			t.Errorf("DecompositionSatisfies(%s,%s,%s) = %v, want %v", c.goal, c.a, c.b, got, c.want)
		}
	}
	if DecompositionPairs(Level(7)) != nil {
		t.Error("invalid goal should have no pairs")
	}
}
