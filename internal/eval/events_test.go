package eval

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obsv"
)

func epochEv(epoch int, v map[string]float64) obsv.Event {
	return obsv.Event{Type: obsv.EventEpoch, Epoch: epoch, V: v}
}

func TestSummarizeEvents(t *testing.T) {
	events := []obsv.Event{
		{Type: obsv.EventRunStart, V: map[string]float64{"epochs": 4}},
		epochEv(1, map[string]float64{
			"reward": -4, "trajectories": 3, "solutions": 0, "dead_ends": 3,
			"env_steps": 100, "duration_seconds": 1, "analysis_seconds": 0.5,
			"cache_hits": 10, "cache_misses": 90,
		}),
		epochEv(2, map[string]float64{
			"reward": -2, "trajectories": 3, "solutions": 1, "dead_ends": 2,
			"env_steps": 100, "duration_seconds": 1, "analysis_seconds": 0.25,
			"cache_hits": 60, "cache_misses": 40, "best_cost": 120,
			"early_stopped": 1, "divergences": 1,
		}),
		epochEv(4, map[string]float64{
			"reward": -1, "trajectories": 4, "solutions": 2, "dead_ends": 1,
			"env_steps": 100, "duration_seconds": 1, "analysis_seconds": 0.25,
			"cache_hits": 80, "cache_misses": 20, "best_cost": 100, "panics": 1,
		}),
		// Out-of-order epoch (a resumed run re-emitting): later record wins.
		epochEv(3, map[string]float64{
			"reward": -3, "env_steps": 100, "duration_seconds": 1, "best_cost": 120,
		}),
		{Type: obsv.EventRunEnd, V: map[string]float64{"interrupted": 1}},
	}
	s, err := SummarizeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epochs != 4 {
		t.Fatalf("Epochs = %d, want 4", s.Epochs)
	}
	if s.FirstReward != -4 || s.FinalReward != -1 || s.BestReward != -1 || s.BestRewardEpoch != 4 {
		t.Fatalf("reward fields wrong: %+v", s)
	}
	if s.TailMeanReward != -1 { // tail = last quarter = 1 epoch
		t.Fatalf("TailMeanReward = %v, want -1", s.TailMeanReward)
	}
	// Rewards -4,-2,-3,-1 over epochs 1..4: least-squares slope is +0.8.
	if math.Abs(s.RewardSlope-0.8) > 1e-12 {
		t.Fatalf("RewardSlope = %v, want 0.8", s.RewardSlope)
	}
	if s.Solutions != 3 || s.DeadEnds != 6 || s.Trajectories != 10 || s.EnvSteps != 400 {
		t.Fatalf("search totals wrong: %+v", s)
	}
	if s.BestCost != 100 || s.BestCostEpoch != 4 {
		t.Fatalf("best cost wrong: %+v", s)
	}
	if s.Divergences != 1 || s.Quarantines != 1 || s.EarlyStops != 1 {
		t.Fatalf("stability counts wrong: %+v", s)
	}
	if s.WallClock != 4*time.Second || s.AnalysisTime != time.Second {
		t.Fatalf("time totals wrong: %+v", s)
	}
	if math.Abs(s.CacheHitRate-0.5) > 1e-12 {
		t.Fatalf("CacheHitRate = %v, want 0.5", s.CacheHitRate)
	}
	if !s.Interrupted || !s.HasRunOutcome {
		t.Fatalf("run outcome wrong: %+v", s)
	}

	r := s.Render()
	for _, want := range []string{"4 epoch(s)", "(interrupted)", "cost 100.0", "1 divergence rollback(s)"} {
		if !strings.Contains(r, want) {
			t.Fatalf("Render missing %q:\n%s", want, r)
		}
	}
}

func TestSummarizeEventsErrors(t *testing.T) {
	if _, err := SummarizeEvents(nil); err == nil {
		t.Error("empty log accepted")
	}
	if _, err := SummarizeEvents([]obsv.Event{{Type: obsv.EventRunStart}}); err == nil {
		t.Error("log without epoch events accepted")
	}
	if _, err := SummarizeEvents([]obsv.Event{{Type: obsv.EventEpoch}}); err == nil {
		t.Error("epoch event without epoch number accepted")
	}
}
