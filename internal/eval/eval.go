// Package eval is the experiment harness that regenerates the paper's
// evaluation (§VI): Fig. 4(a) guarantee rates, Fig. 4(b) best-solution
// costs and Fig. 4(c) switch-ASIL distributions across the four approaches,
// plus the Fig. 5 sensitivity curves (GCN depth, MLP width, K). Results
// render as text tables whose rows/series match the paper's plots.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/asil"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/graph"
)

// Approach identifies one of the compared planners.
type Approach string

// The four approaches of Fig. 4.
const (
	ApproachOriginal  Approach = "original"
	ApproachTRH       Approach = "trh"
	ApproachNeuroPlan Approach = "neuroplan"
	ApproachNPTSN     Approach = "nptsn"
)

// AllApproaches lists the Fig. 4 lineup in plot order.
func AllApproaches() []Approach {
	return []Approach{ApproachOriginal, ApproachTRH, ApproachNeuroPlan, ApproachNPTSN}
}

// CaseResult is one (approach, test case) outcome.
type CaseResult struct {
	Approach     Approach
	GuaranteeMet bool
	// Cost of the best/only solution (0 when none was produced).
	Cost float64
	// SwitchLevels counts selected switches per ASIL (for Fig. 4c).
	SwitchLevels map[asil.Level]int
	// Reason explains a failed guarantee.
	Reason string
	// Solution is the best/only solution produced (nil when none).
	Solution *core.Solution
	// CertVerdict records the independent certification audit's verdict
	// ("PASS"/"FAIL") when certification was requested; empty otherwise.
	CertVerdict string
}

// switchLevelCounts extracts the ASIL histogram of a solution's switches.
func switchLevelCounts(sol *core.Solution) map[asil.Level]int {
	counts := make(map[asil.Level]int)
	if sol == nil {
		return counts
	}
	for _, lvl := range sol.Assignment.Switches {
		counts[lvl]++
	}
	return counts
}

// RunCase evaluates the selected approaches on one planning problem.
// `original` supplies the manual topology for ApproachOriginal (skipped
// when nil). The two RL configurations are used as-is, so callers control
// the training budget.
func RunCase(prob *core.Problem, original *graph.Graph, nptsnCfg, neuroPlanCfg core.Config, approaches []Approach) (map[Approach]CaseResult, error) {
	out := make(map[Approach]CaseResult, len(approaches))
	for _, ap := range approaches {
		switch ap {
		case ApproachOriginal:
			if original == nil {
				continue
			}
			res, err := (&baselines.Original{Topology: original, AnalyzerWorkers: nptsnCfg.AnalyzerWorkers}).Plan(prob)
			if err != nil {
				return nil, fmt.Errorf("original: %w", err)
			}
			out[ap] = CaseResult{
				Approach: ap, GuaranteeMet: res.GuaranteeMet,
				Cost: res.Solution.Cost, Reason: res.Reason,
				SwitchLevels: switchLevelCounts(res.Solution),
				Solution:     res.Solution,
			}
		case ApproachTRH:
			res, err := baselines.NewTRH().Plan(prob)
			if err != nil {
				return nil, fmt.Errorf("trh: %w", err)
			}
			cr := CaseResult{Approach: ap, GuaranteeMet: res.GuaranteeMet, Reason: res.Reason}
			if res.Solution != nil {
				cr.Cost = res.Solution.Cost
				cr.SwitchLevels = switchLevelCounts(res.Solution)
				cr.Solution = res.Solution
			}
			out[ap] = cr
		case ApproachNeuroPlan:
			np, err := baselines.NewNeuroPlan(neuroPlanCfg)
			if err != nil {
				return nil, err
			}
			res, _, err := np.Plan(prob)
			if err != nil {
				return nil, fmt.Errorf("neuroplan: %w", err)
			}
			cr := CaseResult{Approach: ap, GuaranteeMet: res.GuaranteeMet, Reason: res.Reason}
			if res.Solution != nil {
				cr.Cost = res.Solution.Cost
				cr.SwitchLevels = switchLevelCounts(res.Solution)
				cr.Solution = res.Solution
			}
			out[ap] = cr
		case ApproachNPTSN:
			pl, err := core.NewPlanner(prob, nptsnCfg)
			if err != nil {
				return nil, err
			}
			report, err := pl.Plan()
			if err != nil {
				return nil, fmt.Errorf("nptsn: %w", err)
			}
			cr := CaseResult{Approach: ap, GuaranteeMet: report.GuaranteeMet()}
			if report.Best != nil {
				cr.Cost = report.Best.Cost
				cr.SwitchLevels = switchLevelCounts(report.Best)
				cr.Solution = report.Best
			} else {
				cr.Reason = "no valid topology discovered within the training budget"
			}
			out[ap] = cr
		default:
			return nil, fmt.Errorf("eval: unknown approach %q", ap)
		}
	}
	return out, nil
}

// Fig4Row aggregates all cases for one flow count.
type Fig4Row struct {
	Flows int
	// GuaranteeRate is the fraction of cases with the guarantee met.
	GuaranteeRate map[Approach]float64
	// MeanCost averages best-solution cost over cases where a solution was
	// produced (the paper plots solution quality).
	MeanCost map[Approach]float64
	// SwitchLevels sums the ASIL histograms over cases with solutions.
	SwitchLevels map[Approach]map[asil.Level]int
	// CertifiedRate is the fraction of certificates with verdict PASS among
	// cases where the independent audit ran (absent key = no audits).
	CertifiedRate map[Approach]float64
	// Cases is the number of test cases behind the row.
	Cases int
}

// Fig4Result is the full Fig. 4 dataset.
type Fig4Result struct {
	Rows       []Fig4Row
	Approaches []Approach
}

// Aggregate folds per-case results into a Fig4Row.
func Aggregate(flows int, cases []map[Approach]CaseResult, approaches []Approach) Fig4Row {
	row := Fig4Row{
		Flows:         flows,
		GuaranteeRate: make(map[Approach]float64),
		MeanCost:      make(map[Approach]float64),
		SwitchLevels:  make(map[Approach]map[asil.Level]int),
		CertifiedRate: make(map[Approach]float64),
		Cases:         len(cases),
	}
	counts := make(map[Approach]int)
	solved := make(map[Approach]int)
	certified := make(map[Approach]int)
	for _, c := range cases {
		for ap, r := range c {
			counts[ap]++
			if r.GuaranteeMet {
				row.GuaranteeRate[ap]++
			}
			if r.CertVerdict != "" {
				certified[ap]++
				if r.CertVerdict == "PASS" {
					row.CertifiedRate[ap]++
				}
			}
			if r.Cost > 0 {
				row.MeanCost[ap] += r.Cost
				solved[ap]++
			}
			if len(r.SwitchLevels) > 0 {
				if row.SwitchLevels[ap] == nil {
					row.SwitchLevels[ap] = make(map[asil.Level]int)
				}
				for lvl, n := range r.SwitchLevels {
					row.SwitchLevels[ap][lvl] += n
				}
			}
		}
	}
	for ap := range counts {
		row.GuaranteeRate[ap] /= float64(counts[ap])
		if solved[ap] > 0 {
			row.MeanCost[ap] /= float64(solved[ap])
		}
		if certified[ap] > 0 {
			row.CertifiedRate[ap] /= float64(certified[ap])
		} else {
			delete(row.CertifiedRate, ap)
		}
	}
	return row
}

// RenderGuarantee formats the Fig. 4(a) series: percentage of test cases
// with the reliability guarantee per flow count.
func (r *Fig4Result) RenderGuarantee() string {
	return r.render("Fig 4(a): % of test cases with reliability guarantee", func(row Fig4Row, ap Approach) string {
		return fmt.Sprintf("%5.0f%%", row.GuaranteeRate[ap]*100)
	})
}

// RenderCost formats the Fig. 4(b) series: mean best-solution network cost.
func (r *Fig4Result) RenderCost() string {
	return r.render("Fig 4(b): network cost of the best solution", func(row Fig4Row, ap Approach) string {
		c := row.MeanCost[ap]
		if c == 0 {
			return "     -"
		}
		return fmt.Sprintf("%6.1f", c)
	})
}

// RenderCertification formats the independent-audit series: percentage of
// produced solutions whose certification verdict was PASS.
func (r *Fig4Result) RenderCertification() string {
	return r.render("Certification: % of solutions passing the independent audit", func(row Fig4Row, ap Approach) string {
		rate, ok := row.CertifiedRate[ap]
		if !ok {
			return "     -"
		}
		return fmt.Sprintf("%5.0f%%", rate*100)
	})
}

// RenderASIL formats the Fig. 4(c) series: ASIL distribution of selected
// switches for the RL approaches.
func (r *Fig4Result) RenderASIL() string {
	var b strings.Builder
	b.WriteString("Fig 4(c): switch ASIL distribution (% of selected switches)\n")
	for _, ap := range []Approach{ApproachNPTSN, ApproachNeuroPlan} {
		if !r.has(ap) {
			continue
		}
		fmt.Fprintf(&b, "%s:\n", ap)
		fmt.Fprintf(&b, "  %-6s %6s %6s %6s %6s\n", "flows", "A", "B", "C", "D")
		for _, row := range r.Rows {
			hist := row.SwitchLevels[ap]
			total := 0
			for _, n := range hist {
				total += n
			}
			if total == 0 {
				fmt.Fprintf(&b, "  %-6d %6s %6s %6s %6s\n", row.Flows, "-", "-", "-", "-")
				continue
			}
			fmt.Fprintf(&b, "  %-6d", row.Flows)
			for _, lvl := range asil.Levels() {
				fmt.Fprintf(&b, " %5.1f%%", float64(hist[lvl])/float64(total)*100)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func (r *Fig4Result) has(ap Approach) bool {
	for _, a := range r.Approaches {
		if a == ap {
			return true
		}
	}
	return false
}

func (r *Fig4Result) render(title string, cell func(Fig4Row, Approach) string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-6s", "flows")
	for _, ap := range r.Approaches {
		fmt.Fprintf(&b, " %10s", ap)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6d", row.Flows)
		for _, ap := range r.Approaches {
			fmt.Fprintf(&b, " %10s", strings.TrimSpace(cell(row, ap)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SensitivityVariant is one curve of a Fig. 5 plot.
type SensitivityVariant struct {
	Label string
	Cfg   core.Config
}

// SensitivityResult carries the per-epoch reward curves.
type SensitivityResult struct {
	Title  string
	Labels []string
	// Rewards[label][epoch] is the epoch reward.
	Rewards map[string][]float64
	// Reports keeps the full training reports for deeper inspection.
	Reports map[string]*core.Report
}

// RunSensitivity trains NPTSN once per variant on the same problem and
// collects the epoch-reward curves (the Fig. 5 methodology: vary one
// customized parameter at a time).
func RunSensitivity(title string, prob *core.Problem, variants []SensitivityVariant) (*SensitivityResult, error) {
	res := &SensitivityResult{
		Title:   title,
		Rewards: make(map[string][]float64, len(variants)),
		Reports: make(map[string]*core.Report, len(variants)),
	}
	for _, v := range variants {
		pl, err := core.NewPlanner(prob, v.Cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Label, err)
		}
		report, err := pl.Plan()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.Label, err)
		}
		curve := make([]float64, len(report.Epochs))
		for i, e := range report.Epochs {
			curve[i] = e.Reward
		}
		res.Labels = append(res.Labels, v.Label)
		res.Rewards[v.Label] = curve
		res.Reports[v.Label] = report
	}
	return res, nil
}

// Render formats the reward curves as one row per epoch.
func (r *SensitivityResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	fmt.Fprintf(&b, "%-6s", "epoch")
	for _, l := range r.Labels {
		fmt.Fprintf(&b, " %12s", l)
	}
	b.WriteByte('\n')
	maxEpochs := 0
	for _, l := range r.Labels {
		if n := len(r.Rewards[l]); n > maxEpochs {
			maxEpochs = n
		}
	}
	for e := 0; e < maxEpochs; e++ {
		fmt.Fprintf(&b, "%-6d", e+1)
		for _, l := range r.Labels {
			if e < len(r.Rewards[l]) {
				fmt.Fprintf(&b, " %12.4f", r.Rewards[l][e])
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FinalRewards summarizes each curve by its mean reward over the last
// quarter of training (a convergence proxy used in the shape assertions).
func (r *SensitivityResult) FinalRewards() map[string]float64 {
	out := make(map[string]float64, len(r.Labels))
	for _, l := range r.Labels {
		curve := r.Rewards[l]
		if len(curve) == 0 {
			continue
		}
		start := len(curve) * 3 / 4
		if start == len(curve) {
			start = len(curve) - 1
		}
		var sum float64
		for _, v := range curve[start:] {
			sum += v
		}
		out[l] = sum / float64(len(curve)-start)
	}
	return out
}

// SortedApproaches returns a stable ordering for map iteration in reports.
func SortedApproaches(m map[Approach]CaseResult) []Approach {
	var aps []Approach
	for ap := range m {
		aps = append(aps, ap)
	}
	sort.Slice(aps, func(i, j int) bool { return aps[i] < aps[j] })
	return aps
}
