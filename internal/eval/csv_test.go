package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/asil"
	"repro/internal/core"
)

func TestWriteCurvesCSV(t *testing.T) {
	res := &SensitivityResult{
		Labels: []string{"A", "B"},
		Rewards: map[string][]float64{
			"A": {-0.5, -0.4},
			"B": {-0.6},
		},
	}
	var buf bytes.Buffer
	if err := res.WriteCurvesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "epoch,A,B" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "2,-0.400000,") {
		t.Fatalf("row = %q", lines[2])
	}
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("short curve should leave an empty cell: %q", lines[2])
	}
}

func TestWriteTrainingCSV(t *testing.T) {
	report := &core.Report{Epochs: []core.EpochStats{
		{Epoch: 1, Reward: -0.3, Trajectories: 4, Solutions: 1, BestCost: 120, Duration: 1500 * time.Millisecond},
	}}
	var buf bytes.Buffer
	if err := WriteTrainingCSV(&buf, report); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "epoch,reward") || !strings.Contains(out, "1,-0.300000,4,1,0,120.000000") {
		t.Fatalf("csv:\n%s", out)
	}
	if !strings.Contains(out, ",1500") {
		t.Fatalf("duration missing:\n%s", out)
	}
	if err := WriteTrainingCSV(&buf, nil); err == nil {
		t.Fatal("nil report accepted")
	}
}

func TestWriteFig4CSV(t *testing.T) {
	row := Aggregate(10, []map[Approach]CaseResult{
		{ApproachNPTSN: {GuaranteeMet: true, Cost: 100, SwitchLevels: map[asil.Level]int{asil.LevelA: 1}}},
	}, []Approach{ApproachNPTSN})
	res := &Fig4Result{Rows: []Fig4Row{row}, Approaches: []Approach{ApproachNPTSN}}
	var buf bytes.Buffer
	if err := res.WriteFig4CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "flows,nptsn_guarantee,nptsn_mean_cost") || !strings.Contains(out, "10,1.000,100.0") {
		t.Fatalf("csv:\n%s", out)
	}
}
