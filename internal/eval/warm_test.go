package eval

import (
	"strings"
	"testing"

	"repro/internal/scenarios"
)

func TestRunWarmCold(t *testing.T) {
	s, err := scenarios.Family("mesh", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := scenarios.Churn(scenarios.ChurnOptions{
		Scenario: s, BaseFlows: 3, Steps: 2,
		AddsPerStep: -1, RemovesPerStep: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := microCfg(1)
	cfg.MaxEpoch = 4
	res, err := RunWarmCold(trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 2 {
		t.Fatalf("cases = %d, want 2", len(res.Cases))
	}
	for _, c := range res.Cases {
		if c.Info == nil {
			t.Fatalf("step %d: warm run has no WarmStartInfo", c.Step)
		}
		// Remove-only deltas keep the prior plan valid, so the warm seed
		// must instant-solve: zero training epochs, zero env steps.
		if !c.Info.SeedSolved {
			t.Errorf("step %d (%s): remove-only delta did not instant-solve", c.Step, c.Delta)
		}
		if c.Info.SeedSolved && (c.WarmEpochs != 0 || c.WarmEnvSteps != 0) {
			t.Errorf("step %d: instant-solve still trained (%d epochs, %d steps)",
				c.Step, c.WarmEpochs, c.WarmEnvSteps)
		}
		if !c.WarmSolved {
			t.Errorf("step %d: warm run produced no solution", c.Step)
		}
		if !c.ColdSolved {
			t.Errorf("step %d: cold run produced no solution", c.Step)
		}
		if c.ColdEnvSteps <= c.WarmEnvSteps {
			t.Errorf("step %d: cold spent %d env steps, warm %d — no measurable saving",
				c.Step, c.ColdEnvSteps, c.WarmEnvSteps)
		}
	}
	out := res.Render()
	for _, want := range []string{"Warm vs cold", "cold steps", "sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
