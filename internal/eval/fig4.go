package eval

import (
	"context"
	"fmt"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/nbf"
	"repro/internal/scenarios"
)

// Fig4Options configures the performance-evaluation sweep of §VI-A.
type Fig4Options struct {
	// Scenario supplies the connection graph and (for Original) the manual
	// topology.
	Scenario *scenarios.Scenario
	// FlowCounts are the x-axis points (10..50 in the paper).
	FlowCounts []int
	// Cases is the number of random test cases per flow count (10).
	Cases int
	// Seed drives flow generation; case i of count n uses Seed + n*1000 + i.
	Seed int64
	// R is the reliability goal (1e-6).
	R float64
	// NBF is the recovery mechanism; nil selects the default stateless
	// greedy recovery (the [9] stand-in).
	NBF nbf.NBF
	// NPTSNCfg / NeuroPlanCfg set the RL training budgets.
	NPTSNCfg     core.Config
	NeuroPlanCfg core.Config
	// Approaches selects the lineup (default: all four).
	Approaches []Approach
	// Progress, when non-nil, receives per-case status lines.
	Progress func(format string, args ...interface{})
	// Certify runs the independent certification audit (internal/certify)
	// on every solution produced and records the verdict per test case.
	Certify bool
	// CertifyOptions bounds the audit effort when Certify is set.
	CertifyOptions certify.Options
}

func (o *Fig4Options) defaults() {
	if len(o.FlowCounts) == 0 {
		o.FlowCounts = []int{10, 20, 30, 40, 50}
	}
	if o.Cases == 0 {
		o.Cases = 10
	}
	if o.R == 0 {
		o.R = 1e-6
	}
	if o.NBF == nil {
		o.NBF = &nbf.StatelessRecovery{MaxAlternatives: 3}
	}
	if len(o.Approaches) == 0 {
		o.Approaches = AllApproaches()
	}
	if o.Progress == nil {
		o.Progress = func(string, ...interface{}) {}
	}
}

// RunFig4 executes the full sweep: for every flow count it generates
// `Cases` random flow sets and runs each selected approach, aggregating
// guarantee rates, mean costs and ASIL histograms.
func RunFig4(opts Fig4Options) (*Fig4Result, error) {
	opts.defaults()
	if opts.Scenario == nil {
		return nil, fmt.Errorf("fig4: nil scenario")
	}
	result := &Fig4Result{Approaches: opts.Approaches}
	for _, n := range opts.FlowCounts {
		var cases []map[Approach]CaseResult
		for c := 0; c < opts.Cases; c++ {
			flows := opts.Scenario.RandomFlows(n, opts.Seed+int64(n)*1000+int64(c))
			prob := opts.Scenario.Problem(flows, opts.NBF, opts.R)
			res, err := RunCase(prob, opts.Scenario.Original, opts.NPTSNCfg, opts.NeuroPlanCfg, opts.Approaches)
			if err != nil {
				return nil, fmt.Errorf("fig4: %d flows case %d: %w", n, c, err)
			}
			if opts.Certify {
				for ap, cr := range res {
					if cr.Solution == nil {
						continue
					}
					cert, err := (&certify.Certifier{
						Prob: prob, Sol: cr.Solution, Opt: opts.CertifyOptions,
					}).Certify(context.Background())
					if err != nil {
						return nil, fmt.Errorf("fig4: %d flows case %d: certify %s: %w", n, c, ap, err)
					}
					cr.CertVerdict = cert.Verdict
					res[ap] = cr
					opts.Progress("fig4: flows=%d case=%d %s certificate %s", n, c, ap, cert.Verdict)
				}
			}
			opts.Progress("fig4: flows=%d case=%d done", n, c)
			cases = append(cases, res)
		}
		result.Rows = append(result.Rows, Aggregate(n, cases, opts.Approaches))
	}
	return result, nil
}
