package eval

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/nbf"
	"repro/internal/scenarios"
	"repro/internal/serialize"
)

// WarmColdCase is one base+delta re-plan measured both ways: from scratch
// and warm-started from the base plan.
type WarmColdCase struct {
	// Step is the trace step index (0-based).
	Step int
	// Delta summarizes the spec diff ("+2f -1f ~1l" = 2 adds, 1 remove,
	// 1 link change).
	Delta string
	// Epochs and EnvSteps count the training work each run spent; an
	// instant-solved warm run records zero of both.
	ColdEpochs, WarmEpochs     int
	ColdEnvSteps, WarmEnvSteps int
	// Wall is each run's wall-clock planning time.
	ColdWall, WarmWall time.Duration
	// Solved reports whether each run found a certified topology.
	ColdSolved, WarmSolved bool
	// Info is the warm run's pruning outcome.
	Info *core.WarmStartInfo
}

// WarmColdResult is the warm-vs-cold evaluation over a churn trace.
type WarmColdResult struct {
	Trace string
	Cases []WarmColdCase
	// BaseWall is the cost of planning the shared base from scratch.
	BaseWall time.Duration
}

// RunWarmCold replays a churn trace twice per step — once from scratch and
// once warm-started from the previous plan — and measures the saved work.
// Cold runs start with nothing; warm runs seed the envs with the previous
// plan and reuse analyzer verdicts via a shared failure cache, mirroring
// what the planning service does for delta jobs.
func RunWarmCold(trace *scenarios.ChurnTrace, cfg core.Config) (*WarmColdResult, error) {
	reg := nbf.NewRegistry()
	baseProb, err := serialize.DecodeProblem(trace.Base, reg)
	if err != nil {
		return nil, fmt.Errorf("warm-cold: base: %w", err)
	}
	verdicts := failure.NewCache(1 << 16)

	plan := func(prob *core.Problem, warm *core.Solution) (*core.Report, time.Duration, error) {
		c := cfg
		c.WarmStart = warm
		if warm != nil {
			c.SharedAnalyzerCache = verdicts
		}
		pl, err := core.NewPlanner(prob, c)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		report, err := pl.Plan()
		return report, time.Since(start), err
	}

	baseReport, baseWall, err := plan(baseProb, nil)
	if err != nil {
		return nil, fmt.Errorf("warm-cold: base plan: %w", err)
	}
	if baseReport.Best == nil {
		return nil, fmt.Errorf("warm-cold: base problem did not solve; increase the budget")
	}

	res := &WarmColdResult{Trace: trace.Name, BaseWall: baseWall}
	spec, prior := trace.Base, baseReport.Best
	for i, d := range trace.Steps {
		next, err := serialize.ApplyDelta(spec, d)
		if err != nil {
			return nil, fmt.Errorf("warm-cold: step %d: %w", i, err)
		}
		prob, err := serialize.DecodeProblem(next, reg)
		if err != nil {
			return nil, fmt.Errorf("warm-cold: step %d: %w", i, err)
		}

		coldReport, coldWall, err := plan(prob, nil)
		if err != nil {
			return nil, fmt.Errorf("warm-cold: step %d cold: %w", i, err)
		}
		warmReport, warmWall, err := plan(prob, prior)
		if err != nil {
			return nil, fmt.Errorf("warm-cold: step %d warm: %w", i, err)
		}

		// Certify both: a warm start must never trade away the guarantee.
		if coldReport.Best != nil {
			if err := core.VerifySolution(prob, coldReport.Best); err != nil {
				return nil, fmt.Errorf("warm-cold: step %d cold solution failed audit: %w", i, err)
			}
		}
		if warmReport.Best != nil {
			if err := core.VerifySolution(prob, warmReport.Best); err != nil {
				return nil, fmt.Errorf("warm-cold: step %d warm solution failed audit: %w", i, err)
			}
		}

		res.Cases = append(res.Cases, WarmColdCase{
			Step:         i,
			Delta:        summarizeDelta(d),
			ColdEpochs:   len(coldReport.Epochs),
			WarmEpochs:   len(warmReport.Epochs),
			ColdEnvSteps: envSteps(coldReport),
			WarmEnvSteps: envSteps(warmReport),
			ColdWall:     coldWall,
			WarmWall:     warmWall,
			ColdSolved:   coldReport.Best != nil,
			WarmSolved:   warmReport.Best != nil,
			Info:         warmReport.Warm,
		})

		spec = next
		// Chain from the warm run's plan when it solved; fall back to the
		// cold plan so one miss does not strand the rest of the trace.
		switch {
		case warmReport.Best != nil:
			prior = warmReport.Best
		case coldReport.Best != nil:
			prior = coldReport.Best
		}
	}
	return res, nil
}

// envSteps sums the trained environment steps across a report's epochs.
func envSteps(r *core.Report) int {
	n := 0
	for _, e := range r.Epochs {
		n += e.EnvSteps
	}
	return n
}

// summarizeDelta compresses a spec diff into "+2f -1f ~2l" form.
func summarizeDelta(d serialize.DeltaJSON) string {
	var parts []string
	if n := len(d.AddFlows); n > 0 {
		parts = append(parts, fmt.Sprintf("+%df", n))
	}
	if n := len(d.RemoveFlows); n > 0 {
		parts = append(parts, fmt.Sprintf("-%df", n))
	}
	if n := len(d.DamageLinks) + len(d.RestoreLinks); n > 0 {
		parts = append(parts, fmt.Sprintf("~%dl", n))
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, " ")
}

// Render formats the warm-vs-cold table plus totals.
func (r *WarmColdResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Warm vs cold re-planning: %s (base plan %s)\n", r.Trace, r.BaseWall.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-4s %-12s %10s %10s %12s %12s %6s %6s\n",
		"step", "delta", "cold steps", "warm steps", "cold wall", "warm wall", "cold", "warm")
	var coldT, warmT int
	var coldW, warmW time.Duration
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "%-4d %-12s %10d %10d %12s %12s %6s %6s\n",
			c.Step, c.Delta, c.ColdEnvSteps, c.WarmEnvSteps,
			c.ColdWall.Round(time.Millisecond), c.WarmWall.Round(time.Millisecond),
			solvedMark(c.ColdSolved), solvedMark(c.WarmSolved))
		coldT += c.ColdEnvSteps
		warmT += c.WarmEnvSteps
		coldW += c.ColdWall
		warmW += c.WarmWall
	}
	fmt.Fprintf(&b, "%-4s %-12s %10d %10d %12s %12s\n", "sum", "",
		coldT, warmT, coldW.Round(time.Millisecond), warmW.Round(time.Millisecond))
	if coldT > 0 {
		fmt.Fprintf(&b, "warm start saved %.0f%% of env steps and %.0f%% of wall time\n",
			(1-float64(warmT)/float64(coldT))*100, wallSaved(coldW, warmW))
	}
	return b.String()
}

func solvedMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}

func wallSaved(cold, warm time.Duration) float64 {
	if cold <= 0 {
		return 0
	}
	return (1 - float64(warm)/float64(cold)) * 100
}
