package eval

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/nbf"
	"repro/internal/scenarios"
	"repro/internal/serialize"
	"repro/internal/zoo"
)

// ZooChurnCase is one churn step served both ways: through the zoo
// inference fast path (when it hits and certifies) and by cold training.
type ZooChurnCase struct {
	// Step is the trace step index (0-based).
	Step int
	// Delta summarizes the spec diff ("+2f -1f" = 2 adds, 1 remove).
	Delta string
	// Outcome attributes the fast path's answer for this step: "zoo"
	// (policy hit, rollout plan certified), "reject" (hit, but the plan
	// failed verification or certification, so the step fell back to
	// training) or "miss" (no geometry-compatible policy).
	Outcome string
	// Policy is the matched zoo entry's scenario name ("" on a miss) and
	// Distance its feature distance from this step's problem.
	Policy   string
	Distance float64
	// ZooEnvSteps counts the inference rollout's environment steps; a miss
	// records zero. ColdEnvSteps counts the cold run's training steps.
	ZooEnvSteps, ColdEnvSteps int
	// ZooWall covers lookup + rollout + certification; ColdWall is the
	// cold run's training time.
	ZooWall, ColdWall time.Duration
	// ColdSolved reports whether cold training found a valid plan.
	ColdSolved bool
}

// ZooChurnResult is the zoo-hit-rate evaluation over a churn trace.
type ZooChurnResult struct {
	Trace string
	// Policies is the zoo's size during the run.
	Policies int
	Cases    []ZooChurnCase
}

// ZooChurnOptions configures RunZooChurn.
type ZooChurnOptions struct {
	// Zoo is the policy zoo to measure. Pretrain it on the same scenario
	// family the trace churns over for a meaningful hit rate.
	Zoo *zoo.Zoo
	// Cfg is the cold-training budget; its geometry knobs (K, MLPHidden,
	// GCNLayers, ...) must match the pretrained policies or every lookup
	// is a geometry miss.
	Cfg core.Config
	// CertifySamples bounds the Monte Carlo audit per zoo candidate
	// (default 64 — this is an evaluation, not production serving).
	CertifySamples int
	// Streams is the rollout width per zoo attempt (default 4).
	Streams int
}

// RunZooChurn replays a churn trace through the zoo inference fast path
// and, for comparison, through cold training: each step is answered by
// nearest-policy lookup + greedy rollout + certification when possible,
// and the work both routes spent is recorded. The result is the zoo's
// hit rate under churn — how often amortized inference (zero training
// epochs) replaces a full training run — and what it saves.
func RunZooChurn(trace *scenarios.ChurnTrace, opt ZooChurnOptions) (*ZooChurnResult, error) {
	if opt.Zoo == nil {
		return nil, fmt.Errorf("zoo-churn: no zoo")
	}
	if opt.CertifySamples == 0 {
		opt.CertifySamples = 64
	}
	if opt.Streams == 0 {
		opt.Streams = 4
	}
	reg := nbf.NewRegistry()
	verdicts := failure.NewCache(1 << 16)
	ctx := context.Background()

	res := &ZooChurnResult{Trace: trace.Name, Policies: opt.Zoo.Len()}
	spec := trace.Base
	for i, d := range trace.Steps {
		next, err := serialize.ApplyDelta(spec, d)
		if err != nil {
			return nil, fmt.Errorf("zoo-churn: step %d: %w", i, err)
		}
		prob, err := serialize.DecodeProblem(next, reg)
		if err != nil {
			return nil, fmt.Errorf("zoo-churn: step %d: %w", i, err)
		}
		spec = next

		c := ZooChurnCase{Step: i, Delta: summarizeDelta(d)}

		// Fast path: lookup, greedy rollout, certification gate.
		zooStart := time.Now()
		c.Outcome = "miss"
		geo, err := zoo.GeometryOf(prob, opt.Cfg)
		if err != nil {
			return nil, fmt.Errorf("zoo-churn: step %d: %w", i, err)
		}
		if m, ok := opt.Zoo.Lookup(geo, zoo.FeaturesOf(prob)); ok {
			c.Policy, c.Distance = m.Entry.Name, m.Distance
			cfg := opt.Cfg
			cfg.SharedAnalyzerCache = verdicts
			sol, stats, err := zoo.Rollout(ctx, prob, cfg, m.Weights, zoo.RolloutOptions{
				Streams: opt.Streams,
				Workers: cfg.Workers,
			})
			c.ZooEnvSteps = stats.EnvSteps
			switch {
			case err != nil || sol == nil:
				c.Outcome = "reject"
			case core.VerifySolution(prob, sol) != nil:
				c.Outcome = "reject"
			default:
				cert, err := (&certify.Certifier{
					Prob: prob,
					Sol:  sol,
					Opt: certify.Options{
						Samples:         opt.CertifySamples,
						Seed:            cfg.Seed,
						AnalyzerWorkers: cfg.AnalyzerWorkers,
					},
				}).Certify(ctx)
				if err == nil && cert.OK() {
					c.Outcome = "zoo"
				} else {
					c.Outcome = "reject"
				}
			}
		}
		c.ZooWall = time.Since(zooStart)

		// The comparison (and the fallback the service would take on a
		// miss or reject): cold training from scratch.
		planner, err := core.NewPlanner(prob, opt.Cfg)
		if err != nil {
			return nil, fmt.Errorf("zoo-churn: step %d cold: %w", i, err)
		}
		coldStart := time.Now()
		report, err := planner.Plan()
		if err != nil {
			return nil, fmt.Errorf("zoo-churn: step %d cold: %w", i, err)
		}
		c.ColdWall = time.Since(coldStart)
		c.ColdEnvSteps = envSteps(report)
		c.ColdSolved = report.Best != nil

		res.Cases = append(res.Cases, c)
	}
	return res, nil
}

// HitRate is the fraction of steps the zoo answered with a certified
// inference-only plan.
func (r *ZooChurnResult) HitRate() float64 {
	if len(r.Cases) == 0 {
		return 0
	}
	hits := 0
	for _, c := range r.Cases {
		if c.Outcome == "zoo" {
			hits++
		}
	}
	return float64(hits) / float64(len(r.Cases))
}

// Render formats the zoo-vs-cold table plus hit rate and savings.
func (r *ZooChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Zoo inference fast path under churn: %s (%d policies)\n", r.Trace, r.Policies)
	fmt.Fprintf(&b, "%-4s %-12s %-7s %-16s %6s %10s %10s %12s %12s\n",
		"step", "delta", "origin", "policy", "dist", "zoo steps", "cold steps", "zoo wall", "cold wall")
	var zooT, coldT int
	var zooW, coldW time.Duration
	hits := 0
	for _, c := range r.Cases {
		policy, dist := c.Policy, fmt.Sprintf("%.2f", c.Distance)
		if policy == "" {
			policy, dist = "-", "-"
		}
		fmt.Fprintf(&b, "%-4d %-12s %-7s %-16s %6s %10d %10d %12s %12s\n",
			c.Step, c.Delta, c.Outcome, policy, dist,
			c.ZooEnvSteps, c.ColdEnvSteps,
			c.ZooWall.Round(time.Millisecond), c.ColdWall.Round(time.Millisecond))
		coldT += c.ColdEnvSteps
		coldW += c.ColdWall
		if c.Outcome == "zoo" {
			hits++
			zooT += c.ZooEnvSteps
			zooW += c.ZooWall
			continue
		}
		// A miss or reject pays the fast-path probe and then trains anyway.
		zooT += c.ZooEnvSteps + c.ColdEnvSteps
		zooW += c.ZooWall + c.ColdWall
	}
	fmt.Fprintf(&b, "%-4s %-12s %-7s %-16s %6s %10d %10d %12s %12s\n", "sum", "", "", "", "",
		zooT, coldT, zooW.Round(time.Millisecond), coldW.Round(time.Millisecond))
	fmt.Fprintf(&b, "zoo hit rate %d/%d (%.0f%%)\n", hits, len(r.Cases), r.HitRate()*100)
	if coldT > 0 && hits > 0 {
		fmt.Fprintf(&b, "with the zoo, the trace cost %.0f%% of the env steps and %.0f%% of the wall time of always training\n",
			float64(zooT)/float64(coldT)*100, 100-wallSaved(coldW, zooW))
	}
	return b.String()
}
