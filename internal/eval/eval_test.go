package eval

import (
	"strings"
	"testing"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/scenarios"
	"repro/internal/tsn"
)

// microScenario is a 4-ES / 2-SW scenario small enough to sweep in tests.
func microScenario(t testing.TB) *scenarios.Scenario {
	t.Helper()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.AddEdge(4, 5, 1); err != nil {
		t.Fatal(err)
	}
	// Manual original: dual-homed (a valid ASIL-D design).
	orig := g.EmptyLike()
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := orig.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &scenarios.Scenario{
		Name:        "micro",
		Connections: g,
		Original:    orig,
		Net:         tsn.DefaultNetwork(),
	}
}

func microCfg(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.GCNLayers = 1
	cfg.GCNHidden = 8
	cfg.EmbeddingPerNode = 2
	cfg.MLPHidden = []int{16}
	cfg.K = 4
	cfg.MaxEpoch = 2
	cfg.MaxStep = 60
	cfg.TrainPiIters = 3
	cfg.TrainVIters = 3
	cfg.Seed = seed
	return cfg
}

func TestRunCaseAllApproaches(t *testing.T) {
	s := microScenario(t)
	flows := s.RandomFlows(3, 1)
	prob := s.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	res, err := RunCase(prob, s.Original, microCfg(1), microCfg(2), AllApproaches())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results for %d approaches, want 4 (%v)", len(res), SortedApproaches(res))
	}
	orig := res[ApproachOriginal]
	if !orig.GuaranteeMet {
		t.Fatalf("dual-homed original must pass: %s", orig.Reason)
	}
	if orig.Cost != 118 {
		t.Fatalf("original cost = %v, want 118", orig.Cost)
	}
	trh := res[ApproachTRH]
	if !trh.GuaranteeMet {
		t.Fatalf("TRH must pass on micro scenario: %s", trh.Reason)
	}
	if trh.Cost >= orig.Cost {
		t.Fatalf("TRH (all B) should undercut Original (all D): %v vs %v", trh.Cost, orig.Cost)
	}
	// NPTSN and NeuroPlan may or may not find solutions in 2 micro-epochs;
	// whatever they report must be consistent.
	for _, ap := range []Approach{ApproachNPTSN, ApproachNeuroPlan} {
		r := res[ap]
		if r.GuaranteeMet && r.Cost <= 0 {
			t.Fatalf("%s: guarantee met without a cost", ap)
		}
		if !r.GuaranteeMet && r.Reason == "" {
			t.Fatalf("%s: failed guarantee without a reason", ap)
		}
	}
}

func TestRunCaseSkipsOriginalWithoutTopology(t *testing.T) {
	s := microScenario(t)
	flows := s.RandomFlows(2, 3)
	prob := s.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	res, err := RunCase(prob, nil, microCfg(1), microCfg(1), []Approach{ApproachOriginal, ApproachTRH})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res[ApproachOriginal]; ok {
		t.Fatal("original should be skipped without a manual topology")
	}
	if _, ok := res[ApproachTRH]; !ok {
		t.Fatal("TRH missing")
	}
}

func TestRunCaseUnknownApproach(t *testing.T) {
	s := microScenario(t)
	prob := s.Problem(s.RandomFlows(2, 3), &nbf.StatelessRecovery{}, 1e-6)
	if _, err := RunCase(prob, nil, microCfg(1), microCfg(1), []Approach{"bogus"}); err == nil {
		t.Fatal("unknown approach accepted")
	}
}

func TestAggregateAndRender(t *testing.T) {
	mk := func(met bool, cost float64, levels map[asil.Level]int) CaseResult {
		return CaseResult{GuaranteeMet: met, Cost: cost, SwitchLevels: levels}
	}
	cases := []map[Approach]CaseResult{
		{
			ApproachNPTSN: mk(true, 100, map[asil.Level]int{asil.LevelA: 2}),
			ApproachTRH:   mk(false, 200, nil),
		},
		{
			ApproachNPTSN: mk(true, 140, map[asil.Level]int{asil.LevelA: 1, asil.LevelC: 1}),
			ApproachTRH:   mk(true, 260, nil),
		},
	}
	row := Aggregate(10, cases, []Approach{ApproachTRH, ApproachNPTSN})
	if row.GuaranteeRate[ApproachNPTSN] != 1.0 {
		t.Fatalf("nptsn rate = %v", row.GuaranteeRate[ApproachNPTSN])
	}
	if row.GuaranteeRate[ApproachTRH] != 0.5 {
		t.Fatalf("trh rate = %v", row.GuaranteeRate[ApproachTRH])
	}
	if row.MeanCost[ApproachNPTSN] != 120 {
		t.Fatalf("nptsn mean cost = %v", row.MeanCost[ApproachNPTSN])
	}
	if row.SwitchLevels[ApproachNPTSN][asil.LevelA] != 3 {
		t.Fatalf("switch histogram = %v", row.SwitchLevels[ApproachNPTSN])
	}

	res := &Fig4Result{Rows: []Fig4Row{row}, Approaches: []Approach{ApproachTRH, ApproachNPTSN}}
	g := res.RenderGuarantee()
	if !strings.Contains(g, "Fig 4(a)") || !strings.Contains(g, "100%") || !strings.Contains(g, "50%") {
		t.Fatalf("guarantee render:\n%s", g)
	}
	c := res.RenderCost()
	if !strings.Contains(c, "Fig 4(b)") || !strings.Contains(c, "120.0") {
		t.Fatalf("cost render:\n%s", c)
	}
	a := res.RenderASIL()
	if !strings.Contains(a, "Fig 4(c)") || !strings.Contains(a, "nptsn") {
		t.Fatalf("asil render:\n%s", a)
	}
}

func TestRunFig4MicroSweep(t *testing.T) {
	s := microScenario(t)
	res, err := RunFig4(Fig4Options{
		Scenario:     s,
		FlowCounts:   []int{2, 3},
		Cases:        2,
		Seed:         1,
		NPTSNCfg:     microCfg(1),
		NeuroPlanCfg: microCfg(2),
		Approaches:   []Approach{ApproachOriginal, ApproachTRH},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Cases != 2 {
			t.Fatalf("cases = %d", row.Cases)
		}
		if row.GuaranteeRate[ApproachOriginal] != 1.0 {
			t.Fatalf("original rate = %v", row.GuaranteeRate[ApproachOriginal])
		}
	}
	if _, err := RunFig4(Fig4Options{}); err == nil {
		t.Fatal("nil scenario accepted")
	}
}

func TestRunSensitivityAndRender(t *testing.T) {
	s := microScenario(t)
	prob := s.Problem(s.RandomFlows(3, 5), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	cfgA := microCfg(1)
	cfgB := microCfg(1)
	cfgB.GCNLayers = 0
	res, err := RunSensitivity("Fig 5(a): impact of the number of GCN layers",
		prob, []SensitivityVariant{{Label: "GCN-1", Cfg: cfgA}, {Label: "GCN-0", Cfg: cfgB}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 2 {
		t.Fatalf("labels = %v", res.Labels)
	}
	for _, l := range res.Labels {
		if len(res.Rewards[l]) != cfgA.MaxEpoch {
			t.Fatalf("%s: %d epochs", l, len(res.Rewards[l]))
		}
	}
	out := res.Render()
	if !strings.Contains(out, "GCN-1") || !strings.Contains(out, "epoch") {
		t.Fatalf("render:\n%s", out)
	}
	finals := res.FinalRewards()
	if len(finals) != 2 {
		t.Fatalf("finals = %v", finals)
	}

	bad := microCfg(1)
	bad.K = 0
	if _, err := RunSensitivity("x", prob, []SensitivityVariant{{Label: "bad", Cfg: bad}}); err == nil {
		t.Fatal("invalid variant accepted")
	}
}

func TestSortedApproaches(t *testing.T) {
	m := map[Approach]CaseResult{
		ApproachTRH:      {},
		ApproachNPTSN:    {},
		ApproachOriginal: {},
	}
	got := SortedApproaches(m)
	want := []Approach{ApproachNPTSN, ApproachOriginal, ApproachTRH}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
