package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// WriteCurvesCSV exports the sensitivity reward curves as CSV
// (epoch, one column per variant) for external plotting.
func (r *SensitivityResult) WriteCurvesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"epoch"}, r.Labels...)
	if err := cw.Write(header); err != nil {
		return err
	}
	maxEpochs := 0
	for _, l := range r.Labels {
		if n := len(r.Rewards[l]); n > maxEpochs {
			maxEpochs = n
		}
	}
	for e := 0; e < maxEpochs; e++ {
		row := make([]string, 0, len(header))
		row = append(row, strconv.Itoa(e+1))
		for _, l := range r.Labels {
			if e < len(r.Rewards[l]) {
				row = append(row, strconv.FormatFloat(r.Rewards[l][e], 'f', 6, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTrainingCSV exports one training report's per-epoch statistics.
func WriteTrainingCSV(w io.Writer, report *core.Report) error {
	if report == nil {
		return fmt.Errorf("csv: nil report")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"epoch", "reward", "trajectories", "solutions", "dead_ends",
		"best_cost", "policy_loss", "value_loss", "approx_kl", "duration_ms",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for _, e := range report.Epochs {
		if err := cw.Write([]string{
			strconv.Itoa(e.Epoch), f(e.Reward), strconv.Itoa(e.Trajectories),
			strconv.Itoa(e.Solutions), strconv.Itoa(e.DeadEnds),
			f(e.BestCost), f(e.PolicyLoss), f(e.ValueLoss), f(e.ApproxKL),
			strconv.FormatInt(e.Duration.Milliseconds(), 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig4CSV exports the Fig. 4 aggregate (guarantee rate and mean cost
// per approach and flow count).
func (r *Fig4Result) WriteFig4CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"flows"}
	for _, ap := range r.Approaches {
		header = append(header, string(ap)+"_guarantee", string(ap)+"_mean_cost")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := []string{strconv.Itoa(row.Flows)}
		for _, ap := range r.Approaches {
			rec = append(rec,
				strconv.FormatFloat(row.GuaranteeRate[ap], 'f', 3, 64),
				strconv.FormatFloat(row.MeanCost[ap], 'f', 1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
