package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nbf"
	"repro/internal/scenarios"
	"repro/internal/serialize"
	"repro/internal/zoo"
)

func TestRunZooChurn(t *testing.T) {
	s, err := scenarios.Family("mesh", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One add + one remove per step keeps the flow count (and hence the
	// weight geometry) constant, so every step is a lookup candidate.
	trace, err := scenarios.Churn(scenarios.ChurnOptions{
		Scenario: s, BaseFlows: 3, Steps: 2,
		AddsPerStep: 1, RemovesPerStep: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := microCfg(1)
	cfg.MaxEpoch = 4

	// Pretrain one policy on the trace's base instance.
	baseProb, err := serialize.DecodeProblem(trace.Base, nbf.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlanner(baseProb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if report.Best == nil {
		t.Fatal("base training found no plan; raise the budget")
	}
	z, _, err := zoo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	geo, err := zoo.GeometryOf(baseProb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.Add(zoo.Entry{
		Name: s.Name, Geometry: geo, Features: zoo.FeaturesOf(baseProb),
		TrainedEpochs: len(report.Epochs), BestCost: report.Best.Cost,
	}, report.FinalWeights); err != nil {
		t.Fatal(err)
	}

	res, err := RunZooChurn(trace, ZooChurnOptions{Zoo: z, Cfg: cfg, CertifySamples: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 2 {
		t.Fatalf("cases = %d, want 2", len(res.Cases))
	}
	for _, c := range res.Cases {
		switch c.Outcome {
		case "zoo":
			if c.Policy != s.Name {
				t.Errorf("step %d: hit attributed to %q, want %q", c.Step, c.Policy, s.Name)
			}
			if c.ZooEnvSteps <= 0 {
				t.Errorf("step %d: hit recorded %d rollout steps", c.Step, c.ZooEnvSteps)
			}
		case "reject":
			if c.Policy == "" {
				t.Errorf("step %d: reject without a matched policy", c.Step)
			}
		case "miss":
			t.Errorf("step %d: geometry-stable churn produced a lookup miss", c.Step)
		default:
			t.Errorf("step %d: unknown outcome %q", c.Step, c.Outcome)
		}
		if !c.ColdSolved {
			t.Errorf("step %d: cold comparison run produced no solution", c.Step)
		}
	}
	out := res.Render()
	for _, want := range []string{"Zoo inference fast path", "origin", "zoo hit rate", "sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
