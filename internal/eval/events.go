package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obsv"
)

// EventSummary condenses a structured training event log (written by
// `nptsn -events FILE`) into the quantities one checks to judge whether a
// run converged: reward trend, solution yield, stability incidents and
// where the wall-clock went.
type EventSummary struct {
	Epochs int

	FirstReward     float64
	FinalReward     float64
	BestReward      float64
	BestRewardEpoch int
	TailMeanReward  float64 // mean reward over the last quarter of epochs
	RewardSlope     float64 // least-squares reward change per epoch

	Trajectories int
	Solutions    int
	DeadEnds     int
	EnvSteps     int

	BestCost      float64 // last reported best solution cost (0 if none)
	BestCostEpoch int

	Divergences int // watchdog rollbacks
	Quarantines int // worker panics
	EarlyStops  int // PPO updates stopped by the KL bound

	WallClock     time.Duration
	AnalysisTime  time.Duration
	CacheHitRate  float64
	Interrupted   bool
	HasRunOutcome bool // a run_end event was present
}

// SummarizeEvents builds an EventSummary from a decoded event log. Epoch
// events are processed in epoch order regardless of file order (resumed
// runs append a second pass over early epochs; the later record wins).
func SummarizeEvents(events []obsv.Event) (*EventSummary, error) {
	byEpoch := map[int]map[string]float64{}
	s := &EventSummary{}
	for _, e := range events {
		switch e.Type {
		case obsv.EventEpoch:
			if e.Epoch <= 0 {
				return nil, fmt.Errorf("eval: epoch event without a positive epoch number")
			}
			byEpoch[e.Epoch] = e.V
		case obsv.EventRunEnd:
			s.HasRunOutcome = true
			if e.V["interrupted"] != 0 {
				s.Interrupted = true
			}
		}
	}
	if len(byEpoch) == 0 {
		return nil, fmt.Errorf("eval: event log contains no epoch events")
	}
	epochs := make([]int, 0, len(byEpoch))
	for ep := range byEpoch {
		epochs = append(epochs, ep)
	}
	sort.Ints(epochs)
	s.Epochs = len(epochs)

	var hits, misses float64
	rewards := make([]float64, 0, len(epochs))
	for i, ep := range epochs {
		v := byEpoch[ep]
		r := v["reward"]
		rewards = append(rewards, r)
		if i == 0 {
			s.FirstReward, s.BestReward, s.BestRewardEpoch = r, r, ep
		}
		if r > s.BestReward {
			s.BestReward, s.BestRewardEpoch = r, ep
		}
		s.FinalReward = r
		s.Trajectories += int(v["trajectories"])
		s.Solutions += int(v["solutions"])
		s.DeadEnds += int(v["dead_ends"])
		s.EnvSteps += int(v["env_steps"])
		s.Divergences += int(v["divergences"])
		s.Quarantines += int(v["panics"])
		s.EarlyStops += int(v["early_stopped"])
		s.WallClock += time.Duration(v["duration_seconds"] * float64(time.Second))
		s.AnalysisTime += time.Duration(v["analysis_seconds"] * float64(time.Second))
		hits += v["cache_hits"]
		misses += v["cache_misses"]
		if bc := v["best_cost"]; bc > 0 && (s.BestCost == 0 || bc < s.BestCost) {
			s.BestCost, s.BestCostEpoch = bc, ep
		}
	}
	if hits+misses > 0 {
		s.CacheHitRate = hits / (hits + misses)
	}

	tail := len(rewards) / 4
	if tail < 1 {
		tail = 1
	}
	var sum float64
	for _, r := range rewards[len(rewards)-tail:] {
		sum += r
	}
	s.TailMeanReward = sum / float64(tail)
	s.RewardSlope = slope(epochs, rewards)
	return s, nil
}

// slope is the least-squares regression slope of reward on epoch number;
// zero for a single epoch.
func slope(xs []int, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i, x := range xs {
		fx := float64(x)
		sx += fx
		sy += ys[i]
		sxx += fx * fx
		sxy += fx * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Render formats the summary as a human-readable convergence report.
func (s *EventSummary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "convergence summary: %d epoch(s)", s.Epochs)
	if s.Interrupted {
		b.WriteString(" (interrupted)")
	} else if !s.HasRunOutcome {
		b.WriteString(" (no run_end event: log may be from a live or killed run)")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  reward: first %.4f, final %.4f, best %.4f @ epoch %d\n",
		s.FirstReward, s.FinalReward, s.BestReward, s.BestRewardEpoch)
	fmt.Fprintf(&b, "  trend:  tail mean %.4f, slope %+.5f per epoch\n", s.TailMeanReward, s.RewardSlope)
	fmt.Fprintf(&b, "  search: %d trajectories, %d solutions, %d dead ends over %d env steps\n",
		s.Trajectories, s.Solutions, s.DeadEnds, s.EnvSteps)
	if s.BestCost > 0 {
		fmt.Fprintf(&b, "  best solution: cost %.1f (epoch %d)\n", s.BestCost, s.BestCostEpoch)
	} else {
		b.WriteString("  best solution: none found\n")
	}
	fmt.Fprintf(&b, "  stability: %d divergence rollback(s), %d worker quarantine(s), %d KL early stop(s)\n",
		s.Divergences, s.Quarantines, s.EarlyStops)
	share := 0.0
	if s.WallClock > 0 {
		share = 100 * float64(s.AnalysisTime) / float64(s.WallClock)
	}
	fmt.Fprintf(&b, "  time: %v wall-clock, %v (%.0f%%) in failure analysis, verdict cache %.1f%% hits\n",
		s.WallClock.Round(time.Millisecond), s.AnalysisTime.Round(time.Millisecond), share, 100*s.CacheHitRate)
	return b.String()
}
