package serialize

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// fuzzGraph is a minimal valid connection graph (2 ES, 2 SW, dual homed)
// used as the fixed decode context for the checkpoint fuzzer.
func fuzzGraph() *graph.Graph {
	g := graph.New()
	g.AddVertex("cam", graph.KindEndStation)
	g.AddVertex("ecu", graph.KindEndStation)
	g.AddVertex("sw0", graph.KindSwitch)
	g.AddVertex("sw1", graph.KindSwitch)
	for _, e := range [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			panic(err) // static fixture, unreachable
		}
	}
	return g
}

// FuzzProblemSpec feeds arbitrary bytes through the full problem decode
// path: JSON → ProblemJSON → DecodeProblem → Problem.Validate. Malformed
// input of any shape must come back as an error, never as a panic — this
// is the trust boundary for every spec file a user hands to the CLIs.
func FuzzProblemSpec(f *testing.F) {
	// Seed with a valid encoding so the fuzzer starts from the interesting
	// region of the input space rather than pure noise.
	valid := EncodeProblem(validProblem(), "stateless-greedy")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"connections":{"vertices":[{"id":0,"kind":"es"}]}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	reg := nbf.NewRegistry()
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec ProblemJSON
		if err := ReadJSON(bytes.NewReader(data), &spec); err != nil {
			return // malformed JSON is rejected, fine
		}
		// Decoding may fail — that is the contract — but must not panic.
		if _, err := DecodeProblem(spec, reg); err != nil {
			return
		}
	})
}

// FuzzLoadCheckpoint feeds arbitrary bytes through LoadCheckpoint, the
// decode path for resume files. Corrupt, truncated, or adversarial
// checkpoints must be rejected with an error, never a panic.
func FuzzLoadCheckpoint(f *testing.F) {
	// Seed with a structurally valid checkpoint encoding.
	valid := CheckpointJSON{
		Version:     CheckpointVersion,
		Fingerprint: "fuzz",
		Epoch:       1,
		Weights:     [][]float64{{0.5, -0.5}},
		Best: &SolutionJSON{
			Cost:     2,
			Switches: []SwitchJSON{{ID: 2, ASIL: "A", Ports: 2}},
			Links:    []LinkJSON{{U: 0, V: 2, Length: 1, ASIL: "A"}, {U: 1, V: 2, Length: 1, ASIL: "A"}},
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"epoch":0}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	g := fuzzGraph()
	// One reusable scratch file per worker process: LoadCheckpoint reads
	// from a path, and a per-exec TempDir would dominate the fuzz budget.
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(dir, "ck.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Errors are the expected outcome for most inputs; panics are bugs.
		if _, err := LoadCheckpoint(path, g); err != nil {
			return
		}
	})
}

// validProblem builds a small decodable problem over fuzzGraph for the
// problem fuzzer's seed corpus.
func validProblem() *core.Problem {
	net := tsn.Network{BasePeriod: 500 * time.Microsecond, SlotsPerBase: 20}
	return &core.Problem{
		Connections: fuzzGraph(),
		Net:         net,
		Flows: tsn.FlowSet{{
			ID: 0, Src: 0, Dsts: []int{1},
			Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 100,
		}},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
		ESLevel:         asil.LevelD,
	}
}
