package serialize

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

func fixtureProblem(t testing.TB) *core.Problem {
	t.Helper()
	g := graph.New()
	g.AddVertex("cam", graph.KindEndStation)
	g.AddVertex("ecu", graph.KindEndStation)
	g.AddVertex("swA", graph.KindSwitch)
	g.AddVertex("swB", graph.KindSwitch)
	for es := 0; es < 2; es++ {
		for sw := 2; sw < 4; sw++ {
			if err := g.AddEdge(es, sw, 1.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	net := tsn.DefaultNetwork()
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{{ID: 0, Name: "f0", Src: 0, Dsts: []int{1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 128}},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	return prob
}

func TestGraphRoundTrip(t *testing.T) {
	prob := fixtureProblem(t)
	enc := EncodeGraph(prob.Connections)
	dec, err := DecodeGraph(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumVertices() != prob.Connections.NumVertices() || dec.NumEdges() != prob.Connections.NumEdges() {
		t.Fatal("graph shape changed in round trip")
	}
	if dec.MustVertex(2).Name != "swA" || dec.Kind(2) != graph.KindSwitch {
		t.Fatal("vertex attributes lost")
	}
	if l, ok := dec.EdgeLength(0, 2); !ok || l != 1.5 {
		t.Fatal("edge length lost")
	}
}

func TestDecodeGraphErrors(t *testing.T) {
	if _, err := DecodeGraph(GraphJSON{Vertices: []VertexJSON{{ID: 1, Kind: "es"}}}); err == nil {
		t.Error("non-dense IDs accepted")
	}
	if _, err := DecodeGraph(GraphJSON{Vertices: []VertexJSON{{ID: 0, Kind: "weird"}}}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := DecodeGraph(GraphJSON{
		Vertices: []VertexJSON{{ID: 0, Kind: "es"}},
		Edges:    []EdgeJSON{{U: 0, V: 5}},
	}); err == nil {
		t.Error("dangling edge accepted")
	}
}

func TestFlowsRoundTrip(t *testing.T) {
	prob := fixtureProblem(t)
	dec := DecodeFlows(EncodeFlows(prob.Flows))
	if len(dec) != 1 || dec[0].Name != "f0" || dec[0].Period != prob.Flows[0].Period {
		t.Fatalf("flows round trip: %+v", dec)
	}
	// Storage must be independent.
	dec[0].Dsts[0] = 9
	if prob.Flows[0].Dsts[0] == 9 {
		t.Fatal("decoded flows share storage with input")
	}
}

func TestProblemRoundTrip(t *testing.T) {
	prob := fixtureProblem(t)
	enc := EncodeProblem(prob, "stateless-greedy")
	dec, err := DecodeProblem(enc, nbf.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if dec.ReliabilityGoal != prob.ReliabilityGoal || dec.MaxESDegree != prob.MaxESDegree {
		t.Fatal("problem scalars changed")
	}
	if dec.Net != prob.Net {
		t.Fatal("network config changed")
	}
	if dec.NBF.Name() != "stateless-greedy" {
		t.Fatalf("NBF = %q", dec.NBF.Name())
	}
}

func TestDecodeProblemErrors(t *testing.T) {
	prob := fixtureProblem(t)
	reg := nbf.NewRegistry()

	enc := EncodeProblem(prob, "nope")
	if _, err := DecodeProblem(enc, reg); err == nil {
		t.Error("unknown NBF accepted")
	}

	enc = EncodeProblem(prob, "stateless-greedy")
	enc.ESLevel = "Z"
	if _, err := DecodeProblem(enc, reg); err == nil {
		t.Error("unknown ASIL accepted")
	}

	enc = EncodeProblem(prob, "stateless-greedy")
	enc.ReliabilityGoal = 0
	if _, err := DecodeProblem(enc, reg); err == nil {
		t.Error("invalid problem accepted")
	}

	enc = EncodeProblem(prob, "stateless-greedy")
	enc.Connections.Vertices[0].Kind = "xx"
	if _, err := DecodeProblem(enc, reg); err == nil {
		t.Error("bad graph accepted")
	}
}

func TestSolutionRoundTripAndVerify(t *testing.T) {
	prob := fixtureProblem(t)
	// Build a valid dual-homed solution by hand.
	state := core.NewTSSDN(prob)
	for sw := 2; sw < 4; sw++ {
		for i := 0; i < 3; i++ { // ASIL-C
			if err := state.UpgradeSwitch(sw); err != nil {
				t.Fatal(err)
			}
		}
	}
	for es := 0; es < 2; es++ {
		for sw := 2; sw < 4; sw++ {
			if err := state.AddPath(graph.Path{es, sw}); err != nil {
				t.Fatal(err)
			}
		}
	}
	cost, err := state.Cost()
	if err != nil {
		t.Fatal(err)
	}
	sol := &core.Solution{Topology: state.Topo, Assignment: state.Assign, Cost: cost}
	if err := core.VerifySolution(prob, sol); err != nil {
		t.Fatalf("fixture solution invalid: %v", err)
	}

	dec, err := DecodeSolution(EncodeSolution(sol), prob.Connections)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded solution must still verify and cost the same.
	if err := core.VerifySolution(prob, dec); err != nil {
		t.Fatalf("decoded solution invalid: %v", err)
	}
	if dec.Cost != cost {
		t.Fatalf("cost changed: %v -> %v", cost, dec.Cost)
	}
}

func TestDecodeSolutionErrors(t *testing.T) {
	prob := fixtureProblem(t)
	if _, err := DecodeSolution(SolutionJSON{
		Switches: []SwitchJSON{{ID: 0, ASIL: "B"}}, // vertex 0 is an ES
	}, prob.Connections); err == nil {
		t.Error("non-switch allocation accepted")
	}
	if _, err := DecodeSolution(SolutionJSON{
		Links: []LinkJSON{{U: 0, V: 99, ASIL: "B"}},
	}, prob.Connections); err == nil {
		t.Error("dangling link accepted")
	}
	if _, err := DecodeSolution(SolutionJSON{
		Switches: []SwitchJSON{{ID: 2, ASIL: "?"}},
	}, prob.Connections); err == nil {
		t.Error("bad ASIL accepted")
	}
}

func TestWriteReadJSON(t *testing.T) {
	prob := fixtureProblem(t)
	enc := EncodeProblem(prob, "stateless-greedy")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, enc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"reliabilityGoal\"") {
		t.Fatalf("unexpected JSON: %s", buf.String())
	}
	var back ProblemJSON
	if err := ReadJSON(&buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.ReliabilityGoal != 1e-6 {
		t.Fatal("JSON round trip changed values")
	}
	// Unknown fields must be rejected.
	if err := ReadJSON(strings.NewReader(`{"bogus": 1}`), &back); err == nil {
		t.Error("unknown fields accepted")
	}
}
