package serialize

import "fmt"

// LinkRefJSON names one candidate link of the connection graph by its
// endpoint vertex IDs (undirected; {U,V} and {V,U} are the same link).
type LinkRefJSON struct {
	U int `json:"u"`
	V int `json:"v"`
}

// DeltaJSON is the incremental re-planning grammar: a spec diff applied to
// a base problem to derive a new one. It expresses the changes a vehicle
// program actually sees between planning runs — flows appear and disappear
// (a retrofitted ECU, a removed function), candidate links are damaged or
// restored (harness changes, known-bad segments), and the reliability
// posture tightens or relaxes — without restating the whole problem.
//
// The vertex set is fixed: a delta never adds or removes end stations or
// switches, so vertex IDs keep their meaning between base and derived
// problems (which is what makes warm-starting from the base plan sound).
type DeltaJSON struct {
	// AddFlows are new TT flows; their IDs must not collide with surviving
	// base flows.
	AddFlows []FlowJSON `json:"addFlows,omitempty"`
	// RemoveFlows lists base flow IDs to drop; every ID must exist.
	RemoveFlows []int `json:"removeFlows,omitempty"`
	// DamageLinks removes candidate links from the connection graph; every
	// link must exist. A plan for the derived problem can no longer route
	// over them.
	DamageLinks []LinkRefJSON `json:"damageLinks,omitempty"`
	// RestoreLinks re-adds candidate links (with their cable length); the
	// links must not already exist.
	RestoreLinks []EdgeJSON `json:"restoreLinks,omitempty"`
	// ReliabilityGoal, when positive, replaces the base goal (Eq. 2's R).
	ReliabilityGoal float64 `json:"reliabilityGoal,omitempty"`
	// FlowLevelRedundancy, when non-nil, replaces the base redundancy mode.
	FlowLevelRedundancy *bool `json:"flowLevelRedundancy,omitempty"`
}

// Empty reports whether the delta changes nothing: applying an empty delta
// yields a problem byte-identical to its base.
func (d DeltaJSON) Empty() bool {
	return len(d.AddFlows) == 0 && len(d.RemoveFlows) == 0 &&
		len(d.DamageLinks) == 0 && len(d.RestoreLinks) == 0 &&
		d.ReliabilityGoal == 0 && d.FlowLevelRedundancy == nil
}

// ApplyDelta derives a new problem spec from base by applying the delta at
// the JSON level: flows are removed then added (appended in delta order, so
// base flow order is preserved), damaged links leave the connection graph,
// restored links re-join it, and the reliability knobs are overridden. Every referenced flow or link is validated against the
// base, so a stale delta (removing a flow that is already gone, damaging a
// link twice) fails loudly instead of silently planning the wrong problem.
// The base is not mutated. An empty delta returns a spec deep-equal to the
// base, which is what keeps the empty-delta path bit-identical to the
// cached base plan.
func ApplyDelta(base ProblemJSON, d DeltaJSON) (ProblemJSON, error) {
	out := base
	// Deep-copy the slices that change; the rest is value-copied above.
	out.Flows = append([]FlowJSON(nil), base.Flows...)
	out.Connections.Vertices = append([]VertexJSON(nil), base.Connections.Vertices...)
	out.Connections.Edges = append([]EdgeJSON(nil), base.Connections.Edges...)

	// Flow removals.
	if len(d.RemoveFlows) > 0 {
		drop := make(map[int]bool, len(d.RemoveFlows))
		for _, id := range d.RemoveFlows {
			if drop[id] {
				return ProblemJSON{}, fmt.Errorf("serialize: delta removes flow %d twice", id)
			}
			drop[id] = true
		}
		kept := out.Flows[:0]
		for _, f := range out.Flows {
			if drop[f.ID] {
				delete(drop, f.ID)
				continue
			}
			kept = append(kept, f)
		}
		for id := range drop {
			return ProblemJSON{}, fmt.Errorf("serialize: delta removes flow %d, which the base does not have", id)
		}
		out.Flows = kept
	}
	// Flow additions.
	seen := make(map[int]bool, len(out.Flows)+len(d.AddFlows))
	for _, f := range out.Flows {
		seen[f.ID] = true
	}
	for _, f := range d.AddFlows {
		if seen[f.ID] {
			return ProblemJSON{}, fmt.Errorf("serialize: delta adds flow %d, which already exists", f.ID)
		}
		seen[f.ID] = true
		g := f
		g.Dsts = append([]int(nil), f.Dsts...)
		out.Flows = append(out.Flows, g)
	}

	// Link damage.
	for _, l := range d.DamageLinks {
		idx := -1
		for i, e := range out.Connections.Edges {
			if sameLink(e.U, e.V, l.U, l.V) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return ProblemJSON{}, fmt.Errorf("serialize: delta damages link (%d,%d), which the base does not have", l.U, l.V)
		}
		out.Connections.Edges = append(out.Connections.Edges[:idx], out.Connections.Edges[idx+1:]...)
	}
	// Link restoration.
	for _, l := range d.RestoreLinks {
		for _, e := range out.Connections.Edges {
			if sameLink(e.U, e.V, l.U, l.V) {
				return ProblemJSON{}, fmt.Errorf("serialize: delta restores link (%d,%d), which already exists", l.U, l.V)
			}
		}
		out.Connections.Edges = append(out.Connections.Edges, l)
	}

	if d.ReliabilityGoal != 0 {
		if d.ReliabilityGoal < 0 {
			return ProblemJSON{}, fmt.Errorf("serialize: delta reliability goal %g is negative", d.ReliabilityGoal)
		}
		out.ReliabilityGoal = d.ReliabilityGoal
	}
	if d.FlowLevelRedundancy != nil {
		out.FlowLevelRedundancy = *d.FlowLevelRedundancy
	}
	return out, nil
}

func sameLink(u1, v1, u2, v2 int) bool {
	return (u1 == u2 && v1 == v2) || (u1 == v2 && v1 == u2)
}
