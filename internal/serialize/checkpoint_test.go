package serialize

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// trainWithCheckpoint runs a tiny training job that saves a checkpoint file
// every epoch, returning the report and the checkpoint path.
func trainWithCheckpoint(t *testing.T, prob *core.Problem, epochs int, path string) *core.Report {
	t.Helper()
	cfg := checkpointConfig(epochs)
	if path != "" {
		cfg.CheckpointEvery = 1
		cfg.CheckpointFunc = func(ck *core.Checkpoint) error {
			return SaveCheckpoint(path, ck)
		}
	}
	pl, err := core.NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func checkpointConfig(epochs int) core.Config {
	cfg := core.DefaultConfig()
	cfg.GCNLayers = 1
	cfg.GCNHidden = 8
	cfg.EmbeddingPerNode = 2
	cfg.MLPHidden = []int{16}
	cfg.K = 4
	cfg.MaxEpoch = epochs
	cfg.MaxStep = 16
	cfg.TrainPiIters = 4
	cfg.TrainVIters = 4
	cfg.Workers = 2
	cfg.Seed = 23
	return cfg
}

// TestCheckpointFileRoundTripResume is the on-disk half of the resume
// guarantee: kill a run after 2 of 4 epochs, reload the checkpoint file,
// and the resumed run must match the uninterrupted reference exactly.
func TestCheckpointFileRoundTripResume(t *testing.T) {
	prob := fixtureProblem(t)
	ref := trainWithCheckpoint(t, prob, 4, "")

	path := filepath.Join(t.TempDir(), "run.ckpt")
	trainWithCheckpoint(t, prob, 2, path)

	ck, err := LoadCheckpoint(path, prob.Connections)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 2 {
		t.Fatalf("loaded checkpoint at epoch %d, want 2", ck.Epoch)
	}

	cfg := checkpointConfig(4)
	cfg.Resume = ck
	pl, err := core.NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Epochs) != len(ref.Epochs) {
		t.Fatalf("resumed run has %d epochs, reference %d", len(resumed.Epochs), len(ref.Epochs))
	}
	for i := range ref.Epochs {
		a, b := ref.Epochs[i], resumed.Epochs[i]
		a.Duration, b.Duration = 0, 0
		a.AnalysisTime, b.AnalysisTime = 0, 0
		a.AnalysisCacheHits, b.AnalysisCacheHits = 0, 0
		a.AnalysisCacheMisses, b.AnalysisCacheMisses = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("epoch %d diverged after file round trip:\n%+v\nvs\n%+v", i+1, a, b)
		}
	}
	if !reflect.DeepEqual(ref.FinalWeights, resumed.FinalWeights) {
		t.Fatal("final weights differ after file round trip")
	}
}

func TestCheckpointEncodeDecodeRoundTrip(t *testing.T) {
	prob := fixtureProblem(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	trainWithCheckpoint(t, prob, 2, path)
	ck, err := LoadCheckpoint(path, prob.Connections)
	if err != nil {
		t.Fatal(err)
	}
	again, err := DecodeCheckpoint(EncodeCheckpoint(ck), prob.Connections)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck.Weights, again.Weights) || !reflect.DeepEqual(ck.PPO, again.PPO) ||
		!reflect.DeepEqual(ck.Epochs, again.Epochs) || ck.Fingerprint != again.Fingerprint {
		t.Fatal("encode/decode round trip lost data")
	}
}

func TestLoadCheckpointRejectsTruncatedFile(t *testing.T) {
	prob := fixtureProblem(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	trainWithCheckpoint(t, prob, 2, path)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, prob.Connections); err == nil || !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Fatalf("truncated checkpoint accepted: %v", err)
	}
}

func TestLoadCheckpointRejectsCorruptedFile(t *testing.T) {
	prob := fixtureProblem(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte("{\"version\": \"not a number\""), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, prob.Connections); err == nil || !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Fatalf("corrupted checkpoint accepted: %v", err)
	}
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt"), prob.Connections); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestDecodeCheckpointRejectsBadHeader(t *testing.T) {
	prob := fixtureProblem(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	trainWithCheckpoint(t, prob, 2, path)
	ck, err := LoadCheckpoint(path, prob.Connections)
	if err != nil {
		t.Fatal(err)
	}
	good := EncodeCheckpoint(ck)

	bad := good
	bad.Version = CheckpointVersion + 1
	if _, err := DecodeCheckpoint(bad, prob.Connections); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch accepted: %v", err)
	}

	bad = good
	bad.Epoch = 0
	if _, err := DecodeCheckpoint(bad, prob.Connections); err == nil {
		t.Fatal("zero epoch accepted")
	}

	bad = good
	bad.Weights = nil
	if _, err := DecodeCheckpoint(bad, prob.Connections); err == nil {
		t.Fatal("empty weights accepted")
	}
}

func TestWriteFileAtomicReportsWriteErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomic(path, func(io.Writer) error { return os.ErrPermission }); err == nil {
		t.Fatal("writer error swallowed")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed write left a destination file behind")
	}
	// No stray temp files either.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}
