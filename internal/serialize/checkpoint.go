package serialize

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rl"
)

// CheckpointVersion is the on-disk checkpoint format version; Load rejects
// files written by an incompatible version.
const CheckpointVersion = 1

// WorkerJSON serializes one exploration worker's resumable state.
type WorkerJSON struct {
	RNG  uint64        `json:"rng"`
	Env  core.EnvState `json:"env"`
	Best *SolutionJSON `json:"best,omitempty"`
}

// CheckpointJSON is the versioned on-disk training checkpoint format.
type CheckpointJSON struct {
	Version     int               `json:"version"`
	Fingerprint string            `json:"fingerprint"`
	Epoch       int               `json:"epoch"`
	Weights     [][]float64       `json:"weights"`
	PPO         rl.PPOState       `json:"ppo"`
	Best        *SolutionJSON     `json:"best,omitempty"`
	Epochs      []core.EpochStats `json:"epochs"`
	Workers     []WorkerJSON      `json:"workers"`
}

// EncodeCheckpoint converts a training checkpoint to its JSON form.
func EncodeCheckpoint(ck *core.Checkpoint) CheckpointJSON {
	out := CheckpointJSON{
		Version:     CheckpointVersion,
		Fingerprint: ck.Fingerprint,
		Epoch:       ck.Epoch,
		Weights:     ck.Weights,
		PPO:         ck.PPO,
		Epochs:      ck.Epochs,
	}
	if ck.Best != nil {
		s := EncodeSolution(ck.Best)
		out.Best = &s
	}
	for _, w := range ck.Workers {
		wj := WorkerJSON{RNG: w.RNG, Env: w.Env}
		if w.Best != nil {
			s := EncodeSolution(w.Best)
			wj.Best = &s
		}
		out.Workers = append(out.Workers, wj)
	}
	return out
}

// DecodeCheckpoint rebuilds a training checkpoint. connections is the
// planning problem's connection graph, needed to reconstruct the embedded
// solutions; the caller must resume against the same problem (the planner
// additionally verifies the fingerprint).
func DecodeCheckpoint(in CheckpointJSON, connections *graph.Graph) (*core.Checkpoint, error) {
	if in.Version != CheckpointVersion {
		return nil, fmt.Errorf("serialize: checkpoint version %d, this build reads version %d", in.Version, CheckpointVersion)
	}
	if in.Epoch <= 0 {
		return nil, fmt.Errorf("serialize: checkpoint has invalid epoch %d", in.Epoch)
	}
	if len(in.Weights) == 0 {
		return nil, fmt.Errorf("serialize: checkpoint has no network weights")
	}
	ck := &core.Checkpoint{
		Fingerprint: in.Fingerprint,
		Epoch:       in.Epoch,
		Weights:     in.Weights,
		PPO:         in.PPO,
		Epochs:      in.Epochs,
	}
	if in.Best != nil {
		sol, err := DecodeSolution(*in.Best, connections)
		if err != nil {
			return nil, fmt.Errorf("serialize: checkpoint best: %w", err)
		}
		ck.Best = sol
	}
	for i, wj := range in.Workers {
		ws := core.WorkerState{RNG: wj.RNG, Env: wj.Env}
		if wj.Best != nil {
			sol, err := DecodeSolution(*wj.Best, connections)
			if err != nil {
				return nil, fmt.Errorf("serialize: checkpoint worker %d best: %w", i, err)
			}
			ws.Best = sol
		}
		ck.Workers = append(ck.Workers, ws)
	}
	return ck, nil
}

// SaveCheckpoint persists a checkpoint to path atomically: the JSON is
// written to a temp file in the same directory, synced, and renamed over
// the destination, so a crash or full disk never leaves a truncated
// checkpoint in place of a good one.
func SaveCheckpoint(path string, ck *core.Checkpoint) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		return WriteJSON(w, EncodeCheckpoint(ck))
	})
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint. Corrupted,
// truncated or version-mismatched files are rejected.
func LoadCheckpoint(path string, connections *graph.Graph) (*core.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var in CheckpointJSON
	if err := ReadJSON(f, &in); err != nil {
		return nil, fmt.Errorf("serialize: checkpoint %s is corrupt or truncated: %w", path, err)
	}
	ck, err := DecodeCheckpoint(in, connections)
	if err != nil {
		return nil, fmt.Errorf("serialize: checkpoint %s: %w", path, err)
	}
	return ck, nil
}

// WriteFileAtomic streams content through fn into a temp file in path's
// directory, checks the Close error (a short write to a full disk is
// reported, not swallowed), and renames the temp file over path. Readers
// never observe a partially written file.
func WriteFileAtomic(path string, fn func(io.Writer) error) error {
	return WriteFileAtomicFS(path, nil, fn)
}

// FSFaults intercepts the filesystem operations of WriteFileAtomicFS for
// deterministic fault injection (internal/fault provides the standard
// implementation). Each hook receives the destination path; an error from
// Write/Sync/Rename fails that stage exactly as the filesystem would, and
// a non-negative Torn result truncates the content to that many leading
// bytes while the write still reports success — the torn-write pattern of
// a crash between a page-cache write and its flush. Implementations must
// be safe for concurrent use.
type FSFaults interface {
	Write(path string) error
	Torn(path string) int
	Sync(path string) error
	Rename(path string) error
}

// WriteFileAtomicFS is WriteFileAtomic with a fault-injection seam; a nil
// faults writes normally. Torn writes keep the rename, so the destination
// ends up holding the truncated content — detectable only by the reader's
// checksums, which is the failure mode the hook exists to exercise.
func WriteFileAtomicFS(path string, faults FSFaults, fn func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once the rename succeeded
	var w io.Writer = tmp
	if faults != nil {
		if err := faults.Write(path); err != nil {
			tmp.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if limit := faults.Torn(path); limit >= 0 {
			w = &tornWriter{w: tmp, left: limit}
		}
	}
	if err := fn(w); err != nil {
		tmp.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if faults != nil {
		if err := faults.Sync(path); err != nil {
			tmp.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	if faults != nil {
		if err := faults.Rename(path); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

// tornWriter passes through the first `left` bytes and silently swallows
// the rest, reporting full success — the writer believes everything
// reached the disk.
type tornWriter struct {
	w    io.Writer
	left int
}

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		return len(p), nil
	}
	n := len(p)
	if n > t.left {
		n = t.left
	}
	if _, err := t.w.Write(p[:n]); err != nil {
		return 0, err
	}
	t.left -= n
	return len(p), nil
}
