// Package serialize provides stable JSON codecs for the planner's inputs
// and outputs: connection graphs, flow specifications, planning problems
// and solutions. It lets tools persist test cases, exchange solutions with
// downstream design steps (Fig. 1's post-planning design), and diff runs.
package serialize

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// VertexJSON is one vertex of a serialized graph.
type VertexJSON struct {
	ID   int    `json:"id"`
	Name string `json:"name,omitempty"`
	Kind string `json:"kind"` // "es" or "sw"
}

// EdgeJSON is one undirected edge.
type EdgeJSON struct {
	U      int     `json:"u"`
	V      int     `json:"v"`
	Length float64 `json:"length"`
}

// GraphJSON serializes a graph.
type GraphJSON struct {
	Vertices []VertexJSON `json:"vertices"`
	Edges    []EdgeJSON   `json:"edges"`
}

// EncodeGraph converts a graph to its JSON form.
func EncodeGraph(g *graph.Graph) GraphJSON {
	out := GraphJSON{}
	for i := 0; i < g.NumVertices(); i++ {
		v := g.MustVertex(i)
		out.Vertices = append(out.Vertices, VertexJSON{ID: v.ID, Name: v.Name, Kind: v.Kind.String()})
	}
	for _, e := range g.Edges() {
		out.Edges = append(out.Edges, EdgeJSON{U: e.U, V: e.V, Length: e.Length})
	}
	return out
}

// DecodeGraph rebuilds a graph. Vertex IDs must be dense and in order.
func DecodeGraph(in GraphJSON) (*graph.Graph, error) {
	g := graph.New()
	for i, v := range in.Vertices {
		if v.ID != i {
			return nil, fmt.Errorf("serialize: vertex IDs must be dense; got %d at position %d", v.ID, i)
		}
		var kind graph.Kind
		switch v.Kind {
		case "es":
			kind = graph.KindEndStation
		case "sw":
			kind = graph.KindSwitch
		default:
			return nil, fmt.Errorf("serialize: unknown vertex kind %q", v.Kind)
		}
		g.AddVertex(v.Name, kind)
	}
	for _, e := range in.Edges {
		if err := g.AddEdge(e.U, e.V, e.Length); err != nil {
			return nil, fmt.Errorf("serialize: %w", err)
		}
	}
	return g, nil
}

// FlowJSON serializes one TT flow; durations are nanoseconds.
type FlowJSON struct {
	ID         int    `json:"id"`
	Name       string `json:"name,omitempty"`
	Src        int    `json:"src"`
	Dsts       []int  `json:"dsts"`
	PeriodNs   int64  `json:"periodNs"`
	DeadlineNs int64  `json:"deadlineNs"`
	FrameSize  int    `json:"frameSize"`
}

// EncodeFlows converts a flow set.
func EncodeFlows(fs tsn.FlowSet) []FlowJSON {
	out := make([]FlowJSON, 0, len(fs))
	for _, f := range fs {
		out = append(out, FlowJSON{
			ID: f.ID, Name: f.Name, Src: f.Src,
			Dsts:     append([]int(nil), f.Dsts...),
			PeriodNs: f.Period.Nanoseconds(), DeadlineNs: f.Deadline.Nanoseconds(),
			FrameSize: f.FrameSize,
		})
	}
	return out
}

// DecodeFlows rebuilds a flow set.
func DecodeFlows(in []FlowJSON) tsn.FlowSet {
	fs := make(tsn.FlowSet, 0, len(in))
	for _, f := range in {
		fs = append(fs, tsn.Flow{
			ID: f.ID, Name: f.Name, Src: f.Src,
			Dsts:   append([]int(nil), f.Dsts...),
			Period: time.Duration(f.PeriodNs), Deadline: time.Duration(f.DeadlineNs),
			FrameSize: f.FrameSize,
		})
	}
	return fs
}

// ProblemJSON serializes a planning problem (the NBF is referenced by its
// registry name, not embedded).
type ProblemJSON struct {
	Connections         GraphJSON  `json:"connections"`
	BasePeriodNs        int64      `json:"basePeriodNs"`
	SlotsPerBase        int        `json:"slotsPerBase"`
	Flows               []FlowJSON `json:"flows"`
	NBF                 string     `json:"nbf"`
	ReliabilityGoal     float64    `json:"reliabilityGoal"`
	MaxESDegree         int        `json:"maxEsDegree"`
	ESLevel             string     `json:"esLevel"`
	FlowLevelRedundancy bool       `json:"flowLevelRedundancy,omitempty"`
}

// EncodeProblem converts a problem; nbfName names the recovery mechanism
// for the registry.
func EncodeProblem(p *core.Problem, nbfName string) ProblemJSON {
	return ProblemJSON{
		Connections:         EncodeGraph(p.Connections),
		BasePeriodNs:        p.Net.BasePeriod.Nanoseconds(),
		SlotsPerBase:        p.Net.SlotsPerBase,
		Flows:               EncodeFlows(p.Flows),
		NBF:                 nbfName,
		ReliabilityGoal:     p.ReliabilityGoal,
		MaxESDegree:         p.MaxESDegree,
		ESLevel:             p.ESLevel.String(),
		FlowLevelRedundancy: p.FlowLevelRedundancy,
	}
}

// DecodeProblem rebuilds a validated problem using the given registry and
// the default component library.
func DecodeProblem(in ProblemJSON, reg *nbf.Registry) (*core.Problem, error) {
	g, err := DecodeGraph(in.Connections)
	if err != nil {
		return nil, err
	}
	mech, err := reg.New(in.NBF)
	if err != nil {
		return nil, err
	}
	lvl, err := parseLevel(in.ESLevel)
	if err != nil {
		return nil, err
	}
	p := &core.Problem{
		Connections:         g,
		Net:                 tsn.Network{BasePeriod: time.Duration(in.BasePeriodNs), SlotsPerBase: in.SlotsPerBase},
		Flows:               DecodeFlows(in.Flows),
		NBF:                 mech,
		ReliabilityGoal:     in.ReliabilityGoal,
		Library:             asil.DefaultLibrary(),
		MaxESDegree:         in.MaxESDegree,
		ESLevel:             lvl,
		FlowLevelRedundancy: in.FlowLevelRedundancy,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseLevel(s string) (asil.Level, error) {
	switch s {
	case "", "D":
		return asil.LevelD, nil
	case "A":
		return asil.LevelA, nil
	case "B":
		return asil.LevelB, nil
	case "C":
		return asil.LevelC, nil
	default:
		return 0, fmt.Errorf("serialize: unknown ASIL %q", s)
	}
}

// SwitchJSON is one switch allocation of a solution.
type SwitchJSON struct {
	ID    int    `json:"id"`
	Name  string `json:"name,omitempty"`
	ASIL  string `json:"asil"`
	Ports int    `json:"ports"`
}

// LinkJSON is one link allocation of a solution.
type LinkJSON struct {
	U      int     `json:"u"`
	V      int     `json:"v"`
	Length float64 `json:"length"`
	ASIL   string  `json:"asil"`
}

// SolutionJSON serializes a planning solution.
type SolutionJSON struct {
	Cost         float64      `json:"cost"`
	FoundAtEpoch int          `json:"foundAtEpoch,omitempty"`
	FoundAtStep  int          `json:"foundAtStep,omitempty"`
	Switches     []SwitchJSON `json:"switches"`
	Links        []LinkJSON   `json:"links"`
}

// EncodeSolution converts a solution.
func EncodeSolution(sol *core.Solution) SolutionJSON {
	out := SolutionJSON{Cost: sol.Cost, FoundAtEpoch: sol.FoundAtEpoch, FoundAtStep: sol.FoundAtStep}
	for _, sw := range sol.Topology.VerticesOfKind(graph.KindSwitch) {
		lvl, ok := sol.Assignment.Switches[sw]
		if !ok {
			continue
		}
		out.Switches = append(out.Switches, SwitchJSON{
			ID:    sw,
			Name:  sol.Topology.MustVertex(sw).Name,
			ASIL:  lvl.String(),
			Ports: sol.Topology.Degree(sw),
		})
	}
	for _, e := range sol.Topology.Edges() {
		out.Links = append(out.Links, LinkJSON{
			U: e.U, V: e.V, Length: e.Length,
			ASIL: sol.Assignment.LinkLevel(e.U, e.V).String(),
		})
	}
	return out
}

// DecodeSolution rebuilds a solution over the vertex set of connections.
func DecodeSolution(in SolutionJSON, connections *graph.Graph) (*core.Solution, error) {
	topo := connections.EmptyLike()
	assign := asil.NewAssignment()
	for _, sw := range in.Switches {
		lvl, err := parseLevel(sw.ASIL)
		if err != nil {
			return nil, err
		}
		if connections.Kind(sw.ID) != graph.KindSwitch {
			return nil, fmt.Errorf("serialize: vertex %d is not a switch", sw.ID)
		}
		assign.Switches[sw.ID] = lvl
	}
	for _, l := range in.Links {
		lvl, err := parseLevel(l.ASIL)
		if err != nil {
			return nil, err
		}
		if err := topo.AddEdge(l.U, l.V, l.Length); err != nil {
			return nil, fmt.Errorf("serialize: %w", err)
		}
		assign.SetLink(l.U, l.V, lvl)
	}
	return &core.Solution{
		Topology:     topo,
		Assignment:   assign,
		Cost:         in.Cost,
		FoundAtEpoch: in.FoundAtEpoch,
		FoundAtStep:  in.FoundAtStep,
	}, nil
}

// WriteJSON marshals v with indentation to w.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// ReadJSON unmarshals from r into v.
func ReadJSON(r io.Reader, v interface{}) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
