package serialize

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scriptedFaults is a hand-driven FSFaults for the seam tests; the real
// seeded implementation lives in internal/fault.
type scriptedFaults struct {
	write, sync, rename error
	torn                int
}

func (s *scriptedFaults) Write(string) error  { return s.write }
func (s *scriptedFaults) Sync(string) error   { return s.sync }
func (s *scriptedFaults) Rename(string) error { return s.rename }
func (s *scriptedFaults) Torn(string) int     { return s.torn }

func writeAll(content string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	}
}

func TestWriteFileAtomicFSInjectedErrors(t *testing.T) {
	errInjected := errors.New("injected")
	cases := []struct {
		name   string
		faults scriptedFaults
	}{
		{"write", scriptedFaults{write: errInjected, torn: -1}},
		{"sync", scriptedFaults{sync: errInjected, torn: -1}},
		{"rename", scriptedFaults{rename: errInjected, torn: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.json")
			err := WriteFileAtomicFS(path, &tc.faults, writeAll("payload"))
			if !errors.Is(err, errInjected) {
				t.Fatalf("err = %v, want the injected error", err)
			}
			if !strings.Contains(err.Error(), path) {
				t.Fatalf("error %v does not name the destination", err)
			}
			if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
				t.Fatal("failed write left a destination file")
			}
			// The temp file must not linger either.
			entries, readErr := os.ReadDir(dir)
			if readErr != nil {
				t.Fatal(readErr)
			}
			if len(entries) != 0 {
				t.Fatalf("failed write left %d files behind", len(entries))
			}
		})
	}
}

func TestWriteFileAtomicFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	faults := &scriptedFaults{torn: 5}
	// The torn write reports success — that is the point: the writer
	// believes the record landed, only the bytes are short.
	if err := WriteFileAtomicFS(path, faults, writeAll("0123456789")); err != nil {
		t.Fatalf("torn write surfaced an error: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("torn file holds %q, want the first 5 bytes", got)
	}

	// Torn limit 0 leaves an empty file behind a "successful" write.
	if err := WriteFileAtomicFS(path, &scriptedFaults{torn: 0}, writeAll("xyz")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); len(got) != 0 {
		t.Fatalf("torn=0 file holds %q, want empty", got)
	}
}

func TestWriteFileAtomicFSNilFaultsWritesNormally(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomicFS(path, nil, writeAll("intact")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "intact" {
		t.Fatalf("file holds %q", got)
	}
}
