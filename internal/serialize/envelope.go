package serialize

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/failure"
)

// Envelope is the checksummed on-disk frame shared by artifacts that are
// read back as untrusted input (job records, policy-zoo files): a format
// version, a content digest, and the JSON payload those cover. A torn
// write that survives the atomic rename — truncated or bit-flipped content
// — is caught by the digest at load time instead of being misread.
type Envelope struct {
	Version int             `json:"version"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// envelopeSum digests a payload under a caller-chosen domain prefix, with
// the same 128-bit content hash the plan cache keys on. The domain keeps
// sums from one artifact family from verifying another's.
func envelopeSum(domain string, payload []byte) string {
	d := failure.NewDigest()
	d.Str(domain)
	d.Bytes(payload)
	return d.Sum()
}

// SealEnvelope frames v for writing: compact-JSON payload plus a digest
// over those exact bytes, under domain and version.
func SealEnvelope(domain string, version int, v interface{}) (Envelope, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{Version: version, Sum: envelopeSum(domain, payload), Payload: payload}, nil
}

// WriteEnvelope seals v and writes the indented envelope to w.
func WriteEnvelope(w io.Writer, domain string, version int, v interface{}) error {
	env, err := SealEnvelope(domain, version, v)
	if err != nil {
		return err
	}
	return WriteJSON(w, env)
}

// OpenEnvelope verifies data against domain and version and decodes the
// payload into v. Every failure mode names what was wrong — callers
// surface the reason next to the quarantined file. The envelope is written
// indented, which re-formats the embedded payload; the checksum is defined
// over the compact form, so the payload is re-compacted before summing.
func OpenEnvelope(data []byte, domain string, version int, v interface{}) error {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("not an envelope: %v", err)
	}
	if env.Version != version {
		return fmt.Errorf("envelope version %d, this build reads version %d", env.Version, version)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Payload); err != nil {
		return fmt.Errorf("envelope payload: %v", err)
	}
	if got := envelopeSum(domain, compact.Bytes()); got != env.Sum {
		return fmt.Errorf("checksum mismatch (stored %s, computed %s): torn write or manual edit", env.Sum, got)
	}
	dec := json.NewDecoder(bytes.NewReader(env.Payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("envelope payload: %v", err)
	}
	return nil
}
