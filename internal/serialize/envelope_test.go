package serialize

import (
	"bytes"
	"strings"
	"testing"
)

type envPayload struct {
	Name  string    `json:"name"`
	Vals  []float64 `json:"vals"`
	Count int       `json:"count"`
}

func TestEnvelopeRoundTrip(t *testing.T) {
	in := envPayload{Name: "p", Vals: []float64{1.5, -2.25}, Count: 3}
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "test-domain", 7, in); err != nil {
		t.Fatal(err)
	}
	var out envPayload
	if err := OpenEnvelope(buf.Bytes(), "test-domain", 7, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Count != in.Count || len(out.Vals) != 2 || out.Vals[1] != -2.25 {
		t.Fatalf("round trip changed payload: %+v", out)
	}
}

func TestEnvelopeRejectsWrongDomain(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "domain-a", 1, envPayload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	var out envPayload
	err := OpenEnvelope(buf.Bytes(), "domain-b", 1, &out)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("cross-domain open: got %v, want checksum mismatch", err)
	}
}

func TestEnvelopeRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "d", 1, envPayload{}); err != nil {
		t.Fatal(err)
	}
	var out envPayload
	err := OpenEnvelope(buf.Bytes(), "d", 2, &out)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew: got %v, want version error", err)
	}
}

func TestEnvelopeRejectsTamperedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "d", 1, envPayload{Name: "honest", Count: 1}); err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(buf.Bytes(), []byte("honest"), []byte("forged"), 1)
	var out envPayload
	err := OpenEnvelope(tampered, "d", 1, &out)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("tampered payload: got %v, want checksum mismatch", err)
	}
}

func TestEnvelopeRejectsUnknownPayloadFields(t *testing.T) {
	// Seal a payload with an extra field, then decode into a struct that
	// lacks it: the strict decoder must refuse rather than silently drop.
	type wide struct {
		Name  string `json:"name"`
		Extra int    `json:"extra"`
	}
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "d", 1, wide{Name: "x", Extra: 9}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Name string `json:"name"`
	}
	if err := OpenEnvelope(buf.Bytes(), "d", 1, &out); err == nil {
		t.Fatal("unknown payload field silently accepted")
	}
}

func TestEnvelopeRejectsGarbage(t *testing.T) {
	var out envPayload
	for _, data := range [][]byte{nil, []byte(``), []byte(`{`), []byte(`[]`), []byte(`{"version":1}`)} {
		if err := OpenEnvelope(data, "d", 1, &out); err == nil {
			t.Fatalf("garbage %q accepted", data)
		}
	}
}

// TestEnvelopeChecksumIgnoresIndentation pins the re-compaction step:
// WriteEnvelope stores the payload indented (WriteJSON), but the checksum
// is over the compact form, so whitespace differences never read as
// corruption.
func TestEnvelopeChecksumIgnoresIndentation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "d", 1, envPayload{Name: "ws", Vals: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	// The indented form on disk must decode...
	var out envPayload
	if err := OpenEnvelope(buf.Bytes(), "d", 1, &out); err != nil {
		t.Fatal(err)
	}
	// ...and so must a re-compacted copy of the same envelope.
	compact := bytes.ReplaceAll(bytes.ReplaceAll(buf.Bytes(), []byte("\n"), nil), []byte("  "), nil)
	if err := OpenEnvelope(compact, "d", 1, &out); err != nil {
		t.Fatalf("compact re-encoding rejected: %v", err)
	}
}
