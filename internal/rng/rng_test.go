package rng

import (
	"math/rand"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	s := New(7)
	for i := 0; i < 17; i++ {
		s.Uint64()
	}
	saved := s.State()
	var want []uint64
	for i := 0; i < 100; i++ {
		want = append(want, s.Uint64())
	}
	restored := New(0)
	restored.SetState(saved)
	for i, w := range want {
		if got := restored.Uint64(); got != w {
			t.Fatalf("restored draw %d = %d, want %d", i, got, w)
		}
	}
}

func TestWorksAsRandSource(t *testing.T) {
	r := rand.New(New(3))
	// Float64 must land in [0, 1) and look roughly uniform.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
	// Intn must cover the full range.
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(4)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Intn(4) only produced %v", seen)
	}
}

func TestDistinctSeedsDecorrelated(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("consecutive seeds produced %d identical draws", same)
	}
}
