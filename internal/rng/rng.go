// Package rng provides a small, fast, serializable random source for the
// planner's exploration workers and environments. The standard library's
// default source hides its state, which makes exact checkpoint/resume of a
// training run impossible; this source exposes its single 64-bit state word
// so a resumed run can reproduce the uninterrupted run bit for bit.
package rng

import "math/rand"

// Source is a SplitMix64 generator (Steele, Lea & Flood 2014). It
// implements math/rand.Source64, so it plugs directly into rand.New, and
// its entire state is one uint64 that can be stored in a checkpoint.
type Source struct {
	state uint64
}

var _ rand.Source64 = (*Source)(nil)

// New returns a source seeded with seed. Distinct seeds — even consecutive
// integers — produce decorrelated streams because every output passes
// through the SplitMix64 finalizer.
func New(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// Uint64 advances the state by the golden-gamma increment and returns the
// mixed output.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) {
	s.state = uint64(seed)
}

// State returns the current generator state for checkpointing.
func (s *Source) State() uint64 { return s.state }

// SetState restores a state captured with State. The next outputs are
// identical to the ones produced after the capture point.
func (s *Source) SetState(state uint64) { s.state = state }
