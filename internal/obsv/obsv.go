// Package obsv is the dependency-free observability layer of the NPTSN
// reproduction: a metrics registry (counters, gauges, histograms with
// lock-free atomic implementations safe under the planner's worker pool),
// a Prometheus text-format exposition writer, a small HTTP server that
// serves /metrics, /healthz and net/http/pprof, and a structured
// JSON-lines event log for machine-comparable training runs.
//
// The package deliberately has no third-party dependencies: the metric
// types implement only what the training/analysis path needs, and the
// exposition format is the stable subset of the Prometheus text format
// (untyped labels are not supported — metric names carry the full
// identity, which is adequate for a single-process planner).
package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern, so concurrent Add calls from the planner's exploration workers
// never lose increments and never require a lock.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (a *atomicFloat) set(v float64)  { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) value() float64 { return math.Float64frombits(a.bits.Load()) }

// stripes is the number of independently updated cells a sharded float is
// split across. 16 matches the failure cache's shard count: enough to keep
// CAS contention negligible at realistic worker counts.
const stripes = 16

// shardedFloat spreads Add contention across padded stripes; Value sums
// them. Used for histogram sums, the hottest write path under the worker
// pool.
type shardedFloat struct {
	next  atomic.Uint64
	cells [stripes]struct {
		f atomicFloat
		_ [7]uint64 // pad to a cache line to avoid false sharing
	}
}

func (s *shardedFloat) add(v float64) {
	i := s.next.Add(1) % stripes
	s.cells[i].f.add(v)
}

func (s *shardedFloat) value() float64 {
	var sum float64
	for i := range s.cells {
		sum += s.cells[i].f.value()
	}
	return sum
}

// Counter is a monotonically non-decreasing metric.
type Counter struct {
	f atomicFloat
}

// Inc adds 1.
func (c *Counter) Inc() { c.f.add(1) }

// Add increases the counter by v. Negative v panics: a decreasing counter
// silently corrupts every rate() computed from it.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obsv: counter decreased by %v", v))
	}
	c.f.add(v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.f.value() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	f atomicFloat
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.f.set(v) }

// Add increases (or, with negative v, decreases) the gauge.
func (g *Gauge) Add(v float64) { g.f.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.f.value() }

// Histogram counts observations into cumulative buckets, Prometheus-style.
// Observations and bucket increments are atomic; the running sum is
// sharded so parallel workers do not serialize on one cache line.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds (le), +Inf implicit
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    shardedFloat
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.total.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// DurationBuckets are the default histogram bounds for wall-clock
// metrics, in seconds: 1ms .. ~17min in powers of four.
var DurationBuckets = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536, 262.144, 1048.576}

// metric is a registered metric with its exposition metadata.
type metric struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// format. Registration is idempotent: asking for an existing name returns
// the existing metric, so independent planner runs in one process (e.g.
// the eval harness's cases) accumulate into shared series. Asking for an
// existing name with a different type panics — that is a programming
// error, not a runtime condition.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) lookup(name, kind string) *metric {
	m, ok := r.metrics[name]
	if !ok {
		return nil
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obsv: metric %q registered as %s, requested as %s", name, m.kind, kind))
	}
	return m
}

// Counter returns the counter registered under name, creating it on first
// use. help is recorded on creation only.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "counter"); m != nil {
		return m.c
	}
	m := &metric{name: name, help: help, kind: "counter", c: &Counter{}}
	r.metrics[name] = m
	return m.c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "gauge"); m != nil {
		return m.g
	}
	m := &metric{name: name, help: help, kind: "gauge", g: &Gauge{}}
	r.metrics[name] = m
	return m.g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use. bounds must be strictly
// increasing; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m := r.lookup(name, "histogram"); m != nil {
		return m.h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obsv: histogram %q bounds not strictly increasing at %d", name, i))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)),
	}
	m := &metric{name: name, help: help, kind: "histogram", h: h}
	r.metrics[name] = m
	return m.h
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, sorted by name for stable scrapes and diffs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.RUnlock()

	for _, m := range ms {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
			return err
		}
		switch m.kind {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %s\n", m.name, formatValue(m.c.Value())); err != nil {
				return err
			}
		case "gauge":
			if _, err := fmt.Fprintf(w, "%s %s\n", m.name, formatValue(m.g.Value())); err != nil {
				return err
			}
		case "histogram":
			var cum uint64
			for i, b := range m.h.bounds {
				cum += m.h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatValue(b), cum); err != nil {
					return err
				}
			}
			total := m.h.Count()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, total); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.name, formatValue(m.h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count %d\n", m.name, total); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatValue renders a sample value the way Prometheus expects
// (shortest round-trip representation, Inf spelled +Inf/-Inf).
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
