package obsv

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Idempotent registration returns the same instance.
	if r.Counter("c_total", "ignored") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter Add did not panic")
		}
	}()
	new(Counter).Add(-1)
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "latencies", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="10"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
		"# TYPE h_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// A value exactly on a bucket bound lands in that bucket (le is
// inclusive, the Prometheus convention).
func TestHistogramBoundInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hb", "", []float64{1, 2})
	h.Observe(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `hb_bucket{le="1"} 1`) {
		t.Fatalf("bound not inclusive:\n%s", b.String())
	}
}

func TestPrometheusExpositionSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz", "last").Set(1)
	r.Counter("aa_total", "first").Add(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Index(out, "aa_total") > strings.Index(out, "zz") {
		t.Fatalf("metrics not sorted by name:\n%s", out)
	}
	if !strings.Contains(out, "# HELP aa_total first") || !strings.Contains(out, "# TYPE aa_total counter") {
		t.Fatalf("missing HELP/TYPE lines:\n%s", out)
	}
}

// Concurrent updates from many goroutines must never lose increments
// (run under -race in CI).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_hist", "", DurationBuckets)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
				// Interleave reads with writes, as a live scrape would.
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter lost increments: %v != %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge lost adds: %v != %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram lost observations: %d != %d", got, workers*per)
	}
	if got, want := h.Sum(), float64(workers*per)*0.01; math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
}
