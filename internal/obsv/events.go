package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Event types emitted by the training/analysis path. The set is small and
// stable on purpose: run comparison tooling switches on Type.
const (
	// EventRunStart opens a run; V carries the budget (epochs, steps,
	// workers, seed).
	EventRunStart = "run_start"
	// EventEpoch is one completed training epoch with the full EpochStats
	// payload flattened into V.
	EventEpoch = "epoch"
	// EventCheckpointSave / EventCheckpointLoad record checkpoint I/O with
	// duration_seconds in V.
	EventCheckpointSave = "checkpoint_save"
	EventCheckpointLoad = "checkpoint_load"
	// EventWatchdogRollback records NaN-watchdog rollbacks of one PPO
	// update (rollbacks, actor_lr, critic_lr in V).
	EventWatchdogRollback = "watchdog_rollback"
	// EventQuarantine records a worker panic quarantined by the planner;
	// Msg holds the recovered panic message.
	EventQuarantine = "quarantine"
	// EventRunEnd closes a run; V carries totals (epochs, best_cost,
	// interrupted as 0/1).
	EventRunEnd = "run_end"
)

// Event is one structured telemetry record. Numeric payloads live in V so
// the schema never changes shape across event types; Msg carries the rare
// free-text payload (panic messages). Events marshal to exactly one
// JSON line.
type Event struct {
	// Time is the emission timestamp (UTC).
	Time time.Time `json:"time"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Epoch is the 1-based training epoch the event belongs to (0 for
	// run-level events).
	Epoch int `json:"epoch,omitempty"`
	// Msg is an optional human-readable payload.
	Msg string `json:"msg,omitempty"`
	// V holds the numeric fields of the event.
	V map[string]float64 `json:"v,omitempty"`
}

// Sink receives telemetry events. *Log persists them as JSON lines; tests
// use MemorySink to capture them in-process.
type Sink interface {
	Emit(Event) error
}

// Log appends events to a file as JSON lines. Each event is marshaled to
// one line and written with a single O_APPEND write under a mutex, so
// concurrent emitters never interleave partial lines and an external
// `tail -f` always sees whole records.
type Log struct {
	mu sync.Mutex
	f  *os.File
}

// OpenLog opens (creating if needed) an append-only event log at path.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obsv: open event log: %w", err)
	}
	return &Log{f: f}, nil
}

// Emit appends one event. A zero Time is stamped with the current UTC
// time.
func (l *Log) Emit(e Event) error {
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("obsv: marshal event: %w", err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("obsv: append event: %w", err)
	}
	return nil
}

// Close flushes and closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// MemorySink collects events in memory (testing aid). Safe for concurrent
// use.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit records the event.
func (m *MemorySink) Emit(e Event) error {
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, e)
	return nil
}

// Events returns a copy of the captured events.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// ReadLog parses a JSON-lines event log written by Log. Blank lines are
// skipped. A malformed line fails with its line number — except a
// malformed final line, which is tolerated as the torn tail of a run that
// was killed mid-write; the events before it are returned.
func ReadLog(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obsv: open event log: %w", err)
	}
	defer f.Close()

	var events []Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if pendingErr != nil {
			// The malformed line was not the last one: fail.
			return nil, pendingErr
		}
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			pendingErr = fmt.Errorf("obsv: %s:%d: %w", path, lineNo, err)
			continue
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obsv: read event log: %w", err)
	}
	return events, nil
}
