package obsv

import (
	"net/http"
	"strings"
	"time"
)

// WithRequestLog wraps an HTTP handler with request instrumentation on
// reg, under a per-route metric family derived from route:
//
//	nptsn_http_<route>_requests_total   requests served
//	nptsn_http_<route>_errors_total     responses with status >= 500
//	nptsn_http_<route>_in_flight        requests currently being handled
//	nptsn_http_<route>_request_seconds  latency histogram
//
// The registry has no label support by design (metric names carry the full
// identity), so the route is folded into the name; RouteMetricID documents
// the folding. Both the metrics server (StartServer) and the planning
// service's API mux are instrumented through this wrapper, so one scrape
// shows the latency of every HTTP surface of the process. A nil reg
// returns h unchanged.
func WithRequestLog(reg *Registry, route string, h http.Handler) http.Handler {
	if reg == nil {
		return h
	}
	id := RouteMetricID(route)
	requests := reg.Counter("nptsn_http_"+id+"_requests_total", "Requests served on "+route+".")
	errors := reg.Counter("nptsn_http_"+id+"_errors_total", "Responses with status >= 500 on "+route+".")
	inFlight := reg.Gauge("nptsn_http_"+id+"_in_flight", "Requests currently in flight on "+route+".")
	latency := reg.Histogram("nptsn_http_"+id+"_request_seconds", "Request latency on "+route+".", DurationBuckets)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			inFlight.Add(-1)
			latency.Observe(time.Since(start).Seconds())
			requests.Inc()
			if sw.status >= 500 {
				errors.Inc()
			}
		}()
		h.ServeHTTP(sw, r)
	})
}

// RouteMetricID folds a route path into a metric-name segment: lowercase,
// every run of non-alphanumeric characters becomes one underscore, leading
// and trailing underscores are trimmed. "/v1/jobs" → "v1_jobs"; an empty
// result (e.g. "/") becomes "root".
func RouteMetricID(route string) string {
	var b strings.Builder
	pendingSep := false
	for _, c := range strings.ToLower(route) {
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			if pendingSep && b.Len() > 0 {
				b.WriteByte('_')
			}
			pendingSep = false
			b.WriteRune(c)
		default:
			pendingSep = true
		}
	}
	if b.Len() == 0 {
		return "root"
	}
	return b.String()
}

// statusWriter records the response status code; an implicit 200 (first
// Write without WriteHeader) is captured too.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards http.Flusher when the underlying writer supports it, so
// instrumented handlers can still stream.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
