package obsv

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server exposes a registry over HTTP:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       "ok" while the process is up
//	/debug/pprof/  the standard net/http/pprof handlers
//
// It is started by StartServer and stopped with Close. The zero port
// (":0") binds an ephemeral port; Addr reports the bound address, which
// tests use to scrape a live training run.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// StartServer binds addr and serves the registry in a background
// goroutine. It returns once the listener is bound, so a scrape of
// Addr() immediately after StartServer succeeds.
func StartServer(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("obsv: nil registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	// The server's own routes are instrumented through the same
	// request-log middleware the planning service uses, so scrape and
	// health-probe latency shows up in the scrape itself.
	mux.Handle("/metrics", WithRequestLog(reg, "/metrics", MetricsHandler(reg)))
	mux.Handle("/healthz", WithRequestLog(reg, "/healthz", HealthHandler()))
	// net/http/pprof registers on http.DefaultServeMux as a side effect of
	// its import; wire its handlers into our private mux explicitly so the
	// metrics server works without touching the global mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		reg: reg,
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path; any
		// other serve error leaves the planner running without metrics,
		// which is strictly better than aborting a multi-hour run.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// MetricsHandler returns the Prometheus text-exposition handler for reg,
// for callers that mount /metrics on their own mux (the planning service
// daemon serves API and metrics from one listener).
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// The response is already partially written; nothing to do
			// beyond dropping the connection.
			return
		}
	})
}

// HealthHandler returns the liveness handler ("ok" while the process is
// up), mountable on any mux.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
