package obsv

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "demo").Add(7)
	srv, err := StartServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := scrape(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := scrape(t, base+"/metrics"); code != http.StatusOK || !strings.Contains(body, "up_total 7") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := scrape(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d %q", code, body)
	}

	// A scrape after more increments sees the counter advance.
	reg.Counter("up_total", "").Add(3)
	if _, body := scrape(t, base+"/metrics"); !strings.Contains(body, "up_total 10") {
		t.Fatalf("counter did not advance: %q", body)
	}
}

func TestEventLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.events")
	log, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Type: EventRunStart, V: map[string]float64{"epochs": 4}},
		{Type: EventEpoch, Epoch: 1, V: map[string]float64{"reward": -0.5, "solutions": 0}},
		{Type: EventQuarantine, Epoch: 2, Msg: "worker 1: boom"},
		{Type: EventRunEnd, V: map[string]float64{"interrupted": 0}},
	}
	for _, e := range want {
		if err := log.Emit(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].Epoch != want[i].Epoch || got[i].Msg != want[i].Msg {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
		if got[i].Time.IsZero() {
			t.Errorf("event %d has no timestamp", i)
		}
		for k, v := range want[i].V {
			if v != 0 && got[i].V[k] != v {
				t.Errorf("event %d: V[%q] = %v, want %v", i, k, got[i].V[k], v)
			}
		}
	}

	// Appending to an existing log keeps the earlier events.
	log2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := log2.Emit(Event{Type: EventRunStart}); err != nil {
		t.Fatal(err)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)+1 {
		t.Fatalf("after append: %d events, want %d", len(got), len(want)+1)
	}
}

func TestEventLogConcurrentEmit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.events")
	log, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := log.Emit(Event{Type: EventEpoch, Epoch: w*per + i + 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*per {
		t.Fatalf("read %d events, want %d (torn or lost lines)", len(events), workers*per)
	}
}

func TestReadLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.events")
	content := `{"time":"2026-08-05T00:00:00Z","type":"epoch","epoch":1}
{"time":"2026-08-05T00:00:01Z","type":"epoch","ep`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Epoch != 1 {
		t.Fatalf("torn tail: got %+v, want the one whole event", events)
	}
}

func TestReadLogMidFileCorruptionFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.events")
	content := "{not json}\n" + `{"time":"2026-08-05T00:00:00Z","type":"epoch","epoch":1}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(path); err == nil {
		t.Fatal("mid-file corruption not reported")
	}
}

func TestMemorySink(t *testing.T) {
	var s MemorySink
	for i := 0; i < 3; i++ {
		if err := s.Emit(Event{Type: EventEpoch, Epoch: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Events(); len(got) != 3 || got[2].Epoch != 3 {
		t.Fatalf("memory sink captured %+v", got)
	}
}
