package obsv

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestRouteMetricID(t *testing.T) {
	cases := map[string]string{
		"/v1/jobs":             "v1_jobs",
		"/metrics":             "metrics",
		"/":                    "root",
		"":                     "root",
		"/v1/jobs/{id}/result": "v1_jobs_id_result",
		"Weird--Path":          "weird_path",
	}
	for in, want := range cases {
		if got := RouteMetricID(in); got != want {
			t.Errorf("RouteMetricID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWithRequestLog(t *testing.T) {
	reg := NewRegistry()
	h := WithRequestLog(reg, "/v1/jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("boom") != "" {
			http.Error(w, "kaput", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "ok") // implicit 200 via Write
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	for _, url := range []string{srv.URL, srv.URL, srv.URL + "?boom=1"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	if got := reg.Counter("nptsn_http_v1_jobs_requests_total", "").Value(); got != 3 {
		t.Errorf("requests_total = %v, want 3", got)
	}
	if got := reg.Counter("nptsn_http_v1_jobs_errors_total", "").Value(); got != 1 {
		t.Errorf("errors_total = %v, want 1", got)
	}
	if got := reg.Gauge("nptsn_http_v1_jobs_in_flight", "").Value(); got != 0 {
		t.Errorf("in_flight = %v after all requests finished, want 0", got)
	}
	if got := reg.Histogram("nptsn_http_v1_jobs_request_seconds", "", DurationBuckets).Count(); got != 3 {
		t.Errorf("request_seconds count = %v, want 3", got)
	}
}

// TestWithRequestLogNilRegistry: a nil registry must pass the handler
// through untouched instead of panicking.
func TestWithRequestLogNilRegistry(t *testing.T) {
	base := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := WithRequestLog(nil, "/x", base); got == nil {
		t.Fatal("nil handler returned")
	}
	rec := httptest.NewRecorder()
	WithRequestLog(nil, "/x", base).ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
}
