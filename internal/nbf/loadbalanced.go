package nbf

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/tsn"
)

// LoadBalancedRecovery is a stateless recovery mechanism that spreads
// flows across the residual network: for every (flow, destination) pair it
// considers up to MaxAlternatives loopless paths and picks the one whose
// directed links currently carry the fewest reservations, breaking ties by
// path length. Compared to the greedy shortest-path mechanism it trades
// slightly longer routes for fewer slot conflicts — a different point in
// the recovery-mechanism design space NPTSN can plan for through the NBF
// abstraction.
type LoadBalancedRecovery struct {
	// MaxAlternatives bounds the candidate paths per pair (default 4).
	MaxAlternatives int
}

var _ NBF = (*LoadBalancedRecovery)(nil)

// Name implements NBF.
func (r *LoadBalancedRecovery) Name() string { return "stateless-load-balanced" }

// Recover implements NBF.
func (r *LoadBalancedRecovery) Recover(topo *graph.Graph, failure Failure, net tsn.Network, fs tsn.FlowSet) (*tsn.State, []tsn.Pair, error) {
	if err := net.Validate(); err != nil {
		return nil, nil, fmt.Errorf("load-balanced recovery: %w", err)
	}
	if err := fs.Validate(net.BasePeriod); err != nil {
		return nil, nil, fmt.Errorf("load-balanced recovery: %w", err)
	}
	alts := r.MaxAlternatives
	if alts <= 0 {
		alts = 4
	}
	residual := topo.Residual(failure.Nodes, failure.Edges)

	// Deterministic flow order.
	ordered := append(tsn.FlowSet(nil), fs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	load := make(map[tsn.DirLink]int)
	state := &tsn.State{Net: net}
	var failed []tsn.Pair
	sched := tsn.Scheduler{}

	for _, f := range ordered {
		for _, dst := range f.Dsts {
			paths, err := residual.KShortestPaths(f.Src, dst, alts)
			if err != nil {
				failed = append(failed, tsn.Pair{Src: f.Src, Dst: dst})
				continue
			}
			// Order candidates by (max link load, total load, length).
			sort.SliceStable(paths, func(a, b int) bool {
				ma, ta := pathLoad(paths[a], load)
				mb, tb := pathLoad(paths[b], load)
				if ma != mb {
					return ma < mb
				}
				if ta != tb {
					return ta < tb
				}
				return paths[a].Length(residual) < paths[b].Length(residual)
			})
			placed := false
			for _, p := range paths {
				pinnedState, pinnedER, perr := sched.SchedulePinnedAround(residual, net, fs, state, tsn.PinnedFlow{Flow: f, Dst: dst, Path: p})
				if perr != nil {
					return nil, nil, fmt.Errorf("load-balanced recovery: %w", perr)
				}
				if len(pinnedER) != 0 {
					continue // this path cannot be slotted; try the next
				}
				state = pinnedState
				for i := 0; i+1 < len(p); i++ {
					load[tsn.DirLink{From: p[i], To: p[i+1]}]++
				}
				placed = true
				break
			}
			if !placed {
				failed = append(failed, tsn.Pair{Src: f.Src, Dst: dst})
			}
		}
	}
	return state, failed, nil
}

// pathLoad returns the maximum and total current load over a path's
// directed links.
func pathLoad(p graph.Path, load map[tsn.DirLink]int) (maxLoad, total int) {
	for i := 0; i+1 < len(p); i++ {
		l := load[tsn.DirLink{From: p[i], To: p[i+1]}]
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad, total
}
