package nbf

// Concurrency contract for NBF implementations
//
// The failure analyzer may fan recovery simulations of one Analyze call out
// across a pool of goroutines, each calling Recover concurrently on the
// same topology. Implementations therefore fall into two classes:
//
//   - Stateless mechanisms (no mutable receiver or package state touched by
//     Recover) are shared as-is between workers. This is the default: an
//     NBF that does not implement Cloner asserts that concurrent Recover
//     calls are safe.
//
//   - Stateful mechanisms — anything that caches, accumulates, or mutates
//     receiver fields inside Recover — must implement Cloner. Each analysis
//     worker then operates on its own clone, so per-call scratch state never
//     races. CloneForWorker must return an instance that yields verdicts
//     identical to the original's (the determinism of Algorithm 3 depends
//     on it); cloning configuration by value and resetting scratch state is
//     the usual shape.
//
// Adapters that wrap an inner NBF (FlowRedundant, Rebased) propagate the
// contract: their clone clones the inner mechanism via ForWorker.

// Cloner is implemented by recovery mechanisms that carry per-instance
// mutable state and therefore cannot be shared between analysis workers.
type Cloner interface {
	NBF
	// CloneForWorker returns an independent instance for one worker
	// goroutine. The clone must be verdict-equivalent to the receiver.
	CloneForWorker() NBF
}

// StatefulCloner is the Cloner analogue for StatefulNBF implementations,
// used by adapters (Rebased) to clone their inner mechanism.
type StatefulCloner interface {
	StatefulNBF
	CloneForWorkerStateful() StatefulNBF
}

// ForWorker returns the instance an analysis worker should use: a clone
// when n opts into per-worker state via Cloner, n itself otherwise.
func ForWorker(n NBF) NBF {
	if c, ok := n.(Cloner); ok {
		return c.CloneForWorker()
	}
	return n
}

// CloneForWorker implements Cloner: the wrapper is stateless, but the
// wrapped mechanism may not be, so the clone wraps a per-worker inner.
func (f *FlowRedundant) CloneForWorker() NBF {
	return &FlowRedundant{Inner: ForWorker(f.Inner)}
}

// CloneForWorker implements Cloner by cloning the inner stateful mechanism
// when it opts in (configuration-only stateful NBFs like IncrementalRecovery
// are shared unchanged).
func (r *Rebased) CloneForWorker() NBF {
	if c, ok := r.inner.(StatefulCloner); ok {
		return &Rebased{inner: c.CloneForWorkerStateful()}
	}
	return r
}
