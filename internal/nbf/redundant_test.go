package nbf

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/tsn"
)

func TestFlowRedundantSurvivesInstanceLoss(t *testing.T) {
	g := ringTopo(t)
	net := tsn.DefaultNetwork()
	// Two redundant instances of the same (0 -> 2) demand.
	fs := tsn.FlowSet{flow(0, 0, 2), flow(1, 0, 2)}
	fr := NewFlowRedundant(&StatelessRecovery{MaxAlternatives: 3})
	if fr.Name() != "stateless-greedy-flow-redundant" {
		t.Fatalf("Name = %q", fr.Name())
	}

	// Fault-free: both instances scheduled, ER empty.
	st, er, err := fr.Recover(g, Failure{}, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 || len(st.Plans) != 2 {
		t.Fatalf("er=%v plans=%d", er, len(st.Plans))
	}
}

func TestFlowRedundantCollapsesErrorToGroups(t *testing.T) {
	// A tight base period forces the second instance off the network when
	// only one path exists, but the pair remains covered by the first.
	net := tsn.Network{BasePeriod: 2 * time.Microsecond, SlotsPerBase: 2}
	// Star: both ES on one switch; the only path is 2 hops, and a 2-slot
	// deadline admits exactly one instance (the second would need slot 2).
	g := graphStar(t)
	mk := func(id int) tsn.Flow {
		return tsn.Flow{ID: id, Src: 0, Dsts: []int{1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 1}
	}
	fs := tsn.FlowSet{mk(0), mk(1)}

	inner := &StatelessRecovery{MaxAlternatives: 3}
	_, erInner, err := inner.Recover(g, Failure{}, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFlowRedundant(inner)
	_, erGroup, err := fr.Recover(g, Failure{}, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(erInner) == 0 {
		t.Skip("fixture did not create instance-level contention")
	}
	// The inner mechanism reports a failed instance; the redundant view
	// must not, because the pair is still served.
	if len(erGroup) != 0 {
		t.Fatalf("group ER = %v, want empty (pair still covered)", erGroup)
	}
}

func TestFlowRedundantReportsFullGroupLoss(t *testing.T) {
	g := ringTopo(t)
	net := tsn.DefaultNetwork()
	fs := tsn.FlowSet{flow(0, 0, 2), flow(1, 0, 2)}
	fr := NewFlowRedundant(&StatelessRecovery{MaxAlternatives: 3})
	// Isolate ES 0's switch: both instances die, the group fails.
	_, er, err := fr.Recover(g, Failure{Nodes: []int{4}}, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 1 || er[0] != (tsn.Pair{Src: 0, Dst: 2}) {
		t.Fatalf("ER = %v, want [(0->2)]", er)
	}
}

// graphStar builds 2 end stations on a single switch.
func graphStar(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	g.AddVertex("", graph.KindEndStation)
	g.AddVertex("", graph.KindEndStation)
	sw := g.AddVertex("", graph.KindSwitch)
	for es := 0; es < 2; es++ {
		if err := g.AddEdge(es, sw, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}
