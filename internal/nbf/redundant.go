package nbf

import (
	"repro/internal/graph"
	"repro/internal/tsn"
)

// FlowRedundant adapts an NBF to flow-level redundancy semantics (§V):
// when the specification carries several flow instances for the same
// (source, destination) pair — e.g. FRER-style replicas — the error message
// reports a pair only when ALL of its instances fail. Use together with
// failure.Analyzer.FlowLevelRedundancy, which then enumerates failures over
// all network nodes including end stations.
type FlowRedundant struct {
	Inner NBF
}

var _ NBF = (*FlowRedundant)(nil)

// NewFlowRedundant wraps an inner recovery mechanism.
func NewFlowRedundant(inner NBF) *FlowRedundant {
	return &FlowRedundant{Inner: inner}
}

// Name implements NBF.
func (f *FlowRedundant) Name() string { return f.Inner.Name() + "-flow-redundant" }

// Recover implements NBF: run the inner mechanism, then collapse the error
// message to redundancy groups — a (src, dst) pair fails only when no flow
// instance covering it was restored.
func (f *FlowRedundant) Recover(topo *graph.Graph, failure Failure, net tsn.Network, fs tsn.FlowSet) (*tsn.State, []tsn.Pair, error) {
	st, _, err := f.Inner.Recover(topo, failure, net, fs)
	if err != nil {
		return nil, nil, err
	}
	covered := make(map[tsn.Pair]bool)
	flowsByID := make(map[int]tsn.Flow, len(fs))
	for _, fl := range fs {
		flowsByID[fl.ID] = fl
	}
	for _, p := range st.Plans {
		fl, ok := flowsByID[p.FlowID]
		if !ok {
			continue
		}
		covered[tsn.Pair{Src: fl.Src, Dst: p.Dst}] = true
	}
	var er []tsn.Pair
	for _, pair := range fs.UniquePairs() {
		if !covered[pair] {
			er = append(er, pair)
		}
	}
	return st, er, nil
}
