package nbf

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tsn"
)

func TestIncrementalRecoveryKeepsUndisruptedPlans(t *testing.T) {
	g := ringTopo(t)
	net := tsn.DefaultNetwork()
	fs := tsn.FlowSet{flow(0, 0, 2), flow(1, 1, 3)}
	fi0, er0, err := InitialState(&StatelessRecovery{}, g, net, fs)
	if err != nil || len(er0) != 0 {
		t.Fatalf("FI0: er=%v err=%v", er0, err)
	}
	p1Before, _ := fi0.PlanFor(1, 3)

	inc := &IncrementalRecovery{MaxAlternatives: 3}
	// Fail a link on flow 0's path but not flow 1's.
	p0Before, _ := fi0.PlanFor(0, 2)
	failEdge := graph.Edge{U: p0Before.Path[1], V: p0Before.Path[2]}
	if p1Before.Path.Contains(failEdge.U) && p1Before.Path.Contains(failEdge.V) {
		t.Skip("fixture overlap; both flows share the edge")
	}
	st, er, err := inc.RecoverFrom(g, Failure{Edges: []graph.Edge{failEdge}}, net, fs, fi0)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("ER = %v, want empty", er)
	}
	p1After, ok := st.PlanFor(1, 3)
	if !ok || !p1After.Path.Equal(p1Before.Path) {
		t.Fatalf("undisrupted flow re-routed: %v -> %v", p1Before.Path, p1After.Path)
	}
	p0After, ok := st.PlanFor(0, 2)
	if !ok {
		t.Fatal("disrupted flow not recovered")
	}
	for i := 0; i+1 < len(p0After.Path); i++ {
		e := graph.Edge{U: p0After.Path[i], V: p0After.Path[i+1]}.Canonical()
		if e == failEdge.Canonical() {
			t.Fatal("recovered path uses the failed link")
		}
	}
	if err := tsn.VerifyState(g.Residual(nil, []graph.Edge{failEdge}), net, fs, st); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalRecoveryNilPriorSchedulesEverything(t *testing.T) {
	g := ringTopo(t)
	net := tsn.DefaultNetwork()
	fs := tsn.FlowSet{flow(0, 0, 2)}
	inc := &IncrementalRecovery{}
	st, er, err := inc.RecoverFrom(g, Failure{}, net, fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 || len(st.Plans) != 1 {
		t.Fatalf("er=%v plans=%d", er, len(st.Plans))
	}
}

func TestIncrementalRecoveryInvalidInputs(t *testing.T) {
	g := ringTopo(t)
	inc := &IncrementalRecovery{}
	if _, _, err := inc.RecoverFrom(g, Failure{}, tsn.Network{}, nil, nil); err == nil {
		t.Error("invalid network accepted")
	}
	bad := flow(0, 0, 2)
	bad.Period = 0
	if _, _, err := inc.RecoverFrom(g, Failure{}, tsn.DefaultNetwork(), tsn.FlowSet{bad}, nil); err == nil {
		t.Error("invalid flow accepted")
	}
}

func TestRebasedMatchesStatelessOnSinglePointFailures(t *testing.T) {
	g := ringTopo(t)
	net := tsn.DefaultNetwork()
	fs := tsn.FlowSet{flow(0, 0, 2), flow(1, 1, 3)}
	rb := NewRebased(&IncrementalRecovery{MaxAlternatives: 3})
	if rb.Name() != "incremental-rebased" {
		t.Fatalf("Name = %q", rb.Name())
	}
	for sw := 4; sw <= 7; sw++ {
		_, erStateless, err := (&StatelessRecovery{MaxAlternatives: 3}).Recover(g, Failure{Nodes: []int{sw}}, net, fs)
		if err != nil {
			t.Fatal(err)
		}
		_, erRebased, err := rb.Recover(g, Failure{Nodes: []int{sw}}, net, fs)
		if err != nil {
			t.Fatal(err)
		}
		// Both mechanisms must agree on recoverability (which pairs fail).
		if len(erStateless) != len(erRebased) {
			t.Fatalf("sw %d: stateless ER %v vs rebased ER %v", sw, erStateless, erRebased)
		}
	}
}

func TestRebasedEmptyFailureReturnsFI0(t *testing.T) {
	g := ringTopo(t)
	net := tsn.DefaultNetwork()
	fs := tsn.FlowSet{flow(0, 0, 2)}
	rb := NewRebased(&IncrementalRecovery{})
	st, er, err := rb.Recover(g, Failure{}, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 || len(st.Plans) != 1 {
		t.Fatalf("er=%v plans=%d", er, len(st.Plans))
	}
}

func TestScheduleAroundRejectsUnknownFlows(t *testing.T) {
	g := ringTopo(t)
	net := tsn.DefaultNetwork()
	fs := tsn.FlowSet{flow(0, 0, 2)}
	sched := tsn.Scheduler{}
	pinned := &tsn.State{Net: net, Plans: []tsn.FlowPlan{{FlowID: 42, Dst: 2, Path: graph.Path{0, 4, 5, 6, 2}, Slots: []int{0, 1, 2, 3}}}}
	if _, _, err := sched.ScheduleAround(g, net, fs, pinned, nil); err == nil {
		t.Error("unknown pinned flow accepted")
	}
	if _, _, err := sched.ScheduleAround(g, net, fs, nil, tsn.FlowSet{flow(9, 0, 2)}); err == nil {
		t.Error("unknown pending flow accepted")
	}
}
