package nbf

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tsn"
)

// ringTopo builds 4 end stations, each attached to its own switch, with the
// switches in a ring — every single switch failure leaves the others
// connected, but an ES loses service if its own switch dies.
//
//	es0-sw4, es1-sw5, es2-sw6, es3-sw7; ring sw4-sw5-sw6-sw7-sw4
func ringTopo(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	edges := [][2]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}, {4, 5}, {5, 6}, {6, 7}, {7, 4}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func flow(id, src, dst int) tsn.Flow {
	net := tsn.DefaultNetwork()
	return tsn.Flow{ID: id, Src: src, Dsts: []int{dst}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}
}

func TestStatelessRecoveryNoFailure(t *testing.T) {
	g := ringTopo(t)
	fs := tsn.FlowSet{flow(0, 0, 2)}
	r := &StatelessRecovery{}
	st, er, err := r.Recover(g, Failure{}, tsn.DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("ER = %v, want empty", er)
	}
	if err := tsn.VerifyState(g, tsn.DefaultNetwork(), fs, st); err != nil {
		t.Fatal(err)
	}
}

func TestStatelessRecoveryReroutesAroundFailedSwitch(t *testing.T) {
	g := ringTopo(t)
	fs := tsn.FlowSet{flow(0, 0, 2)}
	r := &StatelessRecovery{}

	// Without failure the route goes 0-4-5-6-2 or 0-4-7-6-2 (both 4 hops).
	// Fail sw5: the route must avoid it.
	st, er, err := r.Recover(g, Failure{Nodes: []int{5}}, tsn.DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("ER = %v, want empty (ring survives one switch)", er)
	}
	p, ok := st.PlanFor(0, 2)
	if !ok {
		t.Fatal("no plan for flow 0")
	}
	if p.Path.Contains(5) {
		t.Fatalf("recovered path %v traverses the failed switch", p.Path)
	}
}

func TestStatelessRecoveryReportsUnrecoverablePair(t *testing.T) {
	g := ringTopo(t)
	fs := tsn.FlowSet{flow(0, 0, 2), flow(1, 1, 3)}
	r := &StatelessRecovery{}
	// Failing es0's own switch isolates it.
	st, er, err := r.Recover(g, Failure{Nodes: []int{4}}, tsn.DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 1 || er[0] != (tsn.Pair{Src: 0, Dst: 2}) {
		t.Fatalf("ER = %v, want [(0->2)]", er)
	}
	// The other flow must still be recovered.
	if _, ok := st.PlanFor(1, 3); !ok {
		t.Fatal("flow 1 should survive")
	}
}

func TestStatelessRecoveryLinkFailure(t *testing.T) {
	g := ringTopo(t)
	fs := tsn.FlowSet{flow(0, 0, 1)}
	r := &StatelessRecovery{}
	st, er, err := r.Recover(g, Failure{Edges: []graph.Edge{{U: 4, V: 5}}}, tsn.DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("ER = %v, want empty", er)
	}
	p, _ := st.PlanFor(0, 1)
	// Must go the long way around the ring.
	want := graph.Path{0, 4, 7, 6, 5, 1}
	if !p.Path.Equal(want) {
		t.Fatalf("path = %v, want %v", p.Path, want)
	}
}

func TestStatelessRecoveryDeterministic(t *testing.T) {
	g := ringTopo(t)
	fs := tsn.FlowSet{flow(0, 0, 2), flow(1, 1, 3), flow(2, 3, 0)}
	r := &StatelessRecovery{MaxAlternatives: 2}
	f := Failure{Nodes: []int{6}}
	st1, er1, err := r.Recover(g, f, tsn.DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	st2, er2, err := r.Recover(g, f, tsn.DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er1) != len(er2) || len(st1.Plans) != len(st2.Plans) {
		t.Fatal("NBF not deterministic")
	}
	for i := range st1.Plans {
		if !st1.Plans[i].Path.Equal(st2.Plans[i].Path) {
			t.Fatal("NBF paths not deterministic")
		}
	}
}

func TestStatelessRecoveryDoesNotMutateTopology(t *testing.T) {
	g := ringTopo(t)
	edgesBefore := g.NumEdges()
	fs := tsn.FlowSet{flow(0, 0, 2)}
	r := &StatelessRecovery{}
	if _, _, err := r.Recover(g, Failure{Nodes: []int{5}, Edges: []graph.Edge{{U: 6, V: 7}}}, tsn.DefaultNetwork(), fs); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != edgesBefore {
		t.Fatal("Recover mutated the input topology")
	}
}

func TestInitialState(t *testing.T) {
	g := ringTopo(t)
	fs := tsn.FlowSet{flow(0, 0, 2)}
	st, er, err := InitialState(&StatelessRecovery{}, g, tsn.DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 || len(st.Plans) != 1 {
		t.Fatalf("FI0: er=%v plans=%d", er, len(st.Plans))
	}
}

func TestFailureHelpers(t *testing.T) {
	var f Failure
	if !f.Empty() || f.String() != "∅" {
		t.Error("empty failure helpers wrong")
	}
	f = Failure{Nodes: []int{1}, Edges: []graph.Edge{{U: 2, V: 3}}}
	if f.Empty() {
		t.Error("non-empty failure reported empty")
	}
	c := f.Clone()
	c.Nodes[0] = 9
	if f.Nodes[0] == 9 {
		t.Error("Clone shares node storage")
	}
	if f.String() == "" {
		t.Error("String should render")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) < 3 {
		t.Fatalf("expected builtin mechanisms, got %v", names)
	}
	n, err := r.New("stateless-greedy")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "stateless-greedy" {
		t.Fatalf("Name = %q", n.Name())
	}
	if _, err := r.New("nope"); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if err := r.Register("stateless-greedy", func() NBF { return nil }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Register("nilfactory", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := r.Register("custom", func() NBF { return &StatelessRecovery{} }); err != nil {
		t.Errorf("valid registration rejected: %v", err)
	}
}

func TestRegistryBuiltinsComplete(t *testing.T) {
	// The built-in lineup must instantiate without error — the registry has
	// no panicking registration path anymore, so a typo in the static table
	// must surface here.
	r := NewRegistry()
	for _, name := range r.Names() {
		mech, err := r.New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mech == nil {
			t.Fatalf("%s: nil mechanism", name)
		}
	}
}
