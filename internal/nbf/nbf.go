// Package nbf defines the Network Behaviour Function (NBF) abstraction of
// §II-B and provides concrete recovery mechanisms. A stateless NBF
// Φ : (Gt, Gf, B, FS) -> (FI', ER) models how the TSSDN controller
// re-schedules TT flows on the residual network after a failure scenario,
// independent of the pre-failure flow state, so that every failure scenario
// maps to exactly one flow state (the property Algorithm 3 relies on).
package nbf

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/tsn"
)

// Failure is a failure scenario Gf: a subgraph of the topology given by its
// failed nodes and failed links. Fail-silent semantics apply — a failed
// node disables all attached links.
type Failure struct {
	Nodes []int
	Edges []graph.Edge
}

// Empty reports whether no component failed.
func (f Failure) Empty() bool { return len(f.Nodes) == 0 && len(f.Edges) == 0 }

// Clone deep-copies the failure scenario.
func (f Failure) Clone() Failure {
	return Failure{
		Nodes: append([]int(nil), f.Nodes...),
		Edges: append([]graph.Edge(nil), f.Edges...),
	}
}

// String renders the failure scenario for logs.
func (f Failure) String() string {
	if f.Empty() {
		return "∅"
	}
	return fmt.Sprintf("nodes=%v edges=%v", f.Nodes, f.Edges)
}

// NBF is a stateless network behaviour function. Implementations must be
// deterministic in their inputs. The failure analyzer may call Recover from
// several goroutines at once: implementations that mutate receiver state
// inside Recover must implement Cloner (see the concurrency contract in
// concurrency.go); all others assert concurrent use is safe.
type NBF interface {
	// Name identifies the recovery mechanism.
	Name() string
	// Recover re-establishes bandwidth and timing guarantees for all flows
	// on the residual network of topo under failure. It returns the new
	// flow state FI' and the error set ER of unrecoverable (src, dst)
	// pairs; ER is empty iff recovery succeeds. A non-nil error means the
	// inputs were invalid, not that recovery failed.
	Recover(topo *graph.Graph, failure Failure, net tsn.Network, fs tsn.FlowSet) (*tsn.State, []tsn.Pair, error)
}

// StatelessRecovery is the default NBF: a greedy re-route and re-schedule
// of all TT flows on the residual network, our stand-in for the heuristic
// recovery algorithm of [9] used in the paper's evaluation. It is stateless
// by construction — the schedule is recomputed from scratch — which matches
// the requirement of §II-B.
type StatelessRecovery struct {
	// MaxAlternatives is forwarded to the TT scheduler: how many loopless
	// paths to try per pair before declaring it unrecoverable.
	MaxAlternatives int
}

var _ NBF = (*StatelessRecovery)(nil)

// Name implements NBF.
func (r *StatelessRecovery) Name() string { return "stateless-greedy" }

// Recover implements NBF by scheduling the full flow set on the residual
// network.
func (r *StatelessRecovery) Recover(topo *graph.Graph, failure Failure, net tsn.Network, fs tsn.FlowSet) (*tsn.State, []tsn.Pair, error) {
	residual := topo.Residual(failure.Nodes, failure.Edges)
	sched := tsn.Scheduler{MaxAlternatives: r.MaxAlternatives}
	st, er, err := sched.Schedule(residual, net, fs)
	if err != nil {
		return nil, nil, fmt.Errorf("stateless recovery: %w", err)
	}
	return st, er, nil
}

// InitialState computes FI0, the initial flow state on the intact topology
// (the Φ output for an empty failure), together with ER0.
func InitialState(n NBF, topo *graph.Graph, net tsn.Network, fs tsn.FlowSet) (*tsn.State, []tsn.Pair, error) {
	return n.Recover(topo, Failure{}, net, fs)
}

// Registry maps recovery-mechanism names to constructors, so alternative
// controllers can be plugged into the planner by name (the TSSDN controller
// library of Fig. 1).
type Registry struct {
	factories map[string]func() NBF
}

// NewRegistry returns a registry pre-populated with the built-in recovery
// mechanisms.
func NewRegistry() *Registry {
	return &Registry{factories: map[string]func() NBF{
		"stateless-greedy":   func() NBF { return &StatelessRecovery{MaxAlternatives: 3} },
		"stateless-shortest": func() NBF { return &StatelessRecovery{MaxAlternatives: 1} },
		"rebased-incremental": func() NBF {
			return NewRebased(&IncrementalRecovery{MaxAlternatives: 3})
		},
		"flow-redundant-greedy": func() NBF {
			return NewFlowRedundant(&StatelessRecovery{MaxAlternatives: 3})
		},
		"stateless-load-balanced": func() NBF {
			return &LoadBalancedRecovery{MaxAlternatives: 4}
		},
	}}
}

// Register adds a named constructor. Registering a duplicate name fails.
func (r *Registry) Register(name string, factory func() NBF) error {
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("nbf registry: %q already registered", name)
	}
	if factory == nil {
		return fmt.Errorf("nbf registry: nil factory for %q", name)
	}
	r.factories[name] = factory
	return nil
}

// New instantiates the named recovery mechanism.
func (r *Registry) New(name string) (NBF, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("nbf registry: unknown mechanism %q (have %v)", name, r.Names())
	}
	return f(), nil
}

// Names lists registered mechanisms in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.factories))
	for n := range r.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
