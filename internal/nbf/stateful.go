package nbf

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tsn"
)

// StatefulNBF is a recovery mechanism whose output depends on the
// pre-failure flow state FI (Φs in §II-B). Verifying such mechanisms under
// n-point consecutive failures requires checking n! orderings, which is why
// the planner demands stateless NBFs; the Rebased adapter below performs
// the §II-B conversion.
type StatefulNBF interface {
	// Name identifies the recovery mechanism.
	Name() string
	// RecoverFrom re-schedules from the flow state prior and returns the
	// new flow state and error set.
	RecoverFrom(topo *graph.Graph, failure Failure, net tsn.Network, fs tsn.FlowSet, prior *tsn.State) (*tsn.State, []tsn.Pair, error)
}

// IncrementalRecovery is a stateful recovery scheme in the spirit of
// [7], [9]: it compares the prior flow state with the failure, keeps every
// plan that does not traverse a failed component, and re-schedules only the
// disrupted (flow, destination) pairs on the residual network around the
// surviving reservations.
type IncrementalRecovery struct {
	MaxAlternatives int
}

var _ StatefulNBF = (*IncrementalRecovery)(nil)

// Name implements StatefulNBF.
func (r *IncrementalRecovery) Name() string { return "incremental" }

// RecoverFrom implements StatefulNBF.
func (r *IncrementalRecovery) RecoverFrom(topo *graph.Graph, failure Failure, net tsn.Network, fs tsn.FlowSet, prior *tsn.State) (*tsn.State, []tsn.Pair, error) {
	if err := net.Validate(); err != nil {
		return nil, nil, fmt.Errorf("incremental recovery: %w", err)
	}
	if err := fs.Validate(net.BasePeriod); err != nil {
		return nil, nil, fmt.Errorf("incremental recovery: %w", err)
	}
	if prior == nil {
		prior = &tsn.State{Net: net}
	}
	residual := topo.Residual(failure.Nodes, failure.Edges)

	failedNode := make(map[int]bool, len(failure.Nodes))
	for _, n := range failure.Nodes {
		failedNode[n] = true
	}

	// Partition prior plans into surviving and disrupted.
	surviving := &tsn.State{Net: net}
	disrupted := make(map[tsn.Pair][]int) // pair -> flow IDs needing reschedule
	planned := make(map[[2]int]bool)      // (flowID, dst) that have any prior plan
	for _, p := range prior.Plans {
		planned[[2]int{p.FlowID, p.Dst}] = true
		if planDisrupted(p, residual, failedNode) {
			pr := tsn.Pair{Src: p.Path.Source(), Dst: p.Dst}
			disrupted[pr] = append(disrupted[pr], p.FlowID)
			continue
		}
		surviving.Plans = append(surviving.Plans, p)
	}

	// Pairs never planned before (e.g. ER0 leftovers) also need scheduling.
	var pending tsn.FlowSet
	for _, f := range fs {
		for _, d := range f.Dsts {
			if planned[[2]int{f.ID, d}] {
				// Included only if its plan was disrupted.
				if ids, ok := disrupted[tsn.Pair{Src: f.Src, Dst: d}]; ok && containsInt(ids, f.ID) {
					pending = append(pending, narrowFlow(f, d))
				}
				continue
			}
			pending = append(pending, narrowFlow(f, d))
		}
	}

	// Re-schedule the pending pairs on the residual network with the
	// surviving reservations fixed: we schedule surviving plans first
	// (verbatim paths always fit — they fit before and nothing new was
	// added), then the pending ones.
	combined := surviving.Plans
	sched := tsn.Scheduler{MaxAlternatives: r.MaxAlternatives}

	// Rebuild a full schedule where surviving flows are pinned by
	// scheduling them first in a deterministic pass. To pin them exactly we
	// re-verify; if verification of surviving plans fails (should not), we
	// fall back to full rescheduling.
	pinned := &tsn.State{Net: net, Plans: combined}
	if err := tsn.VerifyState(residual, net, fs, pinned); err != nil {
		full := &StatelessRecovery{MaxAlternatives: r.MaxAlternatives}
		return full.Recover(topo, failure, net, fs)
	}

	newState, er, err := sched.ScheduleAround(residual, net, fs, pinned, pending)
	if err != nil {
		return nil, nil, fmt.Errorf("incremental recovery: %w", err)
	}
	return newState, er, nil
}

func planDisrupted(p tsn.FlowPlan, residual *graph.Graph, failedNode map[int]bool) bool {
	for _, v := range p.Path {
		if failedNode[v] {
			return true
		}
	}
	for i := 0; i+1 < len(p.Path); i++ {
		if !residual.HasEdge(p.Path[i], p.Path[i+1]) {
			return true
		}
	}
	return false
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// narrowFlow restricts a flow to a single destination, keeping its ID so
// reservations remain attributable.
func narrowFlow(f tsn.Flow, dst int) tsn.Flow {
	nf := f
	nf.Dsts = []int{dst}
	return nf
}

// Rebased adapts a stateful NBF into a stateless one using the §II-B
// conversion: instead of recovering from the current flow state, it always
// recovers from the initial flow state FI0 computed on the intact topology
// (Φ(Gt,Gf,B,FS) := Φs(Gt,Gf,B,FS,FI0)). Single-point recovery behaviour is
// unchanged; multi-point consecutive failures may reconfigure more flows.
type Rebased struct {
	inner StatefulNBF
}

// NewRebased wraps a stateful NBF.
func NewRebased(inner StatefulNBF) *Rebased {
	return &Rebased{inner: inner}
}

var _ NBF = (*Rebased)(nil)

// Name implements NBF.
func (r *Rebased) Name() string { return r.inner.Name() + "-rebased" }

// Recover implements NBF: compute FI0 on the intact topology, then apply
// the stateful mechanism once from FI0.
func (r *Rebased) Recover(topo *graph.Graph, failure Failure, net tsn.Network, fs tsn.FlowSet) (*tsn.State, []tsn.Pair, error) {
	fi0, _, err := (&StatelessRecovery{MaxAlternatives: 3}).Recover(topo, Failure{}, net, fs)
	if err != nil {
		return nil, nil, err
	}
	if failure.Empty() {
		// Φ on the empty failure is defined to return FI0 (§II-B).
		_, er0, err := (&StatelessRecovery{MaxAlternatives: 3}).Recover(topo, Failure{}, net, fs)
		return fi0, er0, err
	}
	return r.inner.RecoverFrom(topo, failure, net, fs, fi0)
}
