package nbf

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tsn"
)

func TestLoadBalancedRecoveryBasic(t *testing.T) {
	g := ringTopo(t)
	net := tsn.DefaultNetwork()
	fs := tsn.FlowSet{flow(0, 0, 2), flow(1, 1, 3)}
	lb := &LoadBalancedRecovery{}
	if lb.Name() != "stateless-load-balanced" {
		t.Fatalf("Name = %q", lb.Name())
	}
	st, er, err := lb.Recover(g, Failure{}, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 || len(st.Plans) != 2 {
		t.Fatalf("er=%v plans=%d", er, len(st.Plans))
	}
	if err := tsn.VerifyState(g, net, fs, st); err != nil {
		t.Fatal(err)
	}
}

func TestLoadBalancedRecoverySpreadsLoad(t *testing.T) {
	// Two ES pairs connected via two parallel switches: the greedy
	// mechanism routes everything over the deterministic tie-break winner;
	// the load-balanced one must split the flows across both switches.
	g := dualSwitchTopo(t)
	net := tsn.DefaultNetwork()
	var fs tsn.FlowSet
	for i := 0; i < 4; i++ {
		fs = append(fs, flow(i, 0, 1))
	}
	lb := &LoadBalancedRecovery{MaxAlternatives: 4}
	st, er, err := lb.Recover(g, Failure{}, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("ER = %v", er)
	}
	used := map[int]int{} // switch -> flows routed through it
	for _, p := range st.Plans {
		for _, v := range p.Path {
			if v >= 2 {
				used[v]++
			}
		}
	}
	if used[2] == 0 || used[3] == 0 {
		t.Fatalf("flows not spread across switches: %v", used)
	}
	if err := tsn.VerifyState(g, net, fs, st); err != nil {
		t.Fatal(err)
	}
}

// dualSwitchTopo: es0, es1 both connected to sw2 and sw3.
func dualSwitchTopo(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	g.AddVertex("", graph.KindEndStation)
	g.AddVertex("", graph.KindEndStation)
	g.AddVertex("", graph.KindSwitch)
	g.AddVertex("", graph.KindSwitch)
	for es := 0; es < 2; es++ {
		for sw := 2; sw < 4; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func TestLoadBalancedRecoveryFailure(t *testing.T) {
	g := dualSwitchTopo(t)
	net := tsn.DefaultNetwork()
	fs := tsn.FlowSet{flow(0, 0, 1)}
	lb := &LoadBalancedRecovery{}
	// Both switches dead: unrecoverable.
	_, er, err := lb.Recover(g, Failure{Nodes: []int{2, 3}}, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 1 {
		t.Fatalf("ER = %v", er)
	}
	// One switch dead: fine.
	st, er, err := lb.Recover(g, Failure{Nodes: []int{2}}, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("ER = %v", er)
	}
	for _, p := range st.Plans {
		if p.Path.Contains(2) {
			t.Fatal("routed through the failed switch")
		}
	}
}

func TestLoadBalancedRecoveryValidation(t *testing.T) {
	g := dualSwitchTopo(t)
	lb := &LoadBalancedRecovery{}
	if _, _, err := lb.Recover(g, Failure{}, tsn.Network{}, nil); err == nil {
		t.Error("invalid network accepted")
	}
	bad := flow(0, 0, 1)
	bad.Period = 0
	if _, _, err := lb.Recover(g, Failure{}, tsn.DefaultNetwork(), tsn.FlowSet{bad}); err == nil {
		t.Error("invalid flow accepted")
	}
}
