// Package exact is a branch-and-bound TSSDN planner for small problem
// instances. It enumerates switch selections with ASIL levels and link
// subsets, pruning on a monotone cost lower bound, and verifies candidates
// with the same failure analyzer NPTSN uses. It exists to validate the RL
// planner's solution quality: on instances it can afford, its result is
// the true optimum (general network planning is NP-hard, §VII, so the
// search is capped to small inputs).
package exact

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
)

// Planner bounds the exhaustive search.
type Planner struct {
	// MaxSwitches caps |V^c_sw| (default 3): 5 states per switch.
	MaxSwitches int
	// MaxLinks caps |Ec| (default 14): 2 states per link.
	MaxLinks int
}

// Stats reports the search effort.
type Stats struct {
	SwitchConfigs   int
	LinkCandidates  int
	AnalyzerCalls   int
	PrunedByBound   int
	PrunedByDegrees int
}

// Plan searches for the minimum-cost valid solution. It returns (nil,
// stats, nil) when the problem has no valid solution within the connection
// graph, and an error for invalid or oversized inputs.
func (p *Planner) Plan(prob *core.Problem) (*core.Solution, Stats, error) {
	if err := prob.Validate(); err != nil {
		return nil, Stats{}, err
	}
	maxSw := p.MaxSwitches
	if maxSw == 0 {
		maxSw = 3
	}
	maxLinks := p.MaxLinks
	if maxLinks == 0 {
		maxLinks = 14
	}
	switches := prob.Switches()
	links := prob.Connections.Edges()
	if len(switches) > maxSw {
		return nil, Stats{}, fmt.Errorf("exact: %d switches exceed the cap %d", len(switches), maxSw)
	}
	if len(links) > maxLinks {
		return nil, Stats{}, fmt.Errorf("exact: %d links exceed the cap %d", len(links), maxLinks)
	}

	an := &failure.Analyzer{
		Lib:                 prob.Library,
		NBF:                 prob.NBF,
		Net:                 prob.Net,
		R:                   prob.ReliabilityGoal,
		FlowLevelRedundancy: prob.FlowLevelRedundancy,
		ESLevel:             prob.ESLevel,
	}

	var stats Stats
	best := math.Inf(1)
	var bestSol *core.Solution

	// Enumerate switch configurations: level 0 = absent.
	levels := []asil.Level{0, asil.LevelA, asil.LevelB, asil.LevelC, asil.LevelD}
	assignment := make([]asil.Level, len(switches))
	var enumerate func(i int)

	search := func() {
		stats.SwitchConfigs++
		present := make(map[int]asil.Level, len(switches))
		for i, sw := range switches {
			if assignment[i] != 0 {
				present[sw] = assignment[i]
			}
		}
		// Candidate links: both endpoints available.
		var usable []graph.Edge
		for _, e := range links {
			ok := true
			for _, v := range []int{e.U, e.V} {
				if prob.Connections.Kind(v) == graph.KindSwitch {
					if _, in := present[v]; !in {
						ok = false
					}
				}
			}
			if ok {
				usable = append(usable, e)
			}
		}
		// Deterministic order: cheapest links first improves pruning.
		sort.Slice(usable, func(a, b int) bool {
			if usable[a].Length != usable[b].Length {
				return usable[a].Length < usable[b].Length
			}
			if usable[a].U != usable[b].U {
				return usable[a].U < usable[b].U
			}
			return usable[a].V < usable[b].V
		})

		topo := prob.Connections.EmptyLike()
		var recurse func(idx int)
		recurse = func(idx int) {
			lb, feasible := lowerBound(prob, topo, present)
			if !feasible {
				stats.PrunedByDegrees++
				return
			}
			if lb >= best {
				stats.PrunedByBound++
				return
			}
			if idx == len(usable) {
				stats.LinkCandidates++
				sol, cost, ok := p.evaluate(prob, an, &stats, topo, present)
				if ok && cost < best {
					best = cost
					bestSol = sol
				}
				return
			}
			e := usable[idx]
			// Branch 1: include the link.
			if err := topo.AddEdge(e.U, e.V, e.Length); err == nil {
				recurse(idx + 1)
				topo.RemoveEdge(e.U, e.V)
			}
			// Branch 2: exclude it.
			recurse(idx + 1)
		}
		recurse(0)
	}

	enumerate = func(i int) {
		if i == len(switches) {
			search()
			return
		}
		for _, lvl := range levels {
			assignment[i] = lvl
			enumerate(i + 1)
		}
	}
	enumerate(0)

	return bestSol, stats, nil
}

// lowerBound computes a monotone lower bound on the final cost of any
// completion of the partial topology, and checks degree feasibility.
// Adding more links can only raise switch degrees (raising csw) and add
// link costs, so partial cost is a valid bound.
func lowerBound(prob *core.Problem, topo *graph.Graph, present map[int]asil.Level) (float64, bool) {
	var total float64
	for sw, lvl := range present {
		deg := topo.Degree(sw)
		if deg > prob.Library.MaxSwitchDegree() {
			return 0, false
		}
		c, err := prob.Library.SwitchCost(lvl, deg)
		if err != nil {
			return 0, false
		}
		total += c
	}
	for _, es := range prob.EndStations() {
		if topo.Degree(es) > prob.MaxESDegree {
			return 0, false
		}
	}
	for _, e := range topo.Edges() {
		lvl := linkLevel(prob, present, e.U, e.V)
		c, err := prob.Library.LinkCost(lvl, e.Length)
		if err != nil {
			return 0, false
		}
		total += c
	}
	return total, true
}

func linkLevel(prob *core.Problem, present map[int]asil.Level, u, v int) asil.Level {
	levelOf := func(x int) asil.Level {
		if prob.Connections.Kind(x) == graph.KindEndStation {
			return prob.ESLevel
		}
		return present[x]
	}
	return asil.Min(levelOf(u), levelOf(v))
}

// evaluate runs the full reliability analysis on a complete candidate.
func (p *Planner) evaluate(prob *core.Problem, an *failure.Analyzer, stats *Stats, topo *graph.Graph, present map[int]asil.Level) (*core.Solution, float64, bool) {
	// Quick reject: every demanded pair must be connected.
	for _, pair := range prob.Flows.UniquePairs() {
		if !topo.Connected(pair.Src, pair.Dst) {
			return nil, 0, false
		}
	}
	// A present switch with no links is never optimal; skip to avoid
	// pricing dead switches (the subset without it will be enumerated).
	for sw := range present {
		if topo.Degree(sw) == 0 {
			return nil, 0, false
		}
	}
	assign := asil.NewAssignment()
	for sw, lvl := range present {
		assign.Switches[sw] = lvl
	}
	for _, e := range topo.Edges() {
		assign.SetLink(e.U, e.V, linkLevel(prob, present, e.U, e.V))
	}
	cost, err := asil.NetworkCost(topo, assign, prob.Library)
	if err != nil {
		return nil, 0, false
	}
	stats.AnalyzerCalls++
	res, err := an.Analyze(topo, assign, prob.Flows)
	if err != nil || !res.OK {
		return nil, 0, false
	}
	return &core.Solution{
		Topology:   topo.Clone(),
		Assignment: assign,
		Cost:       cost,
	}, cost, true
}
