package exact

import (
	"testing"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// tinyProblem mirrors the core test fixture: 4 ES, 2 switches, full
// candidate connections, 3 flows, R = 1e-6.
func tinyProblem(t testing.TB) *core.Problem {
	t.Helper()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.AddEdge(4, 5, 1); err != nil {
		t.Fatal(err)
	}
	net := tsn.DefaultNetwork()
	mk := func(id, src, dst int) tsn.Flow {
		return tsn.Flow{ID: id, Src: src, Dsts: []int{dst}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}
	}
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{mk(0, 0, 1), mk(1, 2, 3), mk(2, 1, 2)},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	return prob
}

func TestExactFindsOptimum(t *testing.T) {
	prob := tinyProblem(t)
	sol, stats, err := (&Planner{}).Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil {
		t.Fatal("no solution found on a feasible problem")
	}
	if err := core.VerifySolution(prob, sol); err != nil {
		t.Fatalf("exact solution invalid: %v", err)
	}
	// The known optimum: dual-home all 4 ES on both switches at ASIL-A
	// (dual-A failures are safe at R=1e-6): 2 switches à 8 + 8 unit
	// ASIL-A links à 1 = 24.
	if sol.Cost != 24 {
		t.Fatalf("optimum = %v, want 24", sol.Cost)
	}
	if stats.AnalyzerCalls == 0 || stats.SwitchConfigs != 25 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.PrunedByBound == 0 {
		t.Fatal("bound pruning never fired")
	}
}

func TestExactInfeasibleProblem(t *testing.T) {
	// A single switch cannot provide redundancy against its own ASIL-A..C
	// failure, and ASIL-D makes its failure safe — but flows between ES
	// attached only via one switch ARE schedulable, so ASIL-D yields a
	// valid solution. To force infeasibility, forbid the needed ES degree.
	prob := tinyProblem(t)
	prob.MaxESDegree = 0
	if err := prob.Validate(); err == nil {
		// MaxESDegree 0 is invalid by construction; use an unreachable
		// demand instead: remove all links of ES 0.
		t.Fatal("expected validation error for MaxESDegree 0")
	}
	prob = tinyProblem(t)
	prob.Connections.IsolateVertex(0) // flow 0 demands 0->1: impossible
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	sol, _, err := (&Planner{}).Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if sol != nil {
		t.Fatalf("infeasible problem produced %+v", sol)
	}
}

func TestExactRefusesOversizedProblems(t *testing.T) {
	prob := tinyProblem(t)
	small := &Planner{MaxSwitches: 1}
	if _, _, err := small.Plan(prob); err == nil {
		t.Error("switch cap not enforced")
	}
	small = &Planner{MaxLinks: 3}
	if _, _, err := small.Plan(prob); err == nil {
		t.Error("link cap not enforced")
	}
	bad := tinyProblem(t)
	bad.Library = nil
	if _, _, err := (&Planner{}).Plan(bad); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestExactMatchesGreedyUpperBound(t *testing.T) {
	// The exact optimum must never exceed any valid solution; build a
	// hand-made ASIL-C dual-homed solution as the upper bound.
	prob := tinyProblem(t)
	state := core.NewTSSDN(prob)
	for sw := 4; sw < 6; sw++ {
		for i := 0; i < 3; i++ {
			if err := state.UpgradeSwitch(sw); err != nil {
				t.Fatal(err)
			}
		}
	}
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := state.AddPath(graph.Path{es, sw}); err != nil {
				t.Fatal(err)
			}
		}
	}
	handCost, err := state.Cost()
	if err != nil {
		t.Fatal(err)
	}
	handSol := &core.Solution{Topology: state.Topo, Assignment: state.Assign}
	if err := core.VerifySolution(prob, handSol); err != nil {
		t.Fatalf("hand solution invalid: %v", err)
	}
	sol, _, err := (&Planner{}).Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost > handCost {
		t.Fatalf("exact %v worse than a hand solution %v", sol.Cost, handCost)
	}
}

func TestExactTightReliabilityForcesHigherASIL(t *testing.T) {
	// At R = 9e-7, dual-A failures (≈1e-6 ≥ R... actually ≈9.99e-7 ≥ 9e-7)
	// are non-safe, so pure ASIL-A dual-homing no longer suffices; the
	// optimum must spend more than 24.
	prob := tinyProblem(t)
	prob.ReliabilityGoal = 9e-7
	sol, _, err := (&Planner{}).Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil {
		t.Fatal("no solution at R=9e-7")
	}
	if sol.Cost <= 24 {
		t.Fatalf("tighter goal must cost more than 24, got %v", sol.Cost)
	}
	if err := core.VerifySolution(prob, sol); err != nil {
		t.Fatal(err)
	}
}
