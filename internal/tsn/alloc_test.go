package tsn

import (
	"testing"
	"time"

	"repro/internal/raceflag"
)

// TestScheduleAllocBound guards the scheduler allocation hunt: a steady-
// state Schedule call may allocate only what escapes into the returned
// State (the state itself, its plan slice and one path + slot slice per
// pair) — the path search, slot tables, flow ordering and validation all
// run on pooled or borrowed memory. The bound is deliberately loose against
// runtime jitter; before the hunt this fixture cost hundreds of allocs.
func TestScheduleAllocBound(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("alloc counts are not meaningful under -race")
	}
	g := starTopo(t, 4)
	net := Network{BasePeriod: 500 * time.Microsecond, SlotsPerBase: 10}
	fs := FlowSet{
		{ID: 0, Src: 0, Dsts: []int{1, 2}, Period: 500 * time.Microsecond, Deadline: 250 * time.Microsecond, FrameSize: 100},
		{ID: 1, Src: 2, Dsts: []int{3}, Period: 1 * time.Millisecond, Deadline: 500 * time.Microsecond, FrameSize: 100},
	}
	sched := Scheduler{MaxAlternatives: 3}
	run := func() {
		st, failed, err := sched.Schedule(g, net, fs)
		if err != nil {
			t.Fatal(err)
		}
		if len(failed) != 0 {
			t.Fatalf("failed pairs: %v", failed)
		}
		if len(st.Plans) != 3 {
			t.Fatalf("got %d plans, want 3", len(st.Plans))
		}
	}
	run() // warm the scratch and slot-table pools
	const maxAllocs = 20
	if n := testing.AllocsPerRun(100, run); n > maxAllocs {
		t.Errorf("Schedule: %v allocs/op, want <= %d", n, maxAllocs)
	}
}
