package tsn

import (
	"testing"
	"time"

	"repro/internal/graph"
)

// frerTopo builds two end stations dual-connected via two switches:
// es0 - sw2 - es1 and es0 - sw3 - es1.
func frerTopo(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	g.AddVertex("", graph.KindEndStation) // 0
	g.AddVertex("", graph.KindEndStation) // 1
	g.AddVertex("", graph.KindSwitch)     // 2
	g.AddVertex("", graph.KindSwitch)     // 3
	for _, sw := range []int{2, 3} {
		mustEdge(t, g, 0, sw)
		mustEdge(t, g, 1, sw)
	}
	return g
}

func TestSchedulePinnedPathsFRERReplicas(t *testing.T) {
	g := frerTopo(t)
	f := unicast(0, 0, 1)
	pinned := []PinnedFlow{
		{Flow: f, Dst: 1, Path: graph.Path{0, 2, 1}, Tag: 0},
		{Flow: f, Dst: 1, Path: graph.Path{0, 3, 1}, Tag: 1},
	}
	st, failed, err := Scheduler{}.SchedulePinnedPaths(g, DefaultNetwork(), pinned)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed = %v", failed)
	}
	if len(st.Plans) != 2 {
		t.Fatalf("plans = %d, want 2 replicas", len(st.Plans))
	}
	// Replicas use disjoint paths, so both can start at slot 0.
	if st.Plans[0].Slots[0] != 0 || st.Plans[1].Slots[0] != 0 {
		t.Fatalf("slots = %v / %v", st.Plans[0].Slots, st.Plans[1].Slots)
	}
}

func TestSchedulePinnedPathsContention(t *testing.T) {
	// Two replicas forced onto the SAME path must serialize; with a 2-slot
	// base period the second cannot fit its increasing-slot chain.
	net := Network{BasePeriod: 2 * time.Microsecond, SlotsPerBase: 2}
	g := frerTopo(t)
	f := Flow{ID: 0, Src: 0, Dsts: []int{1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 1}
	pinned := []PinnedFlow{
		{Flow: f, Dst: 1, Path: graph.Path{0, 2, 1}, Tag: 0},
		{Flow: f, Dst: 1, Path: graph.Path{0, 2, 1}, Tag: 1},
	}
	_, failed, err := Scheduler{}.SchedulePinnedPaths(g, net, pinned)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 {
		t.Fatalf("failed = %v, want one replica rejected", failed)
	}
}

func TestSchedulePinnedPathsErrors(t *testing.T) {
	g := frerTopo(t)
	f := unicast(0, 0, 1)
	// Endpoint mismatch.
	if _, _, err := (Scheduler{}).SchedulePinnedPaths(g, DefaultNetwork(), []PinnedFlow{
		{Flow: f, Dst: 1, Path: graph.Path{1, 2, 0}},
	}); err == nil {
		t.Error("reversed path accepted")
	}
	// Missing edge.
	if _, _, err := (Scheduler{}).SchedulePinnedPaths(g, DefaultNetwork(), []PinnedFlow{
		{Flow: f, Dst: 1, Path: graph.Path{0, 1}},
	}); err == nil {
		t.Error("path over missing edge accepted")
	}
	// Invalid network.
	if _, _, err := (Scheduler{}).SchedulePinnedPaths(g, Network{}, nil); err == nil {
		t.Error("invalid network accepted")
	}
	// Invalid flow.
	bad := f
	bad.Period = 0
	if _, _, err := (Scheduler{}).SchedulePinnedPaths(g, DefaultNetwork(), []PinnedFlow{
		{Flow: bad, Dst: 1, Path: graph.Path{0, 2, 1}},
	}); err == nil {
		t.Error("invalid flow accepted")
	}
}

func TestScheduleAroundPinsAndExtends(t *testing.T) {
	g := frerTopo(t)
	net := DefaultNetwork()
	fs := FlowSet{unicast(0, 0, 1), unicast(1, 1, 0)}

	// Schedule flow 0 alone, then pin it and schedule flow 1 around it.
	first, er, err := Scheduler{}.Schedule(g, net, FlowSet{fs[0]})
	if err != nil || len(er) != 0 {
		t.Fatalf("first: er=%v err=%v", er, err)
	}
	combined, er, err := Scheduler{}.ScheduleAround(g, net, fs, first, FlowSet{fs[1]})
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("ER = %v", er)
	}
	if len(combined.Plans) != 2 {
		t.Fatalf("plans = %d", len(combined.Plans))
	}
	// The pinned plan must be unchanged.
	p0, ok := combined.PlanFor(0, 1)
	if !ok || !p0.Path.Equal(first.Plans[0].Path) {
		t.Fatal("pinned plan was altered")
	}
	if err := VerifyState(g, net, fs, combined); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleAroundRespectsPinnedSlots(t *testing.T) {
	// Pin a plan occupying slot 0 on 0->2; the pending flow sharing that
	// directed link must take a later slot.
	g := frerTopo(t)
	net := DefaultNetwork()
	fs := FlowSet{unicast(0, 0, 1), unicast(1, 0, 1)}
	pinned := &State{Net: net, Plans: []FlowPlan{
		{FlowID: 0, Dst: 1, Path: graph.Path{0, 2, 1}, Slots: []int{0, 1}},
	}}
	combined, er, err := Scheduler{}.ScheduleAround(g, net, fs, pinned, FlowSet{fs[1]})
	if err != nil || len(er) != 0 {
		t.Fatalf("er=%v err=%v", er, err)
	}
	p1, _ := combined.PlanFor(1, 1)
	if p1.Path.Equal(graph.Path{0, 2, 1}) && p1.Slots[0] == 0 {
		t.Fatal("pending flow reused a pinned slot")
	}
	if err := VerifyState(g, net, fs, combined); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleAroundInvalidNetwork(t *testing.T) {
	g := frerTopo(t)
	if _, _, err := (Scheduler{}).ScheduleAround(g, Network{}, nil, nil, nil); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestVerifyStateDetectsCorruption(t *testing.T) {
	g := frerTopo(t)
	net := DefaultNetwork()
	fs := FlowSet{unicast(0, 0, 1)}
	st, _, err := Scheduler{}.Schedule(g, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(*State)) error {
		c := &State{Net: st.Net, Plans: make([]FlowPlan, len(st.Plans))}
		for i, p := range st.Plans {
			c.Plans[i] = FlowPlan{FlowID: p.FlowID, Dst: p.Dst, Path: p.Path.Clone(), Slots: append([]int(nil), p.Slots...)}
		}
		mut(c)
		return VerifyState(g, net, fs, c)
	}
	if err := corrupt(func(s *State) { s.Plans[0].FlowID = 99 }); err == nil {
		t.Error("unknown flow not detected")
	}
	if err := corrupt(func(s *State) { s.Plans[0].Slots[1] = s.Plans[0].Slots[0] }); err == nil {
		t.Error("non-increasing slots not detected")
	}
	if err := corrupt(func(s *State) { s.Plans[0].Slots[1] = 100 }); err == nil {
		t.Error("deadline violation not detected")
	}
	if err := corrupt(func(s *State) { s.Plans[0].Slots = s.Plans[0].Slots[:1] }); err == nil {
		t.Error("slot/hop mismatch not detected")
	}
	if err := corrupt(func(s *State) { s.Plans[0].Path = graph.Path{0, 1} }); err == nil {
		t.Error("missing topology edge not detected")
	}
	if err := corrupt(func(s *State) { s.Plans[0].Path = graph.Path{0, 2, 0} }); err == nil {
		t.Error("looped path not detected")
	}
	if err := corrupt(func(s *State) { s.Plans[0].Dst = 0 }); err == nil {
		t.Error("endpoint mismatch not detected")
	}
	// Duplicate plan: same directed link + slot collides.
	c := &State{Net: st.Net, Plans: append(append([]FlowPlan(nil), st.Plans...), st.Plans...)}
	if err := VerifyState(g, net, fs, c); err == nil {
		t.Error("slot collision not detected")
	}
}

func TestLCMAndGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{4, 6, 12}, {1, 7, 7}, {20, 20, 20}, {0, 5, 0}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := lcm(c.a, c.b); got != c.want {
			t.Errorf("lcm(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if gcd(12, 18) != 6 {
		t.Error("gcd wrong")
	}
}
