package tsn

import (
	"fmt"
	"time"
)

// Network describes the global TAS timing configuration of a TSSDN: the
// base period B of the synchronized gate schedule and the number of time
// slots it is uniformly divided into (§VI-A uses B = 500 µs and 20 slots).
type Network struct {
	// BasePeriod is B, the period of the global TAS schedule.
	BasePeriod time.Duration
	// SlotsPerBase is the number of uniform time slots per base period.
	SlotsPerBase int
}

// DefaultNetwork returns the evaluation setup of the paper: a 500 µs base
// period divided into 20 slots.
func DefaultNetwork() Network {
	return Network{BasePeriod: 500 * time.Microsecond, SlotsPerBase: 20}
}

// Validate checks the network configuration.
func (n Network) Validate() error {
	if n.BasePeriod <= 0 {
		return fmt.Errorf("network: base period %v must be positive", n.BasePeriod)
	}
	if n.SlotsPerBase <= 0 {
		return fmt.Errorf("network: slots per base %d must be positive", n.SlotsPerBase)
	}
	if n.BasePeriod%time.Duration(n.SlotsPerBase) != 0 {
		return fmt.Errorf("network: base period %v not divisible into %d slots", n.BasePeriod, n.SlotsPerBase)
	}
	return nil
}

// SlotWidth returns the duration of one time slot.
func (n Network) SlotWidth() time.Duration {
	return n.BasePeriod / time.Duration(n.SlotsPerBase)
}

// PeriodSlots converts a flow period into a slot count. The period must be
// a multiple of the base period, so this is always exact.
func (n Network) PeriodSlots(period time.Duration) int {
	return int(period / n.SlotWidth())
}

// DeadlineSlots converts a deadline into the last admissible arrival slot
// (rounded down: arriving in slot s means arrival by the end of slot s, so
// a deadline of d admits slots 0..d/width-1).
func (n Network) DeadlineSlots(deadline time.Duration) int {
	return int(deadline / n.SlotWidth())
}

// Hyperperiod returns the hyperperiod of the flow set in slots: the least
// common multiple of all flow periods (in slots), the horizon over which
// slot reservations repeat.
func (n Network) Hyperperiod(fs FlowSet) int {
	h := 1
	for _, f := range fs {
		h = lcm(h, n.PeriodSlots(f.Period))
	}
	return h
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}
