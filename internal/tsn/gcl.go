package tsn

import (
	"fmt"
	"sort"
	"strings"
)

// GateEntry is one row of a gate control list: during slot Slot (within the
// hyperperiod) the TT gate of the link opens for flow FlowID.
type GateEntry struct {
	Slot   int
	FlowID int
}

// GateControlList is the per-directed-link TAS schedule derived from a flow
// state, as specified by IEEE 802.1Qbv: a cyclic list of gate operations
// executed against the globally synchronized clock.
type GateControlList map[DirLink][]GateEntry

// BuildGCL expands a flow state into gate control lists over the
// hyperperiod of the flow set.
func BuildGCL(net Network, fs FlowSet, st *State) (GateControlList, error) {
	flowsByID := make(map[int]Flow, len(fs))
	for _, f := range fs {
		flowsByID[f.ID] = f
	}
	hyper := net.Hyperperiod(fs)
	gcl := make(GateControlList)
	for _, p := range st.Plans {
		f, ok := flowsByID[p.FlowID]
		if !ok {
			return nil, fmt.Errorf("gcl: unknown flow %d", p.FlowID)
		}
		periodSlots := net.PeriodSlots(f.Period)
		for i, s := range p.Slots {
			link := DirLink{From: p.Path[i], To: p.Path[i+1]}
			for abs := s; abs < hyper; abs += periodSlots {
				gcl[link] = append(gcl[link], GateEntry{Slot: abs % hyper, FlowID: p.FlowID})
			}
		}
	}
	for link := range gcl {
		entries := gcl[link]
		sort.Slice(entries, func(i, j int) bool { return entries[i].Slot < entries[j].Slot })
		for i := 1; i < len(entries); i++ {
			if entries[i].Slot == entries[i-1].Slot {
				return nil, fmt.Errorf("gcl: slot %d on %d->%d double-booked by flows %d and %d",
					entries[i].Slot, link.From, link.To, entries[i-1].FlowID, entries[i].FlowID)
			}
		}
	}
	return gcl, nil
}

// String renders the GCL as a stable, human-readable table.
func (g GateControlList) String() string {
	links := make([]DirLink, 0, len(g))
	for l := range g {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	var b strings.Builder
	for _, l := range links {
		fmt.Fprintf(&b, "%d->%d:", l.From, l.To)
		for _, e := range g[l] {
			fmt.Fprintf(&b, " [slot %d: flow %d]", e.Slot, e.FlowID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Utilization returns the fraction of (link, slot) capacity reserved by the
// GCL, a rough load metric over the links it mentions.
func (g GateControlList) Utilization(net Network, fs FlowSet) float64 {
	if len(g) == 0 {
		return 0
	}
	hyper := net.Hyperperiod(fs)
	var used int
	for _, entries := range g {
		used += len(entries)
	}
	return float64(used) / float64(len(g)*hyper)
}
