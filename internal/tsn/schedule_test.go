package tsn

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/graph"
)

// starTopo builds nES end stations all attached to a single switch.
func starTopo(t testing.TB, nES int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < nES; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	sw := g.AddVertex("sw", graph.KindSwitch)
	for i := 0; i < nES; i++ {
		if err := g.AddEdge(i, sw, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestScheduleSimpleStar(t *testing.T) {
	g := starTopo(t, 4)
	fs := FlowSet{unicast(0, 0, 1), unicast(1, 2, 3)}
	st, er, err := Scheduler{}.Schedule(g, DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("ER = %v, want empty", er)
	}
	if len(st.Plans) != 2 {
		t.Fatalf("got %d plans, want 2", len(st.Plans))
	}
	if err := VerifyState(g, DefaultNetwork(), fs, st); err != nil {
		t.Fatalf("VerifyState: %v", err)
	}
	p, ok := st.PlanFor(0, 1)
	if !ok || !p.Path.Equal(graph.Path{0, 4, 1}) {
		t.Fatalf("plan for flow 0 = %+v", p)
	}
	// Slots must be strictly increasing starting from 0.
	if p.Slots[0] != 0 || p.Slots[1] != 1 {
		t.Fatalf("slots = %v, want [0 1]", p.Slots)
	}
}

func TestScheduleContendingFlowsSerialize(t *testing.T) {
	// Two flows share the directed link sw->dst.
	g := starTopo(t, 3)
	fs := FlowSet{unicast(0, 0, 2), unicast(1, 1, 2)}
	st, er, err := Scheduler{}.Schedule(g, DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("ER = %v, want empty", er)
	}
	p0, _ := st.PlanFor(0, 2)
	p1, _ := st.PlanFor(1, 2)
	if p0.Slots[1] == p1.Slots[1] {
		t.Fatalf("flows share slot %d on the same directed link", p0.Slots[1])
	}
	if err := VerifyState(g, DefaultNetwork(), fs, st); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleOppositeDirectionsShareSlot(t *testing.T) {
	// Full duplex: 0->1 and 1->0 may use the same slot.
	g := graph.New()
	g.AddVertex("", graph.KindEndStation)
	g.AddVertex("", graph.KindEndStation)
	sw := g.AddVertex("", graph.KindSwitch)
	mustEdge(t, g, 0, sw)
	mustEdge(t, g, 1, sw)
	fs := FlowSet{unicast(0, 0, 1), unicast(1, 1, 0)}
	st, er, err := Scheduler{}.Schedule(g, DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("ER = %v, want empty", er)
	}
	p0, _ := st.PlanFor(0, 1)
	p1, _ := st.PlanFor(1, 0)
	if p0.Slots[0] != 0 || p1.Slots[0] != 0 {
		t.Fatalf("full-duplex directions should both start at slot 0: %v %v", p0.Slots, p1.Slots)
	}
}

func mustEdge(t testing.TB, g *graph.Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v, 1); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleDisconnectedPairFails(t *testing.T) {
	g := graph.New()
	g.AddVertex("", graph.KindEndStation)
	g.AddVertex("", graph.KindEndStation)
	fs := FlowSet{unicast(0, 0, 1)}
	st, er, err := Scheduler{}.Schedule(g, DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 1 || er[0] != (Pair{Src: 0, Dst: 1}) {
		t.Fatalf("ER = %v, want [(0->1)]", er)
	}
	if len(st.Plans) != 0 {
		t.Fatalf("plans = %v, want none", st.Plans)
	}
}

func TestScheduleSlotExhaustion(t *testing.T) {
	// A 2-slot base period on a shared last hop can fit exactly 1 flow:
	// each flow needs hop1 then hop2 with strictly increasing slots, so the
	// second hop must use slot 1; two flows collide there.
	net := Network{BasePeriod: 2 * time.Microsecond, SlotsPerBase: 2}
	g := starTopo(t, 3)
	mk := func(id, src int) Flow {
		return Flow{ID: id, Src: src, Dsts: []int{2}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 1}
	}
	fs := FlowSet{mk(0, 0), mk(1, 1)}
	st, er, err := Scheduler{}.Schedule(g, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 1 {
		t.Fatalf("ER = %v, want exactly one unschedulable pair", er)
	}
	if len(st.Plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(st.Plans))
	}
	if err := VerifyState(g, net, fs, st); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleRollbackReleasesSlots(t *testing.T) {
	// Flow 0 takes a path, flow 1 cannot fit (deadline too tight through a
	// long detour), flow 2 must still be schedulable on the slots flow 1
	// would have partially reserved.
	net := Network{BasePeriod: 4 * time.Microsecond, SlotsPerBase: 4}
	// Path graph: es0 - sw1 - sw2 - sw3 - es4, plus es5 on sw1.
	g := graph.New()
	g.AddVertex("es0", graph.KindEndStation) // 0
	g.AddVertex("sw1", graph.KindSwitch)     // 1
	g.AddVertex("sw2", graph.KindSwitch)     // 2
	g.AddVertex("sw3", graph.KindSwitch)     // 3
	g.AddVertex("es4", graph.KindEndStation) // 4
	g.AddVertex("es5", graph.KindEndStation) // 5
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 1}} {
		mustEdge(t, g, e[0], e[1])
	}
	short := time.Microsecond // deadline of 1 slot: only 1-hop paths fit
	fs := FlowSet{
		{ID: 0, Src: 0, Dsts: []int{4}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 1},
		{ID: 1, Src: 5, Dsts: []int{4}, Period: net.BasePeriod, Deadline: short, FrameSize: 1},
		{ID: 2, Src: 5, Dsts: []int{0}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 1},
	}
	st, er, err := Scheduler{}.Schedule(g, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 1 || er[0] != (Pair{Src: 5, Dst: 4}) {
		t.Fatalf("ER = %v, want [(5->4)]", er)
	}
	if _, ok := st.PlanFor(2, 0); !ok {
		t.Fatal("flow 2 should be schedulable after flow 1's rollback")
	}
	if err := VerifyState(g, net, fs, st); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleAlternativePathAvoidsCongestion(t *testing.T) {
	// Two disjoint 2-hop routes between 0 and 3; with a 1-slot-per-hop
	// squeeze on the primary, MaxAlternatives=2 finds the secondary.
	net := Network{BasePeriod: 3 * time.Microsecond, SlotsPerBase: 3}
	g := graph.New()
	g.AddVertex("", graph.KindEndStation) // 0
	g.AddVertex("", graph.KindSwitch)     // 1 (primary)
	g.AddVertex("", graph.KindSwitch)     // 2 (secondary)
	g.AddVertex("", graph.KindEndStation) // 3
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 3)
	if err := g.AddEdge(0, 2, 1.5); err != nil { // slightly longer
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3, 1.5); err != nil {
		t.Fatal(err)
	}
	mk := func(id int) Flow {
		return Flow{ID: id, Src: 0, Dsts: []int{3}, Period: net.BasePeriod, Deadline: 2 * time.Microsecond, FrameSize: 1}
	}
	fs := FlowSet{mk(0), mk(1)}

	_, er, err := Scheduler{}.Schedule(g, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 1 {
		t.Fatalf("shortest-path-only: ER = %v, want 1 failure", er)
	}

	st, er, err := Scheduler{MaxAlternatives: 2}.Schedule(g, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 {
		t.Fatalf("with alternatives: ER = %v, want empty", er)
	}
	if err := VerifyState(g, net, fs, st); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleMulticast(t *testing.T) {
	g := starTopo(t, 4)
	fs := FlowSet{{ID: 0, Src: 0, Dsts: []int{1, 2, 3}, Period: base, Deadline: base, FrameSize: 1}}
	st, er, err := Scheduler{}.Schedule(g, DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er) != 0 || len(st.Plans) != 3 {
		t.Fatalf("multicast: ER=%v plans=%d", er, len(st.Plans))
	}
	if err := VerifyState(g, DefaultNetwork(), fs, st); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleHarmonicPeriods(t *testing.T) {
	// A slow flow (period 2B) and fast flows (period B) share links; the
	// fast flows must avoid the slow flow's repetitions.
	net := Network{BasePeriod: 2 * time.Microsecond, SlotsPerBase: 2}
	g := starTopo(t, 3)
	fs := FlowSet{
		{ID: 0, Src: 0, Dsts: []int{2}, Period: 2 * net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 1},
		{ID: 1, Src: 1, Dsts: []int{2}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 1},
	}
	st, er, err := Scheduler{}.Schedule(g, net, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Flow 0 takes sw->es2 slot 1 in even base periods. Flow 1 needs
	// sw->es2 slot 1 in every base period, so it must fail.
	if len(er) != 1 || er[0] != (Pair{Src: 1, Dst: 2}) {
		t.Fatalf("ER = %v, want [(1->2)]", er)
	}
	if err := VerifyState(g, net, fs, st); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	g := starTopo(t, 6)
	var fs FlowSet
	for i := 0; i < 8; i++ {
		fs = append(fs, unicast(i, i%6, (i+1)%6))
	}
	st1, er1, err := Scheduler{}.Schedule(g, DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	st2, er2, err := Scheduler{}.Schedule(g, DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(er1) != len(er2) || len(st1.Plans) != len(st2.Plans) {
		t.Fatal("scheduler is not deterministic")
	}
	for i := range st1.Plans {
		if !st1.Plans[i].Path.Equal(st2.Plans[i].Path) {
			t.Fatal("paths differ across runs")
		}
		for j := range st1.Plans[i].Slots {
			if st1.Plans[i].Slots[j] != st2.Plans[i].Slots[j] {
				t.Fatal("slots differ across runs")
			}
		}
	}
}

func TestScheduleInvalidInputs(t *testing.T) {
	g := starTopo(t, 2)
	if _, _, err := (Scheduler{}).Schedule(g, Network{}, FlowSet{unicast(0, 0, 1)}); err == nil {
		t.Error("invalid network accepted")
	}
	badFlow := unicast(0, 0, 1)
	badFlow.Period = 0
	if _, _, err := (Scheduler{}).Schedule(g, DefaultNetwork(), FlowSet{badFlow}); err == nil {
		t.Error("invalid flow accepted")
	}
}

func TestScheduleProperty(t *testing.T) {
	// On random connected topologies, every scheduled state verifies, and
	// plans exist exactly for pairs not in ER.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nES := 3 + rng.Intn(4)
		nSW := 1 + rng.Intn(3)
		g := graph.New()
		for i := 0; i < nES; i++ {
			g.AddVertex("", graph.KindEndStation)
		}
		for i := 0; i < nSW; i++ {
			g.AddVertex("", graph.KindSwitch)
		}
		// Each ES attaches to a random switch; switches form a line.
		for i := 0; i < nES; i++ {
			_ = g.AddEdge(i, nES+rng.Intn(nSW), 1)
		}
		for i := 0; i+1 < nSW; i++ {
			_ = g.AddEdge(nES+i, nES+i+1, 1)
		}
		var fs FlowSet
		for i := 0; i < 2+rng.Intn(6); i++ {
			s := rng.Intn(nES)
			d := rng.Intn(nES)
			if s == d {
				d = (d + 1) % nES
			}
			fs = append(fs, unicast(i, s, d))
		}
		st, er, err := Scheduler{}.Schedule(g, DefaultNetwork(), fs)
		if err != nil {
			return false
		}
		if err := VerifyState(g, DefaultNetwork(), fs, st); err != nil {
			return false
		}
		return len(st.Plans)+len(er) == len(fs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStateHelpers(t *testing.T) {
	g := starTopo(t, 3)
	fs := FlowSet{unicast(0, 0, 1)}
	st, _, err := Scheduler{}.Schedule(g, DefaultNetwork(), fs)
	if err != nil {
		t.Fatal(err)
	}
	if !st.UsesEdge(0, 3) || !st.UsesEdge(3, 0) {
		t.Error("UsesEdge should be direction independent")
	}
	if st.UsesEdge(2, 3) {
		t.Error("unused edge reported as used")
	}
	if _, ok := st.PlanFor(9, 9); ok {
		t.Error("missing plan reported present")
	}
	p, _ := st.PlanFor(0, 1)
	if p.ArrivalSlot() != p.Slots[len(p.Slots)-1] {
		t.Error("ArrivalSlot wrong")
	}
	if (FlowPlan{}).ArrivalSlot() != -1 {
		t.Error("empty plan ArrivalSlot should be -1")
	}
}
