package tsn

import (
	"fmt"
	"time"
)

// Latency describes the end-to-end timing of one scheduled (flow,
// destination) pair under the slotted TAS model: a frame released at its
// period boundary is transmitted on its first hop in slot FirstSlot and
// arrives at the destination by the end of slot ArrivalSlot.
type Latency struct {
	FlowID int
	Dst    int
	// FirstSlot and ArrivalSlot are relative to the release instant.
	FirstSlot   int
	ArrivalSlot int
	// Delay is the worst-case source-to-destination latency: the end of
	// the arrival slot.
	Delay time.Duration
	// Slack is Deadline − Delay (never negative for a valid schedule).
	Slack time.Duration
}

// Latencies computes the per-pair worst-case delays of a flow state. It
// errors on plans referencing unknown flows; an empty state yields an
// empty slice.
func Latencies(net Network, fs FlowSet, st *State) ([]Latency, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	flowsByID := make(map[int]Flow, len(fs))
	for _, f := range fs {
		flowsByID[f.ID] = f
	}
	width := net.SlotWidth()
	out := make([]Latency, 0, len(st.Plans))
	for _, p := range st.Plans {
		f, ok := flowsByID[p.FlowID]
		if !ok {
			return nil, fmt.Errorf("latency: plan references unknown flow %d", p.FlowID)
		}
		if len(p.Slots) == 0 {
			return nil, fmt.Errorf("latency: flow %d has an empty plan", p.FlowID)
		}
		arrival := p.ArrivalSlot()
		delay := time.Duration(arrival+1) * width
		out = append(out, Latency{
			FlowID:      p.FlowID,
			Dst:         p.Dst,
			FirstSlot:   p.Slots[0],
			ArrivalSlot: arrival,
			Delay:       delay,
			Slack:       f.Deadline - delay,
		})
	}
	return out, nil
}

// MaxDelay returns the largest worst-case delay across all pairs (0 for an
// empty state).
func MaxDelay(lats []Latency) time.Duration {
	var maxDelay time.Duration
	for _, l := range lats {
		if l.Delay > maxDelay {
			maxDelay = l.Delay
		}
	}
	return maxDelay
}

// MinSlack returns the tightest deadline slack across all pairs, and
// whether any pair exists.
func MinSlack(lats []Latency) (time.Duration, bool) {
	if len(lats) == 0 {
		return 0, false
	}
	minSlack := lats[0].Slack
	for _, l := range lats[1:] {
		if l.Slack < minSlack {
			minSlack = l.Slack
		}
	}
	return minSlack, true
}
