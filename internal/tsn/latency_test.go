package tsn

import (
	"testing"
	"time"
)

func TestLatencies(t *testing.T) {
	g := starTopo(t, 3)
	net := DefaultNetwork() // 25 µs slots
	fs := FlowSet{unicast(0, 0, 1), unicast(1, 2, 1)}
	st, er, err := Scheduler{}.Schedule(g, net, fs)
	if err != nil || len(er) != 0 {
		t.Fatalf("schedule: er=%v err=%v", er, err)
	}
	lats, err := Latencies(net, fs, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(lats) != 2 {
		t.Fatalf("latencies = %d", len(lats))
	}
	// Flow 0 (scheduled first): slots [0,1] -> arrival slot 1 -> 50 µs.
	for _, l := range lats {
		if l.FlowID == 0 {
			if l.ArrivalSlot != 1 || l.Delay != 50*time.Microsecond {
				t.Fatalf("flow 0 latency = %+v", l)
			}
			if l.Slack != 450*time.Microsecond {
				t.Fatalf("flow 0 slack = %v", l.Slack)
			}
		}
		if l.Slack < 0 {
			t.Fatalf("negative slack in a valid schedule: %+v", l)
		}
		if l.FirstSlot > l.ArrivalSlot {
			t.Fatalf("slot ordering wrong: %+v", l)
		}
	}
	if MaxDelay(lats) < 50*time.Microsecond {
		t.Fatalf("MaxDelay = %v", MaxDelay(lats))
	}
	if s, ok := MinSlack(lats); !ok || s <= 0 {
		t.Fatalf("MinSlack = %v,%v", s, ok)
	}
}

func TestLatenciesErrors(t *testing.T) {
	net := DefaultNetwork()
	if _, err := Latencies(Network{}, nil, &State{}); err == nil {
		t.Error("invalid network accepted")
	}
	st := &State{Plans: []FlowPlan{{FlowID: 7, Slots: []int{0}}}}
	if _, err := Latencies(net, nil, st); err == nil {
		t.Error("unknown flow accepted")
	}
	fs := FlowSet{unicast(7, 0, 1)}
	st = &State{Plans: []FlowPlan{{FlowID: 7}}}
	if _, err := Latencies(net, fs, st); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestLatenciesEmptyState(t *testing.T) {
	lats, err := Latencies(DefaultNetwork(), nil, &State{})
	if err != nil || len(lats) != 0 {
		t.Fatalf("empty state: %v %v", lats, err)
	}
	if MaxDelay(nil) != 0 {
		t.Error("MaxDelay(nil) should be 0")
	}
	if _, ok := MinSlack(nil); ok {
		t.Error("MinSlack(nil) should report absence")
	}
}
