// Package tsn models the Time-Sensitive Networking substrate of the paper:
// time-triggered (TT) flows, the slotted Time-Aware-Shaper (TAS) timeline
// derived from the base period B, and a deterministic TT scheduler that
// routes and reserves time slots for all flows on a given topology. The
// scheduler is the schedulability oracle behind every Network Behaviour
// Function (NBF).
package tsn

import (
	"fmt"
	"time"
)

// Flow is the specification of one TT flow (an element of FS in §II-A):
// periodic safety-critical traffic from one source end station to one or
// more destination end stations.
type Flow struct {
	// ID is a unique flow identifier, dense within a FlowSet.
	ID int
	// Name is an optional human-readable label.
	Name string
	// Src is the source end-station vertex ID.
	Src int
	// Dsts are the destination end-station vertex IDs (unicast flows have
	// exactly one).
	Dsts []int
	// Period is the flow period; it must be a positive multiple of the base
	// period.
	Period time.Duration
	// Deadline is the maximum source-to-destination latency; it must be
	// positive and no larger than Period.
	Deadline time.Duration
	// FrameSize is the frame payload size in bytes (one frame per period
	// fits one time slot, the standard TT setup with uniform bandwidth).
	FrameSize int
}

// Validate checks the flow's internal consistency against a base period.
func (f Flow) Validate(base time.Duration) error {
	if f.Src < 0 {
		return fmt.Errorf("flow %d: negative source", f.ID)
	}
	if len(f.Dsts) == 0 {
		return fmt.Errorf("flow %d: no destinations", f.ID)
	}
	for _, d := range f.Dsts {
		if d < 0 {
			return fmt.Errorf("flow %d: negative destination", f.ID)
		}
		if d == f.Src {
			return fmt.Errorf("flow %d: destination equals source %d", f.ID, f.Src)
		}
	}
	if f.Period <= 0 || base <= 0 || f.Period%base != 0 {
		return fmt.Errorf("flow %d: period %v must be a positive multiple of base %v", f.ID, f.Period, base)
	}
	if f.Deadline <= 0 || f.Deadline > f.Period {
		return fmt.Errorf("flow %d: deadline %v must be in (0, period %v]", f.ID, f.Deadline, f.Period)
	}
	if f.FrameSize <= 0 {
		return fmt.Errorf("flow %d: frame size must be positive", f.ID)
	}
	return nil
}

// Pair identifies a source and destination end-station pair. The error
// message ER of an NBF is a set of Pairs (§II-B).
type Pair struct {
	Src int
	Dst int
}

// String formats the pair for logs and error messages.
func (p Pair) String() string { return fmt.Sprintf("(%d->%d)", p.Src, p.Dst) }

// FlowSet is the complete TT flow specification FS.
type FlowSet []Flow

// Validate checks all flows and the uniqueness of IDs. The duplicate scan
// is quadratic but allocation-free: flow sets are small and Validate runs
// on every Schedule call, i.e. once per NBF recovery simulation.
func (fs FlowSet) Validate(base time.Duration) error {
	for i, f := range fs {
		if err := f.Validate(base); err != nil {
			return err
		}
		for j := 0; j < i; j++ {
			if fs[j].ID == f.ID {
				return fmt.Errorf("duplicate flow ID %d", f.ID)
			}
		}
	}
	return nil
}

// Pairs returns every (source, destination) pair demanded by the flow set,
// with duplicates preserved in flow order (multiple flows may share a
// pair).
func (fs FlowSet) Pairs() []Pair {
	var ps []Pair
	for _, f := range fs {
		for _, d := range f.Dsts {
			ps = append(ps, Pair{Src: f.Src, Dst: d})
		}
	}
	return ps
}

// UniquePairs returns the deduplicated set of demanded pairs in first-seen
// order.
func (fs FlowSet) UniquePairs() []Pair {
	seen := make(map[Pair]struct{})
	var ps []Pair
	for _, p := range fs.Pairs() {
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		ps = append(ps, p)
	}
	return ps
}

// Clone deep-copies the flow set.
func (fs FlowSet) Clone() FlowSet {
	c := make(FlowSet, len(fs))
	for i, f := range fs {
		c[i] = f
		c[i].Dsts = append([]int(nil), f.Dsts...)
	}
	return c
}
