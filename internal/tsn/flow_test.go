package tsn

import (
	"testing"
	"time"
)

const base = 500 * time.Microsecond

func unicast(id, src, dst int) Flow {
	return Flow{
		ID: id, Src: src, Dsts: []int{dst},
		Period: base, Deadline: base, FrameSize: 100,
	}
}

func TestFlowValidate(t *testing.T) {
	good := unicast(0, 1, 2)
	if err := good.Validate(base); err != nil {
		t.Fatalf("valid flow rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Flow)
	}{
		{"negative src", func(f *Flow) { f.Src = -1 }},
		{"no dests", func(f *Flow) { f.Dsts = nil }},
		{"negative dest", func(f *Flow) { f.Dsts = []int{-2} }},
		{"dest equals src", func(f *Flow) { f.Dsts = []int{f.Src} }},
		{"zero period", func(f *Flow) { f.Period = 0 }},
		{"period not multiple", func(f *Flow) { f.Period = base + time.Microsecond }},
		{"zero deadline", func(f *Flow) { f.Deadline = 0 }},
		{"deadline beyond period", func(f *Flow) { f.Deadline = 2 * base }},
		{"zero frame", func(f *Flow) { f.FrameSize = 0 }},
	}
	for _, c := range cases {
		f := unicast(0, 1, 2)
		c.mut(&f)
		if err := f.Validate(base); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestFlowSetValidateDuplicateIDs(t *testing.T) {
	fs := FlowSet{unicast(1, 0, 2), unicast(1, 2, 3)}
	if err := fs.Validate(base); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	fs = FlowSet{unicast(1, 0, 2), unicast(2, 2, 3)}
	if err := fs.Validate(base); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
}

func TestFlowSetPairs(t *testing.T) {
	multi := Flow{ID: 3, Src: 0, Dsts: []int{1, 2}, Period: base, Deadline: base, FrameSize: 64}
	fs := FlowSet{unicast(1, 0, 1), unicast(2, 1, 2), multi}
	pairs := fs.Pairs()
	if len(pairs) != 4 {
		t.Fatalf("Pairs = %v, want 4 entries", pairs)
	}
	// (0->1) repeats via the multicast flow; unique pairs keep first-seen order.
	uniq := fs.UniquePairs()
	if len(uniq) != 3 {
		t.Fatalf("UniquePairs = %v, want 3 entries", uniq)
	}
	if uniq[0] != (Pair{Src: 0, Dst: 1}) || uniq[1] != (Pair{Src: 1, Dst: 2}) || uniq[2] != (Pair{Src: 0, Dst: 2}) {
		t.Fatalf("UniquePairs order wrong: %v", uniq)
	}
}

func TestFlowSetClone(t *testing.T) {
	fs := FlowSet{unicast(1, 0, 2)}
	c := fs.Clone()
	c[0].Dsts[0] = 9
	if fs[0].Dsts[0] == 9 {
		t.Fatal("Clone shares destination storage")
	}
}

func TestPairString(t *testing.T) {
	if s := (Pair{Src: 1, Dst: 2}).String(); s != "(1->2)" {
		t.Fatalf("Pair.String = %q", s)
	}
}

func TestNetworkValidateAndSlots(t *testing.T) {
	n := DefaultNetwork()
	if err := n.Validate(); err != nil {
		t.Fatalf("default network invalid: %v", err)
	}
	if n.SlotWidth() != 25*time.Microsecond {
		t.Errorf("SlotWidth = %v, want 25µs", n.SlotWidth())
	}
	if n.PeriodSlots(base) != 20 {
		t.Errorf("PeriodSlots(B) = %d, want 20", n.PeriodSlots(base))
	}
	if n.PeriodSlots(2*base) != 40 {
		t.Errorf("PeriodSlots(2B) = %d, want 40", n.PeriodSlots(2*base))
	}
	if n.DeadlineSlots(base) != 20 {
		t.Errorf("DeadlineSlots(B) = %d, want 20", n.DeadlineSlots(base))
	}

	bad := Network{BasePeriod: 0, SlotsPerBase: 20}
	if err := bad.Validate(); err == nil {
		t.Error("zero base period accepted")
	}
	bad = Network{BasePeriod: base, SlotsPerBase: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero slots accepted")
	}
	bad = Network{BasePeriod: 7, SlotsPerBase: 2}
	if err := bad.Validate(); err == nil {
		t.Error("indivisible base period accepted")
	}
}

func TestHyperperiod(t *testing.T) {
	n := DefaultNetwork()
	fs := FlowSet{
		unicast(1, 0, 1),
		{ID: 2, Src: 0, Dsts: []int{1}, Period: 2 * base, Deadline: base, FrameSize: 1},
		{ID: 3, Src: 0, Dsts: []int{1}, Period: 3 * base, Deadline: base, FrameSize: 1},
	}
	if h := n.Hyperperiod(fs); h != 120 {
		t.Fatalf("Hyperperiod = %d slots, want 120 (lcm of 20,40,60)", h)
	}
	if h := n.Hyperperiod(nil); h != 1 {
		t.Fatalf("empty Hyperperiod = %d, want 1", h)
	}
}
