package tsn

import (
	"strings"
	"testing"
	"time"
)

func TestBuildGCL(t *testing.T) {
	g := starTopo(t, 3)
	fs := FlowSet{unicast(0, 0, 1), unicast(1, 2, 1)}
	st, er, err := Scheduler{}.Schedule(g, DefaultNetwork(), fs)
	if err != nil || len(er) != 0 {
		t.Fatalf("schedule: er=%v err=%v", er, err)
	}
	gcl, err := BuildGCL(DefaultNetwork(), fs, st)
	if err != nil {
		t.Fatal(err)
	}
	// Shared last hop sw(3)->es1 must carry both flows at distinct slots.
	entries := gcl[DirLink{From: 3, To: 1}]
	if len(entries) != 2 {
		t.Fatalf("entries on 3->1 = %v, want 2", entries)
	}
	if entries[0].Slot == entries[1].Slot {
		t.Fatal("GCL slots collide")
	}
	out := gcl.String()
	if !strings.Contains(out, "3->1:") {
		t.Fatalf("GCL render missing link: %q", out)
	}
	if u := gcl.Utilization(DefaultNetwork(), fs); u <= 0 || u > 1 {
		t.Fatalf("Utilization = %v, want in (0,1]", u)
	}
}

func TestBuildGCLHarmonicRepetitions(t *testing.T) {
	net := Network{BasePeriod: 2 * time.Microsecond, SlotsPerBase: 2}
	g := starTopo(t, 2)
	fs := FlowSet{
		{ID: 0, Src: 0, Dsts: []int{1}, Period: 2 * net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 1},
	}
	st, er, err := Scheduler{}.Schedule(g, net, fs)
	if err != nil || len(er) != 0 {
		t.Fatalf("schedule: er=%v err=%v", er, err)
	}
	gcl, err := BuildGCL(net, fs, st)
	if err != nil {
		t.Fatal(err)
	}
	// Period 2B = 4 slots, hyperperiod 4 slots: exactly one repetition per
	// hop within the hyperperiod.
	for link, entries := range gcl {
		if len(entries) != 1 {
			t.Fatalf("link %v entries = %v, want 1", link, entries)
		}
	}
}

func TestBuildGCLUnknownFlow(t *testing.T) {
	st := &State{Plans: []FlowPlan{{FlowID: 99}}}
	if _, err := BuildGCL(DefaultNetwork(), nil, st); err == nil {
		t.Fatal("unknown flow accepted")
	}
}

func TestGCLUtilizationEmpty(t *testing.T) {
	if u := (GateControlList{}).Utilization(DefaultNetwork(), nil); u != 0 {
		t.Fatalf("empty utilization = %v, want 0", u)
	}
}
