package tsn

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// DirLink is one direction of a full-duplex link. TT slot reservations are
// per direction: both directions of a physical link can carry one frame per
// slot.
type DirLink struct {
	From, To int
}

// FlowPlan is the scheduled state of one (flow, destination) pair: the path
// and the transmission slot, relative to the flow's release instant, on
// each hop.
type FlowPlan struct {
	FlowID int
	Dst    int
	Path   graph.Path
	// Slots[i] is the transmission slot of hop Path[i] -> Path[i+1].
	Slots []int
}

// ArrivalSlot returns the slot in which the frame arrives at the
// destination, or -1 for an empty plan.
func (p FlowPlan) ArrivalSlot() int {
	if len(p.Slots) == 0 {
		return -1
	}
	return p.Slots[len(p.Slots)-1]
}

// State is the flow state FI of a TSSDN: a plan per (flow, destination)
// pair, together with the timing configuration it was computed for.
type State struct {
	Net   Network
	Plans []FlowPlan
}

// PlanFor returns the plan of (flowID, dst) and whether it exists.
func (s *State) PlanFor(flowID, dst int) (FlowPlan, bool) {
	for _, p := range s.Plans {
		if p.FlowID == flowID && p.Dst == dst {
			return p, true
		}
	}
	return FlowPlan{}, false
}

// UsesEdge reports whether any plan traverses the undirected edge (u, v).
func (s *State) UsesEdge(u, v int) bool {
	for _, p := range s.Plans {
		for i := 0; i+1 < len(p.Path); i++ {
			if (p.Path[i] == u && p.Path[i+1] == v) || (p.Path[i] == v && p.Path[i+1] == u) {
				return true
			}
		}
	}
	return false
}

// slotTable tracks per-directed-link slot occupancy over the hyperperiod.
type slotTable struct {
	hyper int
	occ   map[DirLink][]bool
}

func newSlotTable(hyper int) *slotTable {
	return &slotTable{hyper: hyper, occ: make(map[DirLink][]bool)}
}

// slotTablePool recycles slot tables across Schedule calls: every NBF
// recovery simulation builds a schedule, so without the pool each
// simulation allocates a fresh map plus one row per touched link.
var slotTablePool = sync.Pool{New: func() any { return newSlotTable(0) }}

// acquireSlotTable returns a cleared slot table for the given hyperperiod.
// Rows of a matching length are zeroed in place and reused; rows sized for
// a different hyperperiod are dropped.
func acquireSlotTable(hyper int) *slotTable {
	st := slotTablePool.Get().(*slotTable)
	st.hyper = hyper
	for l, row := range st.occ {
		if len(row) != hyper {
			delete(st.occ, l)
			continue
		}
		for i := range row {
			row[i] = false
		}
	}
	return st
}

// releaseSlotTable returns a table to the pool. The caller must not touch
// it afterwards.
func releaseSlotTable(st *slotTable) { slotTablePool.Put(st) }

// conflictFree reports whether transmitting at relative slot `slot` with
// the given period (in slots) is free on link l for every repetition within
// the hyperperiod.
func (st *slotTable) conflictFree(l DirLink, slot, periodSlots int) bool {
	row, ok := st.occ[l]
	if !ok {
		return true
	}
	for abs := slot; abs < st.hyper; abs += periodSlots {
		if row[abs%st.hyper] {
			return false
		}
	}
	return true
}

func (st *slotTable) reserve(l DirLink, slot, periodSlots int) {
	row, ok := st.occ[l]
	if !ok {
		row = make([]bool, st.hyper)
		st.occ[l] = row
	}
	for abs := slot; abs < st.hyper; abs += periodSlots {
		row[abs%st.hyper] = true
	}
}

func (st *slotTable) release(l DirLink, slot, periodSlots int) {
	row, ok := st.occ[l]
	if !ok {
		return
	}
	for abs := slot; abs < st.hyper; abs += periodSlots {
		row[abs%st.hyper] = false
	}
}

// Scheduler computes TT schedules: it routes every (flow, destination) pair
// over the topology and reserves strictly increasing time slots hop by hop
// (store-and-forward, one slot of forwarding delay per hop), subject to the
// per-directed-link exclusivity of TAS gating and each flow's deadline.
//
// The zero value is ready to use. Routing is shortest-path by cable length
// with deterministic tie-breaking, so the scheduler is a deterministic
// function of (topology, network, flows) — the property §II-B requires from
// a stateless NBF.
type Scheduler struct {
	// MaxAlternatives bounds how many alternative paths (Yen) are tried per
	// pair when the shortest path cannot be slot-scheduled. Zero means 1
	// (shortest path only).
	MaxAlternatives int
}

// byFlowID sorts flows ascending by ID. Flow IDs are unique within a
// validated FlowSet, so the order is total and any sort algorithm yields
// the same result. Sorted through a pointer receiver so the interface
// conversion does not allocate.
type byFlowID FlowSet

func (s *byFlowID) Len() int           { return len(*s) }
func (s *byFlowID) Swap(i, j int)      { (*s)[i], (*s)[j] = (*s)[j], (*s)[i] }
func (s *byFlowID) Less(i, j int) bool { return (*s)[i].ID < (*s)[j].ID }

// schedScratch bundles the reusable working state of one Schedule (or
// ScheduleAround) call: the path-finder with its search buffers, the sorted
// flow order and the per-attempt slot buffer. Pooled across calls because
// every NBF recovery simulation builds a schedule from scratch.
type schedScratch struct {
	finder  *graph.PathFinder
	ordered byFlowID
	slots   []int
}

var schedScratchPool = sync.Pool{
	New: func() any { return &schedScratch{finder: graph.NewPathFinder()} },
}

// Schedule computes a full flow state for fs on topo. It returns the state
// and the error set ER: the (source, destination) pairs whose bandwidth and
// timing guarantees could not be established. ER is empty when scheduling
// fully succeeds. An invalid input yields a non-nil error instead.
func (sc Scheduler) Schedule(topo *graph.Graph, net Network, fs FlowSet) (*State, []Pair, error) {
	if err := net.Validate(); err != nil {
		return nil, nil, err
	}
	if err := fs.Validate(net.BasePeriod); err != nil {
		return nil, nil, err
	}
	alts := sc.MaxAlternatives
	if alts <= 0 {
		alts = 1
	}
	hyper := net.Hyperperiod(fs)
	table := acquireSlotTable(hyper)
	defer releaseSlotTable(table)
	scratch := schedScratchPool.Get().(*schedScratch)
	defer schedScratchPool.Put(scratch)
	scratch.finder.Reset(topo)
	state := &State{Net: net}
	var failed []Pair

	// Deterministic order: flows sorted by ID, destinations in spec order.
	scratch.ordered = append(scratch.ordered[:0], fs...)
	sort.Sort(&scratch.ordered)

	for _, f := range scratch.ordered {
		periodSlots := net.PeriodSlots(f.Period)
		deadlineSlots := net.DeadlineSlots(f.Deadline)
		for _, dst := range f.Dsts {
			plan, ok := sc.schedulePair(scratch, table, f, dst, periodSlots, deadlineSlots, alts)
			if !ok {
				failed = append(failed, Pair{Src: f.Src, Dst: dst})
				continue
			}
			state.Plans = append(state.Plans, plan)
		}
	}
	return state, failed, nil
}

// schedulePair tries up to `alts` loopless paths for one (flow, dst) pair
// and greedily assigns slots on the first path that fits. Reservations of
// failed attempts are rolled back. Candidate paths and trial slots live in
// the scratch; only the successful plan's path and slots are copied out
// (they escape into the returned State).
func (sc Scheduler) schedulePair(scratch *schedScratch, table *slotTable, f Flow, dst, periodSlots, deadlineSlots, alts int) (FlowPlan, bool) {
	paths, err := scratch.finder.KShortestPaths(f.Src, dst, alts)
	if err != nil {
		return FlowPlan{}, false
	}
	for _, path := range paths {
		var ok bool
		scratch.slots, ok = assignSlotsInto(table, path, periodSlots, deadlineSlots, scratch.slots[:0])
		if ok {
			return FlowPlan{
				FlowID: f.ID, Dst: dst, Path: path.Clone(),
				Slots: append([]int(nil), scratch.slots...),
			}, true
		}
	}
	return FlowPlan{}, false
}

// assignSlots reserves one strictly increasing slot per hop of path,
// rolling back on failure.
func assignSlots(table *slotTable, path graph.Path, periodSlots, deadlineSlots int) ([]int, bool) {
	if len(path) < 2 {
		return nil, false
	}
	slots, ok := assignSlotsInto(table, path, periodSlots, deadlineSlots, make([]int, 0, len(path)-1))
	if !ok {
		return nil, false
	}
	return slots, true
}

// assignSlotsInto is assignSlots appending into buf (returned re-sliced);
// the result aliases buf, so callers that retain slots must copy them.
func assignSlotsInto(table *slotTable, path graph.Path, periodSlots, deadlineSlots int, buf []int) ([]int, bool) {
	if len(path) < 2 {
		return buf, false
	}
	slots := buf
	prev := -1
	for i := 0; i+1 < len(path); i++ {
		link := DirLink{From: path[i], To: path[i+1]}
		assigned := -1
		for s := prev + 1; s < deadlineSlots && s < periodSlots; s++ {
			if table.conflictFree(link, s, periodSlots) {
				assigned = s
				break
			}
		}
		if assigned == -1 {
			// Roll back reservations made for earlier hops.
			for j := range slots {
				table.release(DirLink{From: path[j], To: path[j+1]}, slots[j], periodSlots)
			}
			return slots, false
		}
		table.reserve(link, assigned, periodSlots)
		slots = append(slots, assigned)
		prev = assigned
	}
	return slots, true
}

// PinnedFlow fixes the routing of one (flow, destination) pair to a given
// path; only the time slots remain to be assigned. FRER-style baselines use
// pinned flows to schedule a frame replica on each redundant path.
type PinnedFlow struct {
	Flow Flow
	// Dst selects the destination (must appear in Flow.Dsts).
	Dst int
	// Path is the fixed route from Flow.Src to Dst.
	Path graph.Path
	// Tag distinguishes replicas of the same flow in the resulting plans
	// (e.g. 0 for the primary FRER path, 1 for the secondary).
	Tag int
}

// SchedulePinnedPaths assigns time slots to flows whose paths are fixed, in
// input order, honoring per-directed-link slot exclusivity. It returns the
// state and the pairs that could not be slotted. Plans keep the original
// flow IDs; replicas are ordered as given.
func (sc Scheduler) SchedulePinnedPaths(topo *graph.Graph, net Network, pinned []PinnedFlow) (*State, []Pair, error) {
	if err := net.Validate(); err != nil {
		return nil, nil, err
	}
	var fs FlowSet
	seen := make(map[int]bool)
	for _, p := range pinned {
		if !seen[p.Flow.ID] {
			seen[p.Flow.ID] = true
			fs = append(fs, p.Flow)
		}
	}
	if err := fs.Validate(net.BasePeriod); err != nil {
		return nil, nil, err
	}
	hyper := net.Hyperperiod(fs)
	table := acquireSlotTable(hyper)
	defer releaseSlotTable(table)
	state := &State{Net: net}
	var failed []Pair
	for _, p := range pinned {
		if p.Path.Source() != p.Flow.Src || p.Path.Dest() != p.Dst {
			return nil, nil, fmt.Errorf("pinned path endpoints %d->%d do not match flow %d->%d",
				p.Path.Source(), p.Path.Dest(), p.Flow.Src, p.Dst)
		}
		for i := 0; i+1 < len(p.Path); i++ {
			if !topo.HasEdge(p.Path[i], p.Path[i+1]) {
				return nil, nil, fmt.Errorf("pinned path edge (%d,%d) missing from topology", p.Path[i], p.Path[i+1])
			}
		}
		periodSlots := net.PeriodSlots(p.Flow.Period)
		deadlineSlots := net.DeadlineSlots(p.Flow.Deadline)
		slots, ok := assignSlots(table, p.Path, periodSlots, deadlineSlots)
		if !ok {
			failed = append(failed, Pair{Src: p.Flow.Src, Dst: p.Dst})
			continue
		}
		state.Plans = append(state.Plans, FlowPlan{FlowID: p.Flow.ID, Dst: p.Dst, Path: p.Path, Slots: slots})
	}
	return state, failed, nil
}

// SchedulePinnedAround assigns slots to one pinned-path (flow, dst) pair
// while honoring the reservations of an existing state, returning the
// combined state. The error set carries the pair when its path cannot be
// slotted; a non-nil error means invalid inputs.
func (sc Scheduler) SchedulePinnedAround(topo *graph.Graph, net Network, fs FlowSet, pinnedState *State, pf PinnedFlow) (*State, []Pair, error) {
	if err := net.Validate(); err != nil {
		return nil, nil, err
	}
	if err := fs.Validate(net.BasePeriod); err != nil {
		return nil, nil, err
	}
	if pf.Path.Source() != pf.Flow.Src || pf.Path.Dest() != pf.Dst {
		return nil, nil, fmt.Errorf("pinned path endpoints %d->%d do not match flow %d->%d",
			pf.Path.Source(), pf.Path.Dest(), pf.Flow.Src, pf.Dst)
	}
	for i := 0; i+1 < len(pf.Path); i++ {
		if !topo.HasEdge(pf.Path[i], pf.Path[i+1]) {
			return nil, nil, fmt.Errorf("pinned path edge (%d,%d) missing from topology", pf.Path[i], pf.Path[i+1])
		}
	}
	flowsByID := make(map[int]Flow, len(fs))
	for _, f := range fs {
		flowsByID[f.ID] = f
	}
	hyper := net.Hyperperiod(fs)
	table := acquireSlotTable(hyper)
	defer releaseSlotTable(table)
	out := &State{Net: net}
	if pinnedState != nil {
		for _, p := range pinnedState.Plans {
			f, ok := flowsByID[p.FlowID]
			if !ok {
				return nil, nil, fmt.Errorf("pinned state references unknown flow %d", p.FlowID)
			}
			periodSlots := net.PeriodSlots(f.Period)
			for i, s := range p.Slots {
				table.reserve(DirLink{From: p.Path[i], To: p.Path[i+1]}, s, periodSlots)
			}
			out.Plans = append(out.Plans, p)
		}
	}
	periodSlots := net.PeriodSlots(pf.Flow.Period)
	deadlineSlots := net.DeadlineSlots(pf.Flow.Deadline)
	slots, ok := assignSlots(table, pf.Path, periodSlots, deadlineSlots)
	if !ok {
		return out, []Pair{{Src: pf.Flow.Src, Dst: pf.Dst}}, nil
	}
	out.Plans = append(out.Plans, FlowPlan{FlowID: pf.Flow.ID, Dst: pf.Dst, Path: pf.Path, Slots: slots})
	return out, nil, nil
}

// ScheduleAround schedules the pending flows on topo while keeping the
// reservations of the pinned state untouched. fs must be the complete flow
// specification (it provides periods and the hyperperiod); pending holds
// the (flow, destination) pairs to place, expressed as single-destination
// flows whose IDs refer back into fs. The result combines the pinned plans
// with the newly scheduled ones. It is the building block of incremental
// (stateful) recovery mechanisms.
func (sc Scheduler) ScheduleAround(topo *graph.Graph, net Network, fs FlowSet, pinned *State, pending FlowSet) (*State, []Pair, error) {
	if err := net.Validate(); err != nil {
		return nil, nil, err
	}
	if err := fs.Validate(net.BasePeriod); err != nil {
		return nil, nil, err
	}
	alts := sc.MaxAlternatives
	if alts <= 0 {
		alts = 1
	}
	flowsByID := make(map[int]Flow, len(fs))
	for _, f := range fs {
		flowsByID[f.ID] = f
	}
	hyper := net.Hyperperiod(fs)
	table := acquireSlotTable(hyper)
	defer releaseSlotTable(table)
	scratch := schedScratchPool.Get().(*schedScratch)
	defer schedScratchPool.Put(scratch)
	scratch.finder.Reset(topo)
	state := &State{Net: net}

	// Pin existing reservations.
	if pinned != nil {
		for _, p := range pinned.Plans {
			f, ok := flowsByID[p.FlowID]
			if !ok {
				return nil, nil, fmt.Errorf("schedule around: pinned plan references unknown flow %d", p.FlowID)
			}
			periodSlots := net.PeriodSlots(f.Period)
			for i, s := range p.Slots {
				table.reserve(DirLink{From: p.Path[i], To: p.Path[i+1]}, s, periodSlots)
			}
			state.Plans = append(state.Plans, p)
		}
	}

	ordered := append(FlowSet(nil), pending...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].ID != ordered[j].ID {
			return ordered[i].ID < ordered[j].ID
		}
		return ordered[i].Dsts[0] < ordered[j].Dsts[0]
	})

	var failed []Pair
	for _, f := range ordered {
		spec, ok := flowsByID[f.ID]
		if !ok {
			return nil, nil, fmt.Errorf("schedule around: pending flow %d not in specification", f.ID)
		}
		periodSlots := net.PeriodSlots(spec.Period)
		deadlineSlots := net.DeadlineSlots(spec.Deadline)
		for _, dst := range f.Dsts {
			plan, ok := sc.schedulePair(scratch, table, spec, dst, periodSlots, deadlineSlots, alts)
			if !ok {
				failed = append(failed, Pair{Src: spec.Src, Dst: dst})
				continue
			}
			state.Plans = append(state.Plans, plan)
		}
	}
	return state, failed, nil
}

// VerifyState checks that a flow state is internally consistent: paths
// exist in the topology, slots strictly increase along each path, deadlines
// hold and no two plans collide on a directed link slot (over the
// hyperperiod). It is used by tests and by the failure analyzer's
// self-checks.
func VerifyState(topo *graph.Graph, net Network, fs FlowSet, st *State) error {
	flowsByID := make(map[int]Flow, len(fs))
	for _, f := range fs {
		flowsByID[f.ID] = f
	}
	hyper := net.Hyperperiod(fs)
	occ := acquireSlotTable(hyper)
	defer releaseSlotTable(occ)
	for _, p := range st.Plans {
		f, ok := flowsByID[p.FlowID]
		if !ok {
			return fmt.Errorf("plan references unknown flow %d", p.FlowID)
		}
		if p.Path.Source() != f.Src || p.Path.Dest() != p.Dst {
			return fmt.Errorf("flow %d: path endpoints %d->%d do not match spec %d->%d",
				p.FlowID, p.Path.Source(), p.Path.Dest(), f.Src, p.Dst)
		}
		if !p.Path.Loopless() {
			return fmt.Errorf("flow %d: path %v has a loop", p.FlowID, p.Path)
		}
		if len(p.Slots) != p.Path.Hops() {
			return fmt.Errorf("flow %d: %d slots for %d hops", p.FlowID, len(p.Slots), p.Path.Hops())
		}
		periodSlots := net.PeriodSlots(f.Period)
		deadlineSlots := net.DeadlineSlots(f.Deadline)
		prev := -1
		for i, s := range p.Slots {
			if !topo.HasEdge(p.Path[i], p.Path[i+1]) {
				return fmt.Errorf("flow %d: hop (%d,%d) missing from topology", p.FlowID, p.Path[i], p.Path[i+1])
			}
			if s <= prev {
				return fmt.Errorf("flow %d: slot %d at hop %d does not increase", p.FlowID, s, i)
			}
			if s >= deadlineSlots {
				return fmt.Errorf("flow %d: slot %d at hop %d misses deadline (%d slots)", p.FlowID, s, i, deadlineSlots)
			}
			link := DirLink{From: p.Path[i], To: p.Path[i+1]}
			if !occ.conflictFree(link, s, periodSlots) {
				return fmt.Errorf("flow %d: slot %d on link %d->%d collides", p.FlowID, s, link.From, link.To)
			}
			occ.reserve(link, s, periodSlots)
			prev = s
		}
	}
	return nil
}
