//go:build race

// Package raceflag reports at compile time whether the race detector is
// active. Allocation-count regression tests consult it: the race runtime
// instruments allocations and makes testing.AllocsPerRun counts
// meaningless, so those guards skip themselves under -race while the rest
// of the suite still runs.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = true
