package viz

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

func vizProblem(t testing.TB) (*core.Problem, *core.Solution) {
	t.Helper()
	g := graph.New()
	g.AddVertex("cam", graph.KindEndStation)
	g.AddVertex("ecu", graph.KindEndStation)
	g.AddVertex("swA", graph.KindSwitch)
	g.AddVertex("swB", graph.KindSwitch)
	for es := 0; es < 2; es++ {
		for sw := 2; sw < 4; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	net := tsn.DefaultNetwork()
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{{ID: 0, Src: 0, Dsts: []int{1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}},
		NBF:             &nbf.StatelessRecovery{},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	state := core.NewTSSDN(prob)
	if err := state.UpgradeSwitch(2); err != nil { // only swA selected
		t.Fatal(err)
	}
	for es := 0; es < 2; es++ {
		if err := state.AddPath(graph.Path{es, 2}); err != nil {
			t.Fatal(err)
		}
	}
	return prob, &core.Solution{Topology: state.Topo, Assignment: state.Assign}
}

func TestWriteGraph(t *testing.T) {
	prob, _ := vizProblem(t)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, prob.Connections, "candidate \"graph\""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"candidate 'graph'\"", "n0 [label=\"cam\", shape=box]", "n2 [label=\"swA\", shape=circle]", "n0 -- n2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteSolution(t *testing.T) {
	prob, sol := vizProblem(t)
	var buf bytes.Buffer
	if err := WriteSolution(&buf, prob, sol, "plan"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Selected switch carries its ASIL; unselected one is dashed grey.
	if !strings.Contains(out, "ASIL-A") {
		t.Fatalf("selected switch missing ASIL label:\n%s", out)
	}
	if !strings.Contains(out, "style=dashed, color=grey") {
		t.Fatalf("unselected switch not dashed:\n%s", out)
	}
	// Only selected links are drawn (2 solution edges, not 4 candidates).
	if got := strings.Count(out, " -- "); got != 2 {
		t.Fatalf("edges drawn = %d, want 2:\n%s", got, out)
	}
}

func TestWriteSolutionNil(t *testing.T) {
	prob, _ := vizProblem(t)
	if err := WriteSolution(&bytes.Buffer{}, prob, nil, "x"); err == nil {
		t.Fatal("nil solution accepted")
	}
}

func TestAsilColorsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, l := range asil.Levels() {
		c := asilColor(l)
		if seen[c] {
			t.Fatalf("duplicate color %s", c)
		}
		seen[c] = true
	}
	if asilColor(asil.Level(0)) == "" {
		t.Fatal("unknown level needs a fallback color")
	}
}
