// Package viz renders topologies and planning solutions as Graphviz DOT
// documents: end stations as boxes, switches as circles, components
// colored by ASIL. The output feeds `dot -Tsvg` for design reviews and
// documentation.
package viz

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
)

// asilColor maps ASIL levels to fill colors (low = cool, high = warm).
func asilColor(l asil.Level) string {
	switch l {
	case asil.LevelA:
		return "#d0e8ff"
	case asil.LevelB:
		return "#b8f0c9"
	case asil.LevelC:
		return "#ffe9a8"
	case asil.LevelD:
		return "#ffc4c4"
	default:
		return "#eeeeee"
	}
}

// nodeID produces a stable DOT identifier.
func nodeID(v graph.Vertex) string {
	return fmt.Sprintf("n%d", v.ID)
}

func nodeLabel(v graph.Vertex) string {
	if v.Name != "" {
		return v.Name
	}
	return fmt.Sprintf("%s%d", v.Kind, v.ID)
}

// WriteGraph renders a bare graph (no ASIL information).
func WriteGraph(w io.Writer, g *graph.Graph, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", sanitize(title))
	b.WriteString("  layout=neato;\n  overlap=false;\n  splines=true;\n")
	for i := 0; i < g.NumVertices(); i++ {
		v := g.MustVertex(i)
		shape := "circle"
		if v.Kind == graph.KindEndStation {
			shape = "box"
		}
		fmt.Fprintf(&b, "  %s [label=%q, shape=%s];\n", nodeID(v), nodeLabel(v), shape)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %s -- %s [label=\"%.1f\"];\n",
			nodeID(g.MustVertex(e.U)), nodeID(g.MustVertex(e.V)), e.Length)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteSolution renders a planning solution: selected switches and links
// carry their ASIL as color and label; unselected optional switches are
// drawn dashed and grey.
func WriteSolution(w io.Writer, prob *core.Problem, sol *core.Solution, title string) error {
	if sol == nil || sol.Topology == nil {
		return fmt.Errorf("viz: nil solution")
	}
	gc := prob.Connections
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", sanitize(title))
	b.WriteString("  layout=neato;\n  overlap=false;\n  splines=true;\n")
	for i := 0; i < gc.NumVertices(); i++ {
		v := gc.MustVertex(i)
		switch v.Kind {
		case graph.KindEndStation:
			fmt.Fprintf(&b, "  %s [label=%q, shape=box, style=filled, fillcolor=\"#f5f5f5\"];\n",
				nodeID(v), nodeLabel(v))
		case graph.KindSwitch:
			lvl, selected := sol.Assignment.Switches[v.ID]
			if !selected {
				fmt.Fprintf(&b, "  %s [label=%q, shape=circle, style=dashed, color=grey];\n",
					nodeID(v), nodeLabel(v))
				continue
			}
			fmt.Fprintf(&b, "  %s [label=\"%s\\nASIL-%s\", shape=circle, style=filled, fillcolor=%q];\n",
				nodeID(v), nodeLabel(v), lvl, asilColor(lvl))
		}
	}
	for _, e := range sol.Topology.Edges() {
		lvl := sol.Assignment.LinkLevel(e.U, e.V)
		fmt.Fprintf(&b, "  %s -- %s [label=\"%s\", color=%q, penwidth=2];\n",
			nodeID(gc.MustVertex(e.U)), nodeID(gc.MustVertex(e.V)), lvl, strings.TrimSpace(asilColor(lvl)))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitize strips characters that break DOT string literals.
func sanitize(s string) string {
	return strings.NewReplacer("\"", "'", "\n", " ").Replace(s)
}
