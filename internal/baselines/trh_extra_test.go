package baselines

import (
	"testing"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// threeSwitchProblem gives three candidate switches so TRH can route three
// node-disjoint paths.
func threeSwitchProblem(t testing.TB) *core.Problem {
	t.Helper()
	g := graph.New()
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 3; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 2; es++ {
		for sw := 2; sw < 5; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	net := tsn.DefaultNetwork()
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{{ID: 0, Src: 0, Dsts: []int{1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}},
		NBF:             &nbf.StatelessRecovery{},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     3,
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	return prob
}

func TestTRHThreeDisjointPaths(t *testing.T) {
	prob := threeSwitchProblem(t)
	trh := &TRH{DisjointPaths: 3, Level: asil.LevelC}
	res, err := trh.Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	// Note: the decomposition gate only checks pairs; with 3 channels at
	// ASIL-C the pairwise C+C covers... C+C is not a listed pair for D, so
	// the gate is evaluated on Level twice.
	sol := res.Solution
	if sol.Topology.Degree(0) != 3 || sol.Topology.Degree(1) != 3 {
		t.Fatalf("expected all three switches used: deg(0)=%d deg(1)=%d",
			sol.Topology.Degree(0), sol.Topology.Degree(1))
	}
	for sw := 2; sw < 5; sw++ {
		if sol.Assignment.SwitchLevel(sw) != asil.LevelC {
			t.Fatalf("switch %d level %s", sw, sol.Assignment.SwitchLevel(sw))
		}
	}
}

func TestTRHSingleChannelMode(t *testing.T) {
	prob := threeSwitchProblem(t)
	trh := &TRH{DisjointPaths: 1, Level: asil.LevelD}
	res, err := trh.Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	// One ASIL-D channel: no decomposition needed, schedulable, valid.
	if !res.GuaranteeMet {
		t.Fatalf("single ASIL-D channel rejected: %s", res.Reason)
	}
	if res.Solution.Topology.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (one path)", res.Solution.Topology.NumEdges())
	}
}

func TestTRHCostFallbackForDegreeViolations(t *testing.T) {
	// Force a degree violation: 5 flows sharing an ES with MaxESDegree 1
	// make TRH overload it; the reported cost must still be computable.
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 6; es++ {
		for sw := 6; sw < 8; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	net := tsn.DefaultNetwork()
	var flows tsn.FlowSet
	for i := 0; i < 5; i++ {
		flows = append(flows, tsn.Flow{ID: i, Src: 0, Dsts: []int{i + 1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64})
	}
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           flows,
		NBF:             &nbf.StatelessRecovery{},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     1,
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := NewTRH().Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if res.GuaranteeMet {
		t.Fatal("degree-violating synthesis must be invalid")
	}
	if res.Solution == nil || res.Solution.Cost <= 0 {
		t.Fatal("invalid solutions must still report a chartable cost")
	}
}

func TestNeuroPlanTrivialProblem(t *testing.T) {
	prob := tinyProblem(t)
	prob.Flows = nil
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	np, err := NewNeuroPlan(npConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, report, err := np.Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GuaranteeMet || report.Best == nil {
		t.Fatal("flowless problem should be trivially solved")
	}
}

func TestNeuroPlanEnvStepErrors(t *testing.T) {
	prob := tinyProblem(t)
	env, err := newNPEnv(prob, npConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := env.step(-1); err == nil {
		t.Error("negative action accepted")
	}
	if _, _, err := env.step(999); err == nil {
		t.Error("out-of-range action accepted")
	}
	// A masked link action (switch not yet added) must surface as an error.
	if _, _, err := env.step(0); err == nil {
		t.Error("masked link action accepted")
	}
}
