// Package baselines implements the three comparison points of the paper's
// evaluation (§VI-A): the manually designed Original topology with ASIL-D
// components, the TRH FRER topology-synthesis heuristic [4], and the
// NeuroPlan-style RL planner with static link-level actions [16].
package baselines

import (
	"fmt"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
)

// Result is the uniform outcome of a baseline planner.
type Result struct {
	// Solution is the produced topology and allocation (may be present even
	// when the guarantee failed, for cost reporting).
	Solution *core.Solution
	// GuaranteeMet reports whether the reliability requirement was
	// established for the problem.
	GuaranteeMet bool
	// Reason explains a failed guarantee.
	Reason string
}

// Original evaluates a manually designed topology (e.g. the published ORION
// network) with every component at ASIL-D — the most conservative static
// allocation, required because single-homed end stations leave single
// points of failure otherwise (§VI-A).
type Original struct {
	// Topology is the manual design; it must span the problem's vertex set.
	Topology *graph.Graph
	// AnalyzerWorkers bounds the verification analyzer's worker pool
	// (<= 1 keeps it sequential).
	AnalyzerWorkers int
}

// Plan assigns ASIL-D everywhere and verifies the reliability goal.
func (o *Original) Plan(prob *core.Problem) (*Result, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if o.Topology == nil {
		return nil, fmt.Errorf("original: nil topology")
	}
	if o.Topology.NumVertices() != prob.Connections.NumVertices() {
		return nil, fmt.Errorf("original: topology has %d vertices, problem has %d",
			o.Topology.NumVertices(), prob.Connections.NumVertices())
	}
	assign := asil.NewAssignment()
	for _, sw := range o.Topology.VerticesOfKind(graph.KindSwitch) {
		if o.Topology.Degree(sw) > 0 {
			assign.Switches[sw] = asil.LevelD
		}
	}
	for _, e := range o.Topology.Edges() {
		assign.SetLink(e.U, e.V, asil.LevelD)
	}
	cost, err := asil.NetworkCost(o.Topology, assign, prob.Library)
	if err != nil {
		return nil, fmt.Errorf("original: %w", err)
	}
	sol := &core.Solution{Topology: o.Topology.Clone(), Assignment: assign, Cost: cost}

	an := &failure.Analyzer{Lib: prob.Library, NBF: prob.NBF, Net: prob.Net, R: prob.ReliabilityGoal, Workers: o.AnalyzerWorkers}
	res, err := an.Analyze(o.Topology, assign, prob.Flows)
	if err != nil {
		return nil, fmt.Errorf("original: %w", err)
	}
	out := &Result{Solution: sol, GuaranteeMet: res.OK}
	if !res.OK {
		out.Reason = fmt.Sprintf("failure %v unrecoverable (ER %v)", res.Failure, res.ER)
	}
	return out, nil
}
