package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/rl"
)

// NeuroPlan is the RL network-planning baseline of [16], modified as in
// §VI-A: a static action space of individual link additions plus switch
// ASIL assignment, the same GCN+PPO stack and the same reward/environment
// as NPTSN, but without the SOAG's failure-targeted path actions or search
// space pruning. Its long, link-by-link decision trajectories are the
// paper's explanation for its degraded guarantee rate and higher cost.
type NeuroPlan struct {
	cfg core.Config
}

// NewNeuroPlan builds the baseline with the given (NPTSN-compatible)
// hyperparameters; K is ignored (the action space is static).
func NewNeuroPlan(cfg core.Config) (*NeuroPlan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &NeuroPlan{cfg: cfg}, nil
}

// npEnv is NeuroPlan's environment: same state, analyzer and reward shape
// as core.Env, with a static action space.
type npEnv struct {
	prob     *core.Problem
	analyzer *failure.Analyzer
	enc      *core.Encoder
	scale    float64

	links    []graph.Edge // static link-action list (canonical order)
	switches []int

	state *core.TSSDN
	ok    bool
	cost  float64
	best  *core.Solution
	steps int
}

func newNPEnv(prob *core.Problem, cfg core.Config) (*npEnv, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	var cache *failure.Cache
	if cfg.AnalyzerCacheSize > 0 {
		cache = failure.NewCache(cfg.AnalyzerCacheSize)
	}
	e := &npEnv{
		prob: prob,
		analyzer: &failure.Analyzer{
			Lib: prob.Library, NBF: prob.NBF, Net: prob.Net, R: prob.ReliabilityGoal,
			Workers: cfg.AnalyzerWorkers,
			Cache:   cache,
		},
		// K=1 keeps one (always empty) action column; the encoder needs a
		// positive width but NeuroPlan never populates path actions.
		enc:      core.NewEncoder(prob, 1),
		scale:    cfg.RewardScale,
		links:    prob.Connections.Edges(),
		switches: prob.Switches(),
		state:    core.NewTSSDN(prob),
	}
	if err := e.analyze(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *npEnv) analyze() error {
	res, err := e.analyzer.Analyze(e.state.Topo, e.state.Assign, e.prob.Flows)
	if err != nil {
		return err
	}
	e.ok = res.OK
	return nil
}

// actionCount is |Ec| + |V^c_sw|: one action per optional link plus one
// ASIL-assignment action per optional switch.
func (e *npEnv) actionCount() int { return len(e.links) + len(e.switches) }

// mask computes validity of every static action in the current state.
func (e *npEnv) mask() []bool {
	m := make([]bool, e.actionCount())
	for i, l := range e.links {
		m[i] = e.linkValid(l)
	}
	for j, sw := range e.switches {
		m[len(e.links)+j] = e.state.Assign.SwitchLevel(sw) != asil.LevelD
	}
	return m
}

// linkValid reports whether adding link l is currently possible: not
// already present, switch endpoints already assigned, and degree limits
// respected.
func (e *npEnv) linkValid(l graph.Edge) bool {
	if e.state.Topo.HasEdge(l.U, l.V) {
		return false
	}
	for _, v := range []int{l.U, l.V} {
		switch e.prob.Connections.Kind(v) {
		case graph.KindSwitch:
			if !e.state.HasSwitch(v) {
				return false
			}
			if e.state.Topo.Degree(v)+1 > e.prob.Library.MaxSwitchDegree() {
				return false
			}
		case graph.KindEndStation:
			if e.state.Topo.Degree(v)+1 > e.prob.MaxESDegree {
				return false
			}
		}
	}
	return true
}

func (e *npEnv) observation() *core.Obs { return e.enc.Encode(e.state, nil) }

func (e *npEnv) reset() error {
	e.state.Reset()
	e.cost = 0
	return e.analyze()
}

// step mirrors core.Env.Step for the static action space.
func (e *npEnv) step(idx int) (float64, core.StepOutcome, error) {
	if idx < 0 || idx >= e.actionCount() {
		return 0, 0, fmt.Errorf("neuroplan: action %d out of range", idx)
	}
	e.steps++
	var err error
	if idx < len(e.links) {
		l := e.links[idx]
		err = e.state.AddPath(graph.Path{l.U, l.V})
	} else {
		err = e.state.UpgradeSwitch(e.switches[idx-len(e.links)])
	}
	if err != nil {
		return 0, 0, fmt.Errorf("neuroplan: unmasked action failed: %w", err)
	}
	newCost, err := e.state.Cost()
	if err != nil {
		return 0, 0, err
	}
	reward := (e.cost - newCost) / e.scale
	e.cost = newCost
	if err := e.analyze(); err != nil {
		return 0, 0, err
	}
	if e.ok {
		if e.best == nil || newCost < e.best.Cost {
			e.best = &core.Solution{
				Topology:   e.state.Topo.Clone(),
				Assignment: e.state.Assign.Clone(),
				Cost:       newCost,
			}
		}
		if err := e.reset(); err != nil {
			return 0, 0, err
		}
		return reward, core.OutcomeSolved, nil
	}
	if allFalse(e.mask()) {
		if err := e.reset(); err != nil {
			return 0, 0, err
		}
		return reward - 1, core.OutcomeDeadEnd, nil
	}
	return reward, core.OutcomeContinue, nil
}

func allFalse(mask []bool) bool {
	for _, m := range mask {
		if m {
			return false
		}
	}
	return true
}

// Plan trains the NeuroPlan agent and returns the best solution found plus
// per-epoch statistics (single exploration worker).
func (n *NeuroPlan) Plan(prob *core.Problem) (*Result, *core.Report, error) {
	env, err := newNPEnv(prob, n.cfg)
	if err != nil {
		return nil, nil, err
	}
	if env.ok {
		sol := &core.Solution{Topology: env.state.Topo.Clone(), Assignment: env.state.Assign.Clone()}
		return &Result{Solution: sol, GuaranteeMet: true}, &core.Report{Best: sol}, nil
	}
	rng := rand.New(rand.NewSource(n.cfg.Seed))
	nets, err := core.NewNets(rng, env.enc, env.actionCount(), n.cfg)
	if err != nil {
		return nil, nil, err
	}
	ppo, err := rl.NewPPO(rl.PPOConfig{
		ClipRatio:    n.cfg.ClipRatio,
		ActorLR:      n.cfg.ActorLR,
		CriticLR:     n.cfg.CriticLR,
		TrainPiIters: n.cfg.TrainPiIters,
		TrainVIters:  n.cfg.TrainVIters,
		TargetKL:     n.cfg.TargetKL,
	})
	if err != nil {
		return nil, nil, err
	}

	report := &core.Report{}
	for epoch := 1; epoch <= n.cfg.MaxEpoch; epoch++ {
		buf := rl.NewBuffer(n.cfg.Discount, n.cfg.GAELambda)
		es := core.EpochStats{Epoch: epoch}
		for j := 0; j < n.cfg.MaxStep; j++ {
			obs := env.observation()
			mask := env.mask()
			if allFalse(mask) {
				return nil, nil, fmt.Errorf("neuroplan: no valid actions from the start state")
			}
			logits := nets.ForwardPolicy(obs)
			masked := nn.MaskLogits(logits, mask)
			action := nn.SampleCategorical(rng, nn.Softmax(masked))
			logp := nn.LogSoftmax(masked)[action]
			value := nets.ForwardValue(obs)
			reward, outcome, err := env.step(action)
			if err != nil {
				return nil, nil, err
			}
			buf.Store(rl.Step{Obs: obs, Action: action, Mask: mask, LogP: logp, Value: value, Reward: reward})
			switch outcome {
			case core.OutcomeSolved:
				es.Trajectories++
				es.Solutions++
				buf.FinishPath(0)
			case core.OutcomeDeadEnd:
				es.Trajectories++
				es.DeadEnds++
				buf.FinishPath(0)
			}
		}
		// A non-empty trailing partial path counts as a trajectory; an
		// epoch that ended exactly on a path boundary adds nothing.
		before := buf.Paths()
		buf.FinishPath(nets.ForwardValue(env.observation()))
		if buf.Paths() > before {
			es.Trajectories++
		}
		es.Reward = buf.EpochReward()

		stats, err := ppo.Update(nets, buf)
		if err != nil {
			return nil, nil, err
		}
		es.PolicyLoss, es.ValueLoss, es.ApproxKL = stats.PolicyLoss, stats.ValueLoss, stats.ApproxKL
		if env.best != nil {
			if report.Best == nil || env.best.Cost < report.Best.Cost {
				b := env.best.Clone()
				b.FoundAtEpoch = epoch
				report.Best = b
			}
			es.BestCost = report.Best.Cost
		}
		report.Epochs = append(report.Epochs, es)
	}

	res := &Result{GuaranteeMet: report.Best != nil}
	if report.Best != nil {
		res.Solution = report.Best
	} else {
		res.Reason = "no valid topology discovered within the training budget"
	}
	return res, report, nil
}
