package baselines

import (
	"fmt"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tsn"
)

// TRH is the fault-tolerant topology and routing synthesis heuristic of
// Gavrilut et al. [4], adapted as in §VI-A: it builds the topology by
// routing a configurable number of node-disjoint FRER paths per flow
// (breadth-first/shortest-path based), assigns a static ASIL to every
// component, and relies on ASIL decomposition (two ASIL-B channels for an
// ASIL-D goal) for the reliability argument. It does not consider
// schedulability while constructing the topology; the TT schedule is
// checked afterwards and failures reported as invalid solutions.
type TRH struct {
	// DisjointPaths is the number of redundant FRER paths per flow
	// (2 in the evaluation).
	DisjointPaths int
	// Level is the static ASIL assigned to every component (B in the
	// evaluation, justified by B+B decomposition of an ASIL-D goal).
	Level asil.Level
}

// NewTRH returns the evaluation configuration: two disjoint ASIL-B paths.
func NewTRH() *TRH { return &TRH{DisjointPaths: 2, Level: asil.LevelB} }

// Plan synthesizes the FRER topology for the problem.
func (t *TRH) Plan(prob *core.Problem) (*Result, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if t.DisjointPaths <= 0 {
		return nil, fmt.Errorf("trh: disjoint path count must be positive")
	}
	if !t.Level.Valid() {
		return nil, fmt.Errorf("trh: invalid ASIL %d", int(t.Level))
	}
	topo := prob.Connections.EmptyLike()
	assign := asil.NewAssignment()
	var pinned []tsn.PinnedFlow
	addEdge := func(u, v int) error {
		if topo.HasEdge(u, v) {
			return nil
		}
		length, _ := prob.Connections.EdgeLength(u, v)
		if err := topo.AddEdge(u, v, length); err != nil {
			return err
		}
		assign.SetLink(u, v, t.Level)
		return nil
	}

	out := &Result{GuaranteeMet: true}
	for _, f := range prob.Flows {
		for _, dst := range f.Dsts {
			paths, ok := t.disjointPaths(prob, topo, f.Src, dst)
			if !ok {
				out.GuaranteeMet = false
				out.Reason = fmt.Sprintf("no %d disjoint paths for pair (%d->%d)", t.DisjointPaths, f.Src, dst)
				continue
			}
			for tag, p := range paths {
				for i := 0; i+1 < len(p); i++ {
					if err := addEdge(p[i], p[i+1]); err != nil {
						return nil, fmt.Errorf("trh: %w", err)
					}
				}
				for _, v := range p {
					if prob.Connections.Kind(v) == graph.KindSwitch {
						assign.Switches[v] = t.Level
					}
				}
				pinned = append(pinned, tsn.PinnedFlow{Flow: f, Dst: dst, Path: p, Tag: tag})
			}
		}
	}

	// Degree constraints: the BFS heuristic does not respect them while
	// adding paths, so violations invalidate the solution (§VI-A: TRH can
	// produce networks that cannot be realized/scheduled).
	for _, sw := range topo.VerticesOfKind(graph.KindSwitch) {
		if topo.Degree(sw) > prob.Library.MaxSwitchDegree() {
			out.GuaranteeMet = false
			out.Reason = fmt.Sprintf("switch %d needs %d ports (max %d)", sw, topo.Degree(sw), prob.Library.MaxSwitchDegree())
		}
	}
	for _, es := range topo.VerticesOfKind(graph.KindEndStation) {
		if topo.Degree(es) > prob.MaxESDegree {
			out.GuaranteeMet = false
			out.Reason = fmt.Sprintf("end station %d needs %d ports (max %d)", es, topo.Degree(es), prob.MaxESDegree)
		}
	}

	// Cost is reported for the constructed network even when invalid.
	cost, err := t.cost(prob, topo, assign)
	if err != nil {
		return nil, err
	}
	out.Solution = &core.Solution{Topology: topo, Assignment: assign, Cost: cost}

	if !out.GuaranteeMet {
		return out, nil
	}

	// Post-hoc schedulability of all FRER replicas simultaneously (static
	// redundancy doubles the network load, §VI-A).
	_, failedPairs, err := tsn.Scheduler{}.SchedulePinnedPaths(topo, prob.Net, pinned)
	if err != nil {
		return nil, fmt.Errorf("trh: %w", err)
	}
	if len(failedPairs) > 0 {
		out.GuaranteeMet = false
		out.Reason = fmt.Sprintf("FRER replicas unschedulable for pairs %v", failedPairs)
		return out, nil
	}

	// Reliability argument: every flow has DisjointPaths node-disjoint
	// channels at the static ASIL; decomposition must cover an ASIL-D
	// goal equivalent (R = failure probability of an ASIL-D component).
	if t.DisjointPaths >= 2 && !asil.DecompositionSatisfies(asil.LevelD, t.Level, t.Level) {
		out.GuaranteeMet = false
		out.Reason = fmt.Sprintf("ASIL decomposition %s+%s does not satisfy D", t.Level, t.Level)
	}
	return out, nil
}

// disjointPaths finds up to DisjointPaths node-disjoint paths from s to d
// in the connection graph, preferring edges already present in topo (so the
// heuristic reuses infrastructure, as the BFS growth in [4] does). Several
// first-path candidates are tried; among complete disjoint sets the one
// that respects the degree constraints on top of the current topology wins,
// falling back to the shortest set otherwise.
func (t *TRH) disjointPaths(prob *core.Problem, topo *graph.Graph, s, d int) ([]graph.Path, bool) {
	// Reuse-discounted, saturation-penalized search graph: existing
	// topology edges get a reduced length, while edges that would open a
	// new port on an already-full node are heavily penalized so the
	// shortest-path search routes around them when reuse is possible.
	base := prob.Connections.Clone()
	for _, e := range prob.Connections.Edges() {
		if topo.HasEdge(e.U, e.V) {
			_ = base.AddEdge(e.U, e.V, e.Length*0.5)
			continue
		}
		w := e.Length
		for _, v := range []int{e.U, e.V} {
			full := false
			switch prob.Connections.Kind(v) {
			case graph.KindEndStation:
				full = topo.Degree(v) >= prob.MaxESDegree
			case graph.KindSwitch:
				full = topo.Degree(v) >= prob.Library.MaxSwitchDegree()
			}
			if full {
				w += 100
			}
		}
		_ = base.AddEdge(e.U, e.V, w)
	}
	const pathCandidates = 6
	cands, err := base.KShortestPaths(s, d, pathCandidates)
	if err != nil {
		return nil, false
	}
	var fallback []graph.Path
	for _, first := range cands {
		for _, set := range t.extendDisjoint(base, first, s, d, pathCandidates) {
			if t.setRespectsDegrees(prob, topo, set) {
				return set, true
			}
			if fallback == nil {
				fallback = set
			}
		}
	}
	if fallback == nil {
		return nil, false
	}
	return fallback, true
}

// extendDisjoint grows node-disjoint path sets starting from `first`. For
// the second path it enumerates up to `alts` candidates (the common
// 2-disjoint case benefits from choosing among them); deeper levels extend
// greedily.
func (t *TRH) extendDisjoint(base *graph.Graph, first graph.Path, s, d, alts int) [][]graph.Path {
	reduced := base.Clone()
	excludePath(reduced, first)
	if t.DisjointPaths == 1 {
		return [][]graph.Path{{first}}
	}
	seconds, err := reduced.KShortestPaths(s, d, alts)
	if err != nil {
		return nil
	}
	var sets [][]graph.Path
	for _, second := range seconds {
		set := []graph.Path{first, second}
		if t.DisjointPaths > 2 {
			g := reduced.Clone()
			excludePath(g, second)
			ok := true
			for len(set) < t.DisjointPaths {
				p, err := g.ShortestPath(s, d)
				if err != nil {
					ok = false
					break
				}
				set = append(set, p)
				excludePath(g, p)
			}
			if !ok {
				continue
			}
		}
		sets = append(sets, set)
	}
	return sets
}

// excludePath removes a path's intermediate nodes (and a direct edge) from
// g to force node-disjointness of later paths.
func excludePath(g *graph.Graph, p graph.Path) {
	for _, v := range p[1 : len(p)-1] {
		g.IsolateVertex(v)
	}
	if len(p) == 2 {
		g.RemoveEdge(p[0], p[1])
	}
}

// setRespectsDegrees checks whether adding all paths' new edges keeps the
// topology within the switch/ES port limits.
func (t *TRH) setRespectsDegrees(prob *core.Problem, topo *graph.Graph, paths []graph.Path) bool {
	extra := make(map[int]int)
	added := make(map[graph.Edge]bool)
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			e := graph.Edge{U: p[i], V: p[i+1]}.Canonical()
			if topo.HasEdge(e.U, e.V) || added[e] {
				continue
			}
			added[e] = true
			extra[e.U]++
			extra[e.V]++
		}
	}
	for v, add := range extra {
		deg := topo.Degree(v) + add
		if prob.Connections.Kind(v) == graph.KindSwitch && deg > prob.Library.MaxSwitchDegree() {
			return false
		}
		if prob.Connections.Kind(v) == graph.KindEndStation && deg > prob.MaxESDegree {
			return false
		}
	}
	return true
}

// cost computes Eq. 1 for the synthesized network.
func (t *TRH) cost(prob *core.Problem, topo *graph.Graph, assign *asil.Assignment) (float64, error) {
	cost, err := asil.NetworkCost(topo, assign, prob.Library)
	if err == nil {
		return cost, nil
	}
	// Degree violations make the exact library cost undefined; price the
	// over-subscribed switches at the largest available switch so invalid
	// solutions still chart (they are reported as invalid regardless).
	var total float64
	for _, sw := range topo.VerticesOfKind(graph.KindSwitch) {
		if topo.Degree(sw) == 0 {
			continue
		}
		deg := topo.Degree(sw)
		if deg > prob.Library.MaxSwitchDegree() {
			deg = prob.Library.MaxSwitchDegree()
		}
		c, cerr := prob.Library.SwitchCost(t.Level, deg)
		if cerr != nil {
			return 0, cerr
		}
		total += c
	}
	for _, e := range topo.Edges() {
		c, cerr := prob.Library.LinkCost(t.Level, e.Length)
		if cerr != nil {
			return 0, cerr
		}
		total += c
	}
	return total, nil
}
