package baselines

import (
	"strings"
	"testing"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// tinyProblem mirrors the core test fixture: 4 ES, 2 optional switches,
// full ES-SW + SW-SW connections, 3 flows, R = 1e-6.
func tinyProblem(t testing.TB) *core.Problem {
	t.Helper()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.AddEdge(4, 5, 1); err != nil {
		t.Fatal(err)
	}
	net := tsn.DefaultNetwork()
	mk := func(id, src, dst int) tsn.Flow {
		return tsn.Flow{ID: id, Src: src, Dsts: []int{dst}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}
	}
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{mk(0, 0, 1), mk(1, 2, 3), mk(2, 1, 2)},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	return prob
}

// dualHomedManual builds the fully dual-homed manual topology over the
// tiny problem's vertex set.
func dualHomedManual(t testing.TB, prob *core.Problem) *graph.Graph {
	t.Helper()
	topo := prob.Connections.EmptyLike()
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := topo.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return topo
}

// singleHomedManual connects every ES to switch 4 only.
func singleHomedManual(t testing.TB, prob *core.Problem) *graph.Graph {
	t.Helper()
	topo := prob.Connections.EmptyLike()
	for es := 0; es < 4; es++ {
		if err := topo.AddEdge(es, 4, 1); err != nil {
			t.Fatal(err)
		}
	}
	return topo
}

func TestOriginalDualHomedValid(t *testing.T) {
	prob := tinyProblem(t)
	o := &Original{Topology: dualHomedManual(t, prob)}
	res, err := o.Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GuaranteeMet {
		t.Fatalf("dual-homed ASIL-D design rejected: %s", res.Reason)
	}
	// 2 × 4-port... degree 4 -> 4-port ASIL-D switch (27) ×2, 8 ASIL-D
	// unit links ×8 = 54 + 64 = 118.
	if res.Solution.Cost != 2*27+8*8 {
		t.Fatalf("cost = %v, want 118", res.Solution.Cost)
	}
}

func TestOriginalSingleHomedValidAtPaperR(t *testing.T) {
	// Single-homed with ASIL-D: cfp(D) < 1e-6 = R, so the single point of
	// failure is a safe fault (the ORION argument of §VI-A).
	prob := tinyProblem(t)
	o := &Original{Topology: singleHomedManual(t, prob)}
	res, err := o.Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GuaranteeMet {
		t.Fatalf("single-homed ASIL-D design must pass at R=1e-6: %s", res.Reason)
	}

	// Tightening R exposes the single point of failure.
	prob.ReliabilityGoal = 9e-7
	res, err = o.Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if res.GuaranteeMet {
		t.Fatal("single point of failure must fail at R=9e-7")
	}
	if res.Reason == "" {
		t.Fatal("failed guarantee must carry a reason")
	}
}

func TestOriginalValidation(t *testing.T) {
	prob := tinyProblem(t)
	if _, err := (&Original{}).Plan(prob); err == nil {
		t.Error("nil topology accepted")
	}
	small := graph.New()
	small.AddVertex("", graph.KindEndStation)
	if _, err := (&Original{Topology: small}).Plan(prob); err == nil {
		t.Error("mismatched vertex set accepted")
	}
}

func TestTRHBuildsDisjointFRERPaths(t *testing.T) {
	prob := tinyProblem(t)
	res, err := NewTRH().Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GuaranteeMet {
		t.Fatalf("TRH failed on the tiny problem: %s", res.Reason)
	}
	sol := res.Solution
	// Every component must be ASIL-B.
	for sw, lvl := range sol.Assignment.Switches {
		if lvl != asil.LevelB {
			t.Fatalf("switch %d at %s, want B", sw, lvl)
		}
	}
	for e, lvl := range sol.Assignment.Links {
		if lvl != asil.LevelB {
			t.Fatalf("link %v at %s, want B", e, lvl)
		}
	}
	// Both switches must be in use (disjoint paths need both).
	if sol.Topology.Degree(4) == 0 || sol.Topology.Degree(5) == 0 {
		t.Fatal("disjoint paths must use both switches")
	}
	if sol.Cost <= 0 {
		t.Fatal("cost missing")
	}
}

func TestTRHFailsWithoutDisjointPaths(t *testing.T) {
	// Only one switch: node-disjoint pairs are impossible.
	g := graph.New()
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	sw := g.AddVertex("", graph.KindSwitch)
	for i := 0; i < 2; i++ {
		if err := g.AddEdge(i, sw, 1); err != nil {
			t.Fatal(err)
		}
	}
	net := tsn.DefaultNetwork()
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{{ID: 0, Src: 0, Dsts: []int{1}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}},
		NBF:             &nbf.StatelessRecovery{},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	res, err := NewTRH().Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if res.GuaranteeMet {
		t.Fatal("TRH cannot guarantee without disjoint paths")
	}
	if !strings.Contains(res.Reason, "disjoint") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestTRHDecompositionGate(t *testing.T) {
	prob := tinyProblem(t)
	trh := &TRH{DisjointPaths: 2, Level: asil.LevelA}
	res, err := trh.Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	// A+A does not decompose ASIL-D.
	if res.GuaranteeMet {
		t.Fatal("A+A decomposition accepted for an ASIL-D goal")
	}
	if !strings.Contains(res.Reason, "decomposition") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestTRHValidation(t *testing.T) {
	prob := tinyProblem(t)
	if _, err := (&TRH{DisjointPaths: 0, Level: asil.LevelB}).Plan(prob); err == nil {
		t.Error("zero disjoint paths accepted")
	}
	if _, err := (&TRH{DisjointPaths: 2, Level: asil.Level(9)}).Plan(prob); err == nil {
		t.Error("invalid level accepted")
	}
}

func npConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.GCNLayers = 1
	cfg.GCNHidden = 8
	cfg.EmbeddingPerNode = 2
	cfg.MLPHidden = []int{16}
	cfg.K = 1
	cfg.MaxEpoch = 2
	cfg.MaxStep = 40
	cfg.TrainPiIters = 4
	cfg.TrainVIters = 4
	cfg.Seed = 5
	return cfg
}

func TestNeuroPlanSmoke(t *testing.T) {
	prob := tinyProblem(t)
	np, err := NewNeuroPlan(npConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, report, err := np.Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(report.Epochs))
	}
	if res.GuaranteeMet {
		// If a solution was found it must verify.
		if err := core.VerifySolution(prob, res.Solution); err != nil {
			t.Fatalf("NeuroPlan solution invalid: %v", err)
		}
	} else if res.Reason == "" {
		t.Fatal("failed guarantee needs a reason")
	}
}

func TestNeuroPlanFindsSolutionWithBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	prob := tinyProblem(t)
	cfg := npConfig()
	cfg.MaxEpoch = 4
	cfg.MaxStep = 150
	np, err := NewNeuroPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := np.Plan(prob)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GuaranteeMet {
		t.Fatal("NeuroPlan found no solution on the tiny problem")
	}
	if err := core.VerifySolution(prob, res.Solution); err != nil {
		t.Fatal(err)
	}
}

func TestNeuroPlanEnvMasks(t *testing.T) {
	prob := tinyProblem(t)
	env, err := newNPEnv(prob, npConfig())
	if err != nil {
		t.Fatal(err)
	}
	if env.actionCount() != 9+2 {
		t.Fatalf("actionCount = %d, want 11", env.actionCount())
	}
	m := env.mask()
	// No switches added: every link action invalid, both switch actions
	// valid.
	for i := 0; i < len(env.links); i++ {
		if m[i] {
			t.Fatalf("link action %d valid before its switch exists", i)
		}
	}
	if !m[len(env.links)] || !m[len(env.links)+1] {
		t.Fatal("switch actions should be valid")
	}

	// Add switch 4: its links become valid.
	if _, _, err := env.step(len(env.links)); err != nil {
		t.Fatal(err)
	}
	m = env.mask()
	valid := 0
	for i, l := range env.links {
		if m[i] {
			valid++
			if l.U != 4 && l.V != 4 {
				t.Fatalf("link %v valid without both endpoints available", l)
			}
		}
	}
	if valid == 0 {
		t.Fatal("no link actions after adding a switch")
	}
}

func TestNeuroPlanValidation(t *testing.T) {
	bad := npConfig()
	bad.MaxStep = 0
	if _, err := NewNeuroPlan(bad); err == nil {
		t.Error("invalid config accepted")
	}
}
