package service

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// TestSlowProgressObserverDoesNotTripWatchdog is the S2 regression: an
// external Options.Progress observer that blocks far longer than
// StuckTimeout must not get a healthy job killed — the engine keeps the
// job's heartbeat alive through a proxy beater while the observer runs.
func TestSlowProgressObserverDoesNotTripWatchdog(t *testing.T) {
	// The watchdog allowance must comfortably cover one training epoch of
	// the tiny job (the planner only beats per epoch, and -race slows
	// training several-fold), while the observer blocks for a multiple of
	// it — the blocked window is what the proxy beater has to bridge.
	const stuck = 750 * time.Millisecond
	var calls atomic.Int64
	m := newTestManager(t, Options{
		StuckTimeout: stuck,
		Progress: func(jobID string, es core.EpochStats) {
			if calls.Add(1) == 1 {
				time.Sleep(3 * stuck) // deliberately slower than the watchdog
			}
		},
	})
	st, err := m.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("job with a slow observer finished %s (%q), want done",
			final.State, final.Error)
	}
	if calls.Load() == 0 {
		t.Fatal("observer was never called")
	}
}

// TestWatchdogStillCatchesHungJobWithObserver: the proxy beater must only
// cover observer time — a genuinely hung planner (exploration livelock)
// is still caught by the watchdog even when a Progress observer is
// configured.
func TestWatchdogStillCatchesHungJobWithObserver(t *testing.T) {
	in := fault.New(1, fault.Rule{Point: fault.PointExplore, Kind: fault.KindHang, Prob: 1})
	m := newTestManager(t, Options{
		StuckTimeout: 250 * time.Millisecond,
		Fault:        in,
		Progress:     func(string, core.EpochStats) { time.Sleep(time.Millisecond) },
	})
	st, err := m.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "stalled") {
		t.Fatalf("hung job = %s (%q), want failed/stalled", final.State, final.Error)
	}
}
