package service

import (
	"testing"
	"time"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/serialize"
	"repro/internal/tsn"
)

// tinyProblemJSON is the service tests' problem spec: 4 end stations, 2
// optional switches, full ES-SW plus SW-SW candidate links, 3 unicast
// flows — the same fixture shape internal/core trains on in milliseconds.
func tinyProblemJSON(t testing.TB) serialize.ProblemJSON {
	t.Helper()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.AddEdge(4, 5, 1); err != nil {
		t.Fatal(err)
	}
	net := tsn.DefaultNetwork()
	mkFlow := func(id, src, dst int) tsn.Flow {
		return tsn.Flow{ID: id, Src: src, Dsts: []int{dst}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}
	}
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{mkFlow(0, 0, 1), mkFlow(1, 2, 3), mkFlow(2, 1, 2)},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	if err := prob.Validate(); err != nil {
		t.Fatalf("tiny problem invalid: %v", err)
	}
	return serialize.EncodeProblem(prob, "stateless-greedy")
}

// tinyRequest is a fast-planning request over the tiny problem.
func tinyRequest(t testing.TB) Request {
	intp := func(v int) *int { return &v }
	return Request{
		Problem: tinyProblemJSON(t),
		Params: PlanParams{
			Epochs: 2, Steps: 24, K: 4, MLPWidth: 16,
			GCNLayers: intp(1), AnalyzerCache: intp(1024), Seed: 11,
		},
	}
}

// waitTerminal blocks until the job reaches a terminal state (internal
// channel; tests live in the package).
func waitTerminal(t testing.TB, m *Manager, id string) Status {
	t.Helper()
	j := m.lookup(id)
	if j == nil {
		t.Fatalf("job %s unknown", id)
	}
	select {
	case <-j.terminal:
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish: %+v", id, j.status())
	}
	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// directReport plans the request's problem with the request's effective
// configuration in-process — the reference the service result must match.
func directReport(t testing.TB, req Request) *core.Report {
	t.Helper()
	prob, err := serialize.DecodeProblem(req.Problem, nbf.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlanner(prob, req.Params.normalized().config())
	if err != nil {
		t.Fatal(err)
	}
	report, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return report
}
