// Package service is the planning-as-a-service layer of the NPTSN
// reproduction: a job engine that accepts planning problems (the JSON
// specs the CLIs already exchange), executes them on a bounded in-process
// worker pool of independent Planners, and serves status, progress and
// results over an HTTP JSON API (see NewMux and cmd/nptsn-serve).
//
// The engine provides submit/get/list/cancel semantics with per-job states
// (queued → running → done/failed/cancelled), backpressure when the
// waiting queue is full, per-job deadlines wired into Planner.PlanContext,
// a problem-fingerprint plan cache so identical re-submissions return the
// finished plan instantly, atomic JSON persistence of completed jobs so a
// restarted server re-serves them, graceful drain on shutdown, and full
// observability (nptsn_service_* metrics plus JSON-lines lifecycle
// events).
package service

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/nbf"
	"repro/internal/serialize"
)

// State is a job's lifecycle state.
type State string

// The five job states. Queued and Running are live; the rest are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Provenance values: where a job's plan came from. Result.Provenance
// records how the plan was COMPUTED (zoo, warm, trained) and is preserved
// verbatim when the plan cache re-serves it; Status.Provenance addition-
// ally reports "cache" for jobs answered from the cache without running.
const (
	// ProvenanceZoo marks a plan produced by an inference-only greedy
	// rollout of a pretrained zoo policy — zero training epochs, accepted
	// by the certifier.
	ProvenanceZoo = "zoo"
	// ProvenanceWarm marks a plan trained warm-started from a base plan.
	ProvenanceWarm = "warm"
	// ProvenanceCache marks a job answered from the plan cache; the
	// attached Result keeps the original computation's provenance.
	ProvenanceCache = "cache"
	// ProvenanceTrained marks a plan trained from scratch.
	ProvenanceTrained = "trained"
)

// PlanParams are the per-job training-budget knobs, mirroring the nptsn
// CLI flags. Zero values take the CLI defaults; GCNLayers and
// AnalyzerCache are pointers because 0 is a meaningful setting for both
// (the GCN-0 ablation and a disabled verdict cache).
type PlanParams struct {
	Epochs          int   `json:"epochs,omitempty"`
	Steps           int   `json:"steps,omitempty"`
	K               int   `json:"k,omitempty"`
	GCNLayers       *int  `json:"gcnLayers,omitempty"`
	MLPWidth        int   `json:"mlpWidth,omitempty"`
	Workers         int   `json:"workers,omitempty"`
	AnalyzerWorkers int   `json:"analyzerWorkers,omitempty"`
	AnalyzerCache   *int  `json:"analyzerCache,omitempty"`
	Seed            int64 `json:"seed,omitempty"`
	// TimeoutSec bounds the job's run time (0 = the server's default).
	TimeoutSec float64 `json:"timeoutSec,omitempty"`
}

// normalizedParams is PlanParams with every default applied — the
// canonical form that both the planner configuration and the cache
// fingerprint are derived from.
type normalizedParams struct {
	Epochs, Steps, K, GCNLayers, MLPWidth   int
	Workers, AnalyzerWorkers, AnalyzerCache int
	Seed                                    int64
	TimeoutSec                              float64
}

// normalized applies the CLI-default values to every unset knob.
func (p PlanParams) normalized() normalizedParams {
	n := normalizedParams{
		Epochs: p.Epochs, Steps: p.Steps, K: p.K,
		GCNLayers: 2, MLPWidth: p.MLPWidth,
		Workers: p.Workers, AnalyzerWorkers: p.AnalyzerWorkers,
		AnalyzerCache: 32768, Seed: p.Seed, TimeoutSec: p.TimeoutSec,
	}
	if p.GCNLayers != nil {
		n.GCNLayers = *p.GCNLayers
	}
	if p.AnalyzerCache != nil {
		n.AnalyzerCache = *p.AnalyzerCache
	}
	if n.Epochs == 0 {
		n.Epochs = 32
	}
	if n.Steps == 0 {
		n.Steps = 256
	}
	if n.K == 0 {
		n.K = 16
	}
	if n.MLPWidth == 0 {
		n.MLPWidth = 256
	}
	if n.Workers == 0 {
		n.Workers = 1
	}
	if n.AnalyzerWorkers == 0 {
		n.AnalyzerWorkers = 1
	}
	if n.Seed == 0 {
		n.Seed = 1
	}
	return n
}

// EffectiveConfig resolves the parameters to the planner configuration a
// job submitted with them trains under, every default applied. Pretraining
// pipelines use it to shape zoo policies so that serve-time geometry
// lookups match what the submitting request will induce.
func (p PlanParams) EffectiveConfig() core.Config { return p.normalized().config() }

// config builds the planner configuration for the normalized knobs.
func (n normalizedParams) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.GCNLayers = n.GCNLayers
	cfg.MLPHidden = []int{n.MLPWidth, n.MLPWidth}
	cfg.K = n.K
	cfg.MaxEpoch = n.Epochs
	cfg.MaxStep = n.Steps
	cfg.Workers = n.Workers
	cfg.AnalyzerWorkers = n.AnalyzerWorkers
	cfg.AnalyzerCacheSize = n.AnalyzerCache
	cfg.Seed = n.Seed
	return cfg
}

// Request is the body of POST /v1/jobs: a problem spec in the same JSON
// form the CLIs exchange, planning knobs, and the certification switch.
//
// Incremental re-planning: instead of (or alongside) an inline Problem, a
// request may reference a prior job via Base and describe the change via
// Delta. The server resolves the base spec (from its job store, or the
// inline Problem when both are present — then Problem is the BASE spec,
// not the derived one), applies the delta, and warm-starts planning from
// the base plan when it is still in the plan cache.
type Request struct {
	Problem serialize.ProblemJSON `json:"problem,omitempty"`
	// Base references the job whose spec (and cached plan) this request
	// derives from: a 16-hex job ID or a 32-hex plan-cache fingerprint.
	// Empty for from-scratch requests.
	Base string `json:"base,omitempty"`
	// Delta is the spec diff applied to the base problem. A nil Delta with
	// a non-empty Base means "re-plan the base unchanged" (normally a pure
	// cache hit).
	Delta  *serialize.DeltaJSON `json:"delta,omitempty"`
	Params PlanParams           `json:"params,omitempty"`
	// Certify runs the independent certification audit on the winning
	// plan before the job is marked done (also settable via ?certify=1).
	Certify bool `json:"certify,omitempty"`
	// CertifySamples is the Monte Carlo trial count of the audit
	// (0 = 256, the certifier default).
	CertifySamples int `json:"certifySamples,omitempty"`
}

// IsDelta reports whether the request references a base job instead of
// being fully self-contained.
func (r Request) IsDelta() bool { return r.Base != "" }

// HasInlineProblem reports whether the request carries a problem spec of
// its own (delta requests may rely entirely on the server-side base).
func (r Request) HasInlineProblem() bool {
	return len(r.Problem.Connections.Vertices) > 0
}

// Derive resolves a delta request into the self-contained request the
// planner actually runs, given the base problem spec: the delta is applied
// to baseProblem, and Base/Delta are cleared. Params and the certify
// switches are kept from the delta request itself. Non-delta requests are
// returned unchanged.
func (r Request) Derive(baseProblem serialize.ProblemJSON) (Request, error) {
	if !r.IsDelta() {
		return r, nil
	}
	out := r
	out.Base = ""
	out.Delta = nil
	if r.Delta == nil {
		out.Problem = baseProblem
		return out, nil
	}
	derived, err := serialize.ApplyDelta(baseProblem, *r.Delta)
	if err != nil {
		return Request{}, err
	}
	out.Problem = derived
	return out, nil
}

// Progress is a job's live training progress, fed from the planner's
// per-epoch Progress callback.
type Progress struct {
	// Epoch is the last completed training epoch (0 before the first).
	Epoch int `json:"epoch"`
	// TotalEpochs is the job's configured training horizon.
	TotalEpochs int `json:"totalEpochs"`
	// BestCost is the best solution cost found so far (0 when none yet).
	BestCost float64 `json:"bestCost"`
	// GuaranteeMet reports whether any valid solution has been recorded.
	GuaranteeMet bool `json:"guaranteeMet"`
	// Reward is the last epoch's mean trajectory reward.
	Reward float64 `json:"reward"`
	// Solutions counts valid solutions recorded so far.
	Solutions int `json:"solutions"`
}

// Status is the client-visible snapshot of a job.
type Status struct {
	ID          string     `json:"id"`
	State       State      `json:"state"`
	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`
	Progress    Progress   `json:"progress"`
	// Error explains failed and cancelled states.
	Error string `json:"error,omitempty"`
	// CacheHit marks a job answered instantly from the plan cache.
	CacheHit bool `json:"cacheHit,omitempty"`
	Certify  bool `json:"certify,omitempty"`
	// Attempts counts the server lives that have started this job; 0 for
	// jobs that never survived a restart (the common case), ≥1 after the
	// crash-recovery journal re-queued it.
	Attempts int `json:"attempts,omitempty"`
	// Fingerprint is the cache key over the canonicalized problem spec and
	// planning configuration.
	Fingerprint string `json:"fingerprint"`
	// Base is the resolved base fingerprint for delta jobs (empty for
	// from-scratch jobs).
	Base string `json:"base,omitempty"`
	// Warm reports the warm-start pruning outcome once planning began with
	// a seed from the base plan; nil when the job ran cold (no base, base
	// plan not cached, or the seed failed to build).
	Warm *core.WarmStartInfo `json:"warm,omitempty"`
	// Provenance reports where this job's answer came from: "zoo", "warm",
	// "cache" or "trained" (empty while the job has no answer yet).
	Provenance string `json:"provenance,omitempty"`
	// Chain is the ordered attempt chain the job went through ("zoo",
	// "warm", "cold"): a zoo rollout whose certificate failed falls back
	// to training, and both attempts stay visible here.
	Chain []string `json:"chain,omitempty"`
}

// Result is a finished job's outcome, served by GET /v1/jobs/{id}/result
// and persisted for restart re-serving.
type Result struct {
	JobID        string                  `json:"jobId"`
	Fingerprint  string                  `json:"fingerprint"`
	GuaranteeMet bool                    `json:"guaranteeMet"`
	Cost         float64                 `json:"cost,omitempty"`
	Epochs       int                     `json:"epochs"`
	Interrupted  bool                    `json:"interrupted,omitempty"`
	Solution     *serialize.SolutionJSON `json:"solution,omitempty"`
	Certificate  *certify.Certificate    `json:"certificate,omitempty"`
	RunSeconds   float64                 `json:"runSeconds"`
	// Provenance records how the plan was computed ("zoo", "warm",
	// "trained"); plan-cache re-serves preserve it verbatim, so a client
	// can always attribute the plan's origin.
	Provenance string `json:"provenance,omitempty"`
}

// job is the manager's internal mutable job record.
type job struct {
	// Immutable after creation.
	id          string
	fingerprint string
	prob        *core.Problem
	cfg         core.Config
	certify     bool
	certSamples int
	timeout     time.Duration

	// req is the submission the planner runs — for delta requests, the
	// DERIVED self-contained form. Journaled alongside non-terminal states
	// so a restarted server can re-queue the job (and with done states so
	// the spec can seed future deltas); attempts counts how many server
	// lives have started it.
	req      *Request
	attempts int
	// base is the resolved base fingerprint for delta jobs; warm is the
	// base plan decoded against the derived problem (nil = plan cold).
	base string
	warm *core.Solution

	mu              sync.Mutex
	state           State
	submitted       time.Time
	started         time.Time
	finished        time.Time
	progress        Progress
	errMsg          string
	cacheHit        bool
	cancel          func() // non-nil while running
	cancelRequested bool
	result          *Result
	// warmInfo is filled by the planner's OnWarmStart hook once the run
	// actually seeded from the base plan.
	warmInfo *core.WarmStartInfo
	// lastBeat is the job's liveness heartbeat while running: bumped at
	// start and on every planner Progress callback; the stuck-job watchdog
	// fails jobs whose heartbeat goes quiet for Options.StuckTimeout.
	lastBeat time.Time
	// stalled marks a job the watchdog cancelled; the terminal transition
	// maps it to StateFailed rather than StateCancelled.
	stalled bool
	// provenance is where the job's answer came from (Provenance*
	// constants); chain is the ordered list of planning stages attempted
	// ("zoo", "warm", "cold").
	provenance string
	chain      []string

	// terminal is closed exactly once when the job reaches a terminal
	// state; drain and tests wait on it.
	terminal chan struct{}
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: job id entropy: %v", err)) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// status snapshots the job under its lock.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:          j.id,
		State:       j.state,
		SubmittedAt: j.submitted,
		Progress:    j.progress,
		Error:       j.errMsg,
		CacheHit:    j.cacheHit,
		Certify:     j.certify,
		Attempts:    j.attempts,
		Fingerprint: j.fingerprint,
		Base:        j.base,
		Provenance:  j.provenance,
		Chain:       append([]string(nil), j.chain...),
	}
	if j.warmInfo != nil {
		w := *j.warmInfo
		s.Warm = &w
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}

// noteAttempt appends one planning stage to the job's attempt chain and
// bumps the liveness heartbeat (each stage is fresh work as far as the
// stuck-job watchdog is concerned).
func (j *job) noteAttempt(stage string) {
	j.mu.Lock()
	j.chain = append(j.chain, stage)
	j.lastBeat = time.Now()
	j.mu.Unlock()
}

// setProvenance records where the job's answer came from.
func (j *job) setProvenance(p string) {
	j.mu.Lock()
	j.provenance = p
	j.mu.Unlock()
}

// prepared bundles everything Submit derives from a request before the
// job enters the queue.
type prepared struct {
	prob        *core.Problem
	cfg         core.Config
	fingerprint string
	certify     bool
	certSamples int
	timeout     time.Duration
}

// prepare validates and canonicalizes a request: the problem spec is
// decoded and re-encoded (so field order, flow order artifacts or spec
// formatting cannot split the cache), the planner configuration is built
// with defaults applied, a planner construction dry-run surfaces invalid
// spec/config combinations at submit time, and the plan-cache fingerprint
// is computed over the canonical form.
func prepare(req Request) (prepared, error) {
	prob, err := serialize.DecodeProblem(req.Problem, nbf.NewRegistry())
	if err != nil {
		return prepared{}, fmt.Errorf("problem spec: %w", err)
	}
	n := req.Params.normalized()
	cfg := n.config()
	if _, err := core.NewPlanner(prob, cfg); err != nil {
		return prepared{}, fmt.Errorf("planner config: %w", err)
	}
	canonical, err := json.Marshal(serialize.EncodeProblem(prob, req.Problem.NBF))
	if err != nil {
		return prepared{}, fmt.Errorf("canonicalize problem: %w", err)
	}
	certSamples := req.CertifySamples
	if certSamples == 0 {
		certSamples = 256
	}
	return prepared{
		prob:        prob,
		cfg:         cfg,
		fingerprint: jobFingerprint(canonical, n, req.Certify, certSamples),
		certify:     req.Certify,
		certSamples: certSamples,
		timeout:     time.Duration(n.TimeoutSec * float64(time.Second)),
	}, nil
}

// Fingerprint validates req exactly the way Submit does and returns the
// plan-cache fingerprint Submit would assign to it — the problem identity
// the fleet coordinator shards on and adopts by. Two requests share a
// fingerprint exactly when a finished plan for one answers the other.
//
// For a delta request the fingerprint is that of the DERIVED problem, so
// it only computes when the request carries its base spec inline; a
// base-by-reference request must be resolved by a Manager first. The warm
// start is deliberately not part of the fingerprint: warm and cold runs of
// the same derived problem answer the same question, and an empty delta
// must land on the base's own cache entry.
func Fingerprint(req Request) (string, error) {
	if req.IsDelta() {
		if !req.HasInlineProblem() {
			return "", fmt.Errorf("delta request has no inline base problem; only the serving manager can resolve base %q", req.Base)
		}
		derived, err := req.Derive(req.Problem)
		if err != nil {
			return "", fmt.Errorf("delta: %w", err)
		}
		req = derived
	}
	prep, err := prepare(req)
	if err != nil {
		return "", err
	}
	return prep.fingerprint, nil
}

// jobFingerprint digests the canonical problem encoding plus every
// outcome-relevant parameter with the failure analyzer's 128-bit content
// hash. Two requests share a fingerprint exactly when a finished plan for
// one is a valid answer for the other. TimeoutSec is excluded: it bounds
// wall clock, not the (deterministic) trajectory, and interrupted results
// are never cached.
func jobFingerprint(canonicalProblem []byte, n normalizedParams, doCertify bool, certSamples int) string {
	d := failure.NewDigest()
	d.Str("nptsn-service-job-v1")
	d.Bytes(canonicalProblem)
	d.Int(n.Epochs)
	d.Int(n.Steps)
	d.Int(n.K)
	d.Int(n.GCNLayers)
	d.Int(n.MLPWidth)
	d.Int(n.Workers)
	d.Int(n.AnalyzerWorkers)
	d.Int(n.AnalyzerCache)
	d.Int64(n.Seed)
	d.Bool(doCertify)
	if doCertify {
		d.Int(certSamples)
	}
	return d.Sum()
}
