package service

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/serialize"
)

// shutdown drains a manager created without newTestManager (the restart
// tests need to stop the first instance mid-test).
func shutdown(t testing.TB, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// submitAndFinish submits a request and waits for its terminal status.
func submitAndFinish(t testing.TB, m *Manager, req Request) Status {
	t.Helper()
	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("job %s finished %s: %s", st.ID, final.State, final.Error)
	}
	return final
}

// TestEmptyDeltaBitIdenticalToBase is the differential contract: a delta
// request that changes nothing must reproduce the base job's fingerprint,
// be answered from its plan cache entry, and carry a bit-identical result
// — whether the delta is absent or explicitly empty, and whether the base
// is referenced by job ID or by fingerprint.
func TestEmptyDeltaBitIdenticalToBase(t *testing.T) {
	m := newTestManager(t, Options{})

	base := submitAndFinish(t, m, tinyRequest(t))
	baseRes, err := m.Result(base.ID)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		req  Request
	}{
		{"by-job-id-nil-delta", Request{Base: base.ID}},
		{"by-job-id-empty-delta", Request{Base: base.ID, Delta: &serialize.DeltaJSON{}}},
		{"by-fingerprint", Request{Base: base.Fingerprint}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := m.Submit(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if st.Fingerprint != base.Fingerprint {
				t.Fatalf("empty delta fingerprint %s, base %s", st.Fingerprint, base.Fingerprint)
			}
			if !st.CacheHit {
				t.Fatal("empty delta was not answered from the plan cache")
			}
			if st.Base != base.Fingerprint {
				t.Fatalf("status.Base = %q, want the base fingerprint", st.Base)
			}
			res, err := m.Result(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			// Bit-identical modulo the job's own ID.
			a, b := *baseRes, *res
			a.JobID, b.JobID = "", ""
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			if string(ja) != string(jb) {
				t.Fatalf("empty-delta result differs from base:\nbase: %s\ngot:  %s", ja, jb)
			}
		})
	}
}

// TestDeltaJobWarmStartsAndCertifies covers the tentpole end to end: a
// real spec diff resolves against the base job, warm-starts from its
// cached plan, and the derived job's solution still certifies.
func TestDeltaJobWarmStartsAndCertifies(t *testing.T) {
	m := newTestManager(t, Options{})

	base := submitAndFinish(t, m, tinyRequest(t))

	// Remove one flow: the base plan survives the delta, so the warm seed
	// instant-solves and the job reports what it inherited.
	st := submitAndFinish(t, m, Request{
		Base:  base.ID,
		Delta: &serialize.DeltaJSON{RemoveFlows: []int{2}},
	})
	if st.Fingerprint == base.Fingerprint {
		t.Fatal("a real delta must not share the base fingerprint")
	}
	if st.Base != base.Fingerprint {
		t.Fatalf("status.Base = %q, want %q", st.Base, base.Fingerprint)
	}
	if st.Warm == nil {
		t.Fatal("delta job has no warm-start info")
	}
	if !st.Warm.SeedSolved {
		t.Fatalf("surviving seed did not instant-solve: %+v", st.Warm)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GuaranteeMet || res.Solution == nil {
		t.Fatalf("delta job result: %+v", res)
	}
	if res.Epochs != 0 {
		t.Fatalf("instant-solved delta trained %d epochs", res.Epochs)
	}
}

func TestDeltaBaseNotFound(t *testing.T) {
	m := newTestManager(t, Options{})

	if _, err := m.Submit(Request{Base: "0123456789abcdef"}); !errors.Is(err, ErrBaseNotFound) {
		t.Fatalf("unknown job base: got %v, want ErrBaseNotFound", err)
	}
	if _, err := m.Submit(Request{Base: "0123456789abcdef0123456789abcdef"}); !errors.Is(err, ErrBaseNotFound) {
		t.Fatalf("unknown fingerprint base: got %v, want ErrBaseNotFound", err)
	}
	if _, err := m.Submit(Request{Base: "zzz"}); err == nil || errors.Is(err, ErrBaseNotFound) {
		t.Fatalf("malformed base: got %v, want a validation error", err)
	}

	// An unknown base WITH an inline base problem plans cold instead.
	req := tinyRequest(t)
	req.Base = "0123456789abcdef0123456789abcdef"
	req.Delta = &serialize.DeltaJSON{RemoveFlows: []int{2}}
	st := submitAndFinish(t, m, req)
	if st.Warm != nil {
		t.Fatal("cold fallback still reported warm info")
	}
}

// TestDeleteThenResubmitServesCachedResult is the S1 regression: deleting
// a job record must not evict its plan-cache entry, and after a restart a
// manager whose only surviving record is a cache-hit copy must still
// reseed the cache from it.
func TestDeleteThenResubmitServesCachedResult(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	base := submitAndFinish(t, m1, tinyRequest(t))

	// A duplicate submission is a cache hit carrying a full result copy.
	dup, err := m1.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.CacheHit {
		t.Fatal("duplicate submission missed the cache")
	}

	// Delete the ORIGINAL record; the cache entry must survive.
	if err := m1.Delete(base.ID); err != nil {
		t.Fatal(err)
	}
	again, err := m1.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("delete of the original record evicted the plan cache entry")
	}
	shutdown(t, m1)

	// Restart over the same dir. The original record is gone from disk too;
	// only cache-hit copies remain. The cache (and the delta spec registry)
	// must reseed from them.
	m2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, m2)
	after, err := m2.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if !after.CacheHit {
		t.Fatal("restart with only cache-hit records lost the plan cache entry")
	}
	// Delta resolution against the reseeded spec registry works too.
	del, err := m2.Submit(Request{Base: base.Fingerprint})
	if err != nil {
		t.Fatal(err)
	}
	if !del.CacheHit || del.Fingerprint != base.Fingerprint {
		t.Fatalf("empty delta against reseeded spec registry: %+v", del)
	}
}
