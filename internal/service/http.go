package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/obsv"
)

// maxRequestBody bounds POST /v1/jobs bodies (problem specs are a few
// hundred KB at ORION scale; 16 MiB leaves generous headroom).
const maxRequestBody = 16 << 20

// NewMux builds the service's HTTP API on a standard mux:
//
//	POST   /v1/jobs             submit a job (?certify=1 forces the audit)
//	GET    /v1/jobs             list jobs in submission order
//	GET    /v1/jobs/{id}        status + live training progress
//	GET    /v1/jobs/{id}/result finished plan (409 while the job is live)
//	DELETE /v1/jobs/{id}        cancel a live job / delete a terminal one
//	GET    /metrics, /healthz   when reg is non-nil
//
// Every route is wrapped in obsv.WithRequestLog, so per-route request
// counts and latency histograms land on the same registry as the
// nptsn_service_* job metrics.
func NewMux(mgr *Manager, reg *obsv.Registry) *http.ServeMux {
	api := &apiServer{mgr: mgr}
	mux := http.NewServeMux()
	wrap := func(route string, h http.HandlerFunc) http.Handler {
		return obsv.WithRequestLog(reg, route, h)
	}
	mux.Handle("POST /v1/jobs", wrap("/v1/jobs", api.submit))
	mux.Handle("GET /v1/jobs", wrap("/v1/jobs", api.list))
	mux.Handle("GET /v1/jobs/{id}", wrap("/v1/jobs/{id}", api.get))
	mux.Handle("GET /v1/jobs/{id}/result", wrap("/v1/jobs/{id}/result", api.result))
	mux.Handle("DELETE /v1/jobs/{id}", wrap("/v1/jobs/{id}", api.delete))
	if reg != nil {
		mux.Handle("GET /metrics", obsv.WithRequestLog(reg, "/metrics", obsv.MetricsHandler(reg)))
		mux.Handle("GET /healthz", obsv.WithRequestLog(reg, "/healthz", obsv.HealthHandler()))
	}
	return mux
}

type apiServer struct {
	mgr *Manager
}

func (a *apiServer) submit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("request body: %v", err))
		return
	}
	if r.URL.Query().Get("certify") == "1" {
		req.Certify = true
	}
	st, err := a.mgr.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure: tell the client when to come back. The estimate
		// paces the current backlog by recent run durations; its 1-second
		// floor stands before any run has finished — planning jobs run for
		// seconds to hours, so an earlier retry cannot succeed.
		w.Header().Set("Retry-After", strconv.Itoa(a.mgr.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrPoisoned):
		// The request is well-formed but this exact job has panicked the
		// planner repeatedly; re-running it cannot help.
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	case errors.Is(err, ErrBaseNotFound):
		// A delta request whose base this server does not know and that
		// carries no inline base spec to fall back on.
		writeError(w, http.StatusNotFound, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
	case st.CacheHit:
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (a *apiServer) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.mgr.List())
}

func (a *apiServer) get(w http.ResponseWriter, r *http.Request) {
	st, err := a.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (a *apiServer) result(w http.ResponseWriter, r *http.Request) {
	res, err := a.mgr.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrNotTerminal):
		writeError(w, http.StatusConflict, err.Error())
	case err != nil:
		// Terminal without a usable result: failed / cancelled.
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (a *apiServer) delete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := a.mgr.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if st.State.Terminal() {
		if err := a.mgr.Delete(id); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	st, err = a.mgr.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; nothing useful left on error
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
