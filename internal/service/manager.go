package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/fault"
	"repro/internal/obsv"
	"repro/internal/serialize"
	"repro/internal/zoo"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned when the waiting queue is at capacity
	// (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrDraining is returned once shutdown has begun (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrNotFound is returned for unknown job IDs (HTTP 404).
	ErrNotFound = errors.New("service: no such job")
	// ErrNotTerminal is returned when a result is requested before the
	// job finished (HTTP 409).
	ErrNotTerminal = errors.New("service: job has not finished")
	// ErrPoisoned is returned for submissions whose fingerprint has
	// panicked the planner Options.PoisonPanics times — a reproducible
	// crasher that re-running cannot fix (HTTP 422).
	ErrPoisoned = errors.New("service: job fingerprint is quarantined after repeated panics")
	// ErrBaseNotFound is returned for delta submissions whose base
	// reference resolves to nothing this server knows — no job with that
	// ID, no spec with that fingerprint — and that carry no inline base
	// problem to fall back on (HTTP 404).
	ErrBaseNotFound = errors.New("service: delta base not found")
)

// Options configures a Manager.
type Options struct {
	// Workers is the number of jobs planned concurrently (default 1).
	// Each job additionally runs its own exploration goroutines
	// (PlanParams.Workers), so total parallelism is the product.
	Workers int
	// QueueSize bounds the waiting queue (default 16). With w Workers the
	// service holds at most w running + QueueSize waiting jobs; beyond
	// that, Submit returns ErrQueueFull.
	QueueSize int
	// Dir, when non-empty, persists every terminal job as an atomic JSON
	// record and re-serves the records (and re-seeds the plan cache) on
	// restart. Empty keeps everything in memory.
	Dir string
	// DefaultTimeout bounds each job's planning run unless the request
	// carries its own TimeoutSec (0 = unbounded).
	DefaultTimeout time.Duration
	// StuckTimeout arms the stuck-job watchdog: a running job whose
	// progress heartbeat (one beat per completed training epoch) goes
	// quiet for this long is cancelled and marked failed. Zero disables
	// the watchdog. Set it well above the expected epoch duration — and
	// above the certification audit, which beats only once at its start.
	StuckTimeout time.Duration
	// MaxAttempts bounds how many server lives may start the same
	// journaled job: a job interrupted by crashes this many times is
	// failed on the next boot instead of re-queued (default 3).
	MaxAttempts int
	// PoisonPanics is the per-fingerprint panic budget: once planning a
	// fingerprint has panicked this many times, further submissions of it
	// are refused with ErrPoisoned (default 3).
	PoisonPanics int
	// VerdictCacheSize bounds the server-wide failure-analysis verdict
	// cache every planning run shares (0 = 65536 entries, negative =
	// disabled, falling back to each job's own AnalyzerCache). Verdict
	// keys include the full problem context, so sharing across jobs is
	// safe and never changes a run's trajectory; its payoff is delta
	// re-planning, where most of a base plan's scenarios recur verbatim.
	VerdictCacheSize int
	// Progress, when non-nil, observes every job's per-epoch progress
	// (after the job's own status/heartbeat bookkeeping). It is called
	// outside all engine locks and — unlike the raw planner callback — a
	// slow or blocking observer does not starve the job's heartbeat: the
	// manager keeps beating on the job's behalf while the observer runs,
	// so the stuck-job watchdog only fires on genuinely stuck planning.
	Progress func(jobID string, es core.EpochStats)
	// Fault, when non-nil, arms deterministic fault injection across the
	// engine: filesystem faults in the record store and panic/hang/delay
	// faults in the planning path (fault.PointPlan once per job run,
	// fault.PointExplore once per exploration worker round). Nil in
	// production.
	Fault *fault.Injector
	// Metrics receives the nptsn_service_* series and, shared with every
	// job's planner, the nptsn_* training series. Nil disables metrics.
	Metrics *obsv.Registry
	// Events receives JSON-lines job lifecycle events (see the Event*
	// constants). Unlike the planner's sink, an emission error does not
	// abort anything; it is counted on nptsn_service_event_errors_total.
	Events obsv.Sink
	// Zoo, when non-nil, arms the inference-only fast path: before
	// training a job, the manager looks up the nearest geometry-compatible
	// pretrained policy, rolls it out greedily, and serves the plan with
	// zero training epochs when the certifier accepts it. A rejected or
	// missing candidate falls back to warm/cold training; the attempt
	// chain is recorded on the job's status.
	Zoo *zoo.Zoo

	// testBeforeRun seeds Manager.testBeforeRun before the worker pool
	// starts — the only way for tests to intercept jobs re-queued from the
	// journal during New, which may begin running before New returns.
	testBeforeRun func(*job)
	// testZooTamper, when set by tests, mutates the zoo rollout's candidate
	// solution before the accept gate — the deterministic way to force a
	// certificate failure and exercise the zoo → warm/cold fallback.
	testZooTamper func(*core.Solution)
}

// Manager is the planning job engine: a bounded queue feeding a fixed
// worker pool of independent Planners, with a fingerprint plan cache in
// front and a persistent result store behind.
type Manager struct {
	opt Options
	met *metrics

	// verdicts is the server-wide shared analyzer cache (nil when
	// disabled); immutable after New.
	verdicts *failure.Cache

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string            // submission order, for List
	cache    map[string]*Result  // fingerprint → finished result
	specs    map[string]*Request // fingerprint → self-contained request spec, for delta bases
	panics   map[string]int      // fingerprint → contained planning panics
	draining bool
	// recent is a ring of the last recentRunWindow run durations, feeding
	// the Retry-After estimate; recentIdx is the next overwrite slot.
	recent    []time.Duration
	recentIdx int

	queue     chan *job
	wg        sync.WaitGroup // worker goroutines
	watchStop chan struct{}  // closed by Shutdown; stops the watchdog

	// testBeforeRun, when set by tests, runs after a job transitions to
	// running and before planning starts — the hook tests use to hold a
	// job in the running state deterministically.
	testBeforeRun func(*job)
	// testZooTamper mirrors Options.testZooTamper.
	testZooTamper func(*core.Solution)
}

// New builds a Manager, loads persisted records when Options.Dir is set
// (quarantining undecodable files, re-serving terminal jobs, re-queuing
// journaled live jobs from earlier lives of the server), and starts the
// worker pool and — when StuckTimeout is set — the stuck-job watchdog.
func New(opt Options) (*Manager, error) {
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.QueueSize <= 0 {
		opt.QueueSize = 16
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 3
	}
	if opt.PoisonPanics <= 0 {
		opt.PoisonPanics = 3
	}
	if opt.VerdictCacheSize == 0 {
		opt.VerdictCacheSize = 65536
	}
	var recs []record
	var quarantined []string
	if opt.Dir != "" {
		var err error
		recs, quarantined, err = loadRecords(opt.Dir)
		if err != nil {
			return nil, err
		}
	}
	m := &Manager{
		opt:           opt,
		met:           newMetrics(opt.Metrics),
		jobs:          make(map[string]*job),
		cache:         make(map[string]*Result),
		specs:         make(map[string]*Request),
		panics:        make(map[string]int),
		watchStop:     make(chan struct{}),
		testBeforeRun: opt.testBeforeRun,
		testZooTamper: opt.testZooTamper,
	}
	if opt.Zoo != nil {
		m.met.setZooSize(opt.Zoo.Len())
	}
	if opt.VerdictCacheSize > 0 {
		m.verdicts = failure.NewCache(opt.VerdictCacheSize)
	}
	var pending []record
	for _, rec := range recs {
		if !rec.Status.State.Terminal() {
			pending = append(pending, rec)
			continue
		}
		j := &job{
			id:          rec.Status.ID,
			fingerprint: rec.Status.Fingerprint,
			certify:     rec.Status.Certify,
			attempts:    rec.Attempts,
			state:       rec.Status.State,
			submitted:   rec.Status.SubmittedAt,
			progress:    rec.Status.Progress,
			errMsg:      rec.Status.Error,
			cacheHit:    rec.Status.CacheHit,
			provenance:  rec.Status.Provenance,
			chain:       rec.Status.Chain,
			result:      rec.Result,
			terminal:    make(chan struct{}),
		}
		if rec.Status.StartedAt != nil {
			j.started = *rec.Status.StartedAt
		}
		if rec.Status.FinishedAt != nil {
			j.finished = *rec.Status.FinishedAt
		}
		close(j.terminal)
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		// Re-seed the plan cache from done, uninterrupted results so a
		// re-submission after restart is still a hit. Cache-hit records
		// count too: they carry a full copy of the finished result, and the
		// record of the job that actually planned it may have been deleted —
		// excluding them used to orphan the fingerprint after a restart.
		if rec.Status.State == StateDone && rec.Result != nil && !rec.Result.Interrupted {
			m.cache[rec.Status.Fingerprint] = rec.Result
		}
		// Re-seed the spec registry so the fingerprint keeps working as a
		// delta base across restarts.
		if rec.Status.State == StateDone && rec.Request != nil {
			m.specs[rec.Status.Fingerprint] = rec.Request
		}
	}
	// Size the queue so every journaled live job fits on top of the
	// configured capacity: a restart must never drop accepted work to
	// backpressure.
	m.queue = make(chan *job, opt.QueueSize+len(pending))
	for _, rec := range pending {
		m.requeue(rec)
	}
	if len(quarantined) > 0 {
		m.met.addSkipped(len(quarantined))
		m.emit(obsv.Event{Type: EventStoreCorrupt, Msg: strings.Join(quarantined, "; "),
			V: map[string]float64{"records": float64(len(quarantined))}})
	}
	for i := 0; i < opt.Workers; i++ {
		m.wg.Add(1)
		go m.workerLoop()
	}
	if opt.StuckTimeout > 0 {
		go m.watchdog()
	}
	return m, nil
}

// requeue re-enters one journaled live job from a previous server life
// into the queue under its original ID, or fails it when the journal has
// been retried MaxAttempts times already (a job that crashes the server
// every time it runs must not crash-loop forever). Runs during New, before
// the worker pool starts.
func (m *Manager) requeue(rec record) {
	j := &job{
		id:          rec.Status.ID,
		fingerprint: rec.Status.Fingerprint,
		submitted:   rec.Status.SubmittedAt,
		attempts:    rec.Attempts + 1,
		terminal:    make(chan struct{}),
	}
	prep, err := prepare(*rec.Request)
	switch {
	case err != nil:
		// The journaled request prepared at submit time; if it no longer
		// does (a format change across the restart), fail it visibly
		// rather than dropping it.
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("restart recovery: %v", err)
		j.finished = time.Now().UTC()
		close(j.terminal)
	case j.attempts > m.opt.MaxAttempts:
		j.fingerprint = prep.fingerprint
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("abandoned: %d attempts were interrupted by crashes or restarts (max %d)",
			rec.Attempts, m.opt.MaxAttempts)
		j.finished = time.Now().UTC()
		close(j.terminal)
	default:
		j.fingerprint = prep.fingerprint
		j.prob = prep.prob
		j.cfg = prep.cfg
		j.certify = prep.certify
		j.certSamples = prep.certSamples
		j.timeout = prep.timeout
		j.req = rec.Request
		j.state = StateQueued
		j.progress.TotalEpochs = prep.cfg.MaxEpoch
		m.specs[prep.fingerprint] = rec.Request
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if j.state == StateQueued {
		m.queue <- j // capacity reserved above; never blocks
		m.met.incRequeued()
		m.met.addQueueDepth(1)
		m.emit(obsv.Event{Type: EventRequeued, Msg: j.id, V: map[string]float64{"attempt": float64(j.attempts)}})
	} else {
		m.met.incFailed()
		m.met.incPoisoned()
		m.emit(obsv.Event{Type: EventPoisoned, Msg: j.id, V: map[string]float64{"attempts": float64(rec.Attempts)}})
	}
	// Either way the on-disk journal advances: the attempt counter is
	// bumped before the job runs (so a crash loop counts every life), and
	// an abandoned job's terminal record replaces its journal entry.
	m.persist(j)
}

// Submit validates a request and either answers it from the plan cache or
// enqueues a new job. It returns the job's initial status snapshot.
//
// A delta request (Request.Base set) is first resolved into its derived
// self-contained form: the base spec comes from the server's spec registry
// (or the inline Problem), the delta is applied, and — when the base plan
// is still in the plan cache — the job is armed to warm-start from it.
// The job's fingerprint is that of the derived problem, so an empty delta
// lands on the base's own cache entry and returns the base plan verbatim.
func (m *Manager) Submit(req Request) (Status, error) {
	baseFp := ""
	var warmSol *serialize.SolutionJSON
	if req.IsDelta() {
		derived, fp, sol, err := m.resolveDelta(req)
		if err != nil {
			return Status{}, err
		}
		req, baseFp, warmSol = derived, fp, sol
	}
	prep, err := prepare(req)
	if err != nil {
		return Status{}, err
	}
	var warm *core.Solution
	if warmSol != nil {
		// A base plan that no longer decodes against the derived problem
		// (e.g. it routed over a damaged link and DecodeSolution rejects the
		// edge) degrades to a cold run instead of failing the submission:
		// the warm start is an optimization, never a correctness gate.
		if ws, werr := serialize.DecodeSolution(*warmSol, prep.prob.Connections); werr == nil {
			warm = ws
		} else {
			m.met.incWarmDegraded()
			m.emit(obsv.Event{Type: EventWarmDegraded, Msg: baseFp + ": " + werr.Error()})
		}
	}
	j := &job{
		id:          newJobID(),
		fingerprint: prep.fingerprint,
		prob:        prep.prob,
		cfg:         prep.cfg,
		certify:     prep.certify,
		certSamples: prep.certSamples,
		timeout:     prep.timeout,
		req:         &req,
		base:        baseFp,
		warm:        warm,
		state:       StateQueued,
		submitted:   time.Now().UTC(),
		terminal:    make(chan struct{}),
	}
	j.progress.TotalEpochs = prep.cfg.MaxEpoch

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Status{}, ErrDraining
	}
	if n := m.panics[j.fingerprint]; n >= m.opt.PoisonPanics {
		m.mu.Unlock()
		return Status{}, fmt.Errorf("%w (fingerprint %s, %d panics)", ErrPoisoned, j.fingerprint, n)
	}
	if res, ok := m.cache[j.fingerprint]; ok {
		// Cache hit: the job is born terminal, carrying a copy of the
		// finished result under its own ID.
		// The copied result keeps its original Provenance (how the plan was
		// computed); the job's own status says "cache".
		r := *res
		r.JobID = j.id
		j.state = StateDone
		j.cacheHit = true
		j.provenance = ProvenanceCache
		j.finished = j.submitted
		j.result = &r
		j.progress = Progress{
			Epoch:        r.Epochs,
			TotalEpochs:  prep.cfg.MaxEpoch,
			BestCost:     r.Cost,
			GuaranteeMet: r.GuaranteeMet,
		}
		close(j.terminal)
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.registerSpecLocked(j.fingerprint, &req)
		m.mu.Unlock()
		m.met.incCacheHit()
		m.met.incDone()
		m.emit(obsv.Event{Type: EventCacheHit, Msg: j.id})
		m.persist(j)
		return j.status(), nil
	}
	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.registerSpecLocked(j.fingerprint, &req)
		depth := len(m.queue)
		m.mu.Unlock()
		m.met.incCacheMiss()
		m.met.incSubmitted()
		m.met.addQueueDepth(1)
		m.emit(obsv.Event{Type: EventSubmitted, Msg: j.id, V: map[string]float64{"queue_depth": float64(depth)}})
		// Journal the accepted job (with its request) before answering 202:
		// from here on a crash must re-queue it, not lose it.
		m.persist(j)
		return j.status(), nil
	default:
		m.mu.Unlock()
		m.met.incRejected()
		m.emit(obsv.Event{Type: EventRejected, V: map[string]float64{"queue_size": float64(m.opt.QueueSize)}})
		return Status{}, ErrQueueFull
	}
}

// registerSpecLocked records an accepted request's self-contained spec
// under its fingerprint so later delta submissions can reference it.
// Caller holds m.mu.
func (m *Manager) registerSpecLocked(fp string, req *Request) {
	if _, ok := m.specs[fp]; !ok {
		m.specs[fp] = req
	}
}

// resolveDelta turns a delta request into its derived self-contained form.
// It returns the derived request, the resolved base fingerprint, and the
// base's cached plan when one exists (nil = the job will run cold).
//
// Base resolution: a 16-hex value names a job on this server (whose
// fingerprint is then used), a 32-hex value is a plan-cache fingerprint
// directly. The base spec comes from the spec registry; a request that
// also carries an inline Problem uses it as the base spec when the server
// has none — that is what lets a fleet replica that never saw the base job
// still plan the delta (cold) instead of failing it.
//
// The delta request inherits the base spec's Params (and certify switches)
// when it leaves them unset, so an empty delta reproduces the base job's
// fingerprint exactly and is answered from its cache entry.
func (m *Manager) resolveDelta(req Request) (Request, string, *serialize.SolutionJSON, error) {
	fp := req.Base
	switch len(req.Base) {
	case 16: // job ID
		j := m.lookup(req.Base)
		if j == nil {
			if !req.HasInlineProblem() {
				return Request{}, "", nil, fmt.Errorf("%w: no job %q", ErrBaseNotFound, req.Base)
			}
			fp = ""
		} else {
			fp = j.fingerprint
		}
	case 32: // plan-cache fingerprint
	default:
		return Request{}, "", nil, fmt.Errorf("base %q is neither a 16-hex job ID nor a 32-hex fingerprint", req.Base)
	}

	m.mu.Lock()
	var spec *Request
	var cached *Result
	if fp != "" {
		spec = m.specs[fp]
		cached = m.cache[fp]
	}
	m.mu.Unlock()

	var baseProblem serialize.ProblemJSON
	switch {
	case spec != nil:
		baseProblem = spec.Problem
	case req.HasInlineProblem():
		baseProblem = req.Problem
	default:
		return Request{}, "", nil, fmt.Errorf("%w: fingerprint %s has no spec on this server and the request has no inline base problem", ErrBaseNotFound, fp)
	}
	if spec != nil {
		if req.Params == (PlanParams{}) {
			req.Params = spec.Params
		}
		if !req.Certify && spec.Certify {
			req.Certify = true
			if req.CertifySamples == 0 {
				req.CertifySamples = spec.CertifySamples
			}
		}
	}
	derived, err := req.Derive(baseProblem)
	if err != nil {
		return Request{}, "", nil, fmt.Errorf("delta: %w", err)
	}
	m.met.incDelta()
	var warmSol *serialize.SolutionJSON
	if cached != nil && cached.Solution != nil && !cached.Interrupted {
		warmSol = cached.Solution
	}
	return derived, fp, warmSol, nil
}

// Get returns a job's status snapshot.
func (m *Manager) Get(id string) (Status, error) {
	j := m.lookup(id)
	if j == nil {
		return Status{}, ErrNotFound
	}
	return j.status(), nil
}

// Result returns a finished job's result. ErrNotTerminal is returned
// while the job is queued or running; a terminal job without a result
// (failed, cancelled) yields the status error message.
func (m *Manager) Result(id string) (*Result, error) {
	j := m.lookup(id)
	if j == nil {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, ErrNotTerminal
	}
	if j.result == nil {
		if j.errMsg != "" {
			return nil, fmt.Errorf("service: job %s %s: %s", id, j.state, j.errMsg)
		}
		return nil, fmt.Errorf("service: job %s %s without a result", id, j.state)
	}
	return j.result, nil
}

// List returns every known job's status in submission order (persisted
// jobs from earlier lives of the server included).
func (m *Manager) List() []Status {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel requests cancellation: a queued job turns cancelled immediately,
// a running job's context is cancelled (the planner stops at the next
// epoch boundary). Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	j := m.lookup(id)
	if j == nil {
		return Status{}, ErrNotFound
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = "cancelled while queued"
		j.finished = time.Now().UTC()
		close(j.terminal)
		j.mu.Unlock()
		m.met.incCancelled()
		m.emit(obsv.Event{Type: EventCancelled, Msg: j.id})
		m.persist(j)
	case StateRunning:
		j.cancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		j.mu.Unlock()
	}
	return j.status(), nil
}

// Delete removes a terminal job and its persisted record; live jobs must
// be cancelled first. The plan cache keeps the fingerprint entry: deleting
// a job record does not un-learn the plan.
func (m *Manager) Delete(id string) error {
	j := m.lookup(id)
	if j == nil {
		return ErrNotFound
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if !terminal {
		return fmt.Errorf("service: job %s is %s; cancel it first", id, j.status().State)
	}
	m.mu.Lock()
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	if m.opt.Dir != "" {
		return deleteRecord(m.opt.Dir, id)
	}
	return nil
}

// Shutdown drains the engine: submissions are rejected from the first
// call, queued jobs are cancelled, and running jobs are given until ctx
// expires to finish; after that their contexts are cancelled, which makes
// the planner return its best-so-far report (persisted like any other
// finished job). Shutdown returns once every worker has stopped; the
// returned error is ctx.Err() when the deadline forced an early cancel.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
		close(m.watchStop)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			j.mu.Lock()
			cancel := j.cancel
			j.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		}
		m.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (m *Manager) lookup(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// workerLoop runs queued jobs until the queue is closed and drained.
func (m *Manager) workerLoop() {
	defer m.wg.Done()
	for j := range m.queue {
		m.met.addQueueDepth(-1)
		m.runJob(j)
	}
}

// runJob executes one dequeued job end to end.
func (m *Manager) runJob(j *job) {
	// A job cancelled while queued, or dequeued during drain, never runs.
	// Checked before taking j.mu: every path locks m.mu → j.mu in that
	// order (Shutdown's running-job sweep holds m.mu while touching job
	// locks), so j.mu → m.mu here would be a lock-order inversion.
	draining := m.isDraining()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	if draining {
		j.state = StateCancelled
		j.errMsg = "cancelled by server drain while queued"
		j.finished = time.Now().UTC()
		close(j.terminal)
		j.mu.Unlock()
		m.met.incCancelled()
		m.emit(obsv.Event{Type: EventCancelled, Msg: j.id})
		m.persist(j)
		return
	}

	ctx := context.Background()
	var cancelTimeout context.CancelFunc
	timeout := j.timeout
	if timeout == 0 {
		timeout = m.opt.DefaultTimeout
	}
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, timeout)
	}
	ctx, cancel := context.WithCancel(ctx)
	if cancelTimeout != nil {
		origCancel := cancel
		cancel = func() { origCancel(); cancelTimeout() }
	}
	defer cancel()

	now := time.Now().UTC()
	j.state = StateRunning
	j.started = now
	j.lastBeat = now
	j.cancel = cancel
	wait := now.Sub(j.submitted)
	j.mu.Unlock()

	m.met.addRunning(1)
	defer m.met.addRunning(-1)
	m.met.observeWait(wait)
	m.emit(obsv.Event{Type: EventStart, Msg: j.id, V: map[string]float64{"wait_seconds": wait.Seconds()}})
	// Journal the running transition before planning starts, so a crash
	// mid-plan leaves a running record behind for the next boot to re-queue.
	m.persist(j)
	if m.testBeforeRun != nil {
		m.testBeforeRun(j)
	}

	res, errMsg := m.planSafe(ctx, j)

	j.mu.Lock()
	j.cancel = nil
	j.finished = time.Now().UTC()
	run := j.finished.Sub(j.started)
	cancelled := j.cancelRequested
	stalled := j.stalled
	switch {
	case stalled:
		// The watchdog cancelled a job whose heartbeat went quiet; that is
		// a failure of the job, not a client cancellation.
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("stalled: no progress heartbeat for %s; interrupted by the watchdog", m.opt.StuckTimeout)
		j.result = res
	case cancelled:
		j.state = StateCancelled
		j.errMsg = "cancelled"
		j.result = res // best-so-far, when the interrupted run had one
	case errMsg != "":
		j.state = StateFailed
		j.errMsg = errMsg
		j.result = res
	default:
		j.state = StateDone
		j.result = res
	}
	state := j.state
	close(j.terminal)
	j.mu.Unlock()

	m.met.observeRun(run)
	m.noteRun(run)
	ev := obsv.Event{Msg: j.id, V: map[string]float64{"run_seconds": run.Seconds()}}
	switch state {
	case StateDone:
		m.met.incDone()
		ev.Type = EventDone
		if res != nil && res.Solution != nil {
			ev.V["cost"] = res.Cost
		}
		// Only deterministic outcomes enter the cache: an interrupted run
		// (deadline, drain) could complete differently given more time.
		if res != nil && !res.Interrupted {
			m.mu.Lock()
			m.cache[j.fingerprint] = res
			m.mu.Unlock()
		}
	case StateCancelled:
		m.met.incCancelled()
		ev.Type = EventCancelled
	default:
		m.met.incFailed()
		ev.Type = EventFailed
	}
	m.emit(ev)
	m.persist(j)
}

// planSafe runs plan with per-job panic containment: a panicking planning
// run (a planner bug, or an injected service.plan fault) fails only its
// own job, and the worker goroutine survives to take the next one. Each
// contained panic counts against the job fingerprint's PoisonPanics
// budget; once exhausted, Submit refuses the fingerprint with ErrPoisoned
// instead of feeding a reproducible crasher to a worker again.
func (m *Manager) planSafe(ctx context.Context, j *job) (res *Result, errMsg string) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		res, errMsg = nil, fmt.Sprintf("panic: %v", r)
		m.met.incPanic()
		m.mu.Lock()
		m.panics[j.fingerprint]++
		n := m.panics[j.fingerprint]
		m.mu.Unlock()
		m.emit(obsv.Event{Type: EventPanic, Msg: j.id, V: map[string]float64{"fingerprint_panics": float64(n)}})
		if n == m.opt.PoisonPanics {
			m.met.incPoisoned()
			m.emit(obsv.Event{Type: EventPoisoned, Msg: j.fingerprint, V: map[string]float64{"panics": float64(n)}})
		}
	}()
	if f := m.opt.Fault; f != nil {
		f.Fire(ctx, fault.PointPlan)
	}
	return m.plan(ctx, j)
}

// plan runs the planner (and optionally the certifier) for one job,
// returning the result and an error message ("" on success).
//
// The attempt chain is zoo → warm → cold: a zoo-armed manager first tries
// an inference-only rollout of the nearest pretrained policy (certified
// plan with zero training epochs on success); a miss or a rejected
// candidate falls through to training, warm-started when the job carries a
// base plan.
func (m *Manager) plan(ctx context.Context, j *job) (*Result, string) {
	if m.opt.Zoo != nil {
		if res, ok := m.zooAttempt(ctx, j); ok {
			return res, ""
		}
	}
	if j.warm != nil {
		j.noteAttempt("warm")
	} else {
		j.noteAttempt("cold")
	}
	cfg := j.cfg
	cfg.Metrics = m.opt.Metrics // training series accumulate across jobs
	if m.verdicts != nil {
		// All jobs share the server-wide verdict cache; keys carry the full
		// problem context, so cross-job hits are sound. Delta re-plans are
		// the payoff: most of the base plan's scenarios recur verbatim.
		cfg.SharedAnalyzerCache = m.verdicts
	}
	if j.warm != nil {
		cfg.WarmStart = j.warm
		cfg.OnWarmStart = func(info core.WarmStartInfo) {
			j.mu.Lock()
			j.lastBeat = time.Now()
			j.warmInfo = &info
			j.mu.Unlock()
			m.met.incWarm()
			m.emit(obsv.Event{Type: EventWarmStart, Msg: j.id, V: map[string]float64{
				"seeded_links":  float64(info.SeededLinks),
				"dropped_links": float64(info.DroppedLinks),
				"seed_solved":   boolTo01(info.SeedSolved),
			}})
		}
	}
	cfg.Progress = func(es core.EpochStats) {
		j.mu.Lock()
		j.lastBeat = time.Now()
		j.progress.Epoch = es.Epoch
		j.progress.Reward = es.Reward
		j.progress.Solutions += es.Solutions
		if es.BestCost > 0 {
			j.progress.BestCost = es.BestCost
			j.progress.GuaranteeMet = true
		}
		j.mu.Unlock()
		if obs := m.opt.Progress; obs != nil {
			// The observer runs outside every engine lock, and the job keeps
			// its heartbeat through a proxy beater for as long as the
			// observer blocks: a slow dashboard must not get a healthy job
			// killed by the stuck-job watchdog. The planner itself holds no
			// locks during Progress, so blocking here stalls only this job's
			// training clock, never the engine.
			stop := m.beatWhile(j)
			defer stop()
			obs(j.id, es)
		}
	}
	if f := m.opt.Fault; f != nil {
		cfg.ExploreHook = func(ctx context.Context, epoch, worker int) {
			f.Fire(ctx, fault.PointExplore)
		}
	}
	planner, err := core.NewPlanner(j.prob, cfg)
	if err != nil {
		return nil, err.Error() // unreachable: Submit dry-ran the constructor
	}
	start := time.Now()
	report, err := planner.PlanContext(ctx)
	if err != nil {
		return nil, err.Error()
	}
	prov := ProvenanceTrained
	if j.warm != nil {
		prov = ProvenanceWarm
	}
	j.setProvenance(prov)
	res := &Result{
		JobID:        j.id,
		Fingerprint:  j.fingerprint,
		GuaranteeMet: report.GuaranteeMet(),
		Epochs:       len(report.Epochs),
		Interrupted:  report.Interrupted,
		RunSeconds:   time.Since(start).Seconds(),
		Provenance:   prov,
	}
	if report.Best != nil {
		// Verification runs on a fresh context: the job's deadline bounds
		// planning, and an interrupted run's best-so-far plan must still be
		// checked (and served) rather than failed on the expired context.
		if err := core.VerifySolutionContext(context.Background(), j.prob, report.Best); err != nil {
			return res, fmt.Sprintf("solution failed verification: %v", err)
		}
		sol := serialize.EncodeSolution(report.Best)
		res.Solution = &sol
		res.Cost = report.Best.Cost
	}
	if j.certify && report.Best != nil && !report.Interrupted {
		// One beat before the audit: certification emits no epoch progress,
		// so this marks the start of its watchdog allowance.
		j.mu.Lock()
		j.lastBeat = time.Now()
		j.mu.Unlock()
		c := &certify.Certifier{
			Prob: j.prob,
			Sol:  report.Best,
			Opt: certify.Options{
				Samples:         j.certSamples,
				Seed:            j.cfg.Seed,
				AnalyzerWorkers: j.cfg.AnalyzerWorkers,
			},
		}
		cert, err := c.Certify(ctx)
		if err != nil {
			return res, fmt.Sprintf("certification audit: %v", err)
		}
		res.Certificate = cert
		if !cert.OK() {
			return res, "solution failed independent certification"
		}
	}
	return res, ""
}

// zooRolloutStreams is how many independent greedy attempts a zoo rollout
// runs per job — enough to ride out one unlucky construction order, cheap
// next to a single training epoch.
const zooRolloutStreams = 4

// zooAttempt tries to answer the job from the policy zoo: nearest
// geometry-compatible policy by feature distance, greedy inference-only
// rollout, then the accept gate — plan verification plus the full
// certification audit, run unconditionally (a transferred policy's plan
// is never trusted on the planner's own say-so, certify switch or not).
// Returns (result, true) only for a certified plan; every other outcome
// is recorded (miss or reject) and falls back to training.
func (m *Manager) zooAttempt(ctx context.Context, j *job) (*Result, bool) {
	geo, err := zoo.GeometryOf(j.prob, j.cfg)
	if err != nil {
		// A problem the SOAG rejects would have failed prepare already;
		// treat it as a miss rather than failing the job here.
		m.met.incZooMiss()
		return nil, false
	}
	match, ok := m.opt.Zoo.Lookup(geo, zoo.FeaturesOf(j.prob))
	if !ok {
		m.met.incZooMiss()
		m.emit(obsv.Event{Type: EventZooMiss, Msg: j.id})
		return nil, false
	}
	j.noteAttempt("zoo")
	start := time.Now()
	reject := func(reason string) (*Result, bool) {
		m.met.incZooReject()
		m.met.observeZoo(time.Since(start))
		m.emit(obsv.Event{Type: EventZooReject, Msg: j.id + ": " + reason,
			V: map[string]float64{"distance": match.Distance}})
		return nil, false
	}

	cfg := j.cfg
	if m.verdicts != nil {
		cfg.SharedAnalyzerCache = m.verdicts
	}
	sol, stats, err := zoo.Rollout(ctx, j.prob, cfg, match.Weights, zoo.RolloutOptions{
		Streams: zooRolloutStreams,
		Workers: cfg.Workers,
	})
	m.met.addZooSteps(stats.EnvSteps)
	if err != nil {
		return reject("rollout: " + err.Error())
	}
	if sol == nil {
		return reject("no stream solved within the rollout budget")
	}
	if m.testZooTamper != nil {
		m.testZooTamper(sol)
	}
	if err := core.VerifySolutionContext(context.Background(), j.prob, sol); err != nil {
		return reject("verification: " + err.Error())
	}
	// One beat before the audit, as in the training path: certification
	// emits no epoch progress.
	j.mu.Lock()
	j.lastBeat = time.Now()
	j.mu.Unlock()
	c := &certify.Certifier{
		Prob: j.prob,
		Sol:  sol,
		Opt: certify.Options{
			Samples:         j.certSamples,
			Seed:            j.cfg.Seed,
			AnalyzerWorkers: j.cfg.AnalyzerWorkers,
		},
	}
	cert, err := c.Certify(ctx)
	if err != nil {
		return reject("certification audit: " + err.Error())
	}
	if !cert.OK() {
		return reject("candidate plan failed independent certification")
	}

	j.setProvenance(ProvenanceZoo)
	encoded := serialize.EncodeSolution(sol)
	res := &Result{
		JobID:        j.id,
		Fingerprint:  j.fingerprint,
		GuaranteeMet: true,
		Cost:         sol.Cost,
		Epochs:       0,
		Solution:     &encoded,
		Certificate:  cert,
		RunSeconds:   time.Since(start).Seconds(),
		Provenance:   ProvenanceZoo,
	}
	j.mu.Lock()
	j.progress.BestCost = sol.Cost
	j.progress.GuaranteeMet = true
	j.progress.Solutions = stats.Solved
	j.mu.Unlock()
	m.met.incZooHit()
	m.met.observeZoo(time.Since(start))
	m.emit(obsv.Event{Type: EventZooHit, Msg: j.id + " " + match.Entry.ID, V: map[string]float64{
		"env_steps": float64(stats.EnvSteps),
		"distance":  match.Distance,
		"seconds":   time.Since(start).Seconds(),
	}})
	return res, true
}

// ReloadZoo re-reads the zoo directory from disk — the SIGHUP/boot path
// that lets replicas sharing one zoo pick up newly pretrained policies.
// Quarantined files are reported exactly like boot-time store corruption.
// It returns the number of usable policies, and 0 with a nil error when
// the manager has no zoo.
func (m *Manager) ReloadZoo() (int, error) {
	if m.opt.Zoo == nil {
		return 0, nil
	}
	quarantined, err := m.opt.Zoo.Reload()
	if err != nil {
		return 0, err
	}
	if len(quarantined) > 0 {
		m.met.addZooCorrupt(len(quarantined))
		m.emit(obsv.Event{Type: EventZooCorrupt, Msg: strings.Join(quarantined, "; "),
			V: map[string]float64{"files": float64(len(quarantined))}})
	}
	n := m.opt.Zoo.Len()
	m.met.setZooSize(n)
	return n, nil
}

// beatWhile keeps j's watchdog heartbeat alive on the caller's behalf
// until the returned stop function runs. Used around external observer
// callbacks: the job is not stuck, it is waiting on the observer.
func (m *Manager) beatWhile(j *job) func() {
	if m.opt.StuckTimeout <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(m.opt.StuckTimeout / 4)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				j.mu.Lock()
				j.lastBeat = time.Now()
				j.mu.Unlock()
			}
		}
	}()
	return func() { close(stop); <-done }
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// persist writes the job's current record when persistence is on: live
// jobs are journaled with their request (crash recovery re-queues them),
// terminal jobs keep only status and result. A store write failure (disk
// full, injected fault) is reported and counted, never fatal — the job
// still completes in memory.
func (m *Manager) persist(j *job) {
	if m.opt.Dir == "" {
		return
	}
	rec := record{Status: j.status(), Attempts: j.attempts}
	j.mu.Lock()
	rec.Result = j.result
	j.mu.Unlock()
	// Live jobs journal their request for crash recovery; done jobs keep it
	// too, so the fingerprint's spec can seed delta bases across restarts.
	if !rec.Status.State.Terminal() || rec.Status.State == StateDone {
		rec.Request = j.req
	}
	if err := saveRecord(m.opt.Dir, rec, m.fsFaults()); err != nil {
		m.met.incEventErr()
		m.emit(obsv.Event{Type: "store_error", Msg: err.Error()})
	}
}

// fsFaults adapts the configured injector to the record store's
// filesystem seam; nil when fault injection is off.
func (m *Manager) fsFaults() serialize.FSFaults {
	if m.opt.Fault == nil {
		return nil
	}
	return fault.FS{In: m.opt.Fault}
}

// noteRun records one finished run's duration in the Retry-After ring.
func (m *Manager) noteRun(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.recent) < recentRunWindow {
		m.recent = append(m.recent, d)
	} else {
		m.recent[m.recentIdx] = d
	}
	m.recentIdx = (m.recentIdx + 1) % recentRunWindow
}

// recentRunWindow is how many recent run durations feed RetryAfterSeconds.
const recentRunWindow = 16

// RetryAfterSeconds estimates when a submission bounced by backpressure is
// worth retrying: the queue backlog paced by the mean of the last few run
// durations, divided across the worker pool, clamped to [1s, 10min]. With
// no finished runs to average yet the floor of one second stands — an
// earlier retry cannot succeed anyway, planning jobs run for seconds to
// hours.
func (m *Manager) RetryAfterSeconds() int {
	m.mu.Lock()
	var sum time.Duration
	n := len(m.recent)
	for _, d := range m.recent {
		sum += d
	}
	depth := len(m.queue)
	m.mu.Unlock()
	if n == 0 || depth == 0 {
		return 1
	}
	wait := sum / time.Duration(n) * time.Duration(depth) / time.Duration(m.opt.Workers)
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 600 {
		secs = 600
	}
	return secs
}

// watchdog periodically sweeps running jobs whose progress heartbeat has
// gone quiet for StuckTimeout and cancels them; runJob maps the stalled
// flag to StateFailed. Sweeping at a quarter of the timeout bounds
// detection latency to 1.25 × StuckTimeout.
func (m *Manager) watchdog() {
	tick := time.NewTicker(m.opt.StuckTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-m.watchStop:
			return
		case <-tick.C:
			m.sweepStuck()
		}
	}
}

// sweepStuck cancels every running job whose last heartbeat predates the
// stuck cutoff. Job locks are taken one at a time after m.mu is released,
// preserving the m.mu → j.mu lock order used everywhere else.
func (m *Manager) sweepStuck() {
	cutoff := time.Now().Add(-m.opt.StuckTimeout)
	m.mu.Lock()
	candidates := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		candidates = append(candidates, j)
	}
	m.mu.Unlock()
	for _, j := range candidates {
		j.mu.Lock()
		if j.state != StateRunning || j.stalled || j.lastBeat.IsZero() || !j.lastBeat.Before(cutoff) {
			j.mu.Unlock()
			continue
		}
		j.stalled = true
		quiet := time.Since(j.lastBeat)
		cancel := j.cancel
		j.mu.Unlock()
		m.met.incStalled()
		m.emit(obsv.Event{Type: EventStalled, Msg: j.id, V: map[string]float64{"stalled_seconds": quiet.Seconds()}})
		if cancel != nil {
			cancel()
		}
	}
}

// emit sends one lifecycle event; sink errors are counted, not fatal.
func (m *Manager) emit(e obsv.Event) {
	if m.opt.Events == nil {
		return
	}
	if err := m.opt.Events.Emit(e); err != nil {
		m.met.incEventErr()
	}
}
