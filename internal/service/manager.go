package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/serialize"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull is returned when the waiting queue is at capacity
	// (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue is full")
	// ErrDraining is returned once shutdown has begun (HTTP 503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
	// ErrNotFound is returned for unknown job IDs (HTTP 404).
	ErrNotFound = errors.New("service: no such job")
	// ErrNotTerminal is returned when a result is requested before the
	// job finished (HTTP 409).
	ErrNotTerminal = errors.New("service: job has not finished")
)

// Options configures a Manager.
type Options struct {
	// Workers is the number of jobs planned concurrently (default 1).
	// Each job additionally runs its own exploration goroutines
	// (PlanParams.Workers), so total parallelism is the product.
	Workers int
	// QueueSize bounds the waiting queue (default 16). With w Workers the
	// service holds at most w running + QueueSize waiting jobs; beyond
	// that, Submit returns ErrQueueFull.
	QueueSize int
	// Dir, when non-empty, persists every terminal job as an atomic JSON
	// record and re-serves the records (and re-seeds the plan cache) on
	// restart. Empty keeps everything in memory.
	Dir string
	// DefaultTimeout bounds each job's planning run unless the request
	// carries its own TimeoutSec (0 = unbounded).
	DefaultTimeout time.Duration
	// Metrics receives the nptsn_service_* series and, shared with every
	// job's planner, the nptsn_* training series. Nil disables metrics.
	Metrics *obsv.Registry
	// Events receives JSON-lines job lifecycle events (see the Event*
	// constants). Unlike the planner's sink, an emission error does not
	// abort anything; it is counted on nptsn_service_event_errors_total.
	Events obsv.Sink
}

// Manager is the planning job engine: a bounded queue feeding a fixed
// worker pool of independent Planners, with a fingerprint plan cache in
// front and a persistent result store behind.
type Manager struct {
	opt Options
	met *metrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string           // submission order, for List
	cache    map[string]*Result // fingerprint → finished result
	draining bool

	queue chan *job
	wg    sync.WaitGroup // worker goroutines

	// testBeforeRun, when set by tests, runs after a job transitions to
	// running and before planning starts — the hook tests use to hold a
	// job in the running state deterministically.
	testBeforeRun func(*job)
}

// New builds a Manager, loads persisted records when Options.Dir is set,
// and starts the worker pool.
func New(opt Options) (*Manager, error) {
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.QueueSize <= 0 {
		opt.QueueSize = 16
	}
	m := &Manager{
		opt:   opt,
		met:   newMetrics(opt.Metrics),
		jobs:  make(map[string]*job),
		cache: make(map[string]*Result),
		queue: make(chan *job, opt.QueueSize),
	}
	if opt.Dir != "" {
		recs, skipped, err := loadRecords(opt.Dir)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			j := &job{
				id:          rec.Status.ID,
				fingerprint: rec.Status.Fingerprint,
				certify:     rec.Status.Certify,
				state:       rec.Status.State,
				submitted:   rec.Status.SubmittedAt,
				progress:    rec.Status.Progress,
				errMsg:      rec.Status.Error,
				cacheHit:    rec.Status.CacheHit,
				result:      rec.Result,
				terminal:    make(chan struct{}),
			}
			if rec.Status.StartedAt != nil {
				j.started = *rec.Status.StartedAt
			}
			if rec.Status.FinishedAt != nil {
				j.finished = *rec.Status.FinishedAt
			}
			close(j.terminal)
			m.jobs[j.id] = j
			m.order = append(m.order, j.id)
			// Re-seed the plan cache from done, uninterrupted results so a
			// re-submission after restart is still a hit.
			if rec.Status.State == StateDone && rec.Result != nil && !rec.Result.Interrupted && !rec.Status.CacheHit {
				m.cache[rec.Status.Fingerprint] = rec.Result
			}
		}
		if skipped > 0 {
			m.emit(obsv.Event{Type: "store_skipped", V: map[string]float64{"records": float64(skipped)}})
		}
	}
	for i := 0; i < opt.Workers; i++ {
		m.wg.Add(1)
		go m.workerLoop()
	}
	return m, nil
}

// Submit validates a request and either answers it from the plan cache or
// enqueues a new job. It returns the job's initial status snapshot.
func (m *Manager) Submit(req Request) (Status, error) {
	prep, err := prepare(req)
	if err != nil {
		return Status{}, err
	}
	j := &job{
		id:          newJobID(),
		fingerprint: prep.fingerprint,
		prob:        prep.prob,
		cfg:         prep.cfg,
		certify:     prep.certify,
		certSamples: prep.certSamples,
		timeout:     prep.timeout,
		state:       StateQueued,
		submitted:   time.Now().UTC(),
		terminal:    make(chan struct{}),
	}
	j.progress.TotalEpochs = prep.cfg.MaxEpoch

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Status{}, ErrDraining
	}
	if res, ok := m.cache[j.fingerprint]; ok {
		// Cache hit: the job is born terminal, carrying a copy of the
		// finished result under its own ID.
		r := *res
		r.JobID = j.id
		j.state = StateDone
		j.cacheHit = true
		j.finished = j.submitted
		j.result = &r
		j.progress = Progress{
			Epoch:        r.Epochs,
			TotalEpochs:  prep.cfg.MaxEpoch,
			BestCost:     r.Cost,
			GuaranteeMet: r.GuaranteeMet,
		}
		close(j.terminal)
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.mu.Unlock()
		m.met.incCacheHit()
		m.met.incDone()
		m.emit(obsv.Event{Type: EventCacheHit, Msg: j.id})
		m.persist(j)
		return j.status(), nil
	}
	select {
	case m.queue <- j:
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		depth := len(m.queue)
		m.mu.Unlock()
		m.met.incCacheMiss()
		m.met.incSubmitted()
		m.met.addQueueDepth(1)
		m.emit(obsv.Event{Type: EventSubmitted, Msg: j.id, V: map[string]float64{"queue_depth": float64(depth)}})
		return j.status(), nil
	default:
		m.mu.Unlock()
		m.met.incRejected()
		m.emit(obsv.Event{Type: EventRejected, V: map[string]float64{"queue_size": float64(m.opt.QueueSize)}})
		return Status{}, ErrQueueFull
	}
}

// Get returns a job's status snapshot.
func (m *Manager) Get(id string) (Status, error) {
	j := m.lookup(id)
	if j == nil {
		return Status{}, ErrNotFound
	}
	return j.status(), nil
}

// Result returns a finished job's result. ErrNotTerminal is returned
// while the job is queued or running; a terminal job without a result
// (failed, cancelled) yields the status error message.
func (m *Manager) Result(id string) (*Result, error) {
	j := m.lookup(id)
	if j == nil {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, ErrNotTerminal
	}
	if j.result == nil {
		if j.errMsg != "" {
			return nil, fmt.Errorf("service: job %s %s: %s", id, j.state, j.errMsg)
		}
		return nil, fmt.Errorf("service: job %s %s without a result", id, j.state)
	}
	return j.result, nil
}

// List returns every known job's status in submission order (persisted
// jobs from earlier lives of the server included).
func (m *Manager) List() []Status {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel requests cancellation: a queued job turns cancelled immediately,
// a running job's context is cancelled (the planner stops at the next
// epoch boundary). Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	j := m.lookup(id)
	if j == nil {
		return Status{}, ErrNotFound
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = "cancelled while queued"
		j.finished = time.Now().UTC()
		close(j.terminal)
		j.mu.Unlock()
		m.met.incCancelled()
		m.emit(obsv.Event{Type: EventCancelled, Msg: j.id})
		m.persist(j)
	case StateRunning:
		j.cancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		j.mu.Unlock()
	}
	return j.status(), nil
}

// Delete removes a terminal job and its persisted record; live jobs must
// be cancelled first. The plan cache keeps the fingerprint entry: deleting
// a job record does not un-learn the plan.
func (m *Manager) Delete(id string) error {
	j := m.lookup(id)
	if j == nil {
		return ErrNotFound
	}
	j.mu.Lock()
	terminal := j.state.Terminal()
	j.mu.Unlock()
	if !terminal {
		return fmt.Errorf("service: job %s is %s; cancel it first", id, j.status().State)
	}
	m.mu.Lock()
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	if m.opt.Dir != "" {
		return deleteRecord(m.opt.Dir, id)
	}
	return nil
}

// Shutdown drains the engine: submissions are rejected from the first
// call, queued jobs are cancelled, and running jobs are given until ctx
// expires to finish; after that their contexts are cancelled, which makes
// the planner return its best-so-far report (persisted like any other
// finished job). Shutdown returns once every worker has stopped; the
// returned error is ctx.Err() when the deadline forced an early cancel.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			j.mu.Lock()
			cancel := j.cancel
			j.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		}
		m.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (m *Manager) lookup(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

func (m *Manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// workerLoop runs queued jobs until the queue is closed and drained.
func (m *Manager) workerLoop() {
	defer m.wg.Done()
	for j := range m.queue {
		m.met.addQueueDepth(-1)
		m.runJob(j)
	}
}

// runJob executes one dequeued job end to end.
func (m *Manager) runJob(j *job) {
	// A job cancelled while queued, or dequeued during drain, never runs.
	// Checked before taking j.mu: every path locks m.mu → j.mu in that
	// order (Shutdown's running-job sweep holds m.mu while touching job
	// locks), so j.mu → m.mu here would be a lock-order inversion.
	draining := m.isDraining()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	if draining {
		j.state = StateCancelled
		j.errMsg = "cancelled by server drain while queued"
		j.finished = time.Now().UTC()
		close(j.terminal)
		j.mu.Unlock()
		m.met.incCancelled()
		m.emit(obsv.Event{Type: EventCancelled, Msg: j.id})
		m.persist(j)
		return
	}

	ctx := context.Background()
	var cancelTimeout context.CancelFunc
	timeout := j.timeout
	if timeout == 0 {
		timeout = m.opt.DefaultTimeout
	}
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, timeout)
	}
	ctx, cancel := context.WithCancel(ctx)
	if cancelTimeout != nil {
		origCancel := cancel
		cancel = func() { origCancel(); cancelTimeout() }
	}
	defer cancel()

	now := time.Now().UTC()
	j.state = StateRunning
	j.started = now
	j.cancel = cancel
	wait := now.Sub(j.submitted)
	j.mu.Unlock()

	m.met.addRunning(1)
	defer m.met.addRunning(-1)
	m.met.observeWait(wait)
	m.emit(obsv.Event{Type: EventStart, Msg: j.id, V: map[string]float64{"wait_seconds": wait.Seconds()}})
	if m.testBeforeRun != nil {
		m.testBeforeRun(j)
	}

	res, errMsg := m.plan(ctx, j)

	j.mu.Lock()
	j.cancel = nil
	j.finished = time.Now().UTC()
	run := j.finished.Sub(j.started)
	cancelled := j.cancelRequested
	switch {
	case cancelled:
		j.state = StateCancelled
		j.errMsg = "cancelled"
		j.result = res // best-so-far, when the interrupted run had one
	case errMsg != "":
		j.state = StateFailed
		j.errMsg = errMsg
		j.result = res
	default:
		j.state = StateDone
		j.result = res
	}
	state := j.state
	close(j.terminal)
	j.mu.Unlock()

	m.met.observeRun(run)
	ev := obsv.Event{Msg: j.id, V: map[string]float64{"run_seconds": run.Seconds()}}
	switch state {
	case StateDone:
		m.met.incDone()
		ev.Type = EventDone
		if res != nil && res.Solution != nil {
			ev.V["cost"] = res.Cost
		}
		// Only deterministic outcomes enter the cache: an interrupted run
		// (deadline, drain) could complete differently given more time.
		if res != nil && !res.Interrupted {
			m.mu.Lock()
			m.cache[j.fingerprint] = res
			m.mu.Unlock()
		}
	case StateCancelled:
		m.met.incCancelled()
		ev.Type = EventCancelled
	default:
		m.met.incFailed()
		ev.Type = EventFailed
	}
	m.emit(ev)
	m.persist(j)
}

// plan runs the planner (and optionally the certifier) for one job,
// returning the result and an error message ("" on success).
func (m *Manager) plan(ctx context.Context, j *job) (*Result, string) {
	cfg := j.cfg
	cfg.Metrics = m.opt.Metrics // training series accumulate across jobs
	cfg.Progress = func(es core.EpochStats) {
		j.mu.Lock()
		j.progress.Epoch = es.Epoch
		j.progress.Reward = es.Reward
		j.progress.Solutions += es.Solutions
		if es.BestCost > 0 {
			j.progress.BestCost = es.BestCost
			j.progress.GuaranteeMet = true
		}
		j.mu.Unlock()
	}
	planner, err := core.NewPlanner(j.prob, cfg)
	if err != nil {
		return nil, err.Error() // unreachable: Submit dry-ran the constructor
	}
	start := time.Now()
	report, err := planner.PlanContext(ctx)
	if err != nil {
		return nil, err.Error()
	}
	res := &Result{
		JobID:        j.id,
		Fingerprint:  j.fingerprint,
		GuaranteeMet: report.GuaranteeMet(),
		Epochs:       len(report.Epochs),
		Interrupted:  report.Interrupted,
		RunSeconds:   time.Since(start).Seconds(),
	}
	if report.Best != nil {
		// Verification runs on a fresh context: the job's deadline bounds
		// planning, and an interrupted run's best-so-far plan must still be
		// checked (and served) rather than failed on the expired context.
		if err := core.VerifySolutionContext(context.Background(), j.prob, report.Best); err != nil {
			return res, fmt.Sprintf("solution failed verification: %v", err)
		}
		sol := serialize.EncodeSolution(report.Best)
		res.Solution = &sol
		res.Cost = report.Best.Cost
	}
	if j.certify && report.Best != nil && !report.Interrupted {
		c := &certify.Certifier{
			Prob: j.prob,
			Sol:  report.Best,
			Opt: certify.Options{
				Samples:         j.certSamples,
				Seed:            j.cfg.Seed,
				AnalyzerWorkers: j.cfg.AnalyzerWorkers,
			},
		}
		cert, err := c.Certify(ctx)
		if err != nil {
			return res, fmt.Sprintf("certification audit: %v", err)
		}
		res.Certificate = cert
		if !cert.OK() {
			return res, "solution failed independent certification"
		}
	}
	return res, ""
}

// persist writes the job's terminal record when persistence is on.
func (m *Manager) persist(j *job) {
	if m.opt.Dir == "" {
		return
	}
	j.mu.Lock()
	rec := record{Version: recordVersion, Result: j.result}
	j.mu.Unlock()
	rec.Status = j.status()
	if err := saveRecord(m.opt.Dir, rec); err != nil {
		m.met.incEventErr()
		m.emit(obsv.Event{Type: "store_error", Msg: err.Error()})
	}
}

// emit sends one lifecycle event; sink errors are counted, not fatal.
func (m *Manager) emit(e obsv.Event) {
	if m.opt.Events == nil {
		return
	}
	if err := m.opt.Events.Emit(e); err != nil {
		m.met.incEventErr()
	}
}
