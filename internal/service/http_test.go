package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obsv"
	"repro/internal/serialize"
)

// exampleProblemJSON loads the repository's shipped example spec — the
// same file the CLI walkthroughs use.
func exampleProblemJSON(t testing.TB) serialize.ProblemJSON {
	t.Helper()
	f, err := os.Open("../../testdata/example-problem.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var p serialize.ProblemJSON
	if err := serialize.ReadJSON(f, &p); err != nil {
		t.Fatal(err)
	}
	return p
}

type httpFixture struct {
	srv *httptest.Server
	mgr *Manager
	reg *obsv.Registry
}

func newHTTPFixture(t *testing.T, opt Options) *httpFixture {
	t.Helper()
	reg := obsv.NewRegistry()
	opt.Metrics = reg
	mgr := newTestManager(t, opt)
	srv := httptest.NewServer(NewMux(mgr, reg))
	t.Cleanup(srv.Close)
	return &httpFixture{srv: srv, mgr: mgr, reg: reg}
}

func (f *httpFixture) do(t testing.TB, method, path string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, f.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func (f *httpFixture) getStatus(t testing.TB, id string) Status {
	t.Helper()
	code, _, body := f.do(t, http.MethodGet, "/v1/jobs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("GET status = %d: %s", code, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status body: %v\n%s", err, body)
	}
	return st
}

// TestHTTPEndToEnd is the ISSUE's acceptance scenario: submit the shipped
// example with ?certify=1, watch queued→running→done with monotone
// progress, fetch a result that matches a direct Planner run with the same
// seed, and observe the duplicate submission hit the plan cache (verified
// through the /metrics exposition).
func TestHTTPEndToEnd(t *testing.T) {
	f := newHTTPFixture(t, Options{})
	req := Request{
		Problem: exampleProblemJSON(t),
		Params: PlanParams{
			Epochs: 2, Steps: 48, K: 4, MLPWidth: 16, Seed: 2,
		},
		CertifySamples: 64,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	code, _, respBody := f.do(t, http.MethodPost, "/v1/jobs?certify=1", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202: %s", code, respBody)
	}
	var st Status
	if err := json.Unmarshal(respBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("submitted state = %s, want queued", st.State)
	}
	if !st.Certify {
		t.Fatal("?certify=1 did not arm the audit")
	}

	// Poll until terminal, checking the state machine only moves forward
	// (queued → running → done) and the reported epoch never regresses.
	rank := map[State]int{StateQueued: 0, StateRunning: 1, StateDone: 2}
	lastRank, lastEpoch := 0, 0
	deadline := time.Now().Add(120 * time.Second)
	for {
		cur := f.getStatus(t, st.ID)
		r, ok := rank[cur.State]
		if !ok {
			t.Fatalf("job entered state %s (%s)", cur.State, cur.Error)
		}
		if r < lastRank {
			t.Fatalf("state regressed to %s", cur.State)
		}
		if cur.Progress.Epoch < lastEpoch {
			t.Fatalf("progress regressed: epoch %d after %d", cur.Progress.Epoch, lastEpoch)
		}
		lastRank, lastEpoch = r, cur.Progress.Epoch
		if cur.State == StateDone {
			if cur.Progress.Epoch != cur.Progress.TotalEpochs {
				t.Fatalf("done with progress %d/%d", cur.Progress.Epoch, cur.Progress.TotalEpochs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, _, resBody := f.do(t, http.MethodGet, "/v1/jobs/"+st.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, resBody)
	}
	var res Result
	if err := json.Unmarshal(resBody, &res); err != nil {
		t.Fatal(err)
	}
	if res.Solution == nil || !res.GuaranteeMet {
		t.Fatalf("result lacks a guaranteed plan: %s", resBody)
	}
	if res.Certificate == nil {
		t.Fatal("certified job returned no certificate")
	}

	// Same seed, same configuration, direct in-process run: costs match.
	want := directReport(t, req)
	if want.Best == nil || res.Cost != want.Best.Cost {
		t.Fatalf("service cost %v, direct planner cost %+v", res.Cost, want.Best)
	}

	// The duplicate submission is answered from the plan cache with 200.
	code, _, dupBody := f.do(t, http.MethodPost, "/v1/jobs?certify=1", body)
	if code != http.StatusOK {
		t.Fatalf("duplicate submit = %d, want 200: %s", code, dupBody)
	}
	var dup Status
	if err := json.Unmarshal(dupBody, &dup); err != nil {
		t.Fatal(err)
	}
	if !dup.CacheHit || dup.State != StateDone {
		t.Fatalf("duplicate not a terminal cache hit: %s", dupBody)
	}

	// …and the hit is visible on the Prometheus exposition.
	code, _, metrics := f.do(t, http.MethodGet, "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"nptsn_service_cache_hits_total 1",
		"nptsn_service_jobs_done_total 2",
		"nptsn_http_v1_jobs_requests_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}

	// List shows both jobs in submission order.
	code, _, listBody := f.do(t, http.MethodGet, "/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	var list []Status
	if err := json.Unmarshal(listBody, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != st.ID || list[1].ID != dup.ID {
		t.Fatalf("list = %s", listBody)
	}
}

func TestHTTPBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 1)
	f := newHTTPFixture(t, Options{Workers: 1, QueueSize: 1})
	f.mgr.testBeforeRun = func(j *job) {
		started <- j.id
		<-release
	}
	defer close(release)

	submit := func(seed int64) (int, http.Header, []byte) {
		req := tinyRequest(t)
		req.Params.Seed = seed
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return f.do(t, http.MethodPost, "/v1/jobs", body)
	}

	if code, _, b := submit(1); code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", code, b)
	}
	<-started
	if code, _, b := submit(2); code != http.StatusAccepted {
		t.Fatalf("second submit = %d: %s", code, b)
	}
	code, hdr, b := submit(3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429: %s", code, b)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if !strings.Contains(string(b), "queue is full") {
		t.Fatalf("429 body: %s", b)
	}
}

func TestHTTPResultConflictWhileRunning(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 1)
	f := newHTTPFixture(t, Options{})
	f.mgr.testBeforeRun = func(j *job) {
		started <- j.id
		<-release
	}

	body, err := json.Marshal(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	code, _, respBody := f.do(t, http.MethodPost, "/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, respBody)
	}
	var st Status
	if err := json.Unmarshal(respBody, &st); err != nil {
		t.Fatal(err)
	}
	<-started
	if code, _, b := f.do(t, http.MethodGet, "/v1/jobs/"+st.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result while running = %d, want 409: %s", code, b)
	}
	close(release)
	waitTerminal(t, f.mgr, st.ID)
}

func TestHTTPDeleteCancelsThenRemoves(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 1)
	f := newHTTPFixture(t, Options{})
	f.mgr.testBeforeRun = func(j *job) {
		started <- j.id
		<-release
	}

	body, err := json.Marshal(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	_, _, respBody := f.do(t, http.MethodPost, "/v1/jobs", body)
	var st Status
	if err := json.Unmarshal(respBody, &st); err != nil {
		t.Fatal(err)
	}
	<-started

	// DELETE on a live job is a cancellation request: 202.
	code, _, b := f.do(t, http.MethodDelete, "/v1/jobs/"+st.ID, nil)
	if code != http.StatusAccepted {
		t.Fatalf("delete live = %d, want 202: %s", code, b)
	}
	close(release)
	if final := waitTerminal(t, f.mgr, st.ID); final.State != StateCancelled {
		t.Fatalf("state after DELETE = %s, want cancelled", final.State)
	}

	// DELETE on the now-terminal job removes it: 204, then 404.
	if code, _, b := f.do(t, http.MethodDelete, "/v1/jobs/"+st.ID, nil); code != http.StatusNoContent {
		t.Fatalf("delete terminal = %d, want 204: %s", code, b)
	}
	if code, _, _ := f.do(t, http.MethodGet, "/v1/jobs/"+st.ID, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete = %d, want 404", code)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	f := newHTTPFixture(t, Options{})
	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{"problem": `},
		{"unknown field", `{"problem": {}, "bogus": 1}`},
		{"empty problem", `{"problem": {}}`},
	}
	for _, tc := range cases {
		code, _, b := f.do(t, http.MethodPost, "/v1/jobs", []byte(tc.body))
		if code != http.StatusBadRequest {
			t.Fatalf("%s: code = %d, want 400: %s", tc.name, code, b)
		}
		var e map[string]string
		if err := json.Unmarshal(b, &e); err != nil || e["error"] == "" {
			t.Fatalf("%s: error body %s", tc.name, b)
		}
	}
	if code, _, _ := f.do(t, http.MethodGet, "/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatal("unknown job id did not 404")
	}
	if code, _, _ := f.do(t, http.MethodGet, fmt.Sprintf("/v1/jobs/%s/result", "nope"), nil); code != http.StatusNotFound {
		t.Fatal("unknown job result did not 404")
	}
}

// TestHTTPDrainAndRestartReServes covers the restart half of the
// acceptance scenario: a drain during a running job finishes it
// gracefully, and a fresh server over the same data directory re-serves
// the persisted result.
func TestHTTPDrainAndRestartReServes(t *testing.T) {
	dir := t.TempDir()
	reg1 := obsv.NewRegistry()
	m1, err := New(Options{Dir: dir, Metrics: reg1})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(NewMux(m1, reg1))

	body, err := json.Marshal(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv1.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	respBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, respBody)
	}
	var st Status
	if err := json.Unmarshal(respBody, &st); err != nil {
		t.Fatal(err)
	}

	// Drain while the job may still be running: it must finish and persist.
	ctx, cancel := timeoutCtx(30 * time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	srv1.Close()
	if got, _ := m1.Get(st.ID); got.State != StateDone {
		t.Fatalf("job after drain = %s (%s), want done", got.State, got.Error)
	}

	// Second life: same directory, fresh manager and server.
	f := newHTTPFixture(t, Options{Dir: dir})
	got := f.getStatus(t, st.ID)
	if got.State != StateDone {
		t.Fatalf("re-served state = %s, want done", got.State)
	}
	code, _, resBody := f.do(t, http.MethodGet, "/v1/jobs/"+st.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("re-served result = %d: %s", code, resBody)
	}
	var res Result
	if err := json.Unmarshal(resBody, &res); err != nil {
		t.Fatal(err)
	}
	if res.Solution == nil {
		t.Fatalf("re-served result lost its solution: %s", resBody)
	}
}

func timeoutCtx(d time.Duration) (ctx context.Context, cancel context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
