package service

import (
	"time"

	"repro/internal/obsv"
)

// Service lifecycle event types, emitted to Options.Events as JSON lines.
// Msg carries the job ID; V carries the numeric payload.
const (
	// EventSubmitted records a job entering the queue (queue_depth in V).
	EventSubmitted = "job_submitted"
	// EventCacheHit records a submission answered from the plan cache.
	EventCacheHit = "job_cache_hit"
	// EventRejected records a submission bounced by backpressure.
	EventRejected = "job_rejected"
	// EventStart records a job leaving the queue (wait_seconds in V).
	EventStart = "job_start"
	// EventDone / EventFailed / EventCancelled close a job
	// (run_seconds, and cost when a plan was found, in V).
	EventDone      = "job_done"
	EventFailed    = "job_failed"
	EventCancelled = "job_cancelled"
	// EventPanic records a planning run that panicked; the panic was
	// contained to the job (panics for the fingerprint so far in V).
	EventPanic = "job_panic"
	// EventStalled records the watchdog interrupting a running job that
	// stopped emitting progress heartbeats (stalled_seconds in V).
	EventStalled = "job_stalled"
	// EventRequeued records a journaled live job re-entering the queue
	// after a restart (attempt number in V).
	EventRequeued = "job_requeued"
	// EventPoisoned records a fingerprint being refused: either its
	// planning runs panicked PoisonPanics times, or a journaled job
	// exhausted MaxAttempts restarts.
	EventPoisoned = "job_poisoned"
	// EventStoreCorrupt records record files quarantined into corrupt/ at
	// boot; Msg lists "file: reason" per quarantined file.
	EventStoreCorrupt = "store_corrupt"
	// EventWarmStart records a delta job whose planner actually seeded from
	// the base plan (seeded/dropped link counts and seed_solved in V).
	EventWarmStart = "job_warm_start"
	// EventWarmDegraded records a delta job that fell back to a cold run
	// because the cached base plan no longer decoded against the derived
	// problem; Msg carries the base fingerprint and reason.
	EventWarmDegraded = "job_warm_degraded"
	// EventZooHit records a job answered by an inference-only rollout of a
	// pretrained zoo policy, accepted by the certifier (env_steps, the
	// feature distance and the rollout wall time in V; Msg is "jobID
	// policyID").
	EventZooHit = "job_zoo_hit"
	// EventZooMiss records a zoo lookup that found no geometry-compatible
	// policy; the job proceeds to warm/cold training.
	EventZooMiss = "job_zoo_miss"
	// EventZooReject records a zoo rollout whose candidate plan did not
	// survive the accept gate (no solution, failed verification, or a
	// failed certificate); Msg carries the job ID and reason, and the job
	// falls back to warm/cold training.
	EventZooReject = "job_zoo_reject"
	// EventZooCorrupt records zoo files quarantined into the zoo's
	// corrupt/ dir at boot or reload; Msg lists "file: reason" lines.
	EventZooCorrupt = "zoo_corrupt"
)

// metrics bundles the nptsn_service_* instrument handles. A nil *metrics
// is valid and records nothing, mirroring the planner's convention.
type metrics struct {
	submitted  *obsv.Counter
	done       *obsv.Counter
	failed     *obsv.Counter
	cancelled  *obsv.Counter
	rejected   *obsv.Counter
	cacheHits  *obsv.Counter
	cacheMiss  *obsv.Counter
	eventErrs  *obsv.Counter
	skipped    *obsv.Counter
	panics     *obsv.Counter
	stalled    *obsv.Counter
	requeued   *obsv.Counter
	poisoned   *obsv.Counter
	deltas     *obsv.Counter
	warm       *obsv.Counter
	warmDeg    *obsv.Counter
	zooHits    *obsv.Counter
	zooMisses  *obsv.Counter
	zooRejects *obsv.Counter
	zooSteps   *obsv.Counter
	zooCorrupt *obsv.Counter
	queueDepth *obsv.Gauge
	zooSize    *obsv.Gauge
	running    *obsv.Gauge
	waitSecs   *obsv.Histogram
	runSecs    *obsv.Histogram
	zooSecs    *obsv.Histogram
}

func newMetrics(reg *obsv.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		submitted:  reg.Counter("nptsn_service_jobs_submitted_total", "Planning jobs accepted into the queue (cache hits excluded)."),
		done:       reg.Counter("nptsn_service_jobs_done_total", "Planning jobs finished successfully (cache hits included)."),
		failed:     reg.Counter("nptsn_service_jobs_failed_total", "Planning jobs that ended in an error."),
		cancelled:  reg.Counter("nptsn_service_jobs_cancelled_total", "Planning jobs cancelled before completion."),
		rejected:   reg.Counter("nptsn_service_jobs_rejected_total", "Submissions rejected by queue backpressure."),
		cacheHits:  reg.Counter("nptsn_service_cache_hits_total", "Submissions answered instantly from the plan cache."),
		cacheMiss:  reg.Counter("nptsn_service_cache_misses_total", "Submissions that required a fresh planning run."),
		eventErrs:  reg.Counter("nptsn_service_event_errors_total", "Lifecycle events the sink failed to record."),
		skipped:    reg.Counter("nptsn_service_records_skipped_total", "Job-record files quarantined into corrupt/ at boot (torn writes, bad checksums, foreign files)."),
		panics:     reg.Counter("nptsn_service_job_panics_total", "Planning runs that panicked; each was contained to its own job."),
		stalled:    reg.Counter("nptsn_service_jobs_stalled_total", "Running jobs the watchdog interrupted for missing progress heartbeats."),
		requeued:   reg.Counter("nptsn_service_jobs_requeued_total", "Journaled live jobs re-queued after a restart."),
		poisoned:   reg.Counter("nptsn_service_jobs_poisoned_total", "Fingerprints refused after repeated panics or exhausted restart attempts."),
		deltas:     reg.Counter("nptsn_service_delta_jobs_total", "Submissions that referenced a base job and were resolved through the delta grammar."),
		warm:       reg.Counter("nptsn_service_warm_starts_total", "Planning runs that seeded from a cached base plan."),
		warmDeg:    reg.Counter("nptsn_service_warm_degraded_total", "Delta jobs that fell back to a cold run because the base plan no longer applied."),
		zooHits:    reg.Counter("nptsn_zoo_hits_total", "Jobs answered by a certified inference-only rollout of a pretrained zoo policy (zero training epochs)."),
		zooMisses:  reg.Counter("nptsn_zoo_misses_total", "Zoo lookups that found no geometry-compatible policy."),
		zooRejects: reg.Counter("nptsn_zoo_rejects_total", "Zoo rollouts whose candidate plan failed the accept gate (no solution, verification, or certificate); the job fell back to training."),
		zooSteps:   reg.Counter("nptsn_zoo_env_steps_total", "Environment steps spent in zoo rollouts — the inference cost that replaces training."),
		zooCorrupt: reg.Counter("nptsn_zoo_corrupt_total", "Zoo files quarantined into the zoo's corrupt/ dir at boot or reload."),
		queueDepth: reg.Gauge("nptsn_service_queue_depth", "Jobs waiting in the queue."),
		zooSize:    reg.Gauge("nptsn_zoo_policies", "Usable policies in the zoo after the last load or reload."),
		running:    reg.Gauge("nptsn_service_jobs_running", "Jobs currently planning."),
		waitSecs:   reg.Histogram("nptsn_service_wait_seconds", "Queue wait per job (submit to start).", obsv.DurationBuckets),
		runSecs:    reg.Histogram("nptsn_service_run_seconds", "Planning wall-clock per job (start to finish).", obsv.DurationBuckets),
		zooSecs:    reg.Histogram("nptsn_zoo_rollout_seconds", "Wall-clock per zoo rollout attempt (lookup to accept-gate verdict).", obsv.DurationBuckets),
	}
}

func (m *metrics) observeWait(d time.Duration) {
	if m != nil {
		m.waitSecs.Observe(d.Seconds())
	}
}

func (m *metrics) observeRun(d time.Duration) {
	if m != nil {
		m.runSecs.Observe(d.Seconds())
	}
}

func (m *metrics) addQueueDepth(delta float64) {
	if m != nil {
		m.queueDepth.Add(delta)
	}
}

func (m *metrics) addRunning(delta float64) {
	if m != nil {
		m.running.Add(delta)
	}
}

func (m *metrics) incSubmitted() { m.safeInc(func() *obsv.Counter { return m.submitted }) }
func (m *metrics) incDone()      { m.safeInc(func() *obsv.Counter { return m.done }) }
func (m *metrics) incFailed()    { m.safeInc(func() *obsv.Counter { return m.failed }) }
func (m *metrics) incCancelled() { m.safeInc(func() *obsv.Counter { return m.cancelled }) }
func (m *metrics) incRejected()  { m.safeInc(func() *obsv.Counter { return m.rejected }) }
func (m *metrics) incCacheHit()  { m.safeInc(func() *obsv.Counter { return m.cacheHits }) }
func (m *metrics) incCacheMiss() { m.safeInc(func() *obsv.Counter { return m.cacheMiss }) }
func (m *metrics) incEventErr()  { m.safeInc(func() *obsv.Counter { return m.eventErrs }) }
func (m *metrics) incPanic()     { m.safeInc(func() *obsv.Counter { return m.panics }) }
func (m *metrics) incStalled()   { m.safeInc(func() *obsv.Counter { return m.stalled }) }
func (m *metrics) incRequeued()  { m.safeInc(func() *obsv.Counter { return m.requeued }) }
func (m *metrics) incPoisoned()  { m.safeInc(func() *obsv.Counter { return m.poisoned }) }

func (m *metrics) incDelta()        { m.safeInc(func() *obsv.Counter { return m.deltas }) }
func (m *metrics) incWarm()         { m.safeInc(func() *obsv.Counter { return m.warm }) }
func (m *metrics) incWarmDegraded() { m.safeInc(func() *obsv.Counter { return m.warmDeg }) }

func (m *metrics) incZooHit()    { m.safeInc(func() *obsv.Counter { return m.zooHits }) }
func (m *metrics) incZooMiss()   { m.safeInc(func() *obsv.Counter { return m.zooMisses }) }
func (m *metrics) incZooReject() { m.safeInc(func() *obsv.Counter { return m.zooRejects }) }

func (m *metrics) addZooSteps(n int) {
	if m != nil && n > 0 {
		m.zooSteps.Add(float64(n))
	}
}

func (m *metrics) addZooCorrupt(n int) {
	if m != nil && n > 0 {
		m.zooCorrupt.Add(float64(n))
	}
}

func (m *metrics) setZooSize(n int) {
	if m != nil {
		m.zooSize.Set(float64(n))
	}
}

func (m *metrics) observeZoo(d time.Duration) {
	if m != nil {
		m.zooSecs.Observe(d.Seconds())
	}
}

func (m *metrics) addSkipped(n int) {
	if m != nil && n > 0 {
		m.skipped.Add(float64(n))
	}
}

func (m *metrics) safeInc(c func() *obsv.Counter) {
	if m != nil {
		c().Inc()
	}
}
