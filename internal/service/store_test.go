package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goodRecord builds a decodable record for store tests.
func goodRecord(id string, state State) record {
	rec := record{
		Status: Status{
			ID:          id,
			State:       state,
			SubmittedAt: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),
			Fingerprint: "cafecafecafecafecafecafecafecafe",
		},
	}
	if !state.Terminal() {
		rec.Request = &Request{}
	}
	return rec
}

// TestLoadRecordsCorruptionTable drives every on-disk failure mode through
// loadRecords: each bad file must land in corrupt/ with the boot report
// naming it, never fail the whole load, and never be silently ignored.
func TestLoadRecordsCorruptionTable(t *testing.T) {
	const id = "0123456789abcdef"
	name := "job-" + id + ".json"

	writeGood := func(t *testing.T, dir string, state State) {
		t.Helper()
		if err := saveRecord(dir, goodRecord(id, state), nil); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name string
		// write populates the data dir; file is the name expected in
		// corrupt/ afterwards ("" = nothing quarantined).
		write      func(t *testing.T, dir string)
		quarantine string
		reason     string // substring of the reported reason
		loaded     int
	}{
		{
			name:   "valid v2 record loads",
			write:  func(t *testing.T, dir string) { writeGood(t, dir, StateDone) },
			loaded: 1,
		},
		{
			name: "valid legacy v1 record loads",
			write: func(t *testing.T, dir string) {
				leg := legacyRecord{Version: 1, Status: goodRecord(id, StateDone).Status}
				data, err := json.Marshal(leg)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			loaded: 1,
		},
		{
			name: "truncated record is quarantined",
			write: func(t *testing.T, dir string) {
				writeGood(t, dir, StateDone)
				path := filepath.Join(dir, name)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				// The torn-write shape: rename landed, content cut short.
				if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			quarantine: name,
			reason:     "not a record envelope",
		},
		{
			name: "checksum mismatch is quarantined",
			write: func(t *testing.T, dir string) {
				writeGood(t, dir, StateDone)
				path := filepath.Join(dir, name)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				// Valid JSON, silently edited payload: only the checksum
				// can catch this.
				tampered := strings.Replace(string(data), id, "ffffffffffffffff", 1)
				if tampered == string(data) {
					t.Fatal("tamper had no effect")
				}
				if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			quarantine: name,
			reason:     "checksum mismatch",
		},
		{
			name: "future format version is quarantined",
			write: func(t *testing.T, dir string) {
				env := envelope{Version: 99, Sum: "00", Payload: json.RawMessage(`{}`)}
				data, err := json.Marshal(env)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			quarantine: name,
			reason:     "record version 99",
		},
		{
			name: "foreign file is quarantined",
			write: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hello"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			quarantine: "notes.txt",
			reason:     "not a job record",
		},
		{
			name: "temp residue from a crashed write is quarantined",
			write: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "."+name+".tmp-123"), []byte("{"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			quarantine: "." + name + ".tmp-123",
			reason:     "not a job record",
		},
		{
			name: "legacy record in live state is quarantined",
			write: func(t *testing.T, dir string) {
				leg := legacyRecord{Version: 1, Status: goodRecord(id, StateRunning).Status}
				data, err := json.Marshal(leg)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			quarantine: name,
			reason:     "non-terminal",
		},
		{
			name: "live record without its journaled request is quarantined",
			write: func(t *testing.T, dir string) {
				rec := goodRecord(id, StateRunning)
				rec.Request = nil
				if err := saveRecord(dir, rec, nil); err != nil {
					t.Fatal(err)
				}
			},
			quarantine: name,
			reason:     "without its journaled request",
		},
		{
			name: "journaled live record loads",
			write: func(t *testing.T, dir string) {
				writeGood(t, dir, StateRunning)
			},
			loaded: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.write(t, dir)
			recs, quarantined, err := loadRecords(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != tc.loaded {
				t.Fatalf("loaded %d records, want %d", len(recs), tc.loaded)
			}
			if tc.quarantine == "" {
				if len(quarantined) != 0 {
					t.Fatalf("unexpected quarantine: %v", quarantined)
				}
				return
			}
			if len(quarantined) != 1 {
				t.Fatalf("quarantined %v, want exactly %s", quarantined, tc.quarantine)
			}
			if !strings.Contains(quarantined[0], tc.reason) {
				t.Fatalf("quarantine reason %q does not mention %q", quarantined[0], tc.reason)
			}
			if _, err := os.Stat(filepath.Join(dir, corruptDirName, tc.quarantine)); err != nil {
				t.Fatalf("quarantined file missing from corrupt/: %v", err)
			}
			if _, err := os.Stat(filepath.Join(dir, tc.quarantine)); !os.IsNotExist(err) {
				t.Fatal("quarantined file still present in the data dir")
			}
			// A second boot over the now-clean dir sees nothing wrong.
			_, again, err := loadRecords(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(again) != 0 {
				t.Fatalf("second load still quarantines: %v", again)
			}
		})
	}
}

// TestRecordRoundTrip checks the journal fields survive the envelope.
func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec := goodRecord("0123456789abcdef", StateQueued)
	rec.Attempts = 2
	if err := saveRecord(dir, rec, nil); err != nil {
		t.Fatal(err)
	}
	recs, quarantined, err := loadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 0 || len(recs) != 1 {
		t.Fatalf("load = %d recs, %v quarantined", len(recs), quarantined)
	}
	got := recs[0]
	if got.Status.ID != rec.Status.ID || got.Status.State != StateQueued ||
		got.Attempts != 2 || got.Request == nil {
		t.Fatalf("round-tripped record diverged: %+v", got)
	}
}
