package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obsv"
)

// chaosSeeds are the schedules every chaos scenario runs under. Each
// subtest logs its injector line (seed + schedule), so any failure
// reproduces bit-exactly: fault decisions are pure functions of
// (seed, point, call number), independent of goroutine interleaving.
var chaosSeeds = []int64{1, 42, 977}

// memSink captures lifecycle events for assertions.
type memSink struct {
	mu     sync.Mutex
	events []obsv.Event
}

func (s *memSink) Emit(e obsv.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
	return nil
}

func (s *memSink) count(typ string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

func (s *memSink) first(typ string) (obsv.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.events {
		if e.Type == typ {
			return e, true
		}
	}
	return obsv.Event{}, false
}

// seededRequest is tinyRequest with a per-subtest planner seed, so jobs in
// different subtests carry different fingerprints.
func seededRequest(t testing.TB, seed int64) Request {
	req := tinyRequest(t)
	req.Params.Seed = seed
	return req
}

// TestChaosPanicFailsOnlyItsJob: an injected panic in the first planning
// run fails that job alone — the worker goroutine survives and completes
// the next job on the same (single-worker) pool.
func TestChaosPanicFailsOnlyItsJob(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := fault.New(seed, fault.Rule{Point: fault.PointPlan, Kind: fault.KindPanic, Calls: []int{1}})
			t.Log(in.String())
			sink := &memSink{}
			m := newTestManager(t, Options{Workers: 1, Events: sink, Fault: in})

			stA, err := m.Submit(seededRequest(t, 101))
			if err != nil {
				t.Fatal(err)
			}
			final := waitTerminal(t, m, stA.ID)
			if final.State != StateFailed || !strings.Contains(final.Error, "injected panic") {
				t.Fatalf("poisoned job = %s (%q), want failed with the injected panic", final.State, final.Error)
			}

			stB, err := m.Submit(seededRequest(t, 102))
			if err != nil {
				t.Fatal(err)
			}
			if got := waitTerminal(t, m, stB.ID); got.State != StateDone {
				t.Fatalf("job after the panic = %s (%q), want done — worker did not survive", got.State, got.Error)
			}
			if sink.count(EventPanic) != 1 {
				t.Fatalf("recorded %d %s events, want 1", sink.count(EventPanic), EventPanic)
			}
			t.Log(in.Stats())
		})
	}
}

// TestChaosCrashRestartRequeuesJournaledJobs: a server killed mid-run
// (simulated by abandoning a manager whose worker is parked before
// planning) leaves a running journal record behind; the next boot re-queues
// the job under its original ID and completes it.
func TestChaosCrashRestartRequeuesJournaledJobs(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			block := make(chan struct{})
			defer close(block) // release the abandoned worker after the test

			m1, err := New(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			m1.testBeforeRun = func(*job) { <-block }
			st, err := m1.Submit(seededRequest(t, seed))
			if err != nil {
				t.Fatal(err)
			}
			// Wait for the running journal record to hit the disk — the
			// instant after which a crash must not lose the job.
			recPath := recordFile(dir, st.ID)
			waitFor(t, func() bool {
				data, err := os.ReadFile(recPath)
				if err != nil {
					return false
				}
				rec, err := decodeRecord(data)
				return err == nil && rec.Status.State == StateRunning
			}, "running journal record never persisted")
			// SIGKILL-style crash: m1 is abandoned wholesale — no drain, no
			// terminal records, its worker parked forever.

			sink := &memSink{}
			m2 := newTestManager(t, Options{Dir: dir, Events: sink})
			got, err := m2.Get(st.ID)
			if err != nil {
				t.Fatalf("restarted manager lost the journaled job: %v", err)
			}
			if got.Attempts != 1 {
				t.Fatalf("requeued job attempts = %d, want 1", got.Attempts)
			}
			final := waitTerminal(t, m2, st.ID)
			if final.State != StateDone {
				t.Fatalf("requeued job = %s (%q), want done", final.State, final.Error)
			}
			if _, err := m2.Result(st.ID); err != nil {
				t.Fatal(err)
			}
			if sink.count(EventRequeued) != 1 {
				t.Fatalf("recorded %d %s events, want 1", sink.count(EventRequeued), EventRequeued)
			}
		})
	}
}

// TestChaosCrashLoopAbandonsJobAfterMaxAttempts: a job whose every run is
// interrupted by a crash is re-queued MaxAttempts times, then failed on
// the next boot instead of crash-looping forever.
func TestChaosCrashLoopAbandonsJobAfterMaxAttempts(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	defer close(block)

	m1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m1.testBeforeRun = func(*job) { <-block }
	st, err := m1.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	recPath := recordFile(dir, st.ID)
	waitRunning := func(m *Manager) {
		t.Helper()
		waitFor(t, func() bool {
			data, err := os.ReadFile(recPath)
			if err != nil {
				return false
			}
			rec, err := decodeRecord(data)
			return err == nil && rec.Status.State == StateRunning && rec.Attempts == mAttempts(m, st.ID)
		}, "running journal record never persisted")
	}
	waitRunning(m1)

	// Crash-loop: each boot re-queues, parks the job before planning, and
	// is abandoned again. MaxAttempts=2 allows attempts 1 and 2. The hook
	// rides in through Options — a re-queued job can start before New
	// returns, too early to set the hook on the Manager.
	for life := 0; life < 2; life++ {
		m, err := New(Options{Dir: dir, MaxAttempts: 2, testBeforeRun: func(*job) { <-block }})
		if err != nil {
			t.Fatal(err)
		}
		waitRunning(m)
	}

	sink := &memSink{}
	m4 := newTestManager(t, Options{Dir: dir, MaxAttempts: 2, Events: sink})
	final, err := m4.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || !strings.Contains(final.Error, "abandoned") {
		t.Fatalf("crash-looping job = %s (%q), want failed/abandoned", final.State, final.Error)
	}
	if sink.count(EventPoisoned) != 1 {
		t.Fatalf("recorded %d %s events, want 1", sink.count(EventPoisoned), EventPoisoned)
	}
}

// mAttempts reads a job's attempt counter through the manager.
func mAttempts(m *Manager, id string) int {
	st, err := m.Get(id)
	if err != nil {
		return -1
	}
	return st.Attempts
}

// TestChaosTornWriteQuarantinedOnBoot: a torn terminal-record write (the
// rename landed, the content is truncated) passes silently at write time —
// and is caught by the envelope checksum on the next boot, which moves the
// file to corrupt/, counts it, and reports it in a boot event.
func TestChaosTornWriteQuarantinedOnBoot(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			// One job persists exactly three records: the queued journal,
			// the running journal, the terminal record. Tear the third.
			in := fault.New(seed, fault.Rule{Point: fault.PointFSTorn, Kind: fault.KindTorn, Calls: []int{3}, TornBytes: 40})
			t.Log(in.String())
			m1, err := New(Options{Dir: dir, Fault: in})
			if err != nil {
				t.Fatal(err)
			}
			st, err := m1.Submit(seededRequest(t, seed))
			if err != nil {
				t.Fatal(err)
			}
			if got := waitTerminal(t, m1, st.ID); got.State != StateDone {
				t.Fatalf("job = %s (%q), want done (the torn write must look successful)", got.State, got.Error)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := m1.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
			if in.Fired(fault.PointFSTorn) != 1 {
				t.Fatalf("torn rule fired %d times, want 1 (%s)", in.Fired(fault.PointFSTorn), in.Stats())
			}

			reg := obsv.NewRegistry()
			skippedCounter := reg.Counter("nptsn_service_records_skipped_total", "")
			sink := &memSink{}
			m2 := newTestManager(t, Options{Dir: dir, Metrics: reg, Events: sink})
			if _, err := m2.Get(st.ID); !errors.Is(err, ErrNotFound) {
				t.Fatalf("torn record still resolves: %v", err)
			}
			if _, err := os.Stat(filepath.Join(dir, corruptDirName, "job-"+st.ID+".json")); err != nil {
				t.Fatalf("torn record not quarantined: %v", err)
			}
			if got := skippedCounter.Value(); got != 1 {
				t.Fatalf("records_skipped_total = %v, want 1", got)
			}
			ev, ok := sink.first(EventStoreCorrupt)
			if !ok {
				t.Fatalf("no %s boot event", EventStoreCorrupt)
			}
			if !strings.Contains(ev.Msg, st.ID) {
				t.Fatalf("boot event %q does not name the torn record", ev.Msg)
			}
		})
	}
}

// TestChaosWatchdogInterruptsStuckJob: exploration hangs on an injected
// fault (releasing only on context cancellation — a livelock, not a
// crash); the watchdog notices the silent heartbeat, cancels the job and
// marks it failed while the service keeps running.
func TestChaosWatchdogInterruptsStuckJob(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := fault.New(seed, fault.Rule{Point: fault.PointExplore, Kind: fault.KindHang, Prob: 1})
			t.Log(in.String())
			sink := &memSink{}
			m := newTestManager(t, Options{StuckTimeout: 250 * time.Millisecond, Events: sink, Fault: in})
			st, err := m.Submit(seededRequest(t, seed))
			if err != nil {
				t.Fatal(err)
			}
			final := waitTerminal(t, m, st.ID)
			if final.State != StateFailed || !strings.Contains(final.Error, "stalled") {
				t.Fatalf("hung job = %s (%q), want failed/stalled", final.State, final.Error)
			}
			if sink.count(EventStalled) != 1 {
				t.Fatalf("recorded %d %s events, want 1", sink.count(EventStalled), EventStalled)
			}
			// The pool survives a stalled job: a clean manager run would be
			// needed for a fresh plan, but status and results keep serving.
			if _, err := m.Get(st.ID); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChaosPoisonFingerprintQuarantined: a fingerprint that panics the
// planner PoisonPanics times is refused with ErrPoisoned instead of being
// fed to a worker again.
func TestChaosPoisonFingerprintQuarantined(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := fault.New(seed, fault.Rule{Point: fault.PointPlan, Kind: fault.KindPanic, Prob: 1})
			t.Log(in.String())
			m := newTestManager(t, Options{PoisonPanics: 2, Fault: in})
			req := seededRequest(t, seed)
			for i := 0; i < 2; i++ {
				st, err := m.Submit(req)
				if err != nil {
					t.Fatalf("submit %d: %v", i+1, err)
				}
				if got := waitTerminal(t, m, st.ID); got.State != StateFailed {
					t.Fatalf("crashing job %d = %s, want failed", i+1, got.State)
				}
			}
			if _, err := m.Submit(req); !errors.Is(err, ErrPoisoned) {
				t.Fatalf("third submission of a double-panicked fingerprint: %v, want ErrPoisoned", err)
			}
			// A different fingerprint is still welcome (and still crashes,
			// but that is its own budget).
			if _, err := m.Submit(seededRequest(t, seed+1000)); err != nil {
				t.Fatalf("unrelated fingerprint rejected: %v", err)
			}
		})
	}
}

// TestChaosENOSPCPersistKeepsServing: every record write failing with
// ENOSPC degrades persistence, not planning — the job completes, its
// result serves from memory, and each store failure is reported.
func TestChaosENOSPCPersistKeepsServing(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := fault.New(seed, fault.Rule{Point: fault.PointFSWrite, Kind: fault.KindENOSPC, Prob: 1})
			t.Log(in.String())
			dir := t.TempDir()
			sink := &memSink{}
			m := newTestManager(t, Options{Dir: dir, Events: sink, Fault: in})
			st, err := m.Submit(seededRequest(t, seed))
			if err != nil {
				t.Fatal(err)
			}
			if got := waitTerminal(t, m, st.ID); got.State != StateDone {
				t.Fatalf("job on a full disk = %s (%q), want done", got.State, got.Error)
			}
			if _, err := m.Result(st.ID); err != nil {
				t.Fatalf("in-memory result lost: %v", err)
			}
			if _, err := os.Stat(recordFile(dir, st.ID)); !os.IsNotExist(err) {
				t.Fatal("a record landed despite every write failing")
			}
			ev, ok := sink.first("store_error")
			if !ok {
				t.Fatal("store failures were swallowed silently")
			}
			if !strings.Contains(ev.Msg, "no space left") && !strings.Contains(ev.Msg, "ENOSPC") {
				t.Fatalf("store_error %q does not surface ENOSPC", ev.Msg)
			}
		})
	}
}

// TestChaosScheduleIsReproducible: the same seed and schedule fire on the
// same record-store calls across two full manager lives — the property
// that lets any chaos failure be replayed from its logged seed line.
func TestChaosScheduleIsReproducible(t *testing.T) {
	run := func(seed int64) (fired, calls int) {
		in := fault.New(seed, fault.Rule{Point: "fs.*", Kind: fault.KindError, Prob: 0.5})
		dir := t.TempDir()
		m := newTestManager(t, Options{Dir: dir, Fault: in})
		st, err := m.Submit(tinyRequest(t))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, m, st.ID)
		// Drain before reading counters: the terminal record is persisted
		// after the job's terminal channel closes.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		return in.Fired(fault.PointFSWrite) + in.Fired(fault.PointFSSync) + in.Fired(fault.PointFSRename),
			in.Calls(fault.PointFSWrite) + in.Calls(fault.PointFSSync) + in.Calls(fault.PointFSRename)
	}
	for _, seed := range chaosSeeds {
		f1, c1 := run(seed)
		f2, c2 := run(seed)
		if f1 != f2 || c1 != c2 {
			t.Fatalf("seed %d: life 1 fired %d/%d, life 2 fired %d/%d — schedule not reproducible",
				seed, f1, c1, f2, c2)
		}
		t.Logf("seed %d: fired %d of %d fs calls, both lives", seed, f1, c1)
	}
}
