package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obsv"
)

// newTestManager builds a Manager with test-friendly defaults and shuts it
// down at cleanup.
func newTestManager(t *testing.T, opt Options) *Manager {
	t.Helper()
	m, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return m
}

func TestSubmitRunsToDone(t *testing.T) {
	m := newTestManager(t, Options{})
	req := tinyRequest(t)

	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Fatalf("initial state = %s, want queued", st.State)
	}
	if st.Fingerprint == "" || len(st.Fingerprint) != 32 {
		t.Fatalf("fingerprint = %q, want 32 hex chars", st.Fingerprint)
	}

	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s), want done", final.State, final.Error)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Fatal("terminal status missing StartedAt/FinishedAt")
	}
	if final.Progress.Epoch != final.Progress.TotalEpochs {
		t.Fatalf("progress %d/%d, want completed run", final.Progress.Epoch, final.Progress.TotalEpochs)
	}

	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution == nil || !res.GuaranteeMet {
		t.Fatalf("result lacks a guaranteed solution: %+v", res)
	}

	// The service result must match a direct in-process run with the same
	// seed and configuration: planning is deterministic.
	want := directReport(t, req)
	if want.Best == nil {
		t.Fatal("direct run found no solution")
	}
	if res.Cost != want.Best.Cost {
		t.Fatalf("service cost %v != direct planner cost %v", res.Cost, want.Best.Cost)
	}
	if res.Epochs != len(want.Epochs) {
		t.Fatalf("service epochs %d != direct %d", res.Epochs, len(want.Epochs))
	}
}

func TestResultBeforeTerminalAndUnknownID(t *testing.T) {
	release := make(chan struct{})
	m := newTestManager(t, Options{})
	m.testBeforeRun = func(*job) { <-release }

	st, err := m.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(st.ID); !errors.Is(err, ErrNotTerminal) {
		t.Fatalf("Result(live) err = %v, want ErrNotTerminal", err)
	}
	if _, err := m.Get("deadbeefdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(unknown) err = %v, want ErrNotFound", err)
	}
	if _, err := m.Result("deadbeefdeadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Result(unknown) err = %v, want ErrNotFound", err)
	}
	close(release)
	waitTerminal(t, m, st.ID)
}

func TestCacheHit(t *testing.T) {
	reg := obsv.NewRegistry()
	m := newTestManager(t, Options{Metrics: reg})
	req := tinyRequest(t)

	first, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, first.ID)
	firstRes, err := m.Result(first.ID)
	if err != nil {
		t.Fatal(err)
	}

	second, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("duplicate submission was not a cache hit")
	}
	if second.State != StateDone {
		t.Fatalf("cache-hit state = %s, want done", second.State)
	}
	if second.ID == first.ID {
		t.Fatal("cache hit reused the original job ID")
	}
	secondRes, err := m.Result(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if secondRes.JobID != second.ID {
		t.Fatalf("cached result JobID = %s, want %s", secondRes.JobID, second.ID)
	}
	if secondRes.Cost != firstRes.Cost || secondRes.Fingerprint != firstRes.Fingerprint {
		t.Fatalf("cached result diverged: %+v vs %+v", secondRes, firstRes)
	}

	if v := reg.Counter("nptsn_service_cache_hits_total", "").Value(); v != 1 {
		t.Fatalf("cache_hits_total = %v, want 1", v)
	}
	if v := reg.Counter("nptsn_service_cache_misses_total", "").Value(); v != 1 {
		t.Fatalf("cache_misses_total = %v, want 1", v)
	}
	if v := reg.Counter("nptsn_service_jobs_done_total", "").Value(); v != 2 {
		t.Fatalf("jobs_done_total = %v, want 2", v)
	}

	// A different seed is a different plan: must miss.
	req.Params.Seed = 99
	third, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Fatal("different seed hit the cache")
	}
	waitTerminal(t, m, third.ID)
}

func TestQueueBackpressure(t *testing.T) {
	reg := obsv.NewRegistry()
	release := make(chan struct{})
	started := make(chan string, 4)
	m := newTestManager(t, Options{Workers: 1, QueueSize: 1, Metrics: reg})
	m.testBeforeRun = func(j *job) {
		started <- j.id
		<-release
	}

	req := tinyRequest(t)
	running, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker now holds the running job

	req.Params.Seed = 2 // distinct fingerprints so the cache cannot absorb them
	queued, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	req.Params.Seed = 3
	if _, err := m.Submit(req); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission err = %v, want ErrQueueFull", err)
	}
	if v := reg.Counter("nptsn_service_jobs_rejected_total", "").Value(); v != 1 {
		t.Fatalf("jobs_rejected_total = %v, want 1", v)
	}
	if v := reg.Gauge("nptsn_service_queue_depth", "").Value(); v != 1 {
		t.Fatalf("queue_depth = %v, want 1", v)
	}

	close(release)
	if st := waitTerminal(t, m, running.ID); st.State != StateDone {
		t.Fatalf("running job ended %s (%s)", st.State, st.Error)
	}
	if st := waitTerminal(t, m, queued.ID); st.State != StateDone {
		t.Fatalf("queued job ended %s (%s)", st.State, st.Error)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 2)
	m := newTestManager(t, Options{Workers: 1, QueueSize: 2})
	m.testBeforeRun = func(j *job) {
		started <- j.id
		<-release
	}
	defer close(release)

	req := tinyRequest(t)
	running, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	req.Params.Seed = 2
	queued, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("cancelled queued job state = %s", st.State)
	}
	if _, err := m.Result(queued.ID); err == nil {
		t.Fatal("cancelled job served a result")
	}
	_ = running
}

func TestCancelRunningJob(t *testing.T) {
	cancelled := make(chan struct{})
	started := make(chan string, 1)
	m := newTestManager(t, Options{})
	m.testBeforeRun = func(j *job) {
		started <- j.id
		<-cancelled // hold in running until Cancel has fired
	}

	st, err := m.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if got, err := m.Get(st.ID); err != nil || got.State != StateRunning {
		t.Fatalf("state while held = %s, err %v, want running", got.State, err)
	}
	if _, err := m.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	close(cancelled)

	final := waitTerminal(t, m, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("final state = %s, want cancelled", final.State)
	}
	// Cancelling again is a no-op.
	again, err := m.Cancel(st.ID)
	if err != nil || again.State != StateCancelled {
		t.Fatalf("re-cancel: state %s, err %v", again.State, err)
	}
}

func TestJobTimeoutInterruptsPlanning(t *testing.T) {
	m := newTestManager(t, Options{})
	req := tinyRequest(t)
	req.Params.Epochs = 512 // far beyond what 30ms of planning can finish
	req.Params.Steps = 256
	req.Params.TimeoutSec = 0.03

	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("timed-out job state = %s (%s), want done (interrupted)", final.State, final.Error)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("timed-out run not marked interrupted")
	}

	// Interrupted results are non-deterministic and must never be cached.
	dup, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if dup.CacheHit {
		t.Fatal("interrupted result was served from the cache")
	}
	waitTerminal(t, m, dup.ID)
}

func TestDrainCancelsQueuedAndRejectsSubmissions(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 1)
	m, err := New(Options{Workers: 1, QueueSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.testBeforeRun = func(j *job) {
		started <- j.id
		<-release
	}

	req := tinyRequest(t)
	running, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	req.Params.Seed = 2
	queued, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- m.Shutdown(ctx)
	}()

	// Draining starts immediately: new submissions bounce even while the
	// running job is still going.
	waitFor(t, m.isDraining, "manager did not enter draining state")
	req.Params.Seed = 3
	if _, err := m.Submit(req); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain err = %v, want ErrDraining", err)
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
	if st, _ := m.Get(running.ID); st.State != StateDone {
		t.Fatalf("running job after drain = %s (%s), want done", st.State, st.Error)
	}
	if st, _ := m.Get(queued.ID); st.State != StateCancelled {
		t.Fatalf("queued job after drain = %s, want cancelled", st.State)
	}
}

func TestForcedDrainInterruptsRunningJob(t *testing.T) {
	m, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := tinyRequest(t)
	req.Params.Epochs = 512
	req.Params.Steps = 256

	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		got, err := m.Get(st.ID)
		return err == nil && got.State == StateRunning
	}, "job never started running")

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err = %v, want DeadlineExceeded", err)
	}
	final, err := m.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("interrupted job state = %s (%s), want done", final.State, final.Error)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("forced-drain result not marked interrupted")
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := tinyRequest(t)

	m1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, st.ID)
	res1, err := m1.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// A fresh manager over the same directory re-serves the record…
	m2 := newTestManager(t, Options{Dir: dir})
	got, err := m2.Get(st.ID)
	if err != nil {
		t.Fatalf("restarted manager lost job %s: %v", st.ID, err)
	}
	if got.State != StateDone {
		t.Fatalf("re-served state = %s, want done", got.State)
	}
	res2, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost != res1.Cost || res2.Fingerprint != res1.Fingerprint {
		t.Fatalf("re-served result diverged: %+v vs %+v", res2, res1)
	}

	// …and re-seeds the plan cache: the same request is an instant hit.
	dup, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.CacheHit {
		t.Fatal("resubmission after restart missed the re-seeded cache")
	}

	// Deleting the terminal job removes its record but keeps the plan.
	if err := m2.Delete(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Get(st.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted job still resolves: %v", err)
	}
	dup2, err := m2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !dup2.CacheHit {
		t.Fatal("plan cache entry lost after job deletion")
	}
}

func TestListIsSubmissionOrdered(t *testing.T) {
	m := newTestManager(t, Options{QueueSize: 4})
	req := tinyRequest(t)
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		req.Params.Seed = seed
		st, err := m.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("List returned %d jobs, want 3", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Fatalf("List[%d] = %s, want %s (submission order)", i, st.ID, ids[i])
		}
	}
	for _, id := range ids {
		waitTerminal(t, m, id)
	}
}

func TestSubmitRejectsInvalidProblem(t *testing.T) {
	m := newTestManager(t, Options{})
	req := tinyRequest(t)
	req.Problem.NBF = "no-such-recovery-mechanism"
	if _, err := m.Submit(req); err == nil {
		t.Fatal("submit accepted an unknown recovery mechanism")
	}

	req = tinyRequest(t)
	req.Problem.Flows[0].Src = 99 // vertex out of range
	if _, err := m.Submit(req); err == nil {
		t.Fatal("submit accepted a flow with an out-of-range source")
	}
}

func TestCertifiedJob(t *testing.T) {
	m := newTestManager(t, Options{})
	req := tinyRequest(t)
	req.Certify = true
	req.CertifySamples = 32

	st, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Certify {
		t.Fatal("certify flag lost on submission")
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("certified job state = %s (%s), want done", final.State, final.Error)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Certificate == nil {
		t.Fatal("certified job carries no certificate")
	}
	if !res.Certificate.OK() {
		t.Fatalf("certificate verdict: %s", res.Certificate.Verdict)
	}

	// Certification is part of the cache key: the uncertified twin misses.
	plain := tinyRequest(t)
	dup, err := m.Submit(plain)
	if err != nil {
		t.Fatal(err)
	}
	if dup.CacheHit {
		t.Fatal("uncertified request hit the certified cache entry")
	}
	waitTerminal(t, m, dup.ID)
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t testing.TB, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}
