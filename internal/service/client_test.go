package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// dropFirstPost forwards everything to the real API but kills the
// connection of the first POST after the engine has accepted the job —
// the ambiguous-failure shape: the submission landed, the response died.
type dropFirstPost struct {
	mux http.Handler

	mu      sync.Mutex
	dropped bool
}

func (d *dropFirstPost) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	drop := r.Method == http.MethodPost && !d.dropped
	if drop {
		d.dropped = true
	}
	d.mu.Unlock()
	if !drop {
		d.mux.ServeHTTP(w, r)
		return
	}
	// Let the engine accept the job, then drop the connection without a
	// byte of response.
	d.mux.ServeHTTP(httptest.NewRecorder(), r)
	conn, _, err := w.(http.Hijacker).Hijack()
	if err != nil {
		panic(err)
	}
	conn.Close()
}

// TestClientSubmitIdempotentAcrossConnectionLoss: the first POST is
// accepted server-side but the response is lost; the client must adopt
// the existing job by fingerprint instead of submitting a duplicate.
func TestClientSubmitIdempotentAcrossConnectionLoss(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	srv := httptest.NewServer(&dropFirstPost{mux: NewMux(m, nil)})
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Backoff: 5 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, tinyRequest(t))
	if err != nil {
		t.Fatalf("submit across a dropped connection: %v", err)
	}
	if st.ID == "" {
		t.Fatal("adopted job has no ID")
	}
	if jobs := m.List(); len(jobs) != 1 {
		t.Fatalf("server holds %d jobs, want 1 — the retry duplicated the submission", len(jobs))
	}
	// The adopted job is fully usable: wait it out and fetch the result.
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job = %s (%q), want done", final.State, final.Error)
	}
	if _, err := c.Result(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
}

// TestClientHonorsRetryAfter: a 429 with Retry-After paces the retry at
// the server-directed delay rather than the client's own backoff.
func TestClientHonorsRetryAfter(t *testing.T) {
	var mu sync.Mutex
	var posts []time.Time
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts = append(posts, time.Now())
		n := len(posts)
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"0123456789abcdef","state":"queued","submittedAt":"2026-08-08T00:00:00Z","progress":{"epoch":0,"totalEpochs":1,"bestCost":0,"guaranteeMet":false,"reward":0,"solutions":0},"fingerprint":"x"}`))
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// Backoff far below the Retry-After: only honoring the header explains
	// a ≥1s gap between the attempts.
	c := &Client{BaseURL: srv.URL, Backoff: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "0123456789abcdef" {
		t.Fatalf("status = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(posts) != 2 {
		t.Fatalf("%d POST attempts, want 2", len(posts))
	}
	if gap := posts[1].Sub(posts[0]); gap < 900*time.Millisecond {
		t.Fatalf("retry came after %v, want ≥ ~1s (Retry-After ignored)", gap)
	}
}

// TestClientDoesNotRetryRejectedRequests: a clean 4xx (bad request,
// poisoned fingerprint) is terminal — one attempt, error surfaced.
func TestClientDoesNotRetryRejectedRequests(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"error":"poisoned"}`))
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Backoff: time.Millisecond}
	_, err := c.Submit(context.Background(), tinyRequest(t))
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want a 422 APIError", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 1 {
		t.Fatalf("%d attempts on a permanent rejection, want 1", attempts)
	}
}

// TestClientInvalidRequestFailsFast: a request the server would reject at
// prepare time never reaches the wire.
func TestClientInvalidRequestFailsFast(t *testing.T) {
	touched := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		touched = true
	}))
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	if _, err := c.Submit(context.Background(), Request{}); err == nil {
		t.Fatal("empty request accepted")
	}
	if touched {
		t.Fatal("invalid request reached the server")
	}
}

// TestClientBackoffAbortsOnCancel: a context cancelled while the client
// sleeps between retries aborts the backoff promptly and surfaces the
// cancellation (errors.Is context.Canceled), not just the retried failure.
func TestClientBackoffAbortsOnCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Every attempt bounces with a Retry-After that would park the
		// client for minutes if honored to the letter.
		w.Header().Set("Retry-After", "120")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"queue full"}`))
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Backoff: time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond) // let the first attempt land and the sleep begin
		cancel()
	}()
	start := time.Now()
	_, err := c.Submit(ctx, tinyRequest(t))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled surfaced", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s to abort the backoff sleep", elapsed)
	}
}

// TestClientClampsAbsurdRetryAfter: a server-directed Retry-After far past
// MaxRetryAfter paces the retry at the clamp, not the header.
func TestClientClampsAbsurdRetryAfter(t *testing.T) {
	var mu sync.Mutex
	var posts []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts = append(posts, time.Now())
		n := len(posts)
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "86400") // a day
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"queue full"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"0123456789abcdef","state":"queued","submittedAt":"2026-08-08T00:00:00Z","progress":{"epoch":0,"totalEpochs":1,"bestCost":0,"guaranteeMet":false,"reward":0,"solutions":0},"fingerprint":"x"}`))
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Backoff: time.Millisecond, MaxRetryAfter: 50 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Submit(ctx, tinyRequest(t)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(posts) != 2 {
		t.Fatalf("%d POST attempts, want 2", len(posts))
	}
	if gap := posts[1].Sub(posts[0]); gap > 5*time.Second {
		t.Fatalf("retry waited %v — the absurd Retry-After was trusted verbatim", gap)
	}
}

// TestClientCancel: DELETE through the client cancels a live job and
// returns its status snapshot.
func TestClientCancel(t *testing.T) {
	block := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(block)
		}
	}
	defer release()
	m := newTestManager(t, Options{Workers: 1, testBeforeRun: func(*job) { <-block }})
	srv := httptest.NewServer(NewMux(m, nil))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Backoff: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	release() // let the parked worker observe the cancelled context
	final, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled && final.State != StateFailed {
		t.Fatalf("cancelled job = %s, want cancelled", final.State)
	}
}

// TestClientPoisonedEndToEnd: the server's 422 for a poisoned fingerprint
// travels through the client untouched.
func TestClientPoisonedEndToEnd(t *testing.T) {
	in := fault.New(7, fault.Rule{Point: fault.PointPlan, Kind: fault.KindPanic, Prob: 1})
	m := newTestManager(t, Options{PoisonPanics: 1, Fault: in})
	srv := httptest.NewServer(NewMux(m, nil))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Backoff: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req := tinyRequest(t)
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if final, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil || final.State != StateFailed {
		t.Fatalf("crashing job = %v %v, want failed", final, err)
	}
	_, err = c.Submit(ctx, req)
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("resubmission of a poisoned fingerprint: %v, want 422", err)
	}
}
