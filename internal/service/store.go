package service

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"repro/internal/serialize"
)

// recordVersion is the on-disk job-record format version; loads reject an
// incompatible version rather than misreading it.
const recordVersion = 1

// record is the persisted form of a terminal job: its final status plus,
// for done jobs, the result. Records are written atomically (temp file +
// rename via serialize.WriteFileAtomic), so a crash mid-write never leaves
// a truncated record, and a restarted server re-serves every record it
// finds and re-seeds the plan cache from the done ones.
type record struct {
	Version int     `json:"version"`
	Status  Status  `json:"status"`
	Result  *Result `json:"result,omitempty"`
}

// recordFile is the job's file name inside the data directory. Job IDs
// are 16 hex digits (newJobID), so the name never needs escaping.
func recordFile(dir, id string) string {
	return filepath.Join(dir, "job-"+id+".json")
}

var recordNameRE = regexp.MustCompile(`^job-[0-9a-f]{16}\.json$`)

// saveRecord atomically persists one terminal job.
func saveRecord(dir string, rec record) error {
	return serialize.WriteFileAtomic(recordFile(dir, rec.Status.ID), func(w io.Writer) error {
		return serialize.WriteJSON(w, rec)
	})
}

// deleteRecord removes a job's record; a missing file is not an error
// (memory-only jobs have none).
func deleteRecord(dir, id string) error {
	err := os.Remove(recordFile(dir, id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// loadRecords reads every job record in dir, oldest submission first.
// Records that cannot be parsed (foreign files, future format versions)
// are skipped and counted rather than failing the boot: one bad file must
// not take the whole service down with it. A missing directory is created.
func loadRecords(dir string) (recs []record, skipped int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("service: data dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("service: data dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !recordNameRE.MatchString(e.Name()) {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			skipped++
			continue
		}
		var rec record
		decodeErr := serialize.ReadJSON(f, &rec)
		f.Close()
		if decodeErr != nil || rec.Version != recordVersion || rec.Status.ID == "" || !rec.Status.State.Terminal() {
			skipped++
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, k int) bool {
		return recs[i].Status.SubmittedAt.Before(recs[k].Status.SubmittedAt)
	})
	return recs, skipped, nil
}
