package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"repro/internal/failure"
	"repro/internal/serialize"
)

// recordVersion is the current on-disk job-record format: a checksummed
// envelope framing the record payload, so a torn write (rename landed,
// content truncated) is detected at load time instead of being misread.
// Version-1 records — raw, unchecksummed, terminal-only — are still read.
const (
	recordVersion       = 2
	legacyRecordVersion = 1
)

// corruptDirName is the quarantine subdirectory of the data dir. Files
// that fail to decode at boot are moved here — kept for post-mortem, out
// of the way of the next boot.
const corruptDirName = "corrupt"

// record is the persisted form of a job. Terminal jobs carry their final
// status plus, for done jobs, the result. Live jobs (queued, running) are
// the crash journal: they additionally carry the original Request, so a
// restarted server can re-queue them instead of silently dropping work
// that was accepted with a 202.
type record struct {
	Status Status  `json:"status"`
	Result *Result `json:"result,omitempty"`
	// Request is the journaled submission of a non-terminal job; terminal
	// records drop it (the result is what matters then).
	Request *Request `json:"request,omitempty"`
	// Attempts counts the server lives that have started this job; the
	// restart re-queue gives up past Options.MaxAttempts.
	Attempts int `json:"attempts,omitempty"`
}

// envelope is the version-2 on-disk frame: the JSON-encoded record plus a
// content digest over those exact bytes.
type envelope struct {
	Version int             `json:"version"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// legacyRecord is the version-1 frame: record fields inline, no checksum.
type legacyRecord struct {
	Version int     `json:"version"`
	Status  Status  `json:"status"`
	Result  *Result `json:"result,omitempty"`
}

// recordSum digests a record payload with the same 128-bit content hash
// the plan cache keys on, under a format-versioned domain prefix.
func recordSum(payload []byte) string {
	d := failure.NewDigest()
	d.Str("nptsn-service-record-v2")
	d.Bytes(payload)
	return d.Sum()
}

// recordFile is the job's file name inside the data directory. Job IDs
// are 16 hex digits (newJobID), so the name never needs escaping.
func recordFile(dir, id string) string {
	return filepath.Join(dir, "job-"+id+".json")
}

var recordNameRE = regexp.MustCompile(`^job-[0-9a-f]{16}\.json$`)

// saveRecord atomically persists one job under a checksummed envelope.
// faults is the filesystem fault-injection seam (nil in production).
func saveRecord(dir string, rec record, faults serialize.FSFaults) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	env := envelope{Version: recordVersion, Sum: recordSum(payload), Payload: payload}
	return serialize.WriteFileAtomicFS(recordFile(dir, rec.Status.ID), faults, func(w io.Writer) error {
		return serialize.WriteJSON(w, env)
	})
}

// deleteRecord removes a job's record; a missing file is not an error
// (memory-only jobs have none).
func deleteRecord(dir, id string) error {
	err := os.Remove(recordFile(dir, id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// decodeRecord parses one record file, current or legacy format. Every
// failure mode returns an error naming what was wrong — the reason ends up
// in the boot event next to the quarantined file.
func decodeRecord(data []byte) (record, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return record{}, fmt.Errorf("not a record envelope: %v", err)
	}
	var rec record
	switch env.Version {
	case recordVersion:
		// The envelope is written indented, which re-formats the embedded
		// payload; the checksum is defined over the compact form, so
		// re-compact before summing. A truncation that somehow kept the
		// JSON well-formed still changes the compact bytes.
		var compact bytes.Buffer
		if err := json.Compact(&compact, env.Payload); err != nil {
			return record{}, fmt.Errorf("record payload: %v", err)
		}
		if got := recordSum(compact.Bytes()); got != env.Sum {
			return record{}, fmt.Errorf("checksum mismatch (stored %s, computed %s): torn write or manual edit", env.Sum, got)
		}
		if err := json.Unmarshal(env.Payload, &rec); err != nil {
			return record{}, fmt.Errorf("record payload: %v", err)
		}
	case legacyRecordVersion:
		var leg legacyRecord
		if err := json.Unmarshal(data, &leg); err != nil {
			return record{}, fmt.Errorf("legacy record: %v", err)
		}
		rec = record{Status: leg.Status, Result: leg.Result}
		if !rec.Status.State.Terminal() {
			return record{}, fmt.Errorf("legacy record in non-terminal state %q", rec.Status.State)
		}
	default:
		return record{}, fmt.Errorf("record version %d, this build reads versions %d and %d",
			env.Version, legacyRecordVersion, recordVersion)
	}
	if rec.Status.ID == "" {
		return record{}, fmt.Errorf("record without a job ID")
	}
	switch rec.Status.State {
	case StateQueued, StateRunning:
		if rec.Request == nil {
			return record{}, fmt.Errorf("live record (%s) without its journaled request", rec.Status.State)
		}
	case StateDone, StateFailed, StateCancelled:
	default:
		return record{}, fmt.Errorf("unknown job state %q", rec.Status.State)
	}
	return rec, nil
}

// loadRecords reads every job record in dir, oldest submission first.
// Files that cannot be decoded — torn writes caught by the checksum,
// truncated JSON, future format versions, foreign files — are moved into
// dir/corrupt/ and reported in quarantined ("name: reason" lines): one bad
// file must not take the whole service down, but it must not vanish
// silently either. A missing directory is created.
func loadRecords(dir string) (recs []record, quarantined []string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: data dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("service: data dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		var reason string
		if !recordNameRE.MatchString(name) {
			reason = "not a job record (foreign file or temp residue)"
		} else if data, readErr := os.ReadFile(filepath.Join(dir, name)); readErr != nil {
			reason = readErr.Error()
		} else if rec, decErr := decodeRecord(data); decErr != nil {
			reason = decErr.Error()
		} else {
			recs = append(recs, rec)
			continue
		}
		if qErr := quarantineFile(dir, name); qErr != nil {
			return nil, nil, fmt.Errorf("service: quarantine %s: %w", name, qErr)
		}
		quarantined = append(quarantined, name+": "+reason)
	}
	sort.Slice(recs, func(i, k int) bool {
		return recs[i].Status.SubmittedAt.Before(recs[k].Status.SubmittedAt)
	})
	return recs, quarantined, nil
}

// quarantineFile moves one undecodable file into the corrupt/ dir.
func quarantineFile(dir, name string) error {
	qdir := filepath.Join(dir, corruptDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	return os.Rename(filepath.Join(dir, name), filepath.Join(qdir, name))
}
