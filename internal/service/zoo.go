package service

import "repro/internal/zoo"

// ZooEligible reports whether z holds a geometry-compatible pretrained
// policy for the request — i.e. whether the zoo fast path could serve it
// without training. The fleet coordinator uses this to short-circuit
// shard routing: a zoo-eligible job needs no replica-local plan or warm
// cache, so it can be placed on any alive replica.
//
// Delta requests are eligible only when they carry their base spec inline
// (the coordinator materializes tracked bases before asking); any request
// that fails validation is simply not eligible — Submit will surface the
// real error.
func ZooEligible(z *zoo.Zoo, req Request) bool {
	if z == nil || z.Len() == 0 {
		return false
	}
	if req.IsDelta() {
		if !req.HasInlineProblem() {
			return false
		}
		derived, err := req.Derive(req.Problem)
		if err != nil {
			return false
		}
		req = derived
	}
	prep, err := prepare(req)
	if err != nil {
		return false
	}
	geo, err := zoo.GeometryOf(prep.prob, prep.cfg)
	if err != nil {
		return false
	}
	_, ok := z.Lookup(geo, zoo.FeaturesOf(prep.prob))
	return ok
}
