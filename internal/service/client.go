package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is a retrying client for the service's HTTP API (NewMux), safe
// for concurrent use. Transient failures — transport errors, 5xx, 429
// backpressure — are retried with jittered exponential backoff, honoring
// the server's Retry-After pacing. Submissions are idempotent end to end:
// when a POST fails ambiguously (the connection died after the server may
// already have accepted the job), the client re-finds the job by its
// fingerprint instead of resubmitting, so one logical submission never
// plans twice.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Retries is the per-call retry budget beyond the first attempt
	// (default 4).
	Retries int
	// Backoff is the base of the exponential backoff (default 100ms):
	// retry n sleeps Backoff×2ⁿ plus up to 50% jitter.
	Backoff time.Duration
	// MaxBackoff caps every sleep, including server-directed Retry-After
	// pacing (default 30s).
	MaxBackoff time.Duration
	// MaxRetryAfter caps how long a server-directed Retry-After header may
	// pace a retry (default MaxBackoff). The server's estimate is advice,
	// not a contract: a buggy or overloaded server advertising an absurd
	// pause must not park the client for it.
	MaxRetryAfter time.Duration
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: server returned %d: %s", e.StatusCode, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

func (c *Client) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 100 * time.Millisecond
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return 30 * time.Second
}

func (c *Client) maxRetryAfter() time.Duration {
	if c.MaxRetryAfter > 0 {
		return c.MaxRetryAfter
	}
	return c.maxBackoff()
}

// delay computes the sleep before retry number attempt (0-based): the
// server's Retry-After when it sent one (clamped to MaxRetryAfter instead
// of trusted verbatim), else jittered exponential backoff; both capped at
// MaxBackoff.
func (c *Client) delay(attempt int, retryAfter time.Duration) time.Duration {
	d := retryAfter
	if d > 0 {
		if max := c.maxRetryAfter(); d > max {
			d = max
		}
	} else {
		d = c.backoff() << attempt
		d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	}
	if max := c.maxBackoff(); d > max {
		d = max
	}
	return d
}

// sleep waits d or until ctx is cancelled.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit posts one planning request and returns the accepted (or
// cache-hit) job's status. An invalid request fails fast without touching
// the server. On an ambiguous transport failure the job is re-found by
// fingerprint before any resubmission, keeping the submission idempotent
// even when the first response was lost.
func (c *Client) Submit(ctx context.Context, req Request) (Status, error) {
	// The same canonicalization the server runs; it yields the fingerprint
	// the accepted job will carry, which is what makes re-finding possible.
	// A delta request that references a server-side base cannot be
	// fingerprinted locally (only the server holds the base spec); it is
	// posted as-is, skipping the adopt-by-fingerprint rescue.
	fingerprint := ""
	if !req.IsDelta() || req.HasInlineProblem() {
		fp, err := Fingerprint(req)
		if err != nil {
			return Status{}, err
		}
		fingerprint = fp
	}
	body, err := json.Marshal(req)
	if err != nil {
		return Status{}, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		st, retryAfter, ambiguous, err := c.postJob(ctx, body)
		if err == nil {
			return st, nil
		}
		lastErr = err
		if !retryableSubmit(err) || attempt >= c.retries() {
			return Status{}, lastErr
		}
		if ambiguous && fingerprint != "" {
			// The server may have accepted the job before the connection
			// died; resubmitting would plan it twice. Adopt the existing
			// job when the fingerprint resolves.
			if st, ok := c.FindByFingerprint(ctx, fingerprint); ok {
				return st, nil
			}
		}
		if serr := c.sleep(ctx, c.delay(attempt, retryAfter)); serr != nil {
			// The caller gave up mid-backoff: surface the cancellation (so
			// errors.Is(err, context.Canceled) holds) alongside the failure
			// that was being retried.
			return Status{}, fmt.Errorf("%w (retrying after: %v)", serr, lastErr)
		}
	}
}

// postJob runs one POST /v1/jobs attempt. ambiguous reports whether the
// server might have accepted the job despite the error.
func (c *Client) postJob(ctx context.Context, body []byte) (st Status, retryAfter time.Duration, ambiguous bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return Status{}, 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// The connection failed somewhere between send and response: the
		// request may or may not have reached the engine.
		return Status{}, 0, true, fmt.Errorf("service: submit: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			// The job was accepted but the status was cut off mid-body.
			return Status{}, 0, true, fmt.Errorf("service: submit response: %w", err)
		}
		return st, 0, false, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		// An explicit rejection: nothing was enqueued, safe to resubmit
		// after the server's pacing.
		return Status{}, parseRetryAfter(resp), false, apiError(resp)
	case resp.StatusCode >= 500:
		return Status{}, 0, true, apiError(resp)
	default:
		return Status{}, 0, false, apiError(resp)
	}
}

// retryableSubmit reports whether a submit error is worth another attempt:
// transport failures and everything but a clean 4xx verdict. 503 is the
// drain window — the replacement server may be up by the next attempt.
func retryableSubmit(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return true // transport error
	}
	return ae.StatusCode == http.StatusTooManyRequests ||
		ae.StatusCode == http.StatusServiceUnavailable ||
		ae.StatusCode >= 500
}

// FindByFingerprint lists the server's jobs and returns the newest one
// carrying the fingerprint, if any. Submit uses it to adopt a job whose
// acceptance response was lost; the fleet coordinator uses it to make
// failover hand-offs idempotent — adopting work a replica already owns
// instead of planning it twice.
func (c *Client) FindByFingerprint(ctx context.Context, fingerprint string) (Status, bool) {
	var all []Status
	if err := c.getJSON(ctx, "/v1/jobs", &all); err != nil {
		return Status{}, false
	}
	found := false
	var best Status
	for _, st := range all {
		if st.Fingerprint != fingerprint {
			continue
		}
		if !found || st.SubmittedAt.After(best.SubmittedAt) {
			best, found = st, true
		}
	}
	return best, found
}

// Get returns a job's status, retrying transient failures.
func (c *Client) Get(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// Result returns a finished job's result, retrying transient failures.
// The server answers 409 while the job is live; Wait first.
func (c *Client) Result(ctx context.Context, id string) (*Result, error) {
	var res Result
	if err := c.getJSON(ctx, "/v1/jobs/"+id+"/result", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel requests cancellation of a live job (DELETE /v1/jobs/{id}) and
// returns the resulting status snapshot. Cancellation is idempotent on the
// server, so transient failures are retried like any GET.
func (c *Client) Cancel(ctx context.Context, id string) (Status, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		st, err := c.cancelOnce(ctx, id)
		if err == nil {
			return st, nil
		}
		lastErr = err
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode < 500 && ae.StatusCode != http.StatusTooManyRequests {
			return Status{}, err
		}
		if attempt >= c.retries() {
			return Status{}, lastErr
		}
		if serr := c.sleep(ctx, c.delay(attempt, 0)); serr != nil {
			return Status{}, fmt.Errorf("%w (retrying after: %v)", serr, lastErr)
		}
	}
}

func (c *Client) cancelOnce(ctx context.Context, id string) (Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Status{}, fmt.Errorf("service: cancel %s: %w", id, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return Status{}, fmt.Errorf("service: cancel response: %w", err)
		}
		return st, nil
	case http.StatusNoContent:
		// The job was already terminal and the server deleted its record.
		return Status{ID: id}, nil
	default:
		return Status{}, apiError(resp)
	}
}

// Wait polls a job's status every poll interval (default 500ms) until it
// reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (Status, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return Status{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := c.sleep(ctx, poll); err != nil {
			return Status{}, err
		}
	}
}

// getJSON runs a GET with retries (GETs are idempotent, so every failure
// short of a clean 4xx is retried) and decodes the response into out.
func (c *Client) getJSON(ctx context.Context, path string, out interface{}) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.getOnce(ctx, path, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode < 500 && ae.StatusCode != http.StatusTooManyRequests {
			return err
		}
		if attempt >= c.retries() {
			return lastErr
		}
		if serr := c.sleep(ctx, c.delay(attempt, 0)); serr != nil {
			return fmt.Errorf("%w (retrying after: %v)", serr, lastErr)
		}
	}
}

func (c *Client) getOnce(ctx context.Context, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("service: get %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError reads the server's {"error": ...} body into an *APIError.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var msg struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &msg) != nil || msg.Error == "" {
		msg.Error = strings.TrimSpace(string(body))
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg.Error}
}

// parseRetryAfter reads a Retry-After header in seconds (0 when absent or
// unparsable; HTTP-date forms are not produced by this server).
func parseRetryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
