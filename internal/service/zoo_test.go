package service

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nbf"
	"repro/internal/serialize"
	"repro/internal/zoo"
)

// pretrainTinyZoo trains one policy on tinyRequest's problem under its
// effective configuration and stores it in a fresh zoo — the fixture the
// fast-path tests serve from.
func pretrainTinyZoo(t *testing.T) *zoo.Zoo {
	t.Helper()
	req := tinyRequest(t)
	prob, err := serialize.DecodeProblem(req.Problem, nbf.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	cfg := req.Params.normalized().config()
	pl, err := core.NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if report.Best == nil {
		t.Fatal("pretraining found no plan; the fixture budget is too small")
	}
	z, _, err := zoo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	geo, err := zoo.GeometryOf(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.Add(zoo.Entry{
		Name:          "tiny",
		Geometry:      geo,
		Features:      zoo.FeaturesOf(prob),
		TrainedEpochs: len(report.Epochs),
		BestCost:      report.Best.Cost,
		CreatedAtUnix: time.Now().Unix(),
	}, report.FinalWeights); err != nil {
		t.Fatal(err)
	}
	return z
}

// TestZooHitServesCertifiedPlanWithZeroEpochs is the acceptance test for
// the inference fast path: a zoo-armed manager answers a matching
// submission with a certified plan and spends no training epochs on it.
func TestZooHitServesCertifiedPlanWithZeroEpochs(t *testing.T) {
	z := pretrainTinyZoo(t)
	m := newTestManager(t, Options{Zoo: z})

	st, err := m.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s), want done", final.State, final.Error)
	}
	if final.Provenance != ProvenanceZoo {
		t.Fatalf("status provenance = %q, want %q", final.Provenance, ProvenanceZoo)
	}
	if len(final.Chain) != 1 || final.Chain[0] != "zoo" {
		t.Fatalf("attempt chain = %v, want [zoo]", final.Chain)
	}

	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs != 0 {
		t.Fatalf("zoo hit trained %d epochs, want 0", res.Epochs)
	}
	if res.Provenance != ProvenanceZoo {
		t.Fatalf("result provenance = %q, want %q", res.Provenance, ProvenanceZoo)
	}
	if res.Solution == nil || !res.GuaranteeMet {
		t.Fatalf("zoo result lacks a guaranteed solution: %+v", res)
	}
	// The accept gate is unconditional: even without ?certify the result
	// carries the audit's certificate.
	if res.Certificate == nil || !res.Certificate.OK() {
		t.Fatal("zoo result served without a passing certificate")
	}
}

// TestZooRejectFallsBackToTraining forces the certification gate to fail
// (the candidate plan is tampered with after the rollout) and asserts the
// attempt chain degrades to cold training instead of failing the job.
func TestZooRejectFallsBackToTraining(t *testing.T) {
	z := pretrainTinyZoo(t)
	m := newTestManager(t, Options{
		Zoo: z,
		// Recorded-vs-recomputed cost mismatch: verification rejects the
		// candidate exactly as it would a genuinely broken transfer.
		testZooTamper: func(sol *core.Solution) { sol.Cost += 1000 },
	})

	st, err := m.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s), want done — a zoo reject must not fail the job", final.State, final.Error)
	}
	if final.Provenance != ProvenanceTrained {
		t.Fatalf("status provenance = %q, want %q", final.Provenance, ProvenanceTrained)
	}
	if len(final.Chain) != 2 || final.Chain[0] != "zoo" || final.Chain[1] != "cold" {
		t.Fatalf("attempt chain = %v, want [zoo cold]", final.Chain)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Fatal("fallback did not train")
	}
	if res.Provenance != ProvenanceTrained {
		t.Fatalf("result provenance = %q, want %q", res.Provenance, ProvenanceTrained)
	}
	if res.Solution == nil || !res.GuaranteeMet {
		t.Fatalf("fallback result lacks a guaranteed solution: %+v", res)
	}
}

// TestCacheReServePreservesZooProvenance pins the provenance contract on
// the plan cache: a re-served result keeps how the plan was computed
// ("zoo"), while the re-serving job's own status says "cache".
func TestCacheReServePreservesZooProvenance(t *testing.T) {
	z := pretrainTinyZoo(t)
	m := newTestManager(t, Options{Zoo: z})

	first, err := m.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, m, first.ID); st.Provenance != ProvenanceZoo {
		t.Fatalf("first job provenance = %q, want %q", st.Provenance, ProvenanceZoo)
	}

	second, err := m.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, m, second.ID)
	if st.Provenance != ProvenanceCache {
		t.Fatalf("cache-hit status provenance = %q, want %q", st.Provenance, ProvenanceCache)
	}
	res, err := m.Result(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Provenance != ProvenanceZoo {
		t.Fatalf("re-served result provenance = %q, want the original %q", res.Provenance, ProvenanceZoo)
	}
	if res.Epochs != 0 || res.Certificate == nil {
		t.Fatalf("re-serve dropped the zoo result's content: epochs=%d cert=%v", res.Epochs, res.Certificate != nil)
	}
}

// TestTrainedProvenanceWithoutZoo pins the default attribution: a plain
// manager (no zoo) reports cold training.
func TestTrainedProvenanceWithoutZoo(t *testing.T) {
	m := newTestManager(t, Options{})
	st, err := m.Submit(tinyRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if final.Provenance != ProvenanceTrained {
		t.Fatalf("provenance = %q, want %q", final.Provenance, ProvenanceTrained)
	}
	if len(final.Chain) != 1 || final.Chain[0] != "cold" {
		t.Fatalf("chain = %v, want [cold]", final.Chain)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Provenance != ProvenanceTrained {
		t.Fatalf("result provenance = %q", res.Provenance)
	}
}

// TestZooEligible covers the coordinator's routing predicate.
func TestZooEligible(t *testing.T) {
	z := pretrainTinyZoo(t)
	req := tinyRequest(t)
	if !ZooEligible(z, req) {
		t.Fatal("matching request reported ineligible")
	}
	if ZooEligible(nil, req) {
		t.Fatal("nil zoo reported eligible")
	}
	empty, _, err := zoo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if ZooEligible(empty, req) {
		t.Fatal("empty zoo reported eligible")
	}
	// A different geometry (other K) misses the zoo.
	other := tinyRequest(t)
	other.Params.K = 8
	if ZooEligible(z, other) {
		t.Fatal("geometry-incompatible request reported eligible")
	}
}
