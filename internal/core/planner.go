package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/rl"
)

// EpochStats records one training epoch for reporting (the Fig. 5 curves).
type EpochStats struct {
	Epoch int
	// Reward is the mean total reward per trajectory of the epoch (the
	// "epoch reward" axis of Fig. 5).
	Reward float64
	// Trajectories, Solutions and DeadEnds count path outcomes.
	Trajectories int
	Solutions    int
	DeadEnds     int
	// BestCost is the best solution cost found so far (0 when none yet).
	BestCost float64
	// PolicyLoss/ValueLoss/KL summarize the PPO update.
	PolicyLoss float64
	ValueLoss  float64
	ApproxKL   float64
	// Duration is the wall-clock time of the epoch (exploration +
	// update); the paper reports ~39 s/epoch for ORION and ~10 s for ADS
	// on its Python stack.
	Duration time.Duration
}

// Report is the full training outcome.
type Report struct {
	Best   *Solution
	Epochs []EpochStats
	// TotalNBFCalls counts recovery simulations across all workers.
	TotalNBFCalls int
	// FinalWeights snapshots the trained policy/value networks; feed them
	// into Config.InitialWeights to continue training or to plan related
	// problem instances without starting cold.
	FinalWeights [][]float64
}

// GuaranteeMet reports whether any recorded solution satisfied the goal.
func (r *Report) GuaranteeMet() bool { return r.Best != nil }

// Planner runs NPTSN's training loop (Algorithm 2) over a problem.
type Planner struct {
	prob *Problem
	cfg  Config
}

// NewPlanner validates inputs and builds a planner.
func NewPlanner(prob *Problem, cfg Config) (*Planner, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Planner{prob: prob, cfg: cfg}, nil
}

// worker bundles one exploration worker's replica state.
type worker struct {
	env  *Env
	nets *Nets
	rng  *rand.Rand
	buf  *rl.Buffer

	trajectories int
	solutions    int
	deadEnds     int
	err          error
}

// explore gathers `steps` environment steps into the worker's buffer
// (Algorithm 2 lines 4-18, per processor).
func (w *worker) explore(steps int) {
	for j := 0; j < steps; j++ {
		obs := w.env.Observation()
		mask := append([]bool(nil), w.env.Mask()...)
		if allFalse(mask) {
			// The empty start state offers no actions at all — the problem
			// is unsolvable by construction; stop this worker's epoch.
			w.err = fmt.Errorf("planner: no valid actions from the start state")
			return
		}
		logits := w.nets.ForwardPolicy(obs)
		masked := nn.MaskLogits(logits, mask)
		probs := nn.Softmax(masked)
		action := nn.SampleCategorical(w.rng, probs)
		logp := nn.LogSoftmax(masked)[action]
		value := w.nets.ForwardValue(obs)

		reward, outcome, err := w.env.Step(action)
		if err != nil {
			w.err = err
			return
		}
		w.buf.Store(rl.Step{
			Obs: obs, Action: action, Mask: mask,
			LogP: logp, Value: value, Reward: reward,
		})
		switch outcome {
		case OutcomeSolved:
			w.trajectories++
			w.solutions++
			w.buf.FinishPath(0)
		case OutcomeDeadEnd:
			w.trajectories++
			w.deadEnds++
			w.buf.FinishPath(0)
		}
	}
	// Bootstrap the value of a cut-off trajectory.
	w.trajectories++ // the trailing partial path counts for reward averaging
	w.buf.FinishPath(w.nets.ForwardValue(w.env.Observation()))
}

func allFalse(mask []bool) bool {
	for _, m := range mask {
		if m {
			return false
		}
	}
	return true
}

// Plan trains the decision maker and returns the best TSSDN found together
// with the per-epoch training statistics.
func (p *Planner) Plan() (*Report, error) {
	global, err := p.buildNets(rand.New(rand.NewSource(p.cfg.Seed)))
	if err != nil {
		return nil, err
	}
	if p.cfg.InitialWeights != nil {
		if err := global.ImportWeights(p.cfg.InitialWeights); err != nil {
			return nil, fmt.Errorf("planner: warm start: %w", err)
		}
	}
	ppo, err := rl.NewPPO(p.cfg.ppoConfig())
	if err != nil {
		return nil, err
	}

	workers := make([]*worker, p.cfg.Workers)
	for i := range workers {
		wrng := rand.New(rand.NewSource(p.cfg.Seed + int64(i)*7919 + 1))
		env, err := NewEnv(p.prob, p.cfg, p.cfg.Seed+int64(i)*104729+2)
		if err != nil {
			return nil, err
		}
		nets, err := p.buildNets(rand.New(rand.NewSource(p.cfg.Seed)))
		if err != nil {
			return nil, err
		}
		nets.SyncFrom(global)
		workers[i] = &worker{env: env, nets: nets, rng: wrng}
	}

	// Trivial problem: the empty network already satisfies the goal.
	if workers[0].env.Solved() {
		sol := &Solution{
			Topology:   workers[0].env.State().Topo.Clone(),
			Assignment: workers[0].env.State().Assign.Clone(),
		}
		return &Report{Best: sol}, nil
	}

	report := &Report{}
	stepsPerWorker := p.cfg.MaxStep / p.cfg.Workers
	if stepsPerWorker == 0 {
		stepsPerWorker = 1
	}

	for epoch := 1; epoch <= p.cfg.MaxEpoch; epoch++ {
		epochStart := time.Now()
		var wg sync.WaitGroup
		for _, w := range workers {
			w.buf = rl.NewBuffer(p.cfg.Discount, p.cfg.GAELambda)
			w.trajectories, w.solutions, w.deadEnds = 0, 0, 0
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				w.explore(stepsPerWorker)
			}(w)
		}
		wg.Wait()

		merged := rl.NewBuffer(p.cfg.Discount, p.cfg.GAELambda)
		es := EpochStats{Epoch: epoch}
		for _, w := range workers {
			if w.err != nil {
				return nil, w.err
			}
			if err := merged.Merge(w.buf); err != nil {
				return nil, err
			}
			es.Trajectories += w.trajectories
			es.Solutions += w.solutions
			es.DeadEnds += w.deadEnds
		}
		es.Reward = merged.EpochReward(es.Trajectories)

		// Gradient update on the merged batch (equivalent to averaging the
		// per-worker gradient estimators, §IV-C), then synchronize replicas.
		stats, err := ppo.Update(global, merged)
		if err != nil {
			return nil, err
		}
		es.PolicyLoss, es.ValueLoss, es.ApproxKL = stats.PolicyLoss, stats.ValueLoss, stats.ApproxKL
		for _, w := range workers {
			w.nets.SyncFrom(global)
		}

		if best := p.bestOf(workers); best != nil {
			if report.Best == nil || best.Cost < report.Best.Cost {
				b := best.Clone()
				b.FoundAtEpoch = epoch
				report.Best = b
			}
			es.BestCost = report.Best.Cost
		}
		es.Duration = time.Since(epochStart)
		report.Epochs = append(report.Epochs, es)
	}
	for _, w := range workers {
		report.TotalNBFCalls += w.env.NBFCalls
	}
	report.FinalWeights = global.ExportWeights()
	return report, nil
}

// buildNets constructs the network stack for the problem geometry.
func (p *Planner) buildNets(rng *rand.Rand) (*Nets, error) {
	soag, err := NewSOAG(p.prob, p.cfg.K)
	if err != nil {
		return nil, err
	}
	enc := NewEncoderWithOptions(p.prob, p.cfg.K, p.cfg.PerFlowEncoding)
	return NewNets(rng, enc, soag.ActionSpaceSize(), p.cfg)
}

// bestOf returns the cheapest solution across workers (nil if none).
func (p *Planner) bestOf(workers []*worker) *Solution {
	var best *Solution
	for _, w := range workers {
		b := w.env.Best()
		if b == nil {
			continue
		}
		if best == nil || b.Cost < best.Cost {
			best = b
		}
	}
	return best
}
