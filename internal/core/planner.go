package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/failure"
	"repro/internal/nn"
	"repro/internal/obsv"
	"repro/internal/rl"
	"repro/internal/rng"
)

// EpochStats records one training epoch for reporting (the Fig. 5 curves).
type EpochStats struct {
	Epoch int
	// Reward is the mean total reward per trajectory of the epoch (the
	// "epoch reward" axis of Fig. 5).
	Reward float64
	// Trajectories, Solutions and DeadEnds count path outcomes.
	Trajectories int
	Solutions    int
	DeadEnds     int
	// BestCost is the best solution cost found so far (0 when none yet).
	BestCost float64
	// PolicyLoss/ValueLoss/KL summarize the PPO update.
	PolicyLoss float64
	ValueLoss  float64
	ApproxKL   float64
	// Entropy and ClipFraction summarize the policy distribution's health
	// during the update; PolicyIters counts the gradient iterations
	// actually run and EarlyStopped records whether the KL bound cut them
	// short (SpinningUp's early-stopping convention).
	Entropy      float64 `json:",omitempty"`
	ClipFraction float64 `json:",omitempty"`
	PolicyIters  int     `json:",omitempty"`
	EarlyStopped bool    `json:",omitempty"`
	// AdamSteps is the lifetime actor+critic optimizer update count after
	// this epoch.
	AdamSteps int `json:",omitempty"`
	// EnvSteps is the number of environment steps trained on this epoch
	// (the merged batch size); EnvResets counts construction resets
	// (solutions + dead ends + re-arms) across all workers this epoch.
	EnvSteps  int `json:",omitempty"`
	EnvResets int `json:",omitempty"`
	// NBFCalls counts the recovery simulations the failure analyzer ran
	// this epoch (Algorithm 3 scenario throughput; cache hits excluded).
	NBFCalls int `json:",omitempty"`
	// Panics lists the recovered panics of quarantined workers this epoch
	// (empty in a healthy epoch); their step quota was rebalanced across
	// the surviving workers.
	Panics []string `json:",omitempty"`
	// Divergences counts NaN-watchdog rollbacks during this epoch's PPO
	// update; each one halved both learning rates.
	Divergences int `json:",omitempty"`
	// Duration is the wall-clock time of the epoch (exploration +
	// update); the paper reports ~39 s/epoch for ORION and ~10 s for ADS
	// on its Python stack.
	Duration time.Duration
	// AnalysisTime is the failure-analysis wall-clock summed across the
	// epoch's workers — the Algorithm 3 share of the epoch cost.
	AnalysisTime time.Duration `json:",omitempty"`
	// AnalysisCacheHits / AnalysisCacheMisses count verdict-cache lookups
	// during the epoch (zero when no cache is configured).
	AnalysisCacheHits   int `json:",omitempty"`
	AnalysisCacheMisses int `json:",omitempty"`
}

// Report is the full training outcome.
type Report struct {
	Best   *Solution
	Epochs []EpochStats
	// TotalNBFCalls counts recovery simulations across all workers.
	TotalNBFCalls int
	// FinalWeights snapshots the trained policy/value networks; feed them
	// into Config.InitialWeights to continue training or to plan related
	// problem instances without starting cold.
	FinalWeights [][]float64
	// Interrupted is true when training stopped early because the context
	// was cancelled (deadline or signal). Epochs then holds only the
	// completed epochs; the in-flight epoch was discarded so that a
	// checkpoint-resumed run stays bit-identical to an uninterrupted one.
	Interrupted bool
	// Warm reports the warm-start pruning outcome when Config.WarmStart was
	// set (nil for from-scratch runs).
	Warm *WarmStartInfo
}

// GuaranteeMet reports whether any recorded solution satisfied the goal.
func (r *Report) GuaranteeMet() bool { return r.Best != nil }

// Planner runs NPTSN's training loop (Algorithm 2) over a problem.
type Planner struct {
	prob *Problem
	cfg  Config

	// hooks are test-only injection points (fault injection, epoch fences).
	hooks plannerHooks
}

// plannerHooks lets resilience tests inject faults deterministically.
type plannerHooks struct {
	// explorePanic runs at the start of each worker's exploration; a test
	// hook may panic to simulate a crashing worker.
	explorePanic func(epoch, worker int)
	// afterEpoch runs after each completed epoch (e.g. to cancel a ctx).
	afterEpoch func(epoch int)
}

// NewPlanner validates inputs and builds a planner.
func NewPlanner(prob *Problem, cfg Config) (*Planner, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Planner{prob: prob, cfg: cfg}, nil
}

// worker bundles one exploration worker's replica state.
type worker struct {
	env  *Env
	nets *Nets
	src  *rng.Source
	rng  *rand.Rand
	buf  *rl.Buffer

	// batch, when non-nil, routes the worker's policy/value evaluations
	// through the shared batching barrier instead of its own nets (in that
	// mode nets aliases the global networks and is never called directly).
	batch *policyBatcher
	// scratch holds the worker's action-space vectors: batched logits land
	// in scratch.Logits, masking/softmax/log-softmax reuse the rest. One
	// arena per worker keeps every exploration step allocation-free.
	scratch *nn.Scratch
	// batchVal is the critic-value destination handed to batch.eval (a
	// worker field rather than a loop local so taking its address does not
	// allocate).
	batchVal float64

	// maskArena backs the per-step action-mask copies stored in buf. The
	// buffer retains every mask until the epoch's PPO update consumes it,
	// so the copies are carved out of one chunk instead of one allocation
	// per step; maskOff resets when the buffer is replaced.
	maskArena []bool
	maskOff   int

	trajectories int
	solutions    int
	deadEnds     int
	err          error
	panicMsg     string
	interrupted  bool
}

// copyMask stores a stable copy of src in the worker's mask arena. A full
// arena is replaced by a fresh chunk — slices carved earlier stay valid in
// the buffer.
func (w *worker) copyMask(src []bool) []bool {
	if len(w.maskArena)-w.maskOff < len(src) {
		n := 256 * len(src)
		if n < 4096 {
			n = 4096
		}
		w.maskArena = make([]bool, n)
		w.maskOff = 0
	}
	dst := w.maskArena[w.maskOff : w.maskOff+len(src) : w.maskOff+len(src)]
	w.maskOff += len(src)
	copy(dst, src)
	return dst
}

// explore gathers `steps` environment steps into the worker's buffer
// (Algorithm 2 lines 4-18, per processor). It stops early when ctx is
// cancelled, leaving the buffer in an undefined (possibly unfinished)
// state; the planner discards the whole epoch in that case.
func (w *worker) explore(ctx context.Context, steps int) {
	if w.batch != nil {
		// Join the batching barrier for the duration of this round. The
		// deferred depart runs on every exit — normal return, error, ctx
		// cancellation or panic — *before* the planner's panic recovery, so
		// a dying worker can never strand the others at the barrier.
		w.batch.join()
		defer w.batch.depart()
	}
	for j := 0; j < steps; j++ {
		if ctx.Err() != nil {
			w.interrupted = true
			return
		}
		obs := w.env.Observation()
		mask := w.copyMask(w.env.Mask())
		if allFalse(mask) {
			// The empty start state offers no actions at all — the problem
			// is unsolvable by construction; stop this worker's epoch.
			w.err = fmt.Errorf("planner: no valid actions from the start state")
			return
		}
		var logits []float64
		if w.batch != nil {
			// Blocks until every active worker submitted its observation,
			// then one batched forward fills logits and batchVal. Row i of
			// the batch is bit-identical to a single forward of obs[i], and
			// the action below is drawn from this worker's own RNG stream,
			// so batch composition cannot influence the trajectory.
			w.batch.eval(obs, w.scratch.Logits, &w.batchVal)
			logits = w.scratch.Logits
		} else {
			logits = w.nets.ForwardPolicy(obs)
		}
		masked := nn.MaskLogitsInto(w.scratch.Masked, logits, mask)
		probs := nn.SoftmaxInto(w.scratch.Probs, masked)
		action := nn.SampleCategorical(w.rng, probs)
		logp := nn.LogSoftmaxInto(w.scratch.LogProbs, masked)[action]
		value := w.batchVal
		if w.batch == nil {
			value = w.nets.ForwardValue(obs)
		}

		reward, outcome, err := w.env.StepContext(ctx, action)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				w.interrupted = true
			} else {
				w.err = err
			}
			return
		}
		w.buf.Store(rl.Step{
			Obs: obs, Action: action, Mask: mask,
			LogP: logp, Value: value, Reward: reward,
		})
		switch outcome {
		case OutcomeSolved:
			w.trajectories++
			w.solutions++
			w.buf.FinishPath(0)
		case OutcomeDeadEnd:
			w.trajectories++
			w.deadEnds++
			w.buf.FinishPath(0)
		}
	}
	// Bootstrap the value of a cut-off trajectory. A non-empty trailing
	// partial path counts for reward averaging; when the epoch boundary
	// coincided with a path end, FinishPath records nothing and neither
	// does the counter (a phantom trajectory would deflate the epoch
	// reward).
	before := w.buf.Paths()
	boot := 0.0
	if w.batch != nil {
		w.batch.eval(w.env.Observation(), w.scratch.Logits, &w.batchVal)
		boot = w.batchVal
	} else {
		boot = w.nets.ForwardValue(w.env.Observation())
	}
	w.buf.FinishPath(boot)
	if w.buf.Paths() > before {
		w.trajectories++
	}
}

func allFalse(mask []bool) bool {
	for _, m := range mask {
		if m {
			return false
		}
	}
	return true
}

// Plan trains the decision maker and returns the best TSSDN found together
// with the per-epoch training statistics.
func (p *Planner) Plan() (*Report, error) {
	return p.PlanContext(context.Background())
}

// PlanContext is Plan with cancellation and resilience semantics:
//
//   - When ctx is cancelled (deadline, SIGINT handler), the in-flight epoch
//     is discarded, the last completed epoch is checkpointed (when
//     Config.CheckpointFunc is set), and the report collected so far is
//     returned with Interrupted set — no error.
//   - A worker that panics is quarantined for the epoch: its partial data
//     is dropped, its step quota is re-collected by the surviving workers,
//     the panic is surfaced in EpochStats.Panics, and its environment is
//     reset so it rejoins the next epoch. Training fails only when every
//     worker panicked.
//   - A PPO update that diverges (NaN/Inf losses or weights) is rolled
//     back and retried with halved learning rates up to
//     Config.DivergenceRetries times; exhausting the budget returns an
//     error wrapping rl.ErrDiverged with the networks left at the last
//     good weights.
func (p *Planner) PlanContext(ctx context.Context) (*Report, error) {
	global, err := p.buildNets(rand.New(rand.NewSource(p.cfg.Seed)))
	if err != nil {
		return nil, err
	}
	if p.cfg.InitialWeights != nil {
		if err := global.ImportWeights(p.cfg.InitialWeights); err != nil {
			return nil, fmt.Errorf("planner: warm start: %w", err)
		}
	}
	ppo, err := rl.NewPPO(p.cfg.ppoConfig())
	if err != nil {
		return nil, err
	}

	// One verdict cache shared by all exploration workers, so a scenario
	// simulated by any worker is a hit for every other one. A caller-owned
	// SharedAnalyzerCache takes precedence, letting warm verdicts from a
	// base plan's run serve its delta re-plans.
	cache := p.cfg.SharedAnalyzerCache
	if cache == nil && p.cfg.AnalyzerCacheSize > 0 {
		cache = failure.NewCache(p.cfg.AnalyzerCacheSize)
	}

	// Batched exploration (the default) centralizes all policy/value
	// evaluation on the global networks behind one barrier, so the workers
	// need no replica networks at all; the unbatched escape hatch keeps the
	// original one-replica-per-worker layout. Trajectories are bit-identical
	// either way: between updates every replica equals the global weights,
	// and the batched forward is row-wise identical to single forwards.
	var batch *policyBatcher
	if !p.cfg.UnbatchedExploration {
		batch = newPolicyBatcher(global)
	}
	workers := make([]*worker, p.cfg.Workers)
	for i := range workers {
		src := rng.New(p.cfg.Seed + int64(i)*7919 + 1)
		env, err := NewEnvWithCache(p.prob, p.cfg, p.cfg.Seed+int64(i)*104729+2, cache)
		if err != nil {
			return nil, err
		}
		nets := global
		if batch == nil {
			nets, err = p.buildNets(rand.New(rand.NewSource(p.cfg.Seed)))
			if err != nil {
				return nil, err
			}
			nets.SyncFrom(global)
		}
		workers[i] = &worker{
			env: env, nets: nets, src: src, rng: rand.New(src),
			batch: batch, scratch: nn.NewScratch(global.ActionSpace()),
		}
	}

	var pm *plannerMetrics
	if p.cfg.Metrics != nil {
		pm = newPlannerMetrics(p.cfg.Metrics)
	}
	emit := func(e obsv.Event) error {
		if p.cfg.Events == nil {
			return nil
		}
		if err := p.cfg.Events.Emit(e); err != nil {
			return fmt.Errorf("planner: event sink: %w", err)
		}
		return nil
	}

	report := &Report{}
	if p.cfg.WarmStart != nil {
		info := workers[0].env.WarmInfo()
		report.Warm = &info
		if p.cfg.OnWarmStart != nil {
			p.cfg.OnWarmStart(info)
		}
	}
	startEpoch := 1
	if p.cfg.Resume != nil {
		restoreStart := time.Now()
		if err := p.restore(p.cfg.Resume, global, ppo, workers, report); err != nil {
			return nil, err
		}
		restoreDur := time.Since(restoreStart)
		if pm != nil {
			pm.ckptLoad.Observe(restoreDur.Seconds())
		}
		if err := emit(durationEvent(obsv.EventCheckpointLoad, p.cfg.Resume.Epoch, restoreDur)); err != nil {
			return nil, err
		}
		startEpoch = p.cfg.Resume.Epoch + 1
	} else if workers[0].env.Solved() {
		// The initial state already satisfies the goal: a trivial problem
		// from the empty network, or a warm seed that survived the delta
		// intact (the instant-solve fast path of incremental re-planning).
		report.Best = &Solution{
			Topology:   workers[0].env.State().Topo.Clone(),
			Assignment: workers[0].env.State().Assign.Clone(),
			Cost:       workers[0].env.Cost(),
		}
		return report, nil
	}

	stepsPerWorker := p.cfg.MaxStep / p.cfg.Workers
	if stepsPerWorker == 0 {
		stepsPerWorker = 1 // unreachable: Validate rejects Workers > MaxStep
	}

	var lastCkpt *Checkpoint
	lastWritten := 0

	// writeCkpt runs CheckpointFunc under the checkpoint-save telemetry.
	writeCkpt := func(ck *Checkpoint) error {
		saveStart := time.Now()
		if err := p.cfg.CheckpointFunc(ck); err != nil {
			return err
		}
		saveDur := time.Since(saveStart)
		if pm != nil {
			pm.ckptSave.Observe(saveDur.Seconds())
		}
		return emit(durationEvent(obsv.EventCheckpointSave, ck.Epoch, saveDur))
	}

	// sumAnalysis totals the per-worker analysis counters; per-epoch deltas
	// go into EpochStats.
	sumAnalysis := func() (d time.Duration, hits, misses int) {
		for _, w := range workers {
			wd, wh, wm := w.env.AnalysisStats()
			d += wd
			hits += wh
			misses += wm
		}
		return d, hits, misses
	}
	// sumEnv totals the per-worker environment reset and NBF-call
	// counters; per-epoch deltas go into EpochStats.
	sumEnv := func() (resets, nbfCalls int) {
		for _, w := range workers {
			resets += w.env.Resets
			nbfCalls += w.env.NBFCalls
		}
		return resets, nbfCalls
	}

	if err := emit(obsv.Event{Type: obsv.EventRunStart, V: map[string]float64{
		"epochs":      float64(p.cfg.MaxEpoch),
		"steps":       float64(p.cfg.MaxStep),
		"workers":     float64(p.cfg.Workers),
		"seed":        float64(p.cfg.Seed),
		"start_epoch": float64(startEpoch),
	}}); err != nil {
		return nil, err
	}

	for epoch := startEpoch; epoch <= p.cfg.MaxEpoch; epoch++ {
		if ctx.Err() != nil {
			report.Interrupted = true
			break
		}
		epochStart := time.Now()
		d0, h0, m0 := sumAnalysis()
		r0, n0 := sumEnv()
		var wg sync.WaitGroup
		for i, w := range workers {
			w.buf = rl.NewBuffer(p.cfg.Discount, p.cfg.GAELambda)
			w.maskOff = 0 // the previous epoch's buffer is gone; reuse the arena
			w.trajectories, w.solutions, w.deadEnds = 0, 0, 0
			w.err, w.panicMsg, w.interrupted = nil, "", false
			wg.Add(1)
			go p.runWorker(ctx, &wg, w, epoch, i, stepsPerWorker)
		}
		wg.Wait()
		if ctx.Err() != nil {
			// Discard the partial epoch: buffers may hold unfinished paths
			// and an update on them would break resume reproducibility.
			report.Interrupted = true
			break
		}

		es := EpochStats{Epoch: epoch}
		var healthy []*worker
		for _, w := range workers {
			if w.panicMsg != "" {
				es.Panics = append(es.Panics, w.panicMsg)
				continue
			}
			healthy = append(healthy, w)
		}
		if len(healthy) == 0 {
			return nil, fmt.Errorf("planner: epoch %d: all %d workers panicked: %s",
				epoch, len(workers), strings.Join(es.Panics, "; "))
		}
		// Rebalance the quarantined workers' step quota across survivors.
		if missing := (len(workers) - len(healthy)) * stepsPerWorker; missing > 0 {
			p.topUp(ctx, healthy, epoch, missing, &es)
			if ctx.Err() != nil {
				report.Interrupted = true
				break
			}
		}

		merged := rl.NewBuffer(p.cfg.Discount, p.cfg.GAELambda)
		for _, w := range workers {
			if w.panicMsg != "" {
				continue // quarantined this epoch (initial round or top-up)
			}
			if w.err != nil {
				return nil, w.err
			}
			if err := merged.Merge(w.buf); err != nil {
				return nil, err
			}
			es.Trajectories += w.trajectories
			es.Solutions += w.solutions
			es.DeadEnds += w.deadEnds
		}
		if merged.Len() == 0 {
			return nil, fmt.Errorf("planner: epoch %d: no exploration data survived (%d workers panicked)",
				epoch, len(es.Panics))
		}
		es.Reward = merged.EpochReward()
		es.EnvSteps = merged.Len()

		// Gradient update on the merged batch (equivalent to averaging the
		// per-worker gradient estimators, §IV-C) under the divergence
		// watchdog, then synchronize replicas.
		stats, recovery, err := ppo.UpdateWithRecovery(global, merged, p.cfg.DivergenceRetries)
		if err != nil {
			return nil, fmt.Errorf("planner: epoch %d: %w", epoch, err)
		}
		es.Divergences = recovery.Rollbacks
		es.PolicyLoss, es.ValueLoss, es.ApproxKL = stats.PolicyLoss, stats.ValueLoss, stats.ApproxKL
		es.Entropy, es.ClipFraction = stats.Entropy, stats.ClipFraction
		es.PolicyIters, es.EarlyStopped = stats.PiIters, stats.EarlyStopped
		actorSteps, criticSteps := ppo.AdamSteps()
		es.AdamSteps = actorSteps + criticSteps
		if recovery.Rollbacks > 0 {
			if err := emit(obsv.Event{Type: obsv.EventWatchdogRollback, Epoch: epoch, V: map[string]float64{
				"rollbacks": float64(recovery.Rollbacks),
				"actor_lr":  recovery.ActorLR,
				"critic_lr": recovery.CriticLR,
			}}); err != nil {
				return nil, err
			}
		}
		for _, w := range workers {
			if w.nets != global { // batched workers share the global nets
				w.nets.SyncFrom(global)
			}
		}
		// Re-arm quarantined workers with a clean environment for the next
		// epoch (a panic may have left the construction state mid-action).
		for _, w := range workers {
			if w.panicMsg != "" {
				if err := w.env.reset(ctx); err != nil {
					return nil, fmt.Errorf("planner: resetting panicked worker: %w", err)
				}
			}
		}

		if best := p.bestOf(workers); best != nil {
			if report.Best == nil || best.Cost < report.Best.Cost {
				b := best.Clone()
				b.FoundAtEpoch = epoch
				report.Best = b
			}
			es.BestCost = report.Best.Cost
		}
		d1, h1, m1 := sumAnalysis()
		es.AnalysisTime = d1 - d0
		es.AnalysisCacheHits = h1 - h0
		es.AnalysisCacheMisses = m1 - m0
		r1, n1 := sumEnv()
		es.EnvResets = r1 - r0
		es.NBFCalls = n1 - n0
		es.Duration = time.Since(epochStart)
		report.Epochs = append(report.Epochs, es)

		if p.cfg.Progress != nil {
			p.cfg.Progress(es)
		}
		pm.recordEpoch(es, cache)
		for _, msg := range es.Panics {
			if err := emit(obsv.Event{Type: obsv.EventQuarantine, Epoch: epoch, Msg: msg}); err != nil {
				return nil, err
			}
		}
		if err := emit(epochEvent(es)); err != nil {
			return nil, err
		}

		if p.cfg.CheckpointFunc != nil {
			lastCkpt = p.capture(epoch, global, ppo, workers, report)
			if epoch%p.cfg.CheckpointEvery == 0 {
				if err := writeCkpt(lastCkpt); err != nil {
					return nil, fmt.Errorf("planner: checkpoint at epoch %d: %w", epoch, err)
				}
				lastWritten = epoch
			}
		}
		if p.hooks.afterEpoch != nil {
			p.hooks.afterEpoch(epoch)
		}
	}

	// Shutdown checkpoint: persist the last completed epoch if the
	// periodic schedule has not already written it.
	if p.cfg.CheckpointFunc != nil && lastCkpt != nil && lastWritten != lastCkpt.Epoch {
		if err := writeCkpt(lastCkpt); err != nil {
			return nil, fmt.Errorf("planner: shutdown checkpoint: %w", err)
		}
	}

	for _, w := range workers {
		report.TotalNBFCalls += w.env.NBFCalls
	}
	report.FinalWeights = global.ExportWeights()

	endV := map[string]float64{
		"epochs":      float64(len(report.Epochs)),
		"interrupted": 0,
		"nbf_calls":   float64(report.TotalNBFCalls),
	}
	if report.Interrupted {
		endV["interrupted"] = 1
	}
	if report.Best != nil {
		endV["best_cost"] = report.Best.Cost
	}
	if err := emit(obsv.Event{Type: obsv.EventRunEnd, V: endV}); err != nil {
		return nil, err
	}
	return report, nil
}

// runWorker executes one worker's exploration with panic isolation: a
// panic is recovered, recorded on the worker, and handled by the epoch
// loop (quarantine + step rebalancing) instead of crashing the run.
func (p *Planner) runWorker(ctx context.Context, wg *sync.WaitGroup, w *worker, epoch, idx, steps int) {
	defer wg.Done()
	defer func() {
		if r := recover(); r != nil {
			w.panicMsg = fmt.Sprintf("worker %d: %v", idx, r)
		}
	}()
	if p.hooks.explorePanic != nil {
		p.hooks.explorePanic(epoch, idx)
	}
	if p.cfg.ExploreHook != nil {
		p.cfg.ExploreHook(ctx, epoch, idx)
		if ctx.Err() != nil {
			// A hook that blocked until cancellation (fault.KindHang) must
			// not start exploring on the dead context.
			w.interrupted = true
			return
		}
	}
	w.explore(ctx, steps)
}

// topUp redistributes `missing` exploration steps across the surviving
// workers after quarantining panicked ones, so the epoch still trains on
// the configured MaxStep budget. A survivor that panics during the top-up
// round is quarantined too (without further rebalancing).
func (p *Planner) topUp(ctx context.Context, healthy []*worker, epoch, missing int, es *EpochStats) {
	share := missing / len(healthy)
	rem := missing % len(healthy)
	var wg sync.WaitGroup
	for i, w := range healthy {
		extra := share
		if i < rem {
			extra++
		}
		if extra == 0 {
			continue
		}
		wg.Add(1)
		go p.runWorker(ctx, &wg, w, epoch, i, extra)
	}
	wg.Wait()
	for _, w := range healthy {
		if w.panicMsg != "" {
			es.Panics = append(es.Panics, w.panicMsg)
		}
	}
}

// buildNets constructs the network stack for the problem geometry.
func (p *Planner) buildNets(rng *rand.Rand) (*Nets, error) {
	soag, err := NewSOAG(p.prob, p.cfg.K)
	if err != nil {
		return nil, err
	}
	enc := NewEncoderWithOptions(p.prob, p.cfg.K, p.cfg.PerFlowEncoding)
	return NewNets(rng, enc, soag.ActionSpaceSize(), p.cfg)
}

// bestOf returns the cheapest solution across workers (nil if none).
func (p *Planner) bestOf(workers []*worker) *Solution {
	var best *Solution
	for _, w := range workers {
		b := w.env.Best()
		if b == nil {
			continue
		}
		if best == nil || b.Cost < best.Cost {
			best = b
		}
	}
	return best
}
