package core

import (
	"repro/internal/nn"
)

// Obs is the observation of the RL agent: the normalized adjacency of the
// current topology plus the four feature categories of §IV-C (switch cost,
// link cost, flow demand, dynamic actions) and the non-graph parameter
// vector (flow periods, frame sizes, base period).
type Obs struct {
	// SHat is the normalized propagation operator Ŝ of the current
	// topology (|Vc|×|Vc|), consumed by the GCN trunk.
	SHat *nn.Matrix
	// Mask is the self-looped 0/1 adjacency, consumed by the GAT trunk.
	Mask *nn.Matrix
	// Feat is the node feature matrix, |Vc| × (1 + |Vc| + |Ves| + K).
	Feat *nn.Matrix
	// Params is the 1×P flow/network parameter row vector.
	Params *nn.Matrix
}

// Encoder builds observations for a problem instance. Feature widths are
// fixed per problem so the neural networks have constant shapes.
type Encoder struct {
	prob    *Problem
	k       int
	perFlow bool

	esIndex map[int]int // end-station vertex -> column in flow features
	// flowFeat is the static flow feature block: by default the
	// |Vc| × |Ves| demanded-path-count matrix of §IV-C; with the per-flow
	// alternative it is the |Vc| × |FS| matrix marking each flow's source
	// (1) and destinations (2).
	flowFeat *nn.Matrix
	params   *nn.Matrix
}

// NewEncoder precomputes the static encoding parts using the default
// (path-count) flow features.
func NewEncoder(prob *Problem, k int) *Encoder {
	return NewEncoderWithOptions(prob, k, false)
}

// NewEncoderWithOptions allows selecting the §IV-C per-flow alternative
// encoding.
func NewEncoderWithOptions(prob *Problem, k int, perFlow bool) *Encoder {
	n := prob.NumVertices()
	es := prob.EndStations()
	e := &Encoder{
		prob:    prob,
		k:       k,
		perFlow: perFlow,
		esIndex: make(map[int]int, len(es)),
	}
	for i, v := range es {
		e.esIndex[v] = i
	}
	if perFlow {
		// Alternative: one column per flow (source = 1, destination = 2,
		// other vertices zero). Keeps per-flow identity but scales with
		// |FS| rather than |Ves|.
		e.flowFeat = nn.NewMatrix(n, len(prob.Flows))
		for col, f := range prob.Flows {
			e.flowFeat.Set(f.Src, col, 1)
			for _, d := range f.Dsts {
				e.flowFeat.Set(d, col, 2)
			}
		}
	} else {
		// Default: |Vc| × |Ves| matrix of demanded path counts. The
		// element is the number of flow paths required between u ∈ Vc and
		// the end station v; zero when u is a switch (§IV-C).
		e.flowFeat = nn.NewMatrix(n, len(es))
		for _, f := range prob.Flows {
			for _, d := range f.Dsts {
				if col, ok := e.esIndex[d]; ok {
					e.flowFeat.Set(f.Src, col, e.flowFeat.At(f.Src, col)+1)
				}
				if col, ok := e.esIndex[f.Src]; ok {
					e.flowFeat.Set(d, col, e.flowFeat.At(d, col)+1)
				}
			}
		}
	}
	// Parameter vector: per flow (period/B, deadline/period,
	// frameSize/1500) plus the slot count, normalized to O(1) magnitudes.
	p := make([]float64, 0, 3*len(prob.Flows)+1)
	for _, f := range prob.Flows {
		p = append(p,
			float64(f.Period)/float64(prob.Net.BasePeriod),
			float64(f.Deadline)/float64(f.Period),
			float64(f.FrameSize)/1500.0,
		)
	}
	p = append(p, float64(prob.Net.SlotsPerBase)/32.0)
	e.params = nn.FromSlice(1, len(p), p)
	return e
}

// FeatureDim returns the per-node feature width: 1 + |Vc| + |Ves| + K by
// default, or 1 + |Vc| + |FS| + K with the per-flow encoding.
func (e *Encoder) FeatureDim() int {
	return 1 + e.prob.NumVertices() + e.flowFeat.Cols + e.k
}

// ParamDim returns the parameter vector length.
func (e *Encoder) ParamDim() int { return e.params.Cols }

// Encode builds the observation for the current state and action set.
func (e *Encoder) Encode(state *TSSDN, actions *ActionSet) *Obs {
	n := e.prob.NumVertices()
	adj := nn.FromSlice(n, n, state.Topo.AdjacencyMatrix())
	feat := nn.NewMatrix(n, e.FeatureDim())

	// Column 0: switch cost csw(deg, ASIL); end stations cost zero.
	const costScale = 1.0 / 54.0 // largest library switch cost
	for _, sw := range e.prob.Switches() {
		lvl := state.Assign.SwitchLevel(sw)
		if !lvl.Valid() {
			continue
		}
		c, err := e.prob.Library.SwitchCost(lvl, state.Topo.Degree(sw))
		if err != nil {
			continue // degree beyond library: leave zero; masks prevent this
		}
		feat.Set(sw, 0, c*costScale)
	}

	// Columns 1..n: link cost matrix clk(ASIL_uv, len).
	const linkScale = 1.0 / 8.0
	for _, edge := range state.Topo.Edges() {
		lvl := state.Assign.LinkLevel(edge.U, edge.V)
		if !lvl.Valid() {
			continue
		}
		c, err := e.prob.Library.LinkCost(lvl, edge.Length)
		if err != nil {
			continue
		}
		feat.Set(edge.U, 1+edge.V, c*linkScale)
		feat.Set(edge.V, 1+edge.U, c*linkScale)
	}

	// Flow feature block (static).
	base := 1 + n
	for r := 0; r < n; r++ {
		for c := 0; c < e.flowFeat.Cols; c++ {
			feat.Set(r, base+c, e.flowFeat.At(r, c))
		}
	}

	// Columns for dynamic actions: vertex-membership of each path slot.
	base += e.flowFeat.Cols
	if actions != nil {
		swCount := len(e.prob.Switches())
		for i := 0; i < e.k; i++ {
			idx := swCount + i
			if idx >= len(actions.Actions) {
				break
			}
			a := actions.Actions[idx]
			if a.Kind != ActionPathAdd {
				continue
			}
			for _, v := range a.Path {
				feat.Set(v, base+i, 1)
			}
		}
	}

	return &Obs{
		SHat:   nn.NormalizeAdjacency(adj),
		Mask:   nn.SelfLoopMask(adj),
		Feat:   feat,
		Params: e.params,
	}
}
