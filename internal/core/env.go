package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/asil"
	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/rng"
	"repro/internal/tsn"
)

// StepOutcome classifies what happened after applying an action.
type StepOutcome int

const (
	// OutcomeContinue means construction goes on.
	OutcomeContinue StepOutcome = iota + 1
	// OutcomeSolved means the reliability guarantee was established; the
	// TSSDN was recorded and reset.
	OutcomeSolved
	// OutcomeDeadEnd means no valid actions remain (or an unmasked action
	// turned out invalid in ablation mode); the TSSDN was reset with the
	// invalid-solution penalty applied.
	OutcomeDeadEnd
)

// Env is the RL environment of Algorithm 2: it owns the TSSDN construction
// state, consults the failure analyzer after every action, and produces
// rewards from cost deltas.
type Env struct {
	prob     *Problem
	soag     *SOAG
	analyzer *failure.Analyzer
	enc      *Encoder
	scaler   float64
	bonus    float64
	src      *rng.Source
	rng      *rand.Rand
	// rngBeforeGen is the RNG state captured immediately before the last
	// SOAG generation. Checkpoints store it: restoring it and re-running
	// the analyzer regenerates the identical action set and leaves the RNG
	// exactly where the uninterrupted run had it.
	rngBeforeGen uint64

	// warm, when non-nil, is the pruned warm-start seed replayed onto the
	// state at construction and after every reset — incremental
	// re-planning's "start from the surviving prior plan" mode.
	warm *warmSeed

	state   *TSSDN
	actions *ActionSet
	lastGf  nbf.Failure
	lastER  []tsn.Pair
	lastOK  bool
	cost    float64

	best *Solution
	// counters
	Steps     int
	Solutions int
	DeadEnds  int
	NBFCalls  int
	// Resets counts construction-state resets (after a recorded solution,
	// a dead end, or a planner re-arm) — telemetry only, not checkpointed.
	Resets int
	// analysis observability (accumulated across AnalyzeContext calls)
	analysisTime   time.Duration
	analysisHits   int
	analysisMisses int
}

// AnalysisStats reports the accumulated failure-analysis wall-clock and
// verdict-cache hit/miss counts of this environment.
func (e *Env) AnalysisStats() (d time.Duration, hits, misses int) {
	return e.analysisTime, e.analysisHits, e.analysisMisses
}

// NewEnv builds an environment. The seed drives both the SOAG's random
// pair selection and nothing else (action sampling uses the agent's RNG).
// When cfg.AnalyzerCacheSize > 0 the environment gets a private verdict
// cache; use NewEnvWithCache to share one cache across environments.
func NewEnv(prob *Problem, cfg Config, seed int64) (*Env, error) {
	var cache *failure.Cache
	if cfg.AnalyzerCacheSize > 0 {
		cache = failure.NewCache(cfg.AnalyzerCacheSize)
	}
	return NewEnvWithCache(prob, cfg, seed, cache)
}

// NewEnvWithCache is NewEnv with an explicit (possibly shared, possibly
// nil) failure-analysis verdict cache.
func NewEnvWithCache(prob *Problem, cfg Config, seed int64, cache *failure.Cache) (*Env, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	soag, err := NewSOAG(prob, cfg.K)
	if err != nil {
		return nil, err
	}
	soag.DisableDegreeMask = cfg.DisableSOAGMasking
	soag.ExhaustiveValidPaths = cfg.ExhaustivePathGeneration
	src := rng.New(seed)
	e := &Env{
		prob: prob,
		soag: soag,
		analyzer: &failure.Analyzer{
			Lib:                 prob.Library,
			NBF:                 prob.NBF,
			Net:                 prob.Net,
			R:                   prob.ReliabilityGoal,
			FlowLevelRedundancy: prob.FlowLevelRedundancy,
			ESLevel:             prob.ESLevel,
			Workers:             cfg.AnalyzerWorkers,
			Cache:               cache,
		},
		enc:    NewEncoderWithOptions(prob, cfg.K, cfg.PerFlowEncoding),
		scaler: cfg.RewardScale,
		bonus:  cfg.SolutionBonus,
		src:    src,
		rng:    rand.New(src),
		state:  NewTSSDN(prob),
	}
	if cfg.WarmStart != nil {
		ws, err := buildWarmSeed(prob, cfg.WarmStart)
		if err != nil {
			return nil, err
		}
		e.warm = ws
		e.warm.apply(e.state)
		e.cost = ws.cost
	}
	if err := e.analyzeAndGenerate(context.Background()); err != nil {
		return nil, err
	}
	if e.warm != nil {
		e.warm.info.SeedSolved = e.lastOK
	}
	return e, nil
}

// WarmInfo returns the warm-start pruning outcome (zero value when the
// environment was not warm-started).
func (e *Env) WarmInfo() WarmStartInfo {
	if e.warm == nil {
		return WarmStartInfo{}
	}
	return e.warm.info
}

// Cost returns the running Eq. 1 cost of the construction state.
func (e *Env) Cost() float64 { return e.cost }

// analyzeAndGenerate runs the failure analyzer on the current state and
// refreshes the action set from the SOAG.
func (e *Env) analyzeAndGenerate(ctx context.Context) error {
	res, err := e.analyzer.AnalyzeContext(ctx, e.state.Topo, e.state.Assign, e.prob.Flows)
	if err != nil {
		return fmt.Errorf("env: %w", err)
	}
	e.NBFCalls += res.NBFCalls
	e.analysisTime += res.Duration
	e.analysisHits += res.CacheHits
	e.analysisMisses += res.CacheMisses
	e.lastGf = res.Failure
	e.lastER = res.ER
	e.lastOK = res.OK
	e.rngBeforeGen = e.src.State()
	e.actions = e.soag.Generate(e.state, e.lastGf, e.lastER, e.rng)
	return nil
}

// Observation encodes the current state and action set.
func (e *Env) Observation() *Obs { return e.enc.Encode(e.state, e.actions) }

// Mask returns the current action mask (aliased; do not mutate).
func (e *Env) Mask() []bool { return e.actions.Mask }

// Actions exposes the current action set (for tests and tracing).
func (e *Env) Actions() *ActionSet { return e.actions }

// Best returns the best solution recorded so far (nil if none).
func (e *Env) Best() *Solution { return e.best }

// State exposes the construction state (read-only use).
func (e *Env) State() *TSSDN { return e.state }

// Solved reports whether the current network already meets the guarantee
// (true before any step only for trivial problems, e.g. no flows).
func (e *Env) Solved() bool { return e.lastOK }

// reset clears the TSSDN — back to the warm seed when one is configured,
// else to the empty network — and refreshes analysis + actions.
func (e *Env) reset(ctx context.Context) error {
	e.state.Reset()
	e.cost = 0
	if e.warm != nil {
		e.warm.apply(e.state)
		e.cost = e.warm.cost
	}
	e.Resets++
	return e.analyzeAndGenerate(ctx)
}

// Step applies action index idx (which must be unmasked unless SOAG
// masking is disabled), returning the scaled reward and the outcome. On
// OutcomeSolved the solution has been recorded and the state reset; on
// OutcomeDeadEnd the state has been reset and the reward includes the -1
// penalty (Algorithm 2, lines 8-16).
func (e *Env) Step(idx int) (float64, StepOutcome, error) {
	return e.StepContext(context.Background(), idx)
}

// StepContext is Step with cancellation: the failure analysis triggered by
// the action checks ctx before every NBF recovery simulation, so a
// deadline or a SIGINT-driven cancel interrupts even a long analysis. On
// cancellation the error wraps ctx.Err().
func (e *Env) StepContext(ctx context.Context, idx int) (float64, StepOutcome, error) {
	if idx < 0 || idx >= e.actions.Size() {
		return 0, 0, fmt.Errorf("env: action index %d out of range", idx)
	}
	e.Steps++
	action := e.actions.Actions[idx]

	var applyErr error
	switch action.Kind {
	case ActionSwitchUpgrade:
		applyErr = e.state.UpgradeSwitch(action.Switch)
	case ActionPathAdd:
		applyErr = e.state.AddPath(action.Path)
	default:
		applyErr = fmt.Errorf("env: selected an empty action slot %d", idx)
	}
	if applyErr != nil {
		// Only reachable with SOAG masking disabled (the ablation): the
		// invalid attempt ends the exploration like a dead end.
		if !e.soag.DisableDegreeMask {
			return 0, 0, fmt.Errorf("env: unmasked action failed: %w", applyErr)
		}
		e.DeadEnds++
		if err := e.reset(ctx); err != nil {
			return 0, 0, err
		}
		return -1, OutcomeDeadEnd, nil
	}

	newCost, err := e.state.Cost()
	if err != nil {
		return 0, 0, fmt.Errorf("env: %w", err)
	}
	// Reward: previous cost minus new cost (negative), scaled into [-1, 0).
	reward := (e.cost - newCost) / e.scaler
	e.cost = newCost

	if err := e.analyzeAndGenerate(ctx); err != nil {
		return 0, 0, err
	}
	if e.lastOK {
		// Reliability requirement met: record and reset (line 10-12).
		e.Solutions++
		if e.best == nil || newCost < e.best.Cost {
			e.best = &Solution{
				Topology:    e.state.Topo.Clone(),
				Assignment:  e.state.Assign.Clone(),
				Cost:        newCost,
				FoundAtStep: e.Steps,
			}
		}
		if err := e.reset(ctx); err != nil {
			return 0, 0, err
		}
		return reward + e.bonus, OutcomeSolved, nil
	}
	if e.actions.AllMasked() {
		// No valid action remains: penalty and reset (line 14-16).
		e.DeadEnds++
		if err := e.reset(ctx); err != nil {
			return 0, 0, err
		}
		return reward - 1, OutcomeDeadEnd, nil
	}
	return reward, OutcomeContinue, nil
}

// EnvState is a serializable snapshot of the environment at an epoch
// boundary: the TSSDN under construction, the running cost, the outcome
// counters and the RNG state from just before the current action set was
// generated. The best-so-far solution is carried separately (see
// WorkerState) because it needs the richer solution codec.
type EnvState struct {
	Edges     []graph.Edge       `json:"edges,omitempty"`
	Switches  map[int]asil.Level `json:"switches,omitempty"`
	Cost      float64            `json:"cost"`
	Steps     int                `json:"steps"`
	Solutions int                `json:"solutions"`
	DeadEnds  int                `json:"deadEnds"`
	NBFCalls  int                `json:"nbfCalls"`
	RNG       uint64             `json:"rng"`
}

// ExportState snapshots the environment. All mutable data is deep-copied,
// so the snapshot stays valid while the environment keeps stepping.
func (e *Env) ExportState() EnvState {
	st := EnvState{
		Edges:     e.state.Topo.Edges(),
		Cost:      e.cost,
		Steps:     e.Steps,
		Solutions: e.Solutions,
		DeadEnds:  e.DeadEnds,
		NBFCalls:  e.NBFCalls,
		RNG:       e.rngBeforeGen,
	}
	if len(e.state.Assign.Switches) > 0 {
		st.Switches = make(map[int]asil.Level, len(e.state.Assign.Switches))
		for sw, lvl := range e.state.Assign.Switches {
			st.Switches[sw] = lvl
		}
	}
	return st
}

// ImportState restores a snapshot taken with ExportState against the same
// problem. It rebuilds the TSSDN (link ASILs are re-derived from the
// endpoint-minimum invariant), rewinds the RNG to the pre-generation state
// and re-runs the failure analysis, which regenerates the exact action set
// the snapshotted environment was holding. best becomes the environment's
// best-so-far solution (cloned; nil is allowed).
func (e *Env) ImportState(st EnvState, best *Solution) error {
	e.state.Reset()
	for sw, lvl := range st.Switches {
		if e.prob.Connections.Kind(sw) != graph.KindSwitch {
			return fmt.Errorf("env: restore: vertex %d is not an optional switch", sw)
		}
		if !lvl.Valid() {
			return fmt.Errorf("env: restore: switch %d has invalid ASIL %d", sw, int(lvl))
		}
		e.state.Assign.Switches[sw] = lvl
	}
	for _, ed := range st.Edges {
		if !e.prob.Connections.HasEdge(ed.U, ed.V) {
			return fmt.Errorf("env: restore: edge (%d,%d) not in the connection graph", ed.U, ed.V)
		}
		if err := e.state.Topo.AddEdge(ed.U, ed.V, ed.Length); err != nil {
			return fmt.Errorf("env: restore: %w", err)
		}
		e.state.Assign.SetLink(ed.U, ed.V, asil.Min(e.state.vertexLevel(ed.U), e.state.vertexLevel(ed.V)))
	}
	if err := e.state.CheckInvariants(); err != nil {
		return fmt.Errorf("env: restore: %w", err)
	}
	e.src.SetState(st.RNG)
	if err := e.analyzeAndGenerate(context.Background()); err != nil {
		return fmt.Errorf("env: restore: %w", err)
	}
	// Counters are restored after the analysis so its NBF calls don't
	// double-count against the snapshot.
	e.cost = st.Cost
	e.Steps = st.Steps
	e.Solutions = st.Solutions
	e.DeadEnds = st.DeadEnds
	e.NBFCalls = st.NBFCalls
	e.best = nil
	if best != nil {
		e.best = best.Clone()
	}
	return nil
}
