package core

import (
	"fmt"
	"math/rand"

	"repro/internal/failure"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// StepOutcome classifies what happened after applying an action.
type StepOutcome int

const (
	// OutcomeContinue means construction goes on.
	OutcomeContinue StepOutcome = iota + 1
	// OutcomeSolved means the reliability guarantee was established; the
	// TSSDN was recorded and reset.
	OutcomeSolved
	// OutcomeDeadEnd means no valid actions remain (or an unmasked action
	// turned out invalid in ablation mode); the TSSDN was reset with the
	// invalid-solution penalty applied.
	OutcomeDeadEnd
)

// Env is the RL environment of Algorithm 2: it owns the TSSDN construction
// state, consults the failure analyzer after every action, and produces
// rewards from cost deltas.
type Env struct {
	prob     *Problem
	soag     *SOAG
	analyzer *failure.Analyzer
	enc      *Encoder
	scaler   float64
	bonus    float64
	rng      *rand.Rand

	state   *TSSDN
	actions *ActionSet
	lastGf  nbf.Failure
	lastER  []tsn.Pair
	lastOK  bool
	cost    float64

	best *Solution
	// counters
	Steps     int
	Solutions int
	DeadEnds  int
	NBFCalls  int
}

// NewEnv builds an environment. The seed drives both the SOAG's random
// pair selection and nothing else (action sampling uses the agent's RNG).
func NewEnv(prob *Problem, cfg Config, seed int64) (*Env, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	soag, err := NewSOAG(prob, cfg.K)
	if err != nil {
		return nil, err
	}
	soag.DisableDegreeMask = cfg.DisableSOAGMasking
	soag.ExhaustiveValidPaths = cfg.ExhaustivePathGeneration
	e := &Env{
		prob: prob,
		soag: soag,
		analyzer: &failure.Analyzer{
			Lib:                 prob.Library,
			NBF:                 prob.NBF,
			Net:                 prob.Net,
			R:                   prob.ReliabilityGoal,
			FlowLevelRedundancy: prob.FlowLevelRedundancy,
			ESLevel:             prob.ESLevel,
		},
		enc:    NewEncoderWithOptions(prob, cfg.K, cfg.PerFlowEncoding),
		scaler: cfg.RewardScale,
		bonus:  cfg.SolutionBonus,
		rng:    rand.New(rand.NewSource(seed)),
		state:  NewTSSDN(prob),
	}
	if err := e.analyzeAndGenerate(); err != nil {
		return nil, err
	}
	return e, nil
}

// analyzeAndGenerate runs the failure analyzer on the current state and
// refreshes the action set from the SOAG.
func (e *Env) analyzeAndGenerate() error {
	res, err := e.analyzer.Analyze(e.state.Topo, e.state.Assign, e.prob.Flows)
	if err != nil {
		return fmt.Errorf("env: %w", err)
	}
	e.NBFCalls += res.NBFCalls
	e.lastGf = res.Failure
	e.lastER = res.ER
	e.lastOK = res.OK
	e.actions = e.soag.Generate(e.state, e.lastGf, e.lastER, e.rng)
	return nil
}

// Observation encodes the current state and action set.
func (e *Env) Observation() *Obs { return e.enc.Encode(e.state, e.actions) }

// Mask returns the current action mask (aliased; do not mutate).
func (e *Env) Mask() []bool { return e.actions.Mask }

// Actions exposes the current action set (for tests and tracing).
func (e *Env) Actions() *ActionSet { return e.actions }

// Best returns the best solution recorded so far (nil if none).
func (e *Env) Best() *Solution { return e.best }

// State exposes the construction state (read-only use).
func (e *Env) State() *TSSDN { return e.state }

// Solved reports whether the current network already meets the guarantee
// (true before any step only for trivial problems, e.g. no flows).
func (e *Env) Solved() bool { return e.lastOK }

// reset clears the TSSDN and refreshes analysis + actions.
func (e *Env) reset() error {
	e.state.Reset()
	e.cost = 0
	return e.analyzeAndGenerate()
}

// Step applies action index idx (which must be unmasked unless SOAG
// masking is disabled), returning the scaled reward and the outcome. On
// OutcomeSolved the solution has been recorded and the state reset; on
// OutcomeDeadEnd the state has been reset and the reward includes the -1
// penalty (Algorithm 2, lines 8-16).
func (e *Env) Step(idx int) (float64, StepOutcome, error) {
	if idx < 0 || idx >= e.actions.Size() {
		return 0, 0, fmt.Errorf("env: action index %d out of range", idx)
	}
	e.Steps++
	action := e.actions.Actions[idx]

	var applyErr error
	switch action.Kind {
	case ActionSwitchUpgrade:
		applyErr = e.state.UpgradeSwitch(action.Switch)
	case ActionPathAdd:
		applyErr = e.state.AddPath(action.Path)
	default:
		applyErr = fmt.Errorf("env: selected an empty action slot %d", idx)
	}
	if applyErr != nil {
		// Only reachable with SOAG masking disabled (the ablation): the
		// invalid attempt ends the exploration like a dead end.
		if !e.soag.DisableDegreeMask {
			return 0, 0, fmt.Errorf("env: unmasked action failed: %w", applyErr)
		}
		e.DeadEnds++
		if err := e.reset(); err != nil {
			return 0, 0, err
		}
		return -1, OutcomeDeadEnd, nil
	}

	newCost, err := e.state.Cost()
	if err != nil {
		return 0, 0, fmt.Errorf("env: %w", err)
	}
	// Reward: previous cost minus new cost (negative), scaled into [-1, 0).
	reward := (e.cost - newCost) / e.scaler
	e.cost = newCost

	if err := e.analyzeAndGenerate(); err != nil {
		return 0, 0, err
	}
	if e.lastOK {
		// Reliability requirement met: record and reset (line 10-12).
		e.Solutions++
		if e.best == nil || newCost < e.best.Cost {
			e.best = &Solution{
				Topology:    e.state.Topo.Clone(),
				Assignment:  e.state.Assign.Clone(),
				Cost:        newCost,
				FoundAtStep: e.Steps,
			}
		}
		if err := e.reset(); err != nil {
			return 0, 0, err
		}
		return reward + e.bonus, OutcomeSolved, nil
	}
	if e.actions.AllMasked() {
		// No valid action remains: penalty and reset (line 14-16).
		e.DeadEnds++
		if err := e.reset(); err != nil {
			return 0, 0, err
		}
		return reward - 1, OutcomeDeadEnd, nil
	}
	return reward, OutcomeContinue, nil
}
