package core

import (
	"reflect"
	"testing"
)

// TestTrainingInvariantUnderAnalyzerEngine: turning on the concurrent,
// memoized failure analyzer must not change the training trajectory — the
// analyzer verdicts feed the reward, so any divergence there would change
// the learned weights. Stripped EpochStats and FinalWeights must match the
// sequential, uncached reference exactly.
func TestTrainingInvariantUnderAnalyzerEngine(t *testing.T) {
	prob := tinyProblem(t)

	cfg := tinyConfig()
	cfg.MaxEpoch = 3
	cfg.Workers = 2
	ref := train(t, prob, cfg)

	cfg.AnalyzerWorkers = 4
	cfg.AnalyzerCacheSize = 1 << 12
	got := train(t, prob, cfg)

	if !reflect.DeepEqual(stripDurations(got.Epochs), stripDurations(ref.Epochs)) {
		t.Fatalf("engine-backed training diverged:\n%+v\nvs\n%+v",
			stripDurations(got.Epochs), stripDurations(ref.Epochs))
	}
	if !reflect.DeepEqual(got.FinalWeights, ref.FinalWeights) {
		t.Fatal("final weights differ with the analyzer engine enabled")
	}

	// The observability wiring must actually be connected: with a cache
	// configured, epochs report analysis wall-clock and cache traffic.
	var analysis, lookups int64
	for _, es := range got.Epochs {
		analysis += int64(es.AnalysisTime)
		lookups += int64(es.AnalysisCacheHits + es.AnalysisCacheMisses)
	}
	if analysis <= 0 {
		t.Fatal("no analysis wall-clock reported in EpochStats")
	}
	if lookups <= 0 {
		t.Fatal("no cache lookups reported in EpochStats despite a configured cache")
	}
}

func train(t *testing.T, prob *Problem, cfg Config) *Report {
	t.Helper()
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}
