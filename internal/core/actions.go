package core

import (
	"fmt"
	"math/rand"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// ActionKind distinguishes the two coarse-grained action families of §IV-B.
type ActionKind int

const (
	// ActionSwitchUpgrade adds a new switch at ASIL-A or raises an existing
	// switch's ASIL by one level.
	ActionSwitchUpgrade ActionKind = iota + 1
	// ActionPathAdd adds every link of a precomputed path to the topology.
	ActionPathAdd
)

// Action is one entry of the dynamic action space.
type Action struct {
	Kind   ActionKind
	Switch int        // for ActionSwitchUpgrade
	Path   graph.Path // for ActionPathAdd
}

// String renders the action for logs.
func (a Action) String() string {
	switch a.Kind {
	case ActionSwitchUpgrade:
		return fmt.Sprintf("upgrade(sw %d)", a.Switch)
	case ActionPathAdd:
		return fmt.Sprintf("path%v", a.Path)
	default:
		return "invalid"
	}
}

// ActionSet is the dynamic action space of one step: |V^c_sw| switch
// upgrade actions followed by K path addition actions, with a mask bit per
// action (true = selectable). The total size is fixed so the actor's
// output layer has a constant dimension.
type ActionSet struct {
	Actions []Action
	Mask    []bool
}

// Size returns the (fixed) number of action slots.
func (s *ActionSet) Size() int { return len(s.Actions) }

// AllMasked reports whether no action is selectable (Algorithm 2 line 14).
func (s *ActionSet) AllMasked() bool {
	for _, m := range s.Mask {
		if m {
			return false
		}
	}
	return true
}

// SOAG is the Survival-Oriented Action Generator (§IV-B, Algorithm 1). It
// proposes the actions that can help the TSSDN survive the non-recoverable
// failure found by the last failure analysis, pruning invalid ones via the
// action mask.
type SOAG struct {
	prob *Problem
	// K is the number of path-addition action slots.
	K int
	// DisableDegreeMask keeps degree-violating paths selectable (the
	// SOAG-pruning ablation); the environment then rejects them at apply
	// time, ending the trajectory like NeuroPlan's saturated explorations.
	DisableDegreeMask bool
	// ExhaustiveValidPaths implements the §IV-B alternative action
	// generation: instead of taking the K shortest paths and masking the
	// invalid ones, keep enumerating shortest paths until K valid ones are
	// found (masks all one). The paper rejects this because, when valid
	// paths do not exist, it exhaustively checks all paths; the
	// enumeration here is capped at ExhaustiveCap candidates to keep the
	// ablation benchmark bounded.
	ExhaustiveValidPaths bool
	// ExhaustiveCap bounds the candidate enumeration in exhaustive mode
	// (default 128 when zero).
	ExhaustiveCap int
}

// NewSOAG builds an action generator for the problem.
func NewSOAG(prob *Problem, k int) (*SOAG, error) {
	if k <= 0 {
		return nil, fmt.Errorf("soag: K must be positive, got %d", k)
	}
	return &SOAG{prob: prob, K: k}, nil
}

// ActionSpaceSize returns |V^c_sw| + K, the constant actor output size.
func (s *SOAG) ActionSpaceSize() int { return len(s.prob.Switches()) + s.K }

// Generate computes the action set for the current construction state given
// the failure-analysis feedback (Gf, ER). rng selects the (s, d) pair from
// the error message (Algorithm 1, line 1).
func (s *SOAG) Generate(state *TSSDN, gf nbf.Failure, er []tsn.Pair, rng *rand.Rand) *ActionSet {
	size := s.ActionSpaceSize()
	set := &ActionSet{
		Actions: make([]Action, size),
		Mask:    make([]bool, size),
	}

	// Switch upgrade actions: one slot per optional switch.
	for i, sw := range s.prob.Switches() {
		set.Actions[i] = Action{Kind: ActionSwitchUpgrade, Switch: sw}
		lvl := state.Assign.SwitchLevel(sw)
		// Addable (not present) or upgradable (below ASIL-D).
		set.Mask[i] = lvl != asil.LevelD
	}

	// Path addition actions (Algorithm 1).
	base := len(s.prob.Switches())
	if len(er) == 0 {
		return set
	}
	pair := er[rng.Intn(len(er))]

	// Residual search graph: Gc minus failed nodes, minus unadded
	// switches, minus failed edges.
	g := s.prob.Connections.Clone()
	for _, v := range gf.Nodes {
		g.IsolateVertex(v)
	}
	for _, sw := range s.prob.Switches() {
		if !state.HasSwitch(sw) {
			g.IsolateVertex(sw)
		}
	}
	for _, e := range gf.Edges {
		g.RemoveEdge(e.U, e.V)
	}

	if s.ExhaustiveValidPaths {
		cap := s.ExhaustiveCap
		if cap <= 0 {
			cap = 128
		}
		paths, err := g.KShortestPaths(pair.Src, pair.Dst, cap)
		if err != nil {
			return set
		}
		i := 0
		for _, p := range paths {
			if i >= s.K {
				break
			}
			if !s.pathRespectsDegrees(state, p) {
				continue
			}
			set.Actions[base+i] = Action{Kind: ActionPathAdd, Path: p}
			set.Mask[base+i] = true
			i++
		}
		return set
	}

	paths, err := g.KShortestPaths(pair.Src, pair.Dst, s.K)
	if err != nil {
		return set // no connecting path exists: all path slots stay masked
	}
	for i, p := range paths {
		set.Actions[base+i] = Action{Kind: ActionPathAdd, Path: p}
		if s.DisableDegreeMask {
			set.Mask[base+i] = true
			continue
		}
		set.Mask[base+i] = s.pathRespectsDegrees(state, p)
	}
	return set
}

// pathRespectsDegrees checks the degree constraint of Algorithm 1 lines
// 6-12: adding the path's new edges must not push any switch beyond the
// library's port maximum or any end station beyond MaxESDegree.
func (s *SOAG) pathRespectsDegrees(state *TSSDN, p graph.Path) bool {
	extra := make(map[int]int)
	for i := 0; i+1 < len(p); i++ {
		if !state.Topo.HasEdge(p[i], p[i+1]) {
			extra[p[i]]++
			extra[p[i+1]]++
		}
	}
	for v, add := range extra {
		deg := state.Topo.Degree(v) + add
		if s.prob.Connections.Kind(v) == graph.KindSwitch && deg > s.prob.Library.MaxSwitchDegree() {
			return false
		}
		if s.prob.Connections.Kind(v) == graph.KindEndStation && deg > s.prob.MaxESDegree {
			return false
		}
	}
	return true
}
