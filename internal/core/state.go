package core

import (
	"fmt"

	"repro/internal/asil"
	"repro/internal/graph"
)

// TSSDN is the network under construction: a topology Gt (subgraph of Gc
// over the same vertex set) together with its ASIL assignment. NPTSN
// constructs it monotonically — switches and links are only added or
// upgraded, never removed (§IV-B).
type TSSDN struct {
	prob   *Problem
	Topo   *graph.Graph
	Assign *asil.Assignment
}

// NewTSSDN returns the empty starting state: end stations only, no links or
// switches selected (§III).
func NewTSSDN(prob *Problem) *TSSDN {
	return &TSSDN{
		prob:   prob,
		Topo:   prob.Connections.EmptyLike(),
		Assign: asil.NewAssignment(),
	}
}

// Reset clears the network back to the empty starting state.
func (t *TSSDN) Reset() {
	t.Topo = t.prob.Connections.EmptyLike()
	t.Assign = asil.NewAssignment()
}

// Clone deep-copies the construction state.
func (t *TSSDN) Clone() *TSSDN {
	return &TSSDN{prob: t.prob, Topo: t.Topo.Clone(), Assign: t.Assign.Clone()}
}

// HasSwitch reports whether the optional switch sw has been added.
func (t *TSSDN) HasSwitch(sw int) bool {
	_, ok := t.Assign.Switches[sw]
	return ok
}

// vertexLevel returns the effective ASIL of a vertex for the link-minimum
// rule: assigned level for added switches, the problem's ESLevel for end
// stations, 0 for unadded switches.
func (t *TSSDN) vertexLevel(v int) asil.Level {
	if t.prob.Connections.Kind(v) == graph.KindEndStation {
		return t.prob.ESLevel
	}
	return t.Assign.SwitchLevel(v)
}

// refreshLinkLevels re-derives the ASIL of every link incident to sw after
// its level changed, maintaining the invariant link ASIL = min(endpoints).
func (t *TSSDN) refreshLinkLevels(sw int) {
	for _, nb := range t.Topo.Neighbors(sw) {
		t.Assign.SetLink(sw, nb, asil.Min(t.vertexLevel(sw), t.vertexLevel(nb)))
	}
}

// UpgradeSwitch applies a switch-upgrade action: add the switch at ASIL-A
// if absent, otherwise raise its ASIL one level. ASIL-D switches cannot be
// upgraded (the SOAG masks such actions; calling anyway is an error).
func (t *TSSDN) UpgradeSwitch(sw int) error {
	if t.prob.Connections.Kind(sw) != graph.KindSwitch {
		return fmt.Errorf("tssdn: vertex %d is not an optional switch", sw)
	}
	lvl, added := t.Assign.Switches[sw]
	if !added {
		t.Assign.Switches[sw] = asil.LevelA
		t.refreshLinkLevels(sw)
		return nil
	}
	next, ok := lvl.Next()
	if !ok {
		return fmt.Errorf("tssdn: switch %d already at ASIL-D", sw)
	}
	t.Assign.Switches[sw] = next
	t.refreshLinkLevels(sw)
	return nil
}

// AddPath applies a path-addition action: every edge of the path is added
// to the topology (idempotently) with its Gc length, and new links get
// ASIL = min(endpoint levels). The path may only traverse end stations and
// previously added switches, and the resulting degrees must respect the
// constraints — violations return an error (the SOAG masks them; the
// ablation mode relies on this check).
func (t *TSSDN) AddPath(p graph.Path) error {
	if len(p) < 2 {
		return fmt.Errorf("tssdn: path %v too short", p)
	}
	for _, v := range p {
		if t.prob.Connections.Kind(v) == graph.KindSwitch && !t.HasSwitch(v) {
			return fmt.Errorf("tssdn: path traverses unadded switch %d", v)
		}
	}
	// Degree check on the hypothetical result.
	extra := make(map[int]int)
	for i := 0; i+1 < len(p); i++ {
		u, v := p[i], p[i+1]
		if !t.prob.Connections.HasEdge(u, v) {
			return fmt.Errorf("tssdn: path edge (%d,%d) not in the connection graph", u, v)
		}
		if !t.Topo.HasEdge(u, v) {
			extra[u]++
			extra[v]++
		}
	}
	for v, add := range extra {
		deg := t.Topo.Degree(v) + add
		if t.prob.Connections.Kind(v) == graph.KindSwitch && deg > t.prob.Library.MaxSwitchDegree() {
			return fmt.Errorf("tssdn: switch %d degree %d exceeds %d ports", v, deg, t.prob.Library.MaxSwitchDegree())
		}
		if t.prob.Connections.Kind(v) == graph.KindEndStation && deg > t.prob.MaxESDegree {
			return fmt.Errorf("tssdn: end station %d degree %d exceeds %d", v, deg, t.prob.MaxESDegree)
		}
	}
	for i := 0; i+1 < len(p); i++ {
		u, v := p[i], p[i+1]
		if t.Topo.HasEdge(u, v) {
			continue
		}
		length, _ := t.prob.Connections.EdgeLength(u, v)
		if err := t.Topo.AddEdge(u, v, length); err != nil {
			return fmt.Errorf("tssdn: %w", err)
		}
		t.Assign.SetLink(u, v, asil.Min(t.vertexLevel(u), t.vertexLevel(v)))
	}
	return nil
}

// Cost computes the current network cost (Eq. 1).
func (t *TSSDN) Cost() (float64, error) {
	return asil.NetworkCost(t.Topo, t.Assign, t.prob.Library)
}

// CheckInvariants verifies the state invariants maintained by the action
// implementations; tests and the environment's paranoid mode call it.
func (t *TSSDN) CheckInvariants() error {
	if !t.Topo.IsSubgraphOf(t.prob.Connections) {
		return fmt.Errorf("tssdn: topology is not a subgraph of the connection graph")
	}
	for _, e := range t.Topo.Edges() {
		want := asil.Min(t.vertexLevel(e.U), t.vertexLevel(e.V))
		if got := t.Assign.LinkLevel(e.U, e.V); got != want {
			return fmt.Errorf("tssdn: link (%d,%d) ASIL %s, want %s", e.U, e.V, got, want)
		}
	}
	for _, sw := range t.prob.Switches() {
		if t.Topo.Degree(sw) > 0 && !t.HasSwitch(sw) {
			return fmt.Errorf("tssdn: switch %d has links but was never added", sw)
		}
		if t.Topo.Degree(sw) > t.prob.Library.MaxSwitchDegree() {
			return fmt.Errorf("tssdn: switch %d exceeds the degree constraint", sw)
		}
	}
	for _, es := range t.prob.EndStations() {
		if t.Topo.Degree(es) > t.prob.MaxESDegree {
			return fmt.Errorf("tssdn: end station %d exceeds the degree constraint", es)
		}
	}
	return nil
}
