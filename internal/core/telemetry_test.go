package core

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obsv"
)

// TestTrainingWithMetricsAndEvents trains with the full observability
// stack on (shared registry, in-memory event sink, multiple exploration
// workers) and checks three things: the metrics agree with the report,
// the event log covers the run, and observability never changes what is
// learned.
func TestTrainingWithMetricsAndEvents(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.MaxEpoch = 3
	cfg.Workers = 2
	cfg.AnalyzerCacheSize = 1 << 10
	ref := train(t, prob, cfg)

	reg := obsv.NewRegistry()
	sink := &obsv.MemorySink{}
	cfg.Metrics = reg
	cfg.Events = sink
	got := train(t, prob, cfg)

	if !reflect.DeepEqual(stripDurations(got.Epochs), stripDurations(ref.Epochs)) {
		t.Fatal("metrics/events changed the training trajectory")
	}
	if !reflect.DeepEqual(got.FinalWeights, ref.FinalWeights) {
		t.Fatal("metrics/events changed the learned weights")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	wantSample := func(name string, want float64) {
		t.Helper()
		line := fmt.Sprintf("%s %g", name, want)
		if !strings.Contains(text, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
	}
	var steps, trajectories int
	for _, es := range got.Epochs {
		steps += es.EnvSteps
		trajectories += es.Trajectories
	}
	wantSample("nptsn_epochs_total", float64(len(got.Epochs)))
	wantSample("nptsn_env_steps_total", float64(steps))
	wantSample("nptsn_trajectories_total", float64(trajectories))
	wantSample("nptsn_epoch_reward", got.Epochs[len(got.Epochs)-1].Reward)
	if !strings.Contains(text, "nptsn_epoch_duration_seconds_bucket") {
		t.Fatalf("epoch duration histogram missing:\n%s", text)
	}
	if !strings.Contains(text, "nptsn_analysis_cache_hits_total") {
		t.Fatalf("cache metrics missing:\n%s", text)
	}

	events := sink.Events()
	byType := map[string]int{}
	for _, e := range events {
		byType[e.Type]++
		if e.Time.IsZero() {
			t.Fatalf("event %+v not timestamped", e)
		}
	}
	if byType[obsv.EventRunStart] != 1 || byType[obsv.EventRunEnd] != 1 {
		t.Fatalf("run_start/run_end wrong: %v", byType)
	}
	if byType[obsv.EventEpoch] != cfg.MaxEpoch {
		t.Fatalf("%d epoch events for %d epochs", byType[obsv.EventEpoch], cfg.MaxEpoch)
	}
	for _, e := range events {
		if e.Type != obsv.EventEpoch {
			continue
		}
		var es *EpochStats
		for i := range got.Epochs {
			if got.Epochs[i].Epoch == e.Epoch {
				es = &got.Epochs[i]
			}
		}
		if es == nil {
			t.Fatalf("epoch event %d has no report entry", e.Epoch)
		}
		if e.V["reward"] != es.Reward || e.V["env_steps"] != float64(es.EnvSteps) ||
			e.V["solutions"] != float64(es.Solutions) {
			t.Fatalf("epoch %d event disagrees with report: %v vs %+v", e.Epoch, e.V, es)
		}
	}
}

// TestTrainingEventSinkErrorAborts: a failing sink must abort training
// (mirroring CheckpointFunc) rather than silently dropping telemetry.
func TestTrainingEventSinkErrorAborts(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.Events = failingSink{}
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(); err == nil || !strings.Contains(err.Error(), "event sink") {
		t.Fatalf("failing sink did not abort training: %v", err)
	}
}

type failingSink struct{}

func (failingSink) Emit(obsv.Event) error { return fmt.Errorf("disk full") }
