package core

import (
	"time"

	"repro/internal/failure"
	"repro/internal/obsv"
)

// plannerMetrics bundles the metric handles the planner updates while
// training. It is built once per PlanContext from Config.Metrics and is
// nil when metrics are disabled; registration is idempotent, so several
// sequential runs in one process (the eval harness) accumulate into the
// same series.
type plannerMetrics struct {
	epochs       *obsv.Counter
	envSteps     *obsv.Counter
	envResets    *obsv.Counter
	trajectories *obsv.Counter
	solutions    *obsv.Counter
	deadEnds     *obsv.Counter
	nbfCalls     *obsv.Counter
	analysisSecs *obsv.Counter
	cacheHits    *obsv.Counter
	cacheMisses  *obsv.Counter
	cacheEvicted *obsv.Counter
	piIters      *obsv.Counter
	earlyStops   *obsv.Counter
	rollbacks    *obsv.Counter
	quarantines  *obsv.Counter

	reward       *obsv.Gauge
	policyLoss   *obsv.Gauge
	valueLoss    *obsv.Gauge
	entropy      *obsv.Gauge
	approxKL     *obsv.Gauge
	clipFraction *obsv.Gauge
	bestCost     *obsv.Gauge
	adamSteps    *obsv.Gauge
	cacheEntries *obsv.Gauge

	epochDur *obsv.Histogram
	ckptSave *obsv.Histogram
	ckptLoad *obsv.Histogram

	// lastEvictions turns the cache's lifetime eviction total into
	// per-epoch deltas (the epoch loop is single-goroutine).
	lastEvictions int64
}

func newPlannerMetrics(reg *obsv.Registry) *plannerMetrics {
	return &plannerMetrics{
		epochs:       reg.Counter("nptsn_epochs_total", "Completed training epochs."),
		envSteps:     reg.Counter("nptsn_env_steps_total", "Environment steps trained on (merged across workers)."),
		envResets:    reg.Counter("nptsn_env_resets_total", "Environment construction resets (solutions, dead ends, re-arms)."),
		trajectories: reg.Counter("nptsn_trajectories_total", "Trajectories finished during exploration."),
		solutions:    reg.Counter("nptsn_solutions_total", "Valid solutions recorded during exploration."),
		deadEnds:     reg.Counter("nptsn_dead_ends_total", "Dead-end trajectories (no valid action left)."),
		nbfCalls:     reg.Counter("nptsn_analysis_nbf_calls_total", "Recovery simulations run by the failure analyzer."),
		analysisSecs: reg.Counter("nptsn_analysis_seconds_total", "Failure-analysis wall-clock summed across workers."),
		cacheHits:    reg.Counter("nptsn_analysis_cache_hits_total", "Verdict-cache hits."),
		cacheMisses:  reg.Counter("nptsn_analysis_cache_misses_total", "Verdict-cache misses."),
		cacheEvicted: reg.Counter("nptsn_analysis_cache_evictions_total", "Verdict-cache entries evicted to make room."),
		piIters:      reg.Counter("nptsn_ppo_pi_iters_total", "Policy gradient iterations actually run."),
		earlyStops:   reg.Counter("nptsn_ppo_early_stops_total", "PPO policy updates stopped early by the KL bound."),
		rollbacks:    reg.Counter("nptsn_watchdog_rollbacks_total", "NaN-watchdog weight rollbacks (each halves both learning rates)."),
		quarantines:  reg.Counter("nptsn_worker_quarantines_total", "Exploration workers quarantined after a panic."),

		reward:       reg.Gauge("nptsn_epoch_reward", "Mean total reward per trajectory of the last epoch."),
		policyLoss:   reg.Gauge("nptsn_policy_loss", "PPO-clip policy loss of the last epoch."),
		valueLoss:    reg.Gauge("nptsn_value_loss", "Critic MSE of the last epoch."),
		entropy:      reg.Gauge("nptsn_policy_entropy", "Mean policy entropy (nats) of the last epoch."),
		approxKL:     reg.Gauge("nptsn_approx_kl", "Sample KL estimate of the last policy update."),
		clipFraction: reg.Gauge("nptsn_clip_fraction", "Fraction of samples clipped in the last policy update."),
		bestCost:     reg.Gauge("nptsn_best_cost", "Best solution cost found so far (0 before the first solution)."),
		adamSteps:    reg.Gauge("nptsn_adam_steps", "Lifetime actor+critic Adam update count."),
		cacheEntries: reg.Gauge("nptsn_analysis_cache_entries", "Verdicts currently memoized."),

		epochDur: reg.Histogram("nptsn_epoch_duration_seconds", "Wall-clock per epoch (exploration + update).", obsv.DurationBuckets),
		ckptSave: reg.Histogram("nptsn_checkpoint_save_seconds", "Checkpoint capture+write duration.", obsv.DurationBuckets),
		ckptLoad: reg.Histogram("nptsn_checkpoint_load_seconds", "Checkpoint restore duration.", obsv.DurationBuckets),
	}
}

// recordEpoch folds one completed epoch into the metrics.
func (m *plannerMetrics) recordEpoch(es EpochStats, cache *failure.Cache) {
	if m == nil {
		return
	}
	m.epochs.Inc()
	m.envSteps.Add(float64(es.EnvSteps))
	m.envResets.Add(float64(es.EnvResets))
	m.trajectories.Add(float64(es.Trajectories))
	m.solutions.Add(float64(es.Solutions))
	m.deadEnds.Add(float64(es.DeadEnds))
	m.nbfCalls.Add(float64(es.NBFCalls))
	m.analysisSecs.Add(es.AnalysisTime.Seconds())
	m.cacheHits.Add(float64(es.AnalysisCacheHits))
	m.cacheMisses.Add(float64(es.AnalysisCacheMisses))
	m.piIters.Add(float64(es.PolicyIters))
	if es.EarlyStopped {
		m.earlyStops.Inc()
	}
	m.rollbacks.Add(float64(es.Divergences))
	m.quarantines.Add(float64(len(es.Panics)))

	m.reward.Set(es.Reward)
	m.policyLoss.Set(es.PolicyLoss)
	m.valueLoss.Set(es.ValueLoss)
	m.entropy.Set(es.Entropy)
	m.approxKL.Set(es.ApproxKL)
	m.clipFraction.Set(es.ClipFraction)
	m.bestCost.Set(es.BestCost)
	m.adamSteps.Set(float64(es.AdamSteps))
	m.epochDur.Observe(es.Duration.Seconds())

	if cache != nil {
		st := cache.Stats()
		m.cacheEntries.Set(float64(st.Entries))
		if d := st.Evictions - m.lastEvictions; d > 0 {
			m.cacheEvicted.Add(float64(d))
			m.lastEvictions = st.Evictions
		}
	}
}

// epochEvent flattens one epoch's statistics into a structured telemetry
// event. Every numeric field lives in V under a stable key so event logs
// from different runs are machine-comparable.
func epochEvent(es EpochStats) obsv.Event {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return obsv.Event{
		Type:  obsv.EventEpoch,
		Epoch: es.Epoch,
		V: map[string]float64{
			"reward":           es.Reward,
			"policy_loss":      es.PolicyLoss,
			"value_loss":       es.ValueLoss,
			"entropy":          es.Entropy,
			"approx_kl":        es.ApproxKL,
			"clip_fraction":    es.ClipFraction,
			"pi_iters":         float64(es.PolicyIters),
			"early_stopped":    b2f(es.EarlyStopped),
			"adam_steps":       float64(es.AdamSteps),
			"trajectories":     float64(es.Trajectories),
			"solutions":        float64(es.Solutions),
			"dead_ends":        float64(es.DeadEnds),
			"env_steps":        float64(es.EnvSteps),
			"env_resets":       float64(es.EnvResets),
			"best_cost":        es.BestCost,
			"duration_seconds": es.Duration.Seconds(),
			"analysis_seconds": es.AnalysisTime.Seconds(),
			"nbf_calls":        float64(es.NBFCalls),
			"cache_hits":       float64(es.AnalysisCacheHits),
			"cache_misses":     float64(es.AnalysisCacheMisses),
			"divergences":      float64(es.Divergences),
			"panics":           float64(len(es.Panics)),
		},
	}
}

// durationEvent builds a checkpoint_save / checkpoint_load event.
func durationEvent(typ string, epoch int, d time.Duration) obsv.Event {
	return obsv.Event{
		Type:  typ,
		Epoch: epoch,
		V:     map[string]float64{"duration_seconds": d.Seconds()},
	}
}
