package core

import (
	"context"
	"fmt"

	"repro/internal/failure"
)

// VerifySolution independently re-checks a planning solution: structural
// invariants (subgraph, degrees, link-ASIL rule) and the full reliability
// analysis (Algorithm 3). It is the acceptance check used by tests, the
// CLI, and the evaluation harness.
func VerifySolution(prob *Problem, sol *Solution) error {
	return VerifySolutionContext(context.Background(), prob, sol)
}

// VerifySolutionContext is VerifySolution with cancellation: the embedded
// reliability analysis honors ctx, so verification of large topologies can
// be interrupted like the rest of the planning pipeline.
func VerifySolutionContext(ctx context.Context, prob *Problem, sol *Solution) error {
	if sol == nil {
		return fmt.Errorf("verify: nil solution")
	}
	state := &TSSDN{prob: prob, Topo: sol.Topology, Assign: sol.Assignment}
	if err := state.CheckInvariants(); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	cost, err := state.Cost()
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if sol.Cost != 0 && cost != sol.Cost {
		return fmt.Errorf("verify: recorded cost %v but recomputed %v", sol.Cost, cost)
	}
	an := &failure.Analyzer{
		Lib:                 prob.Library,
		NBF:                 prob.NBF,
		Net:                 prob.Net,
		R:                   prob.ReliabilityGoal,
		FlowLevelRedundancy: prob.FlowLevelRedundancy,
		ESLevel:             prob.ESLevel,
	}
	res, err := an.AnalyzeContext(ctx, sol.Topology, sol.Assignment, prob.Flows)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if !res.OK {
		return fmt.Errorf("verify: reliability goal violated by failure %v (ER %v)", res.Failure, res.ER)
	}
	return nil
}
