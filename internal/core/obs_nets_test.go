package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/nn"
	"repro/internal/tsn"
)

func TestEncoderDimensions(t *testing.T) {
	prob := tinyProblem(t)
	enc := NewEncoder(prob, 4)
	// |Vc| = 6, |Ves| = 4, K = 4 -> F = 1 + 6 + 4 + 4 = 15.
	if got := enc.FeatureDim(); got != 15 {
		t.Fatalf("FeatureDim = %d, want 15", got)
	}
	// 3 flows × 3 values + 1 global.
	if got := enc.ParamDim(); got != 10 {
		t.Fatalf("ParamDim = %d, want 10", got)
	}
	s := NewTSSDN(prob)
	obs := enc.Encode(s, nil)
	if obs.SHat.Rows != 6 || obs.SHat.Cols != 6 {
		t.Fatalf("SHat %dx%d", obs.SHat.Rows, obs.SHat.Cols)
	}
	if obs.Feat.Rows != 6 || obs.Feat.Cols != 15 {
		t.Fatalf("Feat %dx%d", obs.Feat.Rows, obs.Feat.Cols)
	}
}

func TestEncoderFeatures(t *testing.T) {
	prob := tinyProblem(t)
	enc := NewEncoder(prob, 4)
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPath(graph.Path{0, 4, 1}); err != nil {
		t.Fatal(err)
	}
	soag, _ := NewSOAG(prob, 4)
	set := soag.Generate(s, nbf.Failure{}, []tsn.Pair{{Src: 2, Dst: 3}}, rand.New(rand.NewSource(1)))
	obs := enc.Encode(s, set)

	// Switch cost column: switch 4 has degree 2, ASIL-A -> cost 8, scaled.
	if got := obs.Feat.At(4, 0); math.Abs(got-8.0/54.0) > 1e-12 {
		t.Fatalf("switch cost feature = %v", got)
	}
	if obs.Feat.At(0, 0) != 0 {
		t.Fatal("end stations must have zero switch cost")
	}
	// Link cost block: link (0,4) ASIL-A length 1 -> 1, scaled by 1/8.
	if got := obs.Feat.At(0, 1+4); math.Abs(got-1.0/8.0) > 1e-12 {
		t.Fatalf("link cost feature = %v", got)
	}
	if obs.Feat.At(0, 1+5) != 0 {
		t.Fatal("absent link has nonzero cost feature")
	}
	// Flow demand: flow 0 is 0->1; ES columns ordered [0,1,2,3].
	if obs.Feat.At(0, 1+6+1) != 1 {
		t.Fatal("flow demand (src row) missing")
	}
	if obs.Feat.At(1, 1+6+0) != 1 {
		t.Fatal("flow demand (dst row) missing")
	}
	// Dynamic action columns mark traversed vertices for path slots.
	base := 1 + 6 + 4
	foundPathColumn := false
	for k := 0; k < 4; k++ {
		idx := 2 + k
		if set.Actions[idx].Kind != ActionPathAdd {
			continue
		}
		foundPathColumn = true
		for _, v := range set.Actions[idx].Path {
			if obs.Feat.At(v, base+k) != 1 {
				t.Fatalf("action column %d missing vertex %d", k, v)
			}
		}
	}
	if !foundPathColumn {
		t.Fatal("fixture produced no path actions")
	}
}

func TestNetsForwardShapesAndDeterminism(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	soag, _ := NewSOAG(prob, cfg.K)
	enc := NewEncoder(prob, cfg.K)
	nets, err := NewNets(rand.New(rand.NewSource(3)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewTSSDN(prob)
	set := soag.Generate(s, nbf.Failure{}, []tsn.Pair{{Src: 0, Dst: 1}}, rand.New(rand.NewSource(1)))
	obs := enc.Encode(s, set)

	// ForwardPolicy returns a borrowed scratch slice; copy before the next
	// forward so the determinism comparison is not against an alias.
	logits := append([]float64(nil), nets.ForwardPolicy(obs)...)
	if len(logits) != soag.ActionSpaceSize() {
		t.Fatalf("logits len %d, want %d", len(logits), soag.ActionSpaceSize())
	}
	again := nets.ForwardPolicy(obs)
	for i := range logits {
		if logits[i] != again[i] {
			t.Fatal("policy forward not deterministic")
		}
	}
	v1 := nets.ForwardValue(obs)
	v2 := nets.ForwardValue(obs)
	if v1 != v2 {
		t.Fatal("value forward not deterministic")
	}
}

func TestNetsGradientThroughFullPipeline(t *testing.T) {
	// Finite-difference check of d logits[a] / d params through
	// GCN + concat + actor MLP.
	prob := tinyProblem(t)
	cfg := tinyConfig()
	soag, _ := NewSOAG(prob, cfg.K)
	enc := NewEncoder(prob, cfg.K)
	nets, err := NewNets(rand.New(rand.NewSource(5)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	set := soag.Generate(s, nbf.Failure{}, []tsn.Pair{{Src: 0, Dst: 1}}, rand.New(rand.NewSource(1)))
	obs := enc.Encode(s, set)
	const target = 1

	loss := func() float64 { return nets.ForwardPolicy(obs)[target] }

	ps := nets.PolicyParams()
	nn.ZeroGrads(ps)
	logits := nets.ForwardPolicy(obs)
	dLogits := make([]float64, len(logits))
	dLogits[target] = 1
	nets.BackwardPolicy(dLogits)

	const eps = 1e-6
	for pi, p := range ps {
		for j := 0; j < len(p.Value.Data); j += 7 { // sample every 7th weight
			orig := p.Value.Data[j]
			p.Value.Data[j] = orig + eps
			up := loss()
			p.Value.Data[j] = orig - eps
			down := loss()
			p.Value.Data[j] = orig
			numeric := (up - down) / (2 * eps)
			analytic := p.Grad.Data[j]
			if math.Abs(analytic-numeric) > 1e-4*math.Max(1, math.Abs(numeric)) {
				t.Fatalf("param %d (%s) elem %d: analytic %v numeric %v", pi, p.Name, j, analytic, numeric)
			}
		}
	}

	// Value head gradient check.
	vs := nets.ValueParams()
	nn.ZeroGrads(vs)
	nets.ForwardValue(obs)
	nets.BackwardValue(1)
	vloss := func() float64 { return nets.ForwardValue(obs) }
	for pi, p := range vs {
		for j := 0; j < len(p.Value.Data); j += 11 {
			orig := p.Value.Data[j]
			p.Value.Data[j] = orig + eps
			up := vloss()
			p.Value.Data[j] = orig - eps
			down := vloss()
			p.Value.Data[j] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(p.Grad.Data[j]-numeric) > 1e-4*math.Max(1, math.Abs(numeric)) {
				t.Fatalf("value param %d elem %d: analytic %v numeric %v", pi, j, p.Grad.Data[j], numeric)
			}
		}
	}
}

func TestNetsSyncFrom(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	soag, _ := NewSOAG(prob, cfg.K)
	enc := NewEncoder(prob, cfg.K)
	a, err := NewNets(rand.New(rand.NewSource(1)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNets(rand.New(rand.NewSource(2)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.SyncFrom(a)
	pa, pb := a.AllParams(), b.AllParams()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
				t.Fatal("SyncFrom did not copy all parameters")
			}
		}
	}
}

func TestNetsGCN0FeedsRawFeatures(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.GCNLayers = 0
	soag, _ := NewSOAG(prob, cfg.K)
	enc := NewEncoder(prob, cfg.K)
	nets, err := NewNets(rand.New(rand.NewSource(1)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewTSSDN(prob)
	obs := enc.Encode(s, nil)
	logits := nets.ForwardPolicy(obs)
	if len(logits) != soag.ActionSpaceSize() {
		t.Fatalf("GCN-0 logits len %d", len(logits))
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mods := []func(*Config){
		func(c *Config) { c.GCNLayers = -1 },
		func(c *Config) { c.GCNLayers = 2; c.GCNHidden = 0 },
		func(c *Config) { c.MLPHidden = nil },
		func(c *Config) { c.MLPHidden = []int{0} },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.MaxEpoch = 0 },
		func(c *Config) { c.MaxStep = 0 },
		func(c *Config) { c.RewardScale = 0 },
		func(c *Config) { c.Discount = 0 },
		func(c *Config) { c.GAELambda = 2 },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.ClipRatio = 0 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	// Table II.
	if cfg.GCNLayers != 2 {
		t.Error("GCN layers != 2")
	}
	if len(cfg.MLPHidden) != 2 || cfg.MLPHidden[0] != 256 || cfg.MLPHidden[1] != 256 {
		t.Error("MLP hidden != 256x256")
	}
	if cfg.EmbeddingPerNode != 2 {
		t.Error("graph embedding features != 2×|Vc|")
	}
	if cfg.RewardScale != 1e3 {
		t.Error("reward scaling factor != 10^3")
	}
	if cfg.ActorLR != 3e-4 || cfg.CriticLR != 1e-3 {
		t.Error("learning rates mismatch")
	}
	if cfg.K != 16 || cfg.MaxEpoch != 256 || cfg.MaxStep != 2048 {
		t.Error("K/maxepoch/maxstep mismatch")
	}
	if cfg.ClipRatio != 0.2 || cfg.GAELambda != 0.97 || cfg.Discount != 0.99 {
		t.Error("clip/lambda/discount mismatch")
	}
}
