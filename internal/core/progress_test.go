package core

import (
	"reflect"
	"testing"
)

// TestProgressHook asserts the Progress callback fires synchronously once
// per completed epoch, in epoch order, with exactly the statistics that end
// up in the report — the contract the CLI's live summary and the planning
// service's per-job progress tracking both rely on.
func TestProgressHook(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.MaxEpoch = 3

	var seen []EpochStats
	cfg.Progress = func(es EpochStats) { seen = append(seen, es) }

	p, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(report.Epochs) {
		t.Fatalf("progress fired %d times for %d epochs", len(seen), len(report.Epochs))
	}
	for i, es := range seen {
		if es.Epoch != i+1 {
			t.Fatalf("progress call %d carries epoch %d", i, es.Epoch)
		}
		if !reflect.DeepEqual(es, report.Epochs[i]) {
			t.Errorf("epoch %d: progress stats diverge from report:\nhook:   %+v\nreport: %+v",
				es.Epoch, es, report.Epochs[i])
		}
	}
}

// TestProgressHookUnsetIsNoop: a nil hook must not change training at all.
func TestProgressHookUnsetIsNoop(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()

	p1, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p1.Plan()
	if err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.Progress = func(EpochStats) {}
	p2, err := NewPlanner(tinyProblem(t), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(epochRewards(r1), epochRewards(r2)) {
		t.Fatalf("progress hook changed the training trajectory:\n%v\n%v", epochRewards(r1), epochRewards(r2))
	}
}

func epochRewards(r *Report) []float64 {
	out := make([]float64, len(r.Epochs))
	for i, e := range r.Epochs {
		out[i] = e.Reward
	}
	return out
}
