package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/tsn"
)

// tinyProblemVariant is tinyProblem with a different flow set, so two
// side-by-side planners work on genuinely different problem instances.
func tinyProblemVariant(t *testing.T) *Problem {
	t.Helper()
	prob := buildTinyProblem()
	net := prob.Net
	mk := func(id, src, dst int) tsn.Flow {
		return tsn.Flow{ID: id, Src: src, Dsts: []int{dst}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 128}
	}
	prob.Flows = tsn.FlowSet{mk(0, 3, 0), mk(1, 1, 2)}
	if err := prob.Validate(); err != nil {
		t.Fatalf("variant problem invalid: %v", err)
	}
	return prob
}

// TestConcurrentIndependentPlanners runs two independent Planner instances
// side by side in one process — the planning service's steady state — and
// asserts each run is bit-identical to the same run executed alone. Each
// planner owns its verdict cache and worker pool; under -race this also
// proves the instances share no mutable state.
func TestConcurrentIndependentPlanners(t *testing.T) {
	cfgA := tinyConfig()
	cfgA.AnalyzerCacheSize = 1024
	cfgA.Workers = 2
	cfgB := tinyConfig()
	cfgB.Seed = 23
	cfgB.AnalyzerCacheSize = 1024

	// Sequential baselines.
	baseA := planOnce(t, tinyProblem(t), cfgA)
	baseB := planOnce(t, tinyProblemVariant(t), cfgB)

	// The same two runs, concurrently.
	var wg sync.WaitGroup
	reports := make([]*Report, 2)
	errs := make([]error, 2)
	run := func(i int, prob *Problem, cfg Config) {
		defer wg.Done()
		p, err := NewPlanner(prob, cfg)
		if err != nil {
			errs[i] = err
			return
		}
		reports[i], errs[i] = p.Plan()
	}
	wg.Add(2)
	go run(0, tinyProblem(t), cfgA)
	go run(1, tinyProblemVariant(t), cfgB)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent planner %d: %v", i, err)
		}
	}

	assertSameTrajectory(t, "planner A", baseA, reports[0])
	assertSameTrajectory(t, "planner B", baseB, reports[1])
}

func planOnce(t *testing.T, prob *Problem, cfg Config) *Report {
	t.Helper()
	p, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// assertSameTrajectory compares the deterministic parts of two reports
// (rewards, losses, counts, best cost); wall-clock fields are excluded.
func assertSameTrajectory(t *testing.T, label string, want, got *Report) {
	t.Helper()
	type key struct {
		Reward, PolicyLoss, ValueLoss, BestCost float64
		Trajectories, Solutions, DeadEnds       int
	}
	mk := func(r *Report) []key {
		out := make([]key, len(r.Epochs))
		for i, e := range r.Epochs {
			out[i] = key{e.Reward, e.PolicyLoss, e.ValueLoss, e.BestCost, e.Trajectories, e.Solutions, e.DeadEnds}
		}
		return out
	}
	if !reflect.DeepEqual(mk(want), mk(got)) {
		t.Fatalf("%s: concurrent run diverged from sequential baseline:\nseq: %+v\nconc: %+v", label, mk(want), mk(got))
	}
	if (want.Best == nil) != (got.Best == nil) {
		t.Fatalf("%s: best-solution presence diverged", label)
	}
	if want.Best != nil && want.Best.Cost != got.Best.Cost {
		t.Fatalf("%s: best cost diverged: %v vs %v", label, want.Best.Cost, got.Best.Cost)
	}
}
