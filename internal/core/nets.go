package core

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/rl"
)

// graphTrunk abstracts the shared graph encoder: the GCN of Fig. 3 or the
// GAT alternative discussed (and rejected for scalability) in §IV-C.
type graphTrunk interface {
	Forward(op, h *nn.Matrix) *nn.Matrix
	Backward(dY *nn.Matrix) *nn.Matrix
	Params() []nn.Param
	OutFeatures(in int) int
	NumLayers() int
}

var (
	_ graphTrunk = (*nn.GCN)(nil)
	_ graphTrunk = (*nn.GAT)(nil)
)

// Nets is the neural-network architecture of Fig. 3: a graph trunk (GCN by
// default) shared by an actor MLP (logits over the dynamic action space)
// and a critic MLP (scalar value), with the flow/network parameter vector
// concatenated onto the flattened graph embedding.
type Nets struct {
	gcn    graphTrunk
	useGAT bool
	actor  *nn.MLP
	critic *nn.MLP

	numVertices int
	featDim     int
	embedCols   int // per-node embedding width after the GCN

	// caches for backward passes
	lastPolicyObs *Obs
	lastValueObs  *Obs
}

var _ rl.ActorCritic = (*Nets)(nil)

// NewNets builds the networks for the given problem geometry, action-space
// size and config. NPTSN passes the SOAG's action-space size; the NeuroPlan
// baseline passes its static action count.
func NewNets(rng *rand.Rand, enc *Encoder, actionSpace int, cfg Config) (*Nets, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if actionSpace <= 0 {
		return nil, fmt.Errorf("core: action space must be positive, got %d", actionSpace)
	}
	n := enc.prob.NumVertices()
	featDim := enc.FeatureDim()
	var trunk graphTrunk
	if cfg.UseGAT {
		trunk = nn.NewGAT(rng, cfg.GCNLayers, featDim, cfg.GCNHidden, cfg.EmbeddingPerNode)
	} else {
		trunk = nn.NewGCN(rng, cfg.GCNLayers, featDim, cfg.GCNHidden, cfg.EmbeddingPerNode)
	}
	embedCols := trunk.OutFeatures(featDim)
	mlpIn := n*embedCols + enc.ParamDim()
	return &Nets{
		gcn:         trunk,
		useGAT:      cfg.UseGAT,
		actor:       nn.NewMLP(rng, mlpIn, cfg.MLPHidden, actionSpace, nn.Tanh),
		critic:      nn.NewMLP(rng, mlpIn, cfg.MLPHidden, 1, nn.Tanh),
		numVertices: n,
		featDim:     featDim,
		embedCols:   embedCols,
	}, nil
}

// embed runs the graph trunk and assembles the MLP input.
func (nt *Nets) embed(obs *Obs) *nn.Matrix {
	op := obs.SHat
	if nt.useGAT {
		op = obs.Mask
	}
	emb := nt.gcn.Forward(op, obs.Feat)
	return nn.ConcatCols(emb.Flatten(), obs.Params)
}

// backThroughEmbedding splits the MLP input gradient and backpropagates the
// embedding part through the GCN (the parameter-vector part is constant).
func (nt *Nets) backThroughEmbedding(dIn *nn.Matrix) {
	embLen := nt.numVertices * nt.embedCols
	dEmb := nn.FromSlice(nt.numVertices, nt.embedCols, append([]float64(nil), dIn.Data[:embLen]...))
	nt.gcn.Backward(dEmb)
}

// ForwardPolicy implements rl.ActorCritic.
func (nt *Nets) ForwardPolicy(obs rl.Observation) []float64 {
	o, ok := obs.(*Obs)
	if !ok {
		panic(fmt.Sprintf("core: unexpected observation type %T", obs))
	}
	nt.lastPolicyObs = o
	out := nt.actor.Forward(nt.embed(o))
	return append([]float64(nil), out.Data...)
}

// BackwardPolicy implements rl.ActorCritic.
func (nt *Nets) BackwardPolicy(dLogits []float64) {
	if nt.lastPolicyObs == nil {
		panic("core: policy backward before forward")
	}
	dIn := nt.actor.Backward(nn.FromSlice(1, len(dLogits), append([]float64(nil), dLogits...)))
	nt.backThroughEmbedding(dIn)
}

// PolicyParams implements rl.ActorCritic: GCN trunk + actor head.
func (nt *Nets) PolicyParams() []nn.Param {
	return append(nt.gcn.Params(), nt.actor.Params()...)
}

// ForwardValue implements rl.ActorCritic.
func (nt *Nets) ForwardValue(obs rl.Observation) float64 {
	o, ok := obs.(*Obs)
	if !ok {
		panic(fmt.Sprintf("core: unexpected observation type %T", obs))
	}
	nt.lastValueObs = o
	return nt.critic.Forward(nt.embed(o)).Data[0]
}

// BackwardValue implements rl.ActorCritic.
func (nt *Nets) BackwardValue(dV float64) {
	if nt.lastValueObs == nil {
		panic("core: value backward before forward")
	}
	dIn := nt.critic.Backward(nn.FromSlice(1, 1, []float64{dV}))
	nt.backThroughEmbedding(dIn)
}

// ValueParams implements rl.ActorCritic: GCN trunk + critic head.
func (nt *Nets) ValueParams() []nn.Param {
	return append(nt.gcn.Params(), nt.critic.Params()...)
}

// AllParams lists every parameter exactly once (GCN, actor, critic), used
// for replica synchronization.
func (nt *Nets) AllParams() []nn.Param {
	ps := append(nt.gcn.Params(), nt.actor.Params()...)
	return append(ps, nt.critic.Params()...)
}

// SyncFrom copies parameter values from src (replica synchronization after
// a global update, §IV-C).
func (nt *Nets) SyncFrom(src *Nets) {
	nn.CopyParams(nt.AllParams(), src.AllParams())
}

// ExportWeights snapshots all trainable parameters for persistence or warm
// starting a later run (Adam moments are not included).
func (nt *Nets) ExportWeights() [][]float64 {
	return nn.ExportWeights(nt.AllParams())
}

// ImportWeights restores a snapshot taken from an identically configured
// network (same problem geometry, action space and Config sizes).
func (nt *Nets) ImportWeights(w [][]float64) error {
	return nn.ImportWeights(nt.AllParams(), w)
}
