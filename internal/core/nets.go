package core

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/rl"
)

// graphTrunk abstracts the shared graph encoder: the GCN of Fig. 3 or the
// GAT alternative discussed (and rejected for scalability) in §IV-C.
type graphTrunk interface {
	Forward(op, h *nn.Matrix) *nn.Matrix
	Backward(dY *nn.Matrix) *nn.Matrix
	Params() []nn.Param
	OutFeatures(in int) int
	NumLayers() int
}

var (
	_ graphTrunk = (*nn.GCN)(nil)
	_ graphTrunk = (*nn.GAT)(nil)
)

// Nets is the neural-network architecture of Fig. 3: a graph trunk (GCN by
// default) shared by an actor MLP (logits over the dynamic action space)
// and a critic MLP (scalar value), with the flow/network parameter vector
// concatenated onto the flattened graph embedding.
//
// Forward passes write into network-owned scratch buffers, so steady-state
// evaluation allocates nothing. ForwardPolicy's returned slice is borrowed
// scratch, valid until the next forward call on the same Nets.
type Nets struct {
	gcn    graphTrunk
	useGAT bool
	actor  *nn.MLP
	critic *nn.MLP

	numVertices int
	featDim     int
	embedCols   int // per-node embedding width after the GCN
	actionSpace int

	// cached parameter lists (built once; callers must not mutate)
	policyParams []nn.Param
	valueParams  []nn.Param
	allParams    []nn.Param

	// scratch
	xRow   *nn.Matrix // 1×mlpIn MLP input for single-observation forwards
	batchX *nn.Matrix // B×mlpIn MLP input for batched forwards
	dOut   *nn.Matrix // upstream gradient wrapper for BackwardPolicy/Value
	dEmb   nn.Matrix  // view onto the embedding slice of the input gradient

	// caches for backward passes
	lastPolicyObs *Obs
	lastValueObs  *Obs
}

var _ rl.ActorCritic = (*Nets)(nil)

// NewNets builds the networks for the given problem geometry, action-space
// size and config. NPTSN passes the SOAG's action-space size; the NeuroPlan
// baseline passes its static action count.
func NewNets(rng *rand.Rand, enc *Encoder, actionSpace int, cfg Config) (*Nets, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if actionSpace <= 0 {
		return nil, fmt.Errorf("core: action space must be positive, got %d", actionSpace)
	}
	n := enc.prob.NumVertices()
	featDim := enc.FeatureDim()
	var trunk graphTrunk
	if cfg.UseGAT {
		trunk = nn.NewGAT(rng, cfg.GCNLayers, featDim, cfg.GCNHidden, cfg.EmbeddingPerNode)
	} else {
		trunk = nn.NewGCN(rng, cfg.GCNLayers, featDim, cfg.GCNHidden, cfg.EmbeddingPerNode)
	}
	embedCols := trunk.OutFeatures(featDim)
	mlpIn := n*embedCols + enc.ParamDim()
	nt := &Nets{
		gcn:         trunk,
		useGAT:      cfg.UseGAT,
		actor:       nn.NewMLP(rng, mlpIn, cfg.MLPHidden, actionSpace, nn.Tanh),
		critic:      nn.NewMLP(rng, mlpIn, cfg.MLPHidden, 1, nn.Tanh),
		numVertices: n,
		featDim:     featDim,
		embedCols:   embedCols,
		actionSpace: actionSpace,
		xRow:        nn.NewMatrix(1, mlpIn),
		batchX:      new(nn.Matrix),
		dOut:        new(nn.Matrix),
	}
	// Parameter lists are fixed for the network's lifetime; caching them
	// keeps the per-iteration ZeroGrads/ClipGrads/Step calls allocation-
	// free. Exact capacities so appends by callers reallocate.
	pp := append(trunk.Params(), nt.actor.Params()...)
	vp := append(trunk.Params(), nt.critic.Params()...)
	ap := append(append(trunk.Params(), nt.actor.Params()...), nt.critic.Params()...)
	nt.policyParams = pp[:len(pp):len(pp)]
	nt.valueParams = vp[:len(vp):len(vp)]
	nt.allParams = ap[:len(ap):len(ap)]
	return nt, nil
}

// operator selects the trunk's propagation input for an observation.
func (nt *Nets) operator(o *Obs) *nn.Matrix {
	if nt.useGAT {
		return o.Mask
	}
	return o.SHat
}

// embed runs the graph trunk and assembles the MLP input into xRow.
func (nt *Nets) embed(obs *Obs) *nn.Matrix {
	emb := nt.gcn.Forward(nt.operator(obs), obs.Feat)
	embLen := nt.numVertices * nt.embedCols
	copy(nt.xRow.Data[:embLen], emb.Data)
	copy(nt.xRow.Data[embLen:], obs.Params.Data)
	return nt.xRow
}

// backThroughEmbedding splits the MLP input gradient and backpropagates the
// embedding part through the GCN (the parameter-vector part is constant).
// dEmb is a read-only reshaped view of dIn's prefix, consumed immediately.
func (nt *Nets) backThroughEmbedding(dIn *nn.Matrix) {
	embLen := nt.numVertices * nt.embedCols
	nt.dEmb.Rows, nt.dEmb.Cols = nt.numVertices, nt.embedCols
	nt.dEmb.Data = dIn.Data[:embLen]
	nt.gcn.Backward(&nt.dEmb)
}

// ForwardPolicy implements rl.ActorCritic. The returned slice is borrowed
// network scratch: valid until the next forward call, never to be modified
// or retained by the caller.
func (nt *Nets) ForwardPolicy(obs rl.Observation) []float64 {
	o, ok := obs.(*Obs)
	if !ok {
		panic(fmt.Sprintf("core: unexpected observation type %T", obs))
	}
	nt.lastPolicyObs = o
	return nt.actor.Forward(nt.embed(o)).Data
}

// BackwardPolicy implements rl.ActorCritic.
func (nt *Nets) BackwardPolicy(dLogits []float64) {
	if nt.lastPolicyObs == nil {
		panic("core: policy backward before forward")
	}
	nt.dOut.EnsureShape(1, len(dLogits))
	copy(nt.dOut.Data, dLogits)
	nt.backThroughEmbedding(nt.actor.Backward(nt.dOut))
}

// PolicyParams implements rl.ActorCritic: GCN trunk + actor head. The
// returned list is cached; callers must treat it as read-only.
func (nt *Nets) PolicyParams() []nn.Param { return nt.policyParams }

// ForwardValue implements rl.ActorCritic.
func (nt *Nets) ForwardValue(obs rl.Observation) float64 {
	o, ok := obs.(*Obs)
	if !ok {
		panic(fmt.Sprintf("core: unexpected observation type %T", obs))
	}
	nt.lastValueObs = o
	return nt.critic.Forward(nt.embed(o)).Data[0]
}

// BackwardValue implements rl.ActorCritic.
func (nt *Nets) BackwardValue(dV float64) {
	if nt.lastValueObs == nil {
		panic("core: value backward before forward")
	}
	nt.dOut.EnsureShape(1, 1)
	nt.dOut.Data[0] = dV
	nt.backThroughEmbedding(nt.critic.Backward(nt.dOut))
}

// ValueParams implements rl.ActorCritic: GCN trunk + critic head (cached,
// read-only).
func (nt *Nets) ValueParams() []nn.Param { return nt.valueParams }

// ActionSpace returns the actor's output dimension.
func (nt *Nets) ActionSpace() int { return nt.actionSpace }

// ForwardPolicyValueBatch evaluates both heads for a row-stacked batch of
// observations in one call: the trunk runs per observation (the
// block-diagonal Ŝ of the batch factorizes into independent blocks), the
// embeddings are stacked into one B×mlpIn matrix, and each MLP runs a
// single batched matmul chain over it. Because every matmul kernel
// computes output rows independently, row i of the batch is bit-identical
// to a single-observation forward of obs[i] — the property the batched
// exploration path relies on for reproducibility, asserted by the
// differential tests.
//
// logits[i] must be a caller-owned slice of length ActionSpace(); values
// must have length len(obs). Backward caches are not maintained: this is
// an inference-only path (the PPO update re-forwards per step).
func (nt *Nets) ForwardPolicyValueBatch(obs []*Obs, logits [][]float64, values []float64) {
	b := len(obs)
	if b == 0 {
		return
	}
	if len(logits) != b || len(values) != b {
		panic(fmt.Sprintf("core: batch of %d obs with %d logit / %d value slots", b, len(logits), len(values)))
	}
	embLen := nt.numVertices * nt.embedCols
	mlpIn := embLen + len(obs[0].Params.Data)
	nt.batchX.EnsureShape(b, mlpIn)
	for i, o := range obs {
		emb := nt.gcn.Forward(nt.operator(o), o.Feat)
		row := nt.batchX.Data[i*mlpIn : (i+1)*mlpIn]
		copy(row[:embLen], emb.Data)
		copy(row[embLen:], o.Params.Data)
	}
	out := nt.actor.Forward(nt.batchX)
	for i := range obs {
		if len(logits[i]) != nt.actionSpace {
			panic(fmt.Sprintf("core: logits[%d] has %d slots, action space is %d", i, len(logits[i]), nt.actionSpace))
		}
		copy(logits[i], out.Data[i*nt.actionSpace:(i+1)*nt.actionSpace])
	}
	vals := nt.critic.Forward(nt.batchX)
	for i := range obs {
		values[i] = vals.Data[i]
	}
}

// AllParams lists every parameter exactly once (GCN, actor, critic), used
// for replica synchronization. The returned list is cached; read-only.
func (nt *Nets) AllParams() []nn.Param { return nt.allParams }

// SyncFrom copies parameter values from src (replica synchronization after
// a global update, §IV-C).
func (nt *Nets) SyncFrom(src *Nets) {
	nn.CopyParams(nt.AllParams(), src.AllParams())
}

// ExportWeights snapshots all trainable parameters for persistence or warm
// starting a later run (Adam moments are not included).
func (nt *Nets) ExportWeights() [][]float64 {
	return nn.ExportWeights(nt.AllParams())
}

// ImportWeights restores a snapshot taken from an identically configured
// network (same problem geometry, action space and Config sizes).
func (nt *Nets) ImportWeights(w [][]float64) error {
	return nn.ImportWeights(nt.AllParams(), w)
}
