package core

import (
	"strings"
	"testing"

	"repro/internal/asil"
	"repro/internal/graph"
)

// planTiny plans the problem and fails the test unless a solution came out.
func planTiny(t *testing.T, prob *Problem, cfg Config) *Report {
	t.Helper()
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if report.Best == nil {
		t.Fatal("no solution found")
	}
	if err := VerifySolution(prob, report.Best); err != nil {
		t.Fatalf("solution failed audit: %v", err)
	}
	return report
}

func TestWarmStartInstantSolveOnSurvivingSeed(t *testing.T) {
	prob := tinyProblem(t)
	base := planTiny(t, prob, tinyConfig())

	// Same problem, warm-started with its own solution: the seed satisfies
	// the goal at init, so planning must return instantly without training.
	cfg := tinyConfig()
	cfg.WarmStart = base.Best
	var seen *WarmStartInfo
	cfg.OnWarmStart = func(info WarmStartInfo) { seen = &info }
	report := planTiny(t, prob, cfg)
	if len(report.Epochs) != 0 {
		t.Fatalf("instant-solve ran %d training epochs", len(report.Epochs))
	}
	if report.Warm == nil || !report.Warm.SeedSolved {
		t.Fatalf("Warm = %+v, want SeedSolved", report.Warm)
	}
	if seen == nil || !seen.SeedSolved {
		t.Fatalf("OnWarmStart got %+v, want SeedSolved", seen)
	}
	if report.Warm.SeededLinks == 0 || report.Warm.SeededSwitches == 0 {
		t.Fatalf("seed inherited nothing: %+v", report.Warm)
	}
	if report.Best.Cost != base.Best.Cost {
		t.Fatalf("instant-solve cost %g, base cost %g", report.Best.Cost, base.Best.Cost)
	}
}

func TestWarmStartPrunesDamagedAllocations(t *testing.T) {
	prob := tinyProblem(t)
	base := planTiny(t, prob, tinyConfig())

	// Damage a candidate link the base plan uses: the warm seed must drop
	// it (and nothing else breaks), not fail construction.
	var used graph.Edge
	found := false
	for _, e := range base.Best.Topology.Edges() {
		used, found = e, true
		break
	}
	if !found {
		t.Fatal("base plan has no links")
	}
	damaged := prob.Connections.Clone()
	damaged.RemoveEdge(used.U, used.V)
	dprob := *prob
	dprob.Connections = damaged
	if err := dprob.Validate(); err != nil {
		t.Skipf("damaged problem no longer valid: %v", err)
	}

	cfg := tinyConfig()
	cfg.WarmStart = base.Best
	pl, err := NewPlanner(&dprob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if report.Warm == nil {
		t.Fatal("no WarmStartInfo on a warm-started run")
	}
	if report.Warm.DroppedLinks == 0 {
		t.Fatalf("damaged link not pruned: %+v", report.Warm)
	}
	if report.Best != nil {
		if err := VerifySolution(&dprob, report.Best); err != nil {
			t.Fatalf("warm solution failed audit: %v", err)
		}
		if report.Best.Topology.HasEdge(used.U, used.V) {
			t.Fatal("warm solution routes over the damaged link")
		}
	}
}

func TestWarmStartRejectsCorruptSeed(t *testing.T) {
	prob := tinyProblem(t)
	base := planTiny(t, prob, tinyConfig())

	corrupt := base.Best.Clone()
	for sw := range corrupt.Assignment.Switches {
		corrupt.Assignment.Switches[sw] = asil.Level(99)
	}
	// Seed validation happens when the environments are built, i.e. at
	// Plan() time — the error must surface there, not poison every reset.
	tryPlan := func(seed *Solution) error {
		cfg := tinyConfig()
		cfg.WarmStart = seed
		pl, err := NewPlanner(prob, cfg)
		if err != nil {
			return err
		}
		_, err = pl.Plan()
		return err
	}
	if err := tryPlan(corrupt); err == nil {
		t.Fatal("corrupt warm seed accepted")
	} else if !strings.Contains(err.Error(), "warm-start") {
		t.Fatalf("error does not name the warm seed: %v", err)
	}
	if err := tryPlan(&Solution{}); err == nil {
		t.Fatal("empty warm seed accepted")
	}
}

func TestWarmStartDeterministic(t *testing.T) {
	prob := tinyProblem(t)
	base := planTiny(t, prob, tinyConfig())

	// Remove a flow (the seed survives and instant-solves); two identical
	// warm runs must produce identical solutions.
	dprob := *prob
	dprob.Flows = prob.Flows[:2]
	if err := dprob.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.WarmStart = base.Best
	a := planTiny(t, &dprob, cfg)
	b := planTiny(t, &dprob, cfg)
	if a.Best.Cost != b.Best.Cost {
		t.Fatalf("warm runs diverged: %g vs %g", a.Best.Cost, b.Best.Cost)
	}
	ea, eb := a.Best.Topology.Edges(), b.Best.Topology.Edges()
	if len(ea) != len(eb) {
		t.Fatal("warm runs built different topologies")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("warm runs built different topologies")
		}
	}
}

// TestWarmVsColdBothCertify is the differential suite: on randomized
// base+delta pairs, the warm-started planner and the from-scratch planner
// must both produce solutions that pass the independent audit — a warm
// start never trades away the guarantee.
func TestWarmVsColdBothCertify(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		prob := tinyProblem(t)
		cfg := tinyConfig()
		cfg.Seed = seed
		cfg.MaxEpoch = 4
		base := planTiny(t, prob, cfg)

		// Randomized delta: drop the (seed mod n)-th flow — every variant
		// keeps the problem solvable and the seed valid.
		drop := int(seed) % len(prob.Flows)
		dprob := *prob
		flows := append(prob.Flows[:0:0], prob.Flows[:drop]...)
		flows = append(flows, prob.Flows[drop+1:]...)
		dprob.Flows = flows
		if err := dprob.Validate(); err != nil {
			t.Fatal(err)
		}

		cold := planTiny(t, &dprob, cfg) // audit inside planTiny

		wcfg := cfg
		wcfg.WarmStart = base.Best
		warm := planTiny(t, &dprob, wcfg)
		if warm.Warm == nil {
			t.Fatalf("seed %d: warm run missing WarmStartInfo", seed)
		}
		// The warm run must not spend more training than cold with the same
		// budget; for these surviving seeds it instant-solves.
		if len(warm.Epochs) > len(cold.Epochs) {
			t.Fatalf("seed %d: warm ran %d epochs, cold %d", seed, len(warm.Epochs), len(cold.Epochs))
		}
	}
}

func TestCheckpointFingerprintSeparatesWarmRuns(t *testing.T) {
	prob := tinyProblem(t)
	base := planTiny(t, prob, tinyConfig())

	fp := func(cfg Config) string {
		pl, err := NewPlanner(prob, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pl.fingerprint()
	}
	cold := fp(tinyConfig())
	wcfg := tinyConfig()
	wcfg.WarmStart = base.Best
	warm := fp(wcfg)
	if cold == warm {
		t.Fatal("cold and warm checkpoints share a fingerprint; a resume could cross seeds")
	}

	// A different seed must fingerprint differently too: flip one selected
	// switch's ASIL (link ASILs re-derive from the endpoint minimum, so the
	// flipped seed still passes the dry-run invariants).
	other := base.Best.Clone()
	for sw, lvl := range other.Assignment.Switches {
		if !lvl.Valid() {
			continue
		}
		if lvl == asil.LevelD {
			other.Assignment.Switches[sw] = asil.LevelC
		} else {
			other.Assignment.Switches[sw] = asil.LevelD
		}
		break
	}
	wcfg2 := tinyConfig()
	wcfg2.WarmStart = other
	if fp(wcfg2) == warm {
		t.Fatal("different warm seeds share a checkpoint fingerprint")
	}
}
