package core

import (
	"testing"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// tinyProblem builds a small solvable planning problem: 4 end stations
// (0-3), 2 optional switches (4, 5), full ES-SW and SW-SW candidate
// connections, 3 unicast flows, R = 1e-6. Dual-homing every ES on two
// ASIL-C switches is a valid solution.
func tinyProblem(t testing.TB) *Problem {
	t.Helper()
	prob := buildTinyProblem()
	if err := prob.Validate(); err != nil {
		t.Fatalf("tiny problem invalid: %v", err)
	}
	return prob
}

// buildTinyProblem constructs the fixture without a testing.T so that
// quick.Check properties can use it.
func buildTinyProblem() *Problem {
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				panic(err)
			}
		}
	}
	if err := g.AddEdge(4, 5, 1); err != nil {
		panic(err)
	}
	net := tsn.DefaultNetwork()
	mkFlow := func(id, src, dst int) tsn.Flow {
		return tsn.Flow{ID: id, Src: src, Dsts: []int{dst}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}
	}
	return &Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{mkFlow(0, 0, 1), mkFlow(1, 2, 3), mkFlow(2, 1, 2)},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
}

// tinyConfig returns a configuration scaled down for fast tests.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.GCNLayers = 1
	cfg.GCNHidden = 8
	cfg.EmbeddingPerNode = 2
	cfg.MLPHidden = []int{16}
	cfg.K = 4
	cfg.MaxEpoch = 2
	cfg.MaxStep = 24
	cfg.TrainPiIters = 4
	cfg.TrainVIters = 4
	cfg.Workers = 1
	cfg.Seed = 11
	return cfg
}
