package core

import (
	"sync"
)

// policyBatcher synchronizes the exploration workers' per-step policy
// evaluations into single batched forward passes on one shared network
// (§IV-C's parallel exploration, restructured around the batched NN hot
// path). Each worker that reaches its next decision point submits its
// observation and blocks; when every *active* worker has submitted, the
// last one to arrive runs one ForwardPolicyValueBatch over the stacked
// observations and wakes the rest.
//
// Membership is dynamic: workers join before their first evaluation and
// depart when they finish their step quota, error out, get cancelled or
// panic (depart runs via defer *inside* the exploration frame, so it
// executes before the planner's panic recovery and a crashing worker can
// never strand the others at the barrier). A departure re-checks the
// barrier, so stragglers still form a (smaller) batch.
//
// Correctness does not depend on batch composition: the batched forward is
// row-wise bit-identical to single-observation forwards, every worker
// samples from its own RNG stream, and the networks only change weights at
// the epoch boundary (after all workers left the barrier). Scheduling
// nondeterminism therefore cannot leak into trajectories — the batched-
// equals-unbatched differential suite asserts exactly that.
type policyBatcher struct {
	nets *Nets

	mu     sync.Mutex
	cond   *sync.Cond
	active int // workers currently participating in the barrier

	obs    []*Obs      // pending observations, one per waiting worker
	logits [][]float64 // caller-owned destination slices, parallel to obs
	values []float64   // batched critic results, parallel to obs
	outs   []*float64  // caller-owned value destinations, parallel to obs
	gen    uint64      // incremented when a batch completes; waiters key on it
}

// newPolicyBatcher builds a batcher evaluating on the given (shared) nets.
func newPolicyBatcher(nets *Nets) *policyBatcher {
	b := &policyBatcher{nets: nets}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// join registers a worker with the barrier.
func (b *policyBatcher) join() {
	b.mu.Lock()
	b.active++
	b.mu.Unlock()
}

// depart removes a worker. If the remaining workers are all waiting, the
// departure completes their batch.
func (b *policyBatcher) depart() {
	b.mu.Lock()
	b.active--
	b.maybeRunLocked()
	b.mu.Unlock()
}

// eval submits one observation and blocks until its batch ran. The policy
// logits are written into logitsDst and the critic value into valueDst;
// both are worker-owned scratch (taking them as destinations rather than
// returning fresh slices keeps the step loop allocation-free). Must be
// called between join and depart.
func (b *policyBatcher) eval(obs *Obs, logitsDst []float64, valueDst *float64) {
	b.mu.Lock()
	b.obs = append(b.obs, obs)
	b.logits = append(b.logits, logitsDst)
	b.outs = append(b.outs, valueDst)
	gen := b.gen
	b.maybeRunLocked()
	for b.gen == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// maybeRunLocked runs the pending batch when every active worker is
// waiting on it. Called with mu held.
func (b *policyBatcher) maybeRunLocked() {
	n := len(b.obs)
	if n == 0 || n < b.active {
		return
	}
	if cap(b.values) < n {
		b.values = make([]float64, n)
	}
	b.values = b.values[:n]
	// The forward runs on the triggering worker's goroutine while the
	// others wait on cond; the lock serializes all access to nets.
	b.nets.ForwardPolicyValueBatch(b.obs, b.logits, b.values)
	for i, out := range b.outs {
		*out = b.values[i]
	}
	b.obs = b.obs[:0]
	b.logits = b.logits[:0]
	b.outs = b.outs[:0]
	b.gen++
	b.cond.Broadcast()
}
