package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestForwardPolicyValueBatchMatchesSingle is the contract the batched
// exploration path stands on: forwarding a batch of distinct observations
// must reproduce, per observation, the exact bits of individual
// ForwardPolicy/ForwardValue calls. The trunk runs per observation inside
// the batched call and the dense heads compute rows independently, so any
// divergence here is a kernel bug, not rounding.
func TestForwardPolicyValueBatchMatchesSingle(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	soag, err := NewSOAG(prob, cfg.K)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(prob, cfg.K)
	nets, err := NewNets(rand.New(rand.NewSource(17)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Distinct observations from states along a greedy rollout.
	env, err := NewEnv(prob, cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	batch := []*Obs{env.Observation()}
	for len(batch) < 5 {
		act := -1
		for i, ok := range env.Mask() {
			if ok {
				act = i
				break
			}
		}
		if act < 0 {
			break
		}
		if _, _, err := env.Step(act); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, env.Observation())
	}
	if len(batch) < 2 {
		t.Fatalf("rollout produced only %d observations", len(batch))
	}

	// Single-call references, copied out of the borrowed scratch.
	wantLogits := make([][]float64, len(batch))
	wantValues := make([]float64, len(batch))
	for i, o := range batch {
		wantLogits[i] = append([]float64(nil), nets.ForwardPolicy(o)...)
		wantValues[i] = nets.ForwardValue(o)
	}

	logits := make([][]float64, len(batch))
	for i := range logits {
		logits[i] = make([]float64, soag.ActionSpaceSize())
	}
	values := make([]float64, len(batch))
	nets.ForwardPolicyValueBatch(batch, logits, values)

	for i := range batch {
		if values[i] != wantValues[i] {
			t.Fatalf("obs %d: batched value %v != single %v (must be bit-identical)", i, values[i], wantValues[i])
		}
		for j := range logits[i] {
			if logits[i][j] != wantLogits[i][j] {
				t.Fatalf("obs %d logit %d: batched %v != single %v (must be bit-identical)", i, j, logits[i][j], wantLogits[i][j])
			}
		}
	}
}

// TestBatchedExplorationMatchesUnbatched is the differential determinism
// suite for the exploration barrier: with per-worker RNG streams and
// bit-identical batched forwards, training with the policy batcher must
// reproduce the unbatched trajectory exactly — same rewards, losses,
// counts and best cost — across seeds and worker counts.
func TestBatchedExplorationMatchesUnbatched(t *testing.T) {
	prob := tinyProblem(t)
	for _, seed := range []int64{1, 23} {
		for _, workers := range []int{1, 2, 4} {
			cfg := tinyConfig()
			cfg.Seed = seed
			cfg.Workers = workers
			unbatched := cfg
			unbatched.UnbatchedExploration = true
			want := planOnce(t, prob, unbatched)
			got := planOnce(t, prob, cfg)
			assertSameTrajectory(t, fmt.Sprintf("seed=%d workers=%d", seed, workers), want, got)
		}
	}
}
