package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestExploreHookRunsEveryWorkerRound checks the fault-injection seam
// fires once per worker per epoch with the right coordinates.
func TestExploreHookRunsEveryWorkerRound(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.Workers = 2
	cfg.MaxEpoch = 3

	var mu sync.Mutex
	seen := map[[2]int]int{} // {epoch, worker} → invocations
	cfg.ExploreHook = func(_ context.Context, epoch, worker int) {
		mu.Lock()
		seen[[2]int{epoch, worker}]++
		mu.Unlock()
	}
	p, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(); err != nil {
		t.Fatal(err)
	}
	for epoch := 1; epoch <= cfg.MaxEpoch; epoch++ {
		for worker := 0; worker < cfg.Workers; worker++ {
			if seen[[2]int{epoch, worker}] == 0 {
				t.Fatalf("hook never ran for epoch %d worker %d: %v", epoch, worker, seen)
			}
		}
	}
}

// TestExploreHookPanicIsQuarantined checks a panicking hook flows through
// the same quarantine path as any worker panic: the epoch survives on the
// other workers and the panic is reported in EpochStats.
func TestExploreHookPanicIsQuarantined(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.Workers = 2
	cfg.MaxEpoch = 2
	// Key the fault on worker 1: the post-quarantine top-up round indexes
	// the surviving workers from 0, so the rebalancing pass (which re-runs
	// the hook on the survivor) must not re-trigger it.
	cfg.ExploreHook = func(_ context.Context, epoch, worker int) {
		if epoch == 1 && worker == 1 {
			panic("injected explore fault")
		}
	}
	p, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Epochs) != cfg.MaxEpoch {
		t.Fatalf("completed %d epochs, want %d", len(report.Epochs), cfg.MaxEpoch)
	}
	if n := len(report.Epochs[0].Panics); n != 1 {
		t.Fatalf("epoch 1 recorded %d panics, want 1: %v", n, report.Epochs[0].Panics)
	}
	if n := len(report.Epochs[1].Panics); n != 0 {
		t.Fatalf("epoch 2 recorded %d panics, want 0", n)
	}
}

// TestExploreHookPanicEveryWorkerFailsTheRun: when the hook takes down
// every worker the planner gives up, mirroring the all-workers-panicked
// contract.
func TestExploreHookPanicEveryWorkerFailsTheRun(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.ExploreHook = func(_ context.Context, _, _ int) {
		panic("injected explore fault")
	}
	p, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(); err == nil {
		t.Fatal("run with every worker panicking reported success")
	}
}

// TestExploreHookHangReleasesOnCancel: a hook that blocks on ctx (the
// fault.KindHang shape) stalls the run until the context is cancelled,
// then the planner returns its interrupted report instead of wedging.
func TestExploreHookHangReleasesOnCancel(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	entered := make(chan struct{}, 1)
	cfg.ExploreHook = func(ctx context.Context, _, _ int) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-ctx.Done()
	}
	p, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		report *Report
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := p.PlanContext(ctx)
		done <- outcome{r, err}
	}()
	select {
	case <-entered:
	case <-time.After(30 * time.Second):
		t.Fatal("hook never entered")
	}
	select {
	case <-done:
		t.Fatal("hung run finished before cancellation")
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case out := <-done:
		if out.err != nil && !errors.Is(out.err, context.Canceled) {
			t.Fatalf("cancelled hung run: %v", out.err)
		}
		if out.err == nil && !out.report.Interrupted {
			t.Fatal("cancelled hung run not marked interrupted")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hung run did not release on cancellation")
	}
}
