package core

import (
	"fmt"

	"repro/internal/rl"
)

// Checkpoint captures the complete resumable state of a training run at an
// epoch boundary: global network weights, Adam moments and (possibly
// watchdog-halved) learning rates, the epoch history, the best solution so
// far, and every worker's RNG and environment state. A run resumed from a
// checkpoint with the same problem, configuration and seed reproduces the
// uninterrupted run's per-epoch statistics exactly. Persist it with
// serialize.SaveCheckpoint / load it with serialize.LoadCheckpoint.
type Checkpoint struct {
	// Fingerprint identifies the problem geometry and the trajectory-
	// relevant configuration; Resume rejects a mismatch.
	Fingerprint string
	// Epoch is the last completed training epoch.
	Epoch int
	// Weights are the global network's parameters (Nets.ExportWeights).
	Weights [][]float64
	// PPO holds both Adam moment sets and the current learning rates.
	PPO rl.PPOState
	// Best is the best solution found so far (nil if none yet).
	Best *Solution
	// Epochs is the per-epoch statistics history up to Epoch.
	Epochs []EpochStats
	// Workers holds one entry per exploration worker, in worker order.
	Workers []WorkerState
}

// WorkerState is one exploration worker's resumable state.
type WorkerState struct {
	// RNG is the worker's action-sampling RNG state at the epoch boundary.
	RNG uint64
	// Env is the worker environment's snapshot.
	Env EnvState
	// Best is the environment's best recorded solution (nil if none).
	Best *Solution
}

// fingerprint digests everything that shapes the training trajectory: the
// problem geometry and every configuration field that influences
// exploration or updates. MaxEpoch is deliberately excluded so a resumed
// run may extend the horizon.
func (p *Planner) fingerprint() string {
	// The warm seed shapes every environment reset, so a checkpoint taken
	// under one seed must not resume a run under another (or none). The
	// field is appended only when warm-starting, keeping checkpoints from
	// cold runs — which predate the field — valid unchanged.
	warm := ""
	if p.cfg.WarmStart != nil {
		if ws, err := buildWarmSeed(p.prob, p.cfg.WarmStart); err == nil {
			warm = "|warm=" + ws.digest()
		} else {
			// Planner construction already validated the seed; an error here
			// still must not silently alias the cold fingerprint.
			warm = "|warm=invalid"
		}
	}
	return fmt.Sprintf(
		"nptsn-ckpt|prob:v=%d,e=%d,f=%d,r=%g,esd=%d,esl=%d,flr=%t|"+
			"cfg:gcn=%d/%d/%d,gat=%t,mlp=%v,k=%d,steps=%d,scale=%g,clip=%g,"+
			"alr=%g,clr=%g,lam=%g,gamma=%g,pi=%d,vi=%d,kl=%g,workers=%d,seed=%d,"+
			"nomask=%t,bonus=%g,perflow=%t,exh=%t,retries=%d",
		p.prob.NumVertices(), p.prob.Connections.NumEdges(), len(p.prob.Flows),
		p.prob.ReliabilityGoal, p.prob.MaxESDegree, int(p.prob.ESLevel), p.prob.FlowLevelRedundancy,
		p.cfg.GCNLayers, p.cfg.GCNHidden, p.cfg.EmbeddingPerNode, p.cfg.UseGAT,
		p.cfg.MLPHidden, p.cfg.K, p.cfg.MaxStep, p.cfg.RewardScale, p.cfg.ClipRatio,
		p.cfg.ActorLR, p.cfg.CriticLR, p.cfg.GAELambda, p.cfg.Discount,
		p.cfg.TrainPiIters, p.cfg.TrainVIters, p.cfg.TargetKL, p.cfg.Workers, p.cfg.Seed,
		p.cfg.DisableSOAGMasking, p.cfg.SolutionBonus, p.cfg.PerFlowEncoding,
		p.cfg.ExhaustivePathGeneration, p.cfg.DivergenceRetries,
	) + warm
}

// capture snapshots the full training state after epoch `epoch` completed.
// Everything mutable is deep-copied so the checkpoint stays valid while
// training continues.
func (p *Planner) capture(epoch int, global *Nets, ppo *rl.PPO, workers []*worker, report *Report) *Checkpoint {
	ck := &Checkpoint{
		Fingerprint: p.fingerprint(),
		Epoch:       epoch,
		Weights:     global.ExportWeights(),
		PPO:         ppo.ExportState(),
		Best:        report.Best.Clone(),
		Epochs:      append([]EpochStats(nil), report.Epochs...),
		Workers:     make([]WorkerState, len(workers)),
	}
	for i, w := range workers {
		ck.Workers[i] = WorkerState{
			RNG:  w.src.State(),
			Env:  w.env.ExportState(),
			Best: w.env.Best().Clone(),
		}
	}
	return ck
}

// restore rebuilds the training state from a checkpoint into the freshly
// constructed global nets, PPO updater and workers.
func (p *Planner) restore(ck *Checkpoint, global *Nets, ppo *rl.PPO, workers []*worker, report *Report) error {
	if got, want := ck.Fingerprint, p.fingerprint(); got != want {
		return fmt.Errorf("planner: checkpoint does not match this problem/configuration:\n  checkpoint %s\n  current    %s", got, want)
	}
	if ck.Epoch <= 0 || ck.Epoch >= p.cfg.MaxEpoch {
		return fmt.Errorf("planner: checkpoint epoch %d outside training horizon (MaxEpoch %d)", ck.Epoch, p.cfg.MaxEpoch)
	}
	if len(ck.Workers) != len(workers) {
		return fmt.Errorf("planner: checkpoint has %d workers, config has %d", len(ck.Workers), len(workers))
	}
	if len(ck.Epochs) != ck.Epoch {
		return fmt.Errorf("planner: checkpoint records %d epoch stats for epoch %d", len(ck.Epochs), ck.Epoch)
	}
	if err := global.ImportWeights(ck.Weights); err != nil {
		return fmt.Errorf("planner: checkpoint weights: %w", err)
	}
	if err := ppo.ImportState(global, ck.PPO); err != nil {
		return fmt.Errorf("planner: checkpoint optimizer state: %w", err)
	}
	for i, w := range workers {
		ws := ck.Workers[i]
		w.src.SetState(ws.RNG)
		if err := w.env.ImportState(ws.Env, ws.Best); err != nil {
			return fmt.Errorf("planner: worker %d: %w", i, err)
		}
		if w.nets != global { // batched workers share the global nets
			w.nets.SyncFrom(global)
		}
	}
	report.Epochs = append([]EpochStats(nil), ck.Epochs...)
	report.Best = ck.Best.Clone()
	return nil
}
