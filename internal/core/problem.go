// Package core implements NPTSN itself: the TSSDN planning problem, the
// survival-oriented action generator (Algorithm 1), the observation
// encoding of §IV-C, the GCN+MLP actor-critic of Fig. 3, the environment
// dynamics, and the planner training loop (Algorithm 2).
package core

import (
	"fmt"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// Problem is a TSSDN network-planning problem instance (§II-C): the inputs
// of NPTSN.
type Problem struct {
	// Connections is Gc: end stations, optional switches and optional links
	// with their cable lengths.
	Connections *graph.Graph
	// Net is the TAS timing configuration (base period B and slots).
	Net tsn.Network
	// Flows is the TT flow specification FS.
	Flows tsn.FlowSet
	// NBF is the stateless recovery mechanism Φ.
	NBF nbf.NBF
	// ReliabilityGoal is R: failures with probability >= R must be
	// survivable.
	ReliabilityGoal float64
	// Library is the component library (Table I).
	Library *asil.Library
	// MaxESDegree bounds end-station ports (2 in the evaluation, the
	// minimum that establishes redundancy).
	MaxESDegree int
	// ESLevel is the ASIL attributed to end stations for the link-ASIL
	// minimum rule (§IV-B); end stations are application-given and default
	// to ASIL-D.
	ESLevel asil.Level
	// FlowLevelRedundancy switches the failure analysis to the §V variant
	// that enumerates failures over all topology nodes (including end
	// stations) instead of switches only. The NBF supplied in NBF must
	// then implement flow-level redundant semantics (report an error only
	// when all redundant flow instances fail).
	FlowLevelRedundancy bool

	endStations []int
	switches    []int
}

// Validate checks the problem instance and caches vertex partitions.
func (p *Problem) Validate() error {
	if p.Connections == nil {
		return fmt.Errorf("problem: nil connection graph")
	}
	if p.NBF == nil {
		return fmt.Errorf("problem: nil NBF")
	}
	if p.Library == nil {
		return fmt.Errorf("problem: nil component library")
	}
	if err := p.Net.Validate(); err != nil {
		return fmt.Errorf("problem: %w", err)
	}
	if err := p.Flows.Validate(p.Net.BasePeriod); err != nil {
		return fmt.Errorf("problem: %w", err)
	}
	if p.ReliabilityGoal <= 0 || p.ReliabilityGoal >= 1 {
		return fmt.Errorf("problem: reliability goal %v must be in (0,1)", p.ReliabilityGoal)
	}
	if p.MaxESDegree <= 0 {
		return fmt.Errorf("problem: max end-station degree must be positive")
	}
	if p.ESLevel == 0 {
		p.ESLevel = asil.LevelD
	}
	if !p.ESLevel.Valid() {
		return fmt.Errorf("problem: invalid end-station ASIL %d", int(p.ESLevel))
	}
	p.endStations = p.Connections.VerticesOfKind(graph.KindEndStation)
	p.switches = p.Connections.VerticesOfKind(graph.KindSwitch)
	if len(p.endStations) < 2 {
		return fmt.Errorf("problem: need at least two end stations, have %d", len(p.endStations))
	}
	for _, f := range p.Flows {
		if p.Connections.Kind(f.Src) != graph.KindEndStation {
			return fmt.Errorf("problem: flow %d source %d is not an end station", f.ID, f.Src)
		}
		for _, d := range f.Dsts {
			if p.Connections.Kind(d) != graph.KindEndStation {
				return fmt.Errorf("problem: flow %d destination %d is not an end station", f.ID, d)
			}
		}
	}
	// Direct ES-ES links cannot appear in a TSSDN; reject them up front.
	for _, e := range p.Connections.Edges() {
		if p.Connections.Kind(e.U) == graph.KindEndStation && p.Connections.Kind(e.V) == graph.KindEndStation {
			return fmt.Errorf("problem: connection graph has direct ES-ES link (%d,%d)", e.U, e.V)
		}
	}
	return nil
}

// EndStations returns the end-station vertex IDs (ascending).
func (p *Problem) EndStations() []int { return p.endStations }

// Switches returns the optional-switch vertex IDs (ascending).
func (p *Problem) Switches() []int { return p.switches }

// NumVertices returns |Vc|.
func (p *Problem) NumVertices() int { return p.Connections.NumVertices() }

// Solution is the output of network planning: the selected topology, the
// ASIL allocation, and the resulting network cost (Eq. 1).
type Solution struct {
	Topology   *graph.Graph
	Assignment *asil.Assignment
	Cost       float64
	// FoundAtEpoch / FoundAtStep locate the discovery for reporting.
	FoundAtEpoch int
	FoundAtStep  int
}

// Clone deep-copies the solution.
func (s *Solution) Clone() *Solution {
	if s == nil {
		return nil
	}
	return &Solution{
		Topology:     s.Topology.Clone(),
		Assignment:   s.Assignment.Clone(),
		Cost:         s.Cost,
		FoundAtEpoch: s.FoundAtEpoch,
		FoundAtStep:  s.FoundAtStep,
	}
}
