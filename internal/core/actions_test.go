package core

import (
	"math/rand"
	"testing"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

func TestSOAGActionSpaceSizeFixed(t *testing.T) {
	prob := tinyProblem(t)
	soag, err := NewSOAG(prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := soag.ActionSpaceSize(); got != 2+4 {
		t.Fatalf("ActionSpaceSize = %d, want 6", got)
	}
	if _, err := NewSOAG(prob, 0); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestSOAGEmptyStateOffersOnlySwitchActions(t *testing.T) {
	prob := tinyProblem(t)
	soag, _ := NewSOAG(prob, 4)
	s := NewTSSDN(prob)
	rng := rand.New(rand.NewSource(1))
	er := []tsn.Pair{{Src: 0, Dst: 1}}
	set := soag.Generate(s, nbf.Failure{}, er, rng)
	if set.Size() != 6 {
		t.Fatalf("Size = %d", set.Size())
	}
	// Both switch slots addable.
	if !set.Mask[0] || !set.Mask[1] {
		t.Fatalf("switch actions masked: %v", set.Mask)
	}
	// No switches added yet, so no path can exist.
	for i := 2; i < 6; i++ {
		if set.Mask[i] {
			t.Fatalf("path action %d selectable with no switches", i)
		}
	}
	if set.AllMasked() {
		t.Fatal("AllMasked wrong")
	}
}

func TestSOAGPathActionsAppearAfterSwitchAdded(t *testing.T) {
	prob := tinyProblem(t)
	soag, _ := NewSOAG(prob, 4)
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	set := soag.Generate(s, nbf.Failure{}, []tsn.Pair{{Src: 0, Dst: 1}}, rng)
	var pathCount int
	for i := 2; i < set.Size(); i++ {
		if set.Mask[i] {
			pathCount++
			p := set.Actions[i].Path
			if p.Source() != 0 || p.Dest() != 1 {
				t.Fatalf("path endpoints wrong: %v", p)
			}
			if p.Contains(5) {
				t.Fatalf("path %v traverses unadded switch 5", p)
			}
		}
	}
	// Only one loopless path exists: 0-4-1.
	if pathCount != 1 {
		t.Fatalf("pathCount = %d, want 1", pathCount)
	}
}

func TestSOAGAvoidsFailedNodes(t *testing.T) {
	prob := tinyProblem(t)
	soag, _ := NewSOAG(prob, 4)
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	if err := s.UpgradeSwitch(5); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	set := soag.Generate(s, nbf.Failure{Nodes: []int{4}}, []tsn.Pair{{Src: 0, Dst: 1}}, rng)
	for i := 2; i < set.Size(); i++ {
		if set.Mask[i] && set.Actions[i].Path.Contains(4) {
			t.Fatalf("path %v traverses the failed switch", set.Actions[i].Path)
		}
	}
}

func TestSOAGAvoidsFailedEdges(t *testing.T) {
	prob := tinyProblem(t)
	soag, _ := NewSOAG(prob, 4)
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	gf := nbf.Failure{Edges: []graph.Edge{{U: 0, V: 4}}}
	set := soag.Generate(s, gf, []tsn.Pair{{Src: 0, Dst: 1}}, rng)
	for i := 2; i < set.Size(); i++ {
		if !set.Mask[i] {
			continue
		}
		p := set.Actions[i].Path
		for j := 0; j+1 < len(p); j++ {
			if (p[j] == 0 && p[j+1] == 4) || (p[j] == 4 && p[j+1] == 0) {
				t.Fatalf("path %v uses the failed edge", p)
			}
		}
	}
}

func TestSOAGMasksSwitchAtASILD(t *testing.T) {
	prob := tinyProblem(t)
	soag, _ := NewSOAG(prob, 4)
	s := NewTSSDN(prob)
	for i := 0; i < 4; i++ {
		if err := s.UpgradeSwitch(4); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	set := soag.Generate(s, nbf.Failure{}, nil, rng)
	if set.Mask[0] {
		t.Fatal("ASIL-D switch still upgradable")
	}
	if !set.Mask[1] {
		t.Fatal("fresh switch should be addable")
	}
}

func TestSOAGDegreeMaskPrunesViolatingPaths(t *testing.T) {
	prob := tinyProblem(t)
	prob.MaxESDegree = 1
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	soag, _ := NewSOAG(prob, 4)
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	if err := s.UpgradeSwitch(5); err != nil {
		t.Fatal(err)
	}
	// ES 0 already uses its single port on switch 4.
	if err := s.AddPath(graph.Path{0, 4, 1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	set := soag.Generate(s, nbf.Failure{Nodes: []int{4}}, []tsn.Pair{{Src: 0, Dst: 1}}, rng)
	for i := 2; i < set.Size(); i++ {
		if set.Mask[i] {
			t.Fatalf("degree-violating path %v left selectable", set.Actions[i].Path)
		}
	}

	// Ablation: with masking disabled the paths stay selectable.
	soag.DisableDegreeMask = true
	set = soag.Generate(s, nbf.Failure{Nodes: []int{4}}, []tsn.Pair{{Src: 0, Dst: 1}}, rand.New(rand.NewSource(1)))
	var selectable int
	for i := 2; i < set.Size(); i++ {
		if set.Mask[i] {
			selectable++
		}
	}
	if selectable == 0 {
		t.Fatal("ablation should leave violating paths selectable")
	}
}

func TestSOAGDeterministicGivenSeed(t *testing.T) {
	prob := tinyProblem(t)
	soag, _ := NewSOAG(prob, 4)
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	er := []tsn.Pair{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}
	a := soag.Generate(s, nbf.Failure{}, er, rand.New(rand.NewSource(9)))
	b := soag.Generate(s, nbf.Failure{}, er, rand.New(rand.NewSource(9)))
	for i := range a.Actions {
		if a.Mask[i] != b.Mask[i] {
			t.Fatal("masks differ across identical seeds")
		}
		if a.Actions[i].Kind == ActionPathAdd && !a.Actions[i].Path.Equal(b.Actions[i].Path) {
			t.Fatal("paths differ across identical seeds")
		}
	}
}

func TestActionString(t *testing.T) {
	if (Action{Kind: ActionSwitchUpgrade, Switch: 4}).String() != "upgrade(sw 4)" {
		t.Fatal("upgrade render wrong")
	}
	if (Action{Kind: ActionPathAdd, Path: graph.Path{0, 1}}).String() == "" {
		t.Fatal("path render empty")
	}
	if (Action{}).String() != "invalid" {
		t.Fatal("zero action should render invalid")
	}
}

var _ = asil.LevelA
