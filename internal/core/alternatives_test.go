package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nbf"
	"repro/internal/nn"
	"repro/internal/tsn"
)

func TestPerFlowEncodingAlternative(t *testing.T) {
	prob := tinyProblem(t)
	enc := NewEncoderWithOptions(prob, 4, true)
	// F = 1 + |Vc| + |FS| + K = 1 + 6 + 3 + 4.
	if got := enc.FeatureDim(); got != 14 {
		t.Fatalf("FeatureDim = %d, want 14", got)
	}
	s := NewTSSDN(prob)
	obs := enc.Encode(s, nil)
	// Flow 0 is 0->1: column base+0 marks source 1, destination 2.
	base := 1 + 6
	if obs.Feat.At(0, base) != 1 {
		t.Fatal("per-flow source mark missing")
	}
	if obs.Feat.At(1, base) != 2 {
		t.Fatal("per-flow destination mark missing")
	}
	if obs.Feat.At(4, base) != 0 {
		t.Fatal("switch row must be zero in flow columns")
	}
}

func TestPerFlowEncodingPlannerSmoke(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.PerFlowEncoding = true
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(); err != nil {
		t.Fatal(err)
	}
}

func TestSolutionBonusAddsToReward(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.SolutionBonus = 2.5
	envBonus, err := NewEnv(prob, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfgPlain := tinyConfig()
	envPlain, err := NewEnv(prob, cfgPlain, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Drive both environments with the identical greedy policy until a
	// solution; the final rewards must differ by exactly the bonus.
	drive := func(env *Env) float64 {
		upgrades := map[int]int{}
		for step := 0; step < 200; step++ {
			set := env.Actions()
			choice := -1
			for i := 0; i < 2; i++ {
				if set.Mask[i] && upgrades[i] < 3 {
					choice = i
					break
				}
			}
			if choice == -1 {
				for i := 2; i < set.Size(); i++ {
					if set.Mask[i] {
						choice = i
						break
					}
				}
			}
			if choice == -1 {
				for i := 0; i < set.Size(); i++ {
					if set.Mask[i] {
						choice = i
						break
					}
				}
			}
			if choice < 2 {
				upgrades[choice]++
			}
			r, outcome, err := env.Step(choice)
			if err != nil {
				t.Fatal(err)
			}
			if outcome == OutcomeSolved {
				return r
			}
			if outcome == OutcomeDeadEnd {
				upgrades = map[int]int{}
			}
		}
		t.Fatal("no solution reached")
		return 0
	}
	rBonus := drive(envBonus)
	rPlain := drive(envPlain)
	if math.Abs((rBonus-rPlain)-2.5) > 1e-12 {
		t.Fatalf("bonus delta = %v, want 2.5", rBonus-rPlain)
	}
}

func TestGATTrunkForwardBackward(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.UseGAT = true
	soag, _ := NewSOAG(prob, cfg.K)
	enc := NewEncoder(prob, cfg.K)
	nets, err := NewNets(rand.New(rand.NewSource(4)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	set := soag.Generate(s, nbf.Failure{}, []tsn.Pair{{Src: 0, Dst: 1}}, rand.New(rand.NewSource(1)))
	obs := enc.Encode(s, set)
	logits := nets.ForwardPolicy(obs)
	if len(logits) != soag.ActionSpaceSize() {
		t.Fatalf("logits len %d", len(logits))
	}
	// Gradient spot check against finite differences through GAT + MLP.
	const target = 2
	loss := func() float64 { return nets.ForwardPolicy(obs)[target] }
	ps := nets.PolicyParams()
	nn.ZeroGrads(ps)
	l := nets.ForwardPolicy(obs)
	dLogits := make([]float64, len(l))
	dLogits[target] = 1
	nets.BackwardPolicy(dLogits)
	const eps = 1e-6
	for pi, p := range ps {
		for j := 0; j < len(p.Value.Data); j += 13 {
			orig := p.Value.Data[j]
			p.Value.Data[j] = orig + eps
			up := loss()
			p.Value.Data[j] = orig - eps
			down := loss()
			p.Value.Data[j] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(p.Grad.Data[j]-numeric) > 1e-4*math.Max(1, math.Abs(numeric)) {
				t.Fatalf("GAT param %d (%s) elem %d: analytic %v numeric %v", pi, p.Name, j, p.Grad.Data[j], numeric)
			}
		}
	}
}

func TestGATPlannerSmoke(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.UseGAT = true
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Epochs) != cfg.MaxEpoch {
		t.Fatalf("epochs = %d", len(report.Epochs))
	}
}

func TestFlowLevelRedundancyProblemWiring(t *testing.T) {
	prob := tinyProblem(t)
	prob.FlowLevelRedundancy = true
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(prob, tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// With flow-level redundancy and an ASIL-D ES level at R = 1e-6, ES
	// failures are safe faults, so the environment still starts normally.
	if env.Solved() {
		t.Fatal("unsolved problem reported solved")
	}
	// A stricter goal makes end-station failures non-safe; a dual-homed
	// topology can then never satisfy the analyzer (single ES failures
	// kill their own flows), so even the greedy driver must keep failing.
	strict := tinyProblem(t)
	strict.FlowLevelRedundancy = true
	strict.ReliabilityGoal = 9e-7
	s := NewTSSDN(strict)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // ASIL-D
		if err := s.UpgradeSwitch(4); err != nil {
			t.Fatal(err)
		}
	}
	for es := 0; es < 4; es++ {
		if err := s.AddPath([]int{es, 4}); err != nil {
			t.Fatal(err)
		}
	}
	sol := &Solution{Topology: s.Topo, Assignment: s.Assign}
	if err := VerifySolution(strict, sol); err == nil {
		t.Fatal("flow-level mode must reject networks with ES single points of failure")
	}
}

func TestExhaustiveValidPathsAlternative(t *testing.T) {
	prob := tinyProblem(t)
	prob.MaxESDegree = 1
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	soag, err := NewSOAG(prob, 4)
	if err != nil {
		t.Fatal(err)
	}
	soag.ExhaustiveValidPaths = true
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	if err := s.UpgradeSwitch(5); err != nil {
		t.Fatal(err)
	}
	// ES 0's single port is used; exhaustive mode must return only valid
	// (degree-respecting) paths with masks all one — here none exist for
	// the pair (0,1) via new ES-0 ports except reusing 0-4.
	if err := s.AddPath([]int{0, 4, 1}); err != nil {
		t.Fatal(err)
	}
	set := soag.Generate(s, nbf.Failure{}, []tsn.Pair{{Src: 0, Dst: 1}}, rand.New(rand.NewSource(1)))
	for i := 2; i < set.Size(); i++ {
		if !set.Mask[i] {
			continue
		}
		if !soag.pathRespectsDegrees(s, set.Actions[i].Path) {
			t.Fatalf("exhaustive mode emitted an invalid path %v", set.Actions[i].Path)
		}
	}
	// Planner smoke with the alternative enabled.
	cfg := tinyConfig()
	cfg.ExhaustivePathGeneration = true
	pl, err := NewPlanner(tinyProblem(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightCheckpointRoundTrip(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	soag, _ := NewSOAG(prob, cfg.K)
	enc := NewEncoder(prob, cfg.K)
	a, err := NewNets(rand.New(rand.NewSource(1)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNets(rand.New(rand.NewSource(2)), enc, soag.ActionSpaceSize(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	weights := a.ExportWeights()
	if err := b.ImportWeights(weights); err != nil {
		t.Fatal(err)
	}
	obs := enc.Encode(NewTSSDN(prob), nil)
	// Copy a's logits: ForwardPolicy returns a borrowed scratch slice and
	// the snapshot-independence check below forwards through a again.
	la, lb := append([]float64(nil), a.ForwardPolicy(obs)...), b.ForwardPolicy(obs)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("imported weights do not reproduce logits")
		}
	}
	// Snapshot independence: mutating the snapshot must not affect a.
	weights[0][0] += 1
	la2 := a.ForwardPolicy(obs)
	for i := range la {
		if la[i] != la2[i] {
			t.Fatal("ExportWeights aliased network storage")
		}
	}
	// Shape mismatch rejected.
	if err := b.ImportWeights(weights[:1]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	bad := a.ExportWeights()
	bad[0] = bad[0][:1]
	if err := b.ImportWeights(bad); err == nil {
		t.Fatal("mis-sized tensor accepted")
	}
}

func TestPlannerWarmStart(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalWeights == nil {
		t.Fatal("report missing final weights")
	}
	warm := cfg
	warm.InitialWeights = r1.FinalWeights
	pl2, err := NewPlanner(prob, warm)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pl2.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Epochs) != cfg.MaxEpoch {
		t.Fatal("warm-started run did not train")
	}
	// A mismatched snapshot must be rejected.
	bad := cfg
	bad.InitialWeights = [][]float64{{1, 2, 3}}
	pl3, err := NewPlanner(prob, bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl3.Plan(); err == nil {
		t.Fatal("mismatched warm start accepted")
	}
}
