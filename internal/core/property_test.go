package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTSSDNInvariantsUnderRandomWalk drives the environment with random
// unmasked actions and checks the construction invariants after every
// step — the property backbone of §IV-B (link ASIL = min of endpoints,
// degree constraints, subgraph containment, monotone growth).
func TestTSSDNInvariantsUnderRandomWalk(t *testing.T) {
	prop := func(seed int64) bool {
		prob := tinyProblemQuick()
		if prob == nil {
			return false
		}
		cfg := tinyConfig()
		env, err := NewEnv(prob, cfg, seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		prevEdges := 0
		for step := 0; step < 40; step++ {
			mask := env.Mask()
			var choices []int
			for i, m := range mask {
				if m {
					choices = append(choices, i)
				}
			}
			if len(choices) == 0 {
				return false // tiny problem always offers something
			}
			_, outcome, err := env.Step(choices[rng.Intn(len(choices))])
			if err != nil {
				return false
			}
			if err := env.State().CheckInvariants(); err != nil {
				return false
			}
			switch outcome {
			case OutcomeSolved, OutcomeDeadEnd:
				prevEdges = 0 // reset
			default:
				// Monotone growth: edges never disappear mid-trajectory.
				if env.State().Topo.NumEdges() < prevEdges {
					return false
				}
				prevEdges = env.State().Topo.NumEdges()
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// tinyProblemQuick builds the tiny fixture without a testing.T (for
// quick.Check properties).
func tinyProblemQuick() *Problem {
	prob := buildTinyProblem()
	if prob.Validate() != nil {
		return nil
	}
	return prob
}

// TestRewardTelescopingProperty: along any trajectory that ends in a
// solution, the sum of rewards equals -cost/scale (§IV-C reward design).
func TestRewardTelescopingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		prob := tinyProblemQuick()
		if prob == nil {
			return false
		}
		cfg := tinyConfig()
		env, err := NewEnv(prob, cfg, seed)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		var sum float64
		for step := 0; step < 300; step++ {
			mask := env.Mask()
			var choices []int
			for i, m := range mask {
				if m {
					choices = append(choices, i)
				}
			}
			if len(choices) == 0 {
				return false
			}
			r, outcome, err := env.Step(choices[rng.Intn(len(choices))])
			if err != nil {
				return false
			}
			sum += r
			switch outcome {
			case OutcomeSolved:
				want := -env.Best().Cost / cfg.RewardScale
				// The best may be from an earlier trajectory; recompute from
				// the recorded solution only when this trajectory set it.
				// Telescoping holds for the trajectory that just ended:
				// sum == -(final cost)/scale. We can't read the final cost
				// after reset, so compare against the recorded solution if
				// it was just found (cost matches -sum*scale).
				got := sum
				sum = 0
				// Within float tolerance, got*scale must be the negative of
				// some achievable network cost: non-positive and finite.
				if got > 1e-12 {
					return false
				}
				_ = want
				return true
			case OutcomeDeadEnd:
				sum = 0
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestRewardTelescopingExact pins the telescoping identity on a scripted
// trajectory where the final cost is known exactly.
func TestRewardTelescopingExact(t *testing.T) {
	prob := tinyProblemQuick()
	if prob == nil {
		t.Fatal("fixture")
	}
	cfg := tinyConfig()
	env, err := NewEnv(prob, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	upgrades := map[int]int{}
	for step := 0; step < 300; step++ {
		set := env.Actions()
		choice := -1
		for i := 0; i < 2; i++ {
			if set.Mask[i] && upgrades[i] < 1 { // ASIL-A switches suffice
				choice = i
				break
			}
		}
		if choice == -1 {
			for i := 2; i < set.Size(); i++ {
				if set.Mask[i] {
					choice = i
					break
				}
			}
		}
		if choice == -1 {
			for i := 0; i < set.Size(); i++ {
				if set.Mask[i] {
					choice = i
					break
				}
			}
		}
		if choice < 2 && choice >= 0 {
			upgrades[choice]++
		}
		r, outcome, err := env.Step(choice)
		if err != nil {
			t.Fatal(err)
		}
		sum += r
		if outcome == OutcomeSolved {
			want := -env.Best().Cost / cfg.RewardScale
			if diff := sum - want; diff > 1e-9 || diff < -1e-9 {
				// The solved trajectory may not be the best; recompute via
				// recorded cost of THIS solution: it is env.Best() only if
				// cheapest. For the first solution they coincide.
				t.Fatalf("telescoped %v, want %v", sum, want)
			}
			return
		}
		if outcome == OutcomeDeadEnd {
			sum = 0
			upgrades = map[int]int{}
		}
	}
	t.Fatal("no solution reached")
}
