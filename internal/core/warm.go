package core

import (
	"fmt"
	"sort"

	"repro/internal/asil"
	"repro/internal/failure"
	"repro/internal/graph"
)

// WarmStartInfo reports what a warm-started run actually inherited from
// the prior plan after pruning it against the (possibly delta-modified)
// problem. It is handed to Config.OnWarmStart once per planning run and
// recorded by the service on the job's status.
type WarmStartInfo struct {
	// SeededLinks / SeededSwitches count what survived pruning and seeds
	// every environment reset.
	SeededLinks    int `json:"seededLinks"`
	SeededSwitches int `json:"seededSwitches"`
	// DroppedLinks / DroppedSwitches count prior-plan allocations the new
	// problem no longer admits (damaged links, links incident to them).
	DroppedLinks    int `json:"droppedLinks,omitempty"`
	DroppedSwitches int `json:"droppedSwitches,omitempty"`
	// SeedCost is the Eq. 1 cost of the pruned seed topology.
	SeedCost float64 `json:"seedCost"`
	// SeedSolved reports whether the seed already satisfied the reliability
	// guarantee at initialization — the instant-solve fast path.
	SeedSolved bool `json:"seedSolved,omitempty"`
}

// warmSeed is the pruned, validated form of Config.WarmStart that every
// environment reset replays: switch upgrades first, then links with their
// ASILs re-derived from the endpoint-minimum invariant. Building it once
// per environment keeps resets cheap and deterministic.
type warmSeed struct {
	switches []warmSwitch
	edges    []graph.Edge
	cost     float64
	info     WarmStartInfo
}

type warmSwitch struct {
	id  int
	lvl asil.Level
}

// buildWarmSeed prunes a prior solution against prob: allocations the new
// connection graph no longer admits (a vertex that is not a switch any
// more, a damaged candidate link, a link whose switch was dropped) are
// discarded rather than failed on — incremental re-planning refines the
// surviving part of the old plan. The pruned seed is then applied to a
// scratch TSSDN and checked against the construction invariants, so a
// structurally impossible seed (which would poison every reset) surfaces
// here, at planner construction, with a clear error.
func buildWarmSeed(prob *Problem, sol *Solution) (*warmSeed, error) {
	if sol == nil || sol.Topology == nil || sol.Assignment == nil {
		return nil, fmt.Errorf("planner: warm-start solution is missing its topology or assignment")
	}
	ws := &warmSeed{}
	n := prob.Connections.NumVertices()
	keepSwitch := make(map[int]bool)
	for sw, lvl := range sol.Assignment.Switches {
		if sw < 0 || sw >= n || prob.Connections.Kind(sw) != graph.KindSwitch {
			ws.info.DroppedSwitches++
			continue
		}
		if !lvl.Valid() {
			return nil, fmt.Errorf("planner: warm-start switch %d has invalid ASIL %d", sw, int(lvl))
		}
		keepSwitch[sw] = true
		ws.switches = append(ws.switches, warmSwitch{id: sw, lvl: lvl})
	}
	sort.Slice(ws.switches, func(i, k int) bool { return ws.switches[i].id < ws.switches[k].id })
	for _, ed := range sol.Topology.Edges() {
		if ed.U >= n || ed.V >= n || !prob.Connections.HasEdge(ed.U, ed.V) {
			ws.info.DroppedLinks++
			continue
		}
		if (prob.Connections.Kind(ed.U) == graph.KindSwitch && !keepSwitch[ed.U]) ||
			(prob.Connections.Kind(ed.V) == graph.KindSwitch && !keepSwitch[ed.V]) {
			// The link's switch did not survive pruning; a link to an
			// un-upgraded switch would violate the construction invariant.
			ws.info.DroppedLinks++
			continue
		}
		length := ed.Length
		if l, ok := prob.Connections.EdgeLength(ed.U, ed.V); ok {
			length = l // the candidate graph owns cable lengths
		}
		ws.edges = append(ws.edges, graph.Edge{U: ed.U, V: ed.V, Length: length})
	}
	ws.info.SeededSwitches = len(ws.switches)
	ws.info.SeededLinks = len(ws.edges)

	// Dry-run the seed on a scratch state: invariant violations and cost
	// errors fail planner construction instead of every reset.
	st := NewTSSDN(prob)
	ws.apply(st)
	if err := st.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("planner: warm-start seed: %w", err)
	}
	cost, err := st.Cost()
	if err != nil {
		return nil, fmt.Errorf("planner: warm-start seed: %w", err)
	}
	ws.cost = cost
	ws.info.SeedCost = cost
	return ws, nil
}

// apply replays the seed onto a freshly Reset state. Switches first, then
// links with ASILs re-derived from the endpoint minimum — the same order
// ImportState uses, so the resulting state is exactly what restoring a
// checkpoint of it would produce.
func (ws *warmSeed) apply(st *TSSDN) {
	for _, sw := range ws.switches {
		st.Assign.Switches[sw.id] = sw.lvl
	}
	for _, ed := range ws.edges {
		// The seed was validated at build time; AddEdge on the pruned edge
		// set cannot fail (same vertex set, no duplicates).
		_ = st.Topo.AddEdge(ed.U, ed.V, ed.Length)
		st.Assign.SetLink(ed.U, ed.V, asil.Min(st.vertexLevel(ed.U), st.vertexLevel(ed.V)))
	}
}

// digest folds the seed into a short stable hash for the checkpoint
// fingerprint: a checkpoint captured under one warm seed must not resume a
// run under another (or none), because the seed shapes every reset.
func (ws *warmSeed) digest() string {
	d := failure.NewDigest()
	d.Str("nptsn-warm-seed-v1")
	for _, sw := range ws.switches {
		d.Int(sw.id)
		d.Int(int(sw.lvl))
	}
	for _, ed := range ws.edges {
		d.Int(ed.U)
		d.Int(ed.V)
		d.Float(ed.Length)
	}
	d.Float(ws.cost)
	return d.Sum()
}
