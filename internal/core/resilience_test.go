package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/asil"
)

// stripDurations zeroes the wall-clock and cache-warmth fields so epoch
// stats can be compared across runs (a resumed run starts with a cold
// verdict cache, so hit/miss counts legitimately differ).
func stripDurations(es []EpochStats) []EpochStats {
	out := append([]EpochStats(nil), es...)
	for i := range out {
		out[i].Duration = 0
		out[i].AnalysisTime = 0
		out[i].AnalysisCacheHits = 0
		out[i].AnalysisCacheMisses = 0
		// NBF-call counts depend on the analyzer configuration (the
		// verdict cache elides recovery simulations), not the trajectory.
		out[i].NBFCalls = 0
	}
	return out
}

// resilienceConfig is a tiny two-worker training budget for the
// checkpoint/fault tests.
func resilienceConfig() Config {
	cfg := tinyConfig()
	cfg.Workers = 2
	cfg.MaxStep = 24
	cfg.MaxEpoch = 6
	cfg.Seed = 17
	return cfg
}

// TestCheckpointResumeReproducesRun is the core determinism guarantee: a
// run interrupted after 3 epochs and resumed from its checkpoint must
// reproduce the uninterrupted run's epochs 4-6 (and final weights) exactly.
func TestCheckpointResumeReproducesRun(t *testing.T) {
	prob := tinyProblem(t)

	// Uninterrupted reference run: 6 epochs.
	plA, err := NewPlanner(prob, resilienceConfig())
	if err != nil {
		t.Fatal(err)
	}
	repA, err := plA.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(repA.Epochs) != 6 {
		t.Fatalf("reference run has %d epochs, want 6", len(repA.Epochs))
	}

	// Interrupted run: stop after epoch 3, capturing a checkpoint.
	cfgB := resilienceConfig()
	cfgB.MaxEpoch = 3
	var ck *Checkpoint
	cfgB.CheckpointEvery = 1
	cfgB.CheckpointFunc = func(c *Checkpoint) error { ck = c; return nil }
	plB, err := NewPlanner(prob, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := plB.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Epoch != 3 {
		t.Fatalf("expected a checkpoint at epoch 3, got %+v", ck)
	}
	// The first half must already match the reference run.
	if !reflect.DeepEqual(stripDurations(repB.Epochs), stripDurations(repA.Epochs[:3])) {
		t.Fatalf("interrupted run diverged from reference:\n%+v\nvs\n%+v", repB.Epochs, repA.Epochs[:3])
	}

	// Resumed run: epochs 4-6 from the checkpoint.
	cfgC := resilienceConfig()
	cfgC.Resume = ck
	plC, err := NewPlanner(prob, cfgC)
	if err != nil {
		t.Fatal(err)
	}
	repC, err := plC.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripDurations(repC.Epochs), stripDurations(repA.Epochs)) {
		t.Fatalf("resumed run diverged from reference:\n%+v\nvs\n%+v", repC.Epochs, repA.Epochs)
	}
	if !reflect.DeepEqual(repC.FinalWeights, repA.FinalWeights) {
		t.Fatal("resumed run's final weights differ from the reference run")
	}
	if (repA.Best == nil) != (repC.Best == nil) {
		t.Fatal("solution presence differs between reference and resumed run")
	}
	if repA.Best != nil && repA.Best.Cost != repC.Best.Cost {
		t.Fatalf("best cost %v (resumed) vs %v (reference)", repC.Best.Cost, repA.Best.Cost)
	}
}

func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	prob := tinyProblem(t)
	cfg := resilienceConfig()
	cfg.MaxEpoch = 2
	var ck *Checkpoint
	cfg.CheckpointEvery = 1
	cfg.CheckpointFunc = func(c *Checkpoint) error { ck = c; return nil }
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(); err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("no checkpoint captured")
	}

	// Different seed ⇒ different trajectory ⇒ fingerprint mismatch.
	bad := resilienceConfig()
	bad.Seed = 99
	bad.Resume = ck
	pl2, err := NewPlanner(prob, bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl2.Plan(); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatched fingerprint accepted: %v", err)
	}

	// A checkpoint at or past the horizon has nothing left to train.
	short := resilienceConfig()
	short.MaxEpoch = ck.Epoch
	short.Resume = ck
	pl3, err := NewPlanner(prob, short)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl3.Plan(); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("checkpoint at the horizon accepted: %v", err)
	}
}

func TestWorkerPanicIsolation(t *testing.T) {
	prob := tinyProblem(t)
	cfg := resilienceConfig()
	cfg.MaxEpoch = 3
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl.hooks.explorePanic = func(epoch, worker int) {
		if epoch == 1 && worker == 1 {
			panic("injected fault")
		}
	}
	rep, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 3 {
		t.Fatalf("run did not complete: %d epochs", len(rep.Epochs))
	}
	e1 := rep.Epochs[0]
	if len(e1.Panics) != 1 || !strings.Contains(e1.Panics[0], "injected fault") {
		t.Fatalf("epoch 1 panics = %v, want the injected fault", e1.Panics)
	}
	// The survivor re-collected the quarantined worker's quota, so the epoch
	// still trained on a full batch.
	if e1.Trajectories == 0 {
		t.Fatal("no trajectories survived the panic epoch")
	}
	for _, e := range rep.Epochs[1:] {
		if len(e.Panics) != 0 {
			t.Fatalf("epoch %d has stale panics: %v", e.Epoch, e.Panics)
		}
		if e.Trajectories == 0 {
			t.Fatalf("epoch %d collected no data after re-arming", e.Epoch)
		}
	}
}

func TestAllWorkersPanicFailsRun(t *testing.T) {
	prob := tinyProblem(t)
	cfg := resilienceConfig()
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl.hooks.explorePanic = func(epoch, worker int) { panic(fmt.Sprintf("fault %d", worker)) }
	if _, err := pl.Plan(); err == nil || !strings.Contains(err.Error(), "all 2 workers panicked") {
		t.Fatalf("all-panicked run did not fail usefully: %v", err)
	}
}

func TestPlanCancellationCheckpointsAndReturns(t *testing.T) {
	prob := tinyProblem(t)
	cfg := resilienceConfig()
	var written []*Checkpoint
	cfg.CheckpointEvery = 5 // periodic schedule never fires in 2 epochs
	cfg.CheckpointFunc = func(c *Checkpoint) error { written = append(written, c); return nil }
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pl.hooks.afterEpoch = func(epoch int) {
		if epoch == 2 {
			cancel()
		}
	}
	rep, err := pl.PlanContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if len(rep.Epochs) != 2 {
		t.Fatalf("cancelled run kept %d epochs, want the 2 completed ones", len(rep.Epochs))
	}
	// The shutdown path must persist the last completed epoch even though
	// the periodic schedule never fired.
	if len(written) != 1 || written[0].Epoch != 2 {
		t.Fatalf("shutdown checkpoint = %+v, want exactly one at epoch 2", written)
	}
}

func TestPreCancelledContextReturnsImmediately(t *testing.T) {
	prob := tinyProblem(t)
	pl, err := NewPlanner(prob, resilienceConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := pl.PlanContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted || len(rep.Epochs) != 0 {
		t.Fatalf("pre-cancelled run trained anyway: %+v", rep)
	}
}

func TestConfigValidateResilienceKnobs(t *testing.T) {
	base := resilienceConfig()
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"workers exceed steps", func(c *Config) { c.Workers = c.MaxStep + 1 }},
		{"negative divergence retries", func(c *Config) { c.DivergenceRetries = -1 }},
		{"negative checkpoint interval", func(c *Config) { c.CheckpointEvery = -1 }},
		{"checkpoint func without interval", func(c *Config) {
			c.CheckpointEvery = 0
			c.CheckpointFunc = func(*Checkpoint) error { return nil }
		}},
		{"resume with warm start", func(c *Config) {
			c.Resume = &Checkpoint{}
			c.InitialWeights = [][]float64{{1}}
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
}

// TestEnvStateRoundTrip snapshots a mid-construction environment, imports
// it into a fresh one and checks both step identically afterwards.
func TestEnvStateRoundTrip(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	env, err := NewEnv(prob, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Take a few random valid actions to leave the empty start state.
	for i := 0; i < 3; i++ {
		mask := env.Mask()
		act := -1
		for a, ok := range mask {
			if ok {
				act = a
				break
			}
		}
		if act == -1 {
			break
		}
		if _, _, err := env.Step(act); err != nil {
			t.Fatal(err)
		}
	}
	st := env.ExportState()

	clone, err := NewEnv(prob, cfg, 999) // different seed: state import overrides it
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.ImportState(st, env.Best()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clone.ExportState(), st) {
		t.Fatalf("state round-trip mismatch:\n%+v\nvs\n%+v", clone.ExportState(), st)
	}
	// Both must now expose identical masks and evolve identically.
	if !reflect.DeepEqual(env.Mask(), clone.Mask()) {
		t.Fatal("masks differ after state import")
	}
	mask := env.Mask()
	for a, ok := range mask {
		if !ok {
			continue
		}
		r1, o1, err1 := env.Step(a)
		r2, o2, err2 := clone.Step(a)
		if r1 != r2 || o1 != o2 || (err1 == nil) != (err2 == nil) {
			t.Fatalf("step diverged after import: (%v,%v,%v) vs (%v,%v,%v)", r1, o1, err1, r2, o2, err2)
		}
		break
	}
}

func TestEnvImportStateRejectsGarbage(t *testing.T) {
	prob := tinyProblem(t)
	env, err := NewEnv(prob, tinyConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	st := env.ExportState()
	st.Switches = map[int]asil.Level{0: asil.LevelA} // vertex 0 is an end station
	if err := env.ImportState(st, nil); err == nil {
		t.Fatal("end station accepted as a switch")
	}
}
