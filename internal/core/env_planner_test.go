package core

import (
	"testing"

	"repro/internal/asil"
	"repro/internal/tsn"
)

// greedySolve drives the environment with a deterministic hand policy:
// first bring both switches to ASIL-C, then always take the first
// selectable path action (falling back to a switch upgrade). It must reach
// a valid solution on the tiny problem.
func greedySolve(t *testing.T, env *Env, maxSteps int) *Solution {
	t.Helper()
	upgrades := map[int]int{} // switch slot -> upgrades applied
	for step := 0; step < maxSteps; step++ {
		set := env.Actions()
		choice := -1
		// Prefer upgrading switches below ASIL-C.
		for i := 0; i < 2; i++ {
			if set.Mask[i] && upgrades[i] < 3 {
				choice = i
				break
			}
		}
		if choice == -1 {
			for i := 2; i < set.Size(); i++ {
				if set.Mask[i] {
					choice = i
					break
				}
			}
		}
		if choice == -1 { // nothing else: upgrade any selectable switch
			for i := 0; i < set.Size(); i++ {
				if set.Mask[i] {
					choice = i
					break
				}
			}
		}
		if choice == -1 {
			t.Fatal("no selectable action")
		}
		if choice < 2 {
			upgrades[choice]++
		}
		_, outcome, err := env.Step(choice)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if outcome == OutcomeSolved {
			return env.Best()
		}
		if outcome == OutcomeDeadEnd {
			upgrades = map[int]int{}
		}
	}
	t.Fatalf("no solution within %d steps", maxSteps)
	return nil
}

func TestEnvGreedyConstructionReachesSolution(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	env, err := NewEnv(prob, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol := greedySolve(t, env, 200)
	if sol == nil || sol.Cost <= 0 {
		t.Fatalf("solution = %+v", sol)
	}
	// The solution must actually satisfy the analyzer.
	if err := VerifySolution(prob, sol); err != nil {
		t.Fatalf("recorded solution invalid: %v", err)
	}
	// The environment must have reset after recording.
	if env.State().Topo.NumEdges() != 0 {
		t.Fatal("state not reset after solution")
	}
	if env.Solutions < 1 {
		t.Fatal("solution counter not incremented")
	}
}

func TestEnvRewardIsNegativeCostDelta(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	env, err := NewEnv(prob, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// First action: add switch 4 (slot 0) -> cost 8 -> reward -8/scale.
	r, outcome, err := env.Step(0)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeContinue {
		t.Fatalf("outcome = %v", outcome)
	}
	want := -8.0 / cfg.RewardScale
	if r != want {
		t.Fatalf("reward = %v, want %v", r, want)
	}
}

func TestEnvStepErrors(t *testing.T) {
	prob := tinyProblem(t)
	env, err := NewEnv(prob, tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := env.Step(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, _, err := env.Step(999); err == nil {
		t.Error("out-of-range index accepted")
	}
	// Selecting an empty (masked) path slot without ablation is an error.
	if _, _, err := env.Step(5); err == nil {
		t.Error("empty action slot accepted")
	}
}

func TestEnvSolvedTrivialProblem(t *testing.T) {
	prob := tinyProblem(t)
	prob.Flows = nil
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(prob, tinyConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Solved() {
		t.Fatal("flowless problem should be solved by the empty network")
	}
}

func TestPlannerSmokeAndDeterminism(t *testing.T) {
	prob := tinyProblem(t)
	cfg := tinyConfig()
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Epochs) != cfg.MaxEpoch {
		t.Fatalf("epochs = %d, want %d", len(r1.Epochs), cfg.MaxEpoch)
	}
	pl2, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pl2.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Epochs {
		if r1.Epochs[i].Reward != r2.Epochs[i].Reward {
			t.Fatalf("epoch %d rewards differ: %v vs %v", i, r1.Epochs[i].Reward, r2.Epochs[i].Reward)
		}
	}
	if (r1.Best == nil) != (r2.Best == nil) {
		t.Fatal("best-solution presence differs between identical runs")
	}
	if r1.Best != nil && r1.Best.Cost != r2.Best.Cost {
		t.Fatalf("best costs differ: %v vs %v", r1.Best.Cost, r2.Best.Cost)
	}
}

func TestPlannerFindsSolutionOnTinyProblem(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.MaxEpoch = 4
	cfg.MaxStep = 120
	cfg.Seed = 3
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !report.GuaranteeMet() {
		t.Fatal("planner found no valid solution on the tiny problem")
	}
	if err := VerifySolution(prob, report.Best); err != nil {
		t.Fatalf("best solution invalid: %v", err)
	}
	if report.TotalNBFCalls == 0 {
		t.Fatal("NBF call counter empty")
	}
}

func TestPlannerParallelWorkersMatchProblem(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	prob := tinyProblem(t)
	cfg := tinyConfig()
	cfg.Workers = 2
	cfg.MaxStep = 48
	pl, err := NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Epochs) != cfg.MaxEpoch {
		t.Fatalf("epochs = %d", len(report.Epochs))
	}
	// Each epoch gathers steps across both workers.
	if report.Epochs[0].Trajectories < 2 {
		t.Fatalf("expected >= 2 trajectories (one partial per worker), got %d", report.Epochs[0].Trajectories)
	}
}

func TestPlannerFlowlessProblemTrivial(t *testing.T) {
	prob := tinyProblem(t)
	prob.Flows = nil
	pl, err := NewPlanner(prob, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if report.Best == nil || report.Best.Cost != 0 {
		t.Fatalf("trivial solution = %+v", report.Best)
	}
}

func TestNewPlannerValidation(t *testing.T) {
	prob := tinyProblem(t)
	bad := tinyConfig()
	bad.K = 0
	if _, err := NewPlanner(prob, bad); err == nil {
		t.Error("invalid config accepted")
	}
	brokenProb := tinyProblem(t)
	brokenProb.Library = nil
	if _, err := NewPlanner(brokenProb, tinyConfig()); err == nil {
		t.Error("invalid problem accepted")
	}
}

var (
	_ = asil.LevelA
	_ = tsn.Pair{}
)
