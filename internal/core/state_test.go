package core

import (
	"testing"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

func TestProblemValidation(t *testing.T) {
	good := tinyProblem(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	if len(good.EndStations()) != 4 || len(good.Switches()) != 2 {
		t.Fatalf("partitions: es=%v sw=%v", good.EndStations(), good.Switches())
	}
	if good.ESLevel != asil.LevelD {
		t.Fatal("ESLevel should default to D")
	}

	cases := []struct {
		name string
		mut  func(*Problem)
	}{
		{"nil graph", func(p *Problem) { p.Connections = nil }},
		{"nil nbf", func(p *Problem) { p.NBF = nil }},
		{"nil library", func(p *Problem) { p.Library = nil }},
		{"bad network", func(p *Problem) { p.Net = tsn.Network{} }},
		{"bad R high", func(p *Problem) { p.ReliabilityGoal = 1 }},
		{"bad R zero", func(p *Problem) { p.ReliabilityGoal = 0 }},
		{"bad es degree", func(p *Problem) { p.MaxESDegree = 0 }},
		{"bad es level", func(p *Problem) { p.ESLevel = asil.Level(9) }},
		{"flow src is switch", func(p *Problem) {
			p.Flows = tsn.FlowSet{{ID: 0, Src: 4, Dsts: []int{0}, Period: p.Net.BasePeriod, Deadline: p.Net.BasePeriod, FrameSize: 1}}
		}},
		{"flow dst is switch", func(p *Problem) {
			p.Flows = tsn.FlowSet{{ID: 0, Src: 0, Dsts: []int{5}, Period: p.Net.BasePeriod, Deadline: p.Net.BasePeriod, FrameSize: 1}}
		}},
		{"bad flow", func(p *Problem) {
			p.Flows = tsn.FlowSet{{ID: 0, Src: 0, Dsts: []int{1}, Period: 0, Deadline: 0, FrameSize: 1}}
		}},
	}
	for _, c := range cases {
		p := tinyProblem(t)
		c.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestProblemRejectsESESLink(t *testing.T) {
	p := tinyProblem(t)
	if err := p.Connections.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil {
		t.Fatal("ES-ES link accepted")
	}
}

func TestTSSDNUpgradeSwitchProgression(t *testing.T) {
	prob := tinyProblem(t)
	s := NewTSSDN(prob)
	levels := []asil.Level{asil.LevelA, asil.LevelB, asil.LevelC, asil.LevelD}
	for _, want := range levels {
		if err := s.UpgradeSwitch(4); err != nil {
			t.Fatal(err)
		}
		if got := s.Assign.SwitchLevel(4); got != want {
			t.Fatalf("level = %s, want %s", got, want)
		}
	}
	if err := s.UpgradeSwitch(4); err == nil {
		t.Fatal("upgrade beyond ASIL-D accepted")
	}
	if err := s.UpgradeSwitch(0); err == nil {
		t.Fatal("upgrading an end station accepted")
	}
}

func TestTSSDNAddPathAndLinkASILInvariant(t *testing.T) {
	prob := tinyProblem(t)
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil { // ASIL-A
		t.Fatal(err)
	}
	if err := s.AddPath(graph.Path{0, 4, 1}); err != nil {
		t.Fatal(err)
	}
	// Link ASIL = min(ES=D, switch=A) = A.
	if got := s.Assign.LinkLevel(0, 4); got != asil.LevelA {
		t.Fatalf("link (0,4) ASIL %s, want A", got)
	}
	// Upgrading the switch must refresh adjacent link levels.
	if err := s.UpgradeSwitch(4); err != nil { // now B
		t.Fatal(err)
	}
	if got := s.Assign.LinkLevel(0, 4); got != asil.LevelB {
		t.Fatalf("after upgrade: link ASIL %s, want B", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTSSDNAddPathErrors(t *testing.T) {
	prob := tinyProblem(t)
	s := NewTSSDN(prob)
	if err := s.AddPath(graph.Path{0, 4, 1}); err == nil {
		t.Fatal("path through unadded switch accepted")
	}
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPath(graph.Path{0}); err == nil {
		t.Fatal("single-vertex path accepted")
	}
	if err := s.AddPath(graph.Path{0, 1}); err == nil {
		t.Fatal("path using a non-Gc edge accepted")
	}
}

func TestTSSDNAddPathDegreeConstraints(t *testing.T) {
	// An ES with MaxESDegree=1 cannot take a second distinct link.
	prob := tinyProblem(t)
	prob.MaxESDegree = 1
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	if err := s.UpgradeSwitch(5); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPath(graph.Path{0, 4, 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPath(graph.Path{0, 5, 1}); err == nil {
		t.Fatal("ES degree violation accepted")
	}
	// Re-adding the same path is idempotent and legal.
	if err := s.AddPath(graph.Path{0, 4, 1}); err != nil {
		t.Fatalf("idempotent re-add rejected: %v", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTSSDNCost(t *testing.T) {
	prob := tinyProblem(t)
	s := NewTSSDN(prob)
	c, err := s.Cost()
	if err != nil || c != 0 {
		t.Fatalf("empty cost = %v, %v", c, err)
	}
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	c, err = s.Cost()
	if err != nil {
		t.Fatal(err)
	}
	// One ASIL-A 4-port switch = 8.
	if c != 8 {
		t.Fatalf("cost = %v, want 8", c)
	}
	if err := s.AddPath(graph.Path{0, 4, 1}); err != nil {
		t.Fatal(err)
	}
	c, err = s.Cost()
	if err != nil {
		t.Fatal(err)
	}
	// Switch 8 + two ASIL-A unit links (cost 1 each) = 10.
	if c != 10 {
		t.Fatalf("cost = %v, want 10", c)
	}
}

func TestTSSDNResetAndClone(t *testing.T) {
	prob := tinyProblem(t)
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPath(graph.Path{0, 4, 1}); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	s.Reset()
	if s.Topo.NumEdges() != 0 || len(s.Assign.Switches) != 0 {
		t.Fatal("Reset incomplete")
	}
	if c.Topo.NumEdges() != 2 || !c.HasSwitch(4) {
		t.Fatal("Clone affected by Reset")
	}
}

func TestSolutionClone(t *testing.T) {
	prob := tinyProblem(t)
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	sol := &Solution{Topology: s.Topo, Assignment: s.Assign, Cost: 8}
	c := sol.Clone()
	c.Assignment.Switches[4] = asil.LevelD
	if sol.Assignment.Switches[4] == asil.LevelD {
		t.Fatal("Solution.Clone shares assignment")
	}
	var nilSol *Solution
	if nilSol.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

func TestCheckInvariantsDetectsViolations(t *testing.T) {
	prob := tinyProblem(t)
	s := NewTSSDN(prob)
	if err := s.UpgradeSwitch(4); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPath(graph.Path{0, 4, 1}); err != nil {
		t.Fatal(err)
	}
	// Corrupt a link level.
	s.Assign.SetLink(0, 4, asil.LevelD)
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("corrupted link ASIL not detected")
	}
}

var _ = nbf.Failure{} // keep the import for fixtures that need it
