package graph

import (
	"testing"
)

// line builds a path graph v0-v1-...-v(n-1) with unit lengths.
func line(t testing.TB, n int) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < n; i++ {
		g.AddVertex("", KindSwitch)
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", i, i+1, err)
		}
	}
	return g
}

func TestAddVertexAssignsDenseIDs(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		if id := g.AddVertex("", KindEndStation); id != i {
			t.Fatalf("AddVertex returned %d, want %d", id, i)
		}
	}
	if g.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", g.NumVertices())
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := New()
	g.AddVertex("a", KindSwitch)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Fatal("expected error for self loop")
	}
}

func TestAddEdgeRejectsUnknownVertex(t *testing.T) {
	g := New()
	g.AddVertex("a", KindSwitch)
	if err := g.AddEdge(0, 7, 1); err == nil {
		t.Fatal("expected error for unknown vertex")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Fatal("expected error for negative vertex")
	}
}

func TestAddEdgeIdempotentUpdatesLength(t *testing.T) {
	g := line(t, 2)
	if err := g.AddEdge(0, 1, 9); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if l, ok := g.EdgeLength(1, 0); !ok || l != 9 {
		t.Fatalf("EdgeLength = %v,%v, want 9,true", l, ok)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := line(t, 3)
	g.RemoveEdge(1, 0) // reversed order must work
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge still present after removal")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	g.RemoveEdge(0, 1) // double removal is a no-op
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges after double removal = %d, want 1", g.NumEdges())
	}
}

func TestIsolateVertex(t *testing.T) {
	g := line(t, 3)
	g.IsolateVertex(1)
	if g.Degree(1) != 0 {
		t.Fatalf("Degree(1) = %d, want 0", g.Degree(1))
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if g.Connected(0, 2) {
		t.Fatal("0 and 2 should be disconnected after isolating 1")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", KindSwitch)
	}
	for _, v := range []int{1, 2, 3} {
		if err := g.AddEdge(0, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	if g.Degree(0) != 3 {
		t.Fatalf("Degree(0) = %d, want 3", g.Degree(0))
	}
	ns := g.Neighbors(0)
	want := []int{1, 2, 3}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", ns, want)
		}
	}
}

func TestEdgesSortedCanonical(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", KindSwitch)
	}
	mustAdd(t, g, 3, 2, 1)
	mustAdd(t, g, 1, 0, 1)
	mustAdd(t, g, 2, 0, 1)
	es := g.Edges()
	want := []Edge{{U: 0, V: 1, Length: 1}, {U: 0, V: 2, Length: 1}, {U: 2, V: 3, Length: 1}}
	if len(es) != len(want) {
		t.Fatalf("got %d edges, want %d", len(es), len(want))
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges()[%d] = %+v, want %+v", i, es[i], want[i])
		}
	}
}

func mustAdd(t testing.TB, g *Graph, u, v int, l float64) {
	t.Helper()
	if err := g.AddEdge(u, v, l); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := line(t, 3)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("mutating clone affected the original")
	}
	mustAdd(t, g, 0, 2, 1)
	if c.HasEdge(0, 2) {
		t.Fatal("mutating original affected the clone")
	}
}

func TestEmptyLike(t *testing.T) {
	g := line(t, 4)
	e := g.EmptyLike()
	if e.NumVertices() != 4 || e.NumEdges() != 0 {
		t.Fatalf("EmptyLike: %d vertices %d edges, want 4 and 0", e.NumVertices(), e.NumEdges())
	}
	if e.MustVertex(2).Kind != KindSwitch {
		t.Fatal("EmptyLike lost vertex kinds")
	}
}

func TestResidual(t *testing.T) {
	g := line(t, 5)
	r := g.Residual([]int{2}, []Edge{{U: 3, V: 4}})
	if r.Degree(2) != 0 {
		t.Fatal("failed node not isolated")
	}
	if r.HasEdge(3, 4) {
		t.Fatal("failed edge not removed")
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("Residual mutated the source graph")
	}
}

func TestIsSubgraphOf(t *testing.T) {
	g := line(t, 4)
	sub := g.Clone()
	sub.RemoveEdge(1, 2)
	if !sub.IsSubgraphOf(g) {
		t.Fatal("sub should be a subgraph of g")
	}
	mustAdd(t, sub, 0, 3, 1)
	if sub.IsSubgraphOf(g) {
		t.Fatal("sub has an extra edge; should not be a subgraph")
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := New()
	for i := 0; i < 6; i++ {
		g.AddVertex("", KindSwitch)
	}
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 2, 1)
	mustAdd(t, g, 4, 5, 1)
	if !g.Connected(0, 2) {
		t.Fatal("0-2 should be connected")
	}
	if g.Connected(0, 4) {
		t.Fatal("0-4 should not be connected")
	}
	if !g.Connected(3, 3) {
		t.Fatal("a vertex is connected to itself")
	}
	comp := g.ComponentOf(1)
	want := []int{0, 1, 2}
	if len(comp) != len(want) {
		t.Fatalf("ComponentOf(1) = %v, want %v", comp, want)
	}
	for i := range want {
		if comp[i] != want[i] {
			t.Fatalf("ComponentOf(1) = %v, want %v", comp, want)
		}
	}
}

func TestHopDistances(t *testing.T) {
	g := line(t, 4)
	g.AddVertex("iso", KindEndStation)
	d := g.HopDistances(0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("HopDistances = %v, want %v", d, want)
		}
	}
}

func TestAdjacencyMatrixSymmetric(t *testing.T) {
	g := line(t, 3)
	m := g.AdjacencyMatrix()
	n := 3
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m[i*n+j] != m[j*n+i] {
				t.Fatalf("adjacency not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if m[0*n+1] != 1 || m[0*n+2] != 0 || m[1*n+1] != 0 {
		t.Fatalf("unexpected adjacency: %v", m)
	}
}

func TestVerticesOfKind(t *testing.T) {
	g := New()
	g.AddVertex("es0", KindEndStation)
	g.AddVertex("sw0", KindSwitch)
	g.AddVertex("es1", KindEndStation)
	es := g.VerticesOfKind(KindEndStation)
	if len(es) != 2 || es[0] != 0 || es[1] != 2 {
		t.Fatalf("VerticesOfKind(es) = %v, want [0 2]", es)
	}
	sw := g.VerticesOfKind(KindSwitch)
	if len(sw) != 1 || sw[0] != 1 {
		t.Fatalf("VerticesOfKind(sw) = %v, want [1]", sw)
	}
}

func TestVertexOutOfRange(t *testing.T) {
	g := New()
	if _, err := g.Vertex(0); err == nil {
		t.Fatal("expected error for missing vertex")
	}
	if g.Kind(3) != 0 {
		t.Fatal("Kind of missing vertex should be 0")
	}
	if g.Degree(-1) != 0 {
		t.Fatal("Degree of negative vertex should be 0")
	}
}

func TestKindString(t *testing.T) {
	if KindEndStation.String() != "es" || KindSwitch.String() != "sw" {
		t.Fatal("unexpected Kind strings")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestEdgeCanonical(t *testing.T) {
	e := Edge{U: 5, V: 2, Length: 3}.Canonical()
	if e.U != 2 || e.V != 5 || e.Length != 3 {
		t.Fatalf("Canonical = %+v", e)
	}
}
