package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArticulationPointsLine(t *testing.T) {
	g := line(t, 5)
	cuts := g.ArticulationPoints()
	want := []int{1, 2, 3} // every interior vertex of a path
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v, want %v", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
}

func TestArticulationPointsCycle(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.AddVertex("", KindSwitch)
	}
	for i := 0; i < 5; i++ {
		mustAdd(t, g, i, (i+1)%5, 1)
	}
	if cuts := g.ArticulationPoints(); cuts != nil {
		t.Fatalf("a cycle has no cut vertices, got %v", cuts)
	}
}

func TestArticulationPointsBridgeHub(t *testing.T) {
	// Two triangles joined at vertex 2: vertex 2 is the only cut vertex.
	g := New()
	for i := 0; i < 5; i++ {
		g.AddVertex("", KindSwitch)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}} {
		mustAdd(t, g, e[0], e[1], 1)
	}
	cuts := g.ArticulationPoints()
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Fatalf("cuts = %v, want [2]", cuts)
	}
}

func TestArticulationPointsDisconnected(t *testing.T) {
	g := New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", KindSwitch)
	}
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 2, 3, 1)
	if cuts := g.ArticulationPoints(); cuts != nil {
		t.Fatalf("two disjoint edges have no cut vertices, got %v", cuts)
	}
}

func TestArticulationPointsMatchBruteForce(t *testing.T) {
	// Property: v is an articulation point iff removing it increases the
	// number of vertex pairs that are disconnected.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := randomConnectedGraph(rng, n, rng.Intn(n))
		cuts := make(map[int]bool)
		for _, c := range g.ArticulationPoints() {
			cuts[c] = true
		}
		for v := 0; v < n; v++ {
			// Brute force: does removing v disconnect any pair of the
			// remaining vertices that was connected before?
			before := g.Clone()
			after := g.Clone()
			after.IsolateVertex(v)
			broke := false
			for a := 0; a < n && !broke; a++ {
				for b := a + 1; b < n && !broke; b++ {
					if a == v || b == v {
						continue
					}
					if before.Connected(a, b) && !after.Connected(a, b) {
						broke = true
					}
				}
			}
			if broke != cuts[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparatesPair(t *testing.T) {
	g := line(t, 4) // 0-1-2-3
	if !g.SeparatesPair(1, 0, 3) {
		t.Fatal("1 separates 0 from 3")
	}
	if g.SeparatesPair(0, 0, 3) || g.SeparatesPair(3, 0, 3) {
		t.Fatal("endpoints never separate their own pair")
	}
	// Unconnected pair: nothing separates it.
	g.AddVertex("", KindSwitch)
	if g.SeparatesPair(1, 0, 4) {
		t.Fatal("pair was never connected")
	}
	// Redundant square: no single vertex separates opposite corners.
	sq := New()
	for i := 0; i < 4; i++ {
		sq.AddVertex("", KindSwitch)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		mustAdd(t, sq, e[0], e[1], 1)
	}
	if sq.SeparatesPair(1, 0, 2) {
		t.Fatal("square has a redundant path")
	}
}
