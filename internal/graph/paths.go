package graph

import (
	"errors"
)

// ErrNoPath is returned when no path exists between the requested endpoints.
var ErrNoPath = errors.New("no path between endpoints")

// Path is an ordered vertex sequence from source to destination.
type Path []int

// Source returns the first vertex of the path, or -1 if empty.
func (p Path) Source() int {
	if len(p) == 0 {
		return -1
	}
	return p[0]
}

// Dest returns the last vertex of the path, or -1 if empty.
func (p Path) Dest() int {
	if len(p) == 0 {
		return -1
	}
	return p[len(p)-1]
}

// Edges returns the canonical edges traversed by the path. Lengths are
// looked up from g; edges absent from g get length 0 (useful when a path was
// computed on a larger connection graph).
func (p Path) Edges(g *Graph) []Edge {
	if len(p) < 2 {
		return nil
	}
	es := make([]Edge, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		l, _ := g.EdgeLength(p[i], p[i+1])
		es = append(es, Edge{U: p[i], V: p[i+1], Length: l}.Canonical())
	}
	return es
}

// Length returns the total edge length of the path in g. Missing edges
// contribute zero.
func (p Path) Length(g *Graph) float64 {
	var sum float64
	for i := 0; i+1 < len(p); i++ {
		l, _ := g.EdgeLength(p[i], p[i+1])
		sum += l
	}
	return sum
}

// Hops returns the hop count (number of edges) of the path.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Contains reports whether the path visits vertex id.
func (p Path) Contains(id int) bool {
	for _, v := range p {
		if v == id {
			return true
		}
	}
	return false
}

// Loopless reports whether the path visits no vertex twice.
func (p Path) Loopless() bool {
	seen := make(map[int]struct{}, len(p))
	for _, v := range p {
		if _, dup := seen[v]; dup {
			return false
		}
		seen[v] = struct{}{}
	}
	return true
}

// Equal reports element-wise equality of two paths.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the path.
func (p Path) Clone() Path {
	c := make(Path, len(p))
	copy(c, p)
	return c
}

// pathConstraints restrict the vertices and edges Dijkstra may use. Both
// maps may be nil.
type pathConstraints struct {
	bannedNodes map[int]struct{}
	bannedEdges map[Edge]struct{}
}

// ShortestPath returns the minimum-length path from s to d using edge
// lengths as weights (ties broken deterministically by vertex ID). It
// returns ErrNoPath when d is unreachable. The result is freshly allocated;
// hot paths should hold a PathFinder instead.
func (g *Graph) ShortestPath(s, d int) (Path, error) {
	return g.shortestPathConstrained(s, d, pathConstraints{})
}

func (g *Graph) shortestPathConstrained(s, d int, con pathConstraints) (Path, error) {
	f := AcquireFinder(g)
	defer ReleaseFinder(f)
	f.clearConstraints()
	for v := range con.bannedNodes {
		if v >= 0 && v < f.n {
			f.banNode(v)
		}
	}
	for e := range con.bannedEdges {
		f.banEdge(e)
	}
	p, err := f.dijkstra(s, d)
	if err != nil {
		return nil, err
	}
	return p.Clone(), nil
}
