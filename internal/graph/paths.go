package graph

import (
	"container/heap"
	"errors"
	"math"
)

// ErrNoPath is returned when no path exists between the requested endpoints.
var ErrNoPath = errors.New("no path between endpoints")

// Path is an ordered vertex sequence from source to destination.
type Path []int

// Source returns the first vertex of the path, or -1 if empty.
func (p Path) Source() int {
	if len(p) == 0 {
		return -1
	}
	return p[0]
}

// Dest returns the last vertex of the path, or -1 if empty.
func (p Path) Dest() int {
	if len(p) == 0 {
		return -1
	}
	return p[len(p)-1]
}

// Edges returns the canonical edges traversed by the path. Lengths are
// looked up from g; edges absent from g get length 0 (useful when a path was
// computed on a larger connection graph).
func (p Path) Edges(g *Graph) []Edge {
	if len(p) < 2 {
		return nil
	}
	es := make([]Edge, 0, len(p)-1)
	for i := 0; i+1 < len(p); i++ {
		l, _ := g.EdgeLength(p[i], p[i+1])
		es = append(es, Edge{U: p[i], V: p[i+1], Length: l}.Canonical())
	}
	return es
}

// Length returns the total edge length of the path in g. Missing edges
// contribute zero.
func (p Path) Length(g *Graph) float64 {
	var sum float64
	for i := 0; i+1 < len(p); i++ {
		l, _ := g.EdgeLength(p[i], p[i+1])
		sum += l
	}
	return sum
}

// Hops returns the hop count (number of edges) of the path.
func (p Path) Hops() int {
	if len(p) == 0 {
		return 0
	}
	return len(p) - 1
}

// Contains reports whether the path visits vertex id.
func (p Path) Contains(id int) bool {
	for _, v := range p {
		if v == id {
			return true
		}
	}
	return false
}

// Loopless reports whether the path visits no vertex twice.
func (p Path) Loopless() bool {
	seen := make(map[int]struct{}, len(p))
	for _, v := range p {
		if _, dup := seen[v]; dup {
			return false
		}
		seen[v] = struct{}{}
	}
	return true
}

// Equal reports element-wise equality of two paths.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the path.
func (p Path) Clone() Path {
	c := make(Path, len(p))
	copy(c, p)
	return c
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	id   int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// pathConstraints restrict the vertices and edges Dijkstra may use. Both
// maps may be nil.
type pathConstraints struct {
	bannedNodes map[int]struct{}
	bannedEdges map[Edge]struct{}
}

func (c pathConstraints) nodeBanned(id int) bool {
	_, ok := c.bannedNodes[id]
	return ok
}

func (c pathConstraints) edgeBanned(u, v int) bool {
	_, ok := c.bannedEdges[Edge{U: u, V: v}.Canonical()]
	return ok
}

// ShortestPath returns the minimum-length path from s to d using edge
// lengths as weights (ties broken deterministically by vertex ID). It
// returns ErrNoPath when d is unreachable.
func (g *Graph) ShortestPath(s, d int) (Path, error) {
	return g.shortestPathConstrained(s, d, pathConstraints{})
}

func (g *Graph) shortestPathConstrained(s, d int, con pathConstraints) (Path, error) {
	n := g.NumVertices()
	if s < 0 || s >= n || d < 0 || d >= n {
		return nil, ErrNoPath
	}
	if con.nodeBanned(s) || con.nodeBanned(d) {
		return nil, ErrNoPath
	}
	if s == d {
		return Path{s}, nil
	}
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[s] = 0
	q := &pq{{id: s, dist: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(pqItem)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if cur.id == d {
			break
		}
		// Iterate neighbors in sorted order for deterministic tie-breaking.
		for _, nb := range g.Neighbors(cur.id) {
			if done[nb] || con.nodeBanned(nb) || con.edgeBanned(cur.id, nb) {
				continue
			}
			l, _ := g.EdgeLength(cur.id, nb)
			nd := dist[cur.id] + l
			if nd < dist[nb] || (nd == dist[nb] && prev[nb] > cur.id && prev[nb] != -1) {
				dist[nb] = nd
				prev[nb] = cur.id
				heap.Push(q, pqItem{id: nb, dist: nd})
			}
		}
	}
	if math.IsInf(dist[d], 1) {
		return nil, ErrNoPath
	}
	// Reconstruct.
	var rev Path
	for at := d; at != -1; at = prev[at] {
		rev = append(rev, at)
	}
	p := make(Path, len(rev))
	for i := range rev {
		p[i] = rev[len(rev)-1-i]
	}
	return p, nil
}
