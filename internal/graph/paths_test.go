package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShortestPathLine(t *testing.T) {
	g := line(t, 5)
	p, err := g.ShortestPath(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Path{0, 1, 2, 3, 4}
	if !p.Equal(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	if p.Length(g) != 4 {
		t.Fatalf("Length = %v, want 4", p.Length(g))
	}
	if p.Hops() != 4 {
		t.Fatalf("Hops = %d, want 4", p.Hops())
	}
}

func TestShortestPathPrefersShorterWeighted(t *testing.T) {
	// 0 -(10)- 1 and 0 -(1)- 2 -(1)- 1: weighted shortest goes via 2.
	g := New()
	for i := 0; i < 3; i++ {
		g.AddVertex("", KindSwitch)
	}
	mustAdd(t, g, 0, 1, 10)
	mustAdd(t, g, 0, 2, 1)
	mustAdd(t, g, 2, 1, 1)
	p, err := g.ShortestPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{0, 2, 1}) {
		t.Fatalf("path = %v, want [0 2 1]", p)
	}
}

func TestShortestPathNoPath(t *testing.T) {
	g := New()
	g.AddVertex("", KindSwitch)
	g.AddVertex("", KindSwitch)
	if _, err := g.ShortestPath(0, 1); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
	if _, err := g.ShortestPath(0, 9); !errors.Is(err, ErrNoPath) {
		t.Fatalf("out of range: err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathSameVertex(t *testing.T) {
	g := line(t, 2)
	p, err := g.ShortestPath(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{1}) {
		t.Fatalf("path = %v, want [1]", p)
	}
}

func TestShortestPathConstrainedBans(t *testing.T) {
	// Square: 0-1-3 and 0-2-3.
	g := New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", KindSwitch)
	}
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 3, 1)
	mustAdd(t, g, 0, 2, 1)
	mustAdd(t, g, 2, 3, 1)

	con := pathConstraints{bannedNodes: map[int]struct{}{1: {}}}
	p, err := g.shortestPathConstrained(0, 3, con)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{0, 2, 3}) {
		t.Fatalf("path = %v, want [0 2 3]", p)
	}

	con = pathConstraints{bannedEdges: map[Edge]struct{}{{U: 0, V: 2}: {}}}
	p, err = g.shortestPathConstrained(0, 3, con)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Path{0, 1, 3}) {
		t.Fatalf("path = %v, want [0 1 3]", p)
	}

	con = pathConstraints{bannedNodes: map[int]struct{}{1: {}, 2: {}}}
	if _, err = g.shortestPathConstrained(0, 3, con); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestPathHelpers(t *testing.T) {
	g := line(t, 4)
	p := Path{0, 1, 2}
	if p.Source() != 0 || p.Dest() != 2 {
		t.Fatalf("Source/Dest = %d/%d", p.Source(), p.Dest())
	}
	if !p.Contains(1) || p.Contains(3) {
		t.Fatal("Contains is wrong")
	}
	if !p.Loopless() {
		t.Fatal("p should be loopless")
	}
	if (Path{0, 1, 0}).Loopless() {
		t.Fatal("looped path reported loopless")
	}
	es := p.Edges(g)
	if len(es) != 2 || es[0] != (Edge{U: 0, V: 1, Length: 1}) {
		t.Fatalf("Edges = %v", es)
	}
	var empty Path
	if empty.Source() != -1 || empty.Dest() != -1 || empty.Hops() != 0 {
		t.Fatal("empty path helpers wrong")
	}
	if empty.Edges(g) != nil {
		t.Fatal("empty path should have no edges")
	}
	c := p.Clone()
	c[0] = 9
	if p[0] == 9 {
		t.Fatal("Clone shares storage")
	}
}

// randomConnectedGraph builds a connected random graph for property tests.
func randomConnectedGraph(rng *rand.Rand, n int, extraEdges int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddVertex("", KindSwitch)
	}
	// Random spanning tree first.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := perm[i]
		v := perm[rng.Intn(i)]
		_ = g.AddEdge(u, v, 1+rng.Float64()*4)
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(u, v, 1+rng.Float64()*4)
		}
	}
	return g
}

func TestShortestPathPropertyValidAndMinimalHopUpperBound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := randomConnectedGraph(rng, n, n)
		s, d := rng.Intn(n), rng.Intn(n)
		p, err := g.ShortestPath(s, d)
		if err != nil {
			return false // connected graph: path must exist
		}
		if p.Source() != s || p.Dest() != d || !p.Loopless() {
			return false
		}
		// Every consecutive pair must be an edge.
		for i := 0; i+1 < len(p); i++ {
			if !g.HasEdge(p[i], p[i+1]) {
				return false
			}
		}
		// No single edge (s,d) may be shorter than the found path.
		if l, ok := g.EdgeLength(s, d); ok && l < p.Length(g) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
