package graph

// IndexCombinations enumerates all k-element index subsets of {0..n-1} in
// deterministic lexicographic order, calling fn with a reused ascending
// buffer for each subset. The buffer must not be retained across calls;
// copy it if needed. fn may return false to stop enumeration early.
func IndexCombinations(n, k int, fn func(idx []int) bool) {
	if k < 0 || k > n {
		return
	}
	if k == 0 {
		fn(nil)
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return
		}
		// Advance the index vector.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Combinations enumerates all k-element subsets of items in deterministic
// lexicographic index order, calling fn with a reused buffer for each subset.
// The buffer must not be retained across calls; copy it if needed. fn may
// return false to stop enumeration early. It is the subset generator behind
// Algorithm 3's combinations(V^t_sw, i).
func Combinations(items []int, k int, fn func(subset []int) bool) {
	if k < 0 || k > len(items) {
		return
	}
	if k == 0 {
		fn(nil)
		return
	}
	buf := make([]int, k)
	IndexCombinations(len(items), k, func(idx []int) bool {
		for i, j := range idx {
			buf[i] = items[j]
		}
		return fn(buf)
	})
}

// CountCombinations returns C(n, k), saturating at a large bound to avoid
// overflow for the sizes that appear in failure analysis.
func CountCombinations(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	const saturate = 1 << 40
	result := 1
	for i := 0; i < k; i++ {
		result = result * (n - i) / (i + 1)
		if result > saturate {
			return saturate
		}
	}
	return result
}
