package graph

// ArticulationPoints returns the cut vertices of the graph — vertices
// whose removal disconnects two previously connected vertices. In network
// planning these are structural single points of failure: any demanded
// pair separated by one is unrecoverable under that vertex's failure, no
// matter how capable the recovery mechanism is.
//
// The implementation tests each vertex by removal (O(V·E)); the connection
// graphs of in-vehicle networks are small enough that the simple, obviously
// correct check beats a low-link DFS.
func (g *Graph) ArticulationPoints() []int {
	var cuts []int
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(v) >= 2 && disconnectsNeighbors(g, v) {
			cuts = append(cuts, v)
		}
	}
	return cuts
}

// disconnectsNeighbors reports whether removing v separates two of its
// neighbors: BFS from one neighbor with v blocked must reach all others.
func disconnectsNeighbors(g *Graph, v int) bool {
	nbrs := g.Neighbors(v)
	if len(nbrs) < 2 {
		return false
	}
	seen := make([]bool, g.NumVertices())
	seen[v] = true
	queue := []int{nbrs[0]}
	seen[nbrs[0]] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for _, nb := range nbrs[1:] {
		if !seen[nb] {
			return true
		}
	}
	return false
}

// SeparatesPair reports whether removing vertex v disconnects s from d
// (false when v is s or d themselves, or when they were never connected).
func (g *Graph) SeparatesPair(v, s, d int) bool {
	if v == s || v == d || !g.Connected(s, d) {
		return false
	}
	r := g.Clone()
	r.IsolateVertex(v)
	return !r.Connected(s, d)
}
