package graph

import (
	"testing"
)

func collectCombinations(items []int, k int) [][]int {
	var out [][]int
	Combinations(items, k, func(s []int) bool {
		c := make([]int, len(s))
		copy(c, s)
		out = append(out, c)
		return true
	})
	return out
}

func TestCombinationsEnumeratesAll(t *testing.T) {
	got := collectCombinations([]int{1, 2, 3, 4}, 2)
	want := [][]int{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}
	if len(got) != len(want) {
		t.Fatalf("got %d combinations, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("combination %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestCombinationsEdgeCases(t *testing.T) {
	if got := collectCombinations([]int{1, 2}, 0); len(got) != 1 || got[0] != nil && len(got[0]) != 0 {
		t.Fatalf("k=0: %v, want one empty subset", got)
	}
	if got := collectCombinations([]int{1, 2}, 3); got != nil {
		t.Fatalf("k>n: %v, want none", got)
	}
	if got := collectCombinations([]int{1, 2}, -1); got != nil {
		t.Fatalf("k<0: %v, want none", got)
	}
	if got := collectCombinations([]int{7}, 1); len(got) != 1 || got[0][0] != 7 {
		t.Fatalf("singleton: %v", got)
	}
}

func TestCombinationsEarlyStop(t *testing.T) {
	count := 0
	Combinations([]int{1, 2, 3, 4, 5}, 2, func(s []int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestCombinationsCountsMatch(t *testing.T) {
	for n := 0; n <= 8; n++ {
		items := make([]int, n)
		for i := range items {
			items[i] = i
		}
		for k := 0; k <= n; k++ {
			got := len(collectCombinations(items, k))
			want := CountCombinations(n, k)
			if got != want {
				t.Fatalf("C(%d,%d): enumerated %d, computed %d", n, k, got, want)
			}
		}
	}
}

func TestCountCombinations(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 2, 10}, {10, 3, 120}, {4, 0, 1}, {4, 4, 1}, {3, 5, 0}, {6, -1, 0},
		{15, 7, 6435},
	}
	for _, c := range cases {
		if got := CountCombinations(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestCountCombinationsSaturates(t *testing.T) {
	if got := CountCombinations(100, 50); got != 1<<40 {
		t.Fatalf("expected saturation, got %d", got)
	}
}
