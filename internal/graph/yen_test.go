package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// yenExample is the classic example network from Yen's 1971 paper (renamed
// vertices C=0, D=1, E=2, F=3, G=4, H=5).
func yenExample(t testing.TB) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < 6; i++ {
		g.AddVertex("", KindSwitch)
	}
	edges := []struct {
		u, v int
		l    float64
	}{
		{0, 1, 3}, {0, 2, 2}, {1, 3, 4}, {2, 1, 1}, {2, 3, 2}, {2, 4, 3},
		{3, 4, 2}, {3, 5, 1}, {4, 5, 2},
	}
	for _, e := range edges {
		mustAdd(t, g, e.u, e.v, e.l)
	}
	return g
}

func TestKShortestPathsYenExample(t *testing.T) {
	g := yenExample(t)
	paths, err := g.KShortestPaths(0, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	// Note: Yen's 1971 example is directed; in our undirected model the
	// reverse use of edge (E,D) admits a second length-7 path.
	wantLens := []float64{5, 7, 7}
	for i, p := range paths {
		if p.Length(g) != wantLens[i] {
			t.Fatalf("path %d = %v length %v, want %v", i, p, p.Length(g), wantLens[i])
		}
	}
	if !paths[0].Equal(Path{0, 2, 3, 5}) {
		t.Fatalf("shortest = %v, want [0 2 3 5]", paths[0])
	}
}

func TestKShortestPathsNoPath(t *testing.T) {
	g := New()
	g.AddVertex("", KindSwitch)
	g.AddVertex("", KindSwitch)
	if _, err := g.KShortestPaths(0, 1, 4); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestKShortestPathsKZero(t *testing.T) {
	g := line(t, 3)
	paths, err := g.KShortestPaths(0, 2, 0)
	if err != nil || paths != nil {
		t.Fatalf("k=0: paths=%v err=%v, want nil,nil", paths, err)
	}
}

func TestKShortestPathsFewerThanK(t *testing.T) {
	g := line(t, 4) // only one loopless path exists
	paths, err := g.KShortestPaths(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
}

func TestKShortestPathsDistinctAndOrdered(t *testing.T) {
	// Complete graph K5: many alternatives.
	g := New()
	for i := 0; i < 5; i++ {
		g.AddVertex("", KindSwitch)
	}
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			mustAdd(t, g, u, v, float64(1+(u+v)%3))
		}
	}
	paths, err := g.KShortestPaths(0, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 8 {
		t.Fatalf("got %d paths, want 8", len(paths))
	}
	for i, p := range paths {
		if !p.Loopless() {
			t.Fatalf("path %d has a loop: %v", i, p)
		}
		if p.Source() != 0 || p.Dest() != 4 {
			t.Fatalf("path %d endpoints wrong: %v", i, p)
		}
		if i > 0 && paths[i].Length(g) < paths[i-1].Length(g) {
			t.Fatalf("paths not sorted by length at %d", i)
		}
		for j := 0; j < i; j++ {
			if paths[i].Equal(paths[j]) {
				t.Fatalf("duplicate path at %d and %d: %v", i, j, paths[i])
			}
		}
	}
}

func TestKShortestPathsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(8)
		g := randomConnectedGraph(rng, n, n+2)
		s, d := 0, n-1
		k := 1 + rng.Intn(5)
		paths, err := g.KShortestPaths(s, d, k)
		if err != nil {
			return false
		}
		if len(paths) == 0 || len(paths) > k {
			return false
		}
		for i, p := range paths {
			if !p.Loopless() || p.Source() != s || p.Dest() != d {
				return false
			}
			for e := 0; e+1 < len(p); e++ {
				if !g.HasEdge(p[e], p[e+1]) {
					return false
				}
			}
			if i > 0 && p.Length(g) < paths[i-1].Length(g) {
				return false
			}
			for j := 0; j < i; j++ {
				if p.Equal(paths[j]) {
					return false
				}
			}
		}
		// The first path must match plain Dijkstra.
		sp, err := g.ShortestPath(s, d)
		if err != nil {
			return false
		}
		return paths[0].Length(g) == sp.Length(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
