package graph

// KShortestPaths implements Yen's algorithm [Yen 1971] for the K shortest
// loopless paths from s to d, as referenced by Algorithm 1 of the paper
// (path addition action generation). Paths are returned in non-decreasing
// length order; fewer than k paths are returned if the graph does not
// contain k distinct loopless paths. When no path exists at all, it returns
// (nil, ErrNoPath).
//
// This wrapper runs the search on a pooled PathFinder and copies the
// results out, so callers own the returned paths. Hot loops that issue many
// queries against one graph should hold their own PathFinder and skip the
// copies.
func (g *Graph) KShortestPaths(s, d, k int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	f := AcquireFinder(g)
	defer ReleaseFinder(f)
	ps, err := f.KShortestPaths(s, d, k)
	if err != nil {
		return nil, err
	}
	out := make([]Path, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out, nil
}

// lexLess orders paths lexicographically for deterministic tie-breaking.
func lexLess(a, b Path) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
