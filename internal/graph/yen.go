package graph

import "sort"

// KShortestPaths implements Yen's algorithm [Yen 1971] for the K shortest
// loopless paths from s to d, as referenced by Algorithm 1 of the paper
// (path addition action generation). Paths are returned in non-decreasing
// length order; fewer than k paths are returned if the graph does not
// contain k distinct loopless paths. When no path exists at all, it returns
// (nil, ErrNoPath).
func (g *Graph) KShortestPaths(s, d, k int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := g.ShortestPath(s, d)
	if err != nil {
		return nil, err
	}
	result := []Path{first}
	// Candidate pool (B in Yen's formulation).
	type candidate struct {
		path Path
		len  float64
	}
	var candidates []candidate

	haveCandidate := func(p Path) bool {
		for _, c := range candidates {
			if c.path.Equal(p) {
				return true
			}
		}
		return false
	}
	haveResult := func(p Path) bool {
		for _, r := range result {
			if r.Equal(p) {
				return true
			}
		}
		return false
	}

	for len(result) < k {
		prev := result[len(result)-1]
		// Each vertex of the previous path except the destination is a spur
		// node.
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			root := prev[:i+1].Clone()

			con := pathConstraints{
				bannedNodes: make(map[int]struct{}),
				bannedEdges: make(map[Edge]struct{}),
			}
			// Ban edges that would recreate a previously found path sharing
			// this root.
			for _, r := range result {
				if len(r) > i && r[:i+1].Equal(root) {
					con.bannedEdges[Edge{U: r[i], V: r[i+1]}.Canonical()] = struct{}{}
				}
			}
			// Ban root vertices (except the spur) to keep paths loopless.
			for _, v := range root[:len(root)-1] {
				con.bannedNodes[v] = struct{}{}
			}

			spurPath, err := g.shortestPathConstrained(spur, d, con)
			if err != nil {
				continue
			}
			total := append(root[:len(root)-1].Clone(), spurPath...)
			if !total.Loopless() || haveResult(total) || haveCandidate(total) {
				continue
			}
			candidates = append(candidates, candidate{path: total, len: total.Length(g)})
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool {
			if candidates[a].len != candidates[b].len {
				return candidates[a].len < candidates[b].len
			}
			return lexLess(candidates[a].path, candidates[b].path)
		})
		result = append(result, candidates[0].path)
		candidates = candidates[1:]
	}
	return result, nil
}

// lexLess orders paths lexicographically for deterministic tie-breaking.
func lexLess(a, b Path) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
