// Package graph provides the undirected-graph substrate used by NPTSN:
// connection graphs, topologies and failure scenarios are all values of
// *Graph. Vertices are dense integer IDs so that graphs map directly onto
// the adjacency/feature matrices consumed by the GCN encoder.
package graph

import (
	"fmt"
	"sort"
)

// Kind classifies a vertex of an in-vehicle network.
type Kind int

const (
	// KindEndStation marks an application end station (ECU, sensor, actuator).
	KindEndStation Kind = iota + 1
	// KindSwitch marks a TSN switch.
	KindSwitch
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindEndStation:
		return "es"
	case KindSwitch:
		return "sw"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Vertex is a node of a network graph. IDs are dense indices assigned by
// AddVertex in insertion order, which keeps graph state and neural-network
// observations aligned.
type Vertex struct {
	ID   int
	Name string
	Kind Kind
}

// Edge is an undirected link between two vertices. Length is the cable
// length used by the link cost function; a failure scenario reuses Edge with
// Length ignored.
type Edge struct {
	U, V   int
	Length float64
}

// Canonical returns the edge with U <= V so that edges compare consistently.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Graph is a simple undirected graph with weighted edges. The zero value is
// an empty graph ready to use. Graph is not safe for concurrent mutation.
type Graph struct {
	vertices []Vertex
	adj      []map[int]float64
	edges    int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// AddVertex appends a vertex and returns its ID.
func (g *Graph) AddVertex(name string, kind Kind) int {
	id := len(g.vertices)
	g.vertices = append(g.vertices, Vertex{ID: id, Name: name, Kind: kind})
	g.adj = append(g.adj, nil)
	return id
}

// NumVertices returns the number of vertices (including isolated ones).
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Vertex returns the vertex with the given ID.
func (g *Graph) Vertex(id int) (Vertex, error) {
	if id < 0 || id >= len(g.vertices) {
		return Vertex{}, fmt.Errorf("vertex %d out of range [0,%d)", id, len(g.vertices))
	}
	return g.vertices[id], nil
}

// MustVertex returns the vertex with the given ID and panics if it does not
// exist. It is intended for internal indices that are known to be valid.
func (g *Graph) MustVertex(id int) Vertex {
	v, err := g.Vertex(id)
	if err != nil {
		panic(err)
	}
	return v
}

// Kind returns the kind of vertex id, or 0 if out of range.
func (g *Graph) Kind(id int) Kind {
	if id < 0 || id >= len(g.vertices) {
		return 0
	}
	return g.vertices[id].Kind
}

// VerticesOfKind returns the IDs of all vertices with the given kind, in
// ascending order.
func (g *Graph) VerticesOfKind(kind Kind) []int {
	var ids []int
	for _, v := range g.vertices {
		if v.Kind == kind {
			ids = append(ids, v.ID)
		}
	}
	return ids
}

// AddEdge inserts an undirected edge (u, v) with the given length. Adding an
// existing edge updates its length. Self loops are rejected.
func (g *Graph) AddEdge(u, v int, length float64) error {
	if u == v {
		return fmt.Errorf("self loop on vertex %d", u)
	}
	if err := g.checkID(u); err != nil {
		return err
	}
	if err := g.checkID(v); err != nil {
		return err
	}
	if g.adj[u] == nil {
		g.adj[u] = make(map[int]float64)
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[int]float64)
	}
	if _, exists := g.adj[u][v]; !exists {
		g.edges++
	}
	g.adj[u][v] = length
	g.adj[v][u] = length
	return nil
}

// RemoveEdge deletes the undirected edge (u, v). Removing a missing edge is
// a no-op.
func (g *Graph) RemoveEdge(u, v int) {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return
	}
	if _, exists := g.adj[u][v]; exists {
		delete(g.adj[u], v)
		delete(g.adj[v], u)
		g.edges--
	}
}

// IsolateVertex removes every edge incident to id, modelling a fail-silent
// node: the vertex remains but can no longer forward traffic.
func (g *Graph) IsolateVertex(id int) {
	if id < 0 || id >= len(g.adj) {
		return
	}
	for n := range g.adj[id] {
		delete(g.adj[n], id)
		g.edges--
	}
	g.adj[id] = nil
}

// HasEdge reports whether edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// EdgeLength returns the length of edge (u, v) and whether it exists.
func (g *Graph) EdgeLength(u, v int) (float64, bool) {
	if u < 0 || u >= len(g.adj) {
		return 0, false
	}
	l, ok := g.adj[u][v]
	return l, ok
}

// Degree returns the number of edges incident to id.
func (g *Graph) Degree(id int) int {
	if id < 0 || id >= len(g.adj) {
		return 0
	}
	return len(g.adj[id])
}

// Neighbors returns the neighbor IDs of id in ascending order. The slice is
// freshly allocated; callers may modify it.
func (g *Graph) Neighbors(id int) []int {
	if id < 0 || id >= len(g.adj) {
		return nil
	}
	ns := make([]int, 0, len(g.adj[id]))
	for n := range g.adj[id] {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	return ns
}

// Edges returns all edges in canonical (U < V) form sorted by (U, V).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.edges)
	for u := range g.adj {
		for v, l := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v, Length: l})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// Clone returns a deep copy sharing no mutable state with g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		vertices: make([]Vertex, len(g.vertices)),
		adj:      make([]map[int]float64, len(g.adj)),
		edges:    g.edges,
	}
	copy(c.vertices, g.vertices)
	for i, m := range g.adj {
		if m == nil {
			continue
		}
		cm := make(map[int]float64, len(m))
		for k, v := range m {
			cm[k] = v
		}
		c.adj[i] = cm
	}
	return c
}

// EmptyLike returns a graph with the same vertex set as g but no edges.
// NPTSN starts network construction from exactly this state (§III).
func (g *Graph) EmptyLike() *Graph {
	c := &Graph{
		vertices: make([]Vertex, len(g.vertices)),
		adj:      make([]map[int]float64, len(g.vertices)),
	}
	copy(c.vertices, g.vertices)
	return c
}

// Residual returns a copy of g with the vertices in failedNodes isolated and
// the edges in failedEdges removed. This is the network that remains after a
// failure scenario Gf.
func (g *Graph) Residual(failedNodes []int, failedEdges []Edge) *Graph {
	r := g.Clone()
	for _, id := range failedNodes {
		r.IsolateVertex(id)
	}
	for _, e := range failedEdges {
		r.RemoveEdge(e.U, e.V)
	}
	return r
}

// IsSubgraphOf reports whether every edge of g also exists in super. Vertex
// sets are assumed to be shared (same scenario), which holds throughout
// NPTSN since Gt and Gf are subgraphs of Gc over the same vertex indices.
func (g *Graph) IsSubgraphOf(super *Graph) bool {
	if g.NumVertices() > super.NumVertices() {
		return false
	}
	for u := range g.adj {
		for v := range g.adj[u] {
			if !super.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// Connected reports whether vertices s and d are in the same connected
// component.
func (g *Graph) Connected(s, d int) bool {
	if s == d {
		return true
	}
	if s < 0 || d < 0 || s >= len(g.adj) || d >= len(g.adj) {
		return false
	}
	seen := make([]bool, len(g.adj))
	queue := []int{s}
	seen[s] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for n := range g.adj[cur] {
			if n == d {
				return true
			}
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return false
}

// ComponentOf returns the IDs of the connected component containing id,
// sorted ascending.
func (g *Graph) ComponentOf(id int) []int {
	if id < 0 || id >= len(g.adj) {
		return nil
	}
	seen := make([]bool, len(g.adj))
	queue := []int{id}
	seen[id] = true
	comp := []int{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for n := range g.adj[cur] {
			if !seen[n] {
				seen[n] = true
				comp = append(comp, n)
				queue = append(queue, n)
			}
		}
	}
	sort.Ints(comp)
	return comp
}

// HopDistances returns BFS hop counts from src to every vertex; unreachable
// vertices get -1.
func (g *Graph) HopDistances(src int) []int {
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= len(g.adj) {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for n := range g.adj[cur] {
			if dist[n] == -1 {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// AdjacencyMatrix returns the |V|×|V| 0/1 adjacency matrix as a row-major
// float64 slice, the representation consumed by the GCN layer (Eq. 4).
func (g *Graph) AdjacencyMatrix() []float64 {
	n := len(g.vertices)
	m := make([]float64, n*n)
	for u := range g.adj {
		for v := range g.adj[u] {
			m[u*n+v] = 1
		}
	}
	return m
}

func (g *Graph) checkID(id int) error {
	if id < 0 || id >= len(g.vertices) {
		return fmt.Errorf("vertex %d out of range [0,%d)", id, len(g.vertices))
	}
	return nil
}
