package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// allLooplessPaths enumerates every loopless s→d path by exhaustive DFS —
// the brute-force oracle for Yen's algorithm on small graphs.
func allLooplessPaths(g *Graph, s, d int) []Path {
	var paths []Path
	visited := make(map[int]bool)
	var walk func(p Path)
	walk = func(p Path) {
		at := p[len(p)-1]
		if at == d {
			paths = append(paths, p.Clone())
			return
		}
		for _, n := range g.Neighbors(at) {
			if visited[n] {
				continue
			}
			visited[n] = true
			walk(append(p, n))
			visited[n] = false
		}
	}
	visited[s] = true
	walk(Path{s})
	return paths
}

// randomTestGraph builds a connected-ish random graph with deliberately
// tied edge lengths (small integers) to stress tie-breaking.
func randomTestGraph(rng *rand.Rand) *Graph {
	g := New()
	n := 4 + rng.Intn(5) // 4..8 vertices
	for i := 0; i < n; i++ {
		g.AddVertex("", KindSwitch)
	}
	// A random spanning chain keeps most graphs connected, then extra
	// random edges add alternative routes.
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i-1, i, float64(1+rng.Intn(3))); err != nil {
			panic(err)
		}
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v, float64(1+rng.Intn(3))); err != nil {
			panic(err)
		}
	}
	return g
}

// TestKShortestPathsAgainstBruteForce checks Yen's algorithm against
// exhaustive loopless path enumeration on random graphs: the returned
// paths must be exactly min(k, total) valid loopless duplicates-free
// paths whose length sequence matches the k shortest lengths overall,
// in non-decreasing order, and the result must be deterministic.
func TestKShortestPathsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g := randomTestGraph(rng)
		n := g.NumVertices()
		s, d := 0, n-1

		oracle := allLooplessPaths(g, s, d)
		sort.Slice(oracle, func(a, b int) bool {
			la, lb := oracle[a].Length(g), oracle[b].Length(g)
			if la != lb {
				return la < lb
			}
			return lexLess(oracle[a], oracle[b])
		})

		for _, k := range []int{1, 2, 4, 16, len(oracle) + 3} {
			got, err := g.KShortestPaths(s, d, k)
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			want := k
			if len(oracle) < k {
				want = len(oracle)
			}
			if len(got) != want {
				t.Fatalf("trial %d k=%d: got %d paths, brute force says %d available",
					trial, k, len(got), len(oracle))
			}
			seen := make(map[string]bool)
			prev := 0.0
			for i, p := range got {
				if p.Source() != s || p.Dest() != d {
					t.Fatalf("trial %d: path %v does not connect %d→%d", trial, p, s, d)
				}
				if !p.Loopless() {
					t.Fatalf("trial %d: path %v has a loop", trial, p)
				}
				for j := 1; j < len(p); j++ {
					if !g.HasEdge(p[j-1], p[j]) {
						t.Fatalf("trial %d: path %v uses missing edge %d-%d", trial, p, p[j-1], p[j])
					}
				}
				key := pathKey(p)
				if seen[key] {
					t.Fatalf("trial %d: duplicate path %v", trial, p)
				}
				seen[key] = true
				l := p.Length(g)
				if l < prev {
					t.Fatalf("trial %d: lengths not non-decreasing at %d: %v", trial, i, got)
				}
				prev = l
				if want := oracle[i].Length(g); l != want {
					t.Fatalf("trial %d k=%d: path %d has length %v, brute force says %v",
						trial, k, i, l, want)
				}
			}

			again, err := g.KShortestPaths(s, d, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if !got[i].Equal(again[i]) {
					t.Fatalf("trial %d k=%d: nondeterministic result at %d: %v vs %v",
						trial, k, i, got[i], again[i])
				}
			}
		}
	}
}

func pathKey(p Path) string {
	key := make([]byte, 0, 2*len(p))
	for _, v := range p {
		key = append(key, byte(v), ',')
	}
	return string(key)
}
