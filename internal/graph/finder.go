package graph

import (
	"math"
	"sort"
	"sync"
)

// PathFinder is a reusable path-search engine over one graph: Dijkstra
// shortest paths and Yen's K-shortest-paths with all working state —
// adjacency snapshot, priority queue, distance/visited arrays, constraint
// stamps and path buffers — owned by the finder and recycled across calls.
// The scheduler runs a Dijkstra per heap pop worth of work thousands of
// times per NBF evaluation; routing those calls through one finder removes
// every per-call allocation of the naive Graph methods.
//
// A finder is bound to the graph state captured by the last Reset; mutating
// the graph afterwards requires another Reset. Returned paths (and the
// slices holding them) are borrowed finder scratch, valid until the next
// call on the same finder — callers that retain them must Clone. A finder
// is not safe for concurrent use.
type PathFinder struct {
	g *Graph
	n int

	// CSR adjacency snapshot: neighbors of u are nbrs[off[u]:off[u+1]],
	// sorted ascending (the deterministic tie-breaking order), with edge
	// lengths in the parallel lens run.
	off  []int
	nbrs []int
	lens []float64

	// Dijkstra state.
	dist []float64
	prev []int
	done []bool
	q    []pqItem

	// Constraint set (Yen's spur bans), cleared by bumping banGen.
	banStamp    []int
	banGen      int
	bannedEdges []Edge

	// seenStamp backs the allocation-free looplessness check.
	seenStamp []int
	seenGen   int

	// Path buffers: pathBuf holds the latest Dijkstra reconstruction,
	// totalBuf the assembled root+spur path; free recycles the buffers
	// claimed by results and candidates of previous calls.
	pathBuf  []int
	totalBuf []int
	free     [][]int

	result []Path
	cands  candList
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	id   int
	dist float64
}

type candidate struct {
	path Path
	len  float64
}

// candList orders candidates by (length, lexicographic path), the
// deterministic tie-breaking of Yen's candidate pool. Sorted via a pointer
// receiver so the interface conversion does not allocate.
type candList []candidate

func (c *candList) Len() int      { return len(*c) }
func (c *candList) Swap(i, j int) { (*c)[i], (*c)[j] = (*c)[j], (*c)[i] }
func (c *candList) Less(i, j int) bool {
	a, b := (*c)[i], (*c)[j]
	if a.len != b.len {
		return a.len < b.len
	}
	return lexLess(a.path, b.path)
}

// NewPathFinder returns an empty finder; Reset binds it to a graph.
func NewPathFinder() *PathFinder { return &PathFinder{} }

// finderPool recycles finders for the Graph-level convenience wrappers.
var finderPool = sync.Pool{New: func() any { return NewPathFinder() }}

// AcquireFinder returns a pooled finder bound to g. Release it with
// ReleaseFinder when done with its results.
func AcquireFinder(g *Graph) *PathFinder {
	f := finderPool.Get().(*PathFinder)
	f.Reset(g)
	return f
}

// ReleaseFinder returns a finder to the pool; its outstanding results become
// invalid.
func ReleaseFinder(f *PathFinder) {
	f.g = nil // do not pin the graph in the pool
	finderPool.Put(f)
}

func ensureInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func ensureFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func ensureBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// Reset snapshots g's adjacency into the finder's CSR arrays and sizes the
// search state, reusing all previously grown buffers.
func (f *PathFinder) Reset(g *Graph) {
	f.g = g
	n := g.NumVertices()
	f.n = n

	f.off = ensureInts(f.off, n+1)
	total := 0
	for u := 0; u < n; u++ {
		f.off[u] = total
		total += len(g.adj[u])
	}
	f.off[n] = total
	f.nbrs = ensureInts(f.nbrs, total)
	f.lens = ensureFloats(f.lens, total)
	for u := 0; u < n; u++ {
		k := f.off[u]
		for v, l := range g.adj[u] {
			f.nbrs[k] = v
			f.lens[k] = l
			k++
		}
		// Insertion-sort the run ascending by neighbor ID (runs are node
		// degrees, i.e. tiny); map iteration order never leaks out.
		for i := f.off[u] + 1; i < k; i++ {
			nb, ln := f.nbrs[i], f.lens[i]
			j := i - 1
			for j >= f.off[u] && f.nbrs[j] > nb {
				f.nbrs[j+1], f.lens[j+1] = f.nbrs[j], f.lens[j]
				j--
			}
			f.nbrs[j+1], f.lens[j+1] = nb, ln
		}
	}

	f.dist = ensureFloats(f.dist, n)
	f.prev = ensureInts(f.prev, n)
	f.done = ensureBools(f.done, n)
	// Stamp arrays may carry stamps from earlier bindings; the generation
	// counters only ever increase, so stale stamps can never match.
	f.banStamp = ensureInts(f.banStamp, n)
	f.seenStamp = ensureInts(f.seenStamp, n)
}

// recycle reclaims the path buffers handed out by the previous call.
func (f *PathFinder) recycle() {
	for _, p := range f.result {
		f.free = append(f.free, p)
	}
	f.result = f.result[:0]
	for _, c := range f.cands {
		f.free = append(f.free, c.path)
	}
	f.cands = f.cands[:0]
}

// claim copies p into a recycled buffer the finder owns.
func (f *PathFinder) claim(p []int) Path {
	var buf []int
	if n := len(f.free); n > 0 {
		buf = f.free[n-1][:0]
		f.free = f.free[:n-1]
	}
	return append(buf, p...)
}

func (f *PathFinder) clearConstraints() {
	f.banGen++
	f.bannedEdges = f.bannedEdges[:0]
}

func (f *PathFinder) banNode(id int) { f.banStamp[id] = f.banGen }

func (f *PathFinder) banEdge(e Edge) { f.bannedEdges = append(f.bannedEdges, e.Canonical()) }

func (f *PathFinder) nodeBanned(id int) bool { return f.banStamp[id] == f.banGen }

func (f *PathFinder) edgeBanned(u, v int) bool {
	e := Edge{U: u, V: v}.Canonical()
	for _, b := range f.bannedEdges {
		if b.U == e.U && b.V == e.V {
			return true
		}
	}
	return false
}

// loopless reports whether p visits no vertex twice (stamp-based, no map).
func (f *PathFinder) loopless(p []int) bool {
	f.seenGen++
	for _, v := range p {
		if f.seenStamp[v] == f.seenGen {
			return false
		}
		f.seenStamp[v] = f.seenGen
	}
	return true
}

// pushItem and popItem implement the binary heap with exactly the sift
// order of container/heap over the old pq type, so pop order — and with it
// every tie-broken path — is bit-identical to the previous implementation.
func (f *PathFinder) pushItem(it pqItem) {
	f.q = append(f.q, it)
	j := len(f.q) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(f.q[j].dist < f.q[i].dist) {
			break
		}
		f.q[i], f.q[j] = f.q[j], f.q[i]
		j = i
	}
}

func (f *PathFinder) popItem() pqItem {
	n := len(f.q) - 1
	f.q[0], f.q[n] = f.q[n], f.q[0]
	it := f.q[n]
	f.q = f.q[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && f.q[r].dist < f.q[l].dist {
			j = r
		}
		if !(f.q[j].dist < f.q[i].dist) {
			break
		}
		f.q[i], f.q[j] = f.q[j], f.q[i]
		i = j
	}
	return it
}

// dijkstra runs the constrained shortest-path search under the current ban
// set and returns the path in f.pathBuf (borrowed until the next search).
// The algorithm — visit order, tie-breaking, reconstruction — mirrors the
// original Graph.shortestPathConstrained exactly.
func (f *PathFinder) dijkstra(s, d int) (Path, error) {
	n := f.n
	if s < 0 || s >= n || d < 0 || d >= n {
		return nil, ErrNoPath
	}
	if f.nodeBanned(s) || f.nodeBanned(d) {
		return nil, ErrNoPath
	}
	if s == d {
		f.pathBuf = append(f.pathBuf[:0], s)
		return f.pathBuf, nil
	}
	for i := 0; i < n; i++ {
		f.dist[i] = math.Inf(1)
		f.prev[i] = -1
		f.done[i] = false
	}
	f.dist[s] = 0
	f.q = append(f.q[:0], pqItem{id: s, dist: 0})
	for len(f.q) > 0 {
		cur := f.popItem()
		if f.done[cur.id] {
			continue
		}
		f.done[cur.id] = true
		if cur.id == d {
			break
		}
		// Neighbors ascend within the CSR run: deterministic tie-breaking.
		for k := f.off[cur.id]; k < f.off[cur.id+1]; k++ {
			nb := f.nbrs[k]
			if f.done[nb] || f.nodeBanned(nb) || f.edgeBanned(cur.id, nb) {
				continue
			}
			nd := f.dist[cur.id] + f.lens[k]
			if nd < f.dist[nb] || (nd == f.dist[nb] && f.prev[nb] > cur.id && f.prev[nb] != -1) {
				f.dist[nb] = nd
				f.prev[nb] = cur.id
				f.pushItem(pqItem{id: nb, dist: nd})
			}
		}
	}
	if math.IsInf(f.dist[d], 1) {
		return nil, ErrNoPath
	}
	f.pathBuf = f.pathBuf[:0]
	for at := d; at != -1; at = f.prev[at] {
		f.pathBuf = append(f.pathBuf, at)
	}
	for i, j := 0, len(f.pathBuf)-1; i < j; i, j = i+1, j-1 {
		f.pathBuf[i], f.pathBuf[j] = f.pathBuf[j], f.pathBuf[i]
	}
	return f.pathBuf, nil
}

// ShortestPath returns the minimum-length path from s to d on the bound
// graph. The result is borrowed finder scratch.
func (f *PathFinder) ShortestPath(s, d int) (Path, error) {
	f.recycle()
	f.clearConstraints()
	return f.dijkstra(s, d)
}

// KShortestPaths runs Yen's algorithm on the bound graph. Paths come back
// in non-decreasing length order with deterministic tie-breaking, exactly
// as Graph.KShortestPaths produces them; the returned slice and paths are
// borrowed finder scratch, valid until the next call.
func (f *PathFinder) KShortestPaths(s, d, k int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	f.recycle()
	f.clearConstraints()
	first, err := f.dijkstra(s, d)
	if err != nil {
		return nil, err
	}
	f.result = append(f.result, f.claim(first))

	for len(f.result) < k {
		prev := f.result[len(f.result)-1]
		// Each vertex of the previous path except the destination is a spur
		// node.
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			root := prev[:i+1]

			f.clearConstraints()
			// Ban edges that would recreate a previously found path sharing
			// this root.
			for _, r := range f.result {
				if len(r) > i && r[:i+1].Equal(root) {
					f.banEdge(Edge{U: r[i], V: r[i+1]})
				}
			}
			// Ban root vertices (except the spur) to keep paths loopless.
			for _, v := range root[:len(root)-1] {
				f.banNode(v)
			}

			spurPath, err := f.dijkstra(spur, d)
			if err != nil {
				continue
			}
			f.totalBuf = append(f.totalBuf[:0], root[:len(root)-1]...)
			f.totalBuf = append(f.totalBuf, spurPath...)
			total := Path(f.totalBuf)
			if !f.loopless(total) || havePath(f.result, total) || f.haveCandidate(total) {
				continue
			}
			f.cands = append(f.cands, candidate{path: f.claim(total), len: total.Length(f.g)})
		}
		if len(f.cands) == 0 {
			break
		}
		sort.Stable(&f.cands)
		f.result = append(f.result, f.cands[0].path)
		f.cands = f.cands[1:]
	}
	return f.result, nil
}

func havePath(ps []Path, p Path) bool {
	for _, q := range ps {
		if q.Equal(p) {
			return true
		}
	}
	return false
}

func (f *PathFinder) haveCandidate(p Path) bool {
	for _, c := range f.cands {
		if c.path.Equal(p) {
			return true
		}
	}
	return false
}
