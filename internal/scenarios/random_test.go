package scenarios

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/nbf"
)

func TestRandomScenarioBasics(t *testing.T) {
	s, err := Random(RandomOptions{
		EndStations: 6, Switches: 3,
		ESLinkProb: 0.5, SWLinkProb: 0.5,
		MaxLength: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Connections.VerticesOfKind(graph.KindEndStation)); got != 6 {
		t.Fatalf("ES = %d", got)
	}
	if got := len(s.Connections.VerticesOfKind(graph.KindSwitch)); got != 3 {
		t.Fatalf("SW = %d", got)
	}
	// Problems built on it must validate.
	prob := s.Problem(s.RandomFlows(4, 2), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomScenarioValidation(t *testing.T) {
	if _, err := Random(RandomOptions{EndStations: 1, Switches: 2}); err == nil {
		t.Error("1 ES accepted")
	}
	if _, err := Random(RandomOptions{EndStations: 2, Switches: 1}); err == nil {
		t.Error("1 switch accepted")
	}
	if _, err := Random(RandomOptions{EndStations: 2, Switches: 2, ESLinkProb: 2}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := Random(RandomOptions{EndStations: 2, Switches: 2, Seed: 1, BasePeriod: 7, SlotsPerBase: 2}); err == nil {
		t.Error("indivisible base period accepted")
	}
	if _, err := Random(RandomOptions{EndStations: 2, Switches: 2, Seed: 1, MaxLength: 0.5}); err == nil {
		t.Error("MaxLength in (0,1) accepted; it would silently collapse to unit lengths")
	}
	if _, err := Random(RandomOptions{EndStations: 2, Switches: 2, Seed: 1, MaxLength: -2}); err == nil {
		t.Error("negative MaxLength accepted")
	}
	if _, err := Random(RandomOptions{EndStations: 2, Switches: 2}); err == nil {
		t.Error("zero seed accepted; it is indistinguishable from an unset option")
	}
	// 0 and 1 are both the documented unit-length settings.
	for _, ml := range []float64{0, 1} {
		s, err := Random(RandomOptions{EndStations: 2, Switches: 2, Seed: 1, MaxLength: ml})
		if err != nil {
			t.Fatalf("MaxLength %g rejected: %v", ml, err)
		}
		for _, e := range s.Connections.Edges() {
			if e.Length != 1 {
				t.Fatalf("MaxLength %g produced length %g", ml, e.Length)
			}
		}
	}
}

func TestRandomScenarioProperties(t *testing.T) {
	prop := func(seed int64) bool {
		if seed == 0 {
			seed = 1 // zero seeds are rejected by design
		}
		s, err := Random(RandomOptions{
			EndStations: 4 + int(seed%5+5)%5, Switches: 2 + int(seed%3+3)%3,
			ESLinkProb: 0.3, SWLinkProb: 0.4, MaxLength: 2, Seed: seed,
		})
		if err != nil {
			return false
		}
		g := s.Connections
		// Every ES has at least 2 candidate attachments.
		for _, es := range g.VerticesOfKind(graph.KindEndStation) {
			if g.Degree(es) < 2 {
				return false
			}
			// No ES-ES links.
			for _, n := range g.Neighbors(es) {
				if g.Kind(n) != graph.KindSwitch {
					return false
				}
			}
		}
		// Switch backbone connected.
		sws := g.VerticesOfKind(graph.KindSwitch)
		for _, sw := range sws[1:] {
			if !g.Connected(sws[0], sw) {
				return false
			}
		}
		// Lengths within [1, 2].
		for _, e := range g.Edges() {
			if e.Length < 1 || e.Length > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomScenarioDeterministic(t *testing.T) {
	opts := RandomOptions{EndStations: 5, Switches: 3, ESLinkProb: 0.5, SWLinkProb: 0.5, Seed: 9}
	a, err := Random(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(opts)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Connections.Edges(), b.Connections.Edges()
	if len(ea) != len(eb) {
		t.Fatal("not deterministic")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("edges differ across identical seeds")
		}
	}
}
