package scenarios

import (
	"fmt"
	"math/rand"

	"repro/internal/nbf"
	"repro/internal/serialize"
)

// ChurnTrace is a base problem spec plus a sequence of spec diffs, modeling
// the flow churn a vehicle program sees across planning runs: functions are
// added and retired, and harness links go bad and come back. Each step's
// delta applies to the problem produced by the previous step (not to the
// original base), so a trace replays as a chain of incremental re-plans —
// exactly what the warm-start evaluation measures.
type ChurnTrace struct {
	// Name identifies the trace (scenario + churn parameters + seed).
	Name string
	// Base is the initial problem spec.
	Base serialize.ProblemJSON
	// Steps are the spec diffs, each relative to its predecessor's output.
	Steps []serialize.DeltaJSON
}

// ChurnOptions parameterizes Churn.
type ChurnOptions struct {
	// Scenario is the topology the trace runs over. Required.
	Scenario *Scenario
	// BaseFlows is the initial flow count (default 4).
	BaseFlows int
	// Steps is the number of deltas to emit (default 4).
	Steps int
	// AddsPerStep and RemovesPerStep bound the flow churn each delta carries
	// (defaults 1 and 0; pass AddsPerStep = -1 for a remove-only trace).
	// Removals drop the oldest surviving flows and are capped so at least
	// one flow always remains.
	AddsPerStep    int
	RemovesPerStep int
	// DamageLinks, when true, lets a step damage one switch-switch candidate
	// link whose removal keeps the backbone connected; the next step restores
	// it. End-station attachments are never damaged.
	DamageLinks bool
	// ReliabilityGoal is the base goal (default 1e-6).
	ReliabilityGoal float64
	// Recovery names the NBF used in the encoded base (default
	// "stateless-greedy").
	Recovery string
	// Seed drives flow generation and churn choices; must be non-zero, for
	// the same reason Random rejects zero seeds.
	Seed int64
}

// Churn generates a base+delta trace over the scenario. Every emitted delta
// is validated by actually applying it (via serialize.ApplyDelta) to the
// running spec while the trace is built, so a returned trace is guaranteed
// to replay cleanly step by step.
func Churn(opts ChurnOptions) (*ChurnTrace, error) {
	if opts.Scenario == nil {
		return nil, fmt.Errorf("churn trace: Scenario is required")
	}
	if opts.Seed == 0 {
		return nil, fmt.Errorf("churn trace: seed must be non-zero (0 is indistinguishable from an unset option)")
	}
	if opts.BaseFlows <= 0 {
		opts.BaseFlows = 4
	}
	if opts.Steps <= 0 {
		opts.Steps = 4
	}
	if opts.AddsPerStep == 0 {
		opts.AddsPerStep = 1
	} else if opts.AddsPerStep < 0 {
		opts.AddsPerStep = 0
	}
	if opts.RemovesPerStep < 0 {
		opts.RemovesPerStep = 0
	}
	if opts.ReliabilityGoal <= 0 {
		opts.ReliabilityGoal = 1e-6
	}
	if opts.Recovery == "" {
		opts.Recovery = "stateless-greedy"
	}
	reg := nbf.NewRegistry()
	recovery, err := reg.New(opts.Recovery)
	if err != nil {
		return nil, fmt.Errorf("churn trace: %w", err)
	}

	s := opts.Scenario
	prob := s.Problem(s.RandomFlows(opts.BaseFlows, opts.Seed), recovery, opts.ReliabilityGoal)
	if err := prob.Validate(); err != nil {
		return nil, fmt.Errorf("churn trace: base problem: %w", err)
	}
	base := serialize.EncodeProblem(prob, opts.Recovery)

	rng := rand.New(rand.NewSource(opts.Seed ^ 0x636875726e)) // distinct stream from flow gen
	trace := &ChurnTrace{
		Name: fmt.Sprintf("churn-%s-%df-%ds-%d", s.Name, opts.BaseFlows, opts.Steps, opts.Seed),
		Base: base,
	}

	cur := base
	nextID := 0
	for _, f := range cur.Flows {
		if f.ID >= nextID {
			nextID = f.ID + 1
		}
	}
	var damaged *serialize.EdgeJSON // link the previous step damaged, if any
	for step := 0; step < opts.Steps; step++ {
		var d serialize.DeltaJSON
		// Removals first: drop the oldest surviving flows, keeping >= 1.
		removable := len(cur.Flows) - 1
		for i := 0; i < opts.RemovesPerStep && i < removable; i++ {
			d.RemoveFlows = append(d.RemoveFlows, cur.Flows[i].ID)
		}
		// Additions: fresh IDs past every ID ever used, fresh flow shapes.
		adds := newFlows(s, rng, opts.AddsPerStep, nextID, cur.BasePeriodNs)
		nextID += len(adds)
		d.AddFlows = adds
		// Link churn: restore last step's damage, then maybe damage anew.
		if damaged != nil {
			d.RestoreLinks = append(d.RestoreLinks, *damaged)
			damaged = nil
		} else if opts.DamageLinks {
			if e := removableBackboneLink(cur, rng); e != nil {
				d.DamageLinks = append(d.DamageLinks, serialize.LinkRefJSON{U: e.U, V: e.V})
				cp := *e
				damaged = &cp
			}
		}

		next, err := serialize.ApplyDelta(cur, d)
		if err != nil {
			return nil, fmt.Errorf("churn trace: step %d does not apply: %w", step, err)
		}
		trace.Steps = append(trace.Steps, d)
		cur = next
	}
	return trace, nil
}

// newFlows draws n fresh unicast flows with IDs firstID.. over the
// scenario's end stations, mirroring RandomFlows but at the JSON level.
func newFlows(s *Scenario, rng *rand.Rand, n, firstID int, periodNs int64) []serialize.FlowJSON {
	es := make([]int, 0)
	for _, v := range serialize.EncodeGraph(s.Connections).Vertices {
		if v.Kind == "es" {
			es = append(es, v.ID)
		}
	}
	out := make([]serialize.FlowJSON, 0, n)
	for i := 0; i < n; i++ {
		src := es[rng.Intn(len(es))]
		dst := es[rng.Intn(len(es))]
		for dst == src {
			dst = es[rng.Intn(len(es))]
		}
		out = append(out, serialize.FlowJSON{
			ID:         firstID + i,
			Name:       fmt.Sprintf("%s-churn-%d", s.Name, firstID+i),
			Src:        src,
			Dsts:       []int{dst},
			PeriodNs:   periodNs,
			DeadlineNs: periodNs,
			FrameSize:  100 + rng.Intn(400),
		})
	}
	return out
}

// removableBackboneLink picks a random switch-switch edge whose removal
// keeps the switch backbone connected (so the derived problem still admits
// redundant plans). Returns nil when no such edge exists.
func removableBackboneLink(spec serialize.ProblemJSON, rng *rand.Rand) *serialize.EdgeJSON {
	isSwitch := make(map[int]bool, len(spec.Connections.Vertices))
	var switches []int
	for _, v := range spec.Connections.Vertices {
		if v.Kind == "sw" {
			isSwitch[v.ID] = true
			switches = append(switches, v.ID)
		}
	}
	var candidates []serialize.EdgeJSON
	for _, e := range spec.Connections.Edges {
		if isSwitch[e.U] && isSwitch[e.V] && backboneConnectedWithout(spec, switches, e) {
			candidates = append(candidates, e)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	e := candidates[rng.Intn(len(candidates))]
	return &e
}

// backboneConnectedWithout runs a BFS over the switch-switch edges of spec,
// skipping the candidate edge, and reports whether all switches stay in one
// component.
func backboneConnectedWithout(spec serialize.ProblemJSON, switches []int, skip serialize.EdgeJSON) bool {
	if len(switches) <= 1 {
		return true
	}
	isSwitch := make(map[int]bool, len(switches))
	for _, id := range switches {
		isSwitch[id] = true
	}
	adj := make(map[int][]int, len(switches))
	for _, e := range spec.Connections.Edges {
		if !isSwitch[e.U] || !isSwitch[e.V] {
			continue
		}
		if sameUndirected(e, skip) {
			continue
		}
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	seen := map[int]bool{switches[0]: true}
	queue := []int{switches[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return len(seen) == len(switches)
}

func sameUndirected(a, b serialize.EdgeJSON) bool {
	return (a.U == b.U && a.V == b.V) || (a.U == b.V && a.V == b.U)
}
