// Package scenarios provides the two design scenarios of the paper's
// evaluation (§VI): ORION, the aerospace network abstracted from the ORION
// crew exploration vehicle [30] (31 end stations, 15 optional switches,
// optional links between node pairs within 3 hops of the original
// topology), and ADS, the autonomous-driving system of [31] (12 end
// stations, 4 optional switches, the complete 54-link connection set).
//
// The exact ORION topology drawing is not in the paper, so the original
// network here is a faithful reconstruction from the published constraints:
// every end station single-homed to one switch (making all-ASIL-D the only
// valid static allocation), a meshed switch backbone needing up to 8-port
// switches, and the stated vertex counts. The substitution is documented in
// DESIGN.md.
package scenarios

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// Scenario bundles a connection graph with the evaluation's timing setup
// and (for ORION) the manually designed original topology.
type Scenario struct {
	Name string
	// Connections is Gc.
	Connections *graph.Graph
	// Original is the manual reference topology (nil when none exists).
	Original *graph.Graph
	// Net is the TAS configuration (500 µs base period, 20 slots).
	Net tsn.Network
}

// Problem builds a planning problem over the scenario.
func (s *Scenario) Problem(flows tsn.FlowSet, recovery nbf.NBF, r float64) *core.Problem {
	return &core.Problem{
		Connections:     s.Connections,
		Net:             s.Net,
		Flows:           flows,
		NBF:             recovery,
		ReliabilityGoal: r,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
		ESLevel:         asil.LevelD,
	}
}

// RandomFlows generates n periodic unicast TT flows with period and
// deadline equal to the base period, sources and destinations drawn
// uniformly from distinct end stations (§VI-A).
func (s *Scenario) RandomFlows(n int, seed int64) tsn.FlowSet {
	rng := rand.New(rand.NewSource(seed))
	es := s.Connections.VerticesOfKind(graph.KindEndStation)
	fs := make(tsn.FlowSet, 0, n)
	for i := 0; i < n; i++ {
		src := es[rng.Intn(len(es))]
		dst := es[rng.Intn(len(es))]
		for dst == src {
			dst = es[rng.Intn(len(es))]
		}
		fs = append(fs, tsn.Flow{
			ID:        i,
			Name:      fmt.Sprintf("%s-tt-%d", s.Name, i),
			Src:       src,
			Dsts:      []int{dst},
			Period:    s.Net.BasePeriod,
			Deadline:  s.Net.BasePeriod,
			FrameSize: 100 + rng.Intn(400),
		})
	}
	return fs
}

// evalNetwork is the §VI-A timing setup: B = 500 µs divided into 20 slots.
func evalNetwork() tsn.Network {
	return tsn.Network{BasePeriod: 500 * time.Microsecond, SlotsPerBase: 20}
}

// ByName builds the named built-in scenario ("orion" or "ads").
func ByName(name string) (*Scenario, error) {
	switch name {
	case "orion":
		return ORION()
	case "ads":
		return ADS()
	default:
		return nil, fmt.Errorf("unknown scenario %q (want ads or orion)", name)
	}
}

// ORION builds the ORION design scenario: 31 end stations, 15 optional
// switches, and an optional link for every valid node pair within 3 hops
// of the original topology.
func ORION() (*Scenario, error) {
	original := graph.New()
	// 31 end stations (IDs 0..30).
	for i := 0; i < 31; i++ {
		original.AddVertex(fmt.Sprintf("es%d", i), graph.KindEndStation)
	}
	// 15 switches (IDs 31..45).
	sw := make([]int, 15)
	for i := range sw {
		sw[i] = original.AddVertex(fmt.Sprintf("sw%d", i), graph.KindSwitch)
	}
	// Switch backbone: a 15-switch ring, the layout whose 3-hop optional
	// link expansion lands closest to the paper's |Ec| = 189 (ours: 200).
	for i := 0; i < 15; i++ {
		if err := original.AddEdge(sw[i], sw[(i+1)%15], 1); err != nil {
			return nil, fmt.Errorf("orion: backbone: %w", err)
		}
	}
	// Every end station single-homed — the property §VI-A relies on:
	// single-point switch failures isolate end stations, so the manual
	// design is only valid with ASIL-D everywhere. The distribution is
	// uneven (integration hubs host more devices), which is what pushes the
	// largest switch to 8 ports, matching the paper's note that ORION needs
	// switches with up to 8 ports.
	esPerSwitch := []int{6, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 1, 1, 1} // sums to 31
	esID := 0
	for i, count := range esPerSwitch {
		for j := 0; j < count; j++ {
			if err := original.AddEdge(esID, sw[i], 1); err != nil {
				return nil, fmt.Errorf("orion: end station %d: %w", esID, err)
			}
			esID++
		}
	}

	// Connection graph: all original links plus any ES-SW or SW-SW pair
	// within 3 hops of each other in the original topology.
	gc := original.Clone()
	for u := 0; u < original.NumVertices(); u++ {
		dist := original.HopDistances(u)
		for v := u + 1; v < original.NumVertices(); v++ {
			if dist[v] < 1 || dist[v] > 3 {
				continue
			}
			if original.Kind(u) == graph.KindEndStation && original.Kind(v) == graph.KindEndStation {
				continue // direct ES-ES links are not valid TSSDN links
			}
			if !gc.HasEdge(u, v) {
				if err := gc.AddEdge(u, v, 1); err != nil {
					return nil, fmt.Errorf("orion: optional link (%d,%d): %w", u, v, err)
				}
			}
		}
	}
	return &Scenario{Name: "orion", Connections: gc, Original: original, Net: evalNetwork()}, nil
}

// ADS builds the autonomous-driving-system scenario of [31]: 12 end
// stations, 4 optional switches and the complete connection set minus
// direct ES-ES links — 12×4 + C(4,2) = 54 optional links (§VI-B).
func ADS() (*Scenario, error) {
	gc := graph.New()
	names := []string{
		"lidar-front", "lidar-rear", "camera-front", "camera-rear",
		"radar", "gnss-imu", "vehicle-state", "behavior-planner",
		"motion-planner", "steering-ecu", "brake-ecu", "hmi",
	}
	for _, n := range names {
		gc.AddVertex(n, graph.KindEndStation)
	}
	sw := make([]int, 4)
	for i := range sw {
		sw[i] = gc.AddVertex(fmt.Sprintf("sw%d", i), graph.KindSwitch)
	}
	for es := 0; es < 12; es++ {
		for _, s := range sw {
			if err := gc.AddEdge(es, s, 1); err != nil {
				return nil, fmt.Errorf("ads: end station %d: %w", es, err)
			}
		}
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := gc.AddEdge(sw[i], sw[j], 1); err != nil {
				return nil, fmt.Errorf("ads: backbone: %w", err)
			}
		}
	}
	return &Scenario{Name: "ads", Connections: gc, Net: evalNetwork()}, nil
}

// ADSFlows generates the 12 flows of the ADS sensitivity test: two flows
// for each of the 7 safety applications of [31] except vehicle state
// estimation, which consumes data from the other sensing applications
// (7×2−2 = 12, §VI-B). Sources and destinations follow the application
// dataflow; frame sizes are seeded for reproducibility.
func ADSFlows(seed int64) tsn.FlowSet {
	rng := rand.New(rand.NewSource(seed))
	net := evalNetwork()
	// Application dataflows over the named end stations of ADS():
	// sensing apps feed vehicle-state (6); planning feeds actuation.
	pairs := [][2]int{
		{0, 6}, {0, 8}, // lidar-front -> vehicle-state, motion-planner
		{1, 6}, {1, 8}, // lidar-rear
		{2, 6}, {2, 7}, // camera-front -> vehicle-state, behavior-planner
		{3, 6}, {3, 7}, // camera-rear
		{4, 6}, {4, 8}, // radar
		{5, 6}, // gnss-imu -> vehicle-state
		{8, 9}, // motion-planner -> steering-ecu
	}
	fs := make(tsn.FlowSet, 0, len(pairs))
	for i, p := range pairs {
		fs = append(fs, tsn.Flow{
			ID:        i,
			Name:      fmt.Sprintf("ads-tt-%d", i),
			Src:       p[0],
			Dsts:      []int{p[1]},
			Period:    net.BasePeriod,
			Deadline:  net.BasePeriod,
			FrameSize: 100 + rng.Intn(400),
		})
	}
	return fs
}
