package scenarios

import (
	"encoding/json"
	"testing"

	"repro/internal/nbf"
	"repro/internal/serialize"
)

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestChurnTraceRepliesCleanly(t *testing.T) {
	s, err := Family("zonal", 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Churn(ChurnOptions{
		Scenario: s, BaseFlows: 3, Steps: 6,
		AddsPerStep: 2, RemovesPerStep: 1,
		DamageLinks: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Steps) != 6 {
		t.Fatalf("steps = %d, want 6", len(trace.Steps))
	}
	// Every step must apply to its predecessor's output, and the resulting
	// problem must decode and validate at each point of the chain.
	cur := trace.Base
	for i, d := range trace.Steps {
		next, err := serialize.ApplyDelta(cur, d)
		if err != nil {
			t.Fatalf("step %d does not apply: %v", i, err)
		}
		prob, err := serialize.DecodeProblem(next, nbf.NewRegistry())
		if err != nil {
			t.Fatalf("step %d output does not decode: %v", i, err)
		}
		if err := prob.Validate(); err != nil {
			t.Fatalf("step %d output does not validate: %v", i, err)
		}
		if len(next.Flows) == 0 {
			t.Fatalf("step %d left no flows", i)
		}
		cur = next
	}
}

func TestChurnTraceDamageRestores(t *testing.T) {
	s, err := Family("mesh", 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Churn(ChurnOptions{
		Scenario: s, BaseFlows: 2, Steps: 8,
		DamageLinks: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Damage and restore must alternate: a damaged link is restored by the
	// very next step, so the trace never strands the graph degraded for more
	// than one re-plan.
	var pendingDamage *serialize.LinkRefJSON
	sawDamage := false
	for i, d := range trace.Steps {
		if pendingDamage != nil {
			if len(d.RestoreLinks) != 1 || !sameLinkRef(*pendingDamage, d.RestoreLinks[0]) {
				t.Fatalf("step %d does not restore link damaged at step %d", i, i-1)
			}
			pendingDamage = nil
		} else if len(d.RestoreLinks) != 0 {
			t.Fatalf("step %d restores a link nothing damaged", i)
		}
		if len(d.DamageLinks) > 0 {
			sawDamage = true
			if len(d.DamageLinks) != 1 {
				t.Fatalf("step %d damages %d links, want at most 1", i, len(d.DamageLinks))
			}
			l := d.DamageLinks[0]
			pendingDamage = &l
		}
	}
	if !sawDamage {
		t.Fatal("mesh backbone has removable links but no step damaged one")
	}
}

func TestChurnDeterministic(t *testing.T) {
	s, err := Family("ring", 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := ChurnOptions{Scenario: s, BaseFlows: 3, Steps: 4, DamageLinks: true, Seed: 5}
	a, err := Churn(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(opts)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := mustJSON(t, a), mustJSON(t, b)
	if ja != jb {
		t.Fatal("identical options produced different traces")
	}
}

func TestChurnValidation(t *testing.T) {
	s, err := Family("ring", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Churn(ChurnOptions{Scenario: nil, Seed: 1}); err == nil {
		t.Error("nil scenario accepted")
	}
	if _, err := Churn(ChurnOptions{Scenario: s}); err == nil {
		t.Error("zero seed accepted")
	}
	if _, err := Churn(ChurnOptions{Scenario: s, Seed: 1, Recovery: "no-such-nbf"}); err == nil {
		t.Error("unknown recovery accepted")
	}
}

func sameLinkRef(a serialize.LinkRefJSON, e serialize.EdgeJSON) bool {
	return (a.U == e.U && a.V == e.V) || (a.U == e.V && a.V == e.U)
}
