package scenarios

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/graph"
)

// RandomOptions parameterizes a synthetic design scenario.
type RandomOptions struct {
	// EndStations and Switches set the vertex counts.
	EndStations int
	Switches    int
	// ESLinkProb is the probability of each optional ES-switch link beyond
	// the guaranteed two per end station.
	ESLinkProb float64
	// SWLinkProb is the probability of each optional switch-switch link
	// beyond the guaranteed connected backbone.
	SWLinkProb float64
	// MaxLength is the maximum cable length: lengths are drawn uniformly
	// from [1, MaxLength]. 0 and 1 both mean unit lengths (explicitly — a
	// degenerate interval, not an error); values in (0,1) or negative are
	// rejected, because they would silently collapse to unit lengths and
	// hide a typo'd option.
	MaxLength float64
	// BasePeriod and SlotsPerBase configure timing (defaults: 500 µs / 20).
	BasePeriod   time.Duration
	SlotsPerBase int
	// Seed drives all randomness and must be non-zero: a zero seed is
	// indistinguishable from an unset field, and a generator that silently
	// defaults would hand two "different" experiments the same topology.
	// Output is byte-stable: the same options always produce the same
	// scenario, on every run and every platform (the golden test pins it).
	Seed int64
}

// Random builds a synthetic design scenario: every end station gets at
// least two candidate switch attachments (so redundancy is possible), the
// switch backbone is connected, and extra candidate links appear with the
// configured probabilities. Useful for scale testing and fuzzing beyond
// the two published scenarios.
func Random(opts RandomOptions) (*Scenario, error) {
	if opts.EndStations < 2 {
		return nil, fmt.Errorf("random scenario: need at least 2 end stations")
	}
	if opts.Switches < 2 {
		return nil, fmt.Errorf("random scenario: need at least 2 switches")
	}
	if opts.ESLinkProb < 0 || opts.ESLinkProb > 1 || opts.SWLinkProb < 0 || opts.SWLinkProb > 1 {
		return nil, fmt.Errorf("random scenario: probabilities must be in [0,1]")
	}
	if opts.MaxLength < 0 || (opts.MaxLength > 0 && opts.MaxLength < 1) {
		return nil, fmt.Errorf("random scenario: MaxLength %g outside {0} ∪ [1,∞) (lengths are uniform in [1, MaxLength]; 0 or 1 = unit lengths)", opts.MaxLength)
	}
	if opts.Seed == 0 {
		return nil, fmt.Errorf("random scenario: seed must be non-zero (0 is indistinguishable from an unset option)")
	}
	net := evalNetwork()
	if opts.BasePeriod > 0 {
		net.BasePeriod = opts.BasePeriod
	}
	if opts.SlotsPerBase > 0 {
		net.SlotsPerBase = opts.SlotsPerBase
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("random scenario: %w", err)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	length := func() float64 {
		if opts.MaxLength <= 1 {
			return 1
		}
		return 1 + rng.Float64()*(opts.MaxLength-1)
	}

	g := graph.New()
	for i := 0; i < opts.EndStations; i++ {
		g.AddVertex(fmt.Sprintf("es%d", i), graph.KindEndStation)
	}
	sw := make([]int, opts.Switches)
	for i := range sw {
		sw[i] = g.AddVertex(fmt.Sprintf("sw%d", i), graph.KindSwitch)
	}
	// Connected switch backbone: random spanning tree plus extras.
	perm := rng.Perm(opts.Switches)
	for i := 1; i < opts.Switches; i++ {
		if err := g.AddEdge(sw[perm[i]], sw[perm[rng.Intn(i)]], length()); err != nil {
			return nil, err
		}
	}
	for i := 0; i < opts.Switches; i++ {
		for j := i + 1; j < opts.Switches; j++ {
			if !g.HasEdge(sw[i], sw[j]) && rng.Float64() < opts.SWLinkProb {
				if err := g.AddEdge(sw[i], sw[j], length()); err != nil {
					return nil, err
				}
			}
		}
	}
	// Every ES: two guaranteed candidate attachments + probabilistic rest.
	for es := 0; es < opts.EndStations; es++ {
		first := rng.Intn(opts.Switches)
		second := (first + 1 + rng.Intn(opts.Switches-1)) % opts.Switches
		if err := g.AddEdge(es, sw[first], length()); err != nil {
			return nil, err
		}
		if err := g.AddEdge(es, sw[second], length()); err != nil {
			return nil, err
		}
		for i := 0; i < opts.Switches; i++ {
			if i == first || i == second {
				continue
			}
			if rng.Float64() < opts.ESLinkProb {
				if err := g.AddEdge(es, sw[i], length()); err != nil {
					return nil, err
				}
			}
		}
	}
	return &Scenario{
		Name:        fmt.Sprintf("random-%des-%dsw-%d", opts.EndStations, opts.Switches, opts.Seed),
		Connections: g,
		Net:         net,
	}, nil
}
