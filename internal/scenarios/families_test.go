package scenarios

import (
	"fmt"
	"testing"

	"repro/internal/failure"
	"repro/internal/graph"
	"repro/internal/nbf"
)

// graphDigest hashes a scenario's connection graph into a stable hex
// string: vertex names/kinds in ID order, then edges in insertion order.
func graphDigest(g *graph.Graph) string {
	d := failure.NewDigest()
	d.Str("nptsn-scenario-graph-v1")
	for v := 0; v < g.NumVertices(); v++ {
		vert := g.MustVertex(v)
		d.Str(vert.Name)
		d.Int(int(vert.Kind))
	}
	for _, e := range g.Edges() {
		d.Int(e.U)
		d.Int(e.V)
		d.Float(e.Length)
	}
	return d.Sum()
}

func TestFamilyShapes(t *testing.T) {
	cases := []struct {
		family string
		es, sw int
	}{
		{"ring", 6, 3}, {"ring", 10, 5},
		{"mesh", 6, 2}, {"mesh", 8, 4},
		{"dualstar", 6, 2}, {"dualstar", 9, 5},
		{"zonal", 8, 4}, {"zonal", 12, 6},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-%des-%dsw", tc.family, tc.es, tc.sw), func(t *testing.T) {
			s, err := Family(tc.family, tc.es, tc.sw)
			if err != nil {
				t.Fatal(err)
			}
			g := s.Connections
			if got := len(g.VerticesOfKind(graph.KindEndStation)); got != tc.es {
				t.Fatalf("ES = %d, want %d", got, tc.es)
			}
			if got := len(g.VerticesOfKind(graph.KindSwitch)); got != tc.sw {
				t.Fatalf("SW = %d, want %d", got, tc.sw)
			}
			// Every ES: exactly two candidate attachments, both to switches.
			for _, es := range g.VerticesOfKind(graph.KindEndStation) {
				if d := g.Degree(es); d != 2 {
					t.Fatalf("es %d degree = %d, want 2", es, d)
				}
				for _, n := range g.Neighbors(es) {
					if g.Kind(n) != graph.KindSwitch {
						t.Fatalf("es %d linked to non-switch %d", es, n)
					}
				}
			}
			// Switch backbone connected.
			sws := g.VerticesOfKind(graph.KindSwitch)
			for _, sw := range sws[1:] {
				if !g.Connected(sws[0], sw) {
					t.Fatalf("backbone disconnected at switch %d", sw)
				}
			}
			// Problems built on it validate and MaxESDegree=2 is satisfiable.
			prob := s.Problem(s.RandomFlows(3, 1), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
			if err := prob.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFamilyValidation(t *testing.T) {
	if _, err := Family("ring", 4, 2); err == nil {
		t.Error("ring with 2 switches accepted (no cycle possible)")
	}
	if _, err := Family("mesh", 4, 1); err == nil {
		t.Error("mesh with 1 switch accepted")
	}
	if _, err := Family("dualstar", 4, 1); err == nil {
		t.Error("dualstar with 1 switch accepted")
	}
	if _, err := Family("zonal", 4, 3); err == nil {
		t.Error("zonal with 3 switches accepted (needs 2 spine + 2 zones)")
	}
	if _, err := Family("torus", 4, 4); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := Family("ring", 1, 3); err == nil {
		t.Error("1 end station accepted")
	}
}

// TestFamilyGolden pins the families byte-for-byte: a change to any
// generator that alters its output must update these digests consciously,
// because churn traces and warm-start evaluations key off the exact graphs.
func TestFamilyGolden(t *testing.T) {
	golden := map[string]string{
		"ring-6es-3sw":     "efbfd785fb100cfc5e155ae2854c6d7a",
		"mesh-6es-4sw":     "18b610d7872657f32917d612006cb60a",
		"dualstar-6es-3sw": "6ffea5a7c0b4f634d07664d7162cfcab",
		"zonal-8es-4sw":    "b81a2d6f7ca53a6e2592f1faefc9866a",
	}
	build := map[string]func() (*Scenario, error){
		"ring-6es-3sw":     func() (*Scenario, error) { return Family("ring", 6, 3) },
		"mesh-6es-4sw":     func() (*Scenario, error) { return Family("mesh", 6, 4) },
		"dualstar-6es-3sw": func() (*Scenario, error) { return Family("dualstar", 6, 3) },
		"zonal-8es-4sw":    func() (*Scenario, error) { return Family("zonal", 8, 4) },
	}
	for name, want := range golden {
		s, err := build[name]()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("scenario name = %q, want %q", s.Name, name)
		}
		if got := graphDigest(s.Connections); got != want {
			t.Errorf("%s digest = %s, want %s", name, got, want)
		}
	}
}

// TestRandomScenarioGolden pins Random's output byte-for-byte (S3): the
// generator documents byte-stable output for a given seed, and this digest
// is the contract. math/rand with a seeded Source is covered by the Go 1
// compatibility promise, so the digest is stable across Go releases too.
func TestRandomScenarioGolden(t *testing.T) {
	s, err := Random(RandomOptions{
		EndStations: 6, Switches: 3,
		ESLinkProb: 0.5, SWLinkProb: 0.5,
		MaxLength: 3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	const want = "c24168d59324dc00ae4e5a28e2567e96"
	if got := graphDigest(s.Connections); got != want {
		t.Errorf("random digest = %s, want %s", got, want)
	}
}
