package scenarios

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// Family builds a deterministic scenario from one of the parameterized
// backbone families. Unlike Random, families use no RNG at all: the same
// (name, endStations, switches) triple always yields the same graph, so
// they are suitable as stable bases for delta traces and golden tests.
//
// Recognized names:
//
//   - "ring":      switch ring backbone (switches >= 3)
//   - "mesh":      complete switch backbone (switches >= 2)
//   - "dualstar":  two hub switches, optional edge tier (switches >= 2)
//   - "zonal":     zonal E/E layout — zone-switch ring plus a two-switch
//     central spine connected to every zone (switches >= 4: 2 spine + >= 2 zones)
//
// Every end station gets exactly two candidate switch attachments, so
// flow-level redundancy is always possible and MaxESDegree = 2 holds.
func Family(name string, endStations, switches int) (*Scenario, error) {
	if endStations < 2 {
		return nil, fmt.Errorf("family %s: need at least 2 end stations", name)
	}
	switch strings.ToLower(name) {
	case "ring":
		return ringFamily(endStations, switches)
	case "mesh":
		return meshFamily(endStations, switches)
	case "dualstar", "dual-star":
		return dualStarFamily(endStations, switches)
	case "zonal":
		return zonalFamily(endStations, switches)
	default:
		return nil, fmt.Errorf("unknown scenario family %q (want ring, mesh, dualstar, or zonal)", name)
	}
}

// FamilyNames lists the recognized Family backbone names.
func FamilyNames() []string { return []string{"ring", "mesh", "dualstar", "zonal"} }

// familyBase creates the vertex sets shared by all families: endStations
// end stations (IDs 0..es-1) followed by switches switches.
func familyBase(endStations, switches int) (*graph.Graph, []int) {
	g := graph.New()
	for i := 0; i < endStations; i++ {
		g.AddVertex(fmt.Sprintf("es%d", i), graph.KindEndStation)
	}
	sw := make([]int, switches)
	for i := range sw {
		sw[i] = g.AddVertex(fmt.Sprintf("sw%d", i), graph.KindSwitch)
	}
	return g, sw
}

// ringFamily: switches in a cycle; ES i attaches to switches i mod n and
// (i+1) mod n, so adjacent end stations share a switch and every ES's two
// candidate attachments are ring neighbors.
func ringFamily(endStations, switches int) (*Scenario, error) {
	if switches < 3 {
		return nil, fmt.Errorf("family ring: need at least 3 switches for a cycle")
	}
	g, sw := familyBase(endStations, switches)
	for i := 0; i < switches; i++ {
		if err := g.AddEdge(sw[i], sw[(i+1)%switches], 1); err != nil {
			return nil, fmt.Errorf("family ring: backbone: %w", err)
		}
	}
	for es := 0; es < endStations; es++ {
		a, b := sw[es%switches], sw[(es+1)%switches]
		if err := attach(g, es, a, b); err != nil {
			return nil, fmt.Errorf("family ring: %w", err)
		}
	}
	return familyScenario("ring", endStations, switches, g), nil
}

// meshFamily: complete switch backbone; ES attachment as in ringFamily.
func meshFamily(endStations, switches int) (*Scenario, error) {
	if switches < 2 {
		return nil, fmt.Errorf("family mesh: need at least 2 switches")
	}
	g, sw := familyBase(endStations, switches)
	for i := 0; i < switches; i++ {
		for j := i + 1; j < switches; j++ {
			if err := g.AddEdge(sw[i], sw[j], 1); err != nil {
				return nil, fmt.Errorf("family mesh: backbone: %w", err)
			}
		}
	}
	for es := 0; es < endStations; es++ {
		a, b := sw[es%switches], sw[(es+1)%switches]
		if err := attach(g, es, a, b); err != nil {
			return nil, fmt.Errorf("family mesh: %w", err)
		}
	}
	return familyScenario("mesh", endStations, switches, g), nil
}

// dualStarFamily: sw0 and sw1 are linked hubs. With exactly two switches
// every ES homes to both hubs; with more, switches 2..n-1 form an edge tier
// each linked to both hubs, and ES i attaches to edge switch 2+(i mod (n-2))
// plus hub i mod 2.
func dualStarFamily(endStations, switches int) (*Scenario, error) {
	if switches < 2 {
		return nil, fmt.Errorf("family dualstar: need at least 2 switches (the hubs)")
	}
	g, sw := familyBase(endStations, switches)
	if err := g.AddEdge(sw[0], sw[1], 1); err != nil {
		return nil, fmt.Errorf("family dualstar: hub link: %w", err)
	}
	for i := 2; i < switches; i++ {
		if err := g.AddEdge(sw[i], sw[0], 1); err != nil {
			return nil, fmt.Errorf("family dualstar: edge uplink: %w", err)
		}
		if err := g.AddEdge(sw[i], sw[1], 1); err != nil {
			return nil, fmt.Errorf("family dualstar: edge uplink: %w", err)
		}
	}
	for es := 0; es < endStations; es++ {
		var a, b int
		if switches == 2 {
			a, b = sw[0], sw[1]
		} else {
			a, b = sw[2+es%(switches-2)], sw[es%2]
		}
		if err := attach(g, es, a, b); err != nil {
			return nil, fmt.Errorf("family dualstar: %w", err)
		}
	}
	return familyScenario("dualstar", endStations, switches, g), nil
}

// zonalFamily models a zonal E/E architecture: the first two switches are a
// central spine (linked to each other and to every zone switch); the
// remaining switches are zone controllers arranged in a ring. ES i attaches
// to zone switch i mod z and the next zone's switch.
func zonalFamily(endStations, switches int) (*Scenario, error) {
	if switches < 4 {
		return nil, fmt.Errorf("family zonal: need at least 4 switches (2 spine + 2 zones)")
	}
	g, sw := familyBase(endStations, switches)
	spine, zones := sw[:2], sw[2:]
	if err := g.AddEdge(spine[0], spine[1], 1); err != nil {
		return nil, fmt.Errorf("family zonal: spine link: %w", err)
	}
	for _, z := range zones {
		if err := g.AddEdge(z, spine[0], 1); err != nil {
			return nil, fmt.Errorf("family zonal: spine uplink: %w", err)
		}
		if err := g.AddEdge(z, spine[1], 1); err != nil {
			return nil, fmt.Errorf("family zonal: spine uplink: %w", err)
		}
	}
	if len(zones) > 2 {
		for i := range zones {
			u, v := zones[i], zones[(i+1)%len(zones)]
			if !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v, 1); err != nil {
					return nil, fmt.Errorf("family zonal: zone ring: %w", err)
				}
			}
		}
	}
	z := len(zones)
	for es := 0; es < endStations; es++ {
		a, b := zones[es%z], zones[(es+1)%z]
		if a == b { // z == 1 cannot happen (switches >= 4), but stay safe
			b = spine[0]
		}
		if err := attach(g, es, a, b); err != nil {
			return nil, fmt.Errorf("family zonal: %w", err)
		}
	}
	return familyScenario("zonal", endStations, switches, g), nil
}

// attach gives end station es its two candidate switch links.
func attach(g *graph.Graph, es, a, b int) error {
	if err := g.AddEdge(es, a, 1); err != nil {
		return fmt.Errorf("es %d: %w", es, err)
	}
	if err := g.AddEdge(es, b, 1); err != nil {
		return fmt.Errorf("es %d: %w", es, err)
	}
	return nil
}

func familyScenario(family string, endStations, switches int, g *graph.Graph) *Scenario {
	return &Scenario{
		Name:        fmt.Sprintf("%s-%des-%dsw", family, endStations, switches),
		Connections: g,
		Net:         evalNetwork(),
	}
}
