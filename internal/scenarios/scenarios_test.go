package scenarios

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/nbf"
)

func mustORION(t testing.TB) *Scenario {
	t.Helper()
	s, err := ORION()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustADS(t testing.TB) *Scenario {
	t.Helper()
	s, err := ADS()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestORIONCounts(t *testing.T) {
	s := mustORION(t)
	es := s.Connections.VerticesOfKind(graph.KindEndStation)
	sw := s.Connections.VerticesOfKind(graph.KindSwitch)
	if len(es) != 31 {
		t.Fatalf("end stations = %d, want 31", len(es))
	}
	if len(sw) != 15 {
		t.Fatalf("switches = %d, want 15", len(sw))
	}
	// The paper reports 189 optional links for its (unpublished) original
	// topology; our reconstruction must land in the same regime.
	if n := s.Connections.NumEdges(); n != 200 {
		t.Fatalf("optional links = %d, want 200 (paper reports 189 for its unpublished layout)", n)
	}
	if s.Original == nil {
		t.Fatal("ORION must carry the original topology")
	}
}

func TestORIONOriginalProperties(t *testing.T) {
	s := mustORION(t)
	// Every end station is single-homed (degree exactly 1) in the original
	// design — the property that forces ASIL-D everywhere (§VI-A).
	for _, es := range s.Original.VerticesOfKind(graph.KindEndStation) {
		if d := s.Original.Degree(es); d != 1 {
			t.Fatalf("end station %d degree %d, want 1", es, d)
		}
	}
	// Switch degrees must be realizable with the 8-port library maximum.
	maxDeg := 0
	for _, sw := range s.Original.VerticesOfKind(graph.KindSwitch) {
		if d := s.Original.Degree(sw); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg > 8 {
		t.Fatalf("original needs a %d-port switch (max 8)", maxDeg)
	}
	if maxDeg < 7 {
		t.Fatalf("original should drive near-8-port switches, max degree %d", maxDeg)
	}
	// The original must be a subgraph of the connection graph.
	if !s.Original.IsSubgraphOf(s.Connections) {
		t.Fatal("original topology not contained in Gc")
	}
	// The switch backbone must be connected.
	sws := s.Original.VerticesOfKind(graph.KindSwitch)
	for _, sw := range sws[1:] {
		if !s.Original.Connected(sws[0], sw) {
			t.Fatalf("switch backbone disconnected at %d", sw)
		}
	}
}

func TestORIONConnectionsRespectHopRule(t *testing.T) {
	s := mustORION(t)
	// Every optional link connects vertices within 3 hops of the original
	// topology and never two end stations.
	for _, e := range s.Connections.Edges() {
		if s.Connections.Kind(e.U) == graph.KindEndStation && s.Connections.Kind(e.V) == graph.KindEndStation {
			t.Fatalf("ES-ES optional link (%d,%d)", e.U, e.V)
		}
		dist := s.Original.HopDistances(e.U)
		if dist[e.V] < 1 || dist[e.V] > 3 {
			t.Fatalf("optional link (%d,%d) spans %d hops", e.U, e.V, dist[e.V])
		}
	}
}

func TestADSCounts(t *testing.T) {
	s := mustADS(t)
	es := s.Connections.VerticesOfKind(graph.KindEndStation)
	sw := s.Connections.VerticesOfKind(graph.KindSwitch)
	if len(es) != 12 {
		t.Fatalf("end stations = %d, want 12", len(es))
	}
	if len(sw) != 4 {
		t.Fatalf("switches = %d, want 4", len(sw))
	}
	// 12×4 ES-SW + C(4,2) SW-SW = 54 optional links (§VI-B).
	if n := s.Connections.NumEdges(); n != 54 {
		t.Fatalf("optional links = %d, want 54", n)
	}
}

func TestADSFlows(t *testing.T) {
	fs := ADSFlows(1)
	if len(fs) != 12 {
		t.Fatalf("flows = %d, want 12 (7 apps × 2 − 2)", len(fs))
	}
	s := mustADS(t)
	if err := fs.Validate(s.Net.BasePeriod); err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if s.Connections.Kind(f.Src) != graph.KindEndStation {
			t.Fatalf("flow %d source %d not an ES", f.ID, f.Src)
		}
	}
	// Seeded determinism.
	again := ADSFlows(1)
	for i := range fs {
		if fs[i].FrameSize != again[i].FrameSize {
			t.Fatal("ADSFlows not deterministic")
		}
	}
	other := ADSFlows(2)
	diff := false
	for i := range fs {
		if fs[i].FrameSize != other[i].FrameSize {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds should vary frame sizes")
	}
}

func TestRandomFlowsValidAndSeeded(t *testing.T) {
	s := mustORION(t)
	fs := s.RandomFlows(50, 7)
	if len(fs) != 50 {
		t.Fatalf("flows = %d", len(fs))
	}
	if err := fs.Validate(s.Net.BasePeriod); err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Src == f.Dsts[0] {
			t.Fatal("flow with identical endpoints")
		}
		if s.Connections.Kind(f.Src) != graph.KindEndStation || s.Connections.Kind(f.Dsts[0]) != graph.KindEndStation {
			t.Fatal("flow endpoint is not an end station")
		}
	}
	again := s.RandomFlows(50, 7)
	for i := range fs {
		if fs[i].Src != again[i].Src || fs[i].Dsts[0] != again[i].Dsts[0] {
			t.Fatal("RandomFlows not deterministic for equal seeds")
		}
	}
}

func TestScenarioProblemsValidate(t *testing.T) {
	for _, s := range []*Scenario{mustORION(t), mustADS(t)} {
		flows := s.RandomFlows(5, 1)
		prob := s.Problem(flows, &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
		if err := prob.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
	prob := mustADS(t).Problem(ADSFlows(3), &nbf.StatelessRecovery{MaxAlternatives: 3}, 1e-6)
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"orion", "ads"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, s.Name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
