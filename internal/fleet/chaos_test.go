package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/asil"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/obsv"
	"repro/internal/serialize"
	"repro/internal/service"
	"repro/internal/tsn"
)

// chaosSeeds are the schedules every fleet chaos drill runs under,
// mirroring the service chaos suite. Each subtest logs its injector line
// (seed + schedule) so any failure reproduces bit-exactly.
var chaosSeeds = []int64{1, 42, 977}

// memSink captures lifecycle events for assertions.
type memSink struct {
	mu     sync.Mutex
	events []obsv.Event
}

func (s *memSink) Emit(e obsv.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
	return nil
}

func (s *memSink) count(typ string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.events {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// tinyProblemJSON is the fleet tests' problem spec — the same 4-ES/2-SW
// fixture shape the service suite trains on in milliseconds.
func tinyProblemJSON(t testing.TB) serialize.ProblemJSON {
	t.Helper()
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	for i := 0; i < 2; i++ {
		g.AddVertex("", graph.KindSwitch)
	}
	for es := 0; es < 4; es++ {
		for sw := 4; sw < 6; sw++ {
			if err := g.AddEdge(es, sw, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := g.AddEdge(4, 5, 1); err != nil {
		t.Fatal(err)
	}
	net := tsn.DefaultNetwork()
	mkFlow := func(id, src, dst int) tsn.Flow {
		return tsn.Flow{ID: id, Src: src, Dsts: []int{dst}, Period: net.BasePeriod, Deadline: net.BasePeriod, FrameSize: 64}
	}
	prob := &core.Problem{
		Connections:     g,
		Net:             net,
		Flows:           tsn.FlowSet{mkFlow(0, 0, 1), mkFlow(1, 2, 3), mkFlow(2, 1, 2)},
		NBF:             &nbf.StatelessRecovery{MaxAlternatives: 3},
		ReliabilityGoal: 1e-6,
		Library:         asil.DefaultLibrary(),
		MaxESDegree:     2,
	}
	if err := prob.Validate(); err != nil {
		t.Fatalf("tiny problem invalid: %v", err)
	}
	return serialize.EncodeProblem(prob, "stateless-greedy")
}

// tinyRequest is a fast-planning request; the planner seed varies the
// fingerprint, so distinct seeds are distinct problems to the fleet.
func tinyRequest(t testing.TB, seed int64) service.Request {
	intp := func(v int) *int { return &v }
	return service.Request{
		Problem: tinyProblemJSON(t),
		Params: service.PlanParams{
			Epochs: 2, Steps: 24, K: 4, MLPWidth: 16,
			GCNLayers: intp(1), AnalyzerCache: intp(1024), Seed: seed,
		},
	}
}

// chaosTimings are the compressed state-machine timings every drill runs
// at: heartbeats every 25ms, suspect past 75ms of silence, dead past
// 150ms, and a 2s cap per coordinator→replica call so injected hangs
// turn into ring fallbacks inside the test budget.
func chaosOptions(sink obsv.Sink, transport http.RoundTripper) Options {
	client := &http.Client{}
	if transport != nil {
		client.Transport = transport
	}
	return Options{
		HeartbeatInterval: 25 * time.Millisecond,
		SuspectAfter:      75 * time.Millisecond,
		DeadAfter:         150 * time.Millisecond,
		CallTimeout:       2 * time.Second,
		ClientRetries:     2,
		ClientBackoff:     10 * time.Millisecond,
		HTTP:              client,
		Events:            sink,
	}
}

// testReplica is one in-process nptsn-serve: a real Manager behind a real
// HTTP server, heartbeating at the coordinator by direct method call (the
// Agent's wire loop is covered by the daemon tests).
type testReplica struct {
	t    *testing.T
	id   string
	m    *service.Manager
	srv  *httptest.Server
	c    *Coordinator
	mu   sync.Mutex
	stop context.CancelFunc
	done chan struct{}
	dead bool
}

func startTestReplica(t *testing.T, c *Coordinator, id string, opt service.Options) *testReplica {
	t.Helper()
	m, err := service.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	r := &testReplica{t: t, id: id, m: m, c: c}
	r.srv = httptest.NewServer(service.NewMux(m, nil))
	c.Register(id, r.srv.URL)
	r.startBeats()
	t.Cleanup(func() { r.kill() })
	return r
}

func (r *testReplica) startBeats() {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	r.mu.Lock()
	r.stop, r.done = cancel, done
	r.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(r.c.opt.HeartbeatInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				r.c.Heartbeat(r.id)
			}
		}
	}()
}

// partition silences the heartbeat while the replica keeps serving — the
// coordinator-cannot-see-replica failure mode.
func (r *testReplica) partition() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		stop()
		<-done
	}
}

// heal re-registers and resumes heartbeats after a partition.
func (r *testReplica) heal() {
	r.c.Register(r.id, r.srv.URL)
	r.startBeats()
}

// kill is process death: heartbeats stop, the listener drops every
// connection, and running jobs are interrupted immediately.
func (r *testReplica) kill() {
	r.mu.Lock()
	if r.dead {
		r.mu.Unlock()
		return
	}
	r.dead = true
	r.mu.Unlock()
	r.partition()
	r.srv.CloseClientConnections()
	r.srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-expired deadline: interrupt, don't drain
	r.m.Shutdown(ctx)
}

// jobCounts tallies the replica's jobs carrying a fingerprint: total and
// completed. The per-replica total must never exceed 1 — that is the
// adoption-by-fingerprint guarantee every failover leans on.
func (r *testReplica) jobCounts(fp string) (total, done int) {
	for _, st := range r.m.List() {
		if st.Fingerprint != fp {
			continue
		}
		total++
		if st.State == service.StateDone {
			done++
		}
	}
	return total, done
}

// assertAdoptionHeld fails the test if any replica holds more than one
// job for the fingerprint.
func assertAdoptionHeld(t *testing.T, fp string, replicas ...*testReplica) (doneTotal int) {
	t.Helper()
	for _, r := range replicas {
		total, done := r.jobCounts(fp)
		if total > 1 {
			t.Errorf("replica %s holds %d jobs for fingerprint %s — adoption failed to dedup", r.id, total, fp)
		}
		doneTotal += done
	}
	return doneTotal
}

// requestHomedOn searches planner seeds until the request's fingerprint
// hashes home to the wanted replica, so drills can aim a job at a victim.
func requestHomedOn(t *testing.T, c *Coordinator, want string) (service.Request, string) {
	t.Helper()
	for seed := int64(1); seed < 500; seed++ {
		req := tinyRequest(t, seed)
		fp, err := service.Fingerprint(req)
		if err != nil {
			t.Fatal(err)
		}
		c.mu.Lock()
		owner, ok := c.ring.Owner(fp)
		c.mu.Unlock()
		if ok && owner == want {
			return req, fp
		}
	}
	t.Fatalf("no seed under 500 homes on replica %s", want)
	return service.Request{}, ""
}

// waitFleetState polls the coordinator until the job reaches want.
func waitFleetState(t *testing.T, c *Coordinator, id string, want service.State) JobStatus {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(90 * time.Second)
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s ended %s (%q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitReplicaRunning polls a replica's manager directly (no wire, so no
// injected faults) until its copy of the fingerprint is running.
func waitReplicaRunning(t *testing.T, r *testReplica, fp string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		for _, st := range r.m.List() {
			if st.Fingerprint == fp && st.State == service.StateRunning {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fingerprint %s never started running on %s", fp, r.id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// planDelay arms a replica manager with a seeded service.plan delay so
// jobs are reliably mid-run when a drill strikes.
func planDelay(seed int64, d time.Duration) *fault.Injector {
	return fault.New(seed, fault.Rule{Point: fault.PointPlan, Kind: fault.KindDelay, Prob: 1, Delay: d})
}

// TestChaosFleetReplicaDeathFailsOver is the flagship drill of the fleet
// failure model: wire-level chaos on every coordinator→replica call
// (deterministic torn bodies and a hang, plus probabilistic delays), the
// job's home replica killed mid-run, and the acceptance bar checked end
// to end — the job completes EXACTLY once across the survivors, the
// result carries its certificate, the coordinator reports the dead
// replica, and the handoff is visible in events and counters.
func TestChaosFleetReplicaDeathFailsOver(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := fault.New(seed,
				fault.Rule{Point: fault.PointRoundTrip, Kind: fault.KindDelay, Prob: 0.25, Delay: 20 * time.Millisecond},
				fault.Rule{Point: fault.PointRoundTrip, Kind: fault.KindTorn, Calls: []int{3, 9}, TornBytes: 24},
				fault.Rule{Point: fault.PointRoundTrip, Kind: fault.KindHang, Calls: []int{6}},
			)
			t.Log(in.String())
			sink := &memSink{}
			c := New(chaosOptions(sink, &fault.Transport{In: in}))
			defer c.Close()

			replicas := make(map[string]*testReplica)
			for i := 0; i < 3; i++ {
				id := fmt.Sprintf("r%d", i)
				replicas[id] = startTestReplica(t, c, id, service.Options{
					Workers: 1, QueueSize: 8, Fault: planDelay(seed, time.Second),
				})
			}

			req := tinyRequest(t, seed)
			req.Certify = true
			fp, err := service.Fingerprint(req)
			if err != nil {
				t.Fatal(err)
			}

			ctx := context.Background()
			st, err := c.Submit(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if st.Replica == "" {
				t.Fatalf("job not placed: %+v", st)
			}

			// Wait until the job is mid-run on its owner, then kill that
			// replica — the crash the heartbeat machinery exists to catch.
			// The owner's manager is watched directly: the coordinator-side
			// view can lag behind injected wire faults.
			victim := replicas[st.Replica]
			if victim == nil {
				t.Fatalf("job owned by unknown replica %q", st.Replica)
			}
			waitReplicaRunning(t, victim, fp)
			victim.kill()

			final := waitFleetState(t, c, st.ID, service.StateDone)
			if final.Replica == victim.id {
				t.Fatalf("job finished on the killed replica %s", victim.id)
			}
			if final.Handoffs < 1 {
				t.Fatalf("job finished with %d handoffs, want >= 1", final.Handoffs)
			}

			res, err := c.Result(ctx, st.ID)
			if err != nil {
				t.Fatal(err)
			}
			if res.Certificate == nil || !res.GuaranteeMet {
				t.Fatalf("failover result lacks its certificate: %+v", res)
			}

			// Exactly once: across the survivors the fingerprint completed a
			// single time, and no replica holds a duplicate.
			var survivors []*testReplica
			for id, r := range replicas {
				if id != victim.id {
					survivors = append(survivors, r)
				}
			}
			if done := assertAdoptionHeld(t, fp, survivors...); done != 1 {
				t.Fatalf("fingerprint completed %d times across survivors, want exactly 1", done)
			}

			// The control plane saw it all: dead replica reported, lifecycle
			// events recorded.
			fs := c.Fleet()
			if fs.Dead != 1 {
				t.Fatalf("fleet reports %d dead replicas, want 1: %+v", fs.Dead, fs)
			}
			if fs.Handoffs < 1 || fs.Failovers < 1 {
				t.Fatalf("fleet counters missed the failover: %+v", fs)
			}
			for _, typ := range []string{EventReplicaSuspect, EventReplicaDead, EventJobHandoff} {
				if sink.count(typ) == 0 {
					t.Errorf("no %s event recorded", typ)
				}
			}
			t.Log(in.Stats())
		})
	}
}

// TestChaosFleetTornWireStorm: heavy probabilistic torn-body faults on
// every coordinator→replica call, no crashes. The per-replica client
// retries through the garbage and adopts by fingerprint, so every job
// still lands at most once per replica and every submission is answered.
func TestChaosFleetTornWireStorm(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := fault.New(seed,
				fault.Rule{Point: fault.PointRoundTrip, Kind: fault.KindTorn, Prob: 0.3, TornBytes: 16},
				fault.Rule{Point: fault.PointRoundTrip, Kind: fault.KindDelay, Prob: 0.2, Delay: 10 * time.Millisecond},
			)
			t.Log(in.String())
			c := New(chaosOptions(nil, &fault.Transport{In: in}))
			defer c.Close()

			var replicas []*testReplica
			for i := 0; i < 3; i++ {
				replicas = append(replicas, startTestReplica(t, c, fmt.Sprintf("r%d", i),
					service.Options{Workers: 1, QueueSize: 8}))
			}

			ctx := context.Background()
			const jobs = 4
			type placed struct {
				st JobStatus
				fp string
			}
			var all []placed
			for i := 0; i < jobs; i++ {
				req := tinyRequest(t, 1000*seed+int64(i))
				fp, err := service.Fingerprint(req)
				if err != nil {
					t.Fatal(err)
				}
				st, err := c.Submit(ctx, req)
				if err != nil {
					t.Fatalf("submit %d through the storm: %v", i, err)
				}
				all = append(all, placed{st, fp})
			}
			for _, p := range all {
				waitFleetState(t, c, p.st.ID, service.StateDone)
				// Results must come through the torn wire too; the coordinator
				// retries or serves its cache.
				deadline := time.Now().Add(30 * time.Second)
				for {
					if _, err := c.Result(ctx, p.st.ID); err == nil {
						break
					} else if time.Now().After(deadline) {
						t.Fatalf("result never served through the storm: %v", err)
					}
					time.Sleep(10 * time.Millisecond)
				}
				// At most one copy per replica, no matter how many retries the
				// torn responses forced.
				assertAdoptionHeld(t, p.fp, replicas...)
			}
			t.Log(in.Stats())
		})
	}
}

// TestChaosFleetPartitionHandsOffAndHeals: a replica partitioned from the
// coordinator mid-run (server healthy, heartbeats lost) is declared
// suspect, then dead; its job is re-served on a survivor and the
// coordinator serves exactly one result. When the partition heals the
// replica rejoins the ring as alive.
func TestChaosFleetPartitionHandsOffAndHeals(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sink := &memSink{}
			c := New(chaosOptions(sink, nil))
			defer c.Close()

			replicas := make(map[string]*testReplica)
			for i := 0; i < 3; i++ {
				id := fmt.Sprintf("r%d", i)
				replicas[id] = startTestReplica(t, c, id, service.Options{
					Workers: 1, QueueSize: 8, Fault: planDelay(seed, 800*time.Millisecond),
				})
			}

			// Aim the job at r0 so the drill controls who gets partitioned.
			req, fp := requestHomedOn(t, c, "r0")
			ctx := context.Background()
			st, err := c.Submit(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if st.Replica != "r0" {
				t.Fatalf("job placed on %s, want its home shard r0", st.Replica)
			}
			waitFleetState(t, c, st.ID, service.StateRunning)
			replicas["r0"].partition()

			final := waitFleetState(t, c, st.ID, service.StateDone)
			if final.Replica == "r0" {
				t.Fatalf("job finished on the partitioned replica")
			}
			if _, err := c.Result(ctx, st.ID); err != nil {
				t.Fatal(err)
			}
			if sink.count(EventReplicaSuspect) == 0 || sink.count(EventReplicaDead) == 0 {
				t.Error("partition produced no suspect/dead events")
			}

			// The partitioned replica kept working underneath: it may finish
			// its own copy (duplicate work is the honest cost of a partition),
			// but adoption still bounds every replica to one copy.
			assertAdoptionHeld(t, fp, replicas["r1"], replicas["r2"])
			if total, _ := replicas["r0"].jobCounts(fp); total > 1 {
				t.Errorf("partitioned replica holds %d copies, want at most 1", total)
			}

			// Heal: the replica re-registers, turns alive, and its ring points
			// were never dropped.
			replicas["r0"].heal()
			deadline := time.Now().Add(10 * time.Second)
			for {
				if fs := c.Fleet(); fs.Alive == 3 && fs.Dead == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("healed replica never rejoined: %+v", c.Fleet())
				}
				time.Sleep(5 * time.Millisecond)
			}
			if sink.count(EventReplicaUp) < 4 { // 3 registrations + 1 rejoin
				t.Errorf("%d replica_up events, want >= 4 (rejoin missing)", sink.count(EventReplicaUp))
			}
		})
	}
}

// TestChaosFleetDeltaFailoverPlansCold: the delta-routing failure drill.
// A delta job shards by its BASE fingerprint so it lands where the warm
// cache lives; when that home shard dies, the materialized request (base
// spec inline) must degrade to a cold from-scratch plan on a survivor —
// a dead home shard costs the speedup, never the job, and never a 5xx.
func TestChaosFleetDeltaFailoverPlansCold(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := fault.New(seed,
				fault.Rule{Point: fault.PointRoundTrip, Kind: fault.KindDelay, Prob: 0.2, Delay: 10 * time.Millisecond},
			)
			t.Log(in.String())
			sink := &memSink{}
			c := New(chaosOptions(sink, &fault.Transport{In: in}))
			defer c.Close()

			replicas := make(map[string]*testReplica)
			for i := 0; i < 3; i++ {
				id := fmt.Sprintf("r%d", i)
				replicas[id] = startTestReplica(t, c, id, service.Options{Workers: 1, QueueSize: 8})
			}

			// Aim the base at r0 so the drill controls whose death matters.
			req, baseFp := requestHomedOn(t, c, "r0")
			ctx := context.Background()
			base, err := c.Submit(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if base.Replica != "r0" {
				t.Fatalf("base placed on %s, want its home shard r0", base.Replica)
			}
			waitFleetState(t, c, base.ID, service.StateDone)

			// Healthy path first: a delta against the finished base routes to
			// the SAME home shard and warm-starts from its plan cache.
			warm, err := c.Submit(ctx, service.Request{
				Base:  base.ID,
				Delta: &serialize.DeltaJSON{RemoveFlows: []int{2}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Replica != "r0" {
				t.Fatalf("delta with a live home placed on %s, want r0", warm.Replica)
			}
			wfinal := waitFleetState(t, c, warm.ID, service.StateDone)
			if wfinal.Warm == nil || !wfinal.Warm.SeedSolved {
				t.Fatalf("delta on its home shard did not warm-start: %+v", wfinal.Warm)
			}
			if sink.count(EventDeltaFallback) != 0 {
				t.Fatal("on-home delta counted as a fallback")
			}

			// Kill the home shard and wait until the coordinator knows.
			replicas["r0"].kill()
			deadline := time.Now().Add(10 * time.Second)
			for c.Fleet().Dead != 1 {
				if time.Now().After(deadline) {
					t.Fatalf("killed replica never declared dead: %+v", c.Fleet())
				}
				time.Sleep(5 * time.Millisecond)
			}

			// The same kind of delta now has a dead home. Submission must
			// still be accepted and complete on a survivor — planned cold
			// from the inline base spec, flagged as a delta fallback.
			cold, err := c.Submit(ctx, service.Request{
				Base:  baseFp,
				Delta: &serialize.DeltaJSON{RemoveFlows: []int{1}},
			})
			if err != nil {
				t.Fatalf("delta with a dead home shard rejected: %v", err)
			}
			if cold.Replica == "r0" {
				t.Fatal("delta placed on the dead home shard")
			}
			cfinal := waitFleetState(t, c, cold.ID, service.StateDone)
			if cfinal.Warm != nil && cfinal.Warm.SeedSolved {
				t.Fatalf("fallback replica claims a warm start it cannot have: %+v", cfinal.Warm)
			}
			res, err := c.Result(ctx, cold.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !res.GuaranteeMet || res.Solution == nil {
				t.Fatalf("cold fallback plan did not certify: %+v", res)
			}
			if sink.count(EventDeltaFallback) == 0 {
				t.Error("off-home delta produced no delta_fallback event")
			}
			t.Log(in.Stats())
		})
	}
}

// TestChaosFleetCoordinatorRestartAdoptsFinishedWork: the coordinator is
// the only component without durable state — a restarted coordinator
// re-learns the fleet from registrations, and a resubmitted problem is
// answered by fingerprint adoption from the home replica's store instead
// of being planned again.
func TestChaosFleetCoordinatorRestartAdoptsFinishedWork(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c1 := New(chaosOptions(nil, nil))
			var replicas []*testReplica
			for i := 0; i < 3; i++ {
				replicas = append(replicas, startTestReplica(t, c1, fmt.Sprintf("r%d", i),
					service.Options{Workers: 1, QueueSize: 8}))
			}

			req := tinyRequest(t, 7000+seed)
			fp, err := service.Fingerprint(req)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			st, err := c1.Submit(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			waitFleetState(t, c1, st.ID, service.StateDone)
			owner := st.Replica

			// Coordinator dies; replicas keep their stores. A new coordinator
			// boots empty and the replicas re-register with it.
			c1.Close()
			for _, r := range replicas {
				r.partition() // stop beating at the dead coordinator
			}
			c2 := New(chaosOptions(nil, nil))
			defer c2.Close()
			for _, r := range replicas {
				r.c = c2
				r.heal()
			}

			// The same problem resubmitted: answered done, immediately, by
			// adopting the finished job — not planned a second time.
			st2, err := c2.Submit(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if st2.State != service.StateDone {
				t.Fatalf("resubmission after coordinator restart = %s, want done by adoption", st2.State)
			}
			if st2.Replica != owner {
				t.Fatalf("resubmission adopted from %s, want the home shard %s", st2.Replica, owner)
			}
			res, err := c2.Result(ctx, st2.ID)
			if err != nil {
				t.Fatal(err)
			}
			if res.Solution == nil {
				t.Fatalf("adopted result has no solution: %+v", res)
			}
			if done := assertAdoptionHeld(t, fp, replicas...); done != 1 {
				t.Fatalf("fingerprint completed %d times across the fleet, want exactly 1", done)
			}
		})
	}
}
