package fleet

import (
	"repro/internal/obsv"
)

// Fleet lifecycle event types, emitted to Options.Events as JSON lines.
// Msg carries the replica or job ID; V carries the numeric payload.
const (
	// EventReplicaUp records a replica registering or rejoining the ring
	// (replicas_alive in V).
	EventReplicaUp = "replica_up"
	// EventReplicaSuspect records a replica whose heartbeat has gone quiet
	// past SuspectAfter (quiet_seconds in V).
	EventReplicaSuspect = "replica_suspect"
	// EventReplicaDead records a replica declared dead — heartbeat quiet
	// past DeadAfter, or a graceful deregistration (quiet_seconds and the
	// in-flight jobs being failed over in V).
	EventReplicaDead = "replica_dead"
	// EventJobHandoff records one in-flight job re-served from a dead
	// replica to a surviving one; Msg is "jobID from->to", V carries the
	// job's total handoffs and whether the target already owned the work
	// (adopted 0/1).
	EventJobHandoff = "job_handoff"
	// EventDeltaFallback records a delta job placed off its base
	// fingerprint's home shard (the shard was suspect or dead): the job
	// planned cold on a fallback replica instead of warm-starting
	// (home_suspect 0/1 in V).
	EventDeltaFallback = "delta_fallback"
	// EventZooRouted records a submission the shared policy zoo could
	// answer: it short-circuited shard routing and was spread round-robin
	// across alive replicas instead of hashing onto the ring.
	EventZooRouted = "zoo_routed"
)

// metrics bundles the nptsn_fleet_* instrument handles. A nil *metrics is
// valid and records nothing, mirroring the service convention.
type metrics struct {
	alive   *obsv.Gauge
	suspect *obsv.Gauge
	dead    *obsv.Gauge

	submitted  *obsv.Counter
	deduped    *obsv.Counter
	adopted    *obsv.Counter
	failovers  *obsv.Counter
	handoffs   *obsv.Counter
	fallback   *obsv.Counter
	hedged     *obsv.Counter
	deltas     *obsv.Counter
	deltaFall  *obsv.Counter
	zooRouted  *obsv.Counter
	heartbeats *obsv.Counter
	registered *obsv.Counter
	eventErrs  *obsv.Counter
}

func newMetrics(reg *obsv.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		alive:      reg.Gauge("nptsn_fleet_replicas_alive", "Replicas with a fresh heartbeat."),
		suspect:    reg.Gauge("nptsn_fleet_replicas_suspect", "Replicas whose heartbeat is quiet past the suspect threshold."),
		dead:       reg.Gauge("nptsn_fleet_replicas_dead", "Replicas declared dead (heartbeat quiet past the dead threshold, or deregistered)."),
		submitted:  reg.Counter("nptsn_fleet_jobs_submitted_total", "Jobs accepted by the coordinator and placed on a replica."),
		deduped:    reg.Counter("nptsn_fleet_jobs_deduped_total", "Submissions answered from the coordinator's fingerprint table instead of re-placed."),
		adopted:    reg.Counter("nptsn_fleet_jobs_adopted_total", "Placements that adopted a job the target replica already owned (by fingerprint) instead of submitting fresh work."),
		failovers:  reg.Counter("nptsn_fleet_failovers_total", "Replica deaths that triggered a failover sweep of their in-flight jobs."),
		handoffs:   reg.Counter("nptsn_fleet_job_handoffs_total", "In-flight jobs re-served from a dead replica to a surviving one."),
		fallback:   reg.Counter("nptsn_fleet_ring_fallback_routes_total", "Submissions routed past a dead home shard to the next replica on the ring."),
		hedged:     reg.Counter("nptsn_fleet_hedged_routes_total", "Submissions routed around a suspect (not yet dead) home shard."),
		deltas:     reg.Counter("nptsn_fleet_delta_jobs_total", "Delta submissions placed by the coordinator (routed to the base fingerprint's home shard)."),
		deltaFall:  reg.Counter("nptsn_fleet_delta_fallbacks_total", "Delta submissions placed off the base's home shard; they planned cold instead of warm-starting."),
		zooRouted:  reg.Counter("nptsn_fleet_zoo_routed_total", "Zoo-eligible submissions that short-circuited shard routing and spread round-robin across alive replicas."),
		heartbeats: reg.Counter("nptsn_fleet_heartbeats_total", "Heartbeats received from replicas."),
		registered: reg.Counter("nptsn_fleet_registrations_total", "Replica registrations (first contact and rejoins)."),
		eventErrs:  reg.Counter("nptsn_fleet_event_errors_total", "Lifecycle events the sink failed to record."),
	}
}

func (m *metrics) setStates(alive, suspect, dead int) {
	if m == nil {
		return
	}
	m.alive.Set(float64(alive))
	m.suspect.Set(float64(suspect))
	m.dead.Set(float64(dead))
}

func (m *metrics) inc(c func(*metrics) *obsv.Counter) {
	if m != nil {
		c(m).Inc()
	}
}

func (m *metrics) incSubmitted() { m.inc(func(m *metrics) *obsv.Counter { return m.submitted }) }
func (m *metrics) incDeduped()   { m.inc(func(m *metrics) *obsv.Counter { return m.deduped }) }
func (m *metrics) incAdopted()   { m.inc(func(m *metrics) *obsv.Counter { return m.adopted }) }
func (m *metrics) incFailover()  { m.inc(func(m *metrics) *obsv.Counter { return m.failovers }) }
func (m *metrics) incHandoff()   { m.inc(func(m *metrics) *obsv.Counter { return m.handoffs }) }
func (m *metrics) incFallback()  { m.inc(func(m *metrics) *obsv.Counter { return m.fallback }) }
func (m *metrics) incHedged()    { m.inc(func(m *metrics) *obsv.Counter { return m.hedged }) }

func (m *metrics) incDelta()         { m.inc(func(m *metrics) *obsv.Counter { return m.deltas }) }
func (m *metrics) incDeltaFallback() { m.inc(func(m *metrics) *obsv.Counter { return m.deltaFall }) }
func (m *metrics) incZooRouted()     { m.inc(func(m *metrics) *obsv.Counter { return m.zooRouted }) }

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
func (m *metrics) incHeartbeat()  { m.inc(func(m *metrics) *obsv.Counter { return m.heartbeats }) }
func (m *metrics) incRegistered() { m.inc(func(m *metrics) *obsv.Counter { return m.registered }) }
func (m *metrics) incEventErr()   { m.inc(func(m *metrics) *obsv.Counter { return m.eventErrs }) }
