package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/obsv"
	"repro/internal/service"
)

// maxRequestBody mirrors the replica API's request-body bound.
const maxRequestBody = 16 << 20

// NewMux builds the coordinator's HTTP API. The /v1/jobs surface is the
// same contract a single nptsn-serve replica exposes — clients point at
// the coordinator instead of a replica and nothing else changes — plus
// the fleet control plane:
//
//	POST   /v1/jobs                          submit (routed to the home shard)
//	GET    /v1/jobs                          list fleet jobs
//	GET    /v1/jobs/{id}                     status (refreshed from the replica)
//	GET    /v1/jobs/{id}/result              finished plan (cached or proxied)
//	DELETE /v1/jobs/{id}                     cancel
//	GET    /v1/fleet                         replica health + routing counters
//	POST   /v1/fleet/replicas                register {id,url} → heartbeat pace
//	POST   /v1/fleet/replicas/{id}/heartbeat one beat (404 → re-register)
//	DELETE /v1/fleet/replicas/{id}           graceful deregistration
//	GET    /metrics, /healthz                when reg is non-nil
func NewMux(c *Coordinator, reg *obsv.Registry) *http.ServeMux {
	api := &apiServer{c: c}
	mux := http.NewServeMux()
	wrap := func(route string, h http.HandlerFunc) http.Handler {
		return obsv.WithRequestLog(reg, route, h)
	}
	mux.Handle("POST /v1/jobs", wrap("/v1/jobs", api.submit))
	mux.Handle("GET /v1/jobs", wrap("/v1/jobs", api.list))
	mux.Handle("GET /v1/jobs/{id}", wrap("/v1/jobs/{id}", api.get))
	mux.Handle("GET /v1/jobs/{id}/result", wrap("/v1/jobs/{id}/result", api.result))
	mux.Handle("DELETE /v1/jobs/{id}", wrap("/v1/jobs/{id}", api.cancel))
	mux.Handle("GET /v1/fleet", wrap("/v1/fleet", api.fleet))
	mux.Handle("POST /v1/fleet/replicas", wrap("/v1/fleet/replicas", api.register))
	mux.Handle("POST /v1/fleet/replicas/{id}/heartbeat", wrap("/v1/fleet/replicas/{id}/heartbeat", api.heartbeat))
	mux.Handle("DELETE /v1/fleet/replicas/{id}", wrap("/v1/fleet/replicas/{id}", api.deregister))
	if reg != nil {
		mux.Handle("GET /metrics", obsv.WithRequestLog(reg, "/metrics", obsv.MetricsHandler(reg)))
		mux.Handle("GET /healthz", obsv.WithRequestLog(reg, "/healthz", obsv.HealthHandler()))
	}
	return mux
}

type apiServer struct {
	c *Coordinator
}

// writeFleetErr maps coordinator errors onto the wire. Replica rejections
// travel through verbatim (an APIError keeps its status code, so a 429
// or 422 from the home shard reads the same through the coordinator);
// replica unreachability that exhausted the ring is a gateway problem.
func writeFleetErr(w http.ResponseWriter, err error) {
	var ae *service.APIError
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, ErrNoReplicas):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.As(err, &ae):
		writeError(w, ae.StatusCode, ae.Message)
	default:
		writeError(w, http.StatusBadGateway, err.Error())
	}
}

func (a *apiServer) submit(w http.ResponseWriter, r *http.Request) {
	var req service.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("request body: %v", err))
		return
	}
	if r.URL.Query().Get("certify") == "1" {
		req.Certify = true
	}
	st, err := a.c.Submit(r.Context(), req)
	switch {
	case err != nil:
		writeFleetErr(w, err)
	case st.CacheHit || st.State == service.StateDone:
		// Answered without new planning work: fleet dedup, a replica's plan
		// cache, or adoption of an already-finished job.
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (a *apiServer) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.c.List())
}

func (a *apiServer) get(w http.ResponseWriter, r *http.Request) {
	st, err := a.c.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		writeFleetErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (a *apiServer) result(w http.ResponseWriter, r *http.Request) {
	res, err := a.c.Result(r.Context(), r.PathValue("id"))
	if err != nil {
		writeFleetErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (a *apiServer) cancel(w http.ResponseWriter, r *http.Request) {
	st, err := a.c.Cancel(r.Context(), r.PathValue("id"))
	if err != nil {
		writeFleetErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (a *apiServer) fleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.c.Fleet())
}

// registration is the POST /v1/fleet/replicas body.
type registration struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// registered is its response: the pace the replica should heartbeat at.
type registered struct {
	HeartbeatIntervalSec float64 `json:"heartbeatIntervalSec"`
}

func (a *apiServer) register(w http.ResponseWriter, r *http.Request) {
	var reg registration
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("request body: %v", err))
		return
	}
	if reg.ID == "" || reg.URL == "" {
		writeError(w, http.StatusBadRequest, "registration needs both id and url")
		return
	}
	interval := a.c.Register(reg.ID, reg.URL)
	writeJSON(w, http.StatusOK, registered{HeartbeatIntervalSec: interval.Seconds()})
}

func (a *apiServer) heartbeat(w http.ResponseWriter, r *http.Request) {
	if err := a.c.Heartbeat(r.PathValue("id")); err != nil {
		// 404 tells the replica the coordinator forgot it (restart); the
		// agent reacts by re-registering.
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *apiServer) deregister(w http.ResponseWriter, r *http.Request) {
	a.c.Deregister(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is out; nothing useful left on error
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
