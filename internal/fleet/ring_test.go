package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like the service's job fingerprints (hex digests).
		keys[i] = fmt.Sprintf("fp-%08x", i*2654435761)
	}
	return keys
}

func ownerCounts(r *Ring, keys []string) map[string]int {
	counts := make(map[string]int)
	for _, k := range keys {
		id, ok := r.Owner(k)
		if !ok {
			panic("empty ring")
		}
		counts[id]++
	}
	return counts
}

// TestRingBalance: with virtual nodes, no replica owns a grossly
// disproportionate share of the keyspace.
func TestRingBalance(t *testing.T) {
	for _, replicas := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprintf("replicas=%d", replicas), func(t *testing.T) {
			r := NewRing(0)
			for i := 0; i < replicas; i++ {
				r.Add(fmt.Sprintf("replica-%d", i))
			}
			keys := ringKeys(10000)
			counts := ownerCounts(r, keys)
			if len(counts) != replicas {
				t.Fatalf("%d replicas own keys, want all %d", len(counts), replicas)
			}
			mean := float64(len(keys)) / float64(replicas)
			for id, n := range counts {
				if f := float64(n); f < mean*0.5 || f > mean*1.5 {
					t.Errorf("%s owns %d keys, outside [%.0f, %.0f] around the mean %.0f",
						id, n, mean*0.5, mean*1.5, mean)
				}
			}
		})
	}
}

// TestRingJoinMovesKeysOnlyToNewcomer: adding a replica steals keys for
// the newcomer and nothing else — no key moves between existing replicas,
// and the stolen share is near 1/n.
func TestRingJoinMovesKeysOnlyToNewcomer(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	keys := ringKeys(10000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Add("replica-new")
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != "replica-new" {
			t.Fatalf("key %s moved %s → %s — between survivors, not to the newcomer", k, before[k], after)
		}
	}
	// Ideal steal is 1/5 of the keys; allow generous slack for hash noise.
	ideal := len(keys) / 5
	if moved < ideal/2 || moved > ideal*2 {
		t.Errorf("join moved %d keys, want ~%d (1/5 of %d)", moved, ideal, len(keys))
	}
}

// TestRingLeaveKeepsSurvivorKeys: removing a replica reassigns only the
// keys it owned; every other key stays put.
func TestRingLeaveKeepsSurvivorKeys(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	keys := ringKeys(10000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	const victim = "replica-2"
	r.Remove(victim)
	for _, k := range keys {
		after, _ := r.Owner(k)
		if before[k] == victim {
			if after == victim {
				t.Fatalf("key %s still owned by the removed replica", k)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %s moved %s → %s although its owner survived", k, before[k], after)
		}
	}
}

// TestRingSequence: the failover order starts at the home replica, covers
// every member exactly once, and agrees with Owner.
func TestRingSequence(t *testing.T) {
	r := NewRing(0)
	members := []string{"a", "b", "c", "d"}
	for _, id := range members {
		r.Add(id)
	}
	for _, k := range ringKeys(100) {
		owner, _ := r.Owner(k)
		seq := r.Sequence(k)
		if len(seq) != len(members) {
			t.Fatalf("sequence for %s has %d members, want %d", k, len(seq), len(members))
		}
		if seq[0] != owner {
			t.Fatalf("sequence for %s starts at %s, Owner says %s", k, seq[0], owner)
		}
		seen := make(map[string]bool)
		for _, id := range seq {
			if seen[id] {
				t.Fatalf("sequence for %s repeats %s: %v", k, id, seq)
			}
			seen[id] = true
		}
	}
}

// TestRingEdgeCases: empty ring, single member, double add/remove.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("x"); ok {
		t.Error("empty ring claims an owner")
	}
	if seq := r.Sequence("x"); seq != nil {
		t.Errorf("empty ring yields a sequence: %v", seq)
	}

	r.Add("solo")
	r.Add("solo") // idempotent
	if got := r.Len(); got != 1 {
		t.Fatalf("double add gives %d members", got)
	}
	if id, ok := r.Owner("anything"); !ok || id != "solo" {
		t.Fatalf("single-member ring routed to %q", id)
	}
	r.Remove("ghost") // no-op
	r.Remove("solo")
	r.Remove("solo") // idempotent
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("ring not empty after removals: %d members, %d points", r.Len(), len(r.points))
	}
}

// TestRingStableAcrossRejoin: a replica that leaves and rejoins gets
// exactly its old keys back — the property that keeps plan-cache locality
// through a crash/restart cycle.
func TestRingStableAcrossRejoin(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	keys := ringKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	r.Remove("replica-1")
	r.Add("replica-1")
	for _, k := range keys {
		if after, _ := r.Owner(k); after != before[k] {
			t.Fatalf("key %s moved %s → %s across a leave/rejoin", k, before[k], after)
		}
	}
}
