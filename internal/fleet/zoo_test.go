package fleet

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nbf"
	"repro/internal/serialize"
	"repro/internal/service"
	"repro/internal/zoo"
)

// pretrainFleetZoo trains one policy on the fleet fixture problem and
// stores it in a fresh zoo directory — the shared zoo the coordinator and
// every replica open in the routing test.
func pretrainFleetZoo(t *testing.T) *zoo.Zoo {
	t.Helper()
	req := tinyRequest(t, 1)
	prob, err := serialize.DecodeProblem(req.Problem, nbf.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	cfg := req.Params.EffectiveConfig()
	pl, err := core.NewPlanner(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if report.Best == nil {
		t.Fatal("pretraining found no plan; the fixture budget is too small")
	}
	z, _, err := zoo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	geo, err := zoo.GeometryOf(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.Add(zoo.Entry{
		Name:          "fleet-tiny",
		Geometry:      geo,
		Features:      zoo.FeaturesOf(prob),
		TrainedEpochs: len(report.Epochs),
		BestCost:      report.Best.Cost,
		CreatedAtUnix: time.Now().Unix(),
	}, report.FinalWeights); err != nil {
		t.Fatal(err)
	}
	return z
}

// TestFleetZooRoutingShortCircuitsSharding covers tentpole item 4: with a
// shared zoo armed on the coordinator and every replica, zoo-eligible
// submissions skip consistent-hash placement (spread round-robin instead),
// the replicas answer them through the inference fast path, and the
// shard-miss accounting (hedged/fallback) stays quiet.
func TestFleetZooRoutingShortCircuitsSharding(t *testing.T) {
	z := pretrainFleetZoo(t)
	sink := &memSink{}
	opt := chaosOptions(sink, nil)
	opt.Zoo = z
	c := New(opt)
	defer c.Close()
	for _, id := range []string{"r1", "r2", "r3"} {
		startTestReplica(t, c, id, service.Options{Zoo: z})
	}

	ctx := context.Background()
	const jobs = 3
	ids := make([]string, 0, jobs)
	for seed := int64(1); seed <= jobs; seed++ {
		st, err := c.Submit(ctx, tinyRequest(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	for _, id := range ids {
		waitFleetState(t, c, id, service.StateDone)
		res, err := c.Result(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Provenance != service.ProvenanceZoo {
			t.Fatalf("job %s provenance = %q, want %q", id, res.Provenance, service.ProvenanceZoo)
		}
		if res.Epochs != 0 {
			t.Fatalf("job %s trained %d epochs through the fleet fast path, want 0", id, res.Epochs)
		}
		if res.Certificate == nil || !res.Certificate.OK() {
			t.Fatalf("job %s served without a passing certificate", id)
		}
	}

	if got := sink.count(EventZooRouted); got != jobs {
		t.Fatalf("%d %s events, want %d", got, EventZooRouted, jobs)
	}
	// Zoo routing must not read as shard misses: the home we report is the
	// replica we chose, so hedged/fallback stay untouched.
	if got := sink.count(EventDeltaFallback); got != 0 {
		t.Fatalf("%d delta_fallback events for non-delta zoo jobs", got)
	}
}

// TestFleetZooRoutingFallsBackWhenIneligible pins the negative: without a
// geometry-compatible policy the predicate declines and jobs route by
// fingerprint as before, with no zoo_routed events.
func TestFleetZooRoutingFallsBackWhenIneligible(t *testing.T) {
	empty, _, err := zoo.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	opt := chaosOptions(sink, nil)
	opt.Zoo = empty
	c := New(opt)
	defer c.Close()
	startTestReplica(t, c, "solo", service.Options{})

	st, err := c.Submit(context.Background(), tinyRequest(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	waitFleetState(t, c, st.ID, service.StateDone)
	if got := sink.count(EventZooRouted); got != 0 {
		t.Fatalf("%d zoo_routed events from an empty zoo", got)
	}
	res, err := c.Result(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Provenance != service.ProvenanceTrained {
		t.Fatalf("provenance = %q, want %q", res.Provenance, service.ProvenanceTrained)
	}
}
