package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVirtualNodes is how many points each replica claims on the ring.
// More points smooth the key distribution; 128 keeps the worst replica
// within ~±20% of the mean key share at fleet sizes this coordinator
// targets, while membership changes stay O(vnodes · log points).
const defaultVirtualNodes = 128

// Ring is a consistent-hash ring over replica IDs. Keys (the service's
// job fingerprints) map to the replica owning the first ring point at or
// after the key's hash; adding a replica only moves keys onto it, and
// removing one only moves the keys it owned — the property that keeps the
// fleet's plan-cache locality intact as replicas join and leave.
//
// Ring is not safe for concurrent use; the coordinator guards it with its
// own mutex.
type Ring struct {
	vnodes  int
	members map[string]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing builds an empty ring with the given virtual-node count per
// replica (<= 0 selects the default).
func NewRing(virtualNodes int) *Ring {
	if virtualNodes <= 0 {
		virtualNodes = defaultVirtualNodes
	}
	return &Ring{vnodes: virtualNodes, members: make(map[string]bool)}
}

// ringHash maps a string to its position on the ring: FNV-64a finalized
// with the SplitMix64 mixer. Raw FNV output over the short, similar
// virtual-node labels clusters enough to leave 1.6× hot spots even at
// hundreds of points per replica; the finalizer's avalanche restores the
// uniform spacing consistent hashing's balance argument assumes.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add inserts a replica's virtual points; adding a member twice is a
// no-op.
func (r *Ring) Add(id string) {
	if r.members[id] {
		return
	}
	r.members[id] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: ringHash(id + "#" + strconv.Itoa(v)), id: id})
	}
	sort.Slice(r.points, func(i, k int) bool { return r.points[i].hash < r.points[k].hash })
}

// Remove deletes a replica's virtual points; removing a non-member is a
// no-op.
func (r *Ring) Remove(id string) {
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Contains reports ring membership.
func (r *Ring) Contains(id string) bool { return r.members[id] }

// Len is the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the member IDs in sorted order.
func (r *Ring) Members() []string {
	ids := make([]string, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Owner returns the key's home replica: the member owning the first point
// at or after the key's hash, wrapping at the top of the ring. ok is false
// on an empty ring.
func (r *Ring) Owner(key string) (id string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id, true
}

// Sequence returns every member exactly once, in the order their points
// appear walking the ring clockwise from the key's position: the home
// replica first, then each successive fallback. This is the fleet's
// failover order — when the home shard is down, the key degrades to the
// next replica on the ring rather than to an arbitrary one, so repeated
// routing decisions agree without coordination.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seq := make([]string, 0, len(r.members))
	seen := make(map[string]bool, len(r.members))
	for i := 0; i < len(r.points) && len(seq) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			seq = append(seq, p.id)
		}
	}
	return seq
}
