package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Agent is the replica side of the fleet protocol: it registers an
// nptsn-serve instance with the coordinator and keeps its heartbeat
// alive. It runs inside the replica process (nptsn-serve's -fleet flag)
// so a replica crash silences the heartbeat with it — which is exactly
// the signal the coordinator's suspect/dead machinery listens for.
type Agent struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// ID is this replica's stable identity on the ring. Reusing an ID
	// across restarts brings the replica's keys home.
	ID string
	// AdvertiseURL is the base URL the coordinator should reach this
	// replica's /v1/jobs API at.
	AdvertiseURL string
	// HTTP is the client for coordinator calls (http.DefaultClient when
	// nil).
	HTTP *http.Client
	// Interval is the heartbeat pace before the coordinator's answer
	// overrides it (default 1s).
	Interval time.Duration
	// Jitter spreads each beat by ±Jitter fraction of the interval
	// (default 0.2), so a fleet started in lockstep does not thunder at
	// the coordinator forever.
	Jitter float64
	// Logf receives agent lifecycle lines (silent when nil).
	Logf func(format string, args ...interface{})

	mu   sync.Mutex
	rng  *rand.Rand
	pace time.Duration
}

func (a *Agent) logf(format string, args ...interface{}) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

func (a *Agent) httpClient() *http.Client {
	if a.HTTP != nil {
		return a.HTTP
	}
	return http.DefaultClient
}

// Run registers the replica (retrying until the coordinator answers) and
// heartbeats until ctx is cancelled, re-registering whenever the
// coordinator stops recognizing the ID — the coordinator-restart path.
// On shutdown it deregisters best-effort, so a draining replica's jobs
// fail over immediately instead of after the heartbeat timeout. Run
// returns nil on ctx cancellation; registration and heartbeat failures
// are retried, never returned.
func (a *Agent) Run(ctx context.Context) error {
	if err := a.registerLoop(ctx); err != nil {
		return nil // ctx cancelled before first contact: nothing to undo
	}
	for {
		if !a.sleep(ctx, a.jittered()) {
			a.deregister()
			return nil
		}
		switch err := a.beat(ctx); {
		case err == nil:
		case ctx.Err() != nil:
			a.deregister()
			return nil
		case isUnknownReplica(err):
			a.logf("fleet agent: coordinator forgot %s, re-registering", a.ID)
			if a.registerLoop(ctx) != nil {
				return nil
			}
		default:
			// Transient failure: keep beating. Death is the coordinator's
			// call to make, not ours.
			a.logf("fleet agent: heartbeat: %v", err)
		}
	}
}

// registerLoop retries registration with capped backoff until it lands
// or ctx dies.
func (a *Agent) registerLoop(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		pace, err := a.register(ctx)
		if err == nil {
			a.mu.Lock()
			a.pace = pace
			a.mu.Unlock()
			a.logf("fleet agent: registered %s at %s (heartbeat %v)", a.ID, a.AdvertiseURL, pace)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.logf("fleet agent: register: %v (retrying in %v)", err, backoff)
		if !a.sleep(ctx, backoff) {
			return ctx.Err()
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

func (a *Agent) register(ctx context.Context) (time.Duration, error) {
	body, err := json.Marshal(registration{ID: a.ID, URL: a.AdvertiseURL})
	if err != nil {
		return 0, err
	}
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, a.Coordinator+"/v1/fleet/replicas", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("coordinator returned %d", resp.StatusCode)
	}
	var reg registered
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return 0, err
	}
	pace := time.Duration(reg.HeartbeatIntervalSec * float64(time.Second))
	if pace <= 0 {
		pace = a.baseInterval()
	}
	return pace, nil
}

// errUnknownReplica marks a heartbeat 404: the coordinator does not know
// this replica and the agent must re-register.
type errUnknownReplica struct{}

func (errUnknownReplica) Error() string { return "fleet: coordinator does not know this replica" }

func isUnknownReplica(err error) bool {
	_, ok := err.(errUnknownReplica)
	return ok
}

func (a *Agent) beat(ctx context.Context) error {
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	url := fmt.Sprintf("%s/v1/fleet/replicas/%s/heartbeat", a.Coordinator, a.ID)
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	resp, err := a.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK:
		return nil
	case http.StatusNotFound:
		return errUnknownReplica{}
	default:
		return fmt.Errorf("coordinator returned %d", resp.StatusCode)
	}
}

// deregister tells the coordinator this replica is leaving on purpose.
// Best-effort on its own short deadline: the replica is shutting down and
// must not hang on a dead coordinator.
func (a *Agent) deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	url := fmt.Sprintf("%s/v1/fleet/replicas/%s", a.Coordinator, a.ID)
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, url, nil)
	if err != nil {
		return
	}
	resp, err := a.httpClient().Do(req)
	if err != nil {
		a.logf("fleet agent: deregister: %v", err)
		return
	}
	drain(resp.Body)
	a.logf("fleet agent: deregistered %s", a.ID)
}

func (a *Agent) baseInterval() time.Duration {
	if a.Interval > 0 {
		return a.Interval
	}
	return time.Second
}

// jittered is the next beat's delay: the coordinator-directed pace spread
// by ±Jitter.
func (a *Agent) jittered() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	pace := a.pace
	if pace <= 0 {
		pace = a.baseInterval()
	}
	jitter := a.Jitter
	if jitter <= 0 {
		jitter = 0.2
	}
	if jitter > 0.9 {
		jitter = 0.9
	}
	if a.rng == nil {
		// Seed from the ID so two replicas never share a jitter stream, and
		// the time so two runs of one replica don't either.
		a.rng = rand.New(rand.NewSource(int64(ringHash(a.ID)) ^ time.Now().UnixNano()))
	}
	spread := 1 + jitter*(2*a.rng.Float64()-1)
	return time.Duration(float64(pace) * spread)
}

// sleep waits d or until ctx dies; false means ctx died.
func (a *Agent) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func drain(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, 1<<20))
	rc.Close()
}
