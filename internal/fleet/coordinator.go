// Package fleet is the distributed serving layer of the NPTSN
// reproduction: a coordinator that fronts N nptsn-serve replicas behind
// the same /v1/jobs API one replica exposes, scaling the planning service
// horizontally while keeping the paper's reliability promise across
// replica failures.
//
// Jobs shard by consistent hashing on the service's problem fingerprint
// (failure.Digest over the canonicalized spec + planning knobs), so every
// problem has a home shard and the per-replica plan cache deduplicates
// fleet-wide: identical submissions land on the same replica and hit its
// cache. Replicas register and send jittered heartbeats; the coordinator
// tracks them through an alive → suspect → dead state machine. When a
// replica dies, its in-flight jobs are re-served to the next replica on
// the ring using service.Client's idempotent adoption-by-fingerprint —
// the target is first asked whether it already owns the work, so a
// failover retried twice (or raced by a duplicate submission) never plans
// the same problem twice on the same replica. When a home shard is down,
// submissions degrade to next-ring routing instead of failing with 503.
package fleet

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obsv"
	"repro/internal/service"
	"repro/internal/zoo"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrNoReplicas is returned when no registered replica is routable
	// (HTTP 503).
	ErrNoReplicas = errors.New("fleet: no replica available")
	// ErrUnknownReplica is returned for heartbeats from replicas the
	// coordinator does not know — the replica must re-register (HTTP 404).
	ErrUnknownReplica = errors.New("fleet: unknown replica")
	// ErrNotFound is returned for unknown fleet job IDs (HTTP 404).
	ErrNotFound = errors.New("fleet: no such job")
	// ErrBadRequest wraps request validation failures caught at the
	// coordinator, before any replica is contacted (HTTP 400).
	ErrBadRequest = errors.New("fleet: invalid request")
)

// ReplicaState is a replica's position in the health state machine.
type ReplicaState string

// The three replica states. A replica is born alive at registration,
// turns suspect when its heartbeat goes quiet past SuspectAfter, dead
// past DeadAfter (or on graceful deregistration), and returns to alive on
// the next heartbeat or registration.
const (
	ReplicaAlive   ReplicaState = "alive"
	ReplicaSuspect ReplicaState = "suspect"
	ReplicaDead    ReplicaState = "dead"
)

// Options configures a Coordinator.
type Options struct {
	// HeartbeatInterval is the pace replicas are told to beat at
	// (default 1s). The monitor sweeps at half this interval.
	HeartbeatInterval time.Duration
	// SuspectAfter is how long a heartbeat may be quiet before the replica
	// turns suspect (default 3 × HeartbeatInterval). Suspect replicas keep
	// their in-flight jobs but new submissions route around them.
	SuspectAfter time.Duration
	// DeadAfter is how long a heartbeat may be quiet before the replica is
	// declared dead and its in-flight jobs fail over (default
	// 8 × HeartbeatInterval). Must exceed SuspectAfter.
	DeadAfter time.Duration
	// CallTimeout bounds every coordinator→replica HTTP attempt
	// (default 10s). This is what turns a hung replica — a connection that
	// accepts and goes silent — into a routable failure instead of a stuck
	// coordinator.
	CallTimeout time.Duration
	// VirtualNodes is the consistent-hash ring's per-replica point count
	// (default 128).
	VirtualNodes int
	// ClientRetries / ClientBackoff tune the per-replica service.Client
	// (defaults 2 / 50ms). The coordinator keeps per-replica retries short:
	// the ring fallback is the real retry.
	ClientRetries int
	ClientBackoff time.Duration
	// HTTP is the shared transport for all replica calls; chaos drills
	// wrap it in fault.Transport (http.DefaultClient when nil).
	HTTP *http.Client
	// Metrics receives the nptsn_fleet_* series. Nil disables metrics.
	Events  obsv.Sink
	Metrics *obsv.Registry
	// Zoo, when non-nil, is the coordinator's read-only view of the shared
	// policy zoo the replicas serve from (typically the same directory,
	// re-read on SIGHUP everywhere). Zoo-eligible submissions short-circuit
	// shard routing: they need no replica-local plan or warm cache, so the
	// coordinator spreads them round-robin across alive replicas instead of
	// anchoring them on a home shard.
	Zoo *zoo.Zoo
}

func (o *Options) withDefaults() Options {
	opt := *o
	if opt.HeartbeatInterval <= 0 {
		opt.HeartbeatInterval = time.Second
	}
	if opt.SuspectAfter <= 0 {
		opt.SuspectAfter = 3 * opt.HeartbeatInterval
	}
	if opt.DeadAfter <= opt.SuspectAfter {
		opt.DeadAfter = 8 * opt.HeartbeatInterval
		if opt.DeadAfter <= opt.SuspectAfter {
			opt.DeadAfter = 2 * opt.SuspectAfter
		}
	}
	if opt.CallTimeout <= 0 {
		opt.CallTimeout = 10 * time.Second
	}
	if opt.ClientRetries <= 0 {
		opt.ClientRetries = 2
	}
	if opt.ClientBackoff <= 0 {
		opt.ClientBackoff = 50 * time.Millisecond
	}
	return opt
}

// replica is the coordinator's record of one nptsn-serve instance.
type replica struct {
	id         string
	url        string
	state      ReplicaState
	lastBeat   time.Time
	registered time.Time
	client     *service.Client
}

// fleetJob is the coordinator's record of one accepted submission: which
// replica owns it now, the journaled request for re-serving it after that
// replica dies, and the last observed status/result.
type fleetJob struct {
	id          string
	fingerprint string
	// routeFp is the fingerprint the job shards by: for delta jobs the
	// BASE fingerprint (so the job lands where the warm cache lives), else
	// the job's own. Handoffs route by it too.
	routeFp string
	// req is the materialized request — delta jobs carry their base spec
	// inline, so any replica can serve a handoff even if it never saw the
	// base job (it degrades to a cold run, not an error).
	req       service.Request
	submitted time.Time

	mu        sync.Mutex
	replicaID string
	remoteID  string
	handoffs  int
	last      service.Status
	haveLast  bool
	terminal  bool
	result    *service.Result
}

// JobStatus is the fleet view of a job: the replica's status snapshot
// under the fleet's own job ID, plus placement detail.
type JobStatus struct {
	service.Status
	// Replica is the ID of the replica currently owning the job.
	Replica string `json:"replica,omitempty"`
	// RemoteID is the job's ID on that replica.
	RemoteID string `json:"remoteId,omitempty"`
	// Handoffs counts how many times the job was re-served after a replica
	// death.
	Handoffs int `json:"handoffs,omitempty"`
}

// ReplicaInfo is one replica's row in the /v1/fleet status.
type ReplicaInfo struct {
	ID    string       `json:"id"`
	URL   string       `json:"url"`
	State ReplicaState `json:"state"`
	// LastHeartbeatAgoSec is the silence on this replica's heartbeat.
	LastHeartbeatAgoSec float64 `json:"lastHeartbeatAgoSec"`
	// LiveJobs counts non-terminal fleet jobs assigned to the replica.
	LiveJobs int `json:"liveJobs"`
}

// FleetStatus is the /v1/fleet payload.
type FleetStatus struct {
	Replicas             []ReplicaInfo `json:"replicas"`
	Alive                int           `json:"alive"`
	Suspect              int           `json:"suspect"`
	Dead                 int           `json:"dead"`
	Jobs                 int           `json:"jobs"`
	LiveJobs             int           `json:"liveJobs"`
	Failovers            int           `json:"failovers"`
	Handoffs             int           `json:"handoffs"`
	HeartbeatIntervalSec float64       `json:"heartbeatIntervalSec"`
}

// Coordinator fronts a fleet of nptsn-serve replicas behind one /v1/jobs
// API. All methods are safe for concurrent use.
type Coordinator struct {
	opt Options
	met *metrics

	mu        sync.Mutex
	replicas  map[string]*replica
	ring      *Ring
	jobs      map[string]*fleetJob
	order     []string
	byFp      map[string]string // fingerprint → fleet job ID
	failovers int
	handoffs  int

	// placing serializes placement per fingerprint (fp → *sync.Mutex), so
	// two racing submissions of the same problem cannot both miss the
	// dedup table and double-place it.
	placing sync.Map

	// busy guards the background refresh/failover pass: the monitor skips
	// a tick rather than piling a second network sweep on a slow one.
	busy atomic.Bool

	// zooRR rotates zoo-routed placements across alive replicas.
	zooRR atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a Coordinator and starts its health monitor.
func New(opt Options) *Coordinator {
	o := opt.withDefaults()
	c := &Coordinator{
		opt:      o,
		met:      newMetrics(o.Metrics),
		replicas: make(map[string]*replica),
		ring:     NewRing(o.VirtualNodes),
		jobs:     make(map[string]*fleetJob),
		byFp:     make(map[string]string),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.monitor()
	return c
}

// Close stops the health monitor. In-flight proxy calls finish on their
// own contexts; replicas keep planning whatever they already own.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

func (c *Coordinator) newClient(url string) *service.Client {
	return &service.Client{
		BaseURL:       url,
		HTTP:          c.opt.HTTP,
		Retries:       c.opt.ClientRetries,
		Backoff:       c.opt.ClientBackoff,
		MaxBackoff:    c.opt.CallTimeout,
		MaxRetryAfter: c.opt.CallTimeout,
	}
}

func newFleetJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("fleet: job id entropy: %v", err)) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// Register adds (or revives) a replica and returns the heartbeat interval
// it should beat at. Registration always marks the replica alive: it is
// the replica's own claim of liveness.
func (c *Coordinator) Register(id, url string) time.Duration {
	now := time.Now()
	c.mu.Lock()
	r := c.replicas[id]
	if r == nil {
		r = &replica{id: id, url: url, registered: now, client: c.newClient(url)}
		c.replicas[id] = r
		c.ring.Add(id)
	} else if r.url != url {
		r.url = url
		r.client = c.newClient(url)
	}
	prev := r.state
	r.state = ReplicaAlive
	r.lastBeat = now
	alive, suspect, dead := c.stateCountsLocked()
	c.mu.Unlock()

	c.met.incRegistered()
	c.met.setStates(alive, suspect, dead)
	if prev != ReplicaAlive {
		c.emit(obsv.Event{Type: EventReplicaUp, Msg: id, V: map[string]float64{"replicas_alive": float64(alive)}})
	}
	return c.opt.HeartbeatInterval
}

// Heartbeat records one beat. A beat from a suspect or dead replica
// revives it (its ring points never left, so its keys come home).
// ErrUnknownReplica tells a replica the coordinator restarted and it must
// re-register.
func (c *Coordinator) Heartbeat(id string) error {
	c.mu.Lock()
	r := c.replicas[id]
	if r == nil {
		c.mu.Unlock()
		return ErrUnknownReplica
	}
	prev := r.state
	r.state = ReplicaAlive
	r.lastBeat = time.Now()
	alive, suspect, dead := c.stateCountsLocked()
	c.mu.Unlock()

	c.met.incHeartbeat()
	if prev != ReplicaAlive {
		c.met.setStates(alive, suspect, dead)
		c.emit(obsv.Event{Type: EventReplicaUp, Msg: id, V: map[string]float64{"replicas_alive": float64(alive)}})
	}
	return nil
}

// Deregister marks a replica dead immediately — the graceful path a
// draining replica takes so its jobs fail over now rather than after the
// heartbeat timeout.
func (c *Coordinator) Deregister(id string) {
	c.mu.Lock()
	r := c.replicas[id]
	if r == nil || r.state == ReplicaDead {
		c.mu.Unlock()
		return
	}
	r.state = ReplicaDead
	quiet := time.Since(r.lastBeat)
	failingOver := c.liveJobsOnLocked(id)
	c.failovers++
	alive, suspect, dead := c.stateCountsLocked()
	c.mu.Unlock()

	c.met.setStates(alive, suspect, dead)
	c.met.incFailover()
	c.emit(obsv.Event{Type: EventReplicaDead, Msg: id, V: map[string]float64{
		"quiet_seconds": quiet.Seconds(), "jobs_failing_over": float64(failingOver)}})
	go c.backgroundSweep()
}

// stateCountsLocked tallies replica states; callers hold c.mu.
func (c *Coordinator) stateCountsLocked() (alive, suspect, dead int) {
	for _, r := range c.replicas {
		switch r.state {
		case ReplicaAlive:
			alive++
		case ReplicaSuspect:
			suspect++
		case ReplicaDead:
			dead++
		}
	}
	return alive, suspect, dead
}

// liveJobsOnLocked counts non-terminal jobs assigned to a replica;
// callers hold c.mu (job locks nest under it).
func (c *Coordinator) liveJobsOnLocked(id string) int {
	n := 0
	for _, j := range c.jobs {
		j.mu.Lock()
		if j.replicaID == id && !j.terminal {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Submit validates a request, dedups it against the fleet's fingerprint
// table, and places it on its home shard — or, when the home shard is
// suspect or dead, on the next replica along the ring.
//
// Delta requests are first materialized: a base referencing a fleet job
// (or a fingerprint the fleet tracks) gets that job's derived spec
// injected inline and its Base rewritten to the base fingerprint. The job
// then routes by the BASE fingerprint — the base's home shard holds the
// plan cache the warm start needs — while any fallback replica can still
// serve it cold from the inline spec, so a dead home shard costs the
// speedup, never the job.
func (c *Coordinator) Submit(ctx context.Context, req service.Request) (JobStatus, error) {
	req, routeFp, dedupFp, err := c.materialize(req)
	if err != nil {
		return JobStatus{}, err
	}

	// One placement at a time per fingerprint: the loser of the race
	// adopts the winner's job through the dedup table instead of planting
	// a duplicate.
	lockFp := dedupFp
	if lockFp == "" {
		lockFp = routeFp
	}
	mi, _ := c.placing.LoadOrStore(lockFp, &sync.Mutex{})
	fpMu := mi.(*sync.Mutex)
	fpMu.Lock()
	defer fpMu.Unlock()

	if dedupFp != "" {
		if j := c.usableJobByFingerprint(dedupFp); j != nil {
			c.met.incDeduped()
			return j.view(), nil
		}
	}

	// Zoo short-circuit, checked before shard routing: a submission the
	// shared policy zoo can answer needs no home shard's plan or warm
	// cache — any replica serves it at inference cost — so it spreads
	// round-robin instead of hashing onto the ring.
	zooRouted := service.ZooEligible(c.opt.Zoo, req)
	var order []*replica
	var home homeInfo
	if zooRouted {
		order, home = c.routeZoo(routeFp)
	} else {
		order, home = c.route(routeFp)
	}
	if len(order) == 0 {
		return JobStatus{}, ErrNoReplicas
	}
	var lastErr error
	for _, rep := range order {
		st, adopted, err := c.place(ctx, rep, dedupFp, req)
		if err != nil {
			lastErr = err
			continue
		}
		j := &fleetJob{
			id: newFleetJobID(),
			// The replica reports the derived fingerprint it assigned; for
			// base-by-reference deltas this is the first time it is known.
			fingerprint: st.Fingerprint,
			routeFp:     routeFp,
			req:         req,
			submitted:   time.Now().UTC(),
			replicaID:   rep.id,
			remoteID:    st.ID,
			last:        st,
			haveLast:    true,
			terminal:    st.State.Terminal(),
		}
		c.mu.Lock()
		c.jobs[j.id] = j
		c.order = append(c.order, j.id)
		c.byFp[j.fingerprint] = j.id
		c.mu.Unlock()
		c.met.incSubmitted()
		if req.IsDelta() {
			c.met.incDelta()
		}
		if adopted {
			c.met.incAdopted()
		}
		if zooRouted {
			c.met.incZooRouted()
			c.emit(obsv.Event{Type: EventZooRouted, Msg: j.id,
				V: map[string]float64{"replicas_skipped": boolTo01(rep.id != home.id)}})
		}
		if rep.id != home.id {
			// The home shard did not take the job: count why.
			if home.state == ReplicaSuspect {
				c.met.incHedged()
			} else {
				c.met.incFallback()
			}
			if req.IsDelta() {
				// The delta landed off the base's home shard: it planned
				// cold (the fallback replica has no warm cache), but it
				// planned.
				c.met.incDeltaFallback()
				c.emit(obsv.Event{Type: EventDeltaFallback, Msg: j.id, V: map[string]float64{
					"home_suspect": boolTo01(home.state == ReplicaSuspect)}})
			}
		}
		return j.view(), nil
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return JobStatus{}, fmt.Errorf("fleet: no replica took the job: %w", lastErr)
}

// materialize resolves a delta request into the form the fleet can place
// anywhere: the base spec inline, Base rewritten to the base fingerprint.
// It returns the request, the fingerprint to route by (the base's for
// delta jobs) and the derived fingerprint for dedup/adoption ("" when it
// cannot be computed coordinator-side — an untracked base fingerprint
// without an inline spec — in which case only the replicas holding the
// base spec can serve the job).
func (c *Coordinator) materialize(req service.Request) (service.Request, string, string, error) {
	if !req.IsDelta() {
		fp, err := service.Fingerprint(req)
		if err != nil {
			return service.Request{}, "", "", fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return req, fp, fp, nil
	}
	var baseJob *fleetJob
	switch len(req.Base) {
	case 16: // fleet job ID
		baseJob = c.lookup(req.Base)
		if baseJob == nil && !req.HasInlineProblem() {
			return service.Request{}, "", "", fmt.Errorf("%w: delta base job %q", ErrNotFound, req.Base)
		}
	case 32: // plan-cache fingerprint; the fleet may or may not track it
		c.mu.Lock()
		if id, ok := c.byFp[req.Base]; ok {
			baseJob = c.jobs[id]
		}
		c.mu.Unlock()
	default:
		return service.Request{}, "", "", fmt.Errorf("%w: base %q is neither a 16-hex job ID nor a 32-hex fingerprint", ErrBadRequest, req.Base)
	}
	baseFp := req.Base
	if baseJob != nil {
		baseFp = baseJob.fingerprint
		if !req.HasInlineProblem() {
			// Inject the tracked base job's derived spec so any replica can
			// serve this delta; inherit its planning knobs the same way the
			// replica's manager would, keeping fingerprints stable across
			// home and fallback placements.
			baseSelf, err := baseJob.req.Derive(baseJob.req.Problem)
			if err != nil {
				return service.Request{}, "", "", fmt.Errorf("%w: base job %s spec: %v", ErrBadRequest, req.Base, err)
			}
			req.Problem = baseSelf.Problem
			if req.Params == (service.PlanParams{}) {
				req.Params = baseSelf.Params
			}
			if !req.Certify && baseSelf.Certify {
				req.Certify = true
				if req.CertifySamples == 0 {
					req.CertifySamples = baseSelf.CertifySamples
				}
			}
		}
		req.Base = baseFp
	}
	dedupFp := ""
	if req.HasInlineProblem() {
		fp, err := service.Fingerprint(req)
		if err != nil {
			return service.Request{}, "", "", fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		dedupFp = fp
	}
	if len(baseFp) != 32 {
		// An unresolvable job-ID base with an inline spec: route by the
		// derived fingerprint; the replica will plan it cold.
		baseFp = dedupFp
	}
	return req, baseFp, dedupFp, nil
}

// usableJobByFingerprint returns the fingerprint's tracked job when it can
// answer a duplicate submission: live, or terminal-and-done. A failed or
// cancelled job steps aside for a fresh attempt.
func (c *Coordinator) usableJobByFingerprint(fp string) *fleetJob {
	c.mu.Lock()
	id, ok := c.byFp[fp]
	j := c.jobs[id]
	c.mu.Unlock()
	if !ok || j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.terminal || (j.haveLast && j.last.State == service.StateDone) {
		// Returning under j.mu is fine: view() re-locks after we return.
		return j
	}
	return nil
}

// homeInfo names the key's true home shard (first on the ring regardless
// of health) so routing decisions can be attributed.
type homeInfo struct {
	id    string
	state ReplicaState
}

// route returns the routable replicas for a fingerprint — alive ones in
// ring order, then suspect ones as a last resort — plus the identity and
// state of the true home shard. Dead replicas stay on the ring (their
// keys come home when they revive) but are never routed to.
func (c *Coordinator) route(fp string) ([]*replica, homeInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.ring.Sequence(fp)
	var alive, suspect []*replica
	var home homeInfo
	for i, id := range seq {
		r := c.replicas[id]
		if r == nil {
			continue
		}
		if i == 0 {
			home = homeInfo{id: r.id, state: r.state}
		}
		switch r.state {
		case ReplicaAlive:
			alive = append(alive, r)
		case ReplicaSuspect:
			suspect = append(suspect, r)
		}
	}
	return append(alive, suspect...), home
}

// routeZoo returns the routable replicas for a zoo-eligible submission:
// the same alive-then-suspect candidates route would produce, rotated by
// a round-robin counter instead of anchored on the fingerprint's home
// shard. The reported home is the rotation's first candidate, so the
// home-shard-miss accounting (hedged/fallback/delta-fallback) stays quiet
// for zoo-routed jobs — there is no home to miss.
func (c *Coordinator) routeZoo(fp string) ([]*replica, homeInfo) {
	order, home := c.route(fp)
	if len(order) == 0 {
		return order, home
	}
	k := int((c.zooRR.Add(1) - 1) % uint64(len(order)))
	rotated := make([]*replica, 0, len(order))
	rotated = append(rotated, order[k:]...)
	rotated = append(rotated, order[:k]...)
	return rotated, homeInfo{id: rotated[0].id, state: rotated[0].state}
}

// place puts one fingerprint's work on one replica, idempotently: the
// replica is first asked whether it already owns a live or done job with
// the fingerprint (adoption), and only then submitted to. Adoption is
// what makes a failover retried twice — or raced against a duplicate
// submission — train exactly once per replica.
func (c *Coordinator) place(ctx context.Context, rep *replica, fp string, req service.Request) (st service.Status, adopted bool, err error) {
	cctx, cancel := context.WithTimeout(ctx, c.opt.CallTimeout)
	defer cancel()
	if fp != "" { // unknown derived fingerprint: nothing to adopt by
		if st, ok := rep.client.FindByFingerprint(cctx, fp); ok &&
			st.State != service.StateFailed && st.State != service.StateCancelled {
			return st, true, nil
		}
	}
	st, err = rep.client.Submit(cctx, req)
	return st, false, err
}

// lookup resolves a fleet job ID.
func (c *Coordinator) lookup(id string) *fleetJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

// replicaByID resolves a replica.
func (c *Coordinator) replicaByID(id string) *replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicas[id]
}

// Get returns a job's fleet status, refreshed from its replica when the
// job is live and the replica reachable; otherwise the last observed
// snapshot (the monitor keeps it fresh and hands the job off if its
// replica is dead).
func (c *Coordinator) Get(ctx context.Context, id string) (JobStatus, error) {
	j := c.lookup(id)
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	c.refresh(ctx, j)
	return j.view(), nil
}

// List returns every tracked job's last observed status in submission
// order, without touching the replicas.
func (c *Coordinator) List() []JobStatus {
	c.mu.Lock()
	jobs := make([]*fleetJob, 0, len(c.order))
	for _, id := range c.order {
		jobs = append(jobs, c.jobs[id])
	}
	c.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}

// Result returns a finished job's result — from the coordinator's cache
// when the monitor already fetched it (which also survives the owning
// replica dying afterwards), else proxied from the replica.
func (c *Coordinator) Result(ctx context.Context, id string) (*service.Result, error) {
	j := c.lookup(id)
	if j == nil {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	cached := j.result
	rid, remote := j.replicaID, j.remoteID
	j.mu.Unlock()
	if cached != nil {
		r := *cached
		r.JobID = id
		return &r, nil
	}
	rep := c.replicaByID(rid)
	if rep == nil {
		return nil, ErrNoReplicas
	}
	cctx, cancel := context.WithTimeout(ctx, c.opt.CallTimeout)
	defer cancel()
	res, err := rep.client.Result(cctx, remote)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	if j.result == nil && j.remoteID == remote {
		j.result = res
	}
	j.mu.Unlock()
	r := *res
	r.JobID = id
	return &r, nil
}

// Cancel proxies a cancellation to the owning replica.
func (c *Coordinator) Cancel(ctx context.Context, id string) (JobStatus, error) {
	j := c.lookup(id)
	if j == nil {
		return JobStatus{}, ErrNotFound
	}
	j.mu.Lock()
	rid, remote := j.replicaID, j.remoteID
	j.mu.Unlock()
	rep := c.replicaByID(rid)
	if rep == nil {
		return JobStatus{}, ErrNoReplicas
	}
	cctx, cancel := context.WithTimeout(ctx, c.opt.CallTimeout)
	defer cancel()
	if _, err := rep.client.Cancel(cctx, remote); err != nil {
		return JobStatus{}, err
	}
	c.refresh(ctx, j)
	return j.view(), nil
}

// Fleet snapshots replica health and routing counters for /v1/fleet.
func (c *Coordinator) Fleet() FleetStatus {
	c.mu.Lock()
	replicas := make([]*replica, 0, len(c.replicas))
	for _, r := range c.replicas {
		replicas = append(replicas, r)
	}
	jobs := make([]*fleetJob, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	fs := FleetStatus{
		Jobs:                 len(jobs),
		Failovers:            c.failovers,
		Handoffs:             c.handoffs,
		HeartbeatIntervalSec: c.opt.HeartbeatInterval.Seconds(),
	}
	c.mu.Unlock()

	liveOn := make(map[string]int)
	for _, j := range jobs {
		j.mu.Lock()
		if !j.terminal {
			fs.LiveJobs++
			liveOn[j.replicaID]++
		}
		j.mu.Unlock()
	}
	now := time.Now()
	for _, r := range replicas {
		c.mu.Lock()
		info := ReplicaInfo{
			ID: r.id, URL: r.url, State: r.state,
			LastHeartbeatAgoSec: now.Sub(r.lastBeat).Seconds(),
			LiveJobs:            liveOn[r.id],
		}
		c.mu.Unlock()
		switch info.State {
		case ReplicaAlive:
			fs.Alive++
		case ReplicaSuspect:
			fs.Suspect++
		case ReplicaDead:
			fs.Dead++
		}
		fs.Replicas = append(fs.Replicas, info)
	}
	sort.Slice(fs.Replicas, func(i, k int) bool { return fs.Replicas[i].ID < fs.Replicas[k].ID })
	return fs
}

// view snapshots the job as its fleet-facing status.
func (j *fleetJob) view() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.last
	if !j.haveLast {
		st = service.Status{State: service.StateQueued, SubmittedAt: j.submitted}
	}
	st.ID = j.id
	st.SubmittedAt = j.submitted
	st.Fingerprint = j.fingerprint
	return JobStatus{Status: st, Replica: j.replicaID, RemoteID: j.remoteID, Handoffs: j.handoffs}
}

// refresh pulls a live job's status from its replica; failures leave the
// last snapshot standing (the monitor's failover path owns recovery).
func (c *Coordinator) refresh(ctx context.Context, j *fleetJob) {
	j.mu.Lock()
	if j.terminal {
		j.mu.Unlock()
		return
	}
	rid, remote := j.replicaID, j.remoteID
	j.mu.Unlock()
	rep := c.replicaByID(rid)
	if rep == nil {
		return
	}
	cctx, cancel := context.WithTimeout(ctx, c.opt.CallTimeout)
	defer cancel()
	st, err := rep.client.Get(cctx, remote)
	if err != nil {
		return
	}
	done := false
	j.mu.Lock()
	if j.remoteID == remote { // discard reads that raced a handoff
		j.last, j.haveLast = st, true
		if st.State.Terminal() {
			j.terminal = true
		}
		done = st.State == service.StateDone && j.result == nil
	}
	j.mu.Unlock()
	if done {
		c.cacheResult(ctx, j, rep, remote)
	}
}

// cacheResult copies a done job's result into the coordinator, so the
// result outlives the replica that computed it.
func (c *Coordinator) cacheResult(ctx context.Context, j *fleetJob, rep *replica, remote string) {
	cctx, cancel := context.WithTimeout(ctx, c.opt.CallTimeout)
	defer cancel()
	res, err := rep.client.Result(cctx, remote)
	if err != nil {
		return
	}
	j.mu.Lock()
	if j.result == nil && j.remoteID == remote {
		j.result = res
	}
	j.mu.Unlock()
}

// monitor is the coordinator's heartbeat: every half heartbeat interval
// it advances the replica state machine inline (cheap, no network), and
// kicks one background pass that refreshes live jobs and fails over jobs
// stranded on dead replicas.
func (c *Coordinator) monitor() {
	defer close(c.done)
	interval := c.opt.HeartbeatInterval / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.sweepStates()
			go c.backgroundSweep()
		}
	}
}

// sweepStates advances alive → suspect → dead by heartbeat silence.
func (c *Coordinator) sweepStates() {
	now := time.Now()
	type transition struct {
		id    string
		to    ReplicaState
		quiet time.Duration
		jobs  int
	}
	var trans []transition
	c.mu.Lock()
	for _, r := range c.replicas {
		quiet := now.Sub(r.lastBeat)
		switch {
		case r.state == ReplicaAlive && quiet > c.opt.SuspectAfter:
			r.state = ReplicaSuspect
			trans = append(trans, transition{id: r.id, to: ReplicaSuspect, quiet: quiet})
		case r.state == ReplicaSuspect && quiet > c.opt.DeadAfter:
			r.state = ReplicaDead
			c.failovers++
			trans = append(trans, transition{id: r.id, to: ReplicaDead, quiet: quiet, jobs: c.liveJobsOnLocked(r.id)})
		}
	}
	alive, suspect, dead := c.stateCountsLocked()
	c.mu.Unlock()

	if len(trans) == 0 {
		return
	}
	c.met.setStates(alive, suspect, dead)
	for _, tr := range trans {
		if tr.to == ReplicaSuspect {
			c.emit(obsv.Event{Type: EventReplicaSuspect, Msg: tr.id,
				V: map[string]float64{"quiet_seconds": tr.quiet.Seconds()}})
		} else {
			c.met.incFailover()
			c.emit(obsv.Event{Type: EventReplicaDead, Msg: tr.id, V: map[string]float64{
				"quiet_seconds": tr.quiet.Seconds(), "jobs_failing_over": float64(tr.jobs)}})
		}
	}
}

// backgroundSweep runs at most one network pass at a time: refresh every
// live job's status (caching done results), then hand off jobs stranded
// on dead replicas.
func (c *Coordinator) backgroundSweep() {
	if !c.busy.CompareAndSwap(false, true) {
		return
	}
	defer c.busy.Store(false)
	ctx := context.Background()

	c.mu.Lock()
	jobs := make([]*fleetJob, 0, len(c.order))
	for _, id := range c.order {
		jobs = append(jobs, c.jobs[id])
	}
	c.mu.Unlock()

	for _, j := range jobs {
		c.refresh(ctx, j)
		j.mu.Lock()
		stranded := !j.terminal
		rid := j.replicaID
		j.mu.Unlock()
		if !stranded {
			continue
		}
		rep := c.replicaByID(rid)
		if rep == nil {
			continue
		}
		c.mu.Lock()
		deadOwner := rep.state == ReplicaDead
		c.mu.Unlock()
		if deadOwner {
			c.handoff(ctx, j, rid)
		}
	}
}

// handoff re-serves one job stranded on a dead replica to the next
// routable replica along the ring, adopting work the target already owns.
// With nothing routable the job stays put; the next sweep retries.
func (c *Coordinator) handoff(ctx context.Context, j *fleetJob, from string) {
	j.mu.Lock()
	if j.terminal || j.replicaID != from {
		j.mu.Unlock()
		return
	}
	fp, req := j.fingerprint, j.req
	routeFp := j.routeFp
	if routeFp == "" {
		routeFp = fp
	}
	j.mu.Unlock()

	order, _ := c.route(routeFp)
	for _, rep := range order {
		if rep.id == from {
			continue
		}
		st, adopted, err := c.place(ctx, rep, fp, req)
		if err != nil {
			continue
		}
		j.mu.Lock()
		j.replicaID, j.remoteID = rep.id, st.ID
		j.last, j.haveLast = st, true
		j.handoffs++
		if st.State.Terminal() {
			j.terminal = true
		}
		n := j.handoffs
		j.mu.Unlock()
		c.mu.Lock()
		c.handoffs++
		c.mu.Unlock()
		c.met.incHandoff()
		if adopted {
			c.met.incAdopted()
		}
		adoptedV := 0.0
		if adopted {
			adoptedV = 1
		}
		c.emit(obsv.Event{Type: EventJobHandoff, Msg: fmt.Sprintf("%s %s->%s", j.id, from, rep.id),
			V: map[string]float64{"handoffs": float64(n), "adopted": adoptedV}})
		return
	}
}

// emit sends one lifecycle event; sink errors are counted, not fatal.
func (c *Coordinator) emit(e obsv.Event) {
	if c.opt.Events == nil {
		return
	}
	if err := c.opt.Events.Emit(e); err != nil {
		c.met.incEventErr()
	}
}
