package fault

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport is a fault-injecting http.RoundTripper: it consults the
// injector's PointRoundTrip rules before (and, for torn bodies, after)
// delegating to the base transport, so the same seeded, replayable chaos
// schedules that cover the filesystem and compute paths also cover the
// wire. The kinds map to the network failure modes a distributed caller
// must survive:
//
//   - error: the request fails with an injected transport error before it
//     is sent — a refused connection or reset, where the caller cannot
//     know whether the server saw anything.
//   - delay: the request is held for Rule.Delay before being sent — a slow
//     network or an overloaded peer.
//   - hang: the request blocks until its context is cancelled — a black
//     hole route or a peer that accepted the connection and went silent.
//     Callers without per-attempt timeouts never come back.
//   - torn: the request is sent and the response returned, but its body is
//     truncated to Rule.TornBytes and then fails with
//     io.ErrUnexpectedEOF — the connection died mid-response, after the
//     server did its work.
//
// A Transport with a nil injector delegates every request untouched, so
// production paths can keep one code path.
type Transport struct {
	// In is the armed schedule; nil injects nothing.
	In *Injector
	// Base performs real round trips (http.DefaultTransport when nil).
	Base http.RoundTripper
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper with per-request fault decisions.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	r, n, ok := t.In.decide(PointRoundTrip, func(k Kind) bool {
		return k == KindError || k == KindDelay || k == KindHang || k == KindTorn
	})
	if !ok {
		return t.base().RoundTrip(req)
	}
	switch r.Kind {
	case KindError:
		return nil, fmt.Errorf("fault: injected transport error at %s call %d (seed %d)", PointRoundTrip, n, t.In.Seed())
	case KindHang:
		<-req.Context().Done()
		return nil, fmt.Errorf("fault: injected hang at %s call %d (seed %d): %w",
			PointRoundTrip, n, t.In.Seed(), req.Context().Err())
	case KindDelay:
		tm := time.NewTimer(r.Delay)
		defer tm.Stop()
		select {
		case <-tm.C:
		case <-req.Context().Done():
			return nil, fmt.Errorf("fault: injected delay at %s call %d (seed %d): %w",
				PointRoundTrip, n, t.In.Seed(), req.Context().Err())
		}
		return t.base().RoundTrip(req)
	case KindTorn:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return resp, err
		}
		// The truncation must look like a dead connection, not a short but
		// well-formed body: the advertised length is dropped and the reader
		// ends in ErrUnexpectedEOF.
		resp.Body = &tornBody{rc: resp.Body, remaining: r.TornBytes}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return t.base().RoundTrip(req)
}

// tornBody serves at most `remaining` bytes of the real body, then fails
// every read with io.ErrUnexpectedEOF — a response cut off mid-flight.
type tornBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		// The real body was shorter than the torn budget: the cut still
		// happened from the reader's point of view.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *tornBody) Close() error { return b.rc.Close() }
