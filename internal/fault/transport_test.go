package fault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// wireServer is a trivial backend every transport test talks to.
func wireServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"answer":"0123456789abcdef0123456789abcdef"}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTransportPassThroughWithoutInjector(t *testing.T) {
	srv := wireServer(t)
	cl := &http.Client{Transport: &Transport{}}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !strings.Contains(string(body), "answer") {
		t.Fatalf("pass-through read = %q, %v", body, err)
	}
}

func TestTransportInjectedError(t *testing.T) {
	srv := wireServer(t)
	in := New(7, Rule{Point: PointRoundTrip, Kind: KindError, Calls: []int{1}})
	cl := &http.Client{Transport: &Transport{In: in}}
	if _, err := cl.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "injected transport error") {
		t.Fatalf("first call error = %v, want injected transport error", err)
	}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("second call should pass through: %v", err)
	}
	resp.Body.Close()
	if got := in.Fired(PointRoundTrip); got != 1 {
		t.Fatalf("fired %d, want 1", got)
	}
}

func TestTransportTornBody(t *testing.T) {
	srv := wireServer(t)
	in := New(7, Rule{Point: PointRoundTrip, Kind: KindTorn, Calls: []int{1}, TornBytes: 10})
	cl := &http.Client{Transport: &Transport{In: in}}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("torn responses fail at read time, not request time: %v", err)
	}
	defer resp.Body.Close()
	if resp.ContentLength != -1 {
		t.Fatalf("torn response still advertises ContentLength %d", resp.ContentLength)
	}
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read = %q, %v; want io.ErrUnexpectedEOF", body, err)
	}
	if len(body) != 10 {
		t.Fatalf("read %d bytes before the tear, want 10", len(body))
	}
}

func TestTransportHangReleasesOnContext(t *testing.T) {
	srv := wireServer(t)
	in := New(7, Rule{Point: PointRoundTrip, Kind: KindHang, Calls: []int{1}})
	cl := &http.Client{Transport: &Transport{In: in}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = cl.Do(req)
	if err == nil {
		t.Fatal("hung request returned a response")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("hang did not release on context cancellation (took %s)", time.Since(start))
	}
}

func TestTransportDelayThenSucceeds(t *testing.T) {
	srv := wireServer(t)
	in := New(7, Rule{Point: PointRoundTrip, Kind: KindDelay, Delay: 30 * time.Millisecond, Calls: []int{1}})
	cl := &http.Client{Transport: &Transport{In: in}}
	start := time.Now()
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed request returned after %s, want >= 30ms", d)
	}
}

// TestTransportScheduleParsesFromSpec: the wire point works through the
// same -fault grammar the CLIs expose.
func TestTransportScheduleParsesFromSpec(t *testing.T) {
	in, err := Parse(3, "http.roundtrip:torn:calls=2:bytes=8;http.roundtrip:delay:delay=1ms:p=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.rules) != 2 || in.rules[0].Point != PointRoundTrip {
		t.Fatalf("parsed rules = %+v", in.rules)
	}
}
