package fault

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// firingSet evaluates which of the first n invocations of point fire under
// a fresh injector with the given schedule.
func firingSet(seed int64, rule Rule, point string, n int) []int {
	in := New(seed, rule)
	var fired []int
	for i := 1; i <= n; i++ {
		if in.Err(point) != nil {
			fired = append(fired, i)
		}
	}
	return fired
}

func TestScheduleIsDeterministicPerSeed(t *testing.T) {
	rule := Rule{Point: "fs.write", Kind: KindError, Prob: 0.1}
	a := firingSet(7, rule, "fs.write", 1000)
	b := firingSet(7, rule, "fs.write", 1000)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) > 300 {
		t.Fatalf("p=0.1 over 1000 calls fired %d times", len(a))
	}
	c := firingSet(8, rule, "fs.write", 1000)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("distinct seeds produced identical schedules")
	}
}

// TestScheduleIsOrderIndependent drives the same point from 8 goroutines
// and checks the number of injected faults matches the sequential
// schedule: the per-invocation decision depends on the call number, not on
// which goroutine drew it.
func TestScheduleIsOrderIndependent(t *testing.T) {
	rule := Rule{Point: "fs.write", Kind: KindError, Prob: 0.25}
	const calls = 800
	want := len(firingSet(42, rule, "fs.write", calls))

	in := New(42, rule)
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < calls/8; i++ {
				if in.Err("fs.write") != nil {
					local++
				}
			}
			mu.Lock()
			got += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if got != want {
		t.Fatalf("concurrent run injected %d faults, sequential schedule says %d", got, want)
	}
	if in.Calls("fs.write") != calls {
		t.Fatalf("calls = %d, want %d", in.Calls("fs.write"), calls)
	}
	if in.Fired("fs.write") != want {
		t.Fatalf("fired = %d, want %d", in.Fired("fs.write"), want)
	}
}

func TestCallScheduledRules(t *testing.T) {
	in := New(1, Rule{Point: "fs.sync", Kind: KindENOSPC, Calls: []int{2, 4}})
	var errs []error
	for i := 0; i < 5; i++ {
		errs = append(errs, in.Err("fs.sync"))
	}
	for i, wantErr := range []bool{false, true, false, true, false} {
		if (errs[i] != nil) != wantErr {
			t.Fatalf("call %d: err = %v, want firing %v", i+1, errs[i], wantErr)
		}
	}
	if !errors.Is(errs[1], syscall.ENOSPC) {
		t.Fatalf("ENOSPC rule error %v does not wrap syscall.ENOSPC", errs[1])
	}
	if !strings.Contains(errs[1].Error(), "seed 1") {
		t.Fatalf("injected error %v does not name its seed", errs[1])
	}
}

func TestKindsAreSegregatedByConsultingMethod(t *testing.T) {
	// A torn rule must not surface through Err, and an error rule must not
	// surface through Torn — the methods consult disjoint kind families.
	in := New(1,
		Rule{Point: "fs.torn", Kind: KindTorn, Prob: 1, TornBytes: 9},
		Rule{Point: "fs.torn", Kind: KindError, Prob: 1},
	)
	if n := in.Torn("fs.torn"); n != 9 {
		t.Fatalf("Torn = %d, want 9", n)
	}
	if err := in.Err("fs.torn"); err == nil {
		t.Fatal("error rule did not fire through Err")
	}
	inErr := New(1, Rule{Point: "fs.torn", Kind: KindError, Prob: 1})
	if n := inErr.Torn("fs.torn"); n != -1 {
		t.Fatalf("error rule leaked through Torn: %d", n)
	}
}

func TestPrefixPointMatching(t *testing.T) {
	in := New(1, Rule{Point: "fs.*", Kind: KindError, Prob: 1})
	if in.Err("fs.write") == nil || in.Err("fs.rename") == nil {
		t.Fatal("fs.* did not match fs points")
	}
	if in.Err("core.explore") != nil {
		t.Fatal("fs.* matched a core point")
	}
}

func TestFirePanicHangDelay(t *testing.T) {
	panicked := func(in *Injector) (msg string) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		in.Fire(context.Background(), PointExplore)
		return ""
	}
	in := New(3, Rule{Point: PointExplore, Kind: KindPanic, Calls: []int{2}})
	if msg := panicked(in); msg != "" {
		t.Fatalf("call 1 panicked: %s", msg)
	}
	msg := panicked(in)
	if !strings.Contains(msg, "injected panic") || !strings.Contains(msg, "seed 3") {
		t.Fatalf("call 2 panic message %q", msg)
	}

	// Hang blocks until the context is cancelled.
	hang := New(1, Rule{Point: PointPlan, Kind: KindHang, Prob: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		hang.Fire(ctx, PointPlan)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("hang returned before cancellation")
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hang did not release on cancellation")
	}

	// Delay sleeps its configured latency.
	slow := New(1, Rule{Point: PointPlan, Kind: KindDelay, Prob: 1, Delay: 30 * time.Millisecond})
	start := time.Now()
	slow.Fire(context.Background(), PointPlan)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay slept only %s", d)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Err("fs.write"); err != nil {
		t.Fatal(err)
	}
	if n := in.Torn("fs.torn"); n != -1 {
		t.Fatalf("nil Torn = %d", n)
	}
	in.Fire(context.Background(), PointPlan) // must not panic
	if in.Calls("fs.write") != 0 || in.Fired("fs.write") != 0 || in.Seed() != 0 {
		t.Fatal("nil injector reported activity")
	}
	if in.String() != "fault: off" {
		t.Fatalf("nil String = %q", in.String())
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("fs.torn:torn:calls=3:bytes=24; core.explore:panic:p=0.01 ;service.plan:delay:delay=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if r := rules[0]; r.Point != "fs.torn" || r.Kind != KindTorn || r.TornBytes != 24 || len(r.Calls) != 1 || r.Calls[0] != 3 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if r := rules[1]; r.Kind != KindPanic || r.Prob != 0.01 {
		t.Fatalf("rule 1 = %+v", r)
	}
	if r := rules[2]; r.Kind != KindDelay || r.Delay != 250*time.Millisecond || r.Prob != 1 {
		t.Fatalf("rule 2 = %+v", r)
	}

	for _, bad := range []string{
		"",
		"fs.write",
		"fs.write:whatever",
		"fs.write:error:p=2",
		"fs.write:error:calls=0",
		"fs.write:error:bogus=1",
		"fs.write:error:p",
		"service.plan:delay",
		"fs.torn:torn:bytes=-1",
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}
}

func TestRuleStringRoundTrips(t *testing.T) {
	rules := []Rule{
		// Prob 1 because ParseRules defaults to it (Calls wins when set).
		{Point: "fs.torn", Kind: KindTorn, Prob: 1, Calls: []int{3}, TornBytes: 24},
		{Point: "core.explore", Kind: KindPanic, Prob: 0.05},
		{Point: "service.plan", Kind: KindDelay, Prob: 1, Delay: 100 * time.Millisecond},
	}
	for _, r := range rules {
		back, err := ParseRules(r.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", r.String(), err)
		}
		if fmt.Sprintf("%+v", back[0]) != fmt.Sprintf("%+v", r) {
			t.Fatalf("round trip %q: %+v != %+v", r.String(), back[0], r)
		}
	}
}
