package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseRules reads the compact schedule grammar the nptsn-serve -fault
// flag uses (and Rule.String prints):
//
//	rule      := point ":" kind *(":" option)
//	schedule  := rule *(";" rule)
//	option    := "p=" float | "calls=" int *("," int)
//	           | "delay=" duration | "bytes=" int
//
// Examples:
//
//	fs.torn:torn:calls=3:bytes=24
//	core.explore:panic:p=0.01;fs.write:enospc:p=0.05
//	service.plan:delay:delay=250ms:p=0.5
//
// A rule without p= or calls= fires on every invocation of its point.
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty schedule %q", spec)
	}
	return rules, nil
}

// Parse builds an injector straight from a seed and a schedule spec.
func Parse(seed int64, spec string) (*Injector, error) {
	rules, err := ParseRules(spec)
	if err != nil {
		return nil, err
	}
	return New(seed, rules...), nil
}

func parseRule(raw string) (Rule, error) {
	parts := strings.Split(raw, ":")
	if len(parts) < 2 || parts[0] == "" {
		return Rule{}, fmt.Errorf("fault: rule %q needs point:kind", raw)
	}
	r := Rule{Point: parts[0], Prob: 1}
	switch parts[1] {
	case "error":
		r.Kind = KindError
	case "enospc":
		r.Kind = KindENOSPC
	case "torn":
		r.Kind = KindTorn
	case "panic":
		r.Kind = KindPanic
	case "hang":
		r.Kind = KindHang
	case "delay":
		r.Kind = KindDelay
	default:
		return Rule{}, fmt.Errorf("fault: rule %q: unknown kind %q", raw, parts[1])
	}
	for _, opt := range parts[2:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Rule{}, fmt.Errorf("fault: rule %q: option %q is not key=value", raw, opt)
		}
		switch key {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Rule{}, fmt.Errorf("fault: rule %q: probability %q not in [0,1]", raw, val)
			}
			r.Prob = p
		case "calls":
			for _, c := range strings.Split(val, ",") {
				n, err := strconv.Atoi(c)
				if err != nil || n < 1 {
					return Rule{}, fmt.Errorf("fault: rule %q: call number %q", raw, c)
				}
				r.Calls = append(r.Calls, n)
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("fault: rule %q: delay %q", raw, val)
			}
			r.Delay = d
		case "bytes":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("fault: rule %q: bytes %q", raw, val)
			}
			r.TornBytes = n
		default:
			return Rule{}, fmt.Errorf("fault: rule %q: unknown option %q", raw, key)
		}
	}
	if r.Kind == KindDelay && r.Delay == 0 {
		return Rule{}, fmt.Errorf("fault: rule %q: delay kind needs delay=", raw)
	}
	return r, nil
}
