// Package fault is a deterministic, seedable fault-injection layer for
// chaos-testing the planning service and its persistence path. Production
// code exposes named injection points (the Point* constants); an Injector
// armed with a schedule of Rules decides, per point invocation, whether to
// inject a failure and which kind.
//
// Determinism is the whole point: whether invocation n of a point fires is
// a pure function of (seed, point name, n), derived through the same
// SplitMix64 generator the planner uses for reproducible training
// (internal/rng). The decision is independent of goroutine interleaving,
// so a chaos failure observed once reproduces bit-exactly from its printed
// seed — no matter how the scheduler reorders the workers that triggered
// it.
//
// Three families of injection points exist:
//
//   - Filesystem points (fs.*), consulted by internal/serialize's atomic
//     write pipeline via the FS adapter: injected write/fsync/rename
//     errors, ENOSPC, and torn short-writes that leave a truncated file
//     behind a "successful" write.
//   - Compute points (core.*, service.*), fired by the planner's
//     exploration workers and the service's job runner: injected panics,
//     hangs (block until the job's context is cancelled) and slow steps.
//   - Wire points (http.*), consulted by the Transport round-tripper once
//     per outgoing HTTP request: injected transport errors, slow and hung
//     requests, and torn response bodies that cut off mid-JSON — the
//     network failure modes a fleet coordinator must survive.
//
// A nil *Injector is valid everywhere and injects nothing, so production
// paths pay one nil check per point.
package fault

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/rng"
)

// Kind enumerates what an armed rule injects when it fires.
type Kind int

const (
	// KindError fails the operation with a generic injected error
	// (filesystem points).
	KindError Kind = iota + 1
	// KindENOSPC fails the operation with an error wrapping
	// syscall.ENOSPC, so errors.Is(err, syscall.ENOSPC) holds.
	KindENOSPC
	// KindTorn truncates the written content to Rule.TornBytes while the
	// write still reports success — the torn-write crash pattern
	// (filesystem points consulted through Torn).
	KindTorn
	// KindPanic panics with a message naming the point, call number and
	// seed (compute points).
	KindPanic
	// KindHang blocks until the operation's context is cancelled — a
	// stuck worker that only an external watchdog can unwedge (compute
	// points).
	KindHang
	// KindDelay sleeps Rule.Delay (or until the context is cancelled) — a
	// slow step (compute points).
	KindDelay
)

// String names the kind in rule specs and schedule printouts.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindENOSPC:
		return "enospc"
	case KindTorn:
		return "torn"
	case KindPanic:
		return "panic"
	case KindHang:
		return "hang"
	case KindDelay:
		return "delay"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// The injection points wired through the repository. The FS adapter
// consults the fs.* points; the planning service fires service.plan once
// per job run and core.explore once per exploration worker round; the
// Transport round-tripper consults http.roundtrip once per outgoing HTTP
// request.
const (
	PointFSWrite   = "fs.write"
	PointFSSync    = "fs.sync"
	PointFSRename  = "fs.rename"
	PointFSTorn    = "fs.torn"
	PointExplore   = "core.explore"
	PointPlan      = "service.plan"
	PointRoundTrip = "http.roundtrip"
)

// Rule arms one injection behavior at one point (or a "prefix*" family of
// points). A rule fires on the invocation numbers listed in Calls (1-based,
// counted per point), or — when Calls is empty — independently per
// invocation with probability Prob. A rule with neither Calls nor a
// positive Prob never fires; use Prob: 1 for "every invocation".
type Rule struct {
	// Point is the exact point name, or a prefix ending in '*' matching a
	// family of points ("fs.*").
	Point string
	// Kind selects the injected failure.
	Kind Kind
	// Prob is the per-invocation fire probability when Calls is empty.
	Prob float64
	// Calls lists the exact invocation numbers that fire (1-based).
	Calls []int
	// Delay is the injected latency of a KindDelay rule.
	Delay time.Duration
	// TornBytes is how many leading bytes of the write a KindTorn rule
	// lets through.
	TornBytes int
}

func (r Rule) matches(point string) bool {
	if strings.HasSuffix(r.Point, "*") {
		return strings.HasPrefix(point, strings.TrimSuffix(r.Point, "*"))
	}
	return r.Point == point
}

// fires decides whether this rule injects on invocation `call` of `point`.
// The decision is a pure function of its arguments, so it never depends on
// which goroutine got which call number first.
func (r Rule) fires(seed int64, point string, call int) bool {
	if len(r.Calls) > 0 {
		for _, c := range r.Calls {
			if c == call {
				return true
			}
		}
		return false
	}
	if r.Prob >= 1 {
		return true
	}
	if r.Prob <= 0 {
		return false
	}
	return unit(seed, point, call) < r.Prob
}

// String renders the rule in the spec grammar ParseRules reads.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s", r.Point, r.Kind)
	if len(r.Calls) > 0 {
		calls := make([]string, len(r.Calls))
		for i, c := range r.Calls {
			calls[i] = fmt.Sprint(c)
		}
		fmt.Fprintf(&b, ":calls=%s", strings.Join(calls, ","))
	} else if r.Prob > 0 && r.Prob < 1 {
		fmt.Fprintf(&b, ":p=%g", r.Prob)
	}
	if r.Kind == KindDelay {
		fmt.Fprintf(&b, ":delay=%s", r.Delay)
	}
	if r.Kind == KindTorn {
		fmt.Fprintf(&b, ":bytes=%d", r.TornBytes)
	}
	return b.String()
}

// unit maps (seed, point, call) to a uniform [0,1) draw through SplitMix64.
// The point name is folded into the seed FNV-1a style; the call number
// perturbs it by the golden gamma, so consecutive calls draw decorrelated
// values.
func unit(seed int64, point string, call int) float64 {
	h := uint64(seed) ^ 0xcbf29ce484222325
	for i := 0; i < len(point); i++ {
		h = (h ^ uint64(point[i])) * 0x100000001b3
	}
	h += uint64(call) * 0x9e3779b97f4a7c15
	return float64(rng.New(int64(h)).Uint64()>>11) / (1 << 53)
}

// Injector evaluates a seeded fault schedule at named injection points.
// All methods are safe for concurrent use; a nil *Injector injects
// nothing.
type Injector struct {
	seed  int64
	rules []Rule

	mu    sync.Mutex
	calls map[string]int
	fired map[string]int
}

// New builds an injector over the given schedule. The same seed and rules
// reproduce the same per-invocation decisions at every point.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		seed:  seed,
		rules: append([]Rule(nil), rules...),
		calls: make(map[string]int),
		fired: make(map[string]int),
	}
}

// Seed returns the schedule seed, for failure reports.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// String prints the seed and schedule — the line a chaos test logs so any
// failure reproduces exactly.
func (in *Injector) String() string {
	if in == nil {
		return "fault: off"
	}
	specs := make([]string, len(in.rules))
	for i, r := range in.rules {
		specs[i] = r.String()
	}
	return fmt.Sprintf("fault: seed=%d schedule=%q", in.seed, strings.Join(specs, ";"))
}

// decide counts one invocation of point and returns the first matching
// rule (of the kinds `want` accepts) that fires on it.
func (in *Injector) decide(point string, want func(Kind) bool) (Rule, int, bool) {
	if in == nil {
		return Rule{}, 0, false
	}
	in.mu.Lock()
	in.calls[point]++
	n := in.calls[point]
	in.mu.Unlock()
	for _, r := range in.rules {
		if !want(r.Kind) || !r.matches(point) {
			continue
		}
		if r.fires(in.seed, point, n) {
			in.mu.Lock()
			in.fired[point]++
			in.mu.Unlock()
			return r, n, true
		}
	}
	return Rule{}, 0, false
}

// Err consults the error rules (KindError, KindENOSPC) at a filesystem
// point and returns the injected error, or nil.
func (in *Injector) Err(point string) error {
	r, n, ok := in.decide(point, func(k Kind) bool { return k == KindError || k == KindENOSPC })
	if !ok {
		return nil
	}
	if r.Kind == KindENOSPC {
		return fmt.Errorf("fault: injected at %s call %d (seed %d): %w", point, n, in.seed, syscall.ENOSPC)
	}
	return fmt.Errorf("fault: injected error at %s call %d (seed %d)", point, n, in.seed)
}

// Torn consults the KindTorn rules at a filesystem point and returns the
// byte limit of a torn write, or -1 to leave the write intact.
func (in *Injector) Torn(point string) int {
	r, _, ok := in.decide(point, func(k Kind) bool { return k == KindTorn })
	if !ok {
		return -1
	}
	return r.TornBytes
}

// Fire consults the compute rules (KindPanic, KindHang, KindDelay) at a
// compute point: it may panic, block until ctx is cancelled, or sleep.
func (in *Injector) Fire(ctx context.Context, point string) {
	r, n, ok := in.decide(point, func(k Kind) bool {
		return k == KindPanic || k == KindHang || k == KindDelay
	})
	if !ok {
		return
	}
	switch r.Kind {
	case KindPanic:
		panic(fmt.Sprintf("fault: injected panic at %s call %d (seed %d)", point, n, in.seed))
	case KindHang:
		<-ctx.Done()
	case KindDelay:
		t := time.NewTimer(r.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
}

// Calls returns how many times point has been consulted.
func (in *Injector) Calls(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[point]
}

// Fired returns how many invocations of point actually injected a fault.
func (in *Injector) Fired(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}

// Stats summarizes every consulted point as "point calls/fired" lines,
// sorted by point name.
func (in *Injector) Stats() string {
	if in == nil {
		return ""
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	points := make([]string, 0, len(in.calls))
	for p := range in.calls {
		points = append(points, p)
	}
	sort.Strings(points)
	lines := make([]string, len(points))
	for i, p := range points {
		lines[i] = fmt.Sprintf("%s %d/%d", p, in.fired[p], in.calls[p])
	}
	return strings.Join(lines, "; ")
}

// FS adapts an Injector to internal/serialize's FSFaults seam. The path
// argument of each hook is ignored: the schedule keys on the operation,
// not the file.
type FS struct{ In *Injector }

// Write is consulted before the temp-file content write.
func (f FS) Write(string) error { return f.In.Err(PointFSWrite) }

// Sync is consulted before the temp file's fsync.
func (f FS) Sync(string) error { return f.In.Err(PointFSSync) }

// Rename is consulted before the rename over the destination.
func (f FS) Rename(string) error { return f.In.Err(PointFSRename) }

// Torn is consulted once per write; a non-negative result truncates the
// content while the write still reports success.
func (f FS) Torn(string) int { return f.In.Torn(PointFSTorn) }
