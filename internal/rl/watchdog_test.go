package rl

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/nn"
)

// nanAC wraps testAC and injects NaN into the first `poison` policy
// gradients, deterministically driving Adam to non-finite weights so the
// divergence watchdog has something to catch.
type nanAC struct {
	*testAC
	poison int
}

func (a *nanAC) BackwardPolicy(d []float64) {
	if a.poison > 0 {
		a.poison--
		d = append([]float64(nil), d...)
		for i := range d {
			d[i] = math.NaN()
		}
	}
	a.testAC.BackwardPolicy(d)
}

// fillBanditBuffer collects one epoch of the 3-armed bandit used by the PPO
// tests, so updates have realistic finite data.
func fillBanditBuffer(rng *rand.Rand, ac ActorCritic, n, nActions int) *Buffer {
	obs := nn.FromSlice(1, 1, []float64{1})
	mask := make([]bool, nActions)
	for i := range mask {
		mask[i] = true
	}
	buf := NewBuffer(0.99, 0.97)
	for i := 0; i < n; i++ {
		a, logp := sampleAction(rng, ac, obs, mask)
		v := ac.ForwardValue(obs)
		buf.Store(Step{Obs: obs, Action: a, Mask: mask, LogP: logp, Value: v, Reward: float64(a) / 2})
		buf.FinishPath(0)
	}
	return buf
}

func newWatchdogPPO(t *testing.T) *PPO {
	t.Helper()
	ppo, err := NewPPO(PPOConfig{
		ClipRatio: 0.2, ActorLR: 0.01, CriticLR: 0.02,
		TrainPiIters: 5, TrainVIters: 5, TargetKL: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ppo
}

func TestWatchdogRecoversFromTransientNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ac := &nanAC{testAC: newTestAC(rng, 1, 3), poison: 1}
	ppo := newWatchdogPPO(t)
	buf := fillBanditBuffer(rng, ac, 32, 3)

	stats, info, err := ppo.UpdateWithRecovery(ac, buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rollbacks != 1 {
		t.Fatalf("Rollbacks = %d, want 1", info.Rollbacks)
	}
	if info.ActorLR != 0.005 || info.CriticLR != 0.01 {
		t.Fatalf("learning rates not halved once: actor %v critic %v", info.ActorLR, info.CriticLR)
	}
	if a, c := ppo.LearningRates(); a != info.ActorLR || c != info.CriticLR {
		t.Fatalf("PPO learning rates %v/%v disagree with RecoveryInfo %v/%v", a, c, info.ActorLR, info.CriticLR)
	}
	if !statsFinite(stats) {
		t.Fatalf("recovered update produced non-finite stats: %+v", stats)
	}
	params := append(ac.PolicyParams(), ac.ValueParams()...)
	if !paramsFinite(params) {
		t.Fatal("weights not finite after recovery")
	}
}

func TestWatchdogExhaustsRetryBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ac := &nanAC{testAC: newTestAC(rng, 1, 3), poison: 1 << 30} // every attempt diverges
	ppo := newWatchdogPPO(t)
	buf := fillBanditBuffer(rng, ac, 32, 3)

	before := nn.ExportWeights(append(ac.PolicyParams(), ac.ValueParams()...))
	_, info, err := ppo.UpdateWithRecovery(ac, buf, 2)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	if info.Rollbacks != 2 {
		t.Fatalf("Rollbacks = %d, want 2", info.Rollbacks)
	}
	// The network must be left in its last good (finite) state, not the
	// diverged one.
	after := nn.ExportWeights(append(ac.PolicyParams(), ac.ValueParams()...))
	if !reflect.DeepEqual(before, after) {
		t.Fatal("weights were not rolled back to the pre-update snapshot")
	}
	if !paramsFinite(append(ac.PolicyParams(), ac.ValueParams()...)) {
		t.Fatal("weights not finite after exhausted retries")
	}
}

func TestWatchdogZeroRetriesStillRollsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ac := &nanAC{testAC: newTestAC(rng, 1, 3), poison: 1}
	ppo := newWatchdogPPO(t)
	buf := fillBanditBuffer(rng, ac, 16, 3)

	_, info, err := ppo.UpdateWithRecovery(ac, buf, 0)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	if info.Rollbacks != 0 {
		t.Fatalf("Rollbacks = %d, want 0 (no retry budget)", info.Rollbacks)
	}
	if !paramsFinite(append(ac.PolicyParams(), ac.ValueParams()...)) {
		t.Fatal("weights not finite after rollback")
	}
	// Without a retry there is no halving either.
	if a, c := ppo.LearningRates(); a != 0.01 || c != 0.02 {
		t.Fatalf("learning rates changed without a retry: %v/%v", a, c)
	}
}

func TestWatchdogRejectsNegativeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ac := newTestAC(rng, 1, 3)
	ppo := newWatchdogPPO(t)
	buf := fillBanditBuffer(rng, ac, 8, 3)
	if _, _, err := ppo.UpdateWithRecovery(ac, buf, -1); err == nil {
		t.Fatal("negative retry budget accepted")
	}
}

func TestWatchdogRejectsPoisonedBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ac := newTestAC(rng, 1, 3)
	ppo := newWatchdogPPO(t)
	obs := nn.FromSlice(1, 1, []float64{1})
	mask := []bool{true, true, true}
	buf := NewBuffer(0.99, 0.97)
	buf.Store(Step{Obs: obs, Action: 0, Mask: mask, LogP: math.NaN(), Value: 0, Reward: 1})
	buf.FinishPath(0)

	_, info, err := ppo.UpdateWithRecovery(ac, buf, 3)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	if info.Rollbacks != 0 {
		t.Fatalf("poisoned input should fail before any update, got %d rollbacks", info.Rollbacks)
	}
}

func TestPPOStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ac := newTestAC(rng, 1, 3)
	ppo := newWatchdogPPO(t)
	buf := fillBanditBuffer(rng, ac, 16, 3)
	if _, err := ppo.Update(ac, buf); err != nil {
		t.Fatal(err)
	}
	st := ppo.ExportState()
	if st.Actor.Step == 0 || st.Critic.Step == 0 {
		t.Fatalf("exported state has no optimizer steps: %+v / %+v", st.Actor.Step, st.Critic.Step)
	}

	fresh := newWatchdogPPO(t)
	if err := fresh.ImportState(ac, st); err != nil {
		t.Fatal(err)
	}
	if got := fresh.ExportState(); !reflect.DeepEqual(got, st) {
		t.Fatal("state round-trip not identical")
	}
	if a, c := fresh.LearningRates(); a != st.ActorLR || c != st.CriticLR {
		t.Fatalf("imported learning rates %v/%v, want %v/%v", a, c, st.ActorLR, st.CriticLR)
	}
}

func TestPPOImportStateRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ac := newTestAC(rng, 1, 3)
	ppo := newWatchdogPPO(t)
	good := ppo.ExportState()

	bad := good
	bad.ActorLR = 0
	if err := ppo.ImportState(ac, bad); err == nil {
		t.Fatal("non-positive actor LR accepted")
	}

	bad = good
	bad.CriticLR = -1
	if err := ppo.ImportState(ac, bad); err == nil {
		t.Fatal("negative critic LR accepted")
	}

	// Moment tensors shaped for a different network must be rejected.
	other := newTestAC(rng, 1, 5)
	otherPPO := newWatchdogPPO(t)
	if _, err := otherPPO.Update(other, fillBanditBuffer(rng, other, 8, 5)); err != nil {
		t.Fatal(err)
	}
	if err := ppo.ImportState(ac, otherPPO.ExportState()); err == nil {
		t.Fatal("mismatched moment shapes accepted")
	}
}

func TestBufferCheckFinite(t *testing.T) {
	mk := func(mod func(*Step)) *Buffer {
		b := NewBuffer(0.99, 0.97)
		s := Step{Action: 0, Mask: []bool{true}, LogP: -0.5, Value: 0.1, Reward: 1}
		mod(&s)
		b.Store(s)
		b.FinishPath(0)
		return b
	}
	if err := mk(func(*Step) {}).CheckFinite(); err != nil {
		t.Fatalf("finite buffer rejected: %v", err)
	}
	cases := []func(*Step){
		func(s *Step) { s.LogP = math.NaN() },
		func(s *Step) { s.Value = math.Inf(1) },
		func(s *Step) { s.Reward = math.Inf(-1) },
	}
	for i, mod := range cases {
		if err := mk(mod).CheckFinite(); err == nil {
			t.Errorf("case %d: non-finite step accepted", i)
		}
	}
	// A non-finite reward also propagates into advantages/returns, which the
	// scan reports even if the raw step were patched afterwards.
	b := mk(func(s *Step) { s.Reward = math.NaN() })
	b.steps[0].Reward = 1
	if err := b.CheckFinite(); err == nil {
		t.Error("non-finite advantage/return accepted")
	}
}

// TestBufferFiniteProperty is a randomized property test: finite step data
// must always yield finite GAE advantages, returns and merged batches.
func TestBufferFiniteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 200; trial++ {
		gamma := rng.Float64()
		lam := rng.Float64()
		merged := NewBuffer(gamma, lam)
		for w := 0; w < 1+rng.Intn(3); w++ {
			b := NewBuffer(gamma, lam)
			for p := 0; p < 1+rng.Intn(3); p++ {
				n := 1 + rng.Intn(8)
				for i := 0; i < n; i++ {
					b.Store(Step{
						Action: 0,
						Mask:   []bool{true},
						LogP:   (rng.Float64() - 0.5) * 50,
						Value:  (rng.Float64() - 0.5) * 2e6,
						Reward: (rng.Float64() - 0.5) * 2e6,
					})
				}
				b.FinishPath((rng.Float64() - 0.5) * 2e6)
			}
			if err := b.CheckFinite(); err != nil {
				t.Fatalf("trial %d: finite inputs flagged: %v", trial, err)
			}
			if err := merged.Merge(b); err != nil {
				t.Fatalf("trial %d: merge: %v", trial, err)
			}
		}
		_, adv, ret, err := merged.Batch()
		if err != nil {
			t.Fatalf("trial %d: batch: %v", trial, err)
		}
		for i := range adv {
			if !finite(adv[i]) || !finite(ret[i]) {
				t.Fatalf("trial %d: non-finite adv/ret %v/%v at %d", trial, adv[i], ret[i], i)
			}
		}
	}
}

func TestBufferMergeRejectsUnfinishedPath(t *testing.T) {
	a := NewBuffer(0.99, 0.97)
	b := NewBuffer(0.99, 0.97)
	b.Store(Step{Mask: []bool{true}})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of unfinished path accepted")
	}
}
