package rl

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
)

// ErrDiverged marks a PPO update that produced non-finite losses or
// weights. UpdateWithRecovery wraps it; callers test with errors.Is.
var ErrDiverged = errors.New("rl: ppo update diverged (non-finite loss or weights)")

// RecoveryInfo reports what the divergence watchdog did during one update.
type RecoveryInfo struct {
	// Rollbacks counts weight rollbacks (each halves both learning rates).
	Rollbacks int
	// ActorLR / CriticLR are the learning rates in effect after the update,
	// reflecting any halving done by the watchdog this call or earlier.
	ActorLR  float64
	CriticLR float64
}

// PPOState is a serializable snapshot of the updater: the current learning
// rates (which the watchdog may have halved) and both Adam moment sets.
// Checkpoints persist it so a resumed run updates identically.
type PPOState struct {
	ActorLR  float64      `json:"actorLR"`
	CriticLR float64      `json:"criticLR"`
	Actor    nn.AdamState `json:"actor"`
	Critic   nn.AdamState `json:"critic"`
}

// ExportState snapshots the optimizer state for a checkpoint.
func (p *PPO) ExportState() PPOState {
	return PPOState{
		ActorLR:  p.actorOpt.LR,
		CriticLR: p.criticOpt.LR,
		Actor:    p.actorOpt.Export(),
		Critic:   p.criticOpt.Export(),
	}
}

// ImportState restores a snapshot taken with ExportState. ac supplies the
// parameter shapes for the moment tensors and must match the network the
// snapshot was taken from.
func (p *PPO) ImportState(ac ActorCritic, st PPOState) error {
	if st.ActorLR <= 0 || st.CriticLR <= 0 {
		return fmt.Errorf("rl: ppo state has non-positive learning rates %v/%v", st.ActorLR, st.CriticLR)
	}
	if err := p.actorOpt.Import(ac.PolicyParams(), st.Actor); err != nil {
		return fmt.Errorf("rl: actor optimizer: %w", err)
	}
	if err := p.criticOpt.Import(ac.ValueParams(), st.Critic); err != nil {
		return fmt.Errorf("rl: critic optimizer: %w", err)
	}
	p.actorOpt.LR = st.ActorLR
	p.criticOpt.LR = st.CriticLR
	return nil
}

// LearningRates returns the current (possibly watchdog-halved) rates.
func (p *PPO) LearningRates() (actor, critic float64) {
	return p.actorOpt.LR, p.criticOpt.LR
}

// UpdateWithRecovery runs Update under a divergence watchdog: if the update
// leaves a NaN/Inf in the losses, the KL estimate or any network weight, or
// panics inside the numerics (a symptom of the same corruption),
// the weights and Adam moments are rolled back to their pre-update values,
// both learning rates are halved, and the update is retried — up to
// `retries` times, after which the (rolled back, still finite) network is
// left in place and an error wrapping ErrDiverged is returned. A batch that
// itself contains non-finite data fails immediately: no learning rate can
// fix poisoned inputs.
func (p *PPO) UpdateWithRecovery(ac ActorCritic, buf *Buffer, retries int) (UpdateStats, RecoveryInfo, error) {
	info := RecoveryInfo{ActorLR: p.actorOpt.LR, CriticLR: p.criticOpt.LR}
	if retries < 0 {
		return UpdateStats{}, info, fmt.Errorf("rl: negative divergence retry budget %d", retries)
	}
	if err := buf.CheckFinite(); err != nil {
		return UpdateStats{}, info, fmt.Errorf("%w: %v", ErrDiverged, err)
	}
	params := append(ac.PolicyParams(), ac.ValueParams()...)
	for attempt := 0; ; attempt++ {
		weights := nn.ExportWeights(params)
		actorSt := p.actorOpt.Export()
		criticSt := p.criticOpt.Export()

		stats, panicked, err := p.updateGuarded(ac, buf)
		if err != nil {
			return stats, info, err
		}
		if panicked == nil && statsFinite(stats) && paramsFinite(params) {
			info.ActorLR, info.CriticLR = p.actorOpt.LR, p.criticOpt.LR
			return stats, info, nil
		}

		// Diverged: restore the last good weights and moments. The trunk
		// appears in both parameter lists; restoring it twice is harmless.
		if err := nn.ImportWeights(params, weights); err != nil {
			return stats, info, fmt.Errorf("rl: rollback failed: %w", err)
		}
		if err := p.actorOpt.Import(ac.PolicyParams(), actorSt); err != nil {
			return stats, info, fmt.Errorf("rl: rollback failed: %w", err)
		}
		if err := p.criticOpt.Import(ac.ValueParams(), criticSt); err != nil {
			return stats, info, fmt.Errorf("rl: rollback failed: %w", err)
		}
		if attempt >= retries {
			return stats, info, fmt.Errorf("%w after %d rollback(s)", ErrDiverged, info.Rollbacks)
		}
		p.actorOpt.LR /= 2
		p.criticOpt.LR /= 2
		info.Rollbacks++
		info.ActorLR, info.CriticLR = p.actorOpt.LR, p.criticOpt.LR
	}
}

// updateGuarded runs Update with panic isolation. Non-finite weights can
// surface as panics deep inside the math (e.g. a log-softmax over all-NaN
// logits looks fully masked); the watchdog must treat those exactly like a
// NaN loss — roll back and retry — rather than crash the training run.
func (p *PPO) updateGuarded(ac ActorCritic, buf *Buffer) (stats UpdateStats, panicked error, err error) {
	defer func() {
		if r := recover(); r != nil {
			panicked = fmt.Errorf("rl: ppo update panicked: %v", r)
		}
	}()
	stats, err = p.Update(ac, buf)
	return stats, nil, err
}

// statsFinite reports whether every scalar of an update result is finite.
func statsFinite(s UpdateStats) bool {
	return finite(s.PolicyLoss) && finite(s.ValueLoss) && finite(s.ApproxKL) && finite(s.Entropy)
}

// paramsFinite scans all weight values for NaN/Inf.
func paramsFinite(ps []nn.Param) bool {
	for _, p := range ps {
		for _, v := range p.Value.Data {
			if !finite(v) {
				return false
			}
		}
	}
	return true
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
