package rl

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/nn"
)

// testAC is a minimal actor-critic over nn.Matrix observations, used to
// exercise PPO end to end on a toy problem.
type testAC struct {
	actor  *nn.MLP
	critic *nn.MLP
}

var _ ActorCritic = (*testAC)(nil)

func newTestAC(rng *rand.Rand, obsDim, nActions int) *testAC {
	return &testAC{
		actor:  nn.NewMLP(rng, obsDim, []int{16}, nActions, nn.Tanh),
		critic: nn.NewMLP(rng, obsDim, []int{16}, 1, nn.Tanh),
	}
}

func (t *testAC) ForwardPolicy(obs Observation) []float64 {
	x := obs.(*nn.Matrix)
	return append([]float64(nil), t.actor.Forward(x).Data...)
}

func (t *testAC) BackwardPolicy(dLogits []float64) {
	t.actor.Backward(nn.FromSlice(1, len(dLogits), append([]float64(nil), dLogits...)))
}

func (t *testAC) PolicyParams() []nn.Param { return t.actor.Params() }

func (t *testAC) ForwardValue(obs Observation) float64 {
	x := obs.(*nn.Matrix)
	return t.critic.Forward(x).Data[0]
}

func (t *testAC) BackwardValue(dV float64) {
	t.critic.Backward(nn.FromSlice(1, 1, []float64{dV}))
}

func (t *testAC) ValueParams() []nn.Param { return t.critic.Params() }

// sampleAction draws an action from the masked policy and returns the
// action with its log-probability.
func sampleAction(rng *rand.Rand, ac ActorCritic, obs Observation, mask []bool) (int, float64) {
	logits := ac.ForwardPolicy(obs)
	masked := nn.MaskLogits(logits, mask)
	probs := nn.Softmax(masked)
	a := nn.SampleCategorical(rng, probs)
	return a, nn.LogSoftmax(masked)[a]
}

func TestPPOLearnsBandit(t *testing.T) {
	// Three-armed bandit with rewards 0 / 0.5 / 1: PPO must concentrate
	// probability on arm 2.
	rng := rand.New(rand.NewSource(42))
	ac := newTestAC(rng, 1, 3)
	ppo, err := NewPPO(PPOConfig{
		ClipRatio: 0.2, ActorLR: 0.01, CriticLR: 0.01,
		TrainPiIters: 10, TrainVIters: 10, TargetKL: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := nn.FromSlice(1, 1, []float64{1})
	mask := []bool{true, true, true}
	rewards := []float64{0, 0.5, 1}

	for epoch := 0; epoch < 25; epoch++ {
		buf := NewBuffer(0.99, 0.97)
		for i := 0; i < 64; i++ {
			a, logp := sampleAction(rng, ac, obs, mask)
			v := ac.ForwardValue(obs)
			buf.Store(Step{Obs: obs, Action: a, Mask: mask, LogP: logp, Value: v, Reward: rewards[a]})
			buf.FinishPath(0)
		}
		if _, err := ppo.Update(ac, buf); err != nil {
			t.Fatal(err)
		}
	}
	probs := nn.Softmax(nn.MaskLogits(ac.ForwardPolicy(obs), mask))
	if probs[2] < 0.8 {
		t.Fatalf("policy did not learn the best arm: %v", probs)
	}
	// Critic should approach the expected value of the learned policy (~1).
	if v := ac.ForwardValue(obs); v < 0.5 {
		t.Fatalf("critic value %v did not track the return", v)
	}
}

func TestPPOMaskedActionStaysMasked(t *testing.T) {
	// Arm 2 pays the most but is masked out; the policy must settle on the
	// best unmasked arm (1) and never sample 2.
	rng := rand.New(rand.NewSource(7))
	ac := newTestAC(rng, 1, 3)
	ppo, err := NewPPO(PPOConfig{
		ClipRatio: 0.2, ActorLR: 0.01, CriticLR: 0.01,
		TrainPiIters: 10, TrainVIters: 5, TargetKL: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := nn.FromSlice(1, 1, []float64{1})
	mask := []bool{true, true, false}
	rewards := []float64{0, 0.5, 10}

	for epoch := 0; epoch < 15; epoch++ {
		buf := NewBuffer(0.99, 0.97)
		for i := 0; i < 32; i++ {
			a, logp := sampleAction(rng, ac, obs, mask)
			if a == 2 {
				t.Fatal("masked action sampled")
			}
			v := ac.ForwardValue(obs)
			buf.Store(Step{Obs: obs, Action: a, Mask: mask, LogP: logp, Value: v, Reward: rewards[a]})
			buf.FinishPath(0)
		}
		if _, err := ppo.Update(ac, buf); err != nil {
			t.Fatal(err)
		}
	}
	probs := nn.Softmax(nn.MaskLogits(ac.ForwardPolicy(obs), mask))
	if probs[2] != 0 {
		t.Fatalf("masked action has probability %v", probs[2])
	}
	if probs[1] < 0.7 {
		t.Fatalf("policy did not prefer the best unmasked arm: %v", probs)
	}
}

func TestPPOUpdateStatsAndEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ac := newTestAC(rng, 1, 2)
	// Huge LR + tiny target KL forces early stopping.
	ppo, err := NewPPO(PPOConfig{
		ClipRatio: 0.2, ActorLR: 0.5, CriticLR: 0.01,
		TrainPiIters: 50, TrainVIters: 2, TargetKL: 1e-5,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := nn.FromSlice(1, 1, []float64{1})
	mask := []bool{true, true}
	buf := NewBuffer(0.99, 0.97)
	for i := 0; i < 16; i++ {
		a, logp := sampleAction(rng, ac, obs, mask)
		buf.Store(Step{Obs: obs, Action: a, Mask: mask, LogP: logp, Value: 0, Reward: float64(a)})
		buf.FinishPath(0)
	}
	stats, err := ppo.Update(ac, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.EarlyStopped || stats.PiIters >= 50 {
		t.Fatalf("expected early stop, got %+v", stats)
	}
	if stats.Entropy <= 0 {
		t.Fatalf("entropy should be positive early in training: %+v", stats)
	}
}

func TestPPOConfigValidation(t *testing.T) {
	bad := []PPOConfig{
		{ClipRatio: 0, ActorLR: 1e-3, CriticLR: 1e-3, TrainPiIters: 1, TrainVIters: 1},
		{ClipRatio: 0.2, ActorLR: 0, CriticLR: 1e-3, TrainPiIters: 1, TrainVIters: 1},
		{ClipRatio: 0.2, ActorLR: 1e-3, CriticLR: 1e-3, TrainPiIters: 0, TrainVIters: 1},
		{ClipRatio: 1.5, ActorLR: 1e-3, CriticLR: 1e-3, TrainPiIters: 1, TrainVIters: 1},
	}
	for i, cfg := range bad {
		if _, err := NewPPO(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultPPOConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestPPOUpdateOnEmptyBufferFails(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ac := newTestAC(rng, 1, 2)
	ppo, err := NewPPO(DefaultPPOConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ppo.Update(ac, NewBuffer(0.99, 0.97)); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func TestRewardScaler(t *testing.T) {
	s := RewardScaler{Scale: 1000}
	if got := s.Apply(-500); got != -0.5 {
		t.Fatalf("Apply = %v, want -0.5", got)
	}
	zero := RewardScaler{}
	if got := zero.Apply(-3); got != -3 {
		t.Fatalf("zero scaler should pass through, got %v", got)
	}
}

func TestPPOClipBoundsRatioInfluence(t *testing.T) {
	// With a strongly off-policy batch (logp_old very high), the clipped
	// objective must not blow up: the policy loss stays finite and bounded.
	rng := rand.New(rand.NewSource(9))
	ac := newTestAC(rng, 1, 2)
	ppo, err := NewPPO(PPOConfig{
		ClipRatio: 0.2, ActorLR: 1e-3, CriticLR: 1e-3,
		TrainPiIters: 1, TrainVIters: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := nn.FromSlice(1, 1, []float64{1})
	mask := []bool{true, true}
	buf := NewBuffer(0.99, 0.97)
	for i := 0; i < 8; i++ {
		buf.Store(Step{Obs: obs, Action: i % 2, Mask: mask, LogP: -20, Value: 0, Reward: 1})
		buf.FinishPath(0)
	}
	stats, err := ppo.Update(ac, buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(stats.PolicyLoss) || math.IsInf(stats.PolicyLoss, 0) {
		t.Fatalf("policy loss unbounded: %+v", stats)
	}
	if stats.ClipFraction == 0 {
		t.Fatalf("expected clipping with off-policy data: %+v", stats)
	}
}

// Regression: a Step whose stored Mask disables its own Action means the
// exploration data is corrupt (the masked logit is -inf, and its gradient
// would push probability onto a forbidden action). Update must reject the
// batch instead of training on it.
func TestPPOUpdateRejectsMaskedStoredAction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ac := newTestAC(rng, 1, 2)
	ppo, err := NewPPO(PPOConfig{
		ClipRatio: 0.2, ActorLR: 1e-3, CriticLR: 1e-3,
		TrainPiIters: 1, TrainVIters: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := nn.FromSlice(1, 1, []float64{1})
	buf := NewBuffer(0.99, 0.97)
	buf.Store(Step{Obs: obs, Action: 0, Mask: []bool{true, true}, LogP: -0.7, Reward: 1})
	buf.FinishPath(0)
	// Corrupt step: mask forbids the very action it claims was taken.
	buf.Store(Step{Obs: obs, Action: 1, Mask: []bool{true, false}, LogP: -0.7, Reward: 1})
	buf.FinishPath(0)
	if _, err := ppo.Update(ac, buf); err == nil {
		t.Fatal("Update accepted a stored action that its own mask disables")
	} else if !strings.Contains(err.Error(), "mask disables") {
		t.Fatalf("unhelpful error: %v", err)
	}
}
