// Package rl implements the reinforcement-learning machinery of NPTSN's
// decision maker (§IV-C): a trajectory buffer with GAE-λ advantage
// estimation, the PPO-clip policy update (Eq. 5) and the critic regression,
// over an abstract actor-critic network. It corresponds to the SpinningUp
// PPO implementation the paper builds on.
package rl

import (
	"fmt"
	"math"
)

// Observation is an opaque environment observation. The actor-critic
// implementation interprets it; the RL core only stores it.
type Observation interface{}

// Step is one buffered environment interaction (Algorithm 2, line 17).
type Step struct {
	// Obs is the observation the action was chosen from.
	Obs Observation
	// Action is the sampled action index.
	Action int
	// Mask is the action mask in effect (true = selectable).
	Mask []bool
	// LogP is the log-probability of Action under the masked behavior
	// policy at collection time.
	LogP float64
	// Value is the critic's value estimate at collection time.
	Value float64
	// Reward is the immediate (scaled) reward.
	Reward float64
}

// Buffer accumulates trajectories for one epoch and computes GAE-λ
// advantages and reward-to-go targets when paths finish.
type Buffer struct {
	gamma, lam float64

	steps     []Step
	adv       []float64
	ret       []float64
	pathStart int
	paths     int
}

// NewBuffer creates a buffer with the given discount factor γ and GAE λ.
func NewBuffer(gamma, lam float64) *Buffer {
	return &Buffer{gamma: gamma, lam: lam}
}

// Store appends one step to the current path.
func (b *Buffer) Store(s Step) {
	b.steps = append(b.steps, s)
	b.adv = append(b.adv, 0)
	b.ret = append(b.ret, 0)
}

// FinishPath closes the current trajectory. lastValue bootstraps the value
// of the state after the final step: zero when the episode terminated, the
// critic estimate when the path was cut off by the epoch boundary.
func (b *Buffer) FinishPath(lastValue float64) {
	path := b.steps[b.pathStart:]
	n := len(path)
	if n == 0 {
		return
	}
	// GAE-λ: δ_t = r_t + γ V_{t+1} − V_t; A_t = Σ (γλ)^k δ_{t+k}.
	gae := 0.0
	nextValue := lastValue
	for i := n - 1; i >= 0; i-- {
		delta := path[i].Reward + b.gamma*nextValue - path[i].Value
		gae = delta + b.gamma*b.lam*gae
		b.adv[b.pathStart+i] = gae
		nextValue = path[i].Value
	}
	// Rewards-to-go (bootstrapped) as the value regression target.
	run := lastValue
	for i := n - 1; i >= 0; i-- {
		run = path[i].Reward + b.gamma*run
		b.ret[b.pathStart+i] = run
	}
	b.pathStart = len(b.steps)
	b.paths++
}

// Len returns the number of stored steps.
func (b *Buffer) Len() int { return len(b.steps) }

// Paths returns the number of finished (non-empty) trajectories recorded
// by FinishPath since the last Reset, including those merged in.
func (b *Buffer) Paths() int { return b.paths }

// Reset clears the buffer for the next epoch.
func (b *Buffer) Reset() {
	b.steps = b.steps[:0]
	b.adv = b.adv[:0]
	b.ret = b.ret[:0]
	b.pathStart = 0
	b.paths = 0
}

// Merge appends the finished contents of other into b (multi-worker
// exploration: updating on the merged batch equals averaging per-worker
// gradients). The other buffer must have all paths finished.
func (b *Buffer) Merge(other *Buffer) error {
	if other.pathStart != len(other.steps) {
		return fmt.Errorf("rl: merging buffer with an unfinished path")
	}
	b.steps = append(b.steps, other.steps...)
	b.adv = append(b.adv, other.adv...)
	b.ret = append(b.ret, other.ret...)
	b.pathStart = len(b.steps)
	b.paths += other.paths
	return nil
}

// Batch returns the collected steps with normalized advantages
// (zero mean, unit variance — the standard PPO trick) and value targets.
// All paths must be finished. All three slices are copies: a caller may
// retain them across Reset/Store/Merge without seeing them overwritten by
// the buffer's internal append reuse.
func (b *Buffer) Batch() ([]Step, []float64, []float64, error) {
	if b.pathStart != len(b.steps) {
		return nil, nil, nil, fmt.Errorf("rl: batch requested with an unfinished path")
	}
	n := len(b.steps)
	if n == 0 {
		return nil, nil, nil, fmt.Errorf("rl: empty buffer")
	}
	mean := 0.0
	for _, a := range b.adv {
		mean += a
	}
	mean /= float64(n)
	variance := 0.0
	for _, a := range b.adv {
		variance += (a - mean) * (a - mean)
	}
	std := math.Sqrt(variance / float64(n))
	if std < 1e-8 {
		std = 1e-8
	}
	adv := make([]float64, n)
	for i, a := range b.adv {
		adv[i] = (a - mean) / std
	}
	ret := append([]float64(nil), b.ret...)
	steps := append([]Step(nil), b.steps...)
	return steps, adv, ret, nil
}

// CheckFinite verifies that every stored log-probability, value estimate,
// reward and every derived advantage/return is finite. The divergence
// watchdog calls it before an update: NaN inputs make every retry futile.
func (b *Buffer) CheckFinite() error {
	for i, s := range b.steps {
		if !finite(s.LogP) || !finite(s.Value) || !finite(s.Reward) {
			return fmt.Errorf("rl: step %d has non-finite data (logp=%v value=%v reward=%v)",
				i, s.LogP, s.Value, s.Reward)
		}
	}
	for i := range b.adv {
		if !finite(b.adv[i]) || !finite(b.ret[i]) {
			return fmt.Errorf("rl: step %d has non-finite advantage/return (%v/%v)", i, b.adv[i], b.ret[i])
		}
	}
	return nil
}

// EpochReward returns the mean total reward per finished trajectory, the
// quantity plotted in the sensitivity figures (Fig. 5): the undiscounted
// sum of all stored rewards divided by the number of non-empty paths the
// buffer recorded through FinishPath (and Merge). It returns 0 when no
// path has finished.
func (b *Buffer) EpochReward() float64 {
	if b.paths <= 0 {
		return 0
	}
	var sum float64
	for _, s := range b.steps {
		sum += s.Reward
	}
	return sum / float64(b.paths)
}
