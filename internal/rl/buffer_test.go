package rl

import (
	"math"
	"testing"
)

func TestBufferGAEHandComputed(t *testing.T) {
	b := NewBuffer(0.9, 0.8)
	// Two steps: r=[1,2], V=[0.5, 0.6], terminal (lastValue 0).
	b.Store(Step{Reward: 1, Value: 0.5})
	b.Store(Step{Reward: 2, Value: 0.6})
	b.FinishPath(0)

	// δ1 = 2 + 0.9*0 − 0.6 = 1.4 ; A1 = 1.4
	// δ0 = 1 + 0.9*0.6 − 0.5 = 1.04 ; A0 = 1.04 + 0.9*0.8*1.4 = 2.048
	// ret1 = 2 ; ret0 = 1 + 0.9*2 = 2.8
	wantAdv := []float64{2.048, 1.4}
	wantRet := []float64{2.8, 2}
	for i := range wantAdv {
		if math.Abs(b.adv[i]-wantAdv[i]) > 1e-12 {
			t.Fatalf("adv[%d] = %v, want %v", i, b.adv[i], wantAdv[i])
		}
		if math.Abs(b.ret[i]-wantRet[i]) > 1e-12 {
			t.Fatalf("ret[%d] = %v, want %v", i, b.ret[i], wantRet[i])
		}
	}
}

func TestBufferBootstrapValue(t *testing.T) {
	b := NewBuffer(1.0, 1.0)
	b.Store(Step{Reward: 1, Value: 0})
	b.FinishPath(10) // cut-off path bootstraps V=10
	if math.Abs(b.ret[0]-11) > 1e-12 {
		t.Fatalf("ret = %v, want 11", b.ret[0])
	}
	if math.Abs(b.adv[0]-11) > 1e-12 {
		t.Fatalf("adv = %v, want 11", b.adv[0])
	}
}

func TestBufferMultiplePaths(t *testing.T) {
	b := NewBuffer(1.0, 1.0)
	b.Store(Step{Reward: 1, Value: 0})
	b.FinishPath(0)
	b.Store(Step{Reward: 5, Value: 0})
	b.FinishPath(0)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	// Paths are independent: second path's return is 5, not 6.
	if b.ret[1] != 5 || b.ret[0] != 1 {
		t.Fatalf("ret = %v", b.ret)
	}
	if n := b.Paths(); n != 2 {
		t.Fatalf("Paths = %d, want 2", n)
	}
	if r := b.EpochReward(); r != 3 {
		t.Fatalf("EpochReward = %v, want 3", r)
	}
	if r := NewBuffer(1, 1).EpochReward(); r != 0 {
		t.Fatalf("EpochReward with no finished path = %v, want 0", r)
	}
}

func TestBufferBatchNormalizesAdvantages(t *testing.T) {
	b := NewBuffer(0.99, 0.97)
	for i := 0; i < 10; i++ {
		b.Store(Step{Reward: float64(i), Value: 0})
		b.FinishPath(0)
	}
	_, adv, _, err := b.Batch()
	if err != nil {
		t.Fatal(err)
	}
	var mean, variance float64
	for _, a := range adv {
		mean += a
	}
	mean /= float64(len(adv))
	for _, a := range adv {
		variance += (a - mean) * (a - mean)
	}
	variance /= float64(len(adv))
	if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-6 {
		t.Fatalf("normalized adv: mean %v var %v", mean, variance)
	}
}

func TestBufferBatchErrors(t *testing.T) {
	b := NewBuffer(0.99, 0.97)
	if _, _, _, err := b.Batch(); err == nil {
		t.Error("empty buffer accepted")
	}
	b.Store(Step{Reward: 1})
	if _, _, _, err := b.Batch(); err == nil {
		t.Error("unfinished path accepted")
	}
}

func TestBufferMerge(t *testing.T) {
	a := NewBuffer(1, 1)
	a.Store(Step{Reward: 1, Value: 0})
	a.FinishPath(0)
	b := NewBuffer(1, 1)
	b.Store(Step{Reward: 2, Value: 0})
	b.FinishPath(0)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 || a.ret[1] != 2 {
		t.Fatalf("merge wrong: len=%d ret=%v", a.Len(), a.ret)
	}

	c := NewBuffer(1, 1)
	c.Store(Step{Reward: 3})
	if err := a.Merge(c); err == nil {
		t.Error("merging unfinished buffer accepted")
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(1, 1)
	b.Store(Step{Reward: 1})
	b.FinishPath(0)
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	b.Store(Step{Reward: 2, Value: 0})
	b.FinishPath(0)
	if b.ret[0] != 2 {
		t.Fatal("buffer unusable after Reset")
	}
}

func TestFinishPathEmptyIsNoOp(t *testing.T) {
	b := NewBuffer(1, 1)
	b.FinishPath(0)
	if b.Len() != 0 {
		t.Fatal("empty FinishPath should not add steps")
	}
}

// Regression: Batch used to return the internal steps slice aliased, so a
// caller that retained the batch across Reset+Store (the watchdog retains
// batches across retries) saw it silently overwritten by append reuse.
func TestBatchDetachedFromBufferReuse(t *testing.T) {
	b := NewBuffer(1, 1)
	b.Store(Step{Action: 1, Reward: 1})
	b.FinishPath(0)
	steps, adv, ret, err := b.Batch()
	if err != nil {
		t.Fatal(err)
	}
	if steps[0].Action != 1 {
		t.Fatalf("batch step action = %d, want 1", steps[0].Action)
	}

	b.Reset()
	b.Store(Step{Action: 99, Reward: -7})
	b.FinishPath(0)

	if steps[0].Action != 1 || steps[0].Reward != 1 {
		t.Fatalf("retained batch overwritten by buffer reuse: %+v", steps[0])
	}
	if ret[0] != 1 {
		t.Fatalf("retained returns overwritten: %v", ret)
	}
	_ = adv

	// Merge into a fresh buffer must not clobber the retained batch either.
	m := NewBuffer(1, 1)
	if err := m.Merge(b); err != nil {
		t.Fatal(err)
	}
	if steps[0].Action != 1 {
		t.Fatalf("retained batch overwritten by Merge: %+v", steps[0])
	}
}

// Paths counts only non-empty trajectories, across FinishPath, Merge and
// Reset.
func TestBufferPathAccounting(t *testing.T) {
	b := NewBuffer(1, 1)
	b.FinishPath(0) // empty: no path recorded
	if b.Paths() != 0 {
		t.Fatalf("Paths after empty FinishPath = %d, want 0", b.Paths())
	}
	b.Store(Step{Reward: 2})
	b.FinishPath(0)
	b.FinishPath(0) // boundary coincides with path end: still 1 path
	if b.Paths() != 1 {
		t.Fatalf("Paths = %d, want 1", b.Paths())
	}

	o := NewBuffer(1, 1)
	o.Store(Step{Reward: 4})
	o.FinishPath(0)
	if err := b.Merge(o); err != nil {
		t.Fatal(err)
	}
	if b.Paths() != 2 {
		t.Fatalf("Paths after merge = %d, want 2", b.Paths())
	}
	if r := b.EpochReward(); r != 3 {
		t.Fatalf("EpochReward = %v, want 3", r)
	}
	b.Reset()
	if b.Paths() != 0 {
		t.Fatalf("Paths after Reset = %d, want 0", b.Paths())
	}
}
