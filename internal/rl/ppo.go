package rl

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// ActorCritic abstracts the GCN+MLP networks of Fig. 3. The policy and
// value heads share the GCN trunk; each head exposes its own parameter list
// (trunk parameters appear in both, matching "the weights of the GCN are
// updated twice", §IV-C) and its own forward/backward pair.
type ActorCritic interface {
	// ForwardPolicy computes raw (unmasked) action logits for obs and
	// caches activations for BackwardPolicy. The returned slice is borrowed
	// network scratch: it is valid until the next forward call on the same
	// ActorCritic and must not be modified or retained.
	ForwardPolicy(obs Observation) []float64
	// BackwardPolicy accumulates policy-head gradients for the upstream
	// logit gradient.
	BackwardPolicy(dLogits []float64)
	// PolicyParams lists trunk + actor-head parameters.
	PolicyParams() []nn.Param

	// ForwardValue computes the value estimate for obs and caches
	// activations for BackwardValue.
	ForwardValue(obs Observation) float64
	// BackwardValue accumulates value-head gradients.
	BackwardValue(dValue float64)
	// ValueParams lists trunk + critic-head parameters.
	ValueParams() []nn.Param
}

// PPOConfig collects the update hyperparameters (Table II plus the
// SpinningUp defaults for iteration counts).
type PPOConfig struct {
	// ClipRatio is ε of Eq. 5.
	ClipRatio float64
	// ActorLR / CriticLR are the Adam learning rates.
	ActorLR  float64
	CriticLR float64
	// TrainPiIters / TrainVIters are gradient steps per epoch.
	TrainPiIters int
	TrainVIters  int
	// TargetKL triggers early stopping of policy iterations when the
	// sample KL estimate exceeds 1.5×TargetKL (SpinningUp convention).
	TargetKL float64
	// MaxGradNorm clips gradients when positive.
	MaxGradNorm float64
}

// DefaultPPOConfig returns the paper defaults: clip ratio 0.2, actor LR
// 3e-4, critic LR 1e-3, with SpinningUp's 80/80 iteration counts and 0.01
// target KL.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		ClipRatio:    0.2,
		ActorLR:      3e-4,
		CriticLR:     1e-3,
		TrainPiIters: 80,
		TrainVIters:  80,
		TargetKL:     0.01,
	}
}

// Validate checks the configuration.
func (c PPOConfig) Validate() error {
	if c.ClipRatio <= 0 || c.ClipRatio >= 1 {
		return fmt.Errorf("ppo: clip ratio %v must be in (0,1)", c.ClipRatio)
	}
	if c.ActorLR <= 0 || c.CriticLR <= 0 {
		return fmt.Errorf("ppo: learning rates must be positive")
	}
	if c.TrainPiIters <= 0 || c.TrainVIters <= 0 {
		return fmt.Errorf("ppo: iteration counts must be positive")
	}
	return nil
}

// UpdateStats reports what one PPO update did.
type UpdateStats struct {
	PolicyLoss   float64
	ValueLoss    float64
	ApproxKL     float64
	Entropy      float64
	ClipFraction float64
	PiIters      int
	EarlyStopped bool
}

// PPO owns the two Adam optimizers and performs epoch updates
// (Algorithm 2, lines 19–21).
type PPO struct {
	cfg       PPOConfig
	actorOpt  *nn.Adam
	criticOpt *nn.Adam

	// scratch backs the per-step masked-logits / probability / gradient
	// vectors of Update, sized from the first step's logits; reusing it
	// keeps the inner loops allocation-free across iterations and epochs.
	scratch *nn.Scratch
}

// scratchFor returns the update scratch arena, (re)built when the action
// space changed.
func (p *PPO) scratchFor(n int) *nn.Scratch {
	if p.scratch == nil || len(p.scratch.Masked) != n {
		p.scratch = nn.NewScratch(n)
	}
	return p.scratch
}

// NewPPO builds a PPO updater.
func NewPPO(cfg PPOConfig) (*PPO, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PPO{
		cfg:       cfg,
		actorOpt:  nn.NewAdam(cfg.ActorLR),
		criticOpt: nn.NewAdam(cfg.CriticLR),
	}, nil
}

// AdamSteps reports how many optimizer updates the actor and critic Adam
// instances have applied over the lifetime of this PPO (telemetry).
func (p *PPO) AdamSteps() (actor, critic int) {
	return p.actorOpt.Steps(), p.criticOpt.Steps()
}

// Update performs one epoch's gradient updates from the buffered data:
// gradient ascent on the PPO-clip objective for GCN+actor, gradient descent
// on the value MSE for GCN+critic.
func (p *PPO) Update(ac ActorCritic, buf *Buffer) (UpdateStats, error) {
	steps, adv, ret, err := buf.Batch()
	if err != nil {
		return UpdateStats{}, err
	}
	// A stored action its own mask disables is poisoned data: its behavior
	// log-probability is -inf and the policy gradient would push mass onto
	// a disabled action. No retry can fix the batch, so reject it up front
	// rather than let the numerics corrupt the policy.
	for i, s := range steps {
		if s.Mask == nil {
			continue
		}
		if s.Action < 0 || s.Action >= len(s.Mask) || !s.Mask[s.Action] {
			return UpdateStats{}, fmt.Errorf("rl: step %d stores action %d that its mask disables", i, s.Action)
		}
	}
	n := float64(len(steps))
	var stats UpdateStats

	// Policy iterations.
	for iter := 0; iter < p.cfg.TrainPiIters; iter++ {
		nn.ZeroGrads(ac.PolicyParams())
		var loss, kl, entropy, clipped float64
		for i, s := range steps {
			logits := ac.ForwardPolicy(s.Obs)
			sc := p.scratchFor(len(logits))
			masked := nn.MaskLogitsInto(sc.Masked, logits, s.Mask)
			logp := nn.LogSoftmaxInto(sc.LogProbs, masked)[s.Action]
			ratio := math.Exp(logp - s.LogP)

			a := adv[i]
			clipLo, clipHi := 1-p.cfg.ClipRatio, 1+p.cfg.ClipRatio
			unclipped := ratio * a
			clampedRatio := math.Min(math.Max(ratio, clipLo), clipHi)
			obj := math.Min(unclipped, clampedRatio*a)
			loss += -obj
			kl += s.LogP - logp
			entropy += nn.Entropy(nn.SoftmaxInto(sc.Probs, masked))

			// Gradient of -obj w.r.t. logp: active only when the
			// unclipped branch is selected.
			var dObjDLogp float64
			if (a >= 0 && ratio <= clipHi) || (a < 0 && ratio >= clipLo) {
				dObjDLogp = ratio * a
			} else {
				clipped++
			}
			if dObjDLogp != 0 {
				gLogits := nn.LogSoftmaxGradInto(sc.Grad, masked, s.Action)
				scale := -dObjDLogp / n // minimize loss = -mean(obj)
				for j, g := range gLogits {
					gLogits[j] = scale * g
				}
				ac.BackwardPolicy(gLogits)
			}
		}
		stats.PolicyLoss = loss / n
		stats.ApproxKL = kl / n
		stats.Entropy = entropy / n
		stats.ClipFraction = clipped / n
		stats.PiIters = iter + 1
		if p.cfg.TargetKL > 0 && stats.ApproxKL > 1.5*p.cfg.TargetKL {
			stats.EarlyStopped = true
			break
		}
		if p.cfg.MaxGradNorm > 0 {
			nn.ClipGrads(ac.PolicyParams(), p.cfg.MaxGradNorm)
		}
		p.actorOpt.Step(ac.PolicyParams())
	}

	// Value iterations.
	for iter := 0; iter < p.cfg.TrainVIters; iter++ {
		nn.ZeroGrads(ac.ValueParams())
		var loss float64
		for i, s := range steps {
			v := ac.ForwardValue(s.Obs)
			diff := v - ret[i]
			loss += diff * diff
			ac.BackwardValue(2 * diff / n)
		}
		stats.ValueLoss = loss / n
		if p.cfg.MaxGradNorm > 0 {
			nn.ClipGrads(ac.ValueParams(), p.cfg.MaxGradNorm)
		}
		p.criticOpt.Step(ac.ValueParams())
	}
	return stats, nil
}

// RewardScaler maps raw rewards into a small range by dividing by Scale
// (the reward scaling factor of Table II, 10^3), keeping gradients away
// from saturation (§IV-C "Reward Design").
type RewardScaler struct {
	Scale float64
}

// Apply scales a raw reward.
func (r RewardScaler) Apply(raw float64) float64 {
	if r.Scale == 0 {
		return raw
	}
	return raw / r.Scale
}
