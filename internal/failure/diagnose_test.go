package failure

import (
	"strings"
	"testing"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/tsn"
)

func TestDiagnoseHealthyNetwork(t *testing.T) {
	g := dualHomed(t, 3)
	a := assignLevels(g, map[int]asil.Level{3: asil.LevelC, 4: asil.LevelC})
	fs := tsn.FlowSet{flow(0, 0, 1)}
	d, err := newAnalyzer(1e-6).Diagnose(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() {
		t.Fatalf("healthy network diagnosed: %s", d)
	}
	if !strings.Contains(d.String(), "no non-safe unrecoverable faults") {
		t.Fatalf("render: %s", d)
	}
}

func TestDiagnoseFindsAllMinimalFailures(t *testing.T) {
	// Star with two single-homed ES: BOTH switch failures isolate... build
	// a net where two distinct switches are independent single points of
	// failure: es0-swA-es1 and es2-swB-es3 with a swA-swB bridge, flows
	// 0->1 and 2->3 and 0->2.
	g := graph.New()
	for i := 0; i < 4; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	swA := g.AddVertex("", graph.KindSwitch)
	swB := g.AddVertex("", graph.KindSwitch)
	mustEdge(t, g, 0, swA)
	mustEdge(t, g, 1, swA)
	mustEdge(t, g, 2, swB)
	mustEdge(t, g, 3, swB)
	mustEdge(t, g, swA, swB)
	a := assignLevels(g, map[int]asil.Level{swA: asil.LevelA, swB: asil.LevelA})
	fs := tsn.FlowSet{flow(0, 0, 1), flow(1, 2, 3), flow(2, 0, 2)}

	d, err := newAnalyzer(1e-6).Diagnose(g, a, fs)
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatal("single-homed design diagnosed healthy")
	}
	// Both {swA} and {swB} are minimal; the pair {swA, swB} must NOT
	// appear (it is a superset).
	if len(d.MinimalFailures) != 2 {
		t.Fatalf("minimal failures = %v", d.MinimalFailures)
	}
	seen := map[int]bool{}
	for i, f := range d.MinimalFailures {
		if len(f.Nodes) != 1 {
			t.Fatalf("non-minimal failure reported: %v", f)
		}
		seen[f.Nodes[0]] = true
		if len(d.ER[i]) == 0 {
			t.Fatal("missing error message")
		}
	}
	if !seen[swA] || !seen[swB] {
		t.Fatalf("expected both switches as single points, got %v", d.MinimalFailures)
	}
	if !strings.Contains(d.String(), "2 minimal unrecoverable failures") {
		t.Fatalf("render: %s", d)
	}
}

func TestDiagnoseAgreesWithAnalyze(t *testing.T) {
	// On every fixture, Diagnose.OK must equal Analyze.OK.
	g := dualHomed(t, 2)
	fs := tsn.FlowSet{flow(0, 0, 1)}
	for _, lvl := range asil.Levels() {
		a := assignLevels(g, map[int]asil.Level{2: lvl, 3: lvl})
		an := newAnalyzer(1e-6)
		res, err := an.Analyze(g, a, fs)
		if err != nil {
			t.Fatal(err)
		}
		d, err := an.Diagnose(g, a, fs)
		if err != nil {
			t.Fatal(err)
		}
		if res.OK != d.OK() {
			t.Fatalf("ASIL-%s: Analyze OK=%v but Diagnose OK=%v", lvl, res.OK, d.OK())
		}
	}
}

func TestDiagnoseValidation(t *testing.T) {
	g := dualHomed(t, 2)
	a := assignLevels(g, map[int]asil.Level{2: asil.LevelC, 3: asil.LevelC})
	an := newAnalyzer(0)
	if _, err := an.Diagnose(g, a, nil); err == nil {
		t.Fatal("invalid R accepted")
	}
}
