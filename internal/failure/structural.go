package failure

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/tsn"
)

// WeakPoint is a switch whose sole failure structurally disconnects at
// least one demanded (source, destination) pair: no recovery mechanism can
// survive it, so if such a switch's failure probability is >= R the
// topology is invalid regardless of the NBF. The check is pure graph
// connectivity — orders of magnitude cheaper than an NBF simulation — and
// serves as a fast pre-screen and as an explanation artifact for failed
// analyses.
type WeakPoint struct {
	Switch int
	// Pairs are the demanded pairs the switch separates.
	Pairs []tsn.Pair
}

// StructuralWeakPoints scans every switch of the topology against the
// demanded pairs of the flow specification.
func StructuralWeakPoints(gt *graph.Graph, fs tsn.FlowSet) []WeakPoint {
	pairs := fs.UniquePairs()
	var out []WeakPoint
	for _, sw := range gt.VerticesOfKind(graph.KindSwitch) {
		if gt.Degree(sw) == 0 {
			continue
		}
		var broken []tsn.Pair
		residual := gt.Clone()
		residual.IsolateVertex(sw)
		for _, p := range pairs {
			if gt.Connected(p.Src, p.Dst) && !residual.Connected(p.Src, p.Dst) {
				broken = append(broken, p)
			}
		}
		if len(broken) > 0 {
			out = append(out, WeakPoint{Switch: sw, Pairs: broken})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Switch < out[j].Switch })
	return out
}
