package failure

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// BruteForce exhaustively verifies the reliability guarantee by enumerating
// every failure scenario over BOTH switches and links whose probability is
// at least R, without the Eq. 6 reduction or any pruning. It exists to
// cross-check Algorithm 3 on small topologies and as the slow baseline in
// the ablation benchmarks; its cost is exponential in components, not just
// switches.
type BruteForce struct {
	Lib *asil.Library
	NBF nbf.NBF
	Net tsn.Network
	R   float64
}

// component is a failable unit: either a node or a link.
type component struct {
	isLink bool
	node   int
	edge   graph.Edge
	prob   float64
}

// Analyze returns whether the guarantee holds and, if not, the first
// non-recoverable non-safe fault found. The result also counts NBF calls.
func (b *BruteForce) Analyze(gt *graph.Graph, assign *asil.Assignment, fs tsn.FlowSet) (Result, error) {
	return b.AnalyzeContext(context.Background(), gt, assign, fs)
}

// AnalyzeContext is Analyze with cancellation: the exhaustive enumeration
// checks ctx before every recovery simulation, so the exponential search is
// interruptible. On cancellation it returns ctx.Err().
func (b *BruteForce) AnalyzeContext(ctx context.Context, gt *graph.Graph, assign *asil.Assignment, fs tsn.FlowSet) (Result, error) {
	if b.Lib == nil || b.NBF == nil {
		return Result{}, fmt.Errorf("brute force: nil library or NBF")
	}
	if b.R <= 0 || b.R >= 1 {
		return Result{}, fmt.Errorf("brute force: reliability goal %v must be in (0,1)", b.R)
	}
	var comps []component
	for _, sw := range gt.VerticesOfKind(graph.KindSwitch) {
		lvl, ok := assign.Switches[sw]
		if !ok {
			continue
		}
		comps = append(comps, component{node: sw, prob: b.Lib.FailureProb(lvl)})
	}
	for _, e := range gt.Edges() {
		lvl := assign.LinkLevel(e.U, e.V)
		if !lvl.Valid() {
			return Result{}, fmt.Errorf("brute force: link (%d,%d) has no ASIL", e.U, e.V)
		}
		comps = append(comps, component{isLink: true, edge: e.Canonical(), prob: b.Lib.FailureProb(lvl)})
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].prob > comps[j].prob })

	// Max order over all components.
	maxOrd := 0
	p := 1.0
	for _, c := range comps {
		p *= c.prob
		if p < b.R {
			break
		}
		maxOrd++
	}

	res := Result{MaxOrder: maxOrd}
	idx := make([]int, len(comps))
	for i := range idx {
		idx[i] = i
	}
	for order := 0; order <= maxOrd; order++ {
		var found *nbf.Failure
		var foundER []tsn.Pair
		var loopErr error
		graph.Combinations(idx, order, func(subset []int) bool {
			res.ScenariosConsidered++
			prob := 1.0
			var gf nbf.Failure
			for _, i := range subset {
				prob *= comps[i].prob
				if comps[i].isLink {
					gf.Edges = append(gf.Edges, comps[i].edge)
				} else {
					gf.Nodes = append(gf.Nodes, comps[i].node)
				}
			}
			if prob < b.R {
				return true
			}
			if err := ctx.Err(); err != nil {
				loopErr = err
				return false
			}
			res.NBFCalls++
			_, er, err := b.NBF.Recover(gt, gf, b.Net, fs)
			if err != nil {
				loopErr = err
				return false
			}
			if len(er) != 0 {
				found = &gf
				foundER = er
				return false
			}
			return true
		})
		if loopErr != nil {
			return Result{}, loopErr
		}
		if found != nil {
			res.Failure = *found
			res.ER = foundER
			return res, nil
		}
	}
	res.OK = true
	return res, nil
}
