package failure

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/tsn"
)

// fingerprint is a 128-bit canonical digest. Two independent 64-bit lanes
// make accidental collisions across the verdict cache astronomically
// unlikely (~2^-128 per pair), so the cache can key on the digest alone
// without storing the full (topology, assignment, scenario) tuple.
type fingerprint struct{ hi, lo uint64 }

// fpHash accumulates words into both lanes with distinct mixers.
type fpHash struct{ hi, lo uint64 }

func newFPHash() fpHash {
	return fpHash{hi: 0x9e3779b97f4a7c15, lo: 0xc2b2ae3d27d4eb4f}
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit permutation.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (h *fpHash) word(w uint64) {
	h.lo = mix64(h.lo ^ w)
	h.hi = mix64(h.hi ^ bits.RotateLeft64(w, 32) ^ 0xff51afd7ed558ccd)
}

func (h *fpHash) int(v int)       { h.word(uint64(v)) }
func (h *fpHash) float(f float64) { h.word(math.Float64bits(f)) }
func (h *fpHash) bool(b bool) {
	if b {
		h.word(1)
	} else {
		h.word(2)
	}
}
func (h *fpHash) str(s string) {
	h.int(len(s))
	var w uint64
	n := 0
	for i := 0; i < len(s); i++ {
		w = w<<8 | uint64(s[i])
		if n++; n == 8 {
			h.word(w)
			w, n = 0, 0
		}
	}
	if n > 0 {
		h.word(w)
	}
}

func (h *fpHash) sum() fingerprint { return fingerprint{hi: mix64(h.hi), lo: mix64(h.lo)} }

// contextFingerprint digests everything that determines a recovery verdict
// besides the topology and the failure set: the recovery mechanism, the
// analyzer mode, the TAS timing configuration and the full flow
// specification. It is computed once per Analyze call.
func (a *Analyzer) contextFingerprint(fs tsn.FlowSet) fpHash {
	h := newFPHash()
	h.str(a.NBF.Name())
	h.float(a.R)
	h.bool(a.FlowLevelRedundancy)
	h.int(int(a.ESLevel))
	h.int(int(a.Net.BasePeriod))
	h.int(a.Net.SlotsPerBase)
	h.int(len(fs))
	for _, f := range fs {
		h.int(f.ID)
		h.int(f.Src)
		h.int(len(f.Dsts))
		for _, d := range f.Dsts {
			h.int(d)
		}
		h.int(int(f.Period))
		h.int(int(f.Deadline))
		h.int(f.FrameSize)
	}
	return h
}

// topologyFingerprint extends a context digest with the canonical edge list
// of gt and the switch ASIL assignment — the per-state part of the cache
// key. Link ASILs are omitted: they follow from the min-endpoint rule and
// never influence either the enumeration or the recovery simulation.
func topologyFingerprint(base fpHash, gt *graph.Graph, assign *asil.Assignment) fpHash {
	h := base
	h.int(gt.NumVertices())
	edges := gt.Edges() // canonical (U < V), sorted
	h.int(len(edges))
	for _, e := range edges {
		h.int(e.U)
		h.int(e.V)
		h.float(e.Length)
	}
	sws := make([]int, 0, len(assign.Switches))
	for sw := range assign.Switches {
		sws = append(sws, sw)
	}
	sort.Ints(sws)
	h.int(len(sws))
	for _, sw := range sws {
		h.int(sw)
		h.int(int(assign.Switches[sw]))
	}
	return h
}

// scenarioFingerprint finalizes a topology digest with one failure set
// (ascending node IDs), yielding the cache key of a single verdict.
func scenarioFingerprint(topo fpHash, nodes []int) fingerprint {
	h := topo
	h.int(len(nodes))
	for _, v := range nodes {
		h.int(v)
	}
	return h.sum()
}
