package failure

import (
	"strings"
	"testing"
)

func TestDigestDeterministicAndDistinct(t *testing.T) {
	mk := func(writes func(*Digest)) string {
		d := NewDigest()
		writes(d)
		return d.Sum()
	}
	a := mk(func(d *Digest) { d.Str("problem"); d.Int(42); d.Float(1.5); d.Bool(true) })
	b := mk(func(d *Digest) { d.Str("problem"); d.Int(42); d.Float(1.5); d.Bool(true) })
	if a != b {
		t.Fatalf("equal write sequences digest differently: %s vs %s", a, b)
	}
	if len(a) != 32 || strings.ToLower(a) != a {
		t.Fatalf("sum %q is not 32 lowercase hex digits", a)
	}
	c := mk(func(d *Digest) { d.Str("problem"); d.Int(43); d.Float(1.5); d.Bool(true) })
	if a == c {
		t.Fatalf("distinct inputs collide: %s", a)
	}
}

// TestDigestNoAliasing: length prefixing must keep ("ab","c") and
// ("a","bc") apart, and Sum must not disturb the running state.
func TestDigestNoAliasing(t *testing.T) {
	d1 := NewDigest()
	d1.Str("ab")
	d1.Str("c")
	d2 := NewDigest()
	d2.Str("a")
	d2.Str("bc")
	if d1.Sum() == d2.Sum() {
		t.Fatal("string boundary aliasing")
	}

	d := NewDigest()
	d.Int(1)
	first := d.Sum()
	if got := d.Sum(); got != first {
		t.Fatalf("Sum mutated digest state: %s then %s", first, got)
	}
	d.Int(2)
	if d.Sum() == first {
		t.Fatal("writes after Sum had no effect")
	}
}
