package failure

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// engine executes one Analyze call: it enumerates failure scenarios per
// order, prunes them against the probability threshold, the bitset checked
// arena and the verdict cache, and fans the surviving recovery simulations
// out across a bounded worker pool.
//
// Determinism argument: a scenario's verdict is a pure function of
// (NBF, topology, timing, flows, failure set) — NBF implementations are
// deterministic by contract. Enumeration order is fixed, orders run as
// batches from maxord down to 0, and the reported counterexample is the
// verdict-failing scenario with the lowest enumeration index of the
// highest failing order. Pruning only ever skips scenarios that are
// recoverable (subsets of verified-recoverable sets), cache hits replay
// pure verdicts, and within one order no set can prune another (equal
// cardinality), so the parallel and memoized paths return OK / Failure /
// ER / MaxOrder bit-identical to the sequential analyzer. Only the
// NBFCalls / CacheHits / CacheMisses / Duration / Occupancy observability
// counters depend on scheduling and cache warmth.
type engine struct {
	a      *Analyzer
	ctx    context.Context
	gt     *graph.Graph
	assign *asil.Assignment
	fs     tsn.FlowSet
	ids    []int

	probByPos []float64 // failure probability per candidate position
	posByNode []int32   // candidate position per node ID
	words     int       // bitset words per scenario

	checked *checkedArena
	setBuf  []int    // scratch: current subset's node IDs, ascending
	bitBuf  []uint64 // scratch: current subset as a position bitset

	cache        *Cache
	topoFP       fpHash
	hits, misses int

	workers  int
	jobsCh   chan *analysisJob // nil when sequential
	workerWG sync.WaitGroup
	seqNBF   nbf.NBF // mechanism for inline (sequential) execution

	nbfCalls atomic.Int64
	busy     atomic.Int64 // summed nanoseconds inside Recover across workers
	failSeq  atomic.Int64 // lowest failing enumeration index of the order
}

// analysisJob is one scenario whose verdict was not available at
// enumeration time (or, when cached=true, a failing cached verdict that
// terminated the order's enumeration).
type analysisJob struct {
	seq   int
	nodes []int
	fp    fingerprint
	hasFP bool
	owg   *sync.WaitGroup

	er      []tsn.Pair
	failed  bool
	cached  bool
	skipped bool
	err     error
}

func newEngine(ctx context.Context, a *Analyzer, gt *graph.Graph, assign *asil.Assignment, fs tsn.FlowSet, ids []int, prob map[int]float64) *engine {
	words := (len(ids) + 63) / 64
	if words == 0 {
		words = 1
	}
	e := &engine{
		a: a, ctx: ctx, gt: gt, assign: assign, fs: fs, ids: ids,
		words:   words,
		checked: newCheckedArena(words),
		bitBuf:  make([]uint64, words),
		setBuf:  make([]int, 0, 8),
	}
	e.probByPos = make([]float64, len(ids))
	e.posByNode = make([]int32, gt.NumVertices())
	for i, v := range ids {
		e.probByPos[i] = prob[v]
		e.posByNode[v] = int32(i)
	}
	if a.Cache != nil {
		e.cache = a.Cache
		e.topoFP = topologyFingerprint(a.contextFingerprint(fs), gt, assign)
	}
	e.failSeq.Store(math.MaxInt64)
	if a.Workers > 1 {
		e.workers = a.Workers
		e.jobsCh = make(chan *analysisJob, a.Workers*2)
		for i := 0; i < a.Workers; i++ {
			e.workerWG.Add(1)
			go e.workerLoop()
		}
	} else {
		e.workers = 1
		e.seqNBF = a.NBF
	}
	return e
}

// close drains the worker pool. Safe to call exactly once.
func (e *engine) close() {
	if e.jobsCh != nil {
		close(e.jobsCh)
		e.workerWG.Wait()
	}
}

// workerLoop is one pool goroutine. Each worker gets its own NBF instance
// per the nbf concurrency contract (stateless mechanisms are shared,
// stateful ones cloned).
func (e *engine) workerLoop() {
	defer e.workerWG.Done()
	mech := nbf.ForWorker(e.a.NBF)
	for jb := range e.jobsCh {
		e.simulate(mech, jb)
		jb.owg.Done()
	}
}

// simulate runs one recovery simulation and records the verdict. Jobs past
// an already-known failing index are skipped: they can never become the
// reported counterexample (the reduction takes the lowest failing index)
// and skipping them frees the pool on failure-heavy construction states.
func (e *engine) simulate(mech nbf.NBF, jb *analysisJob) {
	if err := e.ctx.Err(); err != nil {
		jb.err = err
		return
	}
	if int64(jb.seq) > e.failSeq.Load() {
		jb.skipped = true
		return
	}
	start := time.Now()
	_, er, err := mech.Recover(e.gt, nbf.Failure{Nodes: jb.nodes}, e.a.Net, e.fs)
	e.busy.Add(int64(time.Since(start)))
	e.nbfCalls.Add(1)
	if err != nil {
		jb.err = err
		return
	}
	jb.er = er
	if len(er) != 0 {
		jb.failed = true
		for {
			cur := e.failSeq.Load()
			if int64(jb.seq) >= cur || e.failSeq.CompareAndSwap(cur, int64(jb.seq)) {
				break
			}
		}
	}
}

// buildSet loads the subset given by candidate positions idx into the
// scratch buffers: bitBuf as a position bitset and setBuf as ascending
// node IDs (insertion sort — subsets are maxord-sized, typically <= 3).
func (e *engine) buildSet(idx []int) {
	for i := range e.bitBuf {
		e.bitBuf[i] = 0
	}
	e.setBuf = e.setBuf[:0]
	for _, j := range idx {
		e.bitBuf[j>>6] |= 1 << (uint(j) & 63)
		v := e.ids[j]
		k := len(e.setBuf)
		e.setBuf = append(e.setBuf, v)
		for k > 0 && e.setBuf[k-1] > v {
			e.setBuf[k] = e.setBuf[k-1]
			k--
		}
		e.setBuf[k] = v
	}
}

// copySet returns a stable copy of setBuf for a scenario that escapes the
// enumeration loop (dispatched to a worker or reported as a failure).
func (e *engine) copySet() []int {
	return append([]int(nil), e.setBuf...)
}

// addCheckedNodes registers a verified-recoverable node set in the checked
// arena (parallel path: after the order barrier, when bitBuf is free).
func (e *engine) addCheckedNodes(nodes []int) {
	for i := range e.bitBuf {
		e.bitBuf[i] = 0
	}
	for _, v := range nodes {
		j := e.posByNode[v]
		e.bitBuf[j>>6] |= 1 << (uint(j) & 63)
	}
	e.checked.add(e.bitBuf)
}

// runOrder enumerates and resolves all order-sized scenarios. It returns
// the counterexample with the lowest enumeration index, or nil when every
// non-safe scenario of the order is recoverable.
func (e *engine) runOrder(order int, res *Result) (*nbf.Failure, []tsn.Pair, error) {
	e.failSeq.Store(math.MaxInt64)
	var jobs []*analysisJob
	var owg sync.WaitGroup
	var enumErr error
	seq := 0
	graph.IndexCombinations(len(e.ids), order, func(idx []int) bool {
		if err := e.ctx.Err(); err != nil {
			enumErr = err
			return false
		}
		res.ScenariosConsidered++
		seq++
		e.buildSet(idx)
		p := 1.0
		for _, j := range idx {
			p *= e.probByPos[j]
		}
		if p < e.a.R {
			return true // safe fault
		}
		if !e.a.DisableSupersetPruning && e.checked.covers(e.bitBuf) {
			return true
		}
		var fp fingerprint
		hasFP := e.cache != nil
		if hasFP {
			fp = scenarioFingerprint(e.topoFP, e.setBuf)
			if ok, er, hit := e.cache.lookup(fp); hit {
				e.hits++
				if ok {
					// Recoverable hit: prunes like a simulated pass. Within
					// an order no equal-sized set can be pruned by it, so
					// adding immediately matches sequential semantics.
					e.checked.add(e.bitBuf)
					return true
				}
				jobs = append(jobs, &analysisJob{seq: seq, nodes: e.copySet(), er: er, failed: true, cached: true})
				return false // a known-failing scenario ends the enumeration
			}
			e.misses++
		}
		jb := &analysisJob{seq: seq, nodes: e.copySet(), fp: fp, hasFP: hasFP}
		jobs = append(jobs, jb)
		if e.jobsCh != nil {
			jb.owg = &owg
			owg.Add(1)
			e.jobsCh <- jb
			return true
		}
		// Sequential path: resolve inline, exactly like the pre-engine
		// analyzer (first failing scenario stops the order).
		e.simulate(e.seqNBF, jb)
		if jb.err != nil {
			enumErr = jb.err
			return false
		}
		if jb.failed {
			return false
		}
		e.checked.add(e.bitBuf)
		if hasFP {
			e.cache.store(fp, true, nil)
		}
		return true
	})
	owg.Wait() // order barrier: all dispatched verdicts are in
	if enumErr != nil {
		return nil, nil, enumErr
	}
	for i, jb := range jobs {
		if jb.err != nil {
			return nil, nil, jb.err
		}
		if jb.skipped {
			continue // provably past the first failing index
		}
		if jb.failed {
			// The sequential analyzer stops enumerating at the failing
			// scenario; rebase the counter to that point so
			// ScenariosConsidered is bit-identical in every mode.
			res.ScenariosConsidered -= seq - jb.seq
			if jb.hasFP && !jb.cached {
				e.cache.store(jb.fp, false, jb.er)
			}
			// Bank the other completed verdicts of the batch — the
			// simulations are paid for and nearby states will re-ask.
			for _, later := range jobs[i+1:] {
				if later.hasFP && !later.cached && !later.skipped && later.err == nil {
					e.cache.store(later.fp, len(later.er) == 0, later.er)
				}
			}
			return &nbf.Failure{Nodes: jb.nodes}, jb.er, nil
		}
		if e.jobsCh != nil {
			// Parallel recoverables join the checked set after the barrier;
			// sequential ones were added inline above.
			e.addCheckedNodes(jb.nodes)
			if jb.hasFP && !jb.cached {
				e.cache.store(jb.fp, true, nil)
			}
		}
	}
	return nil, nil, nil
}
