package failure

import (
	"testing"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
)

func TestReduceToSwitchFailureESLinks(t *testing.T) {
	g := dualHomed(t, 2) // ES 0,1; switches 2,3
	a := assignLevels(g, map[int]asil.Level{2: asil.LevelB, 3: asil.LevelC})
	gf := nbf.Failure{Edges: []graph.Edge{{U: 0, V: 2}}}
	got := ReduceToSwitchFailure(g, a, gf)
	if len(got.Nodes) != 1 || got.Nodes[0] != 2 {
		t.Fatalf("reduced = %v, want switch 2", got)
	}
	if len(got.Edges) != 0 {
		t.Fatal("reduced failure must be switch-only")
	}
}

func TestReduceToSwitchFailureSwSwLinkPicksLowestASIL(t *testing.T) {
	g := dualHomed(t, 2)
	a := assignLevels(g, map[int]asil.Level{2: asil.LevelB, 3: asil.LevelC})
	gf := nbf.Failure{Edges: []graph.Edge{{U: 2, V: 3}}}
	got := ReduceToSwitchFailure(g, a, gf)
	if len(got.Nodes) != 1 || got.Nodes[0] != 2 {
		t.Fatalf("reduced = %v, want lower-ASIL switch 2", got)
	}
	// Tie: equal levels pick the smaller ID.
	a2 := assignLevels(g, map[int]asil.Level{2: asil.LevelC, 3: asil.LevelC})
	got = ReduceToSwitchFailure(g, a2, gf)
	if len(got.Nodes) != 1 || got.Nodes[0] != 2 {
		t.Fatalf("tie reduced = %v, want switch 2", got)
	}
}

func TestReduceToSwitchFailureKeepsSwitchNodesDropsES(t *testing.T) {
	g := dualHomed(t, 2)
	a := assignLevels(g, map[int]asil.Level{2: asil.LevelB, 3: asil.LevelC})
	gf := nbf.Failure{Nodes: []int{0, 3}, Edges: []graph.Edge{{U: 1, V: 2}}}
	got := ReduceToSwitchFailure(g, a, gf)
	want := []int{2, 3}
	if len(got.Nodes) != 2 || got.Nodes[0] != want[0] || got.Nodes[1] != want[1] {
		t.Fatalf("reduced = %v, want %v", got.Nodes, want)
	}
}

func TestReductionResidualContainment(t *testing.T) {
	// The Eq. 6 proof: the residual of the reduced (switch-only) failure
	// is a subgraph of the residual of the original failure.
	g := dualHomed(t, 3)
	a := assignLevels(g, map[int]asil.Level{3: asil.LevelA, 4: asil.LevelB})
	cases := []nbf.Failure{
		{Edges: []graph.Edge{{U: 0, V: 3}}},
		{Edges: []graph.Edge{{U: 3, V: 4}}},
		{Nodes: []int{3}, Edges: []graph.Edge{{U: 1, V: 4}}},
		{Edges: []graph.Edge{{U: 0, V: 3}, {U: 2, V: 4}}},
	}
	for _, gf := range cases {
		reduced := ReduceToSwitchFailure(g, a, gf)
		if !ResidualIsSubgraph(g, reduced, gf) {
			t.Fatalf("residual containment violated for %v (reduced %v)", gf, reduced)
		}
	}
}

func TestReductionProbabilityAtLeastOriginal(t *testing.T) {
	// With link ASIL = min(endpoints), the reduced scenario has probability
	// >= the original scenario's.
	g := dualHomed(t, 2)
	lib := asil.DefaultLibrary()
	a := assignLevels(g, map[int]asil.Level{2: asil.LevelB, 3: asil.LevelD})
	gf := nbf.Failure{Edges: []graph.Edge{{U: 2, V: 3}, {U: 0, V: 2}}}
	reduced := ReduceToSwitchFailure(g, a, gf)

	pOrig, err := asil.FailureProbability(a, lib, gf.Nodes, gf.Edges)
	if err != nil {
		t.Fatal(err)
	}
	pRed, err := asil.FailureProbability(a, lib, reduced.Nodes, reduced.Edges)
	if err != nil {
		t.Fatal(err)
	}
	if pRed < pOrig {
		t.Fatalf("reduced probability %v < original %v", pRed, pOrig)
	}
}
