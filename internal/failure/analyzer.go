// Package failure implements the failure analyzer of §V: the failure
// injection algorithm (Algorithm 3) that verifies a TSSDN topology against
// its reliability goal R by simulating the NBF on every non-safe fault, the
// link-to-switch failure reduction of Eq. 6, and a brute-force reference
// checker used to validate both.
package failure

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// Analyzer verifies the reliability guarantee of a planned TSSDN.
type Analyzer struct {
	// Lib provides component failure probabilities.
	Lib *asil.Library
	// NBF is the stateless recovery mechanism to simulate.
	NBF nbf.NBF
	// Net is the TAS timing configuration.
	Net tsn.Network
	// R is the reliability goal: failures with probability below R are safe
	// faults and need not be survived.
	R float64

	// FlowLevelRedundancy switches Algorithm 3 to enumerate failures over
	// all topology nodes (V^t) instead of switches only, the §V variant for
	// flow-level redundant setups.
	FlowLevelRedundancy bool
	// DisableSupersetPruning turns off the checked-superset cache (for the
	// ablation benchmark); results are unchanged, only cost grows.
	DisableSupersetPruning bool
	// ESLevel is the ASIL attributed to end stations when
	// FlowLevelRedundancy is enabled (end stations otherwise never fail;
	// §II-C treats their failures as safe faults). Defaults to ASIL-D.
	ESLevel asil.Level

	// Workers bounds the scenario-simulation worker pool. Values <= 1 run
	// every simulation inline on the calling goroutine (the sequential
	// path). Results are bit-identical either way; see the determinism
	// argument on the engine type.
	Workers int
	// Cache, when non-nil, memoizes per-scenario recovery verdicts across
	// Analyze calls. Share one Cache across all environments of a run; nil
	// disables memoization.
	Cache *Cache
}

// Result is the outcome of a reliability analysis.
type Result struct {
	// OK is true when the reliability guarantee is established.
	OK bool
	// Failure is a non-recoverable non-safe fault when OK is false.
	Failure nbf.Failure
	// ER is the NBF error message under Failure.
	ER []tsn.Pair
	// MaxOrder is the highest failure order that had to be considered.
	MaxOrder int
	// NBFCalls counts recovery simulations performed (the expensive part).
	// With Workers > 1 the count may include a few speculative simulations
	// completed before an earlier counterexample was known; it is exact on
	// the sequential path.
	NBFCalls int
	// ScenariosConsidered counts candidate subsets enumerated, including
	// those skipped by probability or superset pruning. Deterministic in
	// all modes.
	ScenariosConsidered int
	// CacheHits / CacheMisses count verdict-cache lookups of this call
	// (zero when no cache is configured).
	CacheHits   int
	CacheMisses int
	// Duration is the analysis wall-clock time.
	Duration time.Duration
	// Occupancy is the fraction of Workers x Duration spent inside recovery
	// simulations — 1.0 means the pool never starved.
	Occupancy float64
}

func (a *Analyzer) validate() error {
	if a.Lib == nil {
		return fmt.Errorf("analyzer: nil component library")
	}
	if a.NBF == nil {
		return fmt.Errorf("analyzer: nil NBF")
	}
	if err := a.Net.Validate(); err != nil {
		return fmt.Errorf("analyzer: %w", err)
	}
	if a.R <= 0 || a.R >= 1 {
		return fmt.Errorf("analyzer: reliability goal %v must be in (0,1)", a.R)
	}
	return nil
}

// candidateNodes returns the failure-candidate node IDs and their failure
// probabilities, sorted by decreasing probability (ties by ID).
func (a *Analyzer) candidateNodes(gt *graph.Graph, assign *asil.Assignment) ([]int, map[int]float64, error) {
	esLevel := a.ESLevel
	if esLevel == 0 {
		esLevel = asil.LevelD
	}
	var ids []int
	prob := make(map[int]float64)
	for _, sw := range gt.VerticesOfKind(graph.KindSwitch) {
		lvl, selected := assign.Switches[sw]
		if !selected {
			continue
		}
		if !lvl.Valid() {
			return nil, nil, fmt.Errorf("analyzer: switch %d has invalid ASIL %d", sw, int(lvl))
		}
		ids = append(ids, sw)
		prob[sw] = a.Lib.FailureProb(lvl)
	}
	if a.FlowLevelRedundancy {
		for _, es := range gt.VerticesOfKind(graph.KindEndStation) {
			ids = append(ids, es)
			prob[es] = a.Lib.FailureProb(esLevel)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if prob[ids[i]] != prob[ids[j]] {
			return prob[ids[i]] > prob[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids, prob, nil
}

// maxOrder computes maxord of Algorithm 3: the largest k such that the
// product of the k highest failure probabilities is still >= R.
func maxOrder(sortedIDs []int, prob map[int]float64, r float64) int {
	p := 1.0
	ord := 0
	for _, id := range sortedIDs {
		p *= prob[id]
		if p < r {
			break
		}
		ord++
	}
	return ord
}

// Analyze runs Algorithm 3 on topology gt with ASIL assignment assign and
// flow specification fs. It returns OK when every non-safe fault is
// recoverable, or the first non-recoverable failure scenario found together
// with its error message.
func (a *Analyzer) Analyze(gt *graph.Graph, assign *asil.Assignment, fs tsn.FlowSet) (Result, error) {
	return a.AnalyzeContext(context.Background(), gt, assign, fs)
}

// AnalyzeContext is Analyze with cancellation: the scenario enumeration
// checks ctx before every recovery simulation (the expensive inner step),
// so deadlines and SIGINT-driven cancellation take effect promptly even on
// large failure spaces. On cancellation it returns ctx.Err().
func (a *Analyzer) AnalyzeContext(ctx context.Context, gt *graph.Graph, assign *asil.Assignment, fs tsn.FlowSet) (Result, error) {
	if err := a.validate(); err != nil {
		return Result{}, err
	}
	ids, prob, err := a.candidateNodes(gt, assign)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	res := Result{MaxOrder: maxOrder(ids, prob, a.R)}
	eng := newEngine(ctx, a, gt, assign, fs, ids, prob)
	defer eng.close()
	finish := func() {
		res.NBFCalls = int(eng.nbfCalls.Load())
		res.CacheHits = eng.hits
		res.CacheMisses = eng.misses
		res.Duration = time.Since(start)
		if busy := time.Duration(eng.busy.Load()); res.Duration > 0 {
			res.Occupancy = float64(busy) / (float64(res.Duration) * float64(eng.workers))
		}
	}

	// Highest order first so the superset cache prunes the most work
	// (line 3 of Algorithm 3 iterates {maxord, ..., 1, 0}).
	for order := res.MaxOrder; order >= 0; order-- {
		found, er, err := eng.runOrder(order, &res)
		if err != nil {
			return Result{}, fmt.Errorf("analyze order %d: %w", order, err)
		}
		if found != nil {
			res.Failure = *found
			res.ER = er
			finish()
			return res, nil
		}
	}
	res.OK = true
	finish()
	return res, nil
}

// subsetOfSorted reports whether sorted slice a is a subset of sorted slice b.
func subsetOfSorted(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
