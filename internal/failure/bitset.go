package failure

// Checked-set pruning works on bitsets over candidate positions: candidate
// i of the enumeration order maps to bit i. A scenario is prunable when its
// bitset is a subset of any already-verified recoverable set, which is a
// handful of word operations instead of the former O(n) sorted-merge walk
// per checked entry — and the flat arena below removes the per-scenario
// copy+sort allocations entirely.

// subsetWords reports whether the set bits of a are all set in b. Both
// slices must have the same length.
func subsetWords(a, b []uint64) bool {
	for i, w := range a {
		if w&^b[i] != 0 {
			return false
		}
	}
	return true
}

// checkedArena stores verified-recoverable scenario bitsets back to back in
// one flat slice, `words` words per set. Offsets index the arena, so slice
// growth never invalidates previously stored sets.
type checkedArena struct {
	words int
	data  []uint64
}

func newCheckedArena(words int) *checkedArena {
	return &checkedArena{words: words}
}

// add appends one bitset (copied).
func (c *checkedArena) add(set []uint64) {
	c.data = append(c.data, set...)
}

// covers reports whether any stored set is a superset of `set`.
func (c *checkedArena) covers(set []uint64) bool {
	for off := 0; off < len(c.data); off += c.words {
		if subsetWords(set, c.data[off:off+c.words]) {
			return true
		}
	}
	return false
}
