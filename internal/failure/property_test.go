package failure

import (
	"math/rand"
	"testing"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
	"repro/internal/tsn"
)

// randomCase is one generated property-test instance: a small topology with
// a connected switch backbone, randomly homed end stations, a link-min-rule
// assignment and a random flow set.
type randomCase struct {
	topo   *graph.Graph
	assign *asil.Assignment
	flows  tsn.FlowSet
}

// randomTopology generates a small TSSDN topology: 2–4 end stations homed
// to 1–2 of 2–3 ring-connected switches, with random switch ASIL levels and
// link levels derived by the min rule of §IV-B. Every instance admits an
// initial flow state (the backbone is connected and every ES is attached),
// so the analyzers only ever disagree about failure scenarios, never about
// the intact network.
func randomTopology(tb testing.TB, rng *rand.Rand) randomCase {
	tb.Helper()
	nES := 2 + rng.Intn(3)
	nSW := 2 + rng.Intn(2)
	g := graph.New()
	for i := 0; i < nES; i++ {
		g.AddVertex("", graph.KindEndStation)
	}
	sw := make([]int, nSW)
	for i := range sw {
		sw[i] = g.AddVertex("", graph.KindSwitch)
	}
	// Connected backbone: a path, plus the closing chord half the time when
	// there are 3 switches (ring vs. line changes which failures isolate).
	for i := 0; i+1 < nSW; i++ {
		mustEdge(tb, g, sw[i], sw[i+1])
	}
	if nSW == 3 && rng.Intn(2) == 0 {
		mustEdge(tb, g, sw[0], sw[2])
	}
	// Home each end station to 1 or 2 distinct switches.
	for es := 0; es < nES; es++ {
		first := rng.Intn(nSW)
		mustEdge(tb, g, es, sw[first])
		if rng.Intn(2) == 0 {
			second := (first + 1 + rng.Intn(nSW-1)) % nSW
			mustEdge(tb, g, es, sw[second])
		}
	}
	levels := make(map[int]asil.Level, nSW)
	all := []asil.Level{asil.LevelA, asil.LevelB, asil.LevelC, asil.LevelD}
	for _, s := range sw {
		levels[s] = all[rng.Intn(len(all))]
	}
	nFlows := 1 + rng.Intn(3)
	fs := make(tsn.FlowSet, 0, nFlows)
	for i := 0; i < nFlows; i++ {
		src := rng.Intn(nES)
		dst := rng.Intn(nES)
		for dst == src {
			dst = rng.Intn(nES)
		}
		fs = append(fs, flow(i, src, dst))
	}
	return randomCase{topo: g, assign: assignLevels(g, levels), flows: fs}
}

// TestAnalyzerMatchesBruteForceOnRandomTopologies is the cross-check
// property of §V: on any topology, Algorithm 3 (switch-only enumeration
// with the Eq. 6 link reduction) must reach the same verdict as the
// exhaustive brute-force enumeration over switches AND links. The seed is
// fixed so the generated instances — and thus the test — are deterministic.
func TestAnalyzerMatchesBruteForceOnRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lib := asil.DefaultLibrary()
	net := tsn.DefaultNetwork()
	mechanisms := []nbf.NBF{
		&nbf.StatelessRecovery{MaxAlternatives: 3},
		&nbf.StatelessRecovery{MaxAlternatives: 1},
		&nbf.LoadBalancedRecovery{MaxAlternatives: 4},
	}
	goals := []float64{1e-6, 1e-4, 1e-2}

	cases := 20
	if testing.Short() {
		cases = 6
	}
	for i := 0; i < cases; i++ {
		rc := randomTopology(t, rng)
		for _, mech := range mechanisms {
			for _, r := range goals {
				a := &Analyzer{Lib: lib, NBF: mech, Net: net, R: r}
				res, err := a.Analyze(rc.topo, rc.assign, rc.flows)
				if err != nil {
					t.Fatalf("case %d %s R=%g: analyzer: %v", i, mech.Name(), r, err)
				}
				b := &BruteForce{Lib: lib, NBF: mech, Net: net, R: r}
				bres, err := b.Analyze(rc.topo, rc.assign, rc.flows)
				if err != nil {
					t.Fatalf("case %d %s R=%g: brute force: %v", i, mech.Name(), r, err)
				}
				if res.OK != bres.OK {
					t.Errorf("case %d %s R=%g: analyzer OK=%v but brute force OK=%v (analyzer failure %v, brute failure %v)",
						i, mech.Name(), r, res.OK, bres.OK, res.Failure, bres.Failure)
					continue
				}
				// A reported counterexample must be genuine: non-safe
				// probability and actually unrecoverable under the NBF.
				for _, witness := range []struct {
					name string
					res  Result
				}{{"analyzer", res}, {"brute force", bres}} {
					if witness.res.OK {
						continue
					}
					checkWitness(t, rc, lib, net, mech, r, witness.name, witness.res)
				}
			}
		}
	}
}

// checkWitness asserts that a failing Result carries a real counterexample.
func checkWitness(t *testing.T, rc randomCase, lib *asil.Library, net tsn.Network, mech nbf.NBF, r float64, name string, res Result) {
	t.Helper()
	prob, err := asil.FailureProbability(rc.assign, lib, res.Failure.Nodes, res.Failure.Edges)
	if err != nil {
		t.Errorf("%s R=%g: failure probability: %v", name, r, err)
		return
	}
	if prob < r {
		t.Errorf("%s R=%g: reported failure %v is a safe fault (prob %g)", name, r, res.Failure, prob)
	}
	_, er, err := mech.Recover(rc.topo, res.Failure, net, rc.flows)
	if err != nil {
		t.Errorf("%s R=%g: recover on witness: %v", name, r, err)
		return
	}
	if len(er) == 0 {
		t.Errorf("%s R=%g: reported failure %v is recoverable", name, r, res.Failure)
	}
}
