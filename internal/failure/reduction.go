package failure

import (
	"sort"

	"repro/internal/asil"
	"repro/internal/graph"
	"repro/internal/nbf"
)

// ReduceToSwitchFailure maps an arbitrary failure scenario Gf (nodes and
// links) to the switch-only scenario V'f of Eq. 6: every failed link is
// replaced by its lowest-ASIL adjacent switch. Under the planner's link
// ASIL invariant (link ASIL = min of endpoint ASILs), V'f has probability
// at least that of Gf and its residual network is a subgraph of Gf's, so
// surviving V'f implies surviving Gf — which is why Algorithm 3 enumerates
// only switch failures.
//
// End stations never enter V'f (their failures are safe faults, §II-C); a
// failed ES–switch link maps to the switch endpoint.
func ReduceToSwitchFailure(gt *graph.Graph, assign *asil.Assignment, gf nbf.Failure) nbf.Failure {
	set := make(map[int]struct{}, len(gf.Nodes)+len(gf.Edges))
	for _, v := range gf.Nodes {
		if gt.Kind(v) == graph.KindSwitch {
			set[v] = struct{}{}
		}
	}
	for _, e := range gf.Edges {
		u, w := e.U, e.V
		uk, wk := gt.Kind(u), gt.Kind(w)
		switch {
		case uk == graph.KindSwitch && wk != graph.KindSwitch:
			set[u] = struct{}{}
		case wk == graph.KindSwitch && uk != graph.KindSwitch:
			set[w] = struct{}{}
		case uk == graph.KindSwitch && wk == graph.KindSwitch:
			// low(u, w): the endpoint with the lowest ASIL fails; ties go to
			// the smaller ID for determinism.
			lu, lw := assign.SwitchLevel(u), assign.SwitchLevel(w)
			switch {
			case lu < lw:
				set[u] = struct{}{}
			case lw < lu:
				set[w] = struct{}{}
			case u < w:
				set[u] = struct{}{}
			default:
				set[w] = struct{}{}
			}
		default:
			// ES–ES links do not exist in valid topologies; ignore.
		}
	}
	nodes := make([]int, 0, len(set))
	for v := range set {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	return nbf.Failure{Nodes: nodes}
}

// ResidualIsSubgraph reports whether the residual network of outer is a
// subgraph of the residual of inner — the containment property the Eq. 6
// proof relies on (surviving the switch-only failure implies surviving the
// original one).
func ResidualIsSubgraph(gt *graph.Graph, outer, inner nbf.Failure) bool {
	ro := gt.Residual(outer.Nodes, outer.Edges)
	ri := gt.Residual(inner.Nodes, inner.Edges)
	return ro.IsSubgraphOf(ri)
}
